(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation and times the implementation with Bechamel.

   Usage: main.exe [table1|table2|fig7|equivalence|ablation|bechamel|all]
   (default: all) *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '#')

(* ------------------------------------------------------------------ *)
(* Experiment reproduction                                            *)

let run_table1 () =
  section "E1 / Table I";
  print_string (Report.Experiments.table1_report ())

let run_table2 () =
  section "E2 / Table II";
  print_string (Report.Experiments.table2_report ())

let run_fig7 () =
  section "E4 / Fig 7";
  print_string (Report.Experiments.fig7_report ())

let run_equivalence () =
  section "E3 / Functional equivalence";
  print_string (Report.Experiments.equivalence_report ())

let run_mct () =
  section "E6 / Future work: dynamic multiple-control Toffoli";
  print_string (Report.Experiments.mct_report ())

let run_routing () =
  section "E7 / Routing study (extension)";
  print_string (Report.Experiments.routing_report ())

let run_duration () =
  section "E8 / Wall-clock study (extension)";
  print_string (Report.Experiments.duration_report ())

let run_scale () =
  section "E9 / Scalability study (extension)";
  print_string (Report.Experiments.scale_report ())

let run_slots () =
  section "E11 / Multi-slot frontier (extension)";
  print_string (Report.Experiments.slots_report ())

let run_reuse () =
  section "E14 / Causal-cone qubit reuse (extension)";
  print_string (Report.Experiments.reuse_report ())

(* Ablation: design choices DESIGN.md calls out — ancilla sharing
   policy (Lemma 1) and the peephole cleanup. *)
let run_ablation () =
  section "Ablation: ancilla sharing (Lemma 1) and peephole cleanup";
  let rows =
    List.concat_map
      (fun (o : Algorithms.Oracle.t) ->
        let dj = Algorithms.Dj.circuit o in
        let variant label scheme =
          let r = Dqc.Toffoli_scheme.transform scheme dj in
          let expanded = Decompose.Pass.expand_cv r.Dqc.Transform.circuit in
          let optimized = Decompose.Peephole.cancel_inverses expanded in
          [
            o.name;
            label;
            string_of_int (Circuit.Circ.num_qubits r.circuit);
            string_of_int (List.length r.iteration_order);
            string_of_int (Circuit.Metrics.gate_count expanded);
            string_of_int (Circuit.Metrics.gate_count optimized);
            Printf.sprintf "%.4f" (Dqc.Equivalence.tv_distance dj r);
          ]
        in
        [
          variant "dyn2 fresh" (Dqc.Toffoli_scheme.Dynamic_2_shared `Fresh);
          variant "dyn2 per-target" Dqc.Toffoli_scheme.Dynamic_2;
          variant "dyn2 global" (Dqc.Toffoli_scheme.Dynamic_2_shared `Global);
        ])
      Algorithms.Dj_toffoli.oracles
  in
  print_string
    (Report.Table.render
       ~headers:
         [ "Benchmark"; "variant"; "qubits"; "iters"; "gates"; "peephole"; "TV" ]
       ~rows ())

(* ------------------------------------------------------------------ *)
(* Execution-backend study: the tentpole acceptance run.  Times the
   seed serial runner against Backend.run in its dense configurations
   (prefix cache on/off, 1 vs all domains) and the auto-selected
   backend, on 4096 shots of the 10-qubit Table II DJ family head,
   then checks seed-determinism across domain counts. *)

let obs_json_path = "BENCH_obs.json"

(* The Table II AND family pushed to 9 data qubits (Mct_bench stops at
   8): one C^9X oracle, 10 qubits total with the answer qubit.  Shared
   by the backend study and the lint-throughput group. *)
let and_9 =
  let truth =
    Algorithms.Boolean_fun.of_fun ~arity:9 (fun k -> k = (1 lsl 9) - 1)
  in
  Algorithms.Oracle.make ~name:"AND_9" ~arity:9 ~truth
    [
      Circuit.Instruction.Unitary
        (Circuit.Instruction.app
           ~controls:(List.init 9 (fun v -> v))
           Circuit.Gate.X 9);
    ]

let run_backend () =
  section "E12 / Execution backends: serial vs parallel vs prefix-cached";
  let dj = Algorithms.Dj.circuit and_9 in
  let plan = Sim.Measurement_plan.measure_all in
  let shots = 4096 in
  let seed = 0xBACC in
  let domains = Sim.Parallel.recommended_domains () in
  Printf.printf
    "workload: %d shots of DJ(AND_9) — %d qubits, %d gates — measured on all \
     qubits\nrecommended domains on this machine: %d\n\n"
    shots
    (Circuit.Circ.num_qubits dj)
    (Circuit.Metrics.gate_count dj)
    domains;
  let time f =
    let t0 = Unix.gettimeofday () in
    let h = f () in
    (h, Unix.gettimeofday () -. t0)
  in
  let dense = Sim.Backend.Statevector_dense in
  let h_serial, t_serial =
    time (fun () -> Sim.Runner.run_plan ~seed ~shots ~plan dj)
  in
  let _, t_nocache =
    time (fun () ->
        Sim.Backend.run ~policy:dense ~seed ~domains:1 ~plan
          ~prefix_cache:false ~shots dj)
  in
  let h_prefix, t_prefix =
    time (fun () ->
        Sim.Backend.run ~policy:dense ~seed ~domains:1 ~plan ~shots dj)
  in
  let h_par, t_par =
    time (fun () -> Sim.Backend.run ~policy:dense ~seed ~plan ~shots dj)
  in
  let h_auto, t_auto = time (fun () -> Sim.Backend.run ~seed ~plan ~shots dj) in
  let line label t =
    Printf.printf "  %-46s %9.1f ms   %5.2fx vs serial\n" label (t *. 1000.)
      (t_serial /. t)
  in
  line "Runner.run_shots (seed serial baseline)" t_serial;
  line "Backend.run dense, 1 domain, no prefix cache" t_nocache;
  line "Backend.run dense, 1 domain, prefix cache" t_prefix;
  line
    (Printf.sprintf "Backend.run dense, %d domain(s), prefix cache" domains)
    t_par;
  line "Backend.run auto (exact-branch alias sampler)" t_auto;
  let same a b = Sim.Runner.to_list a = Sim.Runner.to_list b in
  Printf.printf
    "\ndeterminism: dense histograms identical across 1/%d domains and \
     prefix-cache on/off: %b\n"
    domains
    (same h_prefix h_par
    && same h_prefix
         (Sim.Backend.run ~policy:dense ~seed ~domains:4 ~plan ~shots dj));
  Printf.printf
    "serial baseline total %d shots, parallel total %d, auto total %d\n"
    (Sim.Runner.shots h_serial) (Sim.Runner.shots h_par)
    (Sim.Runner.shots h_auto);
  (* One extra instrumented replay of the prefix-cached configuration:
     quantifies the with-sink overhead against t_prefix above (the
     uninstrumented runs already measured the no-sink cost) and seeds
     the BENCH_obs.json metrics trajectory. *)
  let collector, (h_obs, t_obs) =
    Obs.with_collector (fun () ->
        time (fun () ->
            Sim.Backend.run ~policy:dense ~seed ~domains:1 ~plan ~shots dj))
  in
  Printf.printf
    "\ntelemetry overhead (prefix-cached run, collector installed): %.1f ms \
     vs %.1f ms uninstrumented (%+.1f%%); histograms identical: %b\n"
    (t_obs *. 1000.) (t_prefix *. 1000.)
    (100. *. ((t_obs /. t_prefix) -. 1.))
    (same h_obs h_prefix);
  Obs.Metrics_json.write ~path:obs_json_path collector;
  Printf.printf "engine metrics written to %s\n" obs_json_path

(* ------------------------------------------------------------------ *)
(* Kernel-differential smoke: the compiled execution path must agree
   with the generic interpreter on the paper's benchmark family,
   amplitude for amplitude.  Fast enough for `make kernel-smoke`. *)

let run_kernels () =
  section "E13 / Kernel differential: compiled plans vs generic interpreter";
  let cases =
    List.concat_map
      (fun name ->
        let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name name) in
        let dj = Algorithms.Dj.circuit o in
        let dyn scheme label =
          ( Printf.sprintf "DJ(%s) %s" name label,
            (Dqc.Toffoli_scheme.transform scheme dj).Dqc.Transform.circuit )
        in
        [
          (Printf.sprintf "DJ(%s) traditional" name, dj);
          dyn Dqc.Toffoli_scheme.Dynamic_1 "dyn1";
          dyn Dqc.Toffoli_scheme.Dynamic_2 "dyn2";
        ])
      [ "AND"; "OR"; "NAND"; "CARRY" ]
  in
  let seeds = [ 1; 7; 42 ] in
  let failures = ref 0 in
  List.iter
    (fun (label, c) ->
      let program = Sim.Program.compile c in
      List.iter
        (fun seed ->
          let compiled =
            Sim.Statevector.run ~rng:(Random.State.make [| seed |]) c
          in
          let reference =
            Sim.Statevector.run_reference ~rng:(Random.State.make [| seed |]) c
          in
          let ok =
            Sim.Statevector.register compiled
            = Sim.Statevector.register reference
            && Linalg.Cvec.approx_equal ~eps:1e-9
                 (Sim.Statevector.amplitudes compiled)
                 (Sim.Statevector.amplitudes reference)
          in
          if not ok then begin
            incr failures;
            Printf.printf "  MISMATCH %-24s seed %d\n" label seed
          end)
        seeds;
      Printf.printf "  %-24s %2d ops (%d gates, %d fused, %d fallback)\n" label
        (Sim.Program.length program)
        (Sim.Program.source_gates program)
        (Sim.Program.fused_count program)
        (Sim.Program.fallback_count program))
    cases;
  if !failures > 0 then begin
    Printf.printf "\nkernel differential: %d MISMATCH(ES)\n" !failures;
    exit 1
  end
  else
    Printf.printf "\nkernel differential: %d circuits x %d seeds identical\n"
      (List.length cases) (List.length seeds)

(* ------------------------------------------------------------------ *)
(* Bechamel timing                                                    *)

(* Lint-throughput workloads: the full pass catalogue over the
   10-qubit DJ(AND_9) family — the traditional circuit under the
   general passes and its dynamic-1 compilation under the DQC gate.
   Shared by the bechamel group (group "lint" in dqc.bench/1) and the
   instructions/second summary printed after the timing table. *)
let lint_workloads =
  lazy
    (let dj = Algorithms.Dj.circuit and_9 in
     let compiled =
       let module O = Dqc.Pipeline.Options in
       let options =
         O.default
         |> O.with_scheme Dqc.Toffoli_scheme.Dynamic_1
         |> O.with_check_equivalence false
       in
       (Dqc.Pipeline.compile ~options dj).Dqc.Pipeline.circuit
     in
     [
       ("lint DJ(AND_9) traditional", dj, Lint.default_passes);
       ("lint DJ(AND_9) dyn1 dqc", compiled, Lint.dqc_passes ());
     ])

let make_benchmarks () =
  let open Bechamel in
  let bv_transform n =
    let s = String.make n '1' in
    Test.make
      ~name:(Printf.sprintf "transform BV-%d" n)
      (Staged.stage (fun () ->
           ignore (Dqc.Transform.transform (Algorithms.Bv.circuit s))))
  in
  let dj_transform scheme label =
    let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "CARRY") in
    let dj = Algorithms.Dj.circuit o in
    Test.make
      ~name:(Printf.sprintf "transform DJ(CARRY) %s" label)
      (Staged.stage (fun () ->
           ignore (Dqc.Toffoli_scheme.transform scheme dj)))
  in
  let exact_dj scheme label =
    let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
    let dj = Algorithms.Dj.circuit o in
    let r = Dqc.Toffoli_scheme.transform scheme dj in
    Test.make
      ~name:(Printf.sprintf "exact dist DJ(AND) %s" label)
      (Staged.stage (fun () ->
           ignore (Sim.Exact.register_distribution r.Dqc.Transform.circuit)))
  in
  let statevector n =
    let roles = Array.make n Circuit.Circ.Data in
    let b = Circuit.Circ.Builder.make ~roles ~num_bits:0 () in
    for q = 0 to n - 1 do
      Circuit.Circ.Builder.h b q
    done;
    for q = 0 to n - 2 do
      Circuit.Circ.Builder.cx b q (q + 1)
    done;
    let c = Circuit.Circ.Builder.build b in
    Test.make
      ~name:(Printf.sprintf "statevector %d qubits" n)
      (Staged.stage (fun () ->
           let rng = Random.State.make [| 1 |] in
           ignore (Sim.Statevector.run ~rng c)))
  in
  let shots =
    let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
    let r =
      Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2
        (Algorithms.Dj.circuit o)
    in
    Test.make ~name:"1024 shots DJ(AND) dyn2"
      (Staged.stage (fun () ->
           ignore (Sim.Runner.run_shots ~shots:1024 r.Dqc.Transform.circuit)))
  in
  let peephole =
    let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "CARRY") in
    let r =
      Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_1
        (Algorithms.Dj.circuit o)
    in
    let expanded = Decompose.Pass.expand_cv r.Dqc.Transform.circuit in
    Test.make ~name:"peephole DJ(CARRY) dyn1"
      (Staged.stage (fun () ->
           ignore (Decompose.Peephole.cancel_inverses expanded)))
  in
  let stabilizer n =
    let s = String.make n '1' in
    let r = Dqc.Transform.transform (Algorithms.Bv.circuit s) in
    Test.make
      ~name:(Printf.sprintf "stabilizer BV-%d dyn shot" n)
      (Staged.stage (fun () ->
           let rng = Random.State.make [| 3 |] in
           ignore (Sim.Stabilizer.run ~rng r.Dqc.Transform.circuit)))
  in
  let density =
    let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
    let r =
      Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2
        (Algorithms.Dj.circuit o)
    in
    Test.make ~name:"density DJ(AND) dyn2 (noisy, exact)"
      (Staged.stage (fun () ->
           ignore
             (Sim.Density.run ~model:Sim.Noise.default r.Dqc.Transform.circuit)))
  in
  let routing =
    let c = Algorithms.Bv.circuit (String.make 12 '1') in
    let coupling = Transpile.Coupling.line 13 in
    Test.make ~name:"route BV-12 onto line"
      (Staged.stage (fun () -> ignore (Transpile.Route.run ~coupling c)))
  in
  let native =
    let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "CARRY") in
    let r =
      Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2
        (Algorithms.Dj.circuit o)
    in
    Test.make ~name:"basis-lower DJ(CARRY) dyn2"
      (Staged.stage (fun () ->
           ignore (Transpile.Basis.to_native r.Dqc.Transform.circuit)))
  in
  (* compiled-program kernel study: lowering cost in isolation, the
     fused vs unfused op streams, and the generic full-scan interpreter
     over the same SoA storage as the reference point *)
  let kernels =
    let n = 12 in
    let roles = Array.make n Circuit.Circ.Data in
    let b = Circuit.Circ.Builder.make ~roles ~num_bits:0 () in
    for q = 0 to n - 1 do
      Circuit.Circ.Builder.h b q
    done;
    for q = 0 to n - 2 do
      Circuit.Circ.Builder.cx b q (q + 1)
    done;
    for q = 0 to n - 1 do
      Circuit.Circ.Builder.gate b Circuit.Gate.T q;
      Circuit.Circ.Builder.gate b Circuit.Gate.S q
    done;
    let c = Circuit.Circ.Builder.build b in
    let fused = Sim.Program.compile c in
    let unfused = Sim.Program.compile ~fuse:false c in
    let rng () = Random.State.make [| 7 |] in
    [
      Test.make ~name:(Printf.sprintf "kernels compile %d qubits" n)
        (Staged.stage (fun () -> ignore (Sim.Program.compile c)));
      Test.make ~name:(Printf.sprintf "kernels fused %d qubits" n)
        (Staged.stage (fun () -> ignore (Sim.Program.run ~rng:(rng ()) fused)));
      Test.make ~name:(Printf.sprintf "kernels unfused %d qubits" n)
        (Staged.stage (fun () ->
             ignore (Sim.Program.run ~rng:(rng ()) unfused)));
      Test.make ~name:(Printf.sprintf "kernels reference %d qubits" n)
        (Staged.stage (fun () ->
             ignore (Sim.Statevector.run_reference ~rng:(rng ()) c)));
    ]
  in
  (* serial vs parallel vs prefix-cached shot execution on the Table II
     DJ family (dense backend throughout, so only the engine varies) *)
  let backend_engines =
    let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "CARRY") in
    let dj = Algorithms.Dj.circuit o in
    let plan = Sim.Measurement_plan.measure_all in
    let dense = Sim.Backend.Statevector_dense in
    [
      Test.make ~name:"backend serial 256 DJ(CARRY)"
        (Staged.stage (fun () ->
             ignore (Sim.Runner.run_plan ~shots:256 ~plan dj)));
      Test.make ~name:"backend dense-nocache 256 DJ(CARRY)"
        (Staged.stage (fun () ->
             ignore
               (Sim.Backend.run ~policy:dense ~domains:1 ~prefix_cache:false
                  ~plan ~shots:256 dj)));
      Test.make ~name:"backend prefix 256 DJ(CARRY)"
        (Staged.stage (fun () ->
             ignore
               (Sim.Backend.run ~policy:dense ~domains:1 ~plan ~shots:256 dj)));
      Test.make ~name:"backend parallel 256 DJ(CARRY)"
        (Staged.stage (fun () ->
             ignore (Sim.Backend.run ~policy:dense ~plan ~shots:256 dj)));
    ]
  in
  let lint_tests =
    List.map
      (fun (name, c, passes) ->
        Test.make ~name (Staged.stage (fun () -> ignore (Lint.run ~passes c))))
      (Lazy.force lint_workloads)
  in
  (* the symbolic certifier: no simulation, so the wide instances
     (AND_12 is 13 qubits, XOR_16 is 17) cost about the same as the
     small one — the point of the group *)
  let verify_tests =
    let certify (oracle : Algorithms.Oracle.t) scheme label =
      let dj = Algorithms.Dj.circuit oracle in
      let r = Dqc.Toffoli_scheme.transform scheme dj in
      Test.make
        ~name:(Printf.sprintf "verify DJ(%s) %s" oracle.name label)
        (Staged.stage (fun () -> ignore (Dqc.Certifier.certify dj r)))
    in
    [
      certify
        (Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND"))
        Dqc.Toffoli_scheme.Dynamic_2 "dyn2";
      certify (Algorithms.Mct_bench.and_n 12) Dqc.Toffoli_scheme.Dynamic_1
        "dyn1";
      certify (Algorithms.Mct_bench.xor_n 16) Dqc.Toffoli_scheme.Dynamic_1
        "dyn1";
    ]
  in
  (* the reuse pass in isolation: scheduling + rewiring cost, no
     certification (the gate is timed separately via reuse_rows) *)
  let reuse_tests =
    let prepared_grover =
      Dqc.Toffoli_scheme.prepare
        (Dqc.Toffoli_scheme.Dynamic_2_shared `Fresh)
        (Algorithms.Grover.measured ~n:3 ~marked:5)
    in
    List.map
      (fun (name, c) ->
        Test.make ~name
          (Staged.stage (fun () -> ignore (Dqc.Reuse.rewire c))))
      [
        ("reuse GROVER-3(fresh)", prepared_grover);
        ("reuse SIMON-1011", Algorithms.Simon.measured_circuit "1011");
        ("reuse QPE-4", Algorithms.Qpe.kitaev ~bits:4 ~phase:(3. /. 8.));
      ]
  in
  Test.make_grouped ~name:"dqc"
    ([
       bv_transform 4;
       bv_transform 8;
       bv_transform 16;
       dj_transform Dqc.Toffoli_scheme.Dynamic_1 "dyn1";
       dj_transform Dqc.Toffoli_scheme.Dynamic_2 "dyn2";
       exact_dj Dqc.Toffoli_scheme.Dynamic_1 "dyn1";
       exact_dj Dqc.Toffoli_scheme.Dynamic_2 "dyn2";
       statevector 8;
       statevector 12;
       statevector 16;
       shots;
       peephole;
       stabilizer 16;
       stabilizer 48;
       density;
       routing;
       native;
     ]
    @ kernels @ backend_engines @ lint_tests @ verify_tests @ reuse_tests)

let bench_json_path = "BENCH_backend.json"

(* "transform BV-4" -> "transform": the leading token names the group *)
let group_of_name name =
  match String.index_opt name ' ' with
  | Some k -> String.sub name 0 k
  | None -> name

let write_bechamel_json ?(extra = []) estimates =
  let results =
    List.map
      (fun (name, est) ->
        Obs.Json.Obj
          [
            ("name", Obs.Json.String name);
            ("group", Obs.Json.String (group_of_name name));
            ( "ns_per_op",
              match est with
              | Some ns -> Obs.Json.Float ns
              | None -> Obs.Json.Null );
          ])
      (List.sort (fun (a, _) (b, _) -> compare a b) estimates)
  in
  Obs.Json.write ~path:bench_json_path
    (Obs.Json.Obj
       [
         ("schema", Obs.Json.String "dqc.bench/1");
         ("unit", Obs.Json.String "ns/op");
         ("results", Obs.Json.List (results @ extra));
       ]);
  Printf.printf "\nmachine-readable results written to %s\n" bench_json_path

let run_bechamel () =
  section "E5 / Bechamel timing";
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances (make_benchmarks ()) in
  let results =
    List.map (fun instance -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instance raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instances results in
  let estimates = ref [] in
  let () =
    Hashtbl.iter
      (fun label tbl ->
        ignore label;
        Hashtbl.iter
          (fun name result ->
            match Bechamel.Analyze.OLS.estimates result with
            | Some [ est ] ->
                estimates := (name, Some est) :: !estimates;
                Printf.printf "%-34s %12.1f ns/run\n" name est
            | Some _ | None ->
                estimates := (name, None) :: !estimates;
                Printf.printf "%-34s (no estimate)\n" name)
          tbl)
      results
  in
  (* per-benchmark qubit savings and pass runtimes from the reuse flow:
     value-typed rows (explicit per-row unit) alongside the ns/op ones *)
  let reuse_extra =
    List.concat_map
      (fun (r : Report.Experiments.reuse_row) ->
        let row suffix value unit =
          Obs.Json.Obj
            [
              ( "name",
                Obs.Json.String
                  (Printf.sprintf "reuse %s %s" suffix
                     r.Report.Experiments.name) );
              ("group", Obs.Json.String "reuse");
              ("value", Obs.Json.Float value);
              ("unit", Obs.Json.String unit);
            ]
        in
        [
          row "qubits-saved" (float_of_int r.Report.Experiments.saved) "qubits";
          row "pass-runtime" r.Report.Experiments.reuse_ms "ms";
          row "certify-runtime" r.Report.Experiments.certify_ms "ms";
        ])
      (Report.Experiments.reuse_rows ())
  in
  write_bechamel_json ~extra:reuse_extra !estimates;
  (* lint throughput re-expressed as instructions/second: ns/op over a
     known instruction count makes the rate explicit *)
  List.iter
    (fun (name, c, _) ->
      (* bechamel prefixes the group: "lint ..." -> "dqc/lint ..." *)
      match List.assoc_opt ("dqc/" ^ name) !estimates with
      | Some (Some ns) when ns > 0. ->
          let instrs = List.length (Circuit.Circ.instructions c) in
          Printf.printf "%-34s %12.2f M instr/s (%d instructions)\n" name
            (float_of_int instrs /. ns *. 1000.)
            instrs
      | Some (Some _) | Some None | None -> ())
    (Lazy.force lint_workloads)

(* ------------------------------------------------------------------ *)

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match what with
  | "table1" -> run_table1 ()
  | "table2" -> run_table2 ()
  | "fig7" -> run_fig7 ()
  | "equivalence" -> run_equivalence ()
  | "mct" -> run_mct ()
  | "routing" -> run_routing ()
  | "duration" -> run_duration ()
  | "scale" -> run_scale ()
  | "slots" -> run_slots ()
  | "reuse" -> run_reuse ()
  | "ablation" -> run_ablation ()
  | "backend" -> run_backend ()
  | "kernels" -> run_kernels ()
  | "bechamel" -> run_bechamel ()
  | "all" ->
      run_table1 ();
      run_table2 ();
      run_fig7 ();
      run_equivalence ();
      run_mct ();
      run_routing ();
      run_duration ();
      run_scale ();
      run_slots ();
      run_reuse ();
      run_ablation ();
      run_backend ();
      run_kernels ();
      run_bechamel ()
  | other ->
      Printf.eprintf
        "unknown target %S (expected table1|table2|fig7|equivalence|mct|routing|duration|scale|slots|reuse|ablation|backend|kernels|bechamel|all)\n"
        other;
      exit 1
