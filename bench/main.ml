(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation and times the implementation with Bechamel.

   Usage: main.exe [table1|table2|fig7|equivalence|ablation|bechamel|perf|all]
   (default: all).  `perf` samples the shared workloads into percentile
   histograms and, with --against <baseline.json>, exits non-zero when
   p50/p99 regress beyond the gate thresholds. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '#')

(* ------------------------------------------------------------------ *)
(* Experiment reproduction                                            *)

let run_table1 () =
  section "E1 / Table I";
  print_string (Report.Experiments.table1_report ())

let run_table2 () =
  section "E2 / Table II";
  print_string (Report.Experiments.table2_report ())

let run_fig7 () =
  section "E4 / Fig 7";
  print_string (Report.Experiments.fig7_report ())

let run_equivalence () =
  section "E3 / Functional equivalence";
  print_string (Report.Experiments.equivalence_report ())

let run_mct () =
  section "E6 / Future work: dynamic multiple-control Toffoli";
  print_string (Report.Experiments.mct_report ())

let run_routing () =
  section "E7 / Routing study (extension)";
  print_string (Report.Experiments.routing_report ())

let run_duration () =
  section "E8 / Wall-clock study (extension)";
  print_string (Report.Experiments.duration_report ())

let run_scale () =
  section "E9 / Scalability study (extension)";
  print_string (Report.Experiments.scale_report ())

let run_slots () =
  section "E11 / Multi-slot frontier (extension)";
  print_string (Report.Experiments.slots_report ())

let run_reuse () =
  section "E14 / Causal-cone qubit reuse (extension)";
  print_string (Report.Experiments.reuse_report ())

let run_sparsity () =
  section "E15 / Static sparsity bounds vs measured (extension)";
  print_string (Report.Experiments.sparsity_report ())

(* Ablation: design choices DESIGN.md calls out — ancilla sharing
   policy (Lemma 1) and the peephole cleanup. *)
let run_ablation () =
  section "Ablation: ancilla sharing (Lemma 1) and peephole cleanup";
  let rows =
    List.concat_map
      (fun (o : Algorithms.Oracle.t) ->
        let dj = Algorithms.Dj.circuit o in
        let variant label scheme =
          let r = Dqc.Toffoli_scheme.transform scheme dj in
          let expanded = Decompose.Pass.expand_cv r.Dqc.Transform.circuit in
          let optimized = Decompose.Peephole.cancel_inverses expanded in
          [
            o.name;
            label;
            string_of_int (Circuit.Circ.num_qubits r.circuit);
            string_of_int (List.length r.iteration_order);
            string_of_int (Circuit.Metrics.gate_count expanded);
            string_of_int (Circuit.Metrics.gate_count optimized);
            Printf.sprintf "%.4f" (Dqc.Equivalence.tv_distance dj r);
          ]
        in
        [
          variant "dyn2 fresh" (Dqc.Toffoli_scheme.Dynamic_2_shared `Fresh);
          variant "dyn2 per-target" Dqc.Toffoli_scheme.Dynamic_2;
          variant "dyn2 global" (Dqc.Toffoli_scheme.Dynamic_2_shared `Global);
        ])
      Algorithms.Dj_toffoli.oracles
  in
  print_string
    (Report.Table.render
       ~headers:
         [ "Benchmark"; "variant"; "qubits"; "iters"; "gates"; "peephole"; "TV" ]
       ~rows ())

(* ------------------------------------------------------------------ *)
(* Execution-backend study: the tentpole acceptance run.  Times the
   seed serial runner against Backend.run in its dense configurations
   (prefix cache on/off, 1 vs all domains) and the auto-selected
   backend, on 4096 shots of the 10-qubit Table II DJ family head,
   then checks seed-determinism across domain counts. *)

let obs_json_path = "BENCH_obs.json"

(* The Table II AND family pushed to 9 data qubits (Mct_bench stops at
   8): one C^9X oracle, 10 qubits total with the answer qubit.  Shared
   by the backend study and the lint-throughput group. *)
let and_9 =
  let truth =
    Algorithms.Boolean_fun.of_fun ~arity:9 (fun k -> k = (1 lsl 9) - 1)
  in
  Algorithms.Oracle.make ~name:"AND_9" ~arity:9 ~truth
    [
      Circuit.Instruction.Unitary
        (Circuit.Instruction.app
           ~controls:(List.init 9 (fun v -> v))
           Circuit.Gate.X 9);
    ]

let run_backend () =
  section "E12 / Execution backends: serial vs parallel vs prefix-cached";
  let dj = Algorithms.Dj.circuit and_9 in
  let plan = Sim.Measurement_plan.measure_all in
  let shots = 4096 in
  let seed = 0xBACC in
  let domains = Sim.Parallel.recommended_domains () in
  Printf.printf
    "workload: %d shots of DJ(AND_9) — %d qubits, %d gates — measured on all \
     qubits\nrecommended domains on this machine: %d\n\n"
    shots
    (Circuit.Circ.num_qubits dj)
    (Circuit.Metrics.gate_count dj)
    domains;
  let time f =
    let t0 = Unix.gettimeofday () in
    let h = f () in
    (h, Unix.gettimeofday () -. t0)
  in
  let dense = Sim.Backend.Statevector_dense in
  let h_serial, t_serial =
    time (fun () -> Sim.Runner.run_plan ~seed ~shots ~plan dj)
  in
  let _, t_nocache =
    time (fun () ->
        Sim.Backend.run ~policy:dense ~seed ~domains:1 ~plan
          ~prefix_cache:false ~shots dj)
  in
  let h_prefix, t_prefix =
    time (fun () ->
        Sim.Backend.run ~policy:dense ~seed ~domains:1 ~plan ~shots dj)
  in
  let h_par, t_par =
    time (fun () -> Sim.Backend.run ~policy:dense ~seed ~plan ~shots dj)
  in
  let h_auto, t_auto = time (fun () -> Sim.Backend.run ~seed ~plan ~shots dj) in
  let line label t =
    Printf.printf "  %-46s %9.1f ms   %5.2fx vs serial\n" label (t *. 1000.)
      (t_serial /. t)
  in
  line "Runner.run_shots (seed serial baseline)" t_serial;
  line "Backend.run dense, 1 domain, no prefix cache" t_nocache;
  line "Backend.run dense, 1 domain, prefix cache" t_prefix;
  line
    (Printf.sprintf "Backend.run dense, %d domain(s), prefix cache" domains)
    t_par;
  line "Backend.run auto (exact-branch alias sampler)" t_auto;
  let same a b = Sim.Runner.to_list a = Sim.Runner.to_list b in
  Printf.printf
    "\ndeterminism: dense histograms identical across 1/%d domains and \
     prefix-cache on/off: %b\n"
    domains
    (same h_prefix h_par
    && same h_prefix
         (Sim.Backend.run ~policy:dense ~seed ~domains:4 ~plan ~shots dj));
  Printf.printf
    "serial baseline total %d shots, parallel total %d, auto total %d\n"
    (Sim.Runner.shots h_serial) (Sim.Runner.shots h_par)
    (Sim.Runner.shots h_auto);
  (* One full-size instrumented replay of the prefix-cached
     configuration: checks the collector does not perturb the sampled
     histogram and seeds the BENCH_obs.json metrics trajectory. *)
  let collector, (h_obs, _) =
    Obs.with_collector (fun () ->
        time (fun () ->
            Sim.Backend.run ~policy:dense ~seed ~domains:1 ~plan ~shots dj))
  in
  (* Telemetry overhead against the <2% budget (docs/OBSERVABILITY.md).
     Wall-clock A/B comparison is hopeless here: back-to-back runs of
     the same binary drift by 10-25% under CPU steal on a shared host,
     far more than the instrumentation costs.  So measure *process CPU
     time* (Obs.Clock.now_cpu_ns — steal never inflates it), run
     interleaved pairs with the order alternating round to round, with
     a full major GC before every sample (a run allocates megabytes of
     statevector copies, so inherited heap state otherwise dominates
     the per-sample CPU), and sample in plain/instrumented/plain
     *triples*: each instrumented run is compared to the mean of the
     two plain runs flanking it, which cancels not just a shared
     regime (as a pair would) but any *linear* drift across the
     triple — the component that dominates pair-ratio variance when a
     frequency ramp lands mid-pair.  The median over triples then
     drops the ones split by a step change.  (A best-of-N comparison —
     the perf gate's trick — is *worse* here: with tens of samples per
     arm instead of the gate's thousands, the deep sparse lower tail
     makes the min itself high-variance.)  The measurement runs the
     reference workload itself: telemetry cost is a fixed per-run
     component (buffer allocation, the end-of-run flush and its GC
     debt) plus a small sampled per-shot component, so a scaled-down
     shot count would overweigh the fixed part and measure a workload
     the budget is not stated against. *)
  let overhead_shots = shots in
  let wanted_triples = 25 in
  let max_triples = 75 in
  (* a triple is only admitted when its two plain runs agree this
     closely: flanks that disagree mean a co-tenant evicted our caches
     or the host stepped frequency mid-triple, and the instrumented
     run in the middle absorbed an unknowable share of it *)
  let flank_tolerance = 0.05 in
  let run_once () =
    Gc.full_major ();
    let t0 = Obs.Clock.now_cpu_ns () in
    let h =
      Sim.Backend.run ~policy:dense ~seed ~domains:1 ~plan
        ~shots:overhead_shots dj
    in
    (h, Int64.to_float (Int64.sub (Obs.Clock.now_cpu_ns ()) t0) /. 1e9)
  in
  let t_plain = ref [] and ratios = ref [] in
  let attempts = ref 0 in
  while List.length !ratios < wanted_triples && !attempts < max_triples do
    incr attempts;
    let _, t_before = run_once () in
    let _, (_, t_obs) = Obs.with_collector run_once in
    let _, t_after = run_once () in
    if
      Float.abs (t_after -. t_before) /. Float.min t_before t_after
      <= flank_tolerance
    then begin
      let plain = (t_before +. t_after) /. 2. in
      t_plain := plain :: !t_plain;
      ratios := (t_obs /. plain) :: !ratios
    end
  done;
  (* total contention fallback: never divide by an empty sample *)
  if !ratios = [] then begin
    let _, t_before = run_once () in
    let _, (_, t_obs) = Obs.with_collector run_once in
    t_plain := [ t_before ];
    ratios := [ t_obs /. t_before ]
  end;
  let median l =
    let s = Array.of_list l in
    Array.sort compare s;
    s.(Array.length s / 2)
  in
  let n_clean = List.length !ratios in
  let r_med = median !ratios in
  Printf.printf
    "\ntelemetry overhead (prefix-cached run, collector installed): \
     %+.2f%% (median of %d regime-stable plain/instrumented/plain \
     CPU-time triples of %d sampled, at %d shots, ~%.1f ms per run); \
     histograms identical: %b\n"
    (100. *. (r_med -. 1.))
    n_clean !attempts overhead_shots
    (median !t_plain *. 1000.)
    (same h_obs h_prefix);
  Obs.Metrics_json.write ~path:obs_json_path collector;
  Printf.printf "engine metrics written to %s\n" obs_json_path

(* ------------------------------------------------------------------ *)
(* Kernel-differential smoke: the compiled execution path must agree
   with the generic interpreter on the paper's benchmark family,
   amplitude for amplitude.  Fast enough for `make kernel-smoke`. *)

let run_kernels () =
  section "E13 / Kernel differential: compiled plans vs generic interpreter";
  let cases =
    List.concat_map
      (fun name ->
        let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name name) in
        let dj = Algorithms.Dj.circuit o in
        let dyn scheme label =
          ( Printf.sprintf "DJ(%s) %s" name label,
            (Dqc.Toffoli_scheme.transform scheme dj).Dqc.Transform.circuit )
        in
        [
          (Printf.sprintf "DJ(%s) traditional" name, dj);
          dyn Dqc.Toffoli_scheme.Dynamic_1 "dyn1";
          dyn Dqc.Toffoli_scheme.Dynamic_2 "dyn2";
        ])
      [ "AND"; "OR"; "NAND"; "CARRY" ]
  in
  let seeds = [ 1; 7; 42 ] in
  let failures = ref 0 in
  List.iter
    (fun (label, c) ->
      let program = Sim.Program.compile c in
      List.iter
        (fun seed ->
          let compiled =
            Sim.Statevector.run ~rng:(Random.State.make [| seed |]) c
          in
          let reference =
            Sim.Statevector.run_reference ~rng:(Random.State.make [| seed |]) c
          in
          let ok =
            Sim.Statevector.register compiled
            = Sim.Statevector.register reference
            && Linalg.Cvec.approx_equal ~eps:1e-9
                 (Sim.Statevector.amplitudes compiled)
                 (Sim.Statevector.amplitudes reference)
          in
          if not ok then begin
            incr failures;
            Printf.printf "  MISMATCH %-24s seed %d\n" label seed
          end)
        seeds;
      Printf.printf "  %-24s %2d ops (%d gates, %d fused, %d fallback)\n" label
        (Sim.Program.length program)
        (Sim.Program.source_gates program)
        (Sim.Program.fused_count program)
        (Sim.Program.fallback_count program))
    cases;
  if !failures > 0 then begin
    Printf.printf "\nkernel differential: %d MISMATCH(ES)\n" !failures;
    exit 1
  end
  else
    Printf.printf "\nkernel differential: %d circuits x %d seeds identical\n"
      (List.length cases) (List.length seeds)

(* ------------------------------------------------------------------ *)
(* Analyze gate: differential soundness of the static resource
   analyzer.  Three obligations:
   1. on hundreds of random dynamic circuits, the per-segment static
      amplitude bound dominates the nonzero count measured by dense
      per-instruction replay on every seed, and every per-segment
      Clifford verdict yields a witness the stabilizer engine accepts;
   2. the Auto policy picks the stabilizer engine on the
      adaptive-parity workload the old whole-circuit scan sent dense,
      witnessed by the backend.select.stabilizer counter;
   3. analysis overhead stays under 5% of pipeline compile time on
      DJ(AND_9). *)

let analyze_gate_json_path = "BENCH_analyze.json"

let random_dynamic_circuit rng =
  let open Circuit in
  let nq = 2 + Random.State.int rng 9 in
  let nb = 1 + Random.State.int rng 2 in
  let m = 5 + Random.State.int rng 31 in
  let gates = Gate.[ H; X; Y; Z; S; Sdg; T; Tdg; V; Rz 0.37 ] in
  let any_gate () = List.nth gates (Random.State.int rng (List.length gates)) in
  let instr _ =
    match Random.State.int rng 10 with
    | 0 | 1 | 2 | 3 ->
        Instruction.Unitary (Instruction.app (any_gate ()) (Random.State.int rng nq))
    | 4 | 5 ->
        let c = Random.State.int rng nq and t = Random.State.int rng nq in
        let g = if Random.State.bool rng then Gate.X else Gate.Z in
        if c = t then Instruction.Unitary (Instruction.app g t)
        else Instruction.Unitary (Instruction.app ~controls:[ c ] g t)
    | 6 ->
        let c1 = Random.State.int rng nq
        and c2 = Random.State.int rng nq
        and t = Random.State.int rng nq in
        if c1 = t || c2 = t || c1 = c2 then
          Instruction.Unitary (Instruction.app Gate.X t)
        else Instruction.Unitary (Instruction.app ~controls:[ c1; c2 ] Gate.X t)
    | 7 ->
        Instruction.Measure
          { qubit = Random.State.int rng nq; bit = Random.State.int rng nb }
    | 8 -> Instruction.Reset (Random.State.int rng nq)
    | _ ->
        Instruction.Conditioned
          ( Instruction.cond_bit (Random.State.int rng nb)
              (Random.State.bool rng),
            Instruction.app (any_gate ()) (Random.State.int rng nq) )
  in
  let roles = Array.make nq Circ.Data in
  Circ.create ~roles ~num_bits:nb (List.init m instr)

(* Replay [c] densely and check, after every instruction, that the
   nonzero-amplitude count stays within 2^bound of the segment the
   *next* instruction opens (a segment's peak covers the pre-states of
   its instructions, so the state after instruction [i] is bounded by
   the segment holding [i+1]). *)
let check_sparsity_sound ~seeds c (summary : Lint.Resource.summary) =
  let instrs = Array.of_list (Circuit.Circ.instructions c) in
  let m = Array.length instrs in
  if m = 0 then true
  else begin
    let segs = Array.of_list summary.Lint.Resource.segments in
    let seg_of = Array.make m 0 in
    Array.iteri
      (fun k (s : Lint.Resource.segment) ->
        for i = s.Lint.Resource.start to s.Lint.Resource.stop - 1 do
          seg_of.(i) <- k
        done)
      segs;
    let bound_after i =
      let k = if i + 1 < m then seg_of.(i + 1) else Array.length segs - 1 in
      segs.(k).Lint.Resource.log2_bound_peak
    in
    let nq = Circuit.Circ.num_qubits c and nb = Circuit.Circ.num_bits c in
    let ok = ref true in
    List.iter
      (fun seed ->
        let rng = Random.State.make [| seed |] in
        let random () = Random.State.float rng 1.0 in
        let st = Sim.State.create nq ~num_bits:nb in
        Array.iteri
          (fun i instr ->
            let p =
              Sim.Program.compile_instructions ~fuse:false ~num_qubits:nq
                ~num_bits:nb [ instr ]
            in
            Sim.Program.exec ~random st p;
            let v = Sim.State.amplitudes st in
            let nz = ref 0 in
            for k = 0 to Linalg.Cvec.dim v - 1 do
              if Complex.norm2 (Linalg.Cvec.get v k) > 1e-18 then incr nz
            done;
            if !nz > 1 lsl bound_after i then ok := false)
          instrs)
      seeds;
    !ok
  end

let run_analyze_gate () =
  section "Analyze gate: static analyzer soundness + selection acceptance";
  let circuits = 200 in
  let seeds = [ 1; 7; 42 ] in
  let rng = Random.State.make [| 0xA17A |] in
  let bound_failures = ref 0 and witness_failures = ref 0 in
  for k = 1 to circuits do
    let c = random_dynamic_circuit rng in
    let summary = Lint.Resource.analyze c in
    if not (check_sparsity_sound ~seeds c summary) then begin
      incr bound_failures;
      Printf.printf "  BOUND VIOLATION on random circuit %d (%d qubits)\n" k
        (Circuit.Circ.num_qubits c)
    end;
    if
      summary.Lint.Resource.clifford
      && not (Sim.Stabilizer.supports summary.Lint.Resource.witness)
    then begin
      incr witness_failures;
      Printf.printf "  WITNESS REJECTED on random circuit %d\n" k
    end
  done;
  Printf.printf
    "differential: %d random dynamic circuits x %d seeds — %d bound \
     violation(s), %d rejected witness(es)\n"
    circuits (List.length seeds) !bound_failures !witness_failures;
  (* acceptance: per-segment selection beats the whole-circuit scan *)
  let xora = Algorithms.Mct_bench.adaptive_parity 15 in
  let old_scan_dense =
    (* the pre-analyzer Auto: whole-circuit stabilizer scan, then the
       exact engine's hard <= 16-qubit cutoff, then dense *)
    (not (Sim.Stabilizer.supports xora))
    && Circuit.Circ.num_qubits xora > 16
  in
  let collector, selected =
    Obs.with_collector (fun () -> Sim.Backend.select ~shots:1024 xora)
  in
  let stab_count =
    Obs.Collector.counter collector "backend.select.stabilizer"
  in
  Obs.Metrics_json.write ~path:analyze_gate_json_path collector;
  let selection_ok =
    old_scan_dense && selected = `Stabilizer && stab_count >= 1
  in
  Printf.printf
    "selection: XORA_15 old whole-circuit scan -> dense %b; Auto -> %s \
     (backend.select.stabilizer = %d, metrics in %s)\n"
    old_scan_dense
    (match selected with
    | `Stabilizer -> "stabilizer"
    | `Exact -> "exact"
    | `Dense -> "dense"
    | `Sparse -> "sparse"
    | `Hybrid -> "hybrid")
    stab_count analyze_gate_json_path;
  (* overhead: analysis must stay a sliver of pipeline compile *)
  let dj = Algorithms.Dj.circuit and_9 in
  let options =
    let module O = Dqc.Pipeline.Options in
    O.default
    |> O.with_scheme Dqc.Toffoli_scheme.Dynamic_1
    |> O.with_check_equivalence false
  in
  let cpu_best f =
    let best = ref infinity in
    for _ = 1 to 20 do
      let t0 = Obs.Clock.now_cpu_ns () in
      ignore (f ());
      let dt = Int64.to_float (Int64.sub (Obs.Clock.now_cpu_ns ()) t0) in
      if dt < !best then best := dt
    done;
    !best
  in
  (* The pipeline's analyze.resources pass shares the abstract
     interpretation trace with the lint/analyze passes through the pass
     context (Pass.fresh_facts), so the cost a compile actually pays for
     the resource summary is the marginal walk over a trace it already
     has.  Gate on that marginal cost; the cold (trace included) time is
     printed alongside for visibility but tracks the interpreter, whose
     budget is the perf regression gate's. *)
  let t_cold = cpu_best (fun () -> Lint.Resource.analyze dj) in
  let trace = Lint.Trace.run dj in
  let t_analyze = cpu_best (fun () -> Lint.Resource.analyze ~trace dj) in
  let t_compile = cpu_best (fun () -> Dqc.Pipeline.compile ~options dj) in
  let overhead = t_analyze /. t_compile in
  Printf.printf
    "overhead: analyze DJ(AND_9) %.1f us marginal over a shared trace \
     (%.1f us cold) vs pipeline compile %.1f us — %.2f%% (budget 5%%)\n"
    (t_analyze /. 1e3) (t_cold /. 1e3) (t_compile /. 1e3) (100. *. overhead);
  let ok =
    !bound_failures = 0 && !witness_failures = 0 && selection_ok
    && overhead < 0.05
  in
  Printf.printf "analyze gate: %s\n" (if ok then "PASS" else "FAIL");
  if not ok then exit 1

(* Certified-optimizer gate: the full report corpus (Table I dynamic,
   Table II traditional/dyn1/dyn2, reuse suite) must optimize with
   every accepted rewrite Proved by the path-sum certifier — a single
   Refuted rewrite aborts the gate — and the dyn2 family must come out
   strictly smaller (its trailing conditioned uncomputations are
   provably unobservable).  Fold and reset-removal must each fire
   somewhere in the corpus, so the gate also notices a silently inert
   rewrite family. *)
let run_opt_gate () =
  section "Optimize gate: certified rewrites over the benchmark corpus";
  let rows =
    try Report.Experiments.optimize_rows ()
    with Dqc.Optimize.Refuted msg ->
      Printf.printf "optimize gate: REFUTED REWRITE — %s\n" msg;
      exit 1
  in
  let unproved =
    List.filter (fun (r : Report.Experiments.optimize_row) -> not r.proved) rows
  in
  List.iter
    (fun (r : Report.Experiments.optimize_row) ->
      Printf.printf "  UNPROVED: %s [%s]\n" r.name r.scheme)
    unproved;
  let dyn2 =
    List.filter
      (fun (r : Report.Experiments.optimize_row) -> r.scheme = "dyn2")
      rows
  in
  let dyn2_stuck =
    List.filter
      (fun (r : Report.Experiments.optimize_row) ->
        r.gates_after >= r.gates_before)
      dyn2
  in
  List.iter
    (fun (r : Report.Experiments.optimize_row) ->
      Printf.printf "  NO DYN2 REDUCTION: %s (%d -> %d gates)\n" r.name
        r.gates_before r.gates_after)
    dyn2_stuck;
  let total f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let folded = total (fun (r : Report.Experiments.optimize_row) -> r.folded) in
  let resets =
    total (fun (r : Report.Experiments.optimize_row) -> r.resets_removed)
  in
  let saved =
    total
      (fun (r : Report.Experiments.optimize_row) ->
        r.gates_before - r.gates_after)
  in
  Printf.printf
    "corpus: %d rows (%d dyn2), %d gates saved, %d measures folded, %d \
     resets removed, %d unproved\n"
    (List.length rows) (List.length dyn2) saved folded resets
    (List.length unproved);
  let ok =
    unproved = [] && dyn2 <> [] && dyn2_stuck = [] && folded > 0 && resets > 0
  in
  Printf.printf "optimize gate: %s\n" (if ok then "PASS" else "FAIL");
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* Sparse gate: the sparse statevector engine and per-segment hybrid
   execution.  Four obligations:
   1. differential equivalence — on hundreds of random dynamic
      circuits the dense and sparse engines agree amplitude for
      amplitude (and on the classical register) from the same seed;
   2. per-segment selection witness — Auto routes the basis-sparse
      randomized AND ladder (a Table-I-style Toffoli network under
      the dyn2 ancilla-unrolled substitution) to the sparse engine
      and the mixed-sparsity workload to the hybrid executor with
      per-shot representation handoffs, counters written to
      BENCH_sparse.json, histograms identical to forced dense;
   3. over the dense cap — a >= 28-qubit basis-sparse dyn2 ladder
      runs on the sparse engine while the dense engine cannot even
      allocate its statevector;
   4. wall clock — the auto selection beats the forced dense engine
      on the randomized AND ladder. *)

let sparse_gate_json_path = "BENCH_sparse.json"

(* A Table-I-style AND network under the dyn2 substitution: inputs
   0..k-1, ladder ancillas k..2k-3, the AND of all inputs
   accumulating on the last ancilla, measured into bit 0.  The first
   [superposed] inputs are H-prepared and measured mid-circuit, which
   defeats the exact branching engine (2^superposed leaves) while
   keeping the static amplitude bound at [superposed]; the rest are
   X-prepared, so the ladder itself stays in the computational
   basis.  [superposed = 0] is the fully deterministic wide family. *)
let and_ladder_dyn2 ~inputs ~superposed =
  let open Circuit in
  let k = inputs in
  let nq = (2 * k) - 1 in
  let h = min superposed k in
  let b =
    Circ.Builder.make ~roles:(Array.make nq Circ.Data) ~num_bits:(h + 1) ()
  in
  for q = 0 to h - 1 do
    Circ.Builder.h b q
  done;
  for q = h to k - 1 do
    Circ.Builder.x b q
  done;
  for q = 0 to h - 1 do
    Circ.Builder.measure b ~qubit:q ~bit:(q + 1)
  done;
  Circ.Builder.ccx b 0 1 k;
  for j = 1 to k - 2 do
    Circ.Builder.ccx b (k + j - 1) (j + 1) (k + j)
  done;
  Circ.Builder.measure b ~qubit:(nq - 1) ~bit:0;
  Dqc.Toffoli_scheme.prepare Dqc.Toffoli_scheme.Dynamic_2 (Circ.Builder.build b)

(* Mixed sparsity: 12 qubits in uniform superposition, measured up
   front (amplitude bound 12 against a 16-qubit register — inside the
   dense margin), then a basis Toffoli with measure / reset /
   feed-forward on the remaining 3 (bound ~0 — sparse).  Auto must
   plan this per segment and hand the state representation off
   mid-shot. *)
let hybrid_witness () =
  let open Circuit in
  let b =
    Circ.Builder.make ~roles:(Array.make 15 Circ.Data) ~num_bits:13 ()
  in
  for q = 0 to 11 do
    Circ.Builder.h b q
  done;
  for q = 0 to 11 do
    Circ.Builder.measure b ~qubit:q ~bit:(q + 1)
  done;
  Circ.Builder.x b 12;
  Circ.Builder.x b 13;
  Circ.Builder.ccx b 12 13 14;
  Circ.Builder.measure b ~qubit:14 ~bit:0;
  Circ.Builder.reset b 14;
  Circ.Builder.conditioned b ~bit:0 Gate.X 14;
  Circ.Builder.measure b ~qubit:14 ~bit:0;
  Dqc.Toffoli_scheme.prepare Dqc.Toffoli_scheme.Dynamic_2 (Circ.Builder.build b)

let engine_tag = function
  | `Dense -> "dense"
  | `Sparse -> "sparse"
  | `Hybrid -> "hybrid"
  | `Stabilizer -> "stabilizer"
  | `Exact -> "exact"

let run_sparse_gate () =
  section
    "Sparse gate: dense/sparse differential + per-segment hybrid execution";
  (* 1. differential equivalence, dense vs sparse *)
  let rng = Random.State.make [| 0x5FA25E |] in
  let circuits = 150 in
  let mismatches = ref 0 in
  for _ = 1 to circuits do
    let c = random_dynamic_circuit rng in
    let p = Sim.Program.compile c in
    List.iter
      (fun seed ->
        let dense = Sim.Program.run ~rng:(Random.State.make [| seed |]) p in
        let sparse = Sim.Sparse.run ~rng:(Random.State.make [| seed |]) p in
        let amps = Sim.State.amplitudes dense in
        let ok = ref (Sim.State.register dense = Sim.Sparse.register sparse) in
        for k = 0 to Linalg.Cvec.dim amps - 1 do
          let a = Linalg.Cvec.get amps k
          and b = Sim.Sparse.amplitude sparse k in
          if
            abs_float (a.Complex.re -. b.Complex.re) > 1e-9
            || abs_float (a.Complex.im -. b.Complex.im) > 1e-9
          then ok := false
        done;
        if not !ok then incr mismatches)
      [ 17; 4242 ]
  done;
  Printf.printf
    "differential: %d random dynamic circuits x 2 seeds — %d mismatch(es)\n"
    circuits !mismatches;
  (* 2. per-segment selection witness + cross-engine histograms *)
  let shots = 64 in
  let rl = and_ladder_dyn2 ~inputs:7 ~superposed:6 in
  let hw = hybrid_witness () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let dense = Sim.Backend.Statevector_dense in
  let collector, (sel_rl, sel_hw, (h_auto, t_auto), (h_dense, t_dense), hw_auto)
      =
    Obs.with_collector (fun () ->
        let sel_rl = Sim.Backend.select ~shots rl in
        let sel_hw = Sim.Backend.select ~shots hw in
        let auto = time (fun () -> Sim.Backend.run ~seed:3 ~shots rl) in
        let forced =
          time (fun () -> Sim.Backend.run ~policy:dense ~seed:3 ~shots rl)
        in
        let hw_auto = Sim.Backend.run ~seed:3 ~shots hw in
        (sel_rl, sel_hw, auto, forced, hw_auto))
  in
  Obs.Metrics_json.write ~path:sparse_gate_json_path collector;
  let counter = Obs.Collector.counter collector in
  let d2s = counter "backend.handoff.dense_to_sparse" in
  let selection_ok =
    sel_rl = `Sparse && sel_hw = `Hybrid
    && counter "backend.select.sparse" >= 1
    && counter "backend.select.hybrid" >= 1
    && d2s >= shots
  in
  let equal a b = Sim.Runner.to_list a = Sim.Runner.to_list b in
  let hw_dense = Sim.Backend.run ~policy:dense ~seed:3 ~shots hw in
  let agree_ok = equal h_auto h_dense && equal hw_auto hw_dense in
  Printf.printf
    "selection: AND-7 rladder dyn2 -> %s, hybrid witness -> %s (%d \
     dense->sparse handoffs over %d shots, metrics in %s)\n"
    (engine_tag sel_rl) (engine_tag sel_hw) d2s shots sparse_gate_json_path;
  Printf.printf
    "cross-engine histograms: auto = forced dense on both workloads: %b\n"
    agree_ok;
  (* 3. the wide basis-sparse family over the dense cap *)
  let wide = and_ladder_dyn2 ~inputs:15 ~superposed:0 in
  let nq_wide = Circuit.Circ.num_qubits wide in
  let cap_ok =
    match Sim.State.create nq_wide ~num_bits:1 with
    | exception Sim.State.Dense_cap_exceeded _ -> true
    | _ -> false
  in
  let h_wide = Sim.Backend.run ~seed:9 ~shots:32 wide in
  let h_forced =
    Sim.Backend.run ~policy:Sim.Backend.Sparse_statevector ~seed:9 ~shots:32
      wide
  in
  let wide_ok =
    cap_ok && equal h_wide h_forced && Sim.Runner.shots h_wide = 32
  in
  Printf.printf
    "over-cap: AND-15 ladder dyn2 is %d qubits — dense create raises \
     Dense_cap_exceeded %b, auto runs sparse and matches the forced sparse \
     policy %b\n"
    nq_wide cap_ok
    (equal h_wide h_forced);
  (* 4. wall clock: auto (sparse) vs forced dense on the same bench *)
  let speedup_ok = t_auto < t_dense in
  Printf.printf
    "wall clock: AND-7 rladder dyn2 x %d shots — auto %.1f ms vs forced \
     dense %.1f ms (%.1fx)\n"
    shots (t_auto *. 1000.) (t_dense *. 1000.)
    (t_dense /. t_auto);
  let ok =
    !mismatches = 0 && selection_ok && agree_ok && wide_ok && speedup_ok
  in
  Printf.printf "sparse gate: %s\n" (if ok then "PASS" else "FAIL");
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* Bechamel timing                                                    *)

(* Lint-throughput workloads: the full pass catalogue over the
   10-qubit DJ(AND_9) family — the traditional circuit under the
   general passes and its dynamic-1 compilation under the DQC gate.
   Shared by the bechamel group (group "lint" in dqc.bench/1) and the
   instructions/second summary printed after the timing table. *)
let lint_workloads =
  lazy
    (let dj = Algorithms.Dj.circuit and_9 in
     let compiled =
       let module O = Dqc.Pipeline.Options in
       let options =
         O.default
         |> O.with_scheme Dqc.Toffoli_scheme.Dynamic_1
         |> O.with_check_equivalence false
       in
       (Dqc.Pipeline.compile ~options dj).Dqc.Pipeline.circuit
     in
     [
       ("lint DJ(AND_9) traditional", dj, Lint.default_passes);
       ("lint DJ(AND_9) dyn1 dqc", compiled, Lint.dqc_passes ());
     ])

(* Static-analyzer throughput over the same family plus the
   per-segment-selection workload; instructions/second is printed next
   to the lint group's after the timing table. *)
let analyze_workloads =
  lazy
    (List.map
       (fun (name, c, _) ->
         ( "analyze " ^ String.sub name 5 (String.length name - 5),
           c ))
       (Lazy.force lint_workloads)
    @ [ ("analyze XORA_15", Algorithms.Mct_bench.adaptive_parity 15) ])

(* The shared workload registry: every entry is a named nullary
   closure, consumed both by the bechamel group (OLS ns/op estimates
   in `bechamel`) and by the percentile sampler behind the `perf`
   regression gate — one definition, two measurement strategies. *)
let workloads () : (string * (unit -> unit)) list =
  let bv_transform n =
    let s = String.make n '1' in
    ( Printf.sprintf "transform BV-%d" n,
      fun () -> ignore (Dqc.Transform.transform (Algorithms.Bv.circuit s)) )
  in
  let dj_transform scheme label =
    let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "CARRY") in
    let dj = Algorithms.Dj.circuit o in
    ( Printf.sprintf "transform DJ(CARRY) %s" label,
      fun () -> ignore (Dqc.Toffoli_scheme.transform scheme dj) )
  in
  let exact_dj scheme label =
    let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
    let dj = Algorithms.Dj.circuit o in
    let r = Dqc.Toffoli_scheme.transform scheme dj in
    ( Printf.sprintf "exact dist DJ(AND) %s" label,
      fun () -> ignore (Sim.Exact.register_distribution r.Dqc.Transform.circuit)
    )
  in
  let ghz_like n extra_phases =
    let roles = Array.make n Circuit.Circ.Data in
    let b = Circuit.Circ.Builder.make ~roles ~num_bits:0 () in
    for q = 0 to n - 1 do
      Circuit.Circ.Builder.h b q
    done;
    for q = 0 to n - 2 do
      Circuit.Circ.Builder.cx b q (q + 1)
    done;
    if extra_phases then
      for q = 0 to n - 1 do
        Circuit.Circ.Builder.gate b Circuit.Gate.T q;
        Circuit.Circ.Builder.gate b Circuit.Gate.S q
      done;
    Circuit.Circ.Builder.build b
  in
  let statevector n =
    let c = ghz_like n false in
    ( Printf.sprintf "statevector %d qubits" n,
      fun () ->
        let rng = Random.State.make [| 1 |] in
        ignore (Sim.Statevector.run ~rng c) )
  in
  let shots =
    let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
    let r =
      Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2
        (Algorithms.Dj.circuit o)
    in
    ( "1024 shots DJ(AND) dyn2",
      fun () ->
        ignore (Sim.Runner.run_shots ~shots:1024 r.Dqc.Transform.circuit) )
  in
  let peephole =
    let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "CARRY") in
    let r =
      Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_1
        (Algorithms.Dj.circuit o)
    in
    let expanded = Decompose.Pass.expand_cv r.Dqc.Transform.circuit in
    ( "peephole DJ(CARRY) dyn1",
      fun () -> ignore (Decompose.Peephole.cancel_inverses expanded) )
  in
  let stabilizer n =
    let s = String.make n '1' in
    let r = Dqc.Transform.transform (Algorithms.Bv.circuit s) in
    ( Printf.sprintf "stabilizer BV-%d dyn shot" n,
      fun () ->
        let rng = Random.State.make [| 3 |] in
        ignore (Sim.Stabilizer.run ~rng r.Dqc.Transform.circuit) )
  in
  let density =
    let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND") in
    let r =
      Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2
        (Algorithms.Dj.circuit o)
    in
    ( "density DJ(AND) dyn2 (noisy, exact)",
      fun () ->
        ignore
          (Sim.Density.run ~model:Sim.Noise.default r.Dqc.Transform.circuit) )
  in
  let routing =
    let c = Algorithms.Bv.circuit (String.make 12 '1') in
    let coupling = Transpile.Coupling.line 13 in
    ("route BV-12 onto line", fun () -> ignore (Transpile.Route.run ~coupling c))
  in
  let native =
    let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "CARRY") in
    let r =
      Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2
        (Algorithms.Dj.circuit o)
    in
    ( "basis-lower DJ(CARRY) dyn2",
      fun () -> ignore (Transpile.Basis.to_native r.Dqc.Transform.circuit) )
  in
  (* compiled-program kernel study: lowering cost in isolation, the
     fused vs unfused op streams, and the generic full-scan interpreter
     over the same SoA storage as the reference point *)
  let kernels =
    let n = 12 in
    let c = ghz_like n true in
    let fused = Sim.Program.compile c in
    let unfused = Sim.Program.compile ~fuse:false c in
    let rng () = Random.State.make [| 7 |] in
    [
      ( Printf.sprintf "kernels compile %d qubits" n,
        fun () -> ignore (Sim.Program.compile c) );
      ( Printf.sprintf "kernels fused %d qubits" n,
        fun () -> ignore (Sim.Program.run ~rng:(rng ()) fused) );
      ( Printf.sprintf "kernels unfused %d qubits" n,
        fun () -> ignore (Sim.Program.run ~rng:(rng ()) unfused) );
      ( Printf.sprintf "kernels reference %d qubits" n,
        fun () -> ignore (Sim.Statevector.run_reference ~rng:(rng ()) c) );
    ]
  in
  (* serial vs parallel vs prefix-cached shot execution on the Table II
     DJ family (dense backend throughout, so only the engine varies) *)
  let backend_engines =
    let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "CARRY") in
    let dj = Algorithms.Dj.circuit o in
    let plan = Sim.Measurement_plan.measure_all in
    let dense = Sim.Backend.Statevector_dense in
    [
      ( "backend serial 256 DJ(CARRY)",
        fun () -> ignore (Sim.Runner.run_plan ~shots:256 ~plan dj) );
      ( "backend dense-nocache 256 DJ(CARRY)",
        fun () ->
          ignore
            (Sim.Backend.run ~policy:dense ~domains:1 ~prefix_cache:false ~plan
               ~shots:256 dj) );
      ( "backend prefix 256 DJ(CARRY)",
        fun () ->
          ignore
            (Sim.Backend.run ~policy:dense ~domains:1 ~plan ~shots:256 dj) );
      ( "backend parallel 256 DJ(CARRY)",
        fun () -> ignore (Sim.Backend.run ~policy:dense ~plan ~shots:256 dj) );
    ]
  in
  let lint_tests =
    List.map
      (fun (name, c, passes) -> (name, fun () -> ignore (Lint.run ~passes c)))
      (Lazy.force lint_workloads)
  in
  let analyze_tests =
    List.map
      (fun (name, c) -> (name, fun () -> ignore (Lint.Resource.analyze c)))
      (Lazy.force analyze_workloads)
  in
  (* the symbolic certifier: no simulation, so the wide instances
     (AND_12 is 13 qubits, XOR_16 is 17) cost about the same as the
     small one — the point of the group *)
  let verify_tests =
    let certify (oracle : Algorithms.Oracle.t) scheme label =
      let dj = Algorithms.Dj.circuit oracle in
      let r = Dqc.Toffoli_scheme.transform scheme dj in
      ( Printf.sprintf "verify DJ(%s) %s" oracle.name label,
        fun () -> ignore (Dqc.Certifier.certify dj r) )
    in
    [
      certify
        (Option.get (Algorithms.Dj_toffoli.oracle_by_name "AND"))
        Dqc.Toffoli_scheme.Dynamic_2 "dyn2";
      certify (Algorithms.Mct_bench.and_n 12) Dqc.Toffoli_scheme.Dynamic_1
        "dyn1";
      certify (Algorithms.Mct_bench.xor_n 16) Dqc.Toffoli_scheme.Dynamic_1
        "dyn1";
    ]
  in
  (* the reuse pass in isolation: scheduling + rewiring cost, no
     certification (the gate is timed separately via reuse_rows) *)
  let reuse_tests =
    let prepared_grover =
      Dqc.Toffoli_scheme.prepare
        (Dqc.Toffoli_scheme.Dynamic_2_shared `Fresh)
        (Algorithms.Grover.measured ~n:3 ~marked:5)
    in
    List.map
      (fun (name, c) -> (name, fun () -> ignore (Dqc.Reuse.rewire c)))
      [
        ("reuse GROVER-3(fresh)", prepared_grover);
        ("reuse SIMON-1011", Algorithms.Simon.measured_circuit "1011");
        ("reuse QPE-4", Algorithms.Qpe.kitaev ~bits:4 ~phase:(3. /. 8.));
      ]
  in
  (* the certified optimizer end to end — abstract interpretation,
     the three sweeps and their channel certificates — on a dyn2
     compilation (uncompute cancellation) and a dynamic BV (measure
     folding + reset removal) *)
  let optimize_tests =
    let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "CARRY") in
    let dyn2 =
      Decompose.Pass.expand_cv
        (Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2
           (Algorithms.Dj.circuit o))
          .Dqc.Transform.circuit
    in
    let bv =
      (Dqc.Transform.transform (Algorithms.Bv.circuit "1000"))
        .Dqc.Transform.circuit
    in
    [
      ("optimize DJ(CARRY) dyn2", fun () -> ignore (Dqc.Optimize.run dyn2));
      ("optimize BV-4 dyn", fun () -> ignore (Dqc.Optimize.run bv));
    ]
  in
  (* the engine-selection study: the same Table-I-style dyn2 AND
     ladder forced dense vs left to Auto (which plans it sparse) — the
     headline pair — plus the hybrid mixed-sparsity witness and a
     single over-the-dense-cap sparse replay *)
  let sparse_tests =
    let rl = and_ladder_dyn2 ~inputs:6 ~superposed:6 in
    let hw = hybrid_witness () in
    let wide_prog =
      Sim.Program.compile (and_ladder_dyn2 ~inputs:15 ~superposed:0)
    in
    [
      ( "sparse dense 64 AND-6 rladder dyn2",
        fun () ->
          ignore
            (Sim.Backend.run ~policy:Sim.Backend.Statevector_dense ~shots:64
               rl) );
      ( "sparse auto 64 AND-6 rladder dyn2",
        fun () -> ignore (Sim.Backend.run ~shots:64 rl) );
      ( "sparse hybrid 64 witness",
        fun () -> ignore (Sim.Backend.run ~shots:64 hw) );
      ( "sparse shot AND-15 ladder dyn2",
        fun () ->
          ignore (Sim.Sparse.run ~rng:(Random.State.make [| 5 |]) wide_prog)
      );
    ]
  in
  [
    bv_transform 4;
    bv_transform 8;
    bv_transform 16;
    dj_transform Dqc.Toffoli_scheme.Dynamic_1 "dyn1";
    dj_transform Dqc.Toffoli_scheme.Dynamic_2 "dyn2";
    exact_dj Dqc.Toffoli_scheme.Dynamic_1 "dyn1";
    exact_dj Dqc.Toffoli_scheme.Dynamic_2 "dyn2";
    statevector 8;
    statevector 12;
    statevector 16;
    shots;
    peephole;
    stabilizer 16;
    stabilizer 48;
    density;
    routing;
    native;
  ]
  @ kernels @ backend_engines @ sparse_tests @ lint_tests @ analyze_tests
  @ verify_tests @ reuse_tests @ optimize_tests

let make_benchmarks () =
  let open Bechamel in
  Test.make_grouped ~name:"dqc"
    (List.map
       (fun (name, fn) -> Test.make ~name (Staged.stage fn))
       (workloads ()))

let bench_json_path = "BENCH_backend.json"

(* "transform BV-4" -> "transform": the leading token names the group *)
let group_of_name name =
  match String.index_opt name ' ' with
  | Some k -> String.sub name 0 k
  | None -> name

(* Best-effort git revision for the dqc.bench/2 provenance field:
   baselines only make sense against a known commit. *)
let git_revision () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, rev when rev <> "" -> Some rev
    | (Unix.WEXITED _ | Unix.WSIGNALED _ | Unix.WSTOPPED _), _ -> None
  with Unix.Unix_error _ | Sys_error _ -> None

let bench_schema = "dqc.bench/2"

let revision_json () =
  match git_revision () with
  | Some rev -> Obs.Json.String rev
  | None -> Obs.Json.Null

let write_bechamel_json ?(extra = []) estimates =
  let results =
    List.map
      (fun (name, est) ->
        Obs.Json.Obj
          [
            ("name", Obs.Json.String name);
            ("group", Obs.Json.String (group_of_name name));
            ( "ns_per_op",
              match est with
              | Some ns -> Obs.Json.Float ns
              | None -> Obs.Json.Null );
          ])
      (List.sort (fun (a, _) (b, _) -> compare a b) estimates)
  in
  Obs.Json.write ~path:bench_json_path
    (Obs.Json.Obj
       [
         ("schema", Obs.Json.String bench_schema);
         ("unit", Obs.Json.String "ns/op");
         ("revision", revision_json ());
         ("results", Obs.Json.List (results @ extra));
       ]);
  Printf.printf "\nmachine-readable results written to %s\n" bench_json_path

(* ------------------------------------------------------------------ *)
(* Percentile sampling and the perf regression gate.

   Bechamel's OLS estimate answers "how fast is the typical op"; the
   gate instead needs tail behaviour under a fixed time budget, so each
   shared workload is re-timed call by call into an Obs.Histogram and
   compared against a checked-in dqc.bench/2 baseline on p50 (median
   shift) and p99 (tail blowup). *)

type perf_series = {
  ps_name : string;
  ps_count : int;
  ps_mean_ns : float;
  ps_min_ns : int;
  ps_max_ns : int;
  ps_p50_ns : int;
  ps_p90_ns : int;
  ps_p99_ns : int;
}

(* One sampling round: run [fn] repeatedly for ~round_budget_ns of
   wall time (at least once), recording each call's *CPU-time*
   duration — on a shared host the wall clock charges hypervisor
   steal to whichever call it lands on, which is exactly the
   between-runs noise a regression gate must not trip on.  [slowdown]
   scales every recorded duration — the `--inject-slowdown` test hook
   that proves the gate trips without editing any kernel. *)
let sample_round ~round_budget_ns ~slowdown ~max_samples h fn =
  let started = Obs.Clock.now_ns () in
  let elapsed () = Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) started) in
  let samples = ref 0 in
  while
    !samples = 0
    || (Obs.Histogram.count h < max_samples && elapsed () < round_budget_ns)
  do
    let t0 = Obs.Clock.now_cpu_ns () in
    ignore (fn ());
    let dur = Int64.to_int (Int64.sub (Obs.Clock.now_cpu_ns ()) t0) in
    Obs.Histogram.record h (int_of_float (float_of_int dur *. slowdown));
    incr samples
  done

(* The whole suite is sampled in [rounds] interleaved passes rather
   than one contiguous block per workload: CPU frequency phases, GC
   heap evolution and scheduler noise then average over the same
   ~seconds-long window for every series, which is what makes two runs'
   medians comparable.  (Measured here, contiguous sampling drifts
   p50 by 30%+ between identical back-to-back runs; interleaving cuts
   that severalfold.) *)
let sampling_rounds = 8

let sample_workloads ~budget_ns ~slowdown named_fns =
  let max_samples = 100_000 in
  let round_budget_ns = budget_ns / sampling_rounds in
  let entries =
    List.map
      (fun (name, fn) ->
        ignore (fn ());
        (* warm-up: page in code + caches *)
        (name, fn, Obs.Histogram.create ()))
      named_fns
  in
  for _ = 1 to sampling_rounds do
    List.iter
      (fun (_, fn, h) ->
        sample_round ~round_budget_ns ~slowdown ~max_samples h fn)
      entries
  done;
  List.map
    (fun (name, _, h) ->
      {
        ps_name = name;
        ps_count = Obs.Histogram.count h;
        ps_mean_ns = Obs.Histogram.mean h;
        ps_min_ns = Obs.Histogram.min_value h;
        ps_max_ns = Obs.Histogram.max_value h;
        ps_p50_ns = Obs.Histogram.p50 h;
        ps_p90_ns = Obs.Histogram.p90 h;
        ps_p99_ns = Obs.Histogram.p99 h;
      })
    entries

let perf_series_json s =
  Obs.Json.Obj
    [
      ("name", Obs.Json.String s.ps_name);
      ("group", Obs.Json.String (group_of_name s.ps_name));
      ("count", Obs.Json.Int s.ps_count);
      ("mean_ns", Obs.Json.Float s.ps_mean_ns);
      ("min_ns", Obs.Json.Int s.ps_min_ns);
      ("max_ns", Obs.Json.Int s.ps_max_ns);
      ("p50_ns", Obs.Json.Int s.ps_p50_ns);
      ("p90_ns", Obs.Json.Int s.ps_p90_ns);
      ("p99_ns", Obs.Json.Int s.ps_p99_ns);
    ]

let write_perf_json ~path series =
  Obs.Json.write ~path
    (Obs.Json.Obj
       [
         ("schema", Obs.Json.String bench_schema);
         ("unit", Obs.Json.String "ns/op");
         ("revision", revision_json ());
         ("results", Obs.Json.List (List.map perf_series_json series));
       ]);
  Printf.printf "\npercentile results written to %s\n" path

(* Baseline lookup: name -> (min_ns, p50_ns, p90_ns, p99_ns) from a
   dqc.bench/2 document (series without percentiles — e.g.
   bechamel-only rows — are skipped). *)
let load_baseline path =
  let doc = Obs.Json.read ~path in
  (match Obs.Json.member "schema" doc with
  | Some (Obs.Json.String s) when s = bench_schema -> ()
  | Some (Obs.Json.String s) ->
      failwith
        (Printf.sprintf "baseline %s has schema %S, expected %S" path s
           bench_schema)
  | Some _ | None ->
      failwith (Printf.sprintf "baseline %s has no schema field" path));
  let results =
    match Obs.Json.member "results" doc with
    | Some (Obs.Json.List rs) -> rs
    | Some _ | None -> []
  in
  List.filter_map
    (fun r ->
      let num key = Option.bind (Obs.Json.member key r) Obs.Json.to_float_opt in
      match
        ( Option.bind (Obs.Json.member "name" r) Obs.Json.to_string_opt,
          num "min_ns",
          num "p50_ns",
          num "p90_ns",
          num "p99_ns" )
      with
      | Some name, Some vmin, Some p50, Some p90, Some p99 ->
          Some (name, (vmin, p50, p90, p99))
      | _, _, _, _, _ -> None)
    results

(* Gate thresholds: median shifts beyond 10% or tails beyond 25% fail
   the build.  Series whose baseline median sits under the noise floor
   are reported but never gate — scheduler jitter dominates them. *)
let p50_threshold = 0.10
let p99_threshold = 0.25
let default_noise_floor_ns = 10_000.
let default_budget_ms = 150

(* Two invocations minutes apart land in different host frequency /
   load regimes, and a run's merged distribution is multi-modal (one
   mode per ~seconds-long regime window the interleaved rounds pass
   through): percentiles snap between modes, so per-series p50 drifts
   of 15-35% between *identical* back-to-back runs were measured here
   even on steal-free CPU time.  The per-series *minimum*, by
   contrast, is the best case over every regime either run visited —
   measured drift stays within a few percent.  The gate therefore
   leans on the floor twice:

   - common-mode drift = median min-shift across all gated series,
     factored out of every delta (a regime change moves the whole
     suite; a real regression is series-specific);
   - each percentile trip must be corroborated by the series' floor
     ([dmin] over the full p50 threshold): deterministic workloads
     don't get slower at the median without their best case moving.

   The common-mode correction is capped: a suite-wide shift beyond
   this bound is treated as a genuine global regression (a slowdown
   in a kernel everything shares looks exactly like that), which is
   also what keeps the --inject-slowdown self-test tripping: a 1.5x
   inject yields common-mode +50%, capped to +20%, leaving +25%
   residual on every series and every floor. *)
let max_common_drift = 0.20

let median_of_list = function
  | [] -> 0.
  | ds ->
      let a = Array.of_list ds in
      Array.sort compare a;
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let run_perf ~against ~slowdown ~budget_ms ~noise_floor_ns ~out () =
  section "E15 / Percentile sampling and the perf regression gate";
  if slowdown <> 1.0 then
    Printf.printf "NOTE: --inject-slowdown %.2f is scaling every sample\n"
      slowdown;
  let budget_ns = budget_ms * 1_000_000 in
  let series = sample_workloads ~budget_ns ~slowdown (workloads ()) in
  List.iter
    (fun s ->
      Printf.printf
        "%-34s %6d samples  p50 %10.1f us  p90 %10.1f us  p99 %10.1f us\n%!"
        s.ps_name s.ps_count
        (float_of_int s.ps_p50_ns /. 1e3)
        (float_of_int s.ps_p90_ns /. 1e3)
        (float_of_int s.ps_p99_ns /. 1e3))
    series;
  write_perf_json ~path:out series;
  match against with
  | None -> ()
  | Some baseline_path ->
      let baseline = load_baseline baseline_path in
      let rows =
        List.filter_map
          (fun s ->
            Option.map (fun b -> (s, b)) (List.assoc_opt s.ps_name baseline))
          series
      in
      let common =
        let drifts =
          List.filter_map
            (fun (s, (bmin, b50, _, _)) ->
              if b50 < noise_floor_ns || bmin <= 0. then None
              else Some ((float_of_int s.ps_min_ns /. bmin) -. 1.))
            rows
        in
        let med = median_of_list drifts in
        Float.max (-.max_common_drift) (Float.min max_common_drift med)
      in
      Printf.printf
        "\nregression gate vs %s (p50 +%.0f%%, p99 +%.0f%%; common-mode \
         drift %+.1f%% factored out):\n"
        baseline_path (100. *. p50_threshold) (100. *. p99_threshold)
        (100. *. common);
      let regressions = ref 0 and compared = ref 0 and skipped = ref 0 in
      List.iter
        (fun (s, (base_min, base_p50, base_p90, base_p99)) ->
          if base_p50 < noise_floor_ns then begin
            incr skipped;
            Printf.printf
              "  %-34s skipped (baseline p50 %.1f us under noise floor)\n"
              s.ps_name (base_p50 /. 1e3)
          end
          else begin
            incr compared;
            (* deltas relative to the baseline *after* removing the
               suite-wide drift factor *)
            let rel v base = (float_of_int v /. base /. (1. +. common)) -. 1. in
            let d50 = rel s.ps_p50_ns base_p50 in
            let d90 = rel s.ps_p90_ns base_p90 in
            let d99 = rel s.ps_p99_ns base_p99 in
            let dmin = if base_min > 0. then rel s.ps_min_ns base_min else 0. in
            (* Corroboration (see max_common_drift above): a percentile
               trip only gates when the series' floor moved with it —
               the statistic stable enough on this host to tell a code
               regression from the median snapping between regime
               modes.  p90 must second a p50 trip too: a genuine
               slowdown shifts the whole body of the distribution. *)
            let floor_moved = dmin > p50_threshold in
            let bad50 =
              d50 > p50_threshold && d90 > p50_threshold /. 2. && floor_moved
            in
            let bad99 = d99 > p99_threshold && d90 > p50_threshold && floor_moved in
            (* the floor alone rising past the tail threshold needs no
               second witness: best-case cost went up a quarter *)
            let bad_floor = dmin > p99_threshold in
            if bad50 || bad99 || bad_floor then begin
              incr regressions;
              Printf.printf
                "  %-34s REGRESSION  p50 %+6.1f%%%s  p90 %+6.1f%%  p99 \
                 %+6.1f%%%s  min %+6.1f%%%s\n"
                s.ps_name (100. *. d50)
                (if bad50 then "!" else " ")
                (100. *. d90) (100. *. d99)
                (if bad99 then "!" else " ")
                (100. *. dmin)
                (if bad_floor then "!" else " ")
            end
            else
              Printf.printf
                "  %-34s ok          p50 %+6.1f%%   p90 %+6.1f%%  p99 \
                 %+6.1f%%   min %+6.1f%%\n"
                s.ps_name (100. *. d50) (100. *. d90) (100. *. d99)
                (100. *. dmin)
          end)
        rows;
      Printf.printf
        "\ngate: %d series compared, %d under noise floor, %d regression(s)\n"
        !compared !skipped !regressions;
      if !regressions > 0 then exit 1

let run_bechamel () =
  section "E5 / Bechamel timing";
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances (make_benchmarks ()) in
  let results =
    List.map (fun instance -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instance raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instances results in
  let estimates = ref [] in
  let () =
    Hashtbl.iter
      (fun label tbl ->
        ignore label;
        Hashtbl.iter
          (fun name result ->
            match Bechamel.Analyze.OLS.estimates result with
            | Some [ est ] ->
                estimates := (name, Some est) :: !estimates;
                Printf.printf "%-34s %12.1f ns/run\n" name est
            | Some _ | None ->
                estimates := (name, None) :: !estimates;
                Printf.printf "%-34s (no estimate)\n" name)
          tbl)
      results
  in
  (* per-benchmark qubit savings and pass runtimes from the reuse flow:
     value-typed rows (explicit per-row unit) alongside the ns/op ones *)
  let reuse_extra =
    List.concat_map
      (fun (r : Report.Experiments.reuse_row) ->
        let row suffix value unit =
          Obs.Json.Obj
            [
              ( "name",
                Obs.Json.String
                  (Printf.sprintf "reuse %s %s" suffix
                     r.Report.Experiments.name) );
              ("group", Obs.Json.String "reuse");
              ("value", Obs.Json.Float value);
              ("unit", Obs.Json.String unit);
            ]
        in
        [
          row "qubits-saved" (float_of_int r.Report.Experiments.saved) "qubits";
          row "pass-runtime" r.Report.Experiments.reuse_ms "ms";
          row "certify-runtime" r.Report.Experiments.certify_ms "ms";
        ])
      (Report.Experiments.reuse_rows ())
  in
  (* engine-selection and handoff telemetry from one instrumented pass
     over the sparse study workloads: which engine Auto picked and how
     many per-shot representation conversions the hybrid executor paid *)
  let sparse_extra =
    let rl = and_ladder_dyn2 ~inputs:6 ~superposed:6 in
    let hw = hybrid_witness () in
    let collector, () =
      Obs.with_collector (fun () ->
          ignore (Sim.Backend.run ~shots:64 rl);
          ignore (Sim.Backend.run ~shots:64 hw))
    in
    let row name counter =
      Obs.Json.Obj
        [
          ("name", Obs.Json.String name);
          ("group", Obs.Json.String "sparse");
          ( "value",
            Obs.Json.Float
              (float_of_int (Obs.Collector.counter collector counter)) );
          ("unit", Obs.Json.String "count");
        ]
    in
    [
      row "sparse select sparse" "backend.select.sparse";
      row "sparse select hybrid" "backend.select.hybrid";
      row "sparse handoff dense-to-sparse" "backend.handoff.dense_to_sparse";
      row "sparse handoff sparse-to-dense" "backend.handoff.sparse_to_dense";
    ]
  in
  write_bechamel_json ~extra:(reuse_extra @ sparse_extra) !estimates;
  (* lint throughput re-expressed as instructions/second: ns/op over a
     known instruction count makes the rate explicit *)
  List.iter
    (fun (name, c) ->
      (* bechamel prefixes the group: "lint ..." -> "dqc/lint ..." *)
      match List.assoc_opt ("dqc/" ^ name) !estimates with
      | Some (Some ns) when ns > 0. ->
          let instrs = List.length (Circuit.Circ.instructions c) in
          Printf.printf "%-34s %12.2f M instr/s (%d instructions)\n" name
            (float_of_int instrs /. ns *. 1000.)
            instrs
      | Some (Some _) | Some None | None -> ())
    (List.map (fun (n, c, _) -> (n, c)) (Lazy.force lint_workloads)
    @ Lazy.force analyze_workloads)

(* ------------------------------------------------------------------ *)

(* `perf [--against base.json] [--inject-slowdown F] [--budget-ms N]
   [--noise-floor-ns N] [--out path]` — flags parsed by hand since the
   bench binary doesn't link cmdliner *)
let parse_perf_args argv =
  let against = ref None in
  let slowdown = ref 1.0 in
  let budget_ms = ref default_budget_ms in
  let noise_floor_ns = ref default_noise_floor_ns in
  let out = ref "BENCH_perf.json" in
  let usage () =
    Printf.eprintf
      "usage: perf [--against baseline.json] [--inject-slowdown F] \
       [--budget-ms N] [--noise-floor-ns N] [--out path]\n";
    exit 2
  in
  let rec go k =
    if k < Array.length argv then begin
      let value () =
        if k + 1 >= Array.length argv then usage () else argv.(k + 1)
      in
      let num parse =
        match parse (value ()) with Some v -> v | None -> usage ()
      in
      (match argv.(k) with
      | "--against" -> against := Some (value ())
      | "--inject-slowdown" -> slowdown := num float_of_string_opt
      | "--budget-ms" -> budget_ms := num int_of_string_opt
      | "--noise-floor-ns" -> noise_floor_ns := num float_of_string_opt
      | "--out" -> out := value ()
      | _ -> usage ());
      go (k + 2)
    end
  in
  go 2;
  run_perf ~against:!against ~slowdown:!slowdown ~budget_ms:!budget_ms
    ~noise_floor_ns:!noise_floor_ns ~out:!out ()

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match what with
  | "table1" -> run_table1 ()
  | "table2" -> run_table2 ()
  | "fig7" -> run_fig7 ()
  | "equivalence" -> run_equivalence ()
  | "mct" -> run_mct ()
  | "routing" -> run_routing ()
  | "duration" -> run_duration ()
  | "scale" -> run_scale ()
  | "slots" -> run_slots ()
  | "reuse" -> run_reuse ()
  | "sparsity" -> run_sparsity ()
  | "analyze-gate" -> run_analyze_gate ()
  | "opt-gate" -> run_opt_gate ()
  | "sparse-gate" -> run_sparse_gate ()
  | "ablation" -> run_ablation ()
  | "backend" -> run_backend ()
  | "kernels" -> run_kernels ()
  | "bechamel" -> run_bechamel ()
  | "perf" -> parse_perf_args Sys.argv
  | "all" ->
      run_table1 ();
      run_table2 ();
      run_fig7 ();
      run_equivalence ();
      run_mct ();
      run_routing ();
      run_duration ();
      run_scale ();
      run_slots ();
      run_reuse ();
      run_sparsity ();
      run_ablation ();
      run_backend ();
      run_kernels ();
      run_bechamel ()
  | other ->
      Printf.eprintf
        "unknown target %S (expected table1|table2|fig7|equivalence|mct|routing|duration|scale|slots|reuse|sparsity|analyze-gate|opt-gate|sparse-gate|ablation|backend|kernels|bechamel|perf|all)\n"
        other;
      exit 1
