type t =
  | H
  | X
  | Y
  | Z
  | S
  | Sdg
  | T
  | Tdg
  | V
  | Vdg
  | Rx of float
  | Ry of float
  | Rz of float
  | Phase of float

let sq2 = 1. /. sqrt 2.

let matrix = function
  | H -> Linalg.Cmat.of_reim_lists [ [ (sq2, 0.); (sq2, 0.) ]; [ (sq2, 0.); (-.sq2, 0.) ] ]
  | X -> Linalg.Cmat.of_reim_lists [ [ (0., 0.); (1., 0.) ]; [ (1., 0.); (0., 0.) ] ]
  | Y -> Linalg.Cmat.of_reim_lists [ [ (0., 0.); (0., -1.) ]; [ (0., 1.); (0., 0.) ] ]
  | Z -> Linalg.Cmat.of_reim_lists [ [ (1., 0.); (0., 0.) ]; [ (0., 0.); (-1., 0.) ] ]
  | S -> Linalg.Cmat.of_reim_lists [ [ (1., 0.); (0., 0.) ]; [ (0., 0.); (0., 1.) ] ]
  | Sdg -> Linalg.Cmat.of_reim_lists [ [ (1., 0.); (0., 0.) ]; [ (0., 0.); (0., -1.) ] ]
  | T ->
      Linalg.Cmat.of_reim_lists
        [ [ (1., 0.); (0., 0.) ]; [ (0., 0.); (sq2, sq2) ] ]
  | Tdg ->
      Linalg.Cmat.of_reim_lists
        [ [ (1., 0.); (0., 0.) ]; [ (0., 0.); (sq2, -.sq2) ] ]
  | V ->
      (* sqrt(X) = 1/2 [[1+i, 1-i]; [1-i, 1+i]] *)
      Linalg.Cmat.of_reim_lists
        [ [ (0.5, 0.5); (0.5, -0.5) ]; [ (0.5, -0.5); (0.5, 0.5) ] ]
  | Vdg ->
      Linalg.Cmat.of_reim_lists
        [ [ (0.5, -0.5); (0.5, 0.5) ]; [ (0.5, 0.5); (0.5, -0.5) ] ]
  | Rx a ->
      let c = cos (a /. 2.) and s = sin (a /. 2.) in
      Linalg.Cmat.of_reim_lists [ [ (c, 0.); (0., -.s) ]; [ (0., -.s); (c, 0.) ] ]
  | Ry a ->
      let c = cos (a /. 2.) and s = sin (a /. 2.) in
      Linalg.Cmat.of_reim_lists [ [ (c, 0.); (-.s, 0.) ]; [ (s, 0.); (c, 0.) ] ]
  | Rz a ->
      let c = cos (a /. 2.) and s = sin (a /. 2.) in
      Linalg.Cmat.of_reim_lists [ [ (c, -.s); (0., 0.) ]; [ (0., 0.); (c, s) ] ]
  | Phase a ->
      Linalg.Cmat.of_reim_lists
        [ [ (1., 0.); (0., 0.) ]; [ (0., 0.); (cos a, sin a) ] ]

let kind = function
  | H -> "h"
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | S -> "s"
  | Sdg -> "sdg"
  | T -> "t"
  | Tdg -> "tdg"
  | V -> "v"
  | Vdg -> "vdg"
  | Rx _ -> "rx"
  | Ry _ -> "ry"
  | Rz _ -> "rz"
  | Phase _ -> "p"

let name = function
  | H -> "h"
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | S -> "s"
  | Sdg -> "sdg"
  | T -> "t"
  | Tdg -> "tdg"
  | V -> "v"
  | Vdg -> "vdg"
  | Rx a -> Printf.sprintf "rx(%g)" a
  | Ry a -> Printf.sprintf "ry(%g)" a
  | Rz a -> Printf.sprintf "rz(%g)" a
  | Phase a -> Printf.sprintf "p(%g)" a

let adjoint = function
  | H -> H
  | X -> X
  | Y -> Y
  | Z -> Z
  | S -> Sdg
  | Sdg -> S
  | T -> Tdg
  | Tdg -> T
  | V -> Vdg
  | Vdg -> V
  | Rx a -> Rx (-.a)
  | Ry a -> Ry (-.a)
  | Rz a -> Rz (-.a)
  | Phase a -> Phase (-.a)

let is_diagonal = function
  | Z | S | Sdg | T | Tdg | Rz _ | Phase _ -> true
  | H | X | Y | V | Vdg | Rx _ | Ry _ -> false

let equal a b =
  match (a, b) with
  | H, H | X, X | Y, Y | Z, Z | S, S | Sdg, Sdg | T, T | Tdg, Tdg | V, V
  | Vdg, Vdg ->
      true
  | Rx x, Rx y | Ry x, Ry y | Rz x, Rz y | Phase x, Phase y ->
      abs_float (x -. y) <= 1e-12
  | ( ( H | X | Y | Z | S | Sdg | T | Tdg | V | Vdg | Rx _ | Ry _ | Rz _
      | Phase _ ),
      _ ) ->
      false

let is_clifford_t = function
  | H | X | Y | Z | S | Sdg | T | Tdg -> true
  | V | Vdg | Rx _ | Ry _ | Rz _ | Phase _ -> false

let pp fmt g = Format.pp_print_string fmt (name g)
