(* Rendering grid: one text row per qubit wire, one (initially blank)
   inter-row between adjacent wires for vertical connectors. *)

let layers c =
  let qlevel = Array.make (max 1 (Circ.num_qubits c)) 0 in
  let blevel = Array.make (max 1 (Circ.num_bits c)) 0 in
  let cols : (int, Instruction.t list ref) Hashtbl.t = Hashtbl.create 16 in
  let place i =
    match (i : Instruction.t) with
    | Barrier _ -> ()
    | Unitary _ | Conditioned _ | Measure _ | Reset _ ->
        let qs = Instruction.qubits i and bs = Instruction.bits i in
        let base =
          List.fold_left
            (fun acc b -> max acc blevel.(b))
            (List.fold_left (fun acc q -> max acc qlevel.(q)) 0 qs)
            bs
        in
        let lvl = base + 1 in
        List.iter (fun q -> qlevel.(q) <- lvl) qs;
        (match i with
        | Measure { bit; _ } -> blevel.(bit) <- lvl
        | Unitary _ | Conditioned _ | Reset _ | Barrier _ -> ());
        let cell =
          match Hashtbl.find_opt cols lvl with
          | Some r -> r
          | None ->
              let r = ref [] in
              Hashtbl.add cols lvl r;
              r
        in
        cell := i :: !cell
  in
  List.iter place (Circ.instructions c);
  let depth = Array.fold_left max 0 qlevel in
  let depth = Array.fold_left max depth blevel in
  List.init depth (fun k ->
      match Hashtbl.find_opt cols (k + 1) with
      | Some r -> List.rev !r
      | None -> [])

let box_label (i : Instruction.t) =
  match i with
  | Unitary a | Conditioned (_, a) ->
      let base = Printf.sprintf "[%s]" (Gate.name a.gate) in
      (match i with
      | Conditioned (c, _) ->
          let test (bit, value) =
            Printf.sprintf "%sc%d" (if value then "" else "!") bit
          in
          Printf.sprintf "[%s?%s]" (Gate.name a.gate)
            (String.concat "&" (List.map test c.bits))
      | Unitary _ | Measure _ | Reset _ | Barrier _ -> base)
  | Measure { bit; _ } -> Printf.sprintf "[M%d]" bit
  | Reset _ -> "[R]"
  | Barrier _ -> ""

(* For each column produce, per qubit row, an optional cell string, and
   per inter-row (between q and q+1) whether a connector crosses it. *)
let column_cells num_qubits instrs =
  let cells = Array.make num_qubits None in
  let inter = Array.make (max 0 (num_qubits - 1)) false in
  let mark_span qmin qmax =
    for r = qmin to qmax - 1 do
      inter.(r) <- true
    done
  in
  let place (i : Instruction.t) =
    match i with
    | Barrier _ -> ()
    | Unitary a | Conditioned (_, a) ->
        List.iter (fun q -> cells.(q) <- Some "*") a.controls;
        cells.(a.target) <- Some (box_label i);
        let qs = Instruction.qubits i in
        let qmin = List.fold_left min a.target qs
        and qmax = List.fold_left max a.target qs in
        mark_span qmin qmax;
        (* wires strictly inside the span but uninvolved get a cross *)
        for q = qmin + 1 to qmax - 1 do
          if cells.(q) = None then cells.(q) <- Some "|"
        done
    | Measure { qubit; _ } -> cells.(qubit) <- Some (box_label i)
    | Reset q -> cells.(q) <- Some (box_label i)
  in
  List.iter place instrs;
  (cells, inter)

let to_string ?max_width c =
  let n = Circ.num_qubits c in
  let all_cols = List.map (column_cells n) (layers c) in
  let width_of (cells, _) =
    Array.fold_left
      (fun acc cell ->
        match cell with None -> acc | Some s -> max acc (String.length s))
      1 cells
  in
  let prefix q =
    Printf.sprintf "q%-2d %s: " q
      (match Circ.role c q with
      | Circ.Data -> "D"
      | Circ.Ancilla -> "0"
      | Circ.Answer -> "A")
  in
  let prefix_len = String.length (prefix 0) in
  (* split columns into panels that fit max_width *)
  let panels =
    match max_width with
    | None -> [ all_cols ]
    | Some limit ->
        let budget = max 8 (limit - prefix_len) in
        let rec split acc cur cur_w = function
          | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
          | col :: rest ->
              let w = width_of col + 2 in
              if cur <> [] && cur_w + w > budget then
                split (List.rev cur :: acc) [ col ] w rest
              else split acc (col :: cur) (cur_w + w) rest
        in
        split [] [] 0 all_cols
  in
  let buf = Buffer.create 1024 in
  let pad_center w s fill =
    let len = String.length s in
    let left = (w - len) / 2 in
    let right = w - len - left in
    String.make left fill ^ s ^ String.make right fill
  in
  let render_panel cols =
    let widths = List.map width_of cols in
    for q = 0 to n - 1 do
      Buffer.add_string buf (prefix q);
      List.iter2
        (fun (cells, _) w ->
          let s = match cells.(q) with None -> "" | Some s -> s in
          Buffer.add_string buf (pad_center w s '-');
          Buffer.add_string buf "--")
        cols widths;
      Buffer.add_char buf '\n';
      if q < n - 1 then begin
        Buffer.add_string buf (String.make prefix_len ' ');
        List.iter2
          (fun (_, inter) w ->
            let s = if inter.(q) then "|" else "" in
            Buffer.add_string buf (pad_center w s ' ');
            Buffer.add_string buf "  ")
          cols widths;
        Buffer.add_char buf '\n'
      end
    done
  in
  List.iteri
    (fun k panel ->
      if k > 0 then Buffer.add_string buf "...\n";
      render_panel panel)
    panels;
  Buffer.contents buf

let pp fmt c = Format.pp_print_string fmt (to_string c)
let print c = print_string (to_string c); print_newline ()
