(* Deserialization dispatches on the open-ended [sexp] shape with
   catch-all [parse_fail] arms — the parser idiom warning 4 would
   otherwise flag at every default. *)
[@@@warning "-4"]

exception Parse_error of string

let parse_fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Minimal s-expressions                                              *)

type sexp = Atom of string | List of sexp list

let rec pp_sexp buf = function
  | Atom a -> Buffer.add_string buf a
  | List items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun k item ->
          if k > 0 then Buffer.add_char buf ' ';
          pp_sexp buf item)
        items;
      Buffer.add_char buf ')'

let sexp_to_string s =
  let buf = Buffer.create 256 in
  pp_sexp buf s;
  Buffer.contents buf

let sexp_of_string src =
  let n = String.length src in
  let rec skip i =
    if i < n && (src.[i] = ' ' || src.[i] = '\n' || src.[i] = '\t' || src.[i] = '\r')
    then skip (i + 1)
    else i
  in
  (* returns (sexp, next position) *)
  let rec parse i =
    let i = skip i in
    if i >= n then parse_fail "unexpected end of input"
    else if src.[i] = '(' then parse_list (i + 1) []
    else if src.[i] = ')' then parse_fail "unexpected ')'"
    else begin
      let rec atom_end j =
        if
          j < n && src.[j] <> ' ' && src.[j] <> '(' && src.[j] <> ')'
          && src.[j] <> '\n' && src.[j] <> '\t' && src.[j] <> '\r'
        then atom_end (j + 1)
        else j
      in
      let j = atom_end i in
      (Atom (String.sub src i (j - i)), j)
    end
  and parse_list i acc =
    let i = skip i in
    if i >= n then parse_fail "unterminated list"
    else if src.[i] = ')' then (List (List.rev acc), i + 1)
    else begin
      let item, j = parse i in
      parse_list j (item :: acc)
    end
  in
  let s, j = parse 0 in
  if skip j <> n then parse_fail "trailing input";
  s

(* ------------------------------------------------------------------ *)
(* Gates                                                              *)

let sexp_of_gate (g : Gate.t) =
  match g with
  | Gate.H -> Atom "h"
  | Gate.X -> Atom "x"
  | Gate.Y -> Atom "y"
  | Gate.Z -> Atom "z"
  | Gate.S -> Atom "s"
  | Gate.Sdg -> Atom "sdg"
  | Gate.T -> Atom "t"
  | Gate.Tdg -> Atom "tdg"
  | Gate.V -> Atom "v"
  | Gate.Vdg -> Atom "vdg"
  | Gate.Rx a -> List [ Atom "rx"; Atom (Printf.sprintf "%.17g" a) ]
  | Gate.Ry a -> List [ Atom "ry"; Atom (Printf.sprintf "%.17g" a) ]
  | Gate.Rz a -> List [ Atom "rz"; Atom (Printf.sprintf "%.17g" a) ]
  | Gate.Phase a -> List [ Atom "p"; Atom (Printf.sprintf "%.17g" a) ]

let float_of_atom a =
  match float_of_string_opt a with
  | Some f -> f
  | None -> parse_fail "expected a number, got %S" a

let int_of_atom a =
  match int_of_string_opt a with
  | Some k -> k
  | None -> parse_fail "expected an integer, got %S" a

let gate_of_sexp = function
  | Atom "h" -> Gate.H
  | Atom "x" -> Gate.X
  | Atom "y" -> Gate.Y
  | Atom "z" -> Gate.Z
  | Atom "s" -> Gate.S
  | Atom "sdg" -> Gate.Sdg
  | Atom "t" -> Gate.T
  | Atom "tdg" -> Gate.Tdg
  | Atom "v" -> Gate.V
  | Atom "vdg" -> Gate.Vdg
  | List [ Atom "rx"; Atom a ] -> Gate.Rx (float_of_atom a)
  | List [ Atom "ry"; Atom a ] -> Gate.Ry (float_of_atom a)
  | List [ Atom "rz"; Atom a ] -> Gate.Rz (float_of_atom a)
  | List [ Atom "p"; Atom a ] -> Gate.Phase (float_of_atom a)
  | s -> parse_fail "unknown gate %s" (sexp_to_string s)

(* ------------------------------------------------------------------ *)
(* Instructions                                                       *)

let ints_of_sexp = function
  | List items ->
      List.map
        (function Atom a -> int_of_atom a | List _ -> parse_fail "expected int")
        items
  | Atom _ -> parse_fail "expected a list of ints"

let sexp_of_ints ks = List (List.map (fun k -> Atom (string_of_int k)) ks)

let sexp_of_app (a : Instruction.app) =
  [ sexp_of_gate a.gate; sexp_of_ints a.controls; Atom (string_of_int a.target) ]

let app_of_sexps gate controls target =
  Instruction.app ~controls:(ints_of_sexp controls) (gate_of_sexp gate)
    (int_of_atom target)

let sexp_of_instr (i : Instruction.t) =
  match i with
  | Unitary a -> List (Atom "u" :: sexp_of_app a)
  | Conditioned (cond, a) ->
      let bits =
        List
          (List.map
             (fun (b, v) ->
               List
                 [ Atom (string_of_int b); Atom (if v then "1" else "0") ])
             cond.Instruction.bits)
      in
      List (Atom "cond" :: bits :: sexp_of_app a)
  | Measure { qubit; bit } ->
      List [ Atom "measure"; Atom (string_of_int qubit); Atom (string_of_int bit) ]
  | Reset q -> List [ Atom "reset"; Atom (string_of_int q) ]
  | Barrier qs -> List [ Atom "barrier"; sexp_of_ints qs ]

let instr_of_sexp = function
  | List [ Atom "u"; gate; controls; Atom target ] ->
      Instruction.Unitary (app_of_sexps gate controls target)
  | List [ Atom "cond"; List bits; gate; controls; Atom target ] ->
      let parse_bit = function
        | List [ Atom b; Atom v ] ->
            (int_of_atom b,
             match v with
             | "1" -> true
             | "0" -> false
             | other -> parse_fail "bad condition value %S" other)
        | s -> parse_fail "bad condition %s" (sexp_to_string s)
      in
      Instruction.Conditioned
        ({ Instruction.bits = List.map parse_bit bits },
         app_of_sexps gate controls target)
  | List [ Atom "measure"; Atom q; Atom b ] ->
      Instruction.Measure { qubit = int_of_atom q; bit = int_of_atom b }
  | List [ Atom "reset"; Atom q ] -> Instruction.Reset (int_of_atom q)
  | List [ Atom "barrier"; qs ] -> Instruction.Barrier (ints_of_sexp qs)
  | s -> parse_fail "unknown instruction %s" (sexp_to_string s)

(* ------------------------------------------------------------------ *)
(* Circuits                                                           *)

let role_to_atom = function
  | Circ.Data -> Atom "data"
  | Circ.Ancilla -> Atom "ancilla"
  | Circ.Answer -> Atom "answer"

let role_of_sexp = function
  | Atom "data" -> Circ.Data
  | Atom "ancilla" -> Circ.Ancilla
  | Atom "answer" -> Circ.Answer
  | s -> parse_fail "unknown role %s" (sexp_to_string s)

let to_string c =
  let roles =
    List (Atom "roles" :: Array.to_list (Array.map role_to_atom (Circ.roles c)))
  in
  let bits = List [ Atom "bits"; Atom (string_of_int (Circ.num_bits c)) ] in
  let instrs =
    List (Atom "instrs" :: List.map sexp_of_instr (Circ.instructions c))
  in
  sexp_to_string (List [ Atom "circuit"; roles; bits; instrs ])

let of_string src =
  match sexp_of_string src with
  | List
      [
        Atom "circuit";
        List (Atom "roles" :: role_sexps);
        List [ Atom "bits"; Atom bits ];
        List (Atom "instrs" :: instr_sexps);
      ] ->
      let roles = Array.of_list (List.map role_of_sexp role_sexps) in
      Circ.create ~roles ~num_bits:(int_of_atom bits)
        (List.map instr_of_sexp instr_sexps)
  | _ -> parse_fail "expected (circuit (roles ...) (bits n) (instrs ...))"
