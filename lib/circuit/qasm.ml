(* Recursive-descent parsing dispatches on the token type with
   catch-all error arms — the parser idiom warning 4 would otherwise
   flag at every `| t -> parse_fail ...` default. *)
[@@@warning "-4"]

let gate_name (g : Gate.t) =
  match g with
  | H -> "h"
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | S -> "s"
  | Sdg -> "sdg"
  | T -> "t"
  | Tdg -> "tdg"
  | V -> "sx"
  | Vdg -> "sxdg"
  | Rx a -> Printf.sprintf "rx(%.17g)" a
  | Ry a -> Printf.sprintf "ry(%.17g)" a
  | Rz a -> Printf.sprintf "rz(%.17g)" a
  | Phase a -> Printf.sprintf "p(%.17g)" a

let app_to_string (a : Instruction.app) =
  let prefix = String.concat "" (List.map (fun _ -> "c") a.controls) in
  let operands =
    List.map (Printf.sprintf "q[%d]") (a.controls @ [ a.target ])
  in
  Printf.sprintf "%s%s %s;" prefix (gate_name a.gate)
    (String.concat ", " operands)

let instr_to_string (i : Instruction.t) =
  match i with
  | Unitary a -> app_to_string a
  | Conditioned (c, a) ->
      let test (bit, value) =
        Printf.sprintf "c[%d] == %d" bit (if value then 1 else 0)
      in
      Printf.sprintf "if (%s) { %s }"
        (String.concat " && " (List.map test c.bits))
        (app_to_string a)
  | Measure { qubit; bit } -> Printf.sprintf "c[%d] = measure q[%d];" bit qubit
  | Reset q -> Printf.sprintf "reset q[%d];" q
  | Barrier qs ->
      Printf.sprintf "barrier %s;"
        (String.concat ", " (List.map (Printf.sprintf "q[%d]") qs))

exception Parse_error of string

let parse_fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                          *)

type token =
  | Ident of string
  | Number of float
  | Str of string
  | LParen
  | RParen
  | LBracket
  | RBracket
  | LBrace
  | RBrace
  | Comma
  | Semi
  | Assign
  | EqEq
  | AndAnd

let token_to_string = function
  | Ident s -> s
  | Number f -> Printf.sprintf "%g" f
  | Str s -> Printf.sprintf "%S" s
  | LParen -> "("
  | RParen -> ")"
  | LBracket -> "["
  | RBracket -> "]"
  | LBrace -> "{"
  | RBrace -> "}"
  | Comma -> ","
  | Semi -> ";"
  | Assign -> "="
  | EqEq -> "=="
  | AndAnd -> "&&"

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '.'
  in
  let is_number_start c = (c >= '0' && c <= '9') || c = '-' || c = '+' in
  let rec go i =
    if i >= n then ()
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
          let rec eol j = if j < n && src.[j] <> '\n' then eol (j + 1) else j in
          go (eol i)
      | '(' -> push LParen; go (i + 1)
      | ')' -> push RParen; go (i + 1)
      | '[' -> push LBracket; go (i + 1)
      | ']' -> push RBracket; go (i + 1)
      | '{' -> push LBrace; go (i + 1)
      | '}' -> push RBrace; go (i + 1)
      | ',' -> push Comma; go (i + 1)
      | ';' -> push Semi; go (i + 1)
      | '&' when i + 1 < n && src.[i + 1] = '&' -> push AndAnd; go (i + 2)
      | '=' when i + 1 < n && src.[i + 1] = '=' -> push EqEq; go (i + 2)
      | '=' -> push Assign; go (i + 1)
      | '"' ->
          let rec close j =
            if j >= n then parse_fail "unterminated string"
            else if src.[j] = '"' then j
            else close (j + 1)
          in
          let j = close (i + 1) in
          push (Str (String.sub src (i + 1) (j - i - 1)));
          go (j + 1)
      | c when is_number_start c ->
          let rec num_end j =
            if
              j < n
              && ((src.[j] >= '0' && src.[j] <= '9')
                 || src.[j] = '.' || src.[j] = 'e' || src.[j] = 'E'
                 || ((src.[j] = '-' || src.[j] = '+')
                    && j > i
                    && (src.[j - 1] = 'e' || src.[j - 1] = 'E')))
            then num_end (j + 1)
            else j
          in
          let j = num_end (i + 1) in
          let text = String.sub src i (j - i) in
          (match float_of_string_opt text with
          | Some f -> push (Number f)
          | None -> parse_fail "bad number %S" text);
          go j
      | c when is_ident_char c ->
          let rec id_end j =
            if j < n && is_ident_char src.[j] then id_end (j + 1) else j
          in
          let j = id_end i in
          push (Ident (String.sub src i (j - i)));
          go j
      | c -> parse_fail "unexpected character %C" c
  in
  go 0;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser                                           *)

let base_gate_of_name name : Gate.t option =
  match name with
  | "h" -> Some Gate.H
  | "x" -> Some Gate.X
  | "y" -> Some Gate.Y
  | "z" -> Some Gate.Z
  | "s" -> Some Gate.S
  | "sdg" -> Some Gate.Sdg
  | "t" -> Some Gate.T
  | "tdg" -> Some Gate.Tdg
  | "sx" -> Some Gate.V
  | "sxdg" -> Some Gate.Vdg
  | _ -> None

let parametric_gate_of_name name angle : Gate.t option =
  match name with
  | "rx" -> Some (Gate.Rx angle)
  | "ry" -> Some (Gate.Ry angle)
  | "rz" -> Some (Gate.Rz angle)
  | "p" -> Some (Gate.Phase angle)
  | _ -> None

(* strip the [c] control prefixes: "ccx" -> (2, "x"); the longest
   suffix naming a real gate wins so "csx" parses as controlled-sx *)
let split_gate_name name =
  let len = String.length name in
  let rec try_prefix k =
    if k > len then None
    else
      let base = String.sub name k (len - k) in
      if
        base_gate_of_name base <> None
        || List.mem base [ "rx"; "ry"; "rz"; "p" ]
      then Some (k, base)
      else if k < len && name.[k] = 'c' then try_prefix (k + 1)
      else None
  in
  try_prefix 0

type parser_state = {
  mutable toks : token list;
  mutable num_qubits : int option;
  mutable num_bits : int;
  mutable qreg : string;
  mutable creg : string;
  mutable instrs : Instruction.t list;  (** reversed *)
}

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let next st =
  match st.toks with
  | [] -> parse_fail "unexpected end of input"
  | t :: rest ->
      st.toks <- rest;
      t

let expect st want =
  let got = next st in
  if got <> want then
    parse_fail "expected %s, got %s" (token_to_string want)
      (token_to_string got)

let expect_ident st =
  match next st with
  | Ident s -> s
  | t -> parse_fail "expected identifier, got %s" (token_to_string t)

let expect_int st =
  match next st with
  | Number f when Float.is_integer f -> int_of_float f
  | t -> parse_fail "expected integer, got %s" (token_to_string t)

(* reg[index] *)
let expect_indexed st ~reg =
  let name = expect_ident st in
  if name <> reg then parse_fail "expected register %s, got %s" reg name;
  expect st LBracket;
  let k = expect_int st in
  expect st RBracket;
  k

let rec parse_operands st ~reg acc =
  let k = expect_indexed st ~reg in
  match peek st with
  | Some Comma ->
      expect st Comma;
      parse_operands st ~reg (k :: acc)
  | _ -> List.rev (k :: acc)

let parse_application st name =
  match split_gate_name name with
  | None -> parse_fail "unknown gate %s" name
  | Some (nc, base) ->
      let gate =
        match base_gate_of_name base with
        | Some g ->
            if peek st = Some LParen then
              parse_fail "gate %s takes no parameter" base;
            g
        | None ->
            expect st LParen;
            let angle =
              match next st with
              | Number f -> f
              | t -> parse_fail "expected angle, got %s" (token_to_string t)
            in
            expect st RParen;
            (match parametric_gate_of_name base angle with
            | Some g -> g
            | None -> assert false)
      in
      let operands = parse_operands st ~reg:st.qreg [] in
      if List.length operands <> nc + 1 then
        parse_fail "gate %s expects %d operands, got %d" name (nc + 1)
          (List.length operands);
      let rec split_last acc = function
        | [] -> assert false
        | [ last ] -> (List.rev acc, last)
        | x :: rest -> split_last (x :: acc) rest
      in
      let controls, target = split_last [] operands in
      expect st Semi;
      Instruction.app ~controls gate target

let rec parse_cond_tests st acc =
  (* c[i] == v, optionally parenthesized *)
  let parenthesized = peek st = Some LParen in
  if parenthesized then expect st LParen;
  let bit = expect_indexed st ~reg:st.creg in
  expect st EqEq;
  let v = expect_int st in
  if parenthesized then expect st RParen;
  let acc = (bit, v = 1) :: acc in
  match peek st with
  | Some AndAnd ->
      expect st AndAnd;
      parse_cond_tests st acc
  | _ -> List.rev acc

let parse_statement st =
  match next st with
  | Ident "OPENQASM" ->
      (match next st with
      | Number _ -> ()
      | t -> parse_fail "expected version, got %s" (token_to_string t));
      expect st Semi
  | Ident "include" ->
      (match next st with
      | Str _ -> ()
      | t -> parse_fail "expected include path, got %s" (token_to_string t));
      expect st Semi
  | Ident "qubit" ->
      expect st LBracket;
      let n = expect_int st in
      expect st RBracket;
      st.qreg <- expect_ident st;
      st.num_qubits <- Some n;
      expect st Semi
  | Ident "bit" ->
      expect st LBracket;
      let n = expect_int st in
      expect st RBracket;
      st.creg <- expect_ident st;
      st.num_bits <- n;
      expect st Semi
  | Ident "reset" ->
      let q = expect_indexed st ~reg:st.qreg in
      expect st Semi;
      st.instrs <- Instruction.Reset q :: st.instrs
  | Ident "barrier" ->
      let qs = parse_operands st ~reg:st.qreg [] in
      expect st Semi;
      st.instrs <- Instruction.Barrier qs :: st.instrs
  | Ident "if" ->
      expect st LParen;
      let bits = parse_cond_tests st [] in
      expect st RParen;
      expect st LBrace;
      let name = expect_ident st in
      let app = parse_application st name in
      expect st RBrace;
      st.instrs <-
        Instruction.Conditioned ({ Instruction.bits }, app) :: st.instrs
  | Ident name when name = st.creg ->
      (* c[i] = measure q[j]; *)
      expect st LBracket;
      let bit = expect_int st in
      expect st RBracket;
      expect st Assign;
      (match next st with
      | Ident "measure" -> ()
      | t -> parse_fail "expected measure, got %s" (token_to_string t));
      let qubit = expect_indexed st ~reg:st.qreg in
      expect st Semi;
      st.instrs <- Instruction.Measure { qubit; bit } :: st.instrs
  | Ident name ->
      let app = parse_application st name in
      st.instrs <- Instruction.Unitary app :: st.instrs
  | t -> parse_fail "unexpected token %s" (token_to_string t)

let parse ?roles source =
  let st =
    {
      toks = tokenize source;
      num_qubits = None;
      num_bits = 0;
      qreg = "q";
      creg = "c";
      instrs = [];
    }
  in
  while st.toks <> [] do
    parse_statement st
  done;
  let num_qubits =
    match st.num_qubits with
    | Some n -> n
    | None -> parse_fail "missing qubit declaration"
  in
  let roles =
    match roles with
    | Some r ->
        if Array.length r <> num_qubits then
          invalid_arg "Qasm.parse: roles length mismatch";
        r
    | None -> Array.make num_qubits Circ.Data
  in
  Circ.create ~roles ~num_bits:st.num_bits (List.rev st.instrs)

let to_string ?(name = "dqc_circuit") c =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "OPENQASM 3.0;\n";
  Buffer.add_string buf "include \"stdgates.inc\";\n";
  Buffer.add_string buf (Printf.sprintf "// %s\n" name);
  Buffer.add_string buf (Printf.sprintf "qubit[%d] q;\n" (Circ.num_qubits c));
  if Circ.num_bits c > 0 then
    Buffer.add_string buf (Printf.sprintf "bit[%d] c;\n" (Circ.num_bits c));
  List.iter
    (fun i ->
      Buffer.add_string buf (instr_to_string i);
      Buffer.add_char buf '\n')
    (Circ.instructions c);
  Buffer.contents buf
