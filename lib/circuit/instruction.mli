(** Circuit instructions: unitary applications (with optional quantum
    controls), the non-unitary primitives of dynamic quantum circuits
    (mid-circuit measurement, active reset), classically controlled
    applications, and barriers. *)

(** A unitary application: [gate] on [target], quantum-controlled by the
    qubits in [controls] (empty for a plain 1-qubit gate, one entry for
    CX/CV-style gates, two for a Toffoli). *)
type app = { gate : Gate.t; controls : int list; target : int }

(** Classical condition: a conjunction of register-bit tests; the
    empty conjunction is always true.  Single-bit conditions (the
    common case, IBM's [c_if]) are built with {!cond_bit};
    multi-bit conjunctions support the dynamic realization of
    multiple-control Toffoli gates. *)
type cond = { bits : (int * bool) list }

type t =
  | Unitary of app
  | Conditioned of cond * app
      (** classically controlled application, e.g. [if (c0 == 1) x q];
          the application may itself carry quantum controls *)
  | Measure of { qubit : int; bit : int }
  | Reset of int
  | Barrier of int list

val app : ?controls:int list -> Gate.t -> int -> app

(** [cond_bit bit value] is the single-bit condition [c_bit == value]. *)
val cond_bit : int -> bool -> cond

(** [cond_all bits] requires every bit in [bits] to read 1.  Entries
    are normalized: sorted ascending, duplicates collapsed, so
    [cond_all [3; 3]] equals [cond_all [3]]. *)
val cond_all : int list -> cond

(** [cond_tests tests] builds a conjunction from explicit [(bit,
    value)] tests.  Entries are normalized as in {!cond_all}; a
    contradictory pair — the same bit tested against both [true] and
    [false] — is rejected rather than silently accepted.
    @raise Invalid_argument on a contradictory pair. *)
val cond_tests : (int * bool) list -> cond

(** [cond_holds cond register] evaluates the conjunction against a
    register value (encoded as in [Sim.Bits]: bit [k] of the int).

    A contradictory conjunction (same bit tested against both values,
    only constructible through the raw record type) never holds: the
    [for_all] over its tests is false for every register value.  The
    linter's [contradictory-condition] pass flags such conditions
    statically. *)
val cond_holds : cond -> int -> bool

(** Qubits the instruction touches (controls then target; measurement
    and reset qubits; barrier qubits). *)
val qubits : t -> int list

(** Classical bits the instruction reads or writes. *)
val bits : t -> int list

(** [map_qubits f t] renames every qubit through [f]. *)
val map_qubits : (int -> int) -> t -> t

(** [adjoint t] inverts a unitary or conditioned application.
    @raise Invalid_argument on measure/reset/barrier. *)
val adjoint : t -> t

(** Validity within a circuit of [num_qubits] x [num_bits]: indices in
    range, controls distinct from each other and from the target. *)
val well_formed : num_qubits:int -> num_bits:int -> t -> bool

(** Counts toward the paper's gate-count convention: unitaries,
    conditioned gates and resets do; measurements and barriers do not. *)
val counts_as_gate : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
