type app = { gate : Gate.t; controls : int list; target : int }
type cond = { bits : (int * bool) list }

type t =
  | Unitary of app
  | Conditioned of cond * app
  | Measure of { qubit : int; bit : int }
  | Reset of int
  | Barrier of int list

let app ?(controls = []) gate target = { gate; controls; target }
let cond_bit bit value = { bits = [ (bit, value) ] }

(* Normalized condition entries: sorted by bit, exact duplicates
   collapsed.  Contradictory pairs (b,true)/(b,false) survive
   normalization — [cond_tests] rejects them, and [Lint] flags any that
   reach a circuit through the raw record type. *)
let normalize_tests bits = List.sort_uniq compare bits

let cond_all bits =
  { bits = normalize_tests (List.map (fun b -> (b, true)) bits) }

let cond_tests bits =
  let bits = normalize_tests bits in
  List.iter
    (fun (b, v) ->
      if v && List.mem (b, false) bits then
        invalid_arg
          (Printf.sprintf
             "Instruction.cond_tests: contradictory tests on bit c%d" b))
    bits;
  { bits }

let cond_holds c register =
  List.for_all
    (fun (bit, value) -> (register lsr bit) land 1 = 1 = value)
    c.bits
let app_qubits a = a.controls @ [ a.target ]

let qubits = function
  | Unitary a | Conditioned (_, a) -> app_qubits a
  | Measure { qubit; _ } -> [ qubit ]
  | Reset q -> [ q ]
  | Barrier qs -> qs

let bits = function
  | Unitary _ | Reset _ | Barrier _ -> []
  | Conditioned (c, _) -> List.map fst c.bits
  | Measure { bit; _ } -> [ bit ]

let map_app f a =
  { a with controls = List.map f a.controls; target = f a.target }

let map_qubits f = function
  | Unitary a -> Unitary (map_app f a)
  | Conditioned (c, a) -> Conditioned (c, map_app f a)
  | Measure { qubit; bit } -> Measure { qubit = f qubit; bit }
  | Reset q -> Reset (f q)
  | Barrier qs -> Barrier (List.map f qs)

let adjoint = function
  | Unitary a -> Unitary { a with gate = Gate.adjoint a.gate }
  | Conditioned (c, a) -> Conditioned (c, { a with gate = Gate.adjoint a.gate })
  | Measure _ | Reset _ | Barrier _ ->
      invalid_arg "Instruction.adjoint: non-unitary instruction"

let rec distinct = function
  | [] -> true
  | x :: rest -> (not (List.mem x rest)) && distinct rest

let well_formed ~num_qubits ~num_bits t =
  let q_ok q = q >= 0 && q < num_qubits in
  let b_ok b = b >= 0 && b < num_bits in
  List.for_all q_ok (qubits t)
  && List.for_all b_ok (bits t)
  &&
  match t with
  | Unitary a | Conditioned (_, a) -> distinct (app_qubits a)
  | Measure _ | Reset _ -> true
  | Barrier qs -> distinct qs

let counts_as_gate = function
  | Unitary _ | Conditioned _ | Reset _ -> true
  | Measure _ | Barrier _ -> false

let equal a b =
  match (a, b) with
  | Unitary x, Unitary y ->
      Gate.equal x.gate y.gate && x.controls = y.controls && x.target = y.target
  | Conditioned (c, x), Conditioned (d, y) ->
      c = d && Gate.equal x.gate y.gate && x.controls = y.controls
      && x.target = y.target
  | Measure { qubit = q1; bit = b1 }, Measure { qubit = q2; bit = b2 } ->
      q1 = q2 && b1 = b2
  | Reset x, Reset y -> x = y
  | Barrier x, Barrier y -> x = y
  | (Unitary _ | Conditioned _ | Measure _ | Reset _ | Barrier _), _ -> false

let pp fmt t =
  let pp_app fmt a =
    match a.controls with
    | [] -> Format.fprintf fmt "%s q%d" (Gate.name a.gate) a.target
    | cs ->
        Format.fprintf fmt "%s%s %s, q%d"
          (String.concat "" (List.map (fun _ -> "c") cs))
          (Gate.name a.gate)
          (String.concat ", " (List.map (Printf.sprintf "q%d") cs))
          a.target
  in
  match t with
  | Unitary a -> pp_app fmt a
  | Conditioned (c, a) ->
      let test (bit, value) =
        Printf.sprintf "c%d == %d" bit (if value then 1 else 0)
      in
      Format.fprintf fmt "if (%s) %a"
        (String.concat " && " (List.map test c.bits))
        pp_app a
  | Measure { qubit; bit } -> Format.fprintf fmt "measure q%d -> c%d" qubit bit
  | Reset q -> Format.fprintf fmt "reset q%d" q
  | Barrier qs ->
      Format.fprintf fmt "barrier %s"
        (String.concat ", " (List.map (Printf.sprintf "q%d") qs))

let to_string t = Format.asprintf "%a" pp t
