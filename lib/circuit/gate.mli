(** Single-qubit gate library.

    Controlled versions are expressed at the instruction level
    ({!Instruction.app} carries a control list), so the gate type only
    covers the 1-qubit unitaries the paper's netlists use: the
    Clifford+T set of Fig 2/6, [V = sqrt(X)] and its adjoint from
    Eqn (1), and parametric rotations for generality. *)

type t =
  | H
  | X
  | Y
  | Z
  | S
  | Sdg
  | T
  | Tdg
  | V  (** square root of X *)
  | Vdg  (** inverse square root of X *)
  | Rx of float
  | Ry of float
  | Rz of float
  | Phase of float  (** diag(1, e^{i.theta}) *)

(** 2x2 unitary of the gate. *)
val matrix : t -> Linalg.Cmat.t

(** Short mnemonic, e.g. ["h"], ["tdg"], ["v"], ["rz(0.5)"]. *)
val name : t -> string

(** Parameter-free constructor mnemonic: like {!name} but ["rx"],
    ["rz"], ["p"] for the parameterized gates — a bounded set, safe as
    a telemetry counter key. *)
val kind : t -> string

(** Inverse gate. *)
val adjoint : t -> t

(** Gates whose matrix is diagonal commute with each other and with any
    control wire; used as a commutation fast path. *)
val is_diagonal : t -> bool

(** Structural equality with angle tolerance 1e-12. *)
val equal : t -> t -> bool

(** Whether the gate belongs to the Clifford+T set
    {H, X, Y, Z, S, S†, T, T†}. *)
val is_clifford_t : t -> bool

val pp : Format.formatter -> t -> unit
