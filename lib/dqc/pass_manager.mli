(** Ordered execution of a pass schedule with per-pass telemetry.

    Each pass runs inside an [Obs] span named [pipeline.pass.<name>]
    (attributes: kind plus the before-side metrics snapshot) and, on
    success, bumps the [pipeline.pass.<name>.runs] counter.  The
    manager snapshots qubit count, gate count and dynamic depth before
    and after every pass so schedules can be profiled stage by stage.

    Execution short-circuits on the first failing pass: the pass's
    exception is re-raised unchanged (so [Lint.Rejected],
    [Transform.Not_transformable] etc. keep their meaning for
    callers), after a [pipeline.pass.failed] counter increment
    records which stage died. *)

type event = {
  pass : string;
  kind : Pass.kind;
  elapsed_ns : float;  (** CPU time spent inside the pass *)
  qubits_before : int;
  qubits_after : int;
  gates_before : int;
  gates_after : int;
  depth_before : int;
  depth_after : int;
}

type outcome = {
  ctx : Pass.ctx;
  events : event list;  (** execution order *)
}

(** Run the schedule over the context.  Re-raises the first pass
    failure after recording it. *)
val run : Pass.t list -> Pass.ctx -> outcome

val pp_event : Format.formatter -> event -> unit
