open Circuit

type report = {
  qubits_before : int;
  qubits_after : int;
  chains : (int * int list) list;
  resets_inserted : int;
  resets_pruned : int;
}

let saved r = r.qubits_before - r.qubits_after

let unchanged_report nq =
  {
    qubits_before = nq;
    qubits_after = nq;
    chains = [];
    resets_inserted = 0;
    resets_pruned = 0;
  }

(* Dependency DAG: an edge i -> j (i earlier in program order) exactly
   when the two instructions share a qubit or a classical bit and the
   commutation oracle cannot prove them interchangeable.  Every linear
   extension is then reachable from the original order by adjacent
   commuting swaps, so any schedule over this DAG denotes the same
   channel. *)
let dependencies instrs =
  let m = Array.length instrs in
  let qubits_of =
    Array.map
      (fun i -> List.sort_uniq compare (Instruction.qubits i))
      instrs
  in
  let bits_of =
    Array.map (fun i -> List.sort_uniq compare (Instruction.bits i)) instrs
  in
  let preds = Array.make m 0 in
  let succs = Array.make m [] in
  for j = 1 to m - 1 do
    for i = 0 to j - 1 do
      let share =
        List.exists (fun q -> List.mem q qubits_of.(j)) qubits_of.(i)
        || List.exists (fun b -> List.mem b bits_of.(j)) bits_of.(i)
      in
      if share && not (Commute.instrs instrs.(i) instrs.(j)) then begin
        succs.(i) <- j :: succs.(i);
        preds.(j) <- preds.(j) + 1
      end
    done
  done;
  (qubits_of, preds, succs)

let role_rank = function
  | Circ.Data -> 2
  | Circ.Answer -> 1
  | Circ.Ancilla -> 0

let rewire ?usage c =
  Obs.with_span "dqc.reuse"
    ~attrs:[ ("qubits", string_of_int (Circ.num_qubits c)) ]
    (fun () ->
      let instrs = Array.of_list (Circ.instructions c) in
      let m = Array.length instrs in
      let nq = Circ.num_qubits c in
      if m = 0 then (c, unchanged_report nq)
      else begin
        let qubits_of, preds, succs = dependencies instrs in
        let remaining =
          (* trust the analyzer's reference counts when they cover this
             register; anything else falls back to a local recount *)
          match usage with
          | Some u when Array.length u = nq -> Array.copy u
          | Some _ | None ->
              let remaining = Array.make nq 0 in
              Array.iter
                (List.iter (fun q -> remaining.(q) <- remaining.(q) + 1))
                qubits_of;
              remaining
        in
        let wire_of = Array.make nq (-1) in
        let free = ref [] in
        let next_wire = ref 0 in
        let hosted : (int, int list) Hashtbl.t = Hashtbl.create 16 in
        let out = ref [] in
        let resets = ref 0 in
        let scheduled = Array.make m false in
        let emitted = ref 0 in
        let activation_cost i =
          List.length (List.filter (fun q -> wire_of.(q) < 0) qubits_of.(i))
        in
        while !emitted < m do
          (* lazy-allocation list scheduling: among ready instructions
             pick the one activating the fewest new qubits, breaking
             ties by program index — deterministic, and it drains every
             operation of the live qubits before widening the frontier,
             which is what retires wires early *)
          let best = ref (-1) and best_cost = ref max_int in
          for i = 0 to m - 1 do
            if (not scheduled.(i)) && preds.(i) = 0 then begin
              let cost = activation_cost i in
              if cost < !best_cost then begin
                best := i;
                best_cost := cost
              end
            end
          done;
          let i = !best in
          assert (i >= 0);
          List.iter
            (fun q ->
              if wire_of.(q) < 0 then begin
                let w =
                  match !free with
                  | w :: rest ->
                      (* re-host on the lowest retired wire, behind a
                         fresh reset *)
                      free := rest;
                      incr resets;
                      out := Instruction.Reset w :: !out;
                      w
                  | [] ->
                      let w = !next_wire in
                      incr next_wire;
                      w
                in
                wire_of.(q) <- w;
                let prev =
                  match Hashtbl.find_opt hosted w with
                  | Some qs -> qs
                  | None -> []
                in
                Hashtbl.replace hosted w (q :: prev)
              end)
            qubits_of.(i);
          out := Instruction.map_qubits (fun q -> wire_of.(q)) instrs.(i) :: !out;
          scheduled.(i) <- true;
          incr emitted;
          List.iter (fun j -> preds.(j) <- preds.(j) - 1) succs.(i);
          List.iter
            (fun q ->
              remaining.(q) <- remaining.(q) - 1;
              if remaining.(q) = 0 then
                free := List.sort compare (wire_of.(q) :: !free))
            qubits_of.(i)
        done;
        let chains =
          Hashtbl.fold (fun w qs acc -> (w, List.rev qs) :: acc) hosted []
          |> List.filter (fun (_, qs) -> List.length qs >= 2)
          |> List.sort compare
        in
        if chains = [] then (c, unchanged_report nq)
        else begin
          let nw = !next_wire in
          let roles = Array.make nw Circ.Ancilla in
          (* a wire carries the strongest role among its hosts:
             Data > Answer > Ancilla *)
          Array.iteri
            (fun q w ->
              if w >= 0 then begin
                let r = Circ.role c q in
                if role_rank r > role_rank roles.(w) then roles.(w) <- r
              end)
            wire_of;
          let circuit =
            Circ.create ~roles ~num_bits:(Circ.num_bits c) (List.rev !out)
          in
          Obs.incr ~n:(nq - nw) "dqc.reuse.qubits_saved";
          Obs.incr ~n:!resets "dqc.reuse.resets";
          ( circuit,
            {
              qubits_before = nq;
              qubits_after = nw;
              chains;
              resets_inserted = !resets;
              resets_pruned = 0;
            } )
        end
      end)

let prune_resets trace =
  let c = Lint.Trace.circuit trace in
  let keep = ref [] in
  let pruned = ref 0 in
  Lint.Trace.iteri
    (fun _ ~pre instr ->
      match instr with
      | Instruction.Reset q when Lint.Deadness.provably_zero pre q ->
          incr pruned
      | Instruction.Reset _ | Instruction.Unitary _
      | Instruction.Conditioned _ | Instruction.Measure _
      | Instruction.Barrier _ ->
          keep := instr :: !keep)
    trace;
  if !pruned = 0 then (c, 0)
  else
    ( Circ.create ~roles:(Circ.roles c) ~num_bits:(Circ.num_bits c)
        (List.rev !keep),
      !pruned )

let pp_report fmt r =
  Format.fprintf fmt "@[<v>qubits: %d -> %d (%d saved)@,resets: +%d, -%d pruned"
    r.qubits_before r.qubits_after (saved r) r.resets_inserted r.resets_pruned;
  List.iter
    (fun (w, qs) ->
      Format.fprintf fmt "@,wire %d hosts qubits %s" w
        (String.concat ", " (List.map string_of_int qs)))
    r.chains;
  Format.fprintf fmt "@]"

let report_to_string r = Format.asprintf "%a" pp_report r
