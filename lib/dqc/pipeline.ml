open Circuit

exception Invalid_options of string
exception Reuse_refuted of string

exception Optimize_refuted = Optimize.Refuted

let exact_check_max_qubits = 12

(* ------------------------------------------------------------------ *)
(* Built-in pass bodies.  Each is a pure ctx -> ctx function; the
   manager wraps them in [pipeline.pass.<name>] spans and counters. *)

let prepare_body (ctx : Pass.ctx) =
  match ctx.Pass.config.Pass.scheme with
  | Toffoli_scheme.Direct_mct -> ctx
  | ( Toffoli_scheme.Traditional | Toffoli_scheme.Dynamic_1
    | Toffoli_scheme.Dynamic_2 | Toffoli_scheme.Dynamic_2_shared _ ) as s ->
      let prepared = Toffoli_scheme.prepare s ctx.Pass.circuit in
      { ctx with Pass.circuit = prepared; Pass.reference = prepared }

let transform_body (ctx : Pass.ctx) =
  let config = ctx.Pass.config in
  let mct = config.Pass.scheme = Toffoli_scheme.Direct_mct in
  if config.Pass.slots = 1 then begin
    let r = Transform.transform ~mode:config.Pass.mode ~mct ctx.Pass.circuit in
    {
      ctx with
      Pass.circuit = r.Transform.circuit;
      Pass.transformed = Some (Pass.Single r);
      Pass.data_bit = r.Transform.data_bit;
      Pass.answer_phys = r.Transform.answer_phys;
      Pass.iterations = List.length r.Transform.iteration_order;
      Pass.violations = List.length r.Transform.violations;
    }
  end
  else begin
    let m =
      Multi_transform.transform ~mode:config.Pass.mode ~mct
        ~slots:config.Pass.slots ctx.Pass.circuit
    in
    {
      ctx with
      Pass.circuit = m.Multi_transform.circuit;
      Pass.transformed = Some (Pass.Multi m);
      Pass.data_bit = m.Multi_transform.data_bit;
      Pass.answer_phys = m.Multi_transform.answer_phys;
      Pass.iterations = List.length m.Multi_transform.iteration_order;
      Pass.violations = List.length m.Multi_transform.violations;
    }
  end

(* strongest evidence first: the symbolic certifier proves equivalence
   exactly, at any width, without dispatching a simulation backend;
   only when it cannot conclude does the numeric chain run *)
let certify_body (ctx : Pass.ctx) =
  match ctx.Pass.transformed with
  | Some (Pass.Single r) ->
      let verdict = Certifier.certify ctx.Pass.traditional r in
      let ctx =
        Pass.note "certify.verdict"
          (Verify.Certify.verdict_to_string verdict)
          ctx
      in
      { ctx with Pass.certified = Verify.Certify.is_proved verdict }
  | Some (Pass.Multi _) | None -> ctx

let equivalence_body (ctx : Pass.ctx) =
  if ctx.Pass.certified then ctx
  else begin
    let reference = ctx.Pass.reference in
    let small = Circ.num_qubits reference <= exact_check_max_qubits in
    match ctx.Pass.transformed with
    | Some (Pass.Single r) ->
        if small then
          {
            ctx with
            Pass.tv = Some (Equivalence.tv_distance reference r);
            Pass.tv_sampled = false;
          }
        else if
          (* the exact evaluator is out of reach: fall back to a shot
             estimate when both sides run on a scalable backend *)
          Sim.Stabilizer.supports reference
          && Sim.Stabilizer.supports r.Transform.circuit
        then
          {
            ctx with
            Pass.tv =
              Some
                (Equivalence.sampled_tv_distance
                   ~policy:ctx.Pass.config.Pass.backend_policy reference r);
            Pass.tv_sampled = true;
          }
        else ctx
    | Some (Pass.Multi m) ->
        if small then
          { ctx with Pass.tv = Some (Multi_transform.tv_distance reference m) }
        else ctx
    | None -> ctx
  end

let reuse_body (ctx : Pass.ctx) =
  (* the analyzer's per-qubit reference counts (when fresh) spare the
     scheduler its own usage recount *)
  let usage =
    Option.map
      (fun (s : Lint.Resource.summary) -> s.Lint.Resource.usage_counts)
      (Pass.fresh_resources ctx)
  in
  let circuit, report = Reuse.rewire ?usage ctx.Pass.circuit in
  let ctx = { ctx with Pass.circuit; Pass.reuse = Some report } in
  if Reuse.saved report = 0 then
    Pass.note "reuse" "no retired wire could be re-hosted" ctx
  else ctx

let analyze_body (ctx : Pass.ctx) =
  match Pass.fresh_facts ctx with
  | Some _ -> ctx
  | None -> { ctx with Pass.facts = Some (Lint.Trace.run ctx.Pass.circuit) }

let analyze_resources_body (ctx : Pass.ctx) =
  match Pass.fresh_resources ctx with
  | Some _ -> ctx
  | None ->
      let trace =
        match Pass.fresh_facts ctx with
        | Some t -> t
        | None -> Lint.Trace.run ctx.Pass.circuit
      in
      let summary = Lint.Resource.analyze ~trace ctx.Pass.circuit in
      {
        ctx with
        Pass.facts = Some trace;
        Pass.resources = Some (ctx.Pass.circuit, summary);
      }

let prune_resets_body (ctx : Pass.ctx) =
  match Pass.fresh_facts ctx with
  | None -> ctx
  | Some trace ->
      let circuit, pruned = Reuse.prune_resets trace in
      if pruned = 0 then ctx
      else begin
        let reuse =
          match ctx.Pass.reuse with
          | Some r ->
              Some
                {
                  r with
                  Reuse.resets_pruned = r.Reuse.resets_pruned + pruned;
                }
          | None -> None
        in
        Pass.note "prune_resets"
          (Printf.sprintf "%d provably-redundant reset%s dropped" pruned
             (if pruned = 1 then "" else "s"))
          { ctx with Pass.circuit; Pass.reuse = reuse }
      end

(* prove the rewired circuit's outcome channel unchanged.  Try the
   strongest claim first — channel equality against the untouched
   compile input, structural comparison only — and fall back to full
   certification against the prepared reference, which is what the
   reuse step actually rewired. *)
let reuse_certify_body (ctx : Pass.ctx) =
  match ctx.Pass.reuse with
  | None -> ctx
  | Some _
    when ctx.Pass.circuit == ctx.Pass.reference
         && ctx.Pass.reference == ctx.Pass.traditional ->
      (* nothing was rewired and nothing was prepared: the output IS
         the compile input, so equality holds by reflexivity and the
         certifier has nothing to prove *)
      {
        (Pass.note "reuse.verdict" "proved: identity (no rewiring)" ctx) with
        Pass.certified = true;
      }
  | Some _ -> (
      let verdict =
        if ctx.Pass.reference == ctx.Pass.traditional then
          Verify.Certify.check_channel ctx.Pass.traditional ctx.Pass.circuit
        else begin
          let strong =
            Verify.Certify.check_channel ~max_refute_vars:0
              ctx.Pass.traditional ctx.Pass.circuit
          in
          if Verify.Certify.is_proved strong then strong
          else Verify.Certify.check_channel ctx.Pass.reference ctx.Pass.circuit
        end
      in
      let ctx =
        Pass.note "reuse.verdict"
          (Verify.Certify.verdict_to_string verdict)
          ctx
      in
      match verdict with
      | Verify.Certify.Proved _ -> { ctx with Pass.certified = true }
      | Verify.Certify.Refuted cex ->
          raise (Reuse_refuted cex.Verify.Certify.detail)
      | Verify.Certify.Unknown _ -> { ctx with Pass.certified = false })

(* the optimizer passes: certified analysis-driven rewrites.  Each
   body reuses the interpreter facts already in the context when they
   are fresh; a changed circuit invalidates them implicitly
   ([Pass.fresh_facts] compares circuits). *)
let optimize_pass family
    (runf :
      ?certify:bool -> ?trace:Lint.Trace.t -> Circ.t -> Optimize.rewrite)
    (ctx : Pass.ctx) =
  let r = runf ?trace:(Pass.fresh_facts ctx) ctx.Pass.circuit in
  if r.Optimize.reverted then
    Pass.note
      ("optimize." ^ family)
      "reverted: certifier could not prove the rewrite" ctx
  else if not (Optimize.changed r.Optimize.stats) then ctx
  else
    Pass.note
      ("optimize." ^ family)
      (Optimize.stats_to_string r.Optimize.stats)
      { ctx with Pass.circuit = r.Optimize.circuit }

let optimize_fold_body ctx = optimize_pass "fold" Optimize.fold ctx
let optimize_dce_body ctx = optimize_pass "dce" Optimize.dce ctx
let optimize_affine_body ctx = optimize_pass "affine" Optimize.affine ctx

let expand_cv_body (ctx : Pass.ctx) =
  { ctx with Pass.circuit = Decompose.Pass.expand_cv ctx.Pass.circuit }

let peephole_body (ctx : Pass.ctx) =
  {
    ctx with
    Pass.circuit =
      Decompose.Peephole.merge_rotations
        (Decompose.Peephole.cancel_inverses ctx.Pass.circuit);
  }

let lower_native_body (ctx : Pass.ctx) =
  { ctx with Pass.circuit = Transpile.Basis.to_native ctx.Pass.circuit }

(* the lint gate: every compiled output must satisfy the structural
   invariants; an error-severity diagnostic raises [Lint.Rejected]
   rather than letting a broken circuit out.  DQC-transformed outputs
   get the DQC-discipline catalogue; reuse-rewired outputs are general
   dynamic circuits, so they get the general catalogue. *)
let lint_body (ctx : Pass.ctx) =
  let passes =
    match ctx.Pass.reuse with
    | Some _ -> Lint.default_passes
    | None -> Lint.dqc_passes ~max_live:ctx.Pass.config.Pass.slots ()
  in
  let trace = Pass.fresh_facts ctx in
  (* run-then-raise rather than [Lint.check] so the flight recorder sees
     every diagnostic before a rejection unwinds the pipeline *)
  let report = Lint.run ?trace ~passes ctx.Pass.circuit in
  if Obs.Flight.enabled () then
    List.iter
      (fun d ->
        Obs.Flight.record ~kind:"lint.diagnostic"
          [ ("diagnostic", Lint.Diagnostic.to_json d) ])
      report.Lint.diagnostics;
  if not (Lint.clean report) then raise (Lint.Rejected report);
  { ctx with Pass.lint = Some report }

let builtin_passes =
  [
    Pass.make ~name:"prepare" ~kind:Pass.Transform
      ~doc:"Toffoli-scheme substitution (Eqn 1 / Eqn 3 netlists)"
      prepare_body;
    Pass.make ~name:"transform" ~kind:Pass.Transform
      ~doc:"Algorithm 1 dynamic transformation (single- or multi-slot)"
      transform_body;
    Pass.make ~name:"certify" ~kind:Pass.Analysis
      ~doc:"symbolic path-sum certification against the compile input"
      certify_body;
    Pass.make ~name:"equivalence" ~kind:Pass.Analysis
      ~doc:"numeric TV-distance evidence (exact <= 12 qubits, else sampled)"
      equivalence_body;
    Pass.make ~name:"reuse" ~kind:Pass.Transform
      ~doc:"causal-cone qubit reuse: rewire retired wires behind resets"
      reuse_body;
    Pass.make ~name:"analyze" ~kind:Pass.Analysis
      ~doc:"abstract interpretation; shares its facts through the context"
      analyze_body;
    Pass.make ~name:"analyze.resources" ~kind:Pass.Analysis
      ~doc:
        "per-segment sparsity/resource summary (relational domain); shares \
         summary and trace through the context"
      analyze_resources_body;
    Pass.make ~name:"prune_resets" ~kind:Pass.Transform
      ~doc:"drop resets the analysis facts prove redundant"
      prune_resets_body;
    Pass.make ~name:"reuse_certify" ~kind:Pass.Gate
      ~doc:"path-sum channel certification of the reuse rewiring"
      reuse_certify_body;
    Pass.make ~name:"expand_cv" ~kind:Pass.Transform
      ~doc:"lower CV/CV-dagger to Clifford+T (Fig 6)" expand_cv_body;
    Pass.make ~name:"optimize.fold" ~kind:Pass.Transform
      ~doc:
        "fold statically-known measurement outcomes and feed-forward \
         conditions (certified)"
      optimize_fold_body;
    Pass.make ~name:"optimize.dce" ~kind:Pass.Transform
      ~doc:
        "drop dead gates, provably-redundant resets and dead wires \
         (certified)"
      optimize_dce_body;
    Pass.make ~name:"optimize.affine" ~kind:Pass.Transform
      ~doc:
        "cancel gates and controls the GF(2) affine rows prove constant \
         (certified)"
      optimize_affine_body;
    Pass.make ~name:"peephole" ~kind:Pass.Transform
      ~doc:"cancel inverse pairs and merge rotations" peephole_body;
    Pass.make ~name:"lower_native" ~kind:Pass.Transform
      ~doc:"lower to the IBM native basis {rz, sx, x, cx}"
      lower_native_body;
    Pass.make ~name:"lint" ~kind:Pass.Gate
      ~doc:"static lint gate; error diagnostics raise Lint.Rejected"
      lint_body;
  ]

let () = List.iter Pass.register builtin_passes
let registered_passes () = Pass.all ()

(* ------------------------------------------------------------------ *)
(* Options: a thin schedule builder over the registry                  *)

module Options = struct
  type t = {
    scheme : Toffoli_scheme.t;
    mode : [ `Algorithm1 | `Sound ];
    slots : int;
    expand_cv : bool;
    peephole : bool;
    native : bool;
    check_equivalence : bool;
    certify : bool;
    backend_policy : Sim.Backend.policy;
    lint : bool;
    reuse : bool;
    optimize : bool;
    passes : string list option;
  }

  let default =
    {
      scheme = Toffoli_scheme.Dynamic_2;
      mode = `Algorithm1;
      slots = 1;
      expand_cv = true;
      peephole = false;
      native = false;
      check_equivalence = true;
      certify = true;
      backend_policy = Sim.Backend.Auto;
      lint = true;
      reuse = false;
      optimize = false;
      passes = None;
    }

  let with_scheme scheme t = { t with scheme }
  let with_mode mode t = { t with mode }

  let with_slots slots t =
    if slots < 1 then
      raise
        (Invalid_options
           (Printf.sprintf "with_slots: %d is invalid — slots must be >= 1"
              slots));
    { t with slots }

  let with_expand_cv expand_cv t = { t with expand_cv }
  let with_peephole peephole t = { t with peephole }
  let with_native native t = { t with native }
  let with_check_equivalence check_equivalence t = { t with check_equivalence }
  let with_certify certify t = { t with certify }
  let with_backend_policy backend_policy t = { t with backend_policy }
  let with_lint lint t = { t with lint }
  let with_reuse reuse t = { t with reuse }
  let with_optimize optimize t = { t with optimize }

  let lookup name =
    match Pass.find name with
    | Some p -> p
    | None ->
        raise
          (Invalid_options
             (Printf.sprintf "unknown pass %S (see `dqc_cli passes`)" name))

  let with_passes names t =
    List.iter (fun name -> ignore (lookup name)) names;
    { t with passes = Some names }

  let scheme t = t.scheme
  let mode t = t.mode
  let slots t = t.slots
  let expand_cv t = t.expand_cv
  let peephole t = t.peephole
  let native t = t.native
  let check_equivalence t = t.check_equivalence
  let certify t = t.certify
  let backend_policy t = t.backend_policy
  let lint t = t.lint
  let reuse t = t.reuse
  let optimize t = t.optimize
  let passes t = t.passes

  let config t =
    {
      Pass.scheme = t.scheme;
      Pass.mode = t.mode;
      Pass.slots = t.slots;
      Pass.backend_policy = t.backend_policy;
    }

  let schedule_names t =
    match t.passes with
    | Some names -> names
    | None ->
        let opt flag names = if flag then names else [] in
        (* the optimizer slots in ahead of peephole: its rewrites are
           certified against the pre-optimize circuit, and peephole's
           syntactic cancellations then run on the smaller netlist *)
        let optimize =
          opt t.optimize [ "optimize.fold"; "optimize.dce"; "optimize.affine" ]
        in
        if t.reuse then
          [
            "prepare";
            "analyze.resources";
            "reuse";
            "analyze";
            "prune_resets";
            "reuse_certify";
          ]
          @ opt t.expand_cv [ "expand_cv" ]
          @ optimize
          @ opt t.peephole [ "peephole" ]
          @ opt t.native [ "lower_native" ]
          @ opt t.lint [ "analyze"; "lint" ]
        else
          [ "prepare"; "transform" ]
          @ opt (t.check_equivalence && t.certify) [ "certify" ]
          @ opt t.check_equivalence [ "equivalence" ]
          @ opt t.expand_cv [ "expand_cv" ]
          @ optimize
          @ opt t.peephole [ "peephole" ]
          @ opt t.native [ "lower_native" ]
          @ opt t.lint [ "lint" ]

  let schedule t = List.map lookup (schedule_names t)
end

(* ------------------------------------------------------------------ *)
(* Compilation driver                                                  *)

type output = {
  circuit : Circ.t;
  data_bit : (int * int) list;
  answer_phys : (int * int) list;
  iterations : int;
  violations : int;
  qubits : int;
  gates : int;
  depth : int;
  duration_ns : float;
  certified : bool;
  tv : float option;
  tv_sampled : bool;
  lint : Lint.report option;
  reuse : Reuse.report option;
  events : Pass_manager.event list;
  notes : (string * string) list;
}

(* A gate exception means a pass *proved* something is wrong with the
   compile; that is exactly when the flight recorder's last events
   (pass snapshots, lint diagnostics, certifier verdicts) matter, so
   dump them before the exception escapes. *)
let dump_flight_on e =
  let dump detail =
    match
      Obs.Flight.dump_on_raise ~exn_name:(Printexc.exn_slot_name e) ~detail
    with
    | Some path -> Printf.eprintf "flight record written to %s\n%!" path
    | None -> ()
  in
  match e with
  | Lint.Rejected report -> dump (Lint.summary report)
  | Reuse_refuted detail -> dump detail
  | Optimize_refuted detail -> dump detail
  | Sim.State.Zero_probability_branch { qubit; outcome } ->
      dump
        (Printf.sprintf "qubit %d, outcome %c" qubit (if outcome then '1' else '0'))
  | _ -> ()

let compile_body ~options traditional =
  Obs.with_span "pipeline.compile"
      ~attrs:
        [
          ("scheme", Toffoli_scheme.to_string (Options.scheme options));
          ("slots", string_of_int (Options.slots options));
        ]
      (fun () ->
        let schedule = Options.schedule options in
        let ctx = Pass.init ~config:(Options.config options) traditional in
        let { Pass_manager.ctx; events } = Pass_manager.run schedule ctx in
        let circuit = ctx.Pass.circuit in
        {
          circuit;
          data_bit = ctx.Pass.data_bit;
          answer_phys = ctx.Pass.answer_phys;
          iterations = ctx.Pass.iterations;
          violations = ctx.Pass.violations;
          qubits = Circ.num_qubits circuit;
          gates = Metrics.gate_count circuit;
          depth = Metrics.dynamic_depth circuit;
          duration_ns = Metrics.duration circuit;
          certified = ctx.Pass.certified;
          tv = ctx.Pass.tv;
          tv_sampled = ctx.Pass.tv_sampled;
          lint = ctx.Pass.lint;
          reuse = ctx.Pass.reuse;
          events;
          notes = List.rev ctx.Pass.notes;
        })

let compile ?(options = Options.default) traditional =
  let output =
    try compile_body ~options traditional
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      dump_flight_on e;
      Printexc.raise_with_backtrace e bt
  in
  (* compile runs on the caller's domain: publish what we recorded *)
  Obs.flush ();
  output

let pp fmt o =
  Format.fprintf fmt
    "@[<v>qubits: %d, gates: %d, depth: %d, duration: %.2f us@,\
     iterations: %d, unsound reorderings: %d@,%s@,%s"
    o.qubits o.gates o.depth
    (o.duration_ns /. 1000.)
    o.iterations o.violations
    (if o.certified then "equivalence: certified symbolically (exact proof)"
     else
       match o.tv with
       | Some tv when o.tv_sampled ->
           Printf.sprintf "sampled TV distance: %.6f" tv
       | Some tv -> Printf.sprintf "exact TV distance: %.6f" tv
       | None -> "equivalence check skipped")
    (match o.lint with
    | Some r -> "lint: " ^ Lint.summary r
    | None -> "lint: skipped");
  (match o.reuse with
  | Some r when Reuse.saved r > 0 ->
      Format.fprintf fmt "@,reuse: %d qubits saved (%d resets, %d pruned)"
        (Reuse.saved r) r.Reuse.resets_inserted r.Reuse.resets_pruned
  | Some _ -> Format.fprintf fmt "@,reuse: no qubits saved"
  | None -> ());
  Format.fprintf fmt "@]"

let to_string o = Format.asprintf "%a" pp o
