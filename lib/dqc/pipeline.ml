open Circuit

type options = {
  scheme : Toffoli_scheme.t;
  mode : [ `Algorithm1 | `Sound ];
  slots : int;
  expand_cv : bool;
  peephole : bool;
  native : bool;
  check_equivalence : bool;
}

let default =
  {
    scheme = Toffoli_scheme.Dynamic_2;
    mode = `Algorithm1;
    slots = 1;
    expand_cv = true;
    peephole = false;
    native = false;
    check_equivalence = true;
  }

module Options = struct
  type t = {
    scheme : Toffoli_scheme.t;
    mode : [ `Algorithm1 | `Sound ];
    slots : int;
    expand_cv : bool;
    peephole : bool;
    native : bool;
    check_equivalence : bool;
    certify : bool;
    backend_policy : Sim.Backend.policy;
    lint : bool;
  }

  let default =
    {
      scheme = Toffoli_scheme.Dynamic_2;
      mode = `Algorithm1;
      slots = 1;
      expand_cv = true;
      peephole = false;
      native = false;
      check_equivalence = true;
      certify = true;
      backend_policy = Sim.Backend.Auto;
      lint = true;
    }

  let with_scheme scheme t = { t with scheme }
  let with_mode mode t = { t with mode }

  let with_slots slots t =
    if slots < 1 then invalid_arg "Pipeline.Options.with_slots: slots < 1";
    { t with slots }

  let with_expand_cv expand_cv t = { t with expand_cv }
  let with_peephole peephole t = { t with peephole }
  let with_native native t = { t with native }
  let with_check_equivalence check_equivalence t = { t with check_equivalence }
  let with_certify certify t = { t with certify }
  let with_backend_policy backend_policy t = { t with backend_policy }
  let with_lint lint t = { t with lint }

  let scheme t = t.scheme
  let mode t = t.mode
  let slots t = t.slots
  let expand_cv t = t.expand_cv
  let peephole t = t.peephole
  let native t = t.native
  let check_equivalence t = t.check_equivalence
  let certify t = t.certify
  let backend_policy t = t.backend_policy
  let lint t = t.lint

  let of_flat (o : options) =
    {
      scheme = o.scheme;
      mode = o.mode;
      slots = o.slots;
      expand_cv = o.expand_cv;
      peephole = o.peephole;
      native = o.native;
      check_equivalence = o.check_equivalence;
      certify = true;
      backend_policy = Sim.Backend.Auto;
      lint = true;
    }
end

type output = {
  circuit : Circ.t;
  data_bit : (int * int) list;
  answer_phys : (int * int) list;
  iterations : int;
  violations : int;
  qubits : int;
  gates : int;
  depth : int;
  duration_ns : float;
  certified : bool;
  tv : float option;
  tv_sampled : bool;
  lint : Lint.report option;
}

let exact_check_max_qubits = 12

(* Each stage runs inside an [Obs] span so `dqc_cli stats`, the Chrome
   trace and the metrics JSON can break compile time down per pass.
   Stages that are switched off simply record no span. *)
let compile_observed ~options traditional =
  Obs.with_span "pipeline.compile"
    ~attrs:
      [
        ("scheme", Toffoli_scheme.to_string options.Options.scheme);
        ("slots", string_of_int options.Options.slots);
      ]
    (fun () ->
      let prepared =
        match options.Options.scheme with
        | Toffoli_scheme.Direct_mct -> traditional
        | ( Toffoli_scheme.Traditional | Toffoli_scheme.Dynamic_1
          | Toffoli_scheme.Dynamic_2 | Toffoli_scheme.Dynamic_2_shared _ ) as s
          ->
            Obs.with_span "pipeline.prepare" (fun () ->
                Toffoli_scheme.prepare s traditional)
      in
      let mct = options.Options.scheme = Toffoli_scheme.Direct_mct in
      let small = Circ.num_qubits prepared <= exact_check_max_qubits in
      let check_span kind f =
        Obs.with_span "pipeline.equivalence" ~attrs:[ ("method", kind) ] f
      in
      let ( transformed,
            data_bit,
            answer_phys,
            iterations,
            violations,
            certified,
            tv,
            sampled ) =
        if options.Options.slots = 1 then begin
          let r =
            Obs.with_span "pipeline.transform" (fun () ->
                Transform.transform ~mode:options.Options.mode ~mct prepared)
          in
          (* strongest evidence first: the symbolic certifier proves
             equivalence exactly, at any width, without dispatching a
             simulation backend; only when it cannot conclude do the
             numeric checkers run *)
          let certified =
            options.Options.check_equivalence && options.Options.certify
            && Verify.Certify.is_proved
                 (check_span "certified" (fun () ->
                      Certifier.certify traditional r))
          in
          let tv, sampled =
            if certified || not options.Options.check_equivalence then
              (None, false)
            else if small then
              ( Some
                  (check_span "exact" (fun () ->
                       Equivalence.tv_distance prepared r)),
                false )
            else if
              (* the exact evaluator is out of reach: fall back to a shot
                 estimate when both sides run on a scalable backend *)
              Sim.Stabilizer.supports prepared
              && Sim.Stabilizer.supports r.circuit
            then
              ( Some
                  (check_span "sampled" (fun () ->
                       Equivalence.sampled_tv_distance
                         ~policy:options.Options.backend_policy prepared r)),
                true )
            else (None, false)
          in
          ( r.circuit,
            r.data_bit,
            r.answer_phys,
            List.length r.iteration_order,
            List.length r.violations,
            certified,
            tv,
            sampled )
        end
        else begin
          let m =
            Obs.with_span "pipeline.transform" (fun () ->
                Multi_transform.transform ~mode:options.Options.mode ~mct
                  ~slots:options.Options.slots prepared)
          in
          let tv =
            if options.Options.check_equivalence && small then
              Some
                (check_span "exact" (fun () ->
                     Multi_transform.tv_distance prepared m))
            else None
          in
          ( m.circuit,
            m.data_bit,
            m.answer_phys,
            List.length m.iteration_order,
            List.length m.violations,
            false,
            tv,
            false )
        end
      in
      let lowered =
        let c = transformed in
        let c =
          if options.Options.expand_cv then
            Obs.with_span "pipeline.expand_cv" (fun () ->
                Decompose.Pass.expand_cv c)
          else c
        in
        let c =
          if options.Options.peephole then
            Obs.with_span "pipeline.peephole" (fun () ->
                Decompose.Peephole.merge_rotations
                  (Decompose.Peephole.cancel_inverses c))
          else c
        in
        if options.Options.native then
          Obs.with_span "pipeline.lower_native" (fun () ->
              Transpile.Basis.to_native c)
        else c
      in
      (* the lint gate: every compiled output must satisfy the DQC
         structural invariants; an error-severity diagnostic raises
         [Lint.Rejected] rather than letting a broken circuit out *)
      let lint_report =
        if options.Options.lint then
          Some
            (Obs.with_span "pipeline.lint" (fun () ->
                 Lint.check
                   ~passes:
                     (Lint.dqc_passes ~max_live:options.Options.slots ())
                   lowered))
        else None
      in
      {
        circuit = lowered;
        data_bit;
        answer_phys;
        iterations;
        violations;
        qubits = Circ.num_qubits lowered;
        gates = Metrics.gate_count lowered;
        depth = Metrics.dynamic_depth lowered;
        duration_ns = Metrics.duration lowered;
        certified;
        tv;
        tv_sampled = sampled;
        lint = lint_report;
      })

let compile ?(options = Options.default) traditional =
  let output = compile_observed ~options traditional in
  (* compile runs on the caller's domain: publish what we recorded *)
  Obs.flush ();
  output

let compile_flat ?(options = default) traditional =
  compile ~options:(Options.of_flat options) traditional

let pp fmt o =
  Format.fprintf fmt
    "@[<v>qubits: %d, gates: %d, depth: %d, duration: %.2f us@,\
     iterations: %d, unsound reorderings: %d@,%s@,%s@]"
    o.qubits o.gates o.depth
    (o.duration_ns /. 1000.)
    o.iterations o.violations
    (if o.certified then "equivalence: certified symbolically (exact proof)"
     else
       match o.tv with
       | Some tv when o.tv_sampled ->
           Printf.sprintf "sampled TV distance: %.6f" tv
       | Some tv -> Printf.sprintf "exact TV distance: %.6f" tv
       | None -> "equivalence check skipped")
    (match o.lint with
    | Some r -> "lint: " ^ Lint.summary r
    | None -> "lint: skipped")

let to_string o = Format.asprintf "%a" pp o
