open Circuit

type event = {
  pass : string;
  kind : Pass.kind;
  elapsed_ns : float;
  qubits_before : int;
  qubits_after : int;
  gates_before : int;
  gates_after : int;
  depth_before : int;
  depth_after : int;
}

type outcome = { ctx : Pass.ctx; events : event list }

let snapshot c =
  (Circ.num_qubits c, Metrics.gate_count c, Metrics.dynamic_depth c)

(* Flight-recorder snapshots: cheap enough to take unconditionally per
   pass, but only built when a recorder is armed.  The pass kind is
   exported as [pass_kind] — [kind] is the event header's field. *)
let flight_snapshot ~pass ~kind (q, g, d) =
  [
    ("pass", Obs.Json.String pass);
    ("pass_kind", Obs.Json.String kind);
    ("qubits", Obs.Json.Int q);
    ("gates", Obs.Json.Int g);
    ("depth", Obs.Json.Int d);
  ]

let run passes ctx =
  let events = ref [] in
  let final =
    List.fold_left
      (fun (ctx : Pass.ctx) (p : Pass.t) ->
        let qb, gb, db = snapshot ctx.Pass.circuit in
        let span = "pipeline.pass." ^ p.Pass.name in
        let kind_s = Pass.kind_to_string p.Pass.kind in
        if Obs.Flight.enabled () then
          Obs.Flight.record ~kind:"pass.begin"
            (flight_snapshot ~pass:p.Pass.name ~kind:kind_s (qb, gb, db));
        let t0 = Sys.time () in
        let ctx' =
          try
            Obs.with_span span
              ~attrs:
                [
                  ("kind", kind_s);
                  ("qubits", string_of_int qb);
                  ("gates", string_of_int gb);
                ]
              (fun () -> p.Pass.run ctx)
          with e ->
            Obs.incr "pipeline.pass.failed";
            if Obs.enabled () then Obs.incr (span ^ ".failed");
            if Obs.Flight.enabled () then
              Obs.Flight.record ~kind:"pass.failed"
                [
                  ("pass", Obs.Json.String p.Pass.name);
                  ("exn", Obs.Json.String (Printexc.to_string e));
                ];
            raise e
        in
        let elapsed_ns = (Sys.time () -. t0) *. 1e9 in
        if Obs.enabled () then Obs.incr (span ^ ".runs");
        let qa, ga, da = snapshot ctx'.Pass.circuit in
        if Obs.Flight.enabled () then
          Obs.Flight.record ~kind:"pass.end"
            (flight_snapshot ~pass:p.Pass.name ~kind:kind_s (qa, ga, da));
        events :=
          {
            pass = p.Pass.name;
            kind = p.Pass.kind;
            elapsed_ns;
            qubits_before = qb;
            qubits_after = qa;
            gates_before = gb;
            gates_after = ga;
            depth_before = db;
            depth_after = da;
          }
          :: !events;
        ctx')
      ctx passes
  in
  { ctx = final; events = List.rev !events }

let pp_event fmt e =
  Format.fprintf fmt "%-14s %-9s %8.0f ns  qubits %d -> %d, gates %d -> %d, \
                      depth %d -> %d"
    e.pass
    (Pass.kind_to_string e.kind)
    e.elapsed_ns e.qubits_before e.qubits_after e.gates_before e.gates_after
    e.depth_before e.depth_after
