let answer_bit num_data k = num_data + k

(* The prepared circuit may have gained extra Data-role scratch qubits
   (the DQC-shaped MCT reduction); compare only over the bits of data
   qubits that exist in the original circuit, plus the answer bits. *)
let shared_bits c (r : Transform.result) =
  let num_data = List.length r.data_bit in
  List.filter_map
    (fun (q, bit) -> if q < Circuit.Circ.num_qubits c then Some bit else None)
    r.data_bit
  @ List.mapi (fun k (_ : int * int) -> answer_bit num_data k) r.answer_phys

let traditional_distribution c (r : Transform.result) =
  let num_data = List.length r.data_bit in
  let measures =
    List.filter (fun (q, _) -> q < Circuit.Circ.num_qubits c) r.data_bit
    @ List.mapi (fun k (q, _) -> (q, answer_bit num_data k)) r.answer_phys
  in
  Sim.Dist.marginal ~bits:(shared_bits c r)
    (Sim.Exact.measured_distribution ~measures c)

let dynamic_distribution ?relative_to (r : Transform.result) =
  let num_data = List.length r.data_bit in
  let measures =
    List.mapi (fun k (_, phys) -> (phys, answer_bit num_data k)) r.answer_phys
  in
  let full = Sim.Exact.measured_distribution ~measures r.circuit in
  match relative_to with
  | None -> full
  | Some c -> Sim.Dist.marginal ~bits:(shared_bits c r) full

let tv_distance c r =
  Sim.Dist.tv_distance
    (traditional_distribution c r)
    (dynamic_distribution ~relative_to:c r)

let equivalent ?(eps = 1e-9) c r = tv_distance c r <= eps

let sampled_tv_distance ?(policy = Sim.Backend.Auto) ?(seed = 0x5A3D)
    ?(shots = 4096) ?domains c (r : Transform.result) =
  let num_data = List.length r.data_bit in
  let trad_measures =
    List.filter (fun (q, _) -> q < Circuit.Circ.num_qubits c) r.data_bit
    @ List.mapi (fun k (q, _) -> (q, answer_bit num_data k)) r.answer_phys
  in
  let dyn_measures =
    List.mapi (fun k (_, phys) -> (phys, answer_bit num_data k)) r.answer_phys
  in
  let bits = shared_bits c r in
  let empirical measures circuit =
    Sim.Dist.marginal ~bits
      (Sim.Runner.to_dist
         (Sim.Backend.run_measured ~policy ~seed ?domains ~shots ~measures
            circuit))
  in
  Sim.Dist.tv_distance (empirical trad_measures c)
    (empirical dyn_measures r.circuit)
