open Circuit

exception Not_transformable of string

type violation = {
  iteration : int;
  emitted : Instruction.t;
  jumped_over : Instruction.t list;
}

type result = {
  circuit : Circ.t;
  data_bit : (int * int) list;
  answer_phys : (int * int) list;
  iteration_order : int list;
  violations : violation list;
}

let fail fmt = Printf.ksprintf (fun s -> raise (Not_transformable s)) fmt

let check_input ~mct c =
  List.iter
    (fun (i : Instruction.t) ->
      match i with
      | Unitary { controls = [] | [ _ ]; _ } -> ()
      | Unitary _ ->
          if not mct then
            fail
              "multi-control gate %s: decompose it first \
               (Pass.substitute_toffoli) or pass ~mct:true for the direct \
               dynamic MCT realization"
              (Instruction.to_string i)
      | Conditioned _ | Measure _ | Reset _ ->
          fail "input must be a traditional (measurement-free) circuit, got %s"
            (Instruction.to_string i)
      | Barrier _ -> ())
    (Circ.instructions c)

(* Eligibility of a pending gate during the iteration hosting work
   qubit [q_w].  [measured] maps already-measured data qubits to their
   register bit.  Returns the mapped output instruction, or [None] when
   the gate must wait for a later iteration.

   The logic is uniform in the number of quantum controls, which gives
   the direct dynamic realization of multiple-control Toffoli gates
   (the paper's future work): controls on live qubits stay quantum,
   controls on measured data qubits join a conjunctive classical
   condition, and the gate waits until no control is pending. *)
let eligible ~c ~phys_of_answer ~measured ~q_w (i : Instruction.t) :
    Instruction.t option =
  let is_answer q = Circ.role c q = Circ.Answer in
  let phys q = if q = q_w then 0 else phys_of_answer q in
  let live q = q = q_w || is_answer q in
  let dead q = (not (live q)) && List.mem_assoc q measured in
  match i with
  | Barrier _ -> Some (Instruction.Barrier [])
  | Unitary { gate; controls; target } ->
      if dead target then
        fail "gate %s targets already-measured qubit q%d"
          (Instruction.to_string i) target
      else if not (live target) then None
      else begin
        let live_controls = List.filter live controls in
        let measured_controls =
          List.filter (fun q -> (not (live q)) && dead q) controls
        in
        let pending_controls =
          List.filter (fun q -> (not (live q)) && not (dead q)) controls
        in
        if pending_controls <> [] then None
        else begin
          let app =
            Instruction.app
              ~controls:(List.map phys live_controls)
              gate (phys target)
          in
          match measured_controls with
          | [] -> Some (Instruction.Unitary app)
          | _ ->
              let bits =
                List.map (fun q -> List.assoc q measured) measured_controls
              in
              Some (Instruction.Conditioned (Instruction.cond_all bits, app))
        end
      end
  | Conditioned _ | Measure _ | Reset _ ->
      (* ruled out by [check_input] *)
      assert false

(* a legal iteration order is a permutation of the work qubits that
   respects every Case-2 edge (control before target) *)
let valid_order c order =
  let work =
    List.filter
      (fun q -> Circ.role c q <> Circ.Answer)
      (List.init (Circ.num_qubits c) (fun q -> q))
  in
  let index q =
    let rec go k = function
      | [] -> -1
      | x :: rest -> if x = q then k else go (k + 1) rest
    in
    go 0 order
  in
  List.sort compare order = List.sort compare work
  && List.for_all
       (fun (ctl, target) -> index ctl < index target)
       (Interaction.edges c)

let transform ?(mode = `Algorithm1) ?(mct = false) ?order c =
  check_input ~mct c;
  let order =
    match order with
    | None -> Interaction.iteration_order c
    | Some o ->
        if not (valid_order c o) then
          fail "supplied iteration order violates Case-2 constraints";
        o
  in
  let answers = Circ.qubits_with_role c Circ.Answer in
  let data = Circ.qubits_with_role c Circ.Data in
  if data = [] then fail "circuit has no data qubits";
  let phys_of_answer q =
    let rec find k = function
      | [] -> assert false
      | x :: rest -> if x = q then k + 1 else find (k + 1) rest
    in
    find 0 answers
  in
  let bit_of_data q =
    let rec find k = function
      | [] -> assert false
      | x :: rest -> if x = q then k else find (k + 1) rest
    in
    find 0 data
  in
  (* pending gates keep their input position for violation reporting *)
  let gates =
    Array.of_list
      (List.filter
         (fun (i : Instruction.t) ->
           match i with
           | Barrier _ -> false
           | Unitary _ | Conditioned _ | Measure _ | Reset _ -> true)
         (Circ.instructions c))
  in
  let emitted = Array.make (Array.length gates) false in
  let roles_out =
    Array.of_list
      (Circ.Data :: List.map (fun _ -> Circ.Answer) answers)
  in
  let out = Circ.Builder.make ~roles:roles_out ~num_bits:(List.length data) () in
  let violations = ref [] in
  let measured = ref [] in
  let non_commuting_before pos =
    let acc = ref [] in
    for k = pos - 1 downto 0 do
      if (not emitted.(k)) && not (Commute.instrs gates.(k) gates.(pos)) then
        acc := gates.(k) :: !acc
    done;
    !acc
  in
  let run_iteration iter_idx q_w =
    if iter_idx > 0 then Circ.Builder.reset out 0;
    let progress = ref true in
    while !progress do
      progress := false;
      Array.iteri
        (fun pos gate ->
          if not emitted.(pos) then
            match
              eligible ~c ~phys_of_answer ~measured:!measured ~q_w gate
            with
            | None -> ()
            | Some mapped ->
                let blockers = non_commuting_before pos in
                let emit () =
                  (match mapped with
                  | Instruction.Barrier _ -> ()
                  | Instruction.Unitary _ | Instruction.Conditioned _
                  | Instruction.Measure _ | Instruction.Reset _ ->
                      Circ.Builder.add out mapped);
                  emitted.(pos) <- true;
                  progress := true
                in
                (match (mode, blockers) with
                | _, [] -> emit ()
                | `Algorithm1, _ ->
                    violations :=
                      {
                        iteration = iter_idx;
                        emitted = gate;
                        jumped_over = blockers;
                      }
                      :: !violations;
                    emit ()
                | `Sound, _ -> (* wait for blockers to clear *) ()))
        gates
    done;
    (* ancilla iterations are simply discarded: no measurement, and any
       later gate referencing the ancilla can never be scheduled *)
    if Circ.role c q_w = Circ.Data then begin
      let bit = bit_of_data q_w in
      Circ.Builder.measure out ~qubit:0 ~bit;
      measured := (q_w, bit) :: !measured
    end
  in
  List.iteri run_iteration order;
  let leftovers =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun (k, g) -> if emitted.(k) then None else Some g)
            (Array.to_seqi gates)))
  in
  (match leftovers with
  | [] -> ()
  | g :: _ ->
      fail "gate %s could not be scheduled%s"
        (Instruction.to_string g)
        (match mode with
        | `Sound -> " soundly (a non-commuting pending gate blocks it)"
        | `Algorithm1 -> ""));
  {
    circuit = Circ.Builder.build out;
    data_bit = List.map (fun q -> (q, bit_of_data q)) data;
    answer_phys = List.map (fun q -> (q, phys_of_answer q)) answers;
    iteration_order = order;
    violations = List.rev !violations;
  }

let conditioned_count r =
  List.length
    (List.filter
       (fun (i : Instruction.t) ->
         match i with
         | Conditioned _ -> true
         | Unitary _ | Measure _ | Reset _ | Barrier _ -> false)
       (Circ.instructions r.circuit))
