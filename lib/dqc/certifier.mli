open Circuit

(** Symbolic equivalence certification of a transform result against
    its traditional original — the no-simulation equivalence gate (see
    {!Verify.Certify} for the verdict semantics and
    [docs/VERIFICATION.md] for the method). *)

(** [certify c r] proves [r.circuit] equivalent to [c]: channel scope
    when the outcome distributions over the shared bits provably
    coincide, dynamics scope when only the mid-circuit machinery is
    certified (expected whenever [r.violations] is non-empty). *)
val certify :
  ?max_refute_vars:int -> Circ.t -> Transform.result -> Verify.Certify.verdict

(** Fault injection for demonstrations and gate tests: flip the qubit
    under the first measurement, changing a recorded bit.  On a
    violation-free schedule the channel claim breaks, so certification
    must return [Refuted].  On a schedule that already carries
    violations the dynamics-scope claim survives — it certifies the
    DQC against the coherent replay of its own (now corrupted) stream,
    so the fault is absorbed into the schedule deviation the verdict
    already witnesses.  The gate tests therefore corrupt a
    violation-free benchmark (DJ_XOR under dynamic-1). *)
val corrupt : Circ.t -> Circ.t
