open Circuit

(** End-to-end compilation driver, built on the staged pass manager:
    {!Options} assembles a schedule of registered {!Pass}es and
    {!compile} hands it to {!Pass_manager.run}, so every stage runs
    inside a [pipeline.pass.<name>] span with before/after metrics
    snapshots (see docs/PASSES.md).

    The default (DQC) schedule chains: Toffoli-scheme substitution ->
    dynamic transformation (single- or multi-slot) -> symbolic
    certification -> numeric equivalence evidence -> optional CV
    expansion / peephole / native lowering -> the lint gate.  With
    {!Options.with_reuse} the transform stage is replaced by the
    general causal-cone qubit-reuse pass, whose rewiring is proved
    channel-equivalent by the path-sum certifier
    ({!Verify.Certify.check_channel}) — never sampled.

    Options are built in pipeline style:
    {[
      Pipeline.Options.default
      |> Pipeline.Options.with_scheme Toffoli_scheme.Dynamic_1
      |> Pipeline.Options.with_slots 2
      |> Pipeline.Options.with_backend_policy Sim.Backend.Stabilizer
    ]} *)

(** Raised by the {!Options} builders on invalid input — a slot count
    below 1, a schedule naming an unregistered pass. *)
exception Invalid_options of string

(** Raised by the [reuse_certify] gate pass when the certifier
    {e refutes} the rewiring (a genuine bug in the reuse transform):
    the payload is the counterexample detail.  An [Unknown] verdict
    does not raise — it leaves [certified] false for the caller to
    judge. *)
exception Reuse_refuted of string

(** Raised by the [optimize.*] passes when the path-sum certifier
    {e refutes} one of their rewrites — the analysis facts and the
    certifier disagree, so compilation must not continue on either
    circuit.  (An [Unknown] verdict never raises: the rewrite is
    silently reverted instead — zero sampled fallbacks.)  Equal to
    {!Optimize.Refuted}. *)
exception Optimize_refuted of string

(** The built-in passes, in registration order — what
    [dqc_cli passes] lists.  Calling this (or anything else in this
    module) guarantees the built-ins are registered. *)
val registered_passes : unit -> Pass.t list

module Options : sig
  type t

  (** [Dynamic_2], [`Algorithm1], 1 slot, CV expansion on, peephole
      off, native off, equivalence check on, certifier on,
      [Sim.Backend.Auto], lint on, reuse off, default schedule. *)
  val default : t

  val with_scheme : Toffoli_scheme.t -> t -> t
  val with_mode : [ `Algorithm1 | `Sound ] -> t -> t

  (** @raise Invalid_options when [slots < 1]. *)
  val with_slots : int -> t -> t

  val with_expand_cv : bool -> t -> t
  val with_peephole : bool -> t -> t
  val with_native : bool -> t -> t
  val with_check_equivalence : bool -> t -> t

  (** Run the symbolic equivalence certifier ({!Certifier.certify})
      ahead of the numeric checkers — on by default.  A [Proved]
      verdict is recorded as [certified] and makes the TV computations
      unnecessary; on [Unknown] or [Refuted] the numeric evidence
      chain (exact, then sampled) runs as before.  Only effective when
      [check_equivalence] is on and [slots = 1]. *)
  val with_certify : bool -> t -> t

  (** Execution backend the pipeline's shot-based stages (the sampled
      equivalence fallback beyond 12 qubits) dispatch through. *)
  val with_backend_policy : Sim.Backend.policy -> t -> t

  (** Run the lint gate on the compiled output — on by default.  An
      error-severity diagnostic makes {!compile} raise
      {!Lint.Rejected}.  DQC-transformed outputs are checked against
      {!Lint.dqc_passes} ([max_live] = slots); reuse-rewired outputs
      against {!Lint.default_passes}. *)
  val with_lint : bool -> t -> t

  (** Compile through the qubit-reuse flow instead of the Algorithm 1
      transform: prepare -> reuse -> analyze -> prune_resets ->
      reuse_certify, then the configured lowering passes and the lint
      gate.  The certifier's verdict lands in [certified]; a refuted
      rewiring raises {!Reuse_refuted}. *)
  val with_reuse : bool -> t -> t

  (** Run the certified optimizer ([optimize.fold] / [optimize.dce] /
      [optimize.affine], see {!Optimize}) ahead of peephole — off by
      default.  Every rewrite is proved channel-equivalent by the
      path-sum certifier; a refutation raises {!Optimize_refuted}. *)
  val with_optimize : bool -> t -> t

  (** Replace the derived schedule with an explicit pass list, looked
      up in the registry — the escape hatch for custom passes
      ({!Pass.register} first) and experiments.  All other options
      still feed the pass context's configuration.
      @raise Invalid_options on an unregistered name. *)
  val with_passes : string list -> t -> t

  val scheme : t -> Toffoli_scheme.t
  val mode : t -> [ `Algorithm1 | `Sound ]
  val slots : t -> int
  val expand_cv : t -> bool
  val peephole : t -> bool
  val native : t -> bool
  val check_equivalence : t -> bool
  val certify : t -> bool
  val backend_policy : t -> Sim.Backend.policy
  val lint : t -> bool
  val reuse : t -> bool
  val optimize : t -> bool
  val passes : t -> string list option

  (** The pass context configuration the options denote. *)
  val config : t -> Pass.config

  (** Pass names {!compile} will execute, in order.  Derived from the
      flags, or the explicit {!with_passes} list verbatim. *)
  val schedule_names : t -> string list

  (** The resolved schedule.
      @raise Invalid_options on an unregistered name. *)
  val schedule : t -> Pass.t list
end

type output = {
  circuit : Circ.t;
  data_bit : (int * int) list;
  answer_phys : (int * int) list;
  iterations : int;
  violations : int;
  qubits : int;
  gates : int;
  depth : int;
  duration_ns : float;
  certified : bool;
      (** the symbolic certifier proved equivalence — exact evidence,
          any width, no simulation; when set, [tv] is [None] because
          the numeric checkers were unnecessary.  In the reuse flow
          this is {!Verify.Certify.check_channel}'s verdict on the
          rewiring. *)
  tv : float option;  (** None when the check was skipped *)
  tv_sampled : bool;
      (** [tv] came from {!Equivalence.sampled_tv_distance} (shot
          estimate through the execution backend) rather than exact
          branch enumeration *)
  lint : Lint.report option;
      (** the lint gate's report ([None] when disabled); always
          {!Lint.clean} when present — errors raise instead *)
  reuse : Reuse.report option;
      (** the reuse pass's report ([None] outside the reuse flow) *)
  events : Pass_manager.event list;
      (** per-pass timing and metrics snapshots, in execution order *)
  notes : (string * string) list;
      (** diagnostics the passes recorded (certifier verdicts, pruning
          counts), oldest first *)
}

(** [compile ?options traditional] runs the schedule the options
    denote.  Beyond 12 qubits the exact equivalence check is replaced
    by a sampled one through {!Sim.Backend.run} when both circuits are
    Clifford (single-slot only); otherwise it is skipped as before.
    @raise Transform.Not_transformable / Interaction.Cyclic as the
    underlying stages do.
    @raise Lint.Rejected when the lint gate (on by default) finds an
    error-severity diagnostic in the compiled output.
    @raise Reuse_refuted when the reuse flow's certification gate
    refutes the rewiring. *)
val compile : ?options:Options.t -> Circ.t -> output

val pp : Format.formatter -> output -> unit
val to_string : output -> string
