open Circuit

(** End-to-end compilation pipeline: the convenience layer a
    downstream user drives.

    [compile] chains: Toffoli-scheme substitution -> dynamic
    transformation (single- or multi-slot) -> optional CV expansion ->
    optional peephole cleanup -> optional native-basis lowering, and
    returns the circuit together with the metrics and equivalence
    evidence accumulated along the way.

    Options are built in pipeline style:
    {[
      Pipeline.Options.default
      |> Pipeline.Options.with_scheme Toffoli_scheme.Dynamic_1
      |> Pipeline.Options.with_slots 2
      |> Pipeline.Options.with_backend_policy Sim.Backend.Stabilizer
    ]} *)

(** The pre-builder flat options record.  Deprecated shim: retained so
    existing callers keep compiling — new code should use {!Options}
    and {!compile}; this record cannot carry a backend policy. *)
type options = {
  scheme : Toffoli_scheme.t;  (** defaults to [Dynamic_2] in {!default} *)
  mode : [ `Algorithm1 | `Sound ];
  slots : int;  (** physical data qubits; 1 = the paper's design *)
  expand_cv : bool;  (** lower CV/CV† to Clifford+T (Fig 6) *)
  peephole : bool;  (** cancel inverse pairs and merge rotations *)
  native : bool;  (** lower to the IBM basis {rz, sx, x, cx} *)
  check_equivalence : bool;  (** TV distance (exact <= 12 qubits) *)
}

(** Deprecated shim alongside {!type-options}; {!Options.default} is
    the builder-era equivalent. *)
val default : options

module Options : sig
  type t

  (** [Dynamic_2], [`Algorithm1], 1 slot, CV expansion on, peephole
      off, native off, equivalence check on, [Sim.Backend.Auto]. *)
  val default : t

  val with_scheme : Toffoli_scheme.t -> t -> t
  val with_mode : [ `Algorithm1 | `Sound ] -> t -> t

  (** @raise Invalid_argument when [slots < 1]. *)
  val with_slots : int -> t -> t

  val with_expand_cv : bool -> t -> t
  val with_peephole : bool -> t -> t
  val with_native : bool -> t -> t
  val with_check_equivalence : bool -> t -> t

  (** Run the symbolic equivalence certifier ({!Certifier.certify})
      ahead of the numeric checkers — on by default.  A [Proved]
      verdict is recorded as [certified] and makes the TV computations
      unnecessary; on [Unknown] or [Refuted] the numeric evidence
      chain (exact, then sampled) runs as before.  Only effective when
      [check_equivalence] is on and [slots = 1]. *)
  val with_certify : bool -> t -> t

  (** Execution backend the pipeline's shot-based stages (the sampled
      equivalence fallback beyond 12 qubits) dispatch through. *)
  val with_backend_policy : Sim.Backend.policy -> t -> t

  (** Run the static lint gate ({!Lint.dqc_passes}, [max_live] =
      slots) on the compiled output — on by default.  An
      error-severity diagnostic makes {!compile} raise
      {!Lint.Rejected}. *)
  val with_lint : bool -> t -> t

  val scheme : t -> Toffoli_scheme.t
  val mode : t -> [ `Algorithm1 | `Sound ]
  val slots : t -> int
  val expand_cv : t -> bool
  val peephole : t -> bool
  val native : t -> bool
  val check_equivalence : t -> bool
  val certify : t -> bool
  val backend_policy : t -> Sim.Backend.policy
  val lint : t -> bool

  (** Lift the deprecated flat record ([backend_policy] = [Auto],
      [certify] on, [lint] on). *)
  val of_flat : options -> t
end

type output = {
  circuit : Circ.t;
  data_bit : (int * int) list;
  answer_phys : (int * int) list;
  iterations : int;
  violations : int;
  qubits : int;
  gates : int;
  depth : int;
  duration_ns : float;
  certified : bool;
      (** the symbolic certifier proved equivalence — exact evidence,
          any width, no simulation; when set, [tv] is [None] because
          the numeric checkers were unnecessary *)
  tv : float option;  (** None when the check was skipped *)
  tv_sampled : bool;
      (** [tv] came from {!Equivalence.sampled_tv_distance} (shot
          estimate through the execution backend) rather than exact
          branch enumeration *)
  lint : Lint.report option;
      (** the lint gate's report ([None] when disabled); always
          {!Lint.clean} when present — errors raise instead *)
}

(** [compile ?options traditional].  Beyond 12 qubits the exact
    equivalence check is replaced by a sampled one through
    {!Sim.Backend.run} when both circuits are Clifford (single-slot
    only); otherwise it is skipped as before.
    @raise Transform.Not_transformable / Interaction.Cyclic as the
    underlying stages do.
    @raise Lint.Rejected when the lint gate (on by default) finds an
    error-severity diagnostic in the compiled output. *)
val compile : ?options:Options.t -> Circ.t -> output

(** Deprecated shim for the flat record:
    [compile_flat ~options c = compile ~options:(Options.of_flat options) c]. *)
val compile_flat : ?options:options -> Circ.t -> output

val pp : Format.formatter -> output -> unit
val to_string : output -> string
