(* Bridge from transform results to the symbolic certifier. *)

open Circuit

let certify ?max_refute_vars (c : Circ.t) (r : Transform.result) =
  let verdict =
    Verify.Certify.certify ?max_refute_vars ~traditional:c
      ~data_bit:r.data_bit ~answer_phys:r.answer_phys
      ~iteration_order:r.iteration_order
      ~violations:(List.length r.violations) r.circuit
  in
  if Obs.Flight.enabled () then
    Obs.Flight.record ~kind:"certify.verdict"
      [
        ("verdict", Obs.Json.String (Verify.Certify.verdict_to_string verdict));
        ("proved", Obs.Json.Bool (Verify.Certify.is_proved verdict));
      ];
  verdict

(* the CLI's --corrupt fault injection: flip the qubit under the first
   measurement, which provably flips a recorded shared bit — used to
   demonstrate that the certifier refutes, not just rubber-stamps *)
let corrupt (c : Circ.t) =
  let done_ = ref false in
  Circ.map_instructions
    (fun i ->
      match i with
      | Instruction.Measure { qubit; _ } when not !done_ ->
          done_ := true;
          [
            Instruction.Unitary { gate = Gate.X; controls = []; target = qubit };
            i;
          ]
      | Instruction.Measure _ | Instruction.Unitary _
      | Instruction.Conditioned _ | Instruction.Reset _
      | Instruction.Barrier _ ->
          [ i ])
    c
