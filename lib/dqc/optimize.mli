(** Certified abstract-interpretation-driven circuit optimizer.

    Three rewrite families turn the facts the static analyzer already
    proves ({!Lint.Trace} / {!Lint.Reldom} / {!Lint.Deadness}) into
    circuit rewrites:

    - {e fold}: constant-measurement folding — a measurement whose
      outcome is statically known {e and} equal to the value its
      target bit already holds is a provable no-op and is deleted
      (the "classical bit write" is the initial bit value itself);
      feed-forward conditions that provably hold become unconditional
      gates, and conditions that provably fail delete their gate;
    - {e dce}: dead-code elimination by backward
      observability-liveness ({!Lint.Deadness.dead_set}) — unitaries,
      classically conditioned uncomputations and resets that provably
      cannot influence any measured bit are removed (this subsumes the
      [dead-gate] lint criterion and additionally cancels the DQC
      ancilla-uncompute tails the linter deliberately exempts), plus
      resets of provably-|0⟩ qubits
      ({!Lint.Deadness.redundant_reset}, exactly [redundant-reset]),
      and wires left with no effectful instruction are dropped;
    - {e affine}: rewrites from the GF(2) affine row basis — a control
      the relational rows pin to |0⟩ kills its gate (a CX chain
      provably acting as identity cancels), a control pinned to |1⟩
      is dropped from the control list, and a |0⟩-fixing gate on a
      provably-|0⟩ target is deleted
      ({!Lint.Deadness.simplify_app}).

    Every sweep that changes the circuit is certified against its
    input by the path-sum channel certifier
    ({!Verify.Certify.check_channel}) — a symbolic proof over exact
    ring arithmetic, never a sampled estimate.  [Refuted] raises
    {!Refuted} (surfaced as [Pipeline.Optimize_refuted]); [Unknown]
    {e reverts} the sweep, so an unproved rewrite is never applied.

    Telemetry: an [optimize.<family>] span per sweep, counters
    [optimize.removed.{gates,resets,measures}], and one
    [optimize.rewrite] flight event per accepted sweep carrying the
    gate-count and dynamic-depth deltas. *)

open Circuit

(** The certifier refuted a rewrite: the optimizer (or the analysis
    facts it consumed) is wrong, and compilation must not continue on
    either circuit.  Re-exported as [Pipeline.Optimize_refuted]. *)
exception Refuted of string

type stats = {
  gates_removed : int;
      (** unitary applications deleted outright (dead or
          provably-identity), plus conditioned gates whose condition
          provably fails *)
  uncomputes_removed : int;
      (** classically conditioned gates removed as unobservable — the
          DQC ancilla-uncompute idiom the [dead-gate] linter exempts *)
  resets_removed : int;
  measures_removed : int;
  conds_resolved : int;  (** conditions proved to hold: gate made plain *)
  controls_dropped : int;  (** provably-|1⟩ controls removed *)
  wires_removed : int;  (** qubit wires left without any instruction *)
}

val zero : stats
val add : stats -> stats -> stats

(** Instructions deleted by the sweep (gates + uncomputes + resets +
    measures). *)
val removed : stats -> int

(** Anything to report at all — deletions, resolutions or dropped
    controls. *)
val changed : stats -> bool

(** One certified sweep. *)
type rewrite = {
  circuit : Circ.t;  (** the accepted circuit (input when reverted) *)
  stats : stats;  (** zero when the sweep was reverted *)
  reverted : bool;
      (** the certifier returned [Unknown]: the rewrite was discarded
          rather than trusted — never a sampled fallback *)
}

(** [fold ?certify ?trace c] — single constant-measurement /
    feed-forward folding sweep.  [trace] (when it belongs to [c])
    avoids re-running the abstract interpreter; [certify] defaults to
    [true].
    @raise Refuted when the certifier disproves the rewrite. *)
val fold : ?certify:bool -> ?trace:Lint.Trace.t -> Circ.t -> rewrite

(** Single dead-gate / redundant-reset / dead-wire sweep. *)
val dce : ?certify:bool -> ?trace:Lint.Trace.t -> Circ.t -> rewrite

(** Single affine-fact (constant-control) sweep. *)
val affine : ?certify:bool -> ?trace:Lint.Trace.t -> Circ.t -> rewrite

(** Aggregate outcome of {!run}. *)
type result = {
  before : Circ.t;
  after : Circ.t;
  total : stats;
  sweeps : int;  (** fold+dce+affine rounds executed (>= 1) *)
  proved : bool;
      (** every accepted change carries a [Proved] certificate (true
          when nothing changed); [false] only records that some sweep
          was reverted on [Unknown] *)
}

(** Run fold, dce and affine to a fixpoint (bounded by [max_sweeps]
    rounds, default 4).  Each round interprets the current circuit
    once and shares the trace across the three sweeps' fact queries.
    @raise Refuted as the sweeps do. *)
val run : ?certify:bool -> ?max_sweeps:int -> Circ.t -> result

val gates_delta : result -> int  (** paper-convention gate count, before - after *)

val depth_delta : result -> int  (** dynamic depth, before - after *)

val pp_stats : Format.formatter -> stats -> unit
val stats_to_string : stats -> string
