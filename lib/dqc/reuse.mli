open Circuit

(** General qubit reuse by causal-cone analysis — the move the
    dynamic-circuit compilation literature generalizes from the
    paper's Toffoli-network transform: a physical wire whose hosted
    qubit has retired (no remaining instruction touches it) can be
    reset and re-serve as a {e later} qubit's wire, shrinking circuit
    width without touching the outcome channel.

    The rewiring is commutation-aware: instructions form a dependency
    DAG with an edge between two program-ordered instructions exactly
    when they share a qubit or classical bit {e and}
    {!Commute.instrs} cannot prove them interchangeable.  Any linear
    extension of that DAG is reachable from the original order by
    adjacent commuting swaps, so scheduling over it is sound.  A
    lazy-allocation list scheduler then picks, among ready
    instructions, the one activating the fewest not-yet-allocated
    qubits (ties resolve to the smallest program index, making the
    result deterministic); a qubit's first instruction allocates the
    lowest retired wire — behind a fresh [Reset] — or a brand-new wire
    when none has retired.

    The transform never claims its own correctness: the pipeline's
    reuse flow hands every rewired circuit to the path-sum certifier
    ({!Verify.Certify.check_channel}) and records the verdict. *)

type report = {
  qubits_before : int;
  qubits_after : int;
  chains : (int * int list) list;
      (** wires hosting two or more original qubits, as
          [(wire, hosted qubits in activation order)], ascending *)
  resets_inserted : int;  (** one per re-hosting *)
  resets_pruned : int;
      (** inserted resets later removed because the abstract
          interpreter proved the wire already |0> ({!prune_resets}) *)
}

(** Qubits saved: [qubits_before - qubits_after]. *)
val saved : report -> int

(** [rewire ?usage c] returns the rewired circuit and its report.
    When no wire can host a second qubit, [c] itself is returned (same
    physical value — callers may test with [==]) with an empty-chain
    report.  Classical bits are never remapped, so the rewired circuit
    records its measurements into exactly the original register —
    the property the channel certification rests on.

    [usage], when given, must be [c]'s per-qubit instruction reference
    counts (each instruction contributing 1 per distinct qubit it
    touches — exactly {!Lint.Resource.summary.usage_counts}); the
    scheduler then skips its own recount.  A [usage] of the wrong
    length is ignored. *)
val rewire : ?usage:int array -> Circ.t -> Circ.t * report

(** [prune_resets trace] drops every [Reset q] whose pre-state already
    proves qubit [q] is |0> (the abstract interpreter's [Zero] fact —
    the same fact the linter's [redundant-reset] hint reports), and
    returns the pruned circuit with the number of resets removed.
    The trace must belong to the circuit being pruned; it is the
    pipeline's shared lint-facts context entry. *)
val prune_resets : Lint.Trace.t -> Circ.t * int

val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string
