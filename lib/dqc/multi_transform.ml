open Circuit

type result = {
  circuit : Circ.t;
  data_bit : (int * int) list;
  answer_phys : (int * int) list;
  iteration_order : int list;
  violations : Transform.violation list;
  slots : int;
}

let fail fmt =
  Printf.ksprintf (fun s -> raise (Transform.Not_transformable s)) fmt

let check_input ~mct c =
  List.iter
    (fun (i : Instruction.t) ->
      match i with
      | Unitary { controls; _ } when List.length controls >= 2 ->
          if not mct then
            fail "multi-control gate %s: decompose it or pass ~mct:true"
              (Instruction.to_string i)
      | Unitary _ | Barrier _ -> ()
      | Conditioned _ | Measure _ | Reset _ ->
          fail "input must be a traditional (measurement-free) circuit, got %s"
            (Instruction.to_string i))
    (Circ.instructions c)

let transform ?(mode = `Algorithm1) ?(mct = false) ~slots c =
  if slots < 1 then invalid_arg "Multi_transform.transform: slots < 1";
  check_input ~mct c;
  let answers = Circ.qubits_with_role c Circ.Answer in
  let data = Circ.qubits_with_role c Circ.Data in
  if data = [] then fail "circuit has no data qubits";
  let work =
    List.filter
      (fun q -> Circ.role c q <> Circ.Answer)
      (List.init (Circ.num_qubits c) (fun q -> q))
  in
  let order =
    match Interaction.iteration_order c with
    | o -> o
    | exception Interaction.Cyclic _ when slots >= 2 -> work
  in
  let slots = min slots (List.length work) in
  let phys_of_answer q =
    let rec find k = function
      | [] -> assert false
      | x :: rest -> if x = q then slots + k else find (k + 1) rest
    in
    find 0 answers
  in
  let bit_of_data q =
    let rec find k = function
      | [] -> assert false
      | x :: rest -> if x = q then k else find (k + 1) rest
    in
    find 0 data
  in
  let gates =
    Array.of_list
      (List.filter
         (fun (i : Instruction.t) ->
           match i with
           | Barrier _ -> false
           | Unitary _ | Conditioned _ | Measure _ | Reset _ -> true)
         (Circ.instructions c))
  in
  let emitted = Array.make (Array.length gates) false in
  let roles_out =
    Array.append (Array.make slots Circ.Data)
      (Array.of_list (List.map (fun _ -> Circ.Answer) answers))
  in
  let out =
    Circ.Builder.make ~roles:roles_out ~num_bits:(List.length data) ()
  in
  let violations = ref [] in
  let measured = ref [] in
  (* slot -> hosted logical work qubit *)
  let host = Array.make slots (-1) in
  let slot_of_logical q =
    let rec find s =
      if s >= slots then None
      else if host.(s) = q then Some s
      else find (s + 1)
    in
    find 0
  in
  let non_commuting_before pos =
    let acc = ref [] in
    for k = pos - 1 downto 0 do
      if (not emitted.(k)) && not (Commute.instrs gates.(k) gates.(pos)) then
        acc := gates.(k) :: !acc
    done;
    !acc
  in
  (* eligibility under the current live set *)
  let eligible (i : Instruction.t) : Instruction.t option =
    let is_answer q = Circ.role c q = Circ.Answer in
    let live q = is_answer q || slot_of_logical q <> None in
    let dead q = (not (live q)) && List.mem_assoc q !measured in
    let phys q =
      if is_answer q then phys_of_answer q
      else match slot_of_logical q with Some s -> s | None -> assert false
    in
    match i with
    | Barrier _ -> Some (Instruction.Barrier [])
    | Unitary { gate; controls; target } ->
        if dead target then
          fail "gate %s targets already-measured qubit q%d"
            (Instruction.to_string i) target
        else if not (live target) then None
        else begin
          let live_controls = List.filter live controls in
          let measured_controls =
            List.filter (fun q -> (not (live q)) && dead q) controls
          in
          let pending =
            List.filter (fun q -> (not (live q)) && not (dead q)) controls
          in
          if pending <> [] then None
          else begin
            let app =
              Instruction.app
                ~controls:(List.map phys live_controls)
                gate (phys target)
            in
            match measured_controls with
            | [] -> Some (Instruction.Unitary app)
            | _ ->
                let bits =
                  List.map (fun q -> List.assoc q !measured) measured_controls
                in
                Some (Instruction.Conditioned (Instruction.cond_all bits, app))
          end
        end
    | Conditioned _ | Measure _ | Reset _ -> assert false
  in
  let greedy iter_idx =
    let progress = ref true in
    while !progress do
      progress := false;
      Array.iteri
        (fun pos gate ->
          if not emitted.(pos) then
            match eligible gate with
            | None -> ()
            | Some mapped ->
                let blockers = non_commuting_before pos in
                let emit () =
                  (match mapped with
                  | Instruction.Barrier _ -> ()
                  | Instruction.Unitary _ | Instruction.Conditioned _
                  | Instruction.Measure _ | Instruction.Reset _ ->
                      Circ.Builder.add out mapped);
                  emitted.(pos) <- true;
                  progress := true
                in
                (match (mode, blockers) with
                | _, [] -> emit ()
                | `Algorithm1, _ ->
                    violations :=
                      {
                        Transform.iteration = iter_idx;
                        emitted = gate;
                        jumped_over = blockers;
                      }
                      :: !violations;
                    emit ()
                | `Sound, _ -> ()))
        gates
    done
  in
  let evict s =
    let h = host.(s) in
    if h >= 0 then begin
      if Circ.role c h = Circ.Data then begin
        let bit = bit_of_data h in
        Circ.Builder.measure out ~qubit:s ~bit;
        measured := (h, bit) :: !measured
      end;
      Circ.Builder.reset out s;
      host.(s) <- -1
    end
  in
  List.iteri
    (fun iter_idx q_w ->
      let s = iter_idx mod slots in
      evict s;
      host.(s) <- q_w;
      greedy iter_idx)
    order;
  (* final measurements of still-live data qubits (order immaterial:
     they are on distinct physical qubits) *)
  for s = 0 to slots - 1 do
    let h = host.(s) in
    if h >= 0 && Circ.role c h = Circ.Data then begin
      let bit = bit_of_data h in
      Circ.Builder.measure out ~qubit:s ~bit;
      measured := (h, bit) :: !measured
    end;
    host.(s) <- -1
  done;
  let leftover =
    Array.exists (fun e -> not e) emitted
  in
  if leftover then begin
    let g =
      let rec first k = if emitted.(k) then first (k + 1) else gates.(k) in
      first 0
    in
    fail "gate %s could not be scheduled%s" (Instruction.to_string g)
      (match mode with
      | `Sound -> " soundly (a non-commuting pending gate blocks it)"
      | `Algorithm1 -> "")
  end;
  {
    circuit = Circ.Builder.build out;
    data_bit = List.map (fun q -> (q, bit_of_data q)) data;
    answer_phys = List.map (fun q -> (q, phys_of_answer q)) answers;
    iteration_order = order;
    violations = List.rev !violations;
    slots;
  }

(* distribution plumbing mirrors Equivalence, with the slot offset *)
let shared_bits c (r : result) =
  let num_data = List.length r.data_bit in
  List.filter_map
    (fun (q, bit) -> if q < Circ.num_qubits c then Some bit else None)
    r.data_bit
  @ List.mapi (fun k (_ : int * int) -> num_data + k) r.answer_phys

let dynamic_distribution ?relative_to (r : result) =
  let num_data = List.length r.data_bit in
  let measures =
    List.mapi (fun k (_, phys) -> (phys, num_data + k)) r.answer_phys
  in
  let full = Sim.Exact.measured_distribution ~measures r.circuit in
  match relative_to with
  | None -> full
  | Some c -> Sim.Dist.marginal ~bits:(shared_bits c r) full

let tv_distance c (r : result) =
  let num_data = List.length r.data_bit in
  let measures =
    List.filter (fun (q, _) -> q < Circ.num_qubits c) r.data_bit
    @ List.mapi (fun k (q, _) -> (q, num_data + k)) r.answer_phys
  in
  let traditional =
    Sim.Dist.marginal ~bits:(shared_bits c r)
      (Sim.Exact.measured_distribution ~measures c)
  in
  Sim.Dist.tv_distance traditional (dynamic_distribution ~relative_to:c r)

let min_exact_slots ?max_slots ?(mct = false) c =
  let work =
    List.length
      (List.filter
         (fun q -> Circ.role c q <> Circ.Answer)
         (List.init (Circ.num_qubits c) (fun q -> q)))
  in
  let max_slots = Option.value ~default:work max_slots in
  let rec go k =
    if k > max_slots then None
    else
      match transform ~mode:`Sound ~mct ~slots:k c with
      | (_ : result) -> Some k
      | exception Transform.Not_transformable _ -> go (k + 1)
      | exception Interaction.Cyclic _ -> go (k + 1)
  in
  go 1
