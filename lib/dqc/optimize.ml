open Circuit
module Trace = Lint.Trace
module State = Lint.State
module Deadness = Lint.Deadness

exception Refuted of string

type stats = {
  gates_removed : int;
  uncomputes_removed : int;
  resets_removed : int;
  measures_removed : int;
  conds_resolved : int;
  controls_dropped : int;
  wires_removed : int;
}

let zero =
  {
    gates_removed = 0;
    uncomputes_removed = 0;
    resets_removed = 0;
    measures_removed = 0;
    conds_resolved = 0;
    controls_dropped = 0;
    wires_removed = 0;
  }

let add a b =
  {
    gates_removed = a.gates_removed + b.gates_removed;
    uncomputes_removed = a.uncomputes_removed + b.uncomputes_removed;
    resets_removed = a.resets_removed + b.resets_removed;
    measures_removed = a.measures_removed + b.measures_removed;
    conds_resolved = a.conds_resolved + b.conds_resolved;
    controls_dropped = a.controls_dropped + b.controls_dropped;
    wires_removed = a.wires_removed + b.wires_removed;
  }

let removed s =
  s.gates_removed + s.uncomputes_removed + s.resets_removed
  + s.measures_removed
let changed s = s <> zero

type rewrite = { circuit : Circ.t; stats : stats; reverted : bool }

(* the trace is reused only while it still describes the circuit —
   same contract as [Pass.fresh_facts] *)
let trace_for ?trace c =
  match trace with
  | Some t when Circ.equal (Trace.circuit t) c -> t
  | Some _ | None -> Trace.run c

(* ------------------------------------------------------------------ *)
(* Sweeps: one pass over the trace, collecting the kept instructions.
   Every rewrite below preserves the concrete semantics of the
   original circuit branch-for-branch, so facts read from the input
   trace stay valid for every instruction kept in the same sweep.     *)

(* fold: constant-measurement folding and feed-forward resolution.
   Two phases: conditions are resolved first, then a provably-no-op
   measurement is deleted only when no kept instruction still reads
   its bit afterwards — otherwise the deletion would leave a
   condition reading an unwritten bit, which the lint gate rejects
   even though the runtime value is unchanged. *)
let fold_sweep trace =
  let stats = ref zero in
  let kept = ref [] in
  Trace.iteri
    (fun i ~pre (instr : Instruction.t) ->
      match instr with
      | Conditioned (cond, a) -> (
          match State.cond_status pre cond with
          | State.Holds ->
              stats :=
                { !stats with conds_resolved = !stats.conds_resolved + 1 };
              kept := (i, Instruction.Unitary a) :: !kept
          | State.Fails ->
              stats :=
                { !stats with gates_removed = !stats.gates_removed + 1 }
          | State.Unknown -> kept := (i, instr) :: !kept)
      | Unitary _ | Measure _ | Reset _ | Barrier _ ->
          kept := (i, instr) :: !kept)
    trace;
  let kept = List.rev !kept in
  let last_read = Array.make (Circ.num_bits (Trace.circuit trace)) (-1) in
  List.iter
    (fun (i, (instr : Instruction.t)) ->
      match instr with
      | Conditioned (cond, _) ->
          List.iter
            (fun (b, _) -> last_read.(b) <- max last_read.(b) i)
            cond.Instruction.bits
      | Unitary _ | Measure _ | Reset _ | Barrier _ -> ())
    kept;
  (* a measurement is deletable only when the qubit provably reads
     |v> (the measurement does not disturb it), the bit already holds
     v at runtime (the classical write is a no-op), and the bit is
     never read again *)
  let deletable i qubit bit =
    let pre = Trace.pre trace i in
    match Deadness.qubit_value pre qubit with
    | Some v -> Deadness.bit_value pre bit = Some v && last_read.(bit) < i
    | None -> false
  in
  let measures, delete =
    List.fold_left
      (fun (m, d) (i, (instr : Instruction.t)) ->
        match instr with
        | Measure { qubit; bit } ->
            (m + 1, if deletable i qubit bit then i :: d else d)
        | Unitary _ | Conditioned _ | Reset _ | Barrier _ -> (m, d))
      (0, []) kept
  in
  (* never delete the last measurement: the channel certificate is
     over the bits measured on both sides, so an empty remainder
     would leave the rewrite with nothing to certify *)
  let delete =
    if measures > 0 && List.length delete = measures then List.tl delete
    else delete
  in
  let instrs =
    List.filter_map
      (fun (i, (instr : Instruction.t)) ->
        if List.mem i delete then begin
          stats :=
            { !stats with measures_removed = !stats.measures_removed + 1 };
          None
        end
        else Some instr)
      kept
  in
  (instrs, !stats)

(* dce: backward observability-liveness (dead unitaries, dead
   classically-conditioned uncomputations, dead resets), forward
   redundant resets, then dead wires *)
let dce_sweep trace =
  let c = Trace.circuit trace in
  let dead = Deadness.of_trace trace in
  let dead_set = Deadness.dead_set dead in
  let stats = ref zero in
  let keep = ref [] in
  (* The two rule families must not justify each other: a backward
     removal is observationally dead but not a state no-op, so the
     forward facts of everything after it (which may flow through
     relational rows into any wire) are no longer grounded.  A
     forward redundant-reset fact is therefore trusted only before
     the first backward removal; the fixpoint round re-derives the
     rest from a fresh trace.  Forward removals are exact no-ops and
     invalidate nothing. *)
  let dirty = ref false in
  Trace.iteri
    (fun i ~pre:_ (instr : Instruction.t) ->
      if dead_set.(i) then begin
        dirty := true;
        match instr with
        | Instruction.Unitary _ ->
            stats := { !stats with gates_removed = !stats.gates_removed + 1 }
        | Instruction.Conditioned _ ->
            stats :=
              { !stats with uncomputes_removed = !stats.uncomputes_removed + 1 }
        | Instruction.Reset _ ->
            stats := { !stats with resets_removed = !stats.resets_removed + 1 }
        | Instruction.Measure _ | Instruction.Barrier _ ->
            (* dead_set never marks these *)
            keep := instr :: !keep
      end
      else
        match instr with
        | Instruction.Reset _
          when (not !dirty) && Deadness.redundant_reset dead i ->
            stats := { !stats with resets_removed = !stats.resets_removed + 1 }
        | Instruction.Reset _ | Instruction.Unitary _
        | Instruction.Conditioned _ | Instruction.Measure _
        | Instruction.Barrier _ ->
            keep := instr :: !keep)
    trace;
  let instrs = List.rev !keep in
  (* a wire is live when an effectful instruction references it;
     barriers keep nothing alive *)
  let live = Array.make (Circ.num_qubits c) false in
  List.iter
    (fun (instr : Instruction.t) ->
      match instr with
      | Barrier _ -> ()
      | Unitary _ | Conditioned _ | Measure _ | Reset _ ->
          List.iter (fun q -> live.(q) <- true) (Instruction.qubits instr))
    instrs;
  if not (Array.exists (fun l -> l) live) then live.(0) <- true;
  let dropped = Array.length live - Array.fold_left
                  (fun n l -> if l then n + 1 else n) 0 live in
  let instrs =
    if dropped = 0 then instrs
    else begin
      stats := { !stats with wires_removed = dropped };
      let index = Array.make (Array.length live) (-1) in
      let next = ref 0 in
      Array.iteri
        (fun q l ->
          if l then begin
            index.(q) <- !next;
            incr next
          end)
        live;
      List.map
        (fun (instr : Instruction.t) ->
          match instr with
          | Barrier qs ->
              Instruction.Barrier
                (List.filter_map
                   (fun q -> if live.(q) then Some index.(q) else None)
                   qs)
          | Unitary _ | Conditioned _ | Measure _ | Reset _ ->
              Instruction.map_qubits (fun q -> index.(q)) instr)
        instrs
    end
  in
  let roles =
    if dropped = 0 then Circ.roles c
    else begin
      let kept = ref [] in
      Array.iteri
        (fun q role -> if live.(q) then kept := role :: !kept)
        (Circ.roles c);
      Array.of_list (List.rev !kept)
    end
  in
  let c' =
    if changed !stats then
      Circ.create ~roles ~num_bits:(Circ.num_bits c) instrs
    else c
  in
  (c', !stats)

(* affine: constant-control simplification from the relational rows *)
let affine_sweep trace =
  let stats = ref zero in
  let keep = ref [] in
  Trace.iteri
    (fun _ ~pre (instr : Instruction.t) ->
      let simplify (a : Instruction.app) =
        match Deadness.simplify_app pre a with
        | None ->
            stats := { !stats with gates_removed = !stats.gates_removed + 1 };
            None
        | Some a' ->
            let d = List.length a.controls - List.length a'.controls in
            if d > 0 then
              stats :=
                { !stats with controls_dropped = !stats.controls_dropped + d };
            Some a'
      in
      match instr with
      | Unitary a -> (
          match simplify a with
          | None -> ()
          | Some a' -> keep := Instruction.Unitary a' :: !keep)
      | Conditioned (cond, a) -> (
          match simplify a with
          | None -> ()
          | Some a' -> keep := Instruction.Conditioned (cond, a') :: !keep)
      | Measure _ | Reset _ | Barrier _ -> keep := instr :: !keep)
    trace;
  (List.rev !keep, !stats)

(* ------------------------------------------------------------------ *)
(* Certification: a changed sweep is accepted only with a symbolic
   [Proved]; [Unknown] reverts (never a sampled fallback); [Refuted]
   aborts compilation.                                                *)

let flight family verdict (s : stats) before after =
  if Obs.Flight.enabled () then
    Obs.Flight.record ~kind:"optimize.rewrite"
      [
        ("family", Obs.Json.String family);
        ("verdict", Obs.Json.String verdict);
        ("gates_removed", Obs.Json.Int s.gates_removed);
        ("uncomputes_removed", Obs.Json.Int s.uncomputes_removed);
        ("resets_removed", Obs.Json.Int s.resets_removed);
        ("measures_removed", Obs.Json.Int s.measures_removed);
        ("conds_resolved", Obs.Json.Int s.conds_resolved);
        ("controls_dropped", Obs.Json.Int s.controls_dropped);
        ("wires_removed", Obs.Json.Int s.wires_removed);
        ("gates_before", Obs.Json.Int (Metrics.gate_count before));
        ("gates_after", Obs.Json.Int (Metrics.gate_count after));
        ("depth_before", Obs.Json.Int (Metrics.dynamic_depth before));
        ("depth_after", Obs.Json.Int (Metrics.dynamic_depth after));
      ]

let bump (s : stats) =
  if Obs.enabled () then begin
    if s.gates_removed + s.uncomputes_removed > 0 then
      Obs.incr
        ~n:(s.gates_removed + s.uncomputes_removed)
        "optimize.removed.gates";
    if s.resets_removed > 0 then
      Obs.incr ~n:s.resets_removed "optimize.removed.resets";
    if s.measures_removed > 0 then
      Obs.incr ~n:s.measures_removed "optimize.removed.measures"
  end

let certified ~certify ~family before (after, stats) =
  if not (changed stats) then { circuit = before; stats = zero; reverted = false }
  else if not certify then begin
    bump stats;
    flight family "uncertified" stats before after;
    { circuit = after; stats; reverted = false }
  end
  else
    match Verify.Certify.check_channel before after with
    | Verify.Certify.Proved _ ->
        bump stats;
        flight family "proved" stats before after;
        { circuit = after; stats; reverted = false }
    | Verify.Certify.Refuted cex ->
        flight family "refuted" stats before after;
        raise
          (Refuted
             (Printf.sprintf "optimize.%s: certifier refuted the rewrite: %s"
                family cex.Verify.Certify.detail))
    | Verify.Certify.Unknown _ ->
        flight family "reverted" stats before after;
        { circuit = before; stats = zero; reverted = true }

let sweep ~family ~run ?(certify = true) ?trace c =
  Obs.with_span ("optimize." ^ family) (fun () ->
      let trace = trace_for ?trace c in
      let instrs, stats = run trace in
      let after =
        if changed stats then
          Circ.create ~roles:(Circ.roles c) ~num_bits:(Circ.num_bits c) instrs
        else c
      in
      certified ~certify ~family c (after, stats))

let fold ?certify ?trace c =
  sweep ~family:"fold"
    ~run:(fun t -> fold_sweep t)
    ?certify ?trace c

let affine ?certify ?trace c =
  sweep ~family:"affine"
    ~run:(fun t -> affine_sweep t)
    ?certify ?trace c

let dce ?(certify = true) ?trace c =
  Obs.with_span "optimize.dce" (fun () ->
      let trace = trace_for ?trace c in
      let after, stats = dce_sweep trace in
      certified ~certify ~family:"dce" c (after, stats))

(* ------------------------------------------------------------------ *)

type result = {
  before : Circ.t;
  after : Circ.t;
  total : stats;
  sweeps : int;
  proved : bool;
}

let run ?(certify = true) ?(max_sweeps = 4) c =
  Obs.with_span "optimize.run" (fun () ->
      let total = ref zero in
      let proved = ref true in
      let current = ref c in
      let rounds = ref 0 in
      let continue = ref true in
      while !continue && !rounds < max_sweeps do
        incr rounds;
        let trace = Trace.run !current in
        let r1 = fold ~certify ~trace !current in
        let r2 = dce ~certify ~trace r1.circuit in
        let r3 = affine ~certify ~trace r2.circuit in
        let round_stats = add r1.stats (add r2.stats r3.stats) in
        if r1.reverted || r2.reverted || r3.reverted then proved := false;
        total := add !total round_stats;
        current := r3.circuit;
        continue := changed round_stats
      done;
      { before = c; after = !current; total = !total; sweeps = !rounds;
        proved = !proved })

let gates_delta r = Metrics.gate_count r.before - Metrics.gate_count r.after
let depth_delta r =
  Metrics.dynamic_depth r.before - Metrics.dynamic_depth r.after

let pp_stats fmt s =
  Format.fprintf fmt
    "%d gate%s, %d uncompute%s, %d reset%s, %d measure%s removed; \
     %d condition%s resolved, %d control%s dropped, %d wire%s freed"
    s.gates_removed
    (if s.gates_removed = 1 then "" else "s")
    s.uncomputes_removed
    (if s.uncomputes_removed = 1 then "" else "s")
    s.resets_removed
    (if s.resets_removed = 1 then "" else "s")
    s.measures_removed
    (if s.measures_removed = 1 then "" else "s")
    s.conds_resolved
    (if s.conds_resolved = 1 then "" else "s")
    s.controls_dropped
    (if s.controls_dropped = 1 then "" else "s")
    s.wires_removed
    (if s.wires_removed = 1 then "" else "s")

let stats_to_string s = Format.asprintf "%a" pp_stats s
