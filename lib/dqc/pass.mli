open Circuit

(** First-class compilation passes — the unit the staged pass manager
    ({!Pass_manager}) schedules and the {!Pipeline} builds its
    compile flows from.

    A pass is a named, kinded function over a typed context that
    carries the circuit being compiled together with everything the
    stages accumulate: the transform bookkeeping, equivalence
    evidence, lint facts (the abstract interpreter's trace, shared so
    downstream passes need not re-interpret), reports and free-form
    notes.  Passes never talk to each other directly — the context is
    the only channel, which is what makes schedules reorderable and
    custom passes composable with the built-in ones.

    See docs/PASSES.md for the catalogue, the default schedules and a
    worked custom-pass example. *)

(** What a pass is allowed to do, surfaced in listings and telemetry:

    - [Analysis] computes facts or evidence but leaves the circuit
      unchanged;
    - [Transform] may rewrite the circuit;
    - [Gate] may abort compilation by raising (the lint gate, the
      reuse certification gate). *)
type kind = Analysis | Transform | Gate

(** Static configuration the schedule was built from — everything a
    pass body may branch on besides the context's accumulated state. *)
type config = {
  scheme : Toffoli_scheme.t;
  mode : [ `Algorithm1 | `Sound ];
  slots : int;
  backend_policy : Sim.Backend.policy;
}

(** The transform stage's full result, kept for downstream evidence
    passes (the certifier and equivalence checkers need the complete
    bookkeeping, not just the circuit). *)
type transformed =
  | Single of Transform.result
  | Multi of Multi_transform.result

type ctx = {
  config : config;
  traditional : Circ.t;  (** the untouched compile input *)
  reference : Circ.t;
      (** what equivalence evidence compares against: the prepared
          (scheme-substituted) circuit once [prepare] has run *)
  circuit : Circ.t;  (** the current rewrite state *)
  transformed : transformed option;
  data_bit : (int * int) list;
  answer_phys : (int * int) list;
  iterations : int;
  violations : int;
  certified : bool;
  tv : float option;
  tv_sampled : bool;
  facts : Lint.Trace.t option;
      (** abstract-interpretation facts for some earlier rewrite
          state; consumers must check the trace still belongs to
          [circuit] before using it *)
  lint : Lint.report option;
  resources : (Circ.t * Lint.Resource.summary) option;
      (** static resource/sparsity summary, tagged with the circuit it
          was computed for; use {!fresh_resources} to read it *)
  reuse : Reuse.report option;
  notes : (string * string) list;
      (** accumulated diagnostics, newest first *)
}

(** A fresh context over the compile input. *)
val init : config:config -> Circ.t -> ctx

(** [note key value ctx] prepends a diagnostic note. *)
val note : string -> string -> ctx -> ctx

(** [fresh_facts ctx] is the context's trace when it was computed for
    the {e current} circuit, [None] otherwise (stale facts are never
    returned). *)
val fresh_facts : ctx -> Lint.Trace.t option

(** [fresh_resources ctx] is the context's resource summary when it was
    computed for the {e current} circuit, [None] otherwise. *)
val fresh_resources : ctx -> Lint.Resource.summary option

type t = { name : string; kind : kind; doc : string; run : ctx -> ctx }

(** @raise Invalid_argument on an empty name. *)
val make : name:string -> kind:kind -> doc:string -> (ctx -> ctx) -> t

val kind_to_string : kind -> string

(** {1 Registry}

    A process-wide name-to-pass table.  The pipeline registers its
    built-in stages at initialization; library users add their own
    with {!register} and can then schedule them by name through
    [Pipeline.Options.with_passes]. *)

(** Register (or replace, keeping the original position) a pass. *)
val register : t -> unit

val find : string -> t option

(** Registered names, in first-registration order. *)
val names : unit -> string list

val all : unit -> t list
