open Circuit

(** Functional-equivalence checking between a traditional circuit and
    its dynamic realization (§V: "the probability of expected outcome
    obtained from the traditional circuit and the resulting DQC are
    exactly same").

    Both sides are evaluated with the exact branching simulator
    ({!Sim.Exact}), and compared as joint distributions over
    (data bits, answer bits): for the traditional circuit the data
    qubits are measured at the end into the bits the transformation
    assigned them; for the DQC those bits were written by mid-circuit
    measurements and only the answer qubits are measured at the end. *)

(** Exact joint distribution of a traditional circuit: every data qubit
    measured into its transformation-assigned bit, answer qubit [k]
    into bit [num_data + k].  Ancilla qubits are traced out; scratch
    data qubits the DQC-shaped MCT reduction added (absent from the
    original circuit) are excluded. *)
val traditional_distribution : Circ.t -> Transform.result -> Sim.Dist.t

(** Exact joint distribution of the DQC with answer qubits measured
    into the same bit layout.  With [?relative_to] the distribution is
    marginalized onto the bits shared with that original circuit (as
    {!traditional_distribution} does). *)
val dynamic_distribution : ?relative_to:Circ.t -> Transform.result -> Sim.Dist.t

(** Total-variation distance between the two distributions: 0 means
    exact functional equivalence. *)
val tv_distance : Circ.t -> Transform.result -> float

(** [equivalent ?eps traditional result] with [eps] defaulting to
    1e-9 on the TV distance. *)
val equivalent : ?eps:float -> Circ.t -> Transform.result -> bool

(** [sampled_tv_distance ?policy ?seed ?shots ?domains c r] estimates
    the same TV distance from shot histograms drawn through
    {!Sim.Backend.run} — available where exact branch enumeration is
    not (e.g. Clifford circuits at hundreds of qubits, via the
    stabilizer backend).  Expect O(sqrt(support / shots)) sampling
    noise on top of the true distance; [shots] defaults to 4096. *)
val sampled_tv_distance :
  ?policy:Sim.Backend.policy ->
  ?seed:int ->
  ?shots:int ->
  ?domains:int ->
  Circ.t ->
  Transform.result ->
  float
