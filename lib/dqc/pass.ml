open Circuit

type kind = Analysis | Transform | Gate

type config = {
  scheme : Toffoli_scheme.t;
  mode : [ `Algorithm1 | `Sound ];
  slots : int;
  backend_policy : Sim.Backend.policy;
}

type transformed =
  | Single of Transform.result
  | Multi of Multi_transform.result

type ctx = {
  config : config;
  traditional : Circ.t;
  reference : Circ.t;
  circuit : Circ.t;
  transformed : transformed option;
  data_bit : (int * int) list;
  answer_phys : (int * int) list;
  iterations : int;
  violations : int;
  certified : bool;
  tv : float option;
  tv_sampled : bool;
  facts : Lint.Trace.t option;
  lint : Lint.report option;
  resources : (Circ.t * Lint.Resource.summary) option;
  reuse : Reuse.report option;
  notes : (string * string) list;
}

let init ~config circuit =
  {
    config;
    traditional = circuit;
    reference = circuit;
    circuit;
    transformed = None;
    data_bit = [];
    answer_phys = [];
    iterations = 0;
    violations = 0;
    certified = false;
    tv = None;
    tv_sampled = false;
    facts = None;
    lint = None;
    resources = None;
    reuse = None;
    notes = [];
  }

let note key value ctx = { ctx with notes = (key, value) :: ctx.notes }

let fresh_facts ctx =
  match ctx.facts with
  | Some trace when Lint.Trace.circuit trace == ctx.circuit -> Some trace
  | Some _ | None -> None

let fresh_resources ctx =
  match ctx.resources with
  | Some (c, summary) when c == ctx.circuit -> Some summary
  | Some _ | None -> None

type t = { name : string; kind : kind; doc : string; run : ctx -> ctx }

let make ~name ~kind ~doc run =
  if name = "" then invalid_arg "Pass.make: empty name";
  { name; kind; doc; run }

let kind_to_string = function
  | Analysis -> "analysis"
  | Transform -> "transform"
  | Gate -> "gate"

(* registry: a name-to-pass table plus the first-registration order,
   so listings are stable regardless of re-registration *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 31
let order : string list ref = ref []

let register p =
  if not (Hashtbl.mem registry p.name) then order := !order @ [ p.name ];
  Hashtbl.replace registry p.name p

let find name = Hashtbl.find_opt registry name
let names () = !order

let all () =
  List.filter_map (fun name -> Hashtbl.find_opt registry name) !order
