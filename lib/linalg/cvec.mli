(** Dense complex vectors, stored structure-of-arrays: one unboxed
    float array for the real parts, one for the imaginary parts.  The
    layout is what lets the simulator's compiled kernels
    ([Sim.Program]) run allocation-free float loops; everything else
    goes through the boxed {!Complex.t} accessors. *)

type t

(** [make n] is the zero vector of dimension [n]. *)
val make : int -> t

(** [basis n k] is the computational basis vector |k> in dimension [n]. *)
val basis : int -> int -> t

val of_array : Complex.t array -> t
val to_array : t -> Complex.t array
val copy : t -> t
val dim : t -> int
val get : t -> int -> Complex.t
val set : t -> int -> Complex.t -> unit

(** {1 Raw storage}

    The live component arrays (no copy): index [k] of {!re}/{!im} is
    the real/imaginary part of component [k].  Mutating them mutates
    the vector — this is the kernel-facing escape hatch, not a general
    API. *)

val re : t -> float array
val im : t -> float array

(** Sum of squared moduli of all components. *)
val norm2 : t -> float

(** [scale a v] multiplies every component in place. *)
val scale : Complex.t -> t -> unit

(** [normalize v] rescales [v] in place to unit norm.
    @raise Invalid_argument on the zero vector. *)
val normalize : t -> unit

(** Hermitian inner product <a|b> (conjugate-linear in [a]). *)
val dot : t -> t -> Complex.t

val approx_equal : ?eps:float -> t -> t -> bool

(** [approx_equal_up_to_phase a b] holds when [a] = e^{i.phi} [b] for
    some global phase phi. *)
val approx_equal_up_to_phase : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
