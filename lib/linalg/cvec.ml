(* Structure-of-arrays storage: two flat float arrays instead of one
   Complex.t array.  OCaml float arrays are unboxed, so the simulator
   kernels that grab [re]/[im] run allocation-free tight loops — the
   boxed Complex.t representation cost one allocation per arithmetic
   op on the execution hot path. *)
type t = { re : float array; im : float array }

let make n = { re = Array.make n 0.; im = Array.make n 0. }

let basis n k =
  if k < 0 || k >= n then invalid_arg "Cvec.basis";
  let v = make n in
  v.re.(k) <- 1.;
  v

let of_array a =
  let n = Array.length a in
  let v = make n in
  for k = 0 to n - 1 do
    v.re.(k) <- a.(k).Complex.re;
    v.im.(k) <- a.(k).Complex.im
  done;
  v

let to_array v =
  Array.init (Array.length v.re) (fun k ->
      { Complex.re = v.re.(k); im = v.im.(k) })

let copy v = { re = Array.copy v.re; im = Array.copy v.im }
let dim v = Array.length v.re
let re v = v.re
let im v = v.im
let get v k = { Complex.re = v.re.(k); im = v.im.(k) }

let set v k (z : Complex.t) =
  v.re.(k) <- z.re;
  v.im.(k) <- z.im

let norm2 v =
  let acc = ref 0. in
  for k = 0 to dim v - 1 do
    acc := !acc +. ((v.re.(k) *. v.re.(k)) +. (v.im.(k) *. v.im.(k)))
  done;
  !acc

let scale (a : Complex.t) v =
  for k = 0 to dim v - 1 do
    let r = v.re.(k) and i = v.im.(k) in
    v.re.(k) <- (a.re *. r) -. (a.im *. i);
    v.im.(k) <- (a.re *. i) +. (a.im *. r)
  done

let normalize v =
  let n = sqrt (norm2 v) in
  if n <= 0. then invalid_arg "Cvec.normalize: zero vector";
  scale (Complex_ext.of_float (1. /. n)) v

let dot a b =
  if dim a <> dim b then invalid_arg "Cvec.dot: dimension mismatch";
  let racc = ref 0. and iacc = ref 0. in
  for k = 0 to dim a - 1 do
    (* conj a.(k) * b.(k) *)
    racc := !racc +. ((a.re.(k) *. b.re.(k)) +. (a.im.(k) *. b.im.(k)));
    iacc := !iacc +. ((a.re.(k) *. b.im.(k)) -. (a.im.(k) *. b.re.(k)))
  done;
  { Complex.re = !racc; im = !iacc }

let approx_equal ?(eps = 1e-9) a b =
  dim a = dim b
  &&
  let ok = ref true in
  for k = 0 to dim a - 1 do
    if
      abs_float (a.re.(k) -. b.re.(k)) > eps
      || abs_float (a.im.(k) -. b.im.(k)) > eps
    then ok := false
  done;
  !ok

(* |<a|b>| = |a||b| iff the vectors are parallel; compare against the
   product of norms so zero vectors are handled too. *)
let approx_equal_up_to_phase ?(eps = 1e-9) a b =
  dim a = dim b
  &&
  let na = sqrt (norm2 a) and nb = sqrt (norm2 b) in
  if na <= eps && nb <= eps then true
  else
    abs_float (Complex.norm (dot a b) -. (na *. nb)) <= eps
    && abs_float (na -. nb) <= eps

let pp fmt v =
  Format.fprintf fmt "[@[";
  for k = 0 to dim v - 1 do
    if k > 0 then Format.fprintf fmt ";@ ";
    Complex_ext.pp fmt (get v k)
  done;
  Format.fprintf fmt "@]]"
