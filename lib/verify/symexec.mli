open Circuit

(** Symbolic execution of a full dynamic instruction stream into a
    {!Pathsum.t}.

    - unitary gates apply exact phase-polynomial transfer rules
      (Clifford+T, V/V† via V = H·S·H, and the π/2, π/4 multiples of
      the parametric gates);
    - quantum controls and classical conditions both become GF(2)
      guard factors on the gate's transfer (a test [c_b == 0]
      contributes the factor [e_b ⊕ 1]);
    - [Measure] records the qubit's current function as the bit's
      expression — this pins the measurement branches without
      case-splitting (see {!Pathsum});
    - [Reset] is measure-and-discard: the discarded expression joins
      the ghost observations unless it is constant or duplicates an
      existing observation, and the qubit's function becomes 0.

    Telemetry: one [verify.symexec] span, a
    [verify.symexec.instructions] counter.  No simulation backend is
    touched. *)

(** Raised on instructions outside the exact fragment (controlled H,
    arbitrary-angle rotations, a condition on an unwritten bit).  The
    certifier converts this into [Unknown]. *)
exception Unsupported of string

(** [run ?symbolic_inputs ?measures c] executes every instruction of
    [c], then appends terminal measurements [(qubit, bit)] from
    [measures] (the bit space grows to accommodate them).
    [symbolic_inputs] starts each qubit in a pinned symbolic basis
    state instead of |0⟩ — use it to compare circuits as unitaries
    rather than as state preparations.
    @raise Unsupported outside the exact fragment. *)
val run :
  ?symbolic_inputs:bool -> ?measures:(int * int) list -> Circ.t -> Pathsum.t
