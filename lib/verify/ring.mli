(** Exact amplitude arithmetic in ℤ[i, 1/√2], represented on the
    ω-basis ℤ[ω, 1/√2] with ω = e^{iπ/4}: a value is
    (a + bω + cω² + dω³)/√2^s with integer coefficients.  Since
    ω⁴ = −1 and √2 = ω − ω³, the ring is closed under every amplitude
    of the Clifford+T set and of V/V† (whose entries are (1±i)/2) —
    no floating point anywhere in a certificate. *)

type t = private { a : int; b : int; c : int; d : int; s : int }

(** [make ?s a b c d] is (a + bω + cω² + dω³)/√2^s, normalized: the
    numerator is divided by √2 (and [s] decremented) while possible,
    so structural equality of normalized values is semantic
    equality. *)
val make : ?s:int -> int -> int -> int -> int -> t

val zero : t
val one : t
val i : t
val of_int : int -> t

(** ω^k for any integer [k] (reduced mod 8). *)
val omega_pow : int -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t

(** Complex conjugate (ω ↦ ω⁷ = −ω³). *)
val conj : t -> t

(** [norm_sq t] = t · conj t — a real, non-negative ring element. *)
val norm_sq : t -> t

(** [div_root2 n t] = t / √2^n ([n] may be negative). *)
val div_root2 : int -> t -> t

val is_zero : t -> bool
val equal : t -> t -> bool

(** Float view (for reports and tests only — never used in proofs). *)
val to_complex : t -> float * float

(** Real part of {!to_complex} — convenient for [norm_sq] values. *)
val to_float : t -> float

val to_string : t -> string
val pp : Format.formatter -> t -> unit
