open Circuit

(** Symbolic equivalence certification: prove a dynamic circuit
    equivalent to its traditional original without simulating either
    side.  Both circuits become normalized path sums
    ({!Symexec}, {!Reduce}); equivalence of the classical outcome
    channel over the shared measurement bits is then decided
    structurally, with an exact exhaustive fallback on small instances
    (all arithmetic in {!Ring} — no floats take part in a verdict). *)

(** What was proved.

    - [Channel]: the full classical outcome channel over the shared
      bits is identical — the strongest claim, matching TV distance 0.
    - [Dynamics]: the DQC is exactly equivalent to the coherent
      (deferred-measurement) replay of its own instruction stream —
      the mid-circuit measure / reset / classically-controlled
      machinery introduces {e no} error beyond the schedule deviation
      the transform already recorded as violations.  This is the
      honest certificate for Algorithm 1 outputs with violations,
      whose channels genuinely differ from the traditional circuit
      (the paper's Fig 7 accuracy loss). *)
type scope = Channel | Dynamics

(** A concrete measurement branch on which the two sides disagree. *)
type counterexample = {
  bits : (int * bool) list;  (** shared classical bits, with values *)
  p_left : float;  (** outcome probability on the left side *)
  p_right : float;  (** outcome probability on the right side *)
  detail : string;  (** exact Ring probabilities, printed *)
}

type proof = {
  scope : scope;
  path_vars : int;  (** path variables across both reduced sums *)
  reductions : int;  (** rewrite-rule applications *)
  schedule_cex : counterexample option;
      (** for [Dynamics]: a branch witnessing that the {e schedule}
          (not the dynamics) deviates from the traditional circuit *)
}

type verdict = Proved of proof | Refuted of counterexample | Unknown of string

type refutation =
  | Equal  (** exhaustively, exactly equal — itself a proof *)
  | Differs of counterexample
  | Inconclusive of string

(** [certify ~traditional ~data_bit ~answer_phys ~iteration_order
    ~violations dqc] certifies the transform output [dqc] against
    [traditional].  The bookkeeping arguments are the fields of the
    transform result; [violations] selects between the [Channel] claim
    (0: any difference is {!Refuted}) and the [Dynamics] claim
    (> 0: the channel difference is expected, so the certifier proves
    the dynamics faithful to the schedule instead).
    [max_refute_vars] bounds exhaustive enumeration (default 14).
    Telemetry: [verify.certify] span, [verify.{proved,refuted,unknown,
    path_vars}] counters.  Never dispatches a simulation backend. *)
val certify :
  ?max_refute_vars:int ->
  traditional:Circ.t ->
  data_bit:(int * int) list ->
  answer_phys:(int * int) list ->
  iteration_order:int list ->
  violations:int ->
  Circ.t ->
  verdict

(** [check_channel a b] certifies that two arbitrary measured circuits
    induce the same classical outcome channel over the bits measured
    on {e both} sides — the general form of the transform-result
    certification above, usable for any circuit-to-circuit rewrite
    (e.g. the qubit-reuse pass, whose output differs from its input in
    qubit count and instruction order but must agree on every measured
    bit).  Both sides run from |0…0⟩; qubits left unmeasured are
    traced out as environment.  [Proved] always carries [Channel]
    scope.  With [max_refute_vars = 0] the exhaustive fallback is
    disabled and only the structural comparator can prove equality.
    Telemetry as {!certify}. *)
val check_channel : ?max_refute_vars:int -> Circ.t -> Circ.t -> verdict

(** [check_static a b] proves two measurement-free netlists equal as
    unitaries (symbolic basis inputs, default) or as state
    preparations from |0…0⟩ ([~inputs:`Zero]), up to global phase.
    Complete only in one direction: [true] is a proof, [false] is not
    a refutation.
    @raise Symexec.Unsupported outside the exact gate fragment. *)
val check_static : ?inputs:[ `Symbolic | `Zero ] -> Circ.t -> Circ.t -> bool

(** Exhaustive exact comparison of two path sums' outcome channels
    over the shared bits.  [Equal] is a proof of channel equality. *)
val refute :
  ?max_vars:int -> Pathsum.t -> Pathsum.t -> shared:int list -> refutation

val scope_to_string : scope -> string
val pp_verdict : Format.formatter -> verdict -> unit
val verdict_to_string : verdict -> string
val is_proved : verdict -> bool
