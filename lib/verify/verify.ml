module Ring = Ring
module Pathsum = Pathsum
module Symexec = Symexec
module Reduce = Reduce
module Certify = Certify
