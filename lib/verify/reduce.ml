(* Normalization of path sums by Amy-style rewriting:

   [Elim]  a path variable y occurring nowhere contributes
           sum_y 1 = 2: drop it, scale -= 2.

   [HH]    y occurring only in the phase, as 4.y.R(rest): the sum over
           y yields 2.[R = 0].  R = 0 identically re-creates [Elim];
           R = 1 kills the whole amplitude; otherwise the constraint
           R = 0 is solved for a linearly occurring variable z
           (z := R xor z substituted everywhere), scale -= 2.

   [omega] y occurring only in the phase, as y.(c + 4.R) with
           c in {2,6}: sum_y omega^{y(c+4R)} = 1 + (+-i).(-1)^R =
           sqrt2.omega^{1+6.L(R)} (c = 2) or sqrt2.omega^{7+2.L(R)}
           (c = 6): drop y, scale -= 1, fold the residue into the
           phase.

   Variables occurring in an output still parametrize the state and
   variables occurring in a recorded observation are pinned by it
   (Pathsum.protected_vars); neither may be eliminated. *)

type stats = { elim : int; hh : int; omega : int; subst : int }

let no_stats = { elim = 0; hh = 0; omega = 0; subst = 0 }

let total s = s.elim + s.hh + s.omega + s.subst

module B = Pathsum.Bexpr
module P = Pathsum.Phase

type work = {
  mutable scale : int;
  mutable phase : P.t;
  outputs : B.t array;
  bits : B.t option array;
  mutable ghosts : B.t list;
  inputs : int array option;
  live : bool array;
  mutable zero : bool;
  mutable st : stats;
}

let mem_sorted v l = List.mem v l

(* substitute z := e everywhere (phase, outputs, observations) *)
let subst_everywhere w z e =
  w.phase <- P.subst z e w.phase;
  Array.iteri (fun q o -> w.outputs.(q) <- B.subst z e o) w.outputs;
  Array.iteri
    (fun b o ->
      match o with
      | Some o -> w.bits.(b) <- Some (B.subst z e o)
      | None -> ())
    w.bits;
  w.ghosts <- List.map (B.subst z e) w.ghosts

(* a variable of R occurring exactly once, as the lone monomial [z]
   (and not a pinned input): the constraint R = 0 solves to
   z = R xor z *)
let solvable_var ~inputs r =
  let monos = B.monomials r in
  let is_input z =
    match inputs with
    | Some a -> Array.exists (fun v -> v = z) a
    | None -> false
  in
  List.find_map
    (fun m ->
      match m with
      | [ z ]
        when (not (is_input z))
             && not
                  (List.exists
                     (fun n -> n <> m && List.mem z n)
                     monos) ->
          Some z
      | _ -> None)
    monos

let try_var w protected v =
  if (not w.live.(v)) || mem_sorted v protected then false
  else begin
    let in_outputs = Array.exists (B.mem_var v) w.outputs in
    if in_outputs then false
    else begin
      let q, s = P.factor v w.phase in
      match P.terms q with
      | [] ->
          (* absent everywhere *)
          w.live.(v) <- false;
          w.scale <- w.scale - 2;
          w.phase <- s;
          w.st <- { w.st with elim = w.st.elim + 1 };
          true
      | terms ->
          let c =
            match List.assoc_opt [] terms with Some c -> c | None -> 0
          in
          let rest = List.filter (fun (m, _) -> m <> []) terms in
          if List.for_all (fun (_, k) -> k = 4) rest then begin
            let r_of_rest =
              List.fold_left
                (fun acc (m, _) ->
                  B.xor acc
                    (List.fold_left
                       (fun e x -> B.conj e (B.var x))
                       B.one m))
                B.zero rest
            in
            match c with
            | 0 | 4 ->
                let r =
                  if c = 4 then B.not_ r_of_rest else r_of_rest
                in
                if B.is_zero r then begin
                  w.live.(v) <- false;
                  w.scale <- w.scale - 2;
                  w.phase <- s;
                  w.st <- { w.st with hh = w.st.hh + 1 };
                  true
                end
                else if B.is_const r = Some true then begin
                  w.zero <- true;
                  true
                end
                else begin
                  match solvable_var ~inputs:w.inputs r with
                  | Some z ->
                      let r' = B.xor r (B.var z) in
                      w.live.(v) <- false;
                      w.live.(z) <- false;
                      w.scale <- w.scale - 2;
                      w.phase <- s;
                      subst_everywhere w z r';
                      w.st <-
                        {
                          w.st with
                          hh = w.st.hh + 1;
                          subst = w.st.subst + 1;
                        };
                      true
                  | None -> false
                end
            | 2 | 6 ->
                w.live.(v) <- false;
                w.scale <- w.scale - 1;
                w.phase <-
                  P.add s
                    (P.add
                       (P.const (if c = 2 then 1 else 7))
                       (P.scale (if c = 2 then 6 else 2) (P.lift r_of_rest)));
                w.st <- { w.st with omega = w.st.omega + 1 };
                true
            | _ -> false
          end
          else false
    end
  end

let normalize (ps : Pathsum.t) =
  Obs.with_span "verify.reduce" (fun () ->
      if ps.Pathsum.zero_amplitude then (ps, no_stats)
      else begin
        let w =
          {
            scale = ps.Pathsum.scale;
            phase = ps.Pathsum.phase;
            outputs = Array.copy ps.Pathsum.outputs;
            bits = Array.copy ps.Pathsum.bits;
            ghosts = ps.Pathsum.ghosts;
            inputs = ps.Pathsum.inputs;
            live = Array.make ps.Pathsum.next_var true;
            zero = false;
            st = no_stats;
          }
        in
        (* a ghost observation that substitution collapsed to a
           constant, or that now duplicates another observation (up to
           negation), pins nothing: sweeping it may unblock further
           reduction *)
        let sweep_ghosts () =
          let recorded =
            Array.to_list w.bits |> List.filter_map (fun o -> o)
          in
          let kept = ref [] in
          let swept = ref false in
          List.iter
            (fun g ->
              let dup o = B.equal o g || B.equal o (B.not_ g) in
              if
                B.is_const g <> None
                || List.exists dup recorded
                || List.exists dup !kept
              then swept := true
              else kept := g :: !kept)
            w.ghosts;
          if !swept then w.ghosts <- List.rev !kept;
          !swept
        in
        let changed = ref true in
        while !changed && not w.zero do
          changed := false;
          if sweep_ghosts () then changed := true;
          let protected =
            Pathsum.protected_vars
              {
                ps with
                Pathsum.bits = w.bits;
                ghosts = w.ghosts;
                inputs = w.inputs;
              }
          in
          let v = ref 0 in
          while !v < Array.length w.live && not w.zero do
            if try_var w protected !v then changed := true;
            incr v
          done
        done;
        Obs.incr ~n:w.st.elim "verify.reduce.elim";
        Obs.incr ~n:w.st.hh "verify.reduce.hh";
        Obs.incr ~n:w.st.omega "verify.reduce.omega";
        Obs.incr ~n:w.st.subst "verify.reduce.subst";
        ( {
            ps with
            Pathsum.scale = w.scale;
            phase = w.phase;
            outputs = w.outputs;
            bits = w.bits;
            ghosts = w.ghosts;
            zero_amplitude = w.zero;
          },
          w.st )
      end)
