(* Top-level certification: prove a dynamic circuit equivalent to its
   traditional original without simulating either.

   Both sides are symbolically executed into path sums and normalized
   (Reduce); equivalence of the induced classical channel over the
   shared measurement bits is then decided structurally:

   - the sums are matched up to path-variable renaming
     (Weisfeiler-Leman-style color refinement) and up to a global
     phase that may depend only on the decohered branch data;
   - when matching fails on a small instance, an exact exhaustive
     comparison over the path variables (in Ring, no floats) either
     proves equality or produces a concrete measurement-branch
     counterexample;
   - when the transform recorded scheduling violations (the paper's
     Algorithm 1 is knowingly unsound for interacting data qubits),
     full channel equality is genuinely false; the certifier then
     proves the weaker but still non-trivial {e dynamics} claim: the
     DQC is exactly equivalent to the coherent replay of its own
     instruction stream, i.e. the mid-circuit measure / reset /
     classically-controlled machinery introduces no error beyond the
     recorded schedule deviation. *)

open Circuit
module B = Pathsum.Bexpr
module P = Pathsum.Phase

type scope = Channel | Dynamics

type counterexample = {
  bits : (int * bool) list;
  p_left : float;
  p_right : float;
  detail : string;
}

type proof = {
  scope : scope;
  path_vars : int;
  reductions : int;
  schedule_cex : counterexample option;
}

type verdict = Proved of proof | Refuted of counterexample | Unknown of string

type refutation =
  | Equal
  | Differs of counterexample
  | Inconclusive of string

(* ------------------------------------------------------------------ *)
(* Views: a path sum packaged for comparison over a channel            *)

(* canonical representative of an expression up to negation — an
   observation and its negation pin exactly the same paths *)
let canon e =
  let n = B.not_ e in
  if B.compare e n <= 0 then e else n

type view = {
  v_scale : int;
  v_phase : P.t;
  v_anchors : B.t list;  (* ordered observable expressions *)
  v_ghosts : B.t list;  (* decohered environment, canonical *)
  v_inputs : int array option;
}

(* fold an environment expression into the pool unless it pins nothing
   new (constant, or duplicate of an anchor or pool entry) *)
let add_pool anchors pool e =
  if B.is_const e <> None then pool
  else
    let c = canon e in
    if List.exists (fun a -> B.equal (canon a) c) anchors then pool
    else if List.exists (B.equal c) pool then pool
    else c :: pool

(* channel view: ordered anchors are the shared measurement bits;
   everything else recorded or left on a qubit is traced-out
   environment *)
let view_channel (ps : Pathsum.t) ~shared =
  let anchors =
    List.map
      (fun b ->
        if b < Array.length ps.Pathsum.bits then ps.Pathsum.bits.(b) else None)
      shared
  in
  if List.exists (fun a -> a = None) anchors then None
  else
    let anchors = List.filter_map (fun a -> a) anchors in
    let pool = ref [] in
    Array.iteri
      (fun b e ->
        match e with
        | Some e when not (List.mem b shared) ->
            pool := add_pool anchors !pool e
        | Some _ | None -> ())
      ps.Pathsum.bits;
    List.iter (fun e -> pool := add_pool anchors !pool e) ps.Pathsum.ghosts;
    Array.iter (fun e -> pool := add_pool anchors !pool e) ps.Pathsum.outputs;
    Some
      {
        v_scale = ps.Pathsum.scale;
        v_phase = ps.Pathsum.phase;
        v_anchors = anchors;
        v_ghosts = List.sort B.compare !pool;
        v_inputs = ps.Pathsum.inputs;
      }

(* static view: the outputs themselves are the ordered observables
   (unitary / state-preparation comparison) *)
let view_static (ps : Pathsum.t) =
  let anchors = Array.to_list ps.Pathsum.outputs in
  let pool = ref [] in
  Array.iter
    (function
      | Some e -> pool := add_pool anchors !pool e | None -> ())
    ps.Pathsum.bits;
  List.iter (fun e -> pool := add_pool anchors !pool e) ps.Pathsum.ghosts;
  {
    v_scale = ps.Pathsum.scale;
    v_phase = ps.Pathsum.phase;
    v_anchors = anchors;
    v_ghosts = List.sort B.compare !pool;
    v_inputs = ps.Pathsum.inputs;
  }

let view_vars v =
  let acc = ref (P.vars v.v_phase) in
  List.iter (fun e -> acc := B.union_vars !acc (B.vars e)) v.v_anchors;
  List.iter (fun e -> acc := B.union_vars !acc (B.vars e)) v.v_ghosts;
  !acc

(* ------------------------------------------------------------------ *)
(* Variable matching by color refinement                               *)

let ints l = String.concat "." (List.map string_of_int l)
let strs l = String.concat ";" l

(* structural signature of variable [x] inside view [v] under the
   current coloring *)
let signature v col x =
  let co m =
    List.sort compare
      (List.filter_map (fun y -> if y = x then None else Some (col y)) m)
  in
  let in_poly monos =
    match List.filter (fun m -> List.mem x m) monos with
    | [] -> None
    | ms -> Some (strs (List.sort compare (List.map (fun m -> ints (co m)) ms)))
  in
  let anchor_part =
    List.mapi
      (fun i a ->
        match in_poly (B.monomials a) with
        | Some s -> Printf.sprintf "a%d(%s)" i s
        | None -> "")
      v.v_anchors
  in
  (* the ghost pool is unordered: aggregate per-ghost signatures as a
     sorted multiset *)
  let ghost_part =
    List.filter_map (fun e -> in_poly (B.monomials e)) v.v_ghosts
    |> List.sort compare
  in
  let phase_part =
    List.filter (fun (m, _) -> List.mem x m) (P.terms v.v_phase)
    |> List.map (fun (m, c) -> Printf.sprintf "p%d(%s)" c (ints (co m)))
    |> List.sort compare
  in
  strs anchor_part ^ "|" ^ strs ghost_part ^ "|" ^ strs phase_part

(* match the free variables of [vb] to those of [va]; pinned input
   variables map positionally by qubit.  Returns a total renaming for
   [vb]'s variables, or None when the structures cannot correspond. *)
let build_rename va vb =
  match (va.v_inputs, vb.v_inputs) with
  | Some _, None | None, Some _ -> None
  | (Some _ | None), _ -> (
      let pinned_pairs =
        match (va.v_inputs, vb.v_inputs) with
        | Some ia, Some ib when Array.length ia = Array.length ib ->
            Some (Array.to_list (Array.map2 (fun a b -> (b, a)) ia ib))
        | Some _, Some _ -> None
        | None, None -> Some []
        | Some _, None | None, Some _ -> None
      in
      match pinned_pairs with
      | None -> None
      | Some pinned_pairs ->
          let pinned_b = List.map fst pinned_pairs in
          let free side_pinned v =
            List.filter (fun x -> not (List.mem x side_pinned)) (view_vars v)
          in
          let free_a = free (List.map snd pinned_pairs) va in
          let free_b = free pinned_b vb in
          if List.length free_a <> List.length free_b then None
          else begin
            (* shared string -> color table so colors are comparable
               across the two sides *)
            let table : (string, int) Hashtbl.t = Hashtbl.create 97 in
            let color_of s =
              match Hashtbl.find_opt table s with
              | Some c -> c
              | None ->
                  let c = Hashtbl.length table in
                  Hashtbl.add table s c;
                  c
            in
            let init v side_pinned qubit_of =
              let cols : (int, int) Hashtbl.t = Hashtbl.create 31 in
              List.iter
                (fun x -> Hashtbl.replace cols x (color_of ("f")))
                (free side_pinned v);
              List.iter
                (fun x ->
                  Hashtbl.replace cols x
                    (color_of (Printf.sprintf "in%d" (qubit_of x))))
                side_pinned;
              cols
            in
            let qubit_of inputs x =
              match inputs with
              | Some a ->
                  let q = ref (-1) in
                  Array.iteri (fun i v -> if v = x then q := i) a;
                  !q
              | None -> -1
            in
            let cols_a =
              init va (List.map snd pinned_pairs) (qubit_of va.v_inputs)
            in
            let cols_b = init vb pinned_b (qubit_of vb.v_inputs) in
            let refine v cols =
              let lookup x =
                match Hashtbl.find_opt cols x with Some c -> c | None -> -1
              in
              let next =
                List.map
                  (fun x ->
                    ( x,
                      color_of
                        (Printf.sprintf "%d#%s" (lookup x) (signature v lookup x))
                    ))
                  (view_vars v)
              in
              List.iter (fun (x, c) -> Hashtbl.replace cols x c) next
            in
            for _round = 1 to 3 do
              (* both sides in the same round so the shared table stays
                 aligned *)
              refine va cols_a;
              refine vb cols_b
            done;
            let col cols x =
              match Hashtbl.find_opt cols x with Some c -> c | None -> -1
            in
            let sorted cols l =
              List.sort
                (fun x y -> compare (col cols x, x) (col cols y, y))
                l
            in
            let sa = sorted cols_a free_a and sb = sorted cols_b free_b in
            if
              List.map (col cols_a) sa <> List.map (col cols_b) sb
            then None
            else begin
              let map : (int, int) Hashtbl.t = Hashtbl.create 31 in
              List.iter2 (fun b a -> Hashtbl.replace map b a) sb sa;
              List.iter
                (fun (b, a) -> Hashtbl.replace map b a)
                pinned_pairs;
              Some
                (fun x ->
                  match Hashtbl.find_opt map x with Some y -> y | None -> x)
            end
          end)

(* ------------------------------------------------------------------ *)
(* Phase comparison                                                   *)

(* The residual phase difference may depend on the decohered branch
   data (anchors and ghosts): paths in distinct branches never
   interfere, so a branch-constant phase offset is unobservable.
   Check that the difference is constant within every branch class. *)
let branch_constant va d =
  let vs =
    List.fold_left
      (fun acc e -> B.union_vars acc (B.vars e))
      (P.vars d)
      (va.v_anchors @ va.v_ghosts)
  in
  let n = List.length vs in
  n <= 16
  && begin
       let pos : (int, int) Hashtbl.t = Hashtbl.create 31 in
       List.iteri (fun i v -> Hashtbl.add pos v i) vs;
       let seen : (bool list, int) Hashtbl.t = Hashtbl.create 256 in
       let ok = ref true in
       let mask = ref 0 in
       let total = 1 lsl n in
       while !ok && !mask < total do
         let assign v =
           match Hashtbl.find_opt pos v with
           | Some i -> (!mask lsr i) land 1 = 1
           | None -> false
         in
         let key =
           List.map (B.eval assign) va.v_anchors
           @ List.map (B.eval assign) va.v_ghosts
         in
         let value = P.eval assign d in
         (match Hashtbl.find_opt seen key with
         | Some v -> if v <> value then ok := false
         | None -> Hashtbl.add seen key value);
         incr mask
       done;
       !ok
     end

let phase_ok ~branch_phase va phase_b =
  let d = P.add va.v_phase (P.neg phase_b) in
  match P.is_const d with
  | Some _ -> true
  | None -> branch_phase && branch_constant va d

(* ------------------------------------------------------------------ *)
(* The structural comparator                                          *)

let equate ?(branch_phase = true) va vb =
  Obs.with_span "verify.compare" (fun () ->
      va.v_scale = vb.v_scale
      && List.length va.v_anchors = List.length vb.v_anchors
      && List.length va.v_ghosts = List.length vb.v_ghosts
      &&
      match build_rename va vb with
      | None -> false
      | Some f ->
          let anchors_b = List.map (B.rename f) vb.v_anchors in
          let ghosts_b =
            List.sort B.compare
              (List.map (fun e -> canon (B.rename f e)) vb.v_ghosts)
          in
          let ghosts_a =
            List.sort B.compare (List.map canon va.v_ghosts)
          in
          List.for_all2 B.equal va.v_anchors anchors_b
          && List.for_all2 B.equal ghosts_a ghosts_b
          && phase_ok ~branch_phase va (P.rename f vb.v_phase))

let compare_channel ps_a ps_b ~shared =
  if ps_a.Pathsum.zero_amplitude || ps_b.Pathsum.zero_amplitude then
    ps_a.Pathsum.zero_amplitude && ps_b.Pathsum.zero_amplitude
  else
    match (view_channel ps_a ~shared, view_channel ps_b ~shared) with
    | Some va, Some vb -> equate va vb
    | (Some _ | None), _ -> false

(* ------------------------------------------------------------------ *)
(* Exhaustive exact refutation                                        *)

(* classical outcome distribution over the shared bits, by exhaustive
   path enumeration with exact Ring arithmetic: amplitudes of paths
   with identical (branch data, basis state) interfere; squared norms
   then marginalize over everything but the shared bits *)
let distribution ~max_vars (ps : Pathsum.t) ~shared =
  if ps.Pathsum.zero_amplitude then Some (Hashtbl.create 1)
  else
    let vars = Pathsum.all_vars ps in
    let n = List.length vars in
    if n > max_vars then None
    else if
      List.exists
        (fun b ->
          b >= Array.length ps.Pathsum.bits || ps.Pathsum.bits.(b) = None)
        shared
    then None
    else begin
      let pos : (int, int) Hashtbl.t = Hashtbl.create 31 in
      List.iteri (fun i v -> Hashtbl.add pos v i) vars;
      let shared_exprs =
        List.map (fun b -> Option.get ps.Pathsum.bits.(b)) shared
      in
      let env_exprs =
        let acc = ref [] in
        Array.iteri
          (fun b e ->
            match e with
            | Some e when not (List.mem b shared) -> acc := e :: !acc
            | Some _ | None -> ())
          ps.Pathsum.bits;
        List.rev !acc @ ps.Pathsum.ghosts
        @ Array.to_list ps.Pathsum.outputs
      in
      let amps : (bool list * bool list, Ring.t) Hashtbl.t =
        Hashtbl.create 256
      in
      for mask = 0 to (1 lsl n) - 1 do
        let assign v =
          match Hashtbl.find_opt pos v with
          | Some i -> (mask lsr i) land 1 = 1
          | None -> false
        in
        let beta = List.map (B.eval assign) shared_exprs in
        let env = List.map (B.eval assign) env_exprs in
        let amp = Pathsum.amplitude ps assign in
        let key = (beta, env) in
        let prev =
          match Hashtbl.find_opt amps key with
          | Some a -> a
          | None -> Ring.zero
        in
        Hashtbl.replace amps key (Ring.add prev amp)
      done;
      let probs : (bool list, Ring.t) Hashtbl.t = Hashtbl.create 64 in
      Hashtbl.iter
        (fun (beta, _) a ->
          let p = Ring.norm_sq a in
          let prev =
            match Hashtbl.find_opt probs beta with
            | Some q -> q
            | None -> Ring.zero
          in
          Hashtbl.replace probs beta (Ring.add prev p))
        amps;
      Some probs
    end

let refute ?(max_vars = 14) ps_a ps_b ~shared =
  Obs.with_span "verify.refute" (fun () ->
      match
        ( distribution ~max_vars ps_a ~shared,
          distribution ~max_vars ps_b ~shared )
      with
      | Some pa, Some pb ->
          let betas = Hashtbl.create 64 in
          Hashtbl.iter (fun b _ -> Hashtbl.replace betas b ()) pa;
          Hashtbl.iter (fun b _ -> Hashtbl.replace betas b ()) pb;
          let lookup tbl b =
            match Hashtbl.find_opt tbl b with
            | Some r -> r
            | None -> Ring.zero
          in
          let mismatch = ref None in
          Hashtbl.iter
            (fun beta () ->
              if !mismatch = None then begin
                let ra = lookup pa beta and rb = lookup pb beta in
                if not (Ring.equal ra rb) then
                  mismatch := Some (beta, ra, rb)
              end)
            betas;
          (match !mismatch with
          | None -> Equal
          | Some (beta, ra, rb) ->
              Differs
                {
                  bits = List.combine shared beta;
                  p_left = Ring.to_float ra;
                  p_right = Ring.to_float rb;
                  detail =
                    Printf.sprintf
                      "P[%s] = %s on the left vs %s on the right"
                      (String.concat ", "
                         (List.map2
                            (fun b v -> Printf.sprintf "c%d=%d" b
                                          (if v then 1 else 0))
                            shared beta))
                      (Ring.to_string ra) (Ring.to_string rb);
                })
      | (Some _ | None), _ ->
          Inconclusive "too many path variables for exhaustive refutation")

(* ------------------------------------------------------------------ *)
(* Coherent replay of a dynamic instruction stream                    *)

exception Replay_unsupported of string

(* Rebuild, on the traditional qubit layout, the unitary circuit the
   DQC schedule denotes: segment k of the stream (delimited by the
   work-qubit resets) acts on work qubit iteration_order.(k), answer
   operands map back through answer_phys, and classical conditions
   become quantum controls on the (still coherent) source data qubits
   — the deferred-measurement image of the DQC. *)
let build_replay ~data_bit ~answer_phys ~iteration_order (dqc : Circ.t) =
  try
    let inv_answer = List.map (fun (q, phys) -> (phys, q)) answer_phys in
    let inv_bit = List.map (fun (q, b) -> (b, q)) data_bit in
    let order = Array.of_list iteration_order in
    let nq =
      1
      + List.fold_left max 0 (iteration_order @ List.map fst answer_phys)
    in
    let seg = ref 0 in
    let work () =
      if !seg < Array.length order then order.(!seg)
      else raise (Replay_unsupported "more segments than iterations")
    in
    let map_q p =
      if p = 0 then work ()
      else
        match List.assoc_opt p inv_answer with
        | Some q -> q
        | None ->
            raise
              (Replay_unsupported
                 (Printf.sprintf "physical qubit %d is neither work nor answer"
                    p))
    in
    let instrs = ref [] in
    let emit i = instrs := i :: !instrs in
    List.iter
      (fun (i : Instruction.t) ->
        match i with
        | Instruction.Unitary { gate; controls; target } ->
            emit
              (Instruction.Unitary
                 {
                   gate;
                   controls = List.map map_q controls;
                   target = map_q target;
                 })
        | Instruction.Conditioned (cond, { gate; controls; target }) ->
            let tests =
              List.map
                (fun (b, v) ->
                  match List.assoc_opt b inv_bit with
                  | Some q -> (q, v)
                  | None ->
                      raise
                        (Replay_unsupported
                           (Printf.sprintf "condition on non-data bit c%d" b)))
                cond.Instruction.bits
            in
            let falses =
              List.filter_map (fun (q, v) -> if v then None else Some q) tests
            in
            let wrap () =
              List.iter
                (fun q ->
                  emit
                    (Instruction.Unitary
                       { gate = Gate.X; controls = []; target = q }))
                falses
            in
            wrap ();
            emit
              (Instruction.Unitary
                 {
                   gate;
                   controls = List.map map_q controls @ List.map fst tests;
                   target = map_q target;
                 });
            wrap ()
        | Instruction.Measure { qubit = 0; _ } -> ()
        | Instruction.Measure { qubit; _ } ->
            raise
              (Replay_unsupported
                 (Printf.sprintf "measurement of physical qubit %d" qubit))
        | Instruction.Reset 0 -> incr seg
        | Instruction.Reset q ->
            raise
              (Replay_unsupported (Printf.sprintf "reset of physical qubit %d" q))
        | Instruction.Barrier _ -> ())
      (Circ.instructions dqc);
    let roles =
      Array.init nq (fun q ->
          if List.exists (fun (a, _) -> a = q) answer_phys then Circ.Answer
          else Circ.Data)
    in
    Ok (Circ.create ~roles ~num_bits:(Circ.num_bits dqc) (List.rev !instrs))
  with
  | Replay_unsupported msg -> Error msg
  | Invalid_argument msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Static netlist identity                                            *)

let check_static ?(inputs = `Symbolic) a b =
  Circ.num_qubits a = Circ.num_qubits b
  &&
  let symbolic_inputs = inputs = `Symbolic in
  let pa, _ = Reduce.normalize (Symexec.run ~symbolic_inputs a) in
  let pb, _ = Reduce.normalize (Symexec.run ~symbolic_inputs b) in
  if pa.Pathsum.zero_amplitude || pb.Pathsum.zero_amplitude then
    pa.Pathsum.zero_amplitude && pb.Pathsum.zero_amplitude
  else equate ~branch_phase:false (view_static pa) (view_static pb)

(* ------------------------------------------------------------------ *)
(* General channel certification of two measured circuits            *)

let measured_bits c =
  List.filter_map
    (function
      | Instruction.Measure { bit; _ } -> Some bit
      | Instruction.Unitary _ | Instruction.Reset _
      | Instruction.Conditioned _ | Instruction.Barrier _ ->
          None)
    (Circ.instructions c)
  |> List.sort_uniq compare

let count_verdict = function
  | Proved _ -> Obs.incr "verify.proved"
  | Refuted _ -> Obs.incr "verify.refuted"
  | Unknown _ -> Obs.incr "verify.unknown"

let check_channel ?(max_refute_vars = 14) a b =
  Obs.with_span "verify.certify" ~attrs:[ ("method", "channel") ] (fun () ->
      let verdict =
        try
          let ba = measured_bits a and bb = measured_bits b in
          let shared = List.filter (fun x -> List.mem x bb) ba in
          if shared = [] then Unknown "no bit is measured on both sides"
          else begin
            let ps_a, st_a = Reduce.normalize (Symexec.run a) in
            let ps_b, st_b = Reduce.normalize (Symexec.run b) in
            let path_vars =
              List.length (Pathsum.all_vars ps_a)
              + List.length (Pathsum.all_vars ps_b)
            in
            Obs.incr ~n:path_vars "verify.path_vars";
            let reductions = Reduce.total st_a + Reduce.total st_b in
            let proved () =
              Proved
                { scope = Channel; path_vars; reductions; schedule_cex = None }
            in
            if compare_channel ps_a ps_b ~shared then proved ()
            else
              match refute ~max_vars:max_refute_vars ps_a ps_b ~shared with
              | Equal -> proved ()
              | Differs cex -> Refuted cex
              | Inconclusive msg -> Unknown msg
          end
        with Symexec.Unsupported msg ->
          Unknown (Printf.sprintf "outside the exact gate fragment: %s" msg)
      in
      count_verdict verdict;
      verdict)

(* ------------------------------------------------------------------ *)
(* Certification of a transform result                                *)

let certify ?(max_refute_vars = 14) ~traditional ~data_bit ~answer_phys
    ~iteration_order ~violations (dqc : Circ.t) =
  Obs.with_span "verify.certify" (fun () ->
      let verdict =
        try
          let num_data = List.length data_bit in
          let nq_orig = Circ.num_qubits traditional in
          let shared =
            List.filter_map
              (fun (q, b) -> if q < nq_orig then Some b else None)
              data_bit
            @ List.mapi (fun k (_ : int * int) -> num_data + k) answer_phys
          in
          let trad_measures =
            List.filter (fun (q, _) -> q < nq_orig) data_bit
            @ List.mapi (fun k (q, _) -> (q, num_data + k)) answer_phys
          in
          let dyn_measures =
            List.mapi (fun k (_, phys) -> (phys, num_data + k)) answer_phys
          in
          let t_ps, t_st =
            Reduce.normalize (Symexec.run ~measures:trad_measures traditional)
          in
          let d_ps, d_st =
            Reduce.normalize (Symexec.run ~measures:dyn_measures dqc)
          in
          let path_vars =
            List.length (Pathsum.all_vars t_ps)
            + List.length (Pathsum.all_vars d_ps)
          in
          Obs.incr ~n:path_vars "verify.path_vars";
          let reductions = Reduce.total t_st + Reduce.total d_st in
          let proved scope schedule_cex =
            Proved { scope; path_vars; reductions; schedule_cex }
          in
          (* the coherent-replay route: prove the DQC equal to the
             deferred-measurement image of its own schedule, then try
             to relate that schedule to the traditional circuit *)
          let replay_route () =
            match build_replay ~data_bit ~answer_phys ~iteration_order dqc with
            | Error msg -> Unknown (Printf.sprintf "replay failed: %s" msg)
            | Ok replay ->
                let shared_all =
                  List.map snd data_bit
                  @ List.mapi (fun k (_ : int * int) -> num_data + k)
                      answer_phys
                in
                let replay_measures =
                  data_bit
                  @ List.mapi (fun k (q, _) -> (q, num_data + k)) answer_phys
                in
                let r_ps, _ =
                  Reduce.normalize
                    (Symexec.run ~measures:replay_measures replay)
                in
                let against_traditional () =
                  if compare_channel t_ps r_ps ~shared then
                    proved Channel None
                  else
                    match
                      refute ~max_vars:max_refute_vars t_ps r_ps ~shared
                    with
                    | Equal -> proved Channel None
                    | Differs cex -> proved Dynamics (Some cex)
                    | Inconclusive _ -> proved Dynamics None
                in
                if compare_channel d_ps r_ps ~shared:shared_all then
                  against_traditional ()
                else (
                  match
                    refute ~max_vars:max_refute_vars d_ps r_ps
                      ~shared:shared_all
                  with
                  | Differs cex -> Refuted cex
                  | Equal -> against_traditional ()
                  | Inconclusive msg ->
                      Unknown
                        (Printf.sprintf
                           "replay comparison inconclusive: %s" msg))
          in
          if compare_channel t_ps d_ps ~shared then proved Channel None
          else if violations = 0 then
            (* the transform claims exactness: any difference is a
               genuine bug, so exhaust before falling back *)
            match refute ~max_vars:max_refute_vars t_ps d_ps ~shared with
            | Differs cex -> Refuted cex
            | Equal -> proved Channel None
            | Inconclusive _ -> replay_route ()
          else replay_route ()
        with Symexec.Unsupported msg ->
          Unknown (Printf.sprintf "outside the exact gate fragment: %s" msg)
      in
      count_verdict verdict;
      verdict)

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)

let scope_to_string = function
  | Channel -> "channel"
  | Dynamics -> "dynamics"

let pp_verdict fmt = function
  | Proved { scope; path_vars; reductions; schedule_cex } ->
      Format.fprintf fmt "proved (%s scope, %d path vars, %d reductions%s)"
        (scope_to_string scope) path_vars reductions
        (match schedule_cex with
        | Some _ -> ", schedule deviation witnessed"
        | None -> "")
  | Refuted cex ->
      Format.fprintf fmt "REFUTED: %s (P=%.6f vs P=%.6f)" cex.detail
        cex.p_left cex.p_right
  | Unknown msg -> Format.fprintf fmt "unknown: %s" msg

let verdict_to_string v = Format.asprintf "%a" pp_verdict v

let is_proved = function Proved _ -> true | Refuted _ | Unknown _ -> false
