(** Path-sum / phase-polynomial representation of a circuit segment:

    {v |psi> = 2^(-scale/2) . sum_x omega^phase(x) |outputs(x)> v}

    over symbolic boolean path variables [x], with [phase] a
    multilinear polynomial mod 8 (ω = e^{iπ/4}) and each qubit output
    a multilinear polynomial over GF(2).

    Mid-circuit measurement needs no case split: recording
    [bit := f_q(x)] pins each path to the branch its own assignment
    selects — paths whose recorded values differ can never interfere
    afterwards.  Variables occurring in a recorded expression are
    therefore {e observed} and must survive reduction
    ({!protected_vars}). *)

(** Multilinear polynomials over GF(2): an XOR of monomials, each a
    product of distinct variables.  The representation is canonical
    (sorted, duplicate-free), so {!equal} is semantic equality. *)
module Bexpr : sig
  type t

  val zero : t
  val one : t
  val var : int -> t
  val of_bool : bool -> t
  val xor : t -> t -> t

  (** Logical AND — the multilinear product. *)
  val conj : t -> t -> t

  val not_ : t -> t

  (** The monomials, each a sorted list of variable ids (the empty
      list is the constant 1). *)
  val monomials : t -> int list list

  val is_zero : t -> bool

  (** [Some b] when the polynomial is the constant [b]. *)
  val is_const : t -> bool option

  val vars : t -> int list
  val mem_var : int -> t -> bool

  (** [subst v e t] replaces variable [v] by the polynomial [e]. *)
  val subst : int -> t -> t -> t

  (** Rename variables through an {e injective} map. *)
  val rename : (int -> int) -> t -> t

  val eval : (int -> bool) -> t -> bool
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val union_vars : int list -> int list -> int list
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

(** Multilinear phase polynomials with coefficients mod 8 (phases are
    powers of ω = e^{iπ/4}). *)
module Phase : sig
  type t

  val zero : t

  (** [of_term c m] is c·(product of the variables in [m]). *)
  val of_term : int -> int list -> t

  val const : int -> t
  val add : t -> t -> t
  val scale : int -> t -> t
  val neg : t -> t
  val mul : t -> t -> t

  (** Arithmetic lift: L(e) ∈ {0,1} agrees pointwise with [e].
      Coefficients die at 8, so only subset-products of size ≤ 3
      survive and the lift stays polynomial-size. *)
  val lift : Bexpr.t -> t

  (** [lift4 e] = 4·L(e) mod 8 — just 4·(sum of monomials), since
      every cross term carries a multiple of 8. *)
  val lift4 : Bexpr.t -> t

  (** [Some c] when the polynomial is the constant [c]. *)
  val is_const : t -> int option

  val vars : t -> int list
  val mem_var : int -> t -> bool

  (** [factor v t] = (Q, S) with t = v·Q + S (exact: multilinear). *)
  val factor : int -> t -> t * t

  val subst : int -> Bexpr.t -> t -> t
  val rename : (int -> int) -> t -> t
  val eval : (int -> bool) -> t -> int

  (** The terms: (monomial, coefficient in 1..7) pairs. *)
  val terms : t -> (int list * int) list

  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

type t = {
  scale : int;  (** amplitude prefactor 2^{-scale/2} *)
  phase : Phase.t;
  outputs : Bexpr.t array;  (** per-qubit basis-state function *)
  bits : Bexpr.t option array;  (** recorded measurement expressions *)
  ghosts : Bexpr.t list;  (** discarded observations (reset, clobber) *)
  inputs : int array option;  (** symbolic input variable per qubit *)
  next_var : int;
  zero_amplitude : bool;  (** the whole sum reduced to 0 *)
}

(** Fresh path sum over |0…0⟩, or over symbolic basis inputs (one
    pinned variable per qubit) when [symbolic_inputs] is set. *)
val init : ?symbolic_inputs:bool -> num_qubits:int -> num_bits:int -> unit -> t

val num_vars : t -> int

(** Every variable occurring anywhere, ascending. *)
val all_vars : t -> int list

(** Variables that parametrize an observation (recorded bit, ghost) or
    a symbolic input — reduction must never eliminate these. *)
val protected_vars : t -> int list

(** Exact amplitude of one complete path assignment. *)
val amplitude : t -> (int -> bool) -> Ring.t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
