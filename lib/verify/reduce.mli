(** Normalization of path sums by Amy-style rewriting.

    Three rules run to a fixpoint, each removing path variables while
    preserving the sum exactly:

    - {b Elim} — a variable occurring nowhere sums to 2: drop it,
      [scale -= 2];
    - {b HH} — a variable occurring only as the phase term 4·y·R sums
      to 2·[R = 0]; the constraint is eliminated by solving for a
      linearly occurring variable and substituting (or kills the
      amplitude when R ≡ 1);
    - {b ω} — a variable occurring only as y·(c + 4·R), c ∈ {2,6},
      sums to √2·ω^{±(1+2·L(R))·…}: drop it, [scale -= 1], fold the
      residual phase back in.

    Variables protected by {!Pathsum.protected_vars} (observed or
    pinned inputs) and variables still parametrizing an output are
    never eliminated.  Counters: [verify.reduce.{elim,hh,omega,subst}]. *)

type stats = { elim : int; hh : int; omega : int; subst : int }

val no_stats : stats

(** Total rule applications. *)
val total : stats -> int

(** Reduce to a fixpoint.  The result is extensionally equal to the
    input (same amplitudes on every path of the surviving variables,
    same recorded observations). *)
val normalize : Pathsum.t -> Pathsum.t * stats
