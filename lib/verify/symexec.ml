(* Symbolic execution of a full dynamic instruction stream into a
   path sum.  Classical bits are tracked symbolically (a GF(2)
   polynomial per written bit), so classically controlled corrections
   fold back into the sum as guard factors; Reset is modelled as
   measure-and-discard; measurement records the qubit's current
   function as the bit's expression — see Pathsum for why this pins
   the branches without case-splitting. *)

open Circuit

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type state = {
  mutable scale : int;
  mutable phase : Pathsum.Phase.t;
  outputs : Pathsum.Bexpr.t array;
  bits : Pathsum.Bexpr.t option array;
  mutable ghosts : Pathsum.Bexpr.t list;
  inputs : int array option;
  mutable next_var : int;
}

let fresh st =
  let v = st.next_var in
  st.next_var <- v + 1;
  v

let add_phase st p = st.phase <- Pathsum.Phase.add st.phase p

(* Hadamard on [t]: new path variable y, phase += 4.y.L(f_t),
   f_t := y.  Only unguarded: a controlled H has no phase-polynomial
   form here. *)
let apply_h st target =
  let y = fresh st in
  List.iter
    (fun m ->
      add_phase st (Pathsum.Phase.of_term 4 (Pathsum.Bexpr.union_vars [ y ] m)))
    (Pathsum.Bexpr.monomials st.outputs.(target));
  st.outputs.(target) <- Pathsum.Bexpr.var y;
  st.scale <- st.scale + 1

(* phase gate diag(1, omega^c) applied under guard [g]:
   phase += c.L(g AND f_t) *)
let apply_phase_gate st c guard target =
  let e = Pathsum.Bexpr.conj guard st.outputs.(target) in
  add_phase st
    (if c mod 4 = 0 then Pathsum.Phase.scale (c / 4) (Pathsum.Phase.lift4 e)
     else Pathsum.Phase.scale c (Pathsum.Phase.lift e))

let apply_x st guard target =
  st.outputs.(target) <- Pathsum.Bexpr.xor st.outputs.(target) guard

(* the number of quarter-turns of an angle, when exact enough *)
let quarter_turns theta =
  let q = theta /. (Float.pi /. 2.) in
  let r = Float.round q in
  if Float.abs (q -. r) < 1e-9 then Some (int_of_float r) else None

let eighth_turns theta =
  let q = theta /. (Float.pi /. 4.) in
  let r = Float.round q in
  if Float.abs (q -. r) < 1e-9 then Some (int_of_float r) else None

let rec apply_gate st (g : Gate.t) guard target =
  let guarded = Pathsum.Bexpr.is_const guard <> Some true in
  match g with
  | Gate.X -> apply_x st guard target
  | Gate.Z -> apply_phase_gate st 4 guard target
  | Gate.S -> apply_phase_gate st 2 guard target
  | Gate.Sdg -> apply_phase_gate st 6 guard target
  | Gate.T -> apply_phase_gate st 1 guard target
  | Gate.Tdg -> apply_phase_gate st 7 guard target
  | Gate.Y ->
      (* Y = i.X.Z: phase i when the guard holds, then guarded Z, X *)
      add_phase st (Pathsum.Phase.scale 2 (Pathsum.Phase.lift guard));
      apply_phase_gate st 4 guard target;
      apply_x st guard target
  | Gate.H ->
      if guarded then unsupported "controlled/conditioned H has no exact form"
      else apply_h st target
  | Gate.V ->
      (* V = H.S.H exactly, and controls commute with the H-conjugation:
         C(V) = (I(x)H).C(S).(I(x)H) *)
      apply_h st target;
      apply_phase_gate st 2 guard target;
      apply_h st target
  | Gate.Vdg ->
      apply_h st target;
      apply_phase_gate st 6 guard target;
      apply_h st target
  | Gate.Phase theta -> (
      match eighth_turns theta with
      | Some k -> apply_phase_gate st k guard target
      | None -> unsupported "phase(%g) is not a multiple of pi/4" theta)
  | Gate.Rz theta -> (
      (* Rz(j.pi/2) = omega^{-j} . diag(1, omega^{2j}) *)
      match quarter_turns theta with
      | Some j ->
          add_phase st
            (Pathsum.Phase.scale ((8 - (j mod 8)) mod 8)
               (Pathsum.Phase.lift guard));
          apply_phase_gate st (2 * j) guard target
      | None -> unsupported "rz(%g) is not a multiple of pi/2" theta)
  | Gate.Rx theta -> (
      match quarter_turns theta with
      | Some _ ->
          (* Rx = H.Rz.H, controls again commuting with the conjugation *)
          apply_h st target;
          apply_gate st (Gate.Rz theta) guard target;
          apply_h st target
      | None -> unsupported "rx(%g) is not a multiple of pi/2" theta)
  | Gate.Ry theta -> unsupported "ry(%g) has no exact path-sum form" theta

(* a recorded expression that duplicates an existing observation (up
   to negation) pins nothing new *)
let already_observed st e =
  let dup o = Pathsum.Bexpr.equal o e || Pathsum.Bexpr.equal o (Pathsum.Bexpr.not_ e) in
  Array.exists (function Some o -> dup o | None -> false) st.bits
  || List.exists dup st.ghosts

let measure st ~qubit ~bit =
  (match st.bits.(bit) with
  | Some old ->
      (* the clobbered observation already pinned its paths: keep it as
         a ghost unless it is constant or duplicated elsewhere *)
      let dup o =
        Pathsum.Bexpr.equal o old
        || Pathsum.Bexpr.equal o (Pathsum.Bexpr.not_ old)
      in
      let elsewhere = ref false in
      Array.iteri
        (fun b e ->
          match e with
          | Some o when b <> bit && dup o -> elsewhere := true
          | Some _ | None -> ())
        st.bits;
      if
        Pathsum.Bexpr.is_const old = None
        && (not !elsewhere)
        && not (List.exists dup st.ghosts)
      then st.ghosts <- st.ghosts @ [ old ]
  | None -> ());
  st.bits.(bit) <- Some st.outputs.(qubit)

let reset st qubit =
  let e = st.outputs.(qubit) in
  (match Pathsum.Bexpr.is_const e with
  | Some _ -> ()
  | None ->
      (* measure-and-discard: if the value is already pinned by a
         recorded observation, discarding it decoheres nothing new;
         otherwise keep the expression as a ghost observation *)
      if not (already_observed st e) then st.ghosts <- st.ghosts @ [ e ]);
  st.outputs.(qubit) <- Pathsum.Bexpr.zero

let guard_of st ~controls ~tests =
  let g =
    List.fold_left
      (fun acc q -> Pathsum.Bexpr.conj acc st.outputs.(q))
      Pathsum.Bexpr.one controls
  in
  List.fold_left
    (fun acc (b, v) ->
      match st.bits.(b) with
      | None -> unsupported "condition reads unwritten bit c%d" b
      | Some e ->
          Pathsum.Bexpr.conj acc (if v then e else Pathsum.Bexpr.not_ e))
    g tests

let step st (i : Instruction.t) =
  match i with
  | Instruction.Unitary { gate; controls; target } ->
      apply_gate st gate (guard_of st ~controls ~tests:[]) target
  | Instruction.Conditioned (cond, { gate; controls; target }) ->
      apply_gate st gate (guard_of st ~controls ~tests:cond.bits) target
  | Instruction.Measure { qubit; bit } -> measure st ~qubit ~bit
  | Instruction.Reset q -> reset st q
  | Instruction.Barrier _ -> ()

let run ?(symbolic_inputs = false) ?(measures = []) c =
  Obs.with_span "verify.symexec" (fun () ->
      let num_qubits = Circ.num_qubits c in
      let num_bits =
        List.fold_left
          (fun acc (_, b) -> max acc (b + 1))
          (Circ.num_bits c) measures
      in
      let st =
        {
          scale = 0;
          phase = Pathsum.Phase.zero;
          outputs =
            (if symbolic_inputs then Array.init num_qubits Pathsum.Bexpr.var
             else Array.make num_qubits Pathsum.Bexpr.zero);
          bits = Array.make num_bits None;
          ghosts = [];
          inputs =
            (if symbolic_inputs then Some (Array.init num_qubits (fun q -> q))
             else None);
          next_var = (if symbolic_inputs then num_qubits else 0);
        }
      in
      let count = ref 0 in
      List.iter
        (fun i ->
          incr count;
          step st i)
        (Circ.instructions c);
      List.iter (fun (qubit, bit) -> measure st ~qubit ~bit) measures;
      Obs.incr ~n:!count "verify.symexec.instructions";
      {
        Pathsum.scale = st.scale;
        phase = st.phase;
        outputs = st.outputs;
        bits = st.bits;
        ghosts = st.ghosts;
        inputs = st.inputs;
        next_var = st.next_var;
        zero_amplitude = false;
      })
