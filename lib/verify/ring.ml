(* Exact amplitudes in Z[i, 1/sqrt2] = Z[omega, 1/sqrt2] with
   omega = e^{i.pi/4}.  A value is (a + b.w + c.w^2 + d.w^3) / sqrt2^s
   with integer coefficients; w^4 = -1 and sqrt2 = w - w^3 close the
   ring under all gate amplitudes of Clifford+T and V/Vdg. *)

type t = { a : int; b : int; c : int; d : int; s : int }

(* (a+bw+cw^2+dw^3).(w - w^3) — multiplication by sqrt2 *)
let mul_root2_raw (a, b, c, d) = (b - d, a + c, b + d, c - a)

let rec normalize ({ a; b; c; d; s } as t) =
  if a = 0 && b = 0 && c = 0 && d = 0 then
    { a = 0; b = 0; c = 0; d = 0; s = 0 }
  else if s > 0 && (a - c) land 1 = 0 && (b - d) land 1 = 0 then
    (* dividing by sqrt2 = multiplying by (w - w^3)/2 *)
    let a', b', c', d' = mul_root2_raw (a, b, c, d) in
    normalize { a = a' / 2; b = b' / 2; c = c' / 2; d = d' / 2; s = s - 1 }
  else t

let make ?(s = 0) a b c d = normalize { a; b; c; d; s }
let zero = make 0 0 0 0
let one = make 1 0 0 0
let i = make 0 0 1 0
let is_zero t = t.a = 0 && t.b = 0 && t.c = 0 && t.d = 0

let omega_pow k =
  let k = ((k mod 8) + 8) mod 8 in
  let sign = if k >= 4 then -1 else 1 in
  match k mod 4 with
  | 0 -> make sign 0 0 0
  | 1 -> make 0 sign 0 0
  | 2 -> make 0 0 sign 0
  | _ -> make 0 0 0 sign

let of_int n = make n 0 0 0
let neg t = { t with a = -t.a; b = -t.b; c = -t.c; d = -t.d }

(* raise [t]'s denominator exponent to [s] (s >= t.s) *)
let lift_to s t =
  let rec go (a, b, c, d) n =
    if n = 0 then (a, b, c, d) else go (mul_root2_raw (a, b, c, d)) (n - 1)
  in
  let a, b, c, d = go (t.a, t.b, t.c, t.d) (s - t.s) in
  { a; b; c; d; s }

let add x y =
  let s = max x.s y.s in
  let x = lift_to s x and y = lift_to s y in
  normalize { a = x.a + y.a; b = x.b + y.b; c = x.c + y.c; d = x.d + y.d; s }

let sub x y = add x (neg y)

let mul x y =
  (* (sum_j x_j w^j)(sum_k y_k w^k), folding w^4 = -1 *)
  let acc = Array.make 4 0 in
  let xs = [| x.a; x.b; x.c; x.d |] and ys = [| y.a; y.b; y.c; y.d |] in
  for j = 0 to 3 do
    for k = 0 to 3 do
      let p = j + k in
      let sign = if p >= 4 then -1 else 1 in
      acc.(p mod 4) <- acc.(p mod 4) + (sign * xs.(j) * ys.(k))
    done
  done;
  normalize { a = acc.(0); b = acc.(1); c = acc.(2); d = acc.(3); s = x.s + y.s }

(* conj(w) = w^7 = -w^3, conj(w^2) = -w^2, conj(w^3) = -w *)
let conj t = normalize { t with b = -t.d; c = -t.c; d = -t.b }
let norm_sq t = mul t (conj t)

(* value / sqrt2^n (n may be negative) *)
let div_root2 n t =
  if n >= 0 then normalize { t with s = t.s + n }
  else
    let rec go acc k =
      if k = 0 then acc
      else
        go
          (let a, b, c, d = mul_root2_raw (acc.a, acc.b, acc.c, acc.d) in
           { acc with a; b; c; d })
          (k - 1)
    in
    normalize (go t (-n))

let equal x y =
  let x = normalize x and y = normalize y in
  x.a = y.a && x.b = y.b && x.c = y.c && x.d = y.d && x.s = y.s

let root2_inv = 1. /. sqrt 2.

let to_complex t =
  let h = float_of_int (t.b - t.d) *. root2_inv
  and g = float_of_int (t.b + t.d) *. root2_inv in
  let re = float_of_int t.a +. h and im = float_of_int t.c +. g in
  let scale = root2_inv ** float_of_int t.s in
  (re *. scale, im *. scale)

let to_float t = fst (to_complex t)

let to_string t =
  let term coeff sym =
    if coeff = 0 then None
    else
      Some
        (match (coeff, sym) with
        | 1, "" -> "1"
        | -1, "" -> "-1"
        | 1, s -> s
        | -1, s -> "-" ^ s
        | n, "" -> string_of_int n
        | n, s -> string_of_int n ^ s)
  in
  let parts =
    List.filter_map Fun.id
      [ term t.a ""; term t.b "w"; term t.c "w2"; term t.d "w3" ]
  in
  let num =
    match parts with
    | [] -> "0"
    | [ p ] -> p
    | ps -> "(" ^ String.concat "+" ps ^ ")"
  in
  if t.s = 0 then num else Printf.sprintf "%s/sqrt2^%d" num t.s

let pp fmt t = Format.pp_print_string fmt (to_string t)
