(* Path-sum / phase-polynomial representation of a circuit segment:

     |psi> = 2^{-scale/2} . sum over x in {0,1}^V of
               omega^{phase(x)} |outputs_0(x), ..., outputs_{n-1}(x)>

   where V is a set of symbolic boolean path variables, [phase] is a
   multilinear polynomial mod 8 and each output is a multilinear
   polynomial over GF(2).  Mid-circuit measurements do not case-split:
   recording bit := f_q(x) pins every path to the branch its own
   assignment selects, because paths with different recorded values
   can never interfere afterwards.  Reductions must therefore treat
   variables occurring in a recorded expression as observed. *)

(* ------------------------------------------------------------------ *)
(* Multilinear polynomials over GF(2)                                 *)

module Bexpr = struct
  (* a polynomial is a sorted list of monomials (XOR of products);
     a monomial is a sorted list of distinct variable ids; the empty
     monomial is the constant 1 *)
  type t = int list list

  let compare_mono (x : int list) (y : int list) = compare x y

  let rec merge_xor a b =
    match (a, b) with
    | [], r | r, [] -> r
    | m :: a', n :: b' ->
        let c = compare_mono m n in
        if c = 0 then merge_xor a' b'
        else if c < 0 then m :: merge_xor a' b
        else n :: merge_xor a b'

  let zero : t = []
  let one : t = [ [] ]
  let var v : t = [ [ v ] ]
  let of_bool b = if b then one else zero
  let xor = merge_xor

  let rec union_vars a b =
    match (a, b) with
    | [], r | r, [] -> r
    | x :: a', y :: b' ->
        if x = y then x :: union_vars a' b'
        else if x < y then x :: union_vars a' b
        else y :: union_vars a b'

  (* product (logical AND): all pairwise monomial unions, cancelling
     mod 2 *)
  let conj (a : t) (b : t) : t =
    List.fold_left
      (fun acc m ->
        List.fold_left (fun acc n -> xor acc [ union_vars m n ]) acc b)
      zero a

  let not_ a = xor one a
  let monomials (t : t) = t
  let equal (a : t) (b : t) = a = b
  let compare (a : t) (b : t) = compare a b
  let is_zero (t : t) = t = []

  let is_const = function
    | [] -> Some false
    | [ [] ] -> Some true
    | _ :: _ -> None

  let vars (t : t) = List.fold_left (fun acc m -> union_vars acc m) [] t
  let mem_var v (t : t) = List.exists (fun m -> List.mem v m) t

  (* t = v.A xor C; subst gives e.A xor C *)
  let subst v e (t : t) =
    let with_v, without = List.partition (fun m -> List.mem v m) t in
    let a = List.map (fun m -> List.filter (fun x -> x <> v) m) with_v in
    xor without (conj e (List.sort_uniq compare_mono a))

  let rename f (t : t) =
    List.sort_uniq compare_mono
      (List.map (fun m -> List.sort_uniq Stdlib.compare (List.map f m)) t)

  let eval assign (t : t) =
    List.fold_left
      (fun acc m -> acc <> List.for_all assign m)
      false t

  let to_string (t : t) =
    match t with
    | [] -> "0"
    | ms ->
        String.concat " + "
          (List.map
             (function
               | [] -> "1"
               | m -> String.concat "." (List.map (Printf.sprintf "x%d") m))
             ms)

  let pp fmt t = Format.pp_print_string fmt (to_string t)
end

(* ------------------------------------------------------------------ *)
(* Multilinear phase polynomials mod 8                                *)

module Phase = struct
  (* sorted assoc list monomial -> coefficient in 1..7 *)
  type t = (int list * int) list

  let zero : t = []
  let norm_coeff c = ((c mod 8) + 8) mod 8

  let rec add (a : t) (b : t) : t =
    match (a, b) with
    | [], r | r, [] -> r
    | ((m, cm) as x) :: a', ((n, cn) as y) :: b' ->
        let c = compare m n in
        if c = 0 then
          let s = norm_coeff (cm + cn) in
          if s = 0 then add a' b' else (m, s) :: add a' b'
        else if c < 0 then x :: add a' b
        else y :: add a b'

  let of_term c m : t =
    let c = norm_coeff c in
    if c = 0 then [] else [ (List.sort_uniq compare m, c) ]

  let const c = of_term c []

  let scale k (t : t) : t =
    let k = norm_coeff k in
    if k = 0 then []
    else
      List.filter_map
        (fun (m, c) ->
          let c = norm_coeff (c * k) in
          if c = 0 then None else Some (m, c))
        t

  let neg t = scale 7 t

  let mul (a : t) (b : t) : t =
    (* variables are boolean, so monomial products are unions *)
    List.fold_left
      (fun acc (m, cm) ->
        List.fold_left
          (fun acc (n, cn) ->
            add acc (of_term (cm * cn) (Bexpr.union_vars m n)))
          acc b)
      zero a

  (* arithmetic lift of a GF(2) polynomial: L(a xor b) =
     L(a) + L(b) - 2.L(a).L(b); coefficients die at 8, so only
     subset-products of size <= 3 survive and the lift stays
     polynomial *)
  let lift (e : Bexpr.t) : t =
    List.fold_left
      (fun acc m ->
        let lm = of_term 1 m in
        add (add acc lm) (scale 6 (mul acc lm)))
      zero (Bexpr.monomials e)

  (* 4.L(e) = 4.(sum of e's monomials) mod 8 — the cross terms carry
     coefficient 8k and vanish *)
  let lift4 (e : Bexpr.t) : t =
    List.fold_left (fun acc m -> add acc (of_term 4 m)) zero
      (Bexpr.monomials e)

  let is_const = function
    | [] -> Some 0
    | [ ([], c) ] -> Some c
    | _ :: _ -> None

  let vars (t : t) =
    List.fold_left (fun acc (m, _) -> Bexpr.union_vars acc m) [] t

  let mem_var v (t : t) = List.exists (fun (m, _) -> List.mem v m) t

  (* t = v.Q + S (multilinear, so exact); returns (Q, S) *)
  let factor v (t : t) =
    let with_v, without = List.partition (fun (m, _) -> List.mem v m) t in
    ( List.map (fun (m, c) -> (List.filter (fun x -> x <> v) m, c)) with_v
      |> List.fold_left (fun acc (m, c) -> add acc (of_term c m)) zero,
      without )

  let subst v e (t : t) =
    let q, s = factor v t in
    add s (mul (lift e) q)

  let rename f (t : t) =
    List.fold_left
      (fun acc (m, c) -> add acc (of_term c (List.map f m)))
      zero t

  let eval assign (t : t) =
    norm_coeff
      (List.fold_left
         (fun acc (m, c) -> if List.for_all assign m then acc + c else acc)
         0 t)

  let terms (t : t) = t

  let to_string (t : t) =
    match t with
    | [] -> "0"
    | ts ->
        String.concat " + "
          (List.map
             (fun (m, c) ->
               match m with
               | [] -> string_of_int c
               | _ ->
                   Printf.sprintf "%d.%s" c
                     (String.concat "." (List.map (Printf.sprintf "x%d") m)))
             ts)

  let pp fmt t = Format.pp_print_string fmt (to_string t)
end

(* ------------------------------------------------------------------ *)
(* The path sum itself                                                *)

type t = {
  scale : int;
  phase : Phase.t;
  outputs : Bexpr.t array;
  bits : Bexpr.t option array;
  ghosts : Bexpr.t list;
  inputs : int array option;  (* symbolic input variable per qubit *)
  next_var : int;
  zero_amplitude : bool;
}

let init ?(symbolic_inputs = false) ~num_qubits ~num_bits () =
  if symbolic_inputs then
    {
      scale = 0;
      phase = Phase.zero;
      outputs = Array.init num_qubits Bexpr.var;
      bits = Array.make num_bits None;
      ghosts = [];
      inputs = Some (Array.init num_qubits (fun q -> q));
      next_var = num_qubits;
      zero_amplitude = false;
    }
  else
    {
      scale = 0;
      phase = Phase.zero;
      outputs = Array.make num_qubits Bexpr.zero;
      bits = Array.make num_bits None;
      ghosts = [];
      inputs = None;
      next_var = 0;
      zero_amplitude = false;
    }

let num_vars t = t.next_var

let all_vars t =
  let acc = ref [] in
  Array.iter (fun e -> acc := Bexpr.union_vars !acc (Bexpr.vars e)) t.outputs;
  Array.iter
    (function
      | Some e -> acc := Bexpr.union_vars !acc (Bexpr.vars e)
      | None -> ())
    t.bits;
  List.iter
    (fun e -> acc := Bexpr.union_vars !acc (Bexpr.vars e))
    t.ghosts;
  acc := Bexpr.union_vars !acc (Phase.vars t.phase);
  (match t.inputs with
  | Some a -> acc := Bexpr.union_vars !acc (List.sort compare (Array.to_list a))
  | None -> ());
  !acc

(* variables that may never be eliminated: they parametrize an
   observation (a recorded bit, a discarded measurement) or a symbolic
   circuit input *)
let protected_vars t =
  let acc = ref [] in
  Array.iter
    (function
      | Some e -> acc := Bexpr.union_vars !acc (Bexpr.vars e)
      | None -> ())
    t.bits;
  List.iter (fun e -> acc := Bexpr.union_vars !acc (Bexpr.vars e)) t.ghosts;
  (match t.inputs with
  | Some a -> acc := Bexpr.union_vars !acc (List.sort compare (Array.to_list a))
  | None -> ());
  !acc

(* exact amplitude of one path assignment *)
let amplitude t assign =
  if t.zero_amplitude then Ring.zero
  else Ring.div_root2 t.scale (Ring.omega_pow (Phase.eval assign t.phase))

let pp fmt t =
  if t.zero_amplitude then Format.fprintf fmt "@[<v>zero amplitude@]"
  else begin
    Format.fprintf fmt "@[<v>scale 2^{-%d/2}, phase %a@," t.scale Phase.pp
      t.phase;
    Array.iteri
      (fun q e -> Format.fprintf fmt "q%d -> %a@," q Bexpr.pp e)
      t.outputs;
    Array.iteri
      (fun b e ->
        match e with
        | Some e -> Format.fprintf fmt "c%d = %a@," b Bexpr.pp e
        | None -> ())
      t.bits;
    List.iter (fun e -> Format.fprintf fmt "ghost %a@," Bexpr.pp e) t.ghosts;
    Format.fprintf fmt "@]"
  end

let to_string t = Format.asprintf "%a" pp t
