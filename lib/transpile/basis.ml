open Circuit

let arg (z : Complex.t) = atan2 z.im z.re

(* U = e^{i.alpha} Rz(beta) Ry(gamma) Rz(delta):
     u00 = e^{i(alpha - (beta+delta)/2)} cos(gamma/2)
     u01 = -e^{i(alpha - (beta-delta)/2)} sin(gamma/2)
     u10 = e^{i(alpha + (beta-delta)/2)} sin(gamma/2)
     u11 = e^{i(alpha + (beta+delta)/2)} cos(gamma/2) *)
let zyz_angles m =
  if Linalg.Cmat.rows m <> 2 || Linalg.Cmat.cols m <> 2 then
    invalid_arg "Basis.zyz_angles: not a 1-qubit matrix";
  let u00 = Linalg.Cmat.get m 0 0
  and u01 = Linalg.Cmat.get m 0 1
  and u10 = Linalg.Cmat.get m 1 0
  and u11 = Linalg.Cmat.get m 1 1 in
  let c = Complex.norm u00 and s = Complex.norm u10 in
  let gamma = 2. *. atan2 s c in
  if s < 1e-9 then begin
    (* diagonal: put everything in beta *)
    let beta = arg u11 -. arg u00 in
    let alpha = (arg u11 +. arg u00) /. 2. in
    (alpha, beta, 0., 0.)
  end
  else if c < 1e-9 then begin
    (* anti-diagonal: gamma = pi, delta = 0 *)
    let beta = arg u10 -. arg (Complex.neg u01) in
    let alpha = (arg u10 +. arg (Complex.neg u01)) /. 2. in
    (alpha, beta, Float.pi, 0.)
  end
  else begin
    let beta = arg u10 -. arg u00 in
    let delta = arg u11 -. arg u10 in
    let alpha = arg u00 +. ((beta +. delta) /. 2.) in
    (alpha, beta, gamma, delta)
  end

let is_native_gate (g : Gate.t) =
  match g with
  | Gate.Rz _ | Gate.V | Gate.X -> true
  | Gate.H | Gate.Y | Gate.Z | Gate.S | Gate.Sdg | Gate.T | Gate.Tdg
  | Gate.Vdg | Gate.Rx _ | Gate.Ry _ | Gate.Phase _ ->
      false

let nonzero a = Float.abs a > 1e-12

(* In application order (first gate first):
   Ry(gamma) ~ Rz(-pi) ; sqrtX ; Rz(pi - gamma) ; sqrtX
   so U ~ Rz(delta - pi) ; sqrtX ; Rz(pi - gamma) ; sqrtX ; Rz(beta). *)
let zxzxz ~beta ~gamma ~delta =
  let rz a acc = if nonzero a then Gate.Rz a :: acc else acc in
  if not (nonzero gamma) then rz (beta +. delta) []
  else
    rz (delta -. Float.pi) [ Gate.V ]
    @ rz (Float.pi -. gamma) [ Gate.V ]
    @ rz beta []

let native_1q (g : Gate.t) =
  if is_native_gate g then [ g ]
  else
    let _, beta, gamma, delta = zyz_angles (Gate.matrix g) in
    zxzxz ~beta ~gamma ~delta

(* exact ABC decomposition of controlled-U (Barenco et al. Lemma 5.1):
   with U = e^{i.alpha} Rz(beta) Ry(gamma) Rz(delta),
     A = Rz(beta) Ry(gamma/2)
     B = Ry(-gamma/2) Rz(-(delta+beta)/2)
     C = Rz((delta-beta)/2)
   then A X B X C = U and A B C = I, so
     CU = P(alpha)_ctl . A_t . CX . B_t . CX . C_t. *)
let controlled_u ~control ~target (g : Gate.t) =
  let alpha, beta, gamma, delta = zyz_angles (Gate.matrix g) in
  let seq_c =
    if nonzero ((delta -. beta) /. 2.) then
      [ Gate.Rz ((delta -. beta) /. 2.) ]
    else []
  in
  let seq_b =
    (if nonzero ((delta +. beta) /. 2.) then
       [ Gate.Rz (-.(delta +. beta) /. 2.) ]
     else [])
    @ if nonzero gamma then [ Gate.Ry (-.gamma /. 2.) ] else []
  in
  let seq_a =
    (if nonzero gamma then [ Gate.Ry (gamma /. 2.) ] else [])
    @ if nonzero beta then [ Gate.Rz beta ] else []
  in
  let on_target gates = List.map (fun g -> (g, target)) gates in
  let phase =
    if nonzero alpha then [ (Gate.Phase alpha, control) ] else []
  in
  let cx = (Gate.X, -1) in
  (* -1 marks the CX slots *)
  phase @ on_target seq_c @ [ cx ] @ on_target seq_b @ [ cx ]
  @ on_target seq_a
  |> List.concat_map (fun (g, q) ->
         if q = -1 then
           [ Instruction.Unitary (Instruction.app ~controls:[ control ] Gate.X target) ]
         else
           List.map
             (fun g' -> Instruction.Unitary (Instruction.app g' q))
             (native_1q g))

let rewrite_app (a : Instruction.app) =
  match a.controls with
  | [] ->
      List.map
        (fun g -> Instruction.Unitary (Instruction.app g a.target))
        (native_1q a.gate)
  | [ ctl ] ->
      if Gate.equal a.gate Gate.X then [ Instruction.Unitary a ]
      else controlled_u ~control:ctl ~target:a.target a.gate
  | _ :: _ :: _ ->
      invalid_arg
        (Printf.sprintf "Basis.to_native: multi-control gate %s"
           (Gate.name a.gate))

let to_native c =
  let rewrite (i : Instruction.t) =
    match i with
    | Unitary a -> rewrite_app a
    | Conditioned (cond, a) ->
        (* a global phase inside a conditioned block is still global:
           classical branches never interfere *)
        List.map
          (fun (j : Instruction.t) ->
            match j with
            | Unitary a' -> Instruction.Conditioned (cond, a')
            | Conditioned _ | Measure _ | Reset _ | Barrier _ -> j)
          (rewrite_app a)
    | Measure _ | Reset _ | Barrier _ -> [ i ]
  in
  Circ.map_instructions rewrite c

let is_native c =
  List.for_all
    (fun (i : Instruction.t) ->
      match i with
      | Unitary { gate; controls; _ } | Conditioned (_, { gate; controls; _ })
        -> (
          match[@warning "-4"] (gate, controls) with
          | (Gate.Rz _ | Gate.V | Gate.X), [] -> true
          | Gate.X, [ _ ] -> true
          | _ -> false)
      | Measure _ | Reset _ | Barrier _ -> true)
    (Circ.instructions c)
