(** Linear algebra over GF(2) — the classical post-processing substrate
    Simon's algorithm needs (and a useful tool besides: the ANF
    transform, parity arguments, nullspace searches).

    Vectors are ints (bit [k] = coordinate [k], as in [Sim.Bits]). *)

(** [rank ~width vectors]. *)
val rank : width:int -> int list -> int

(** Row-reduce and drop dependent rows; the result is a basis of the
    span, in echelon order. *)
val independent : width:int -> int list -> int list

(** Canonical reduced row-echelon basis of the span: pivots descending,
    and each pivot column appears in exactly one row.  The reduced basis
    of a span is unique, so structural equality of [reduced] outputs
    decides span equality. *)
val reduced : width:int -> int list -> int list

(** [insert ~width rows v] folds one vector into an already-{e reduced}
    basis, keeping it canonical, in O(|rows|) instead of rebuilding with
    [reduced].  When [v] is already in the span the result is physically
    [rows], so callers can detect no-ops with [(==)]. *)
val insert : width:int -> int list -> int -> int list

(** [reduce_by ~width rows v] reduces [v] by an echelon (or reduced)
    basis, returning the residue — [0] iff [v] is in the span. *)
val reduce_by : width:int -> int list -> int -> int

(** [in_span ~width rows v] = [reduce_by ~width rows v = 0]. *)
val in_span : width:int -> int list -> int -> bool

(** [nullspace ~width vectors] is a basis of {s | v.s = 0 for all v}
    (dot product = parity of AND). *)
val nullspace : width:int -> int list -> int list

(** Parity dot product over GF(2). *)
val dot : int -> int -> bool
