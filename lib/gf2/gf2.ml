let dot a b =
  let rec popcount acc v =
    if v = 0 then acc else popcount (acc + (v land 1)) (v lsr 1)
  in
  popcount 0 (a land b) land 1 = 1

(* Highest set bit of [v <> 0] by binary search — the row-reduction
   kernels call this per row per query, so the naive per-bit scan from
   [width - 1] down is the hot spot it replaces. *)
let top_bit v =
  let k, v = if v lsr 32 <> 0 then (32, v lsr 32) else (0, v) in
  let k, v = if v lsr 16 <> 0 then (k + 16, v lsr 16) else (k, v) in
  let k, v = if v lsr 8 <> 0 then (k + 8, v lsr 8) else (k, v) in
  let k, v = if v lsr 4 <> 0 then (k + 4, v lsr 4) else (k, v) in
  let k, v = if v lsr 2 <> 0 then (k + 2, v lsr 2) else (k, v) in
  if v lsr 1 <> 0 then k + 1 else k

(* Gaussian elimination: returns (pivot column, row) list in echelon
   form, highest pivot first *)
let echelon ~width vectors =
  let rows = ref [] in
  (* rows: (pivot, value) sorted by pivot descending *)
  let reduce v =
    List.fold_left
      (fun v (pivot, row) ->
        if (v lsr pivot) land 1 = 1 then v lxor row else v)
      v !rows
  in
  List.iter
    (fun v ->
      let v = reduce (v land ((1 lsl width) - 1)) in
      if v <> 0 then begin
        let pivot = top_bit v in
        rows :=
          List.sort (fun (a, _) (b, _) -> compare b a) ((pivot, v) :: !rows)
      end)
    vectors;
  !rows

let rank ~width vectors = List.length (echelon ~width vectors)
let independent ~width vectors = List.map snd (echelon ~width vectors)

(* Canonical reduced row echelon basis: back-substitute so each pivot
   column appears in exactly one row, then keep the pivot-descending
   order.  The reduced basis of a span is unique, so structural
   equality of [reduced] outputs decides span equality. *)
let reduced ~width vectors =
  let rows = Array.of_list (echelon ~width vectors) in
  let n = Array.length rows in
  (* rows are pivot-descending; clearing pivot p of row i from the
     rows above it never disturbs their own (higher) pivots *)
  for i = 0 to n - 1 do
    let pivot, _ = rows.(i) in
    for j = 0 to i - 1 do
      let pj, vj = rows.(j) in
      if (vj lsr pivot) land 1 = 1 then rows.(j) <- (pj, vj lxor snd rows.(i))
    done
  done;
  Array.to_list (Array.map snd rows)

(* Canonical insertion: fold one vector into an already-reduced basis
   in O(rows) without rebuilding it.  Physically returns [rows] itself
   when [v] is dependent, so callers can cheaply detect no-ops. *)
let insert ~width rows v =
  let v =
    List.fold_left
      (fun v row ->
        if row <> 0 && (v lsr top_bit row) land 1 = 1 then v lxor row else v)
      (v land ((1 lsl width) - 1))
      rows
  in
  if v = 0 then rows
  else begin
    let pivot = top_bit v in
    (* clear the new pivot column from the rows above it and splice the
       new row in pivot-descending position; lower rows cannot contain
       the pivot or [v] would have been further reduced *)
    let rec go = function
      | [] -> [ v ]
      | r :: rest ->
          if top_bit r < pivot then v :: r :: rest
          else (if (r lsr pivot) land 1 = 1 then r lxor v else r) :: go rest
    in
    go rows
  end

let reduce_by ~width rows v =
  let v = v land ((1 lsl width) - 1) in
  List.fold_left
    (fun v row ->
      if row <> 0 && (v lsr top_bit row) land 1 = 1 then v lxor row else v)
    v rows

let in_span ~width rows v = reduce_by ~width rows v = 0

let nullspace ~width vectors =
  let rows = echelon ~width vectors in
  let pivots = List.map fst rows in
  let free = List.filter (fun k -> not (List.mem k pivots)) (List.init width (fun k -> k)) in
  (* for each free column f, build the solution with s_f = 1 and pivot
     coordinates chosen to cancel *)
  List.map
    (fun f ->
      let s = ref (1 lsl f) in
      (* process rows bottom-up (lowest pivot first) so each pivot is
         fixed after all coordinates it depends on *)
      List.iter
        (fun (pivot, row) ->
          if dot row !s then s := !s lxor (1 lsl pivot))
        (List.sort (fun (a, _) (b, _) -> compare a b) rows);
      !s)
    free
