(** Experiment runners that regenerate every table and figure of the
    paper's evaluation (Section V), printing measured values next to
    the published ones.

    - {!table1_report}: Table I — Toffoli-free circuits (BV + DJ);
    - {!table2_report}: Table II — Toffoli-based DJ circuits;
    - {!fig7_report}: Fig 7 — computational accuracy of traditional /
      dynamic-1 / dynamic-2 under 1024-shot noiseless simulation;
    - {!equivalence_report}: the §V-A functional-equivalence claim,
      checked exactly (TV distance of exact distributions).

    Conventions are documented in DESIGN.md; measured dynamic gate
    counts are taken after expanding CV/CV† with Fig 6. *)

type table1_row = {
  name : string;
  qubits_trad : int;
  qubits_dyn : int;
  gates_trad : int;
  gates_dyn : int;
  depth_trad : int;
  depth_dyn : int;
  tv : float;  (** exact TV distance traditional vs dynamic *)
  certified : bool;
      (** the symbolic certifier proved channel equality (exact, no
          simulation) *)
}

type table2_row = {
  name : string;
  qubits_trad : int;
  qubits_dyn : int;
  gates_trad : int;
  gates_dyn1 : int;
  gates_dyn2 : int;
  depth_trad : int;
  depth_dyn1 : int;
  depth_dyn2 : int;
  tv_dyn1 : float;
  tv_dyn2 : float;
  violations_dyn1 : int;
  violations_dyn2 : int;
  certified_dyn1 : bool;  (** channel-scope symbolic proof *)
  certified_dyn2 : bool;  (** channel-scope symbolic proof *)
}

type fig7_row = {
  name : string;
  accuracy_trad : float;
  accuracy_dyn1 : float;
  accuracy_dyn2 : float;
      (** 1 - TV(1024-shot empirical joint, exact ideal joint) *)
  exact_dyn1 : float;
  exact_dyn2 : float;  (** sampling-free accuracies, 1 - exact TV *)
}

type mct_row = {
  name : string;
  arity : int;
  gates_trad : int;
  direct_gates : int;
  direct_iters : int;
  direct_conditioned : int;
  direct_tv : float;
  dyn1_gates : int;
  dyn1_iters : int;
  dyn1_tv : float;
  dyn2_gates : int;
  dyn2_iters : int;
  dyn2_tv : float;
}

val table1_rows : unit -> table1_row list
val table2_rows : unit -> table2_row list
val fig7_rows : ?shots:int -> ?seed:int -> unit -> fig7_row list

(** The future-work experiment: dynamic realizations of
    multiple-control Toffoli oracles — the direct conjunctive-condition
    scheme versus the V-chain-reduction + dynamic-1/2 routes.  Every
    realization uses exactly 2 physical qubits. *)
val mct_rows : unit -> mct_row list

val table1_report : unit -> string
val table2_report : unit -> string
val fig7_report : ?shots:int -> ?seed:int -> unit -> string
val equivalence_report : unit -> string

val mct_report : unit -> string

type routing_row = {
  hidden_bits : int;
  trad_qubits : int;
  trad_gates : int;
  trad_swaps : int;  (** identity initial layout *)
  trad_swaps_placed : int;  (** greedy interaction-aware layout *)
  trad_routed_gates : int;
  dyn_qubits : int;
  dyn_gates : int;
  dyn_swaps : int;
}

(** Routing study (extension): traditional BV_1..1 routed onto a
    linear-topology device versus the 2-qubit dynamic realization,
    which never needs a SWAP — the scalability argument of DQC made
    quantitative. *)
val routing_rows : unit -> routing_row list

val routing_report : unit -> string

type duration_row = {
  benchmark : string;
  trad_us : float;
  dyn1_us : float option;  (** None for Toffoli-free benchmarks *)
  dyn2_us : float option;
  dyn_us : float option;  (** the single dynamic form, when schemes coincide *)
}

(** Wall-clock study (extension): critical-path duration under the
    device timing model of {!Circuit.Metrics.default_timing} — the
    time cost of trading qubits for mid-circuit measurement, reset and
    feed-forward. *)
val duration_rows : unit -> duration_row list

val duration_report : unit -> string

type scale_row = {
  bits : int;
  trad_tableau_qubits : int;
  dyn_tableau_qubits : int;
  dyn_gate_total : int;
  recovered : bool;  (** hidden string read back deterministically *)
  ms_per_shot : float;
}

(** Scalability study (extension): BV far beyond the statevector limit
    via the stabilizer tableau — one shot of the 2-qubit dynamic
    realization recovers an n-bit hidden string deterministically. *)
val scale_rows : unit -> scale_row list

val scale_report : unit -> string

type slots_row = {
  benchmark : string;
  scheme : string;
  trad_qubits : int;
  tv_at_1 : float;  (** Algorithm 1 at the paper's design point *)
  min_slots : int option;  (** smallest sound-certified slot count *)
  certified_qubits : int option;  (** total qubits at that point *)
}

(** E11 (extension): the qubit-accuracy frontier of the generalized
    multi-slot transformation — how many physical data qubits each
    benchmark needs before the dynamic realization is provably exact. *)
val slots_rows : unit -> slots_row list

val slots_report : unit -> string

type reuse_row = {
  name : string;
  prep : string;  (** Toffoli scheme applied before the reuse pass *)
  qubits_before : int;
  qubits_after : int;
  saved : int;
  resets : int;  (** resets inserted when re-hosting a retired wire *)
  pruned : int;  (** resets later proved redundant and dropped *)
  certified : bool;
      (** the path-sum channel certifier proved the rewiring *)
  verdict : string;  (** the certifier's verdict, verbatim *)
  reuse_ms : float;  (** CPU time inside the reuse pass *)
  certify_ms : float;  (** CPU time inside the certification gate *)
}

(** E12 (extension): the general causal-cone qubit-reuse pass
    ({!Dqc.Reuse}) over the algorithm benchmarks — Grover, Kitaev QPE,
    Simon and the Cuccaro adder (the negative control: its qubits
    interlock, so nothing retires).  Every rewiring is proved
    channel-equivalent symbolically; nothing is sampled. *)
val reuse_rows : unit -> reuse_row list

val reuse_report : unit -> string

type sparsity_row = {
  name : string;
  scheme : string;  (** traditional / dyn1 / dyn2 *)
  qubits : int;
  segments : int;  (** analyzer segments (split_prefix boundaries) *)
  clifford : bool;  (** analyzer verdict (witness-based, per segment) *)
  log2_bound : int;
      (** static peak bound on log2(nonzero amplitudes),
          {!Lint.Resource.summary.log2_bound_peak} *)
  log2_measured : int;
      (** ceil log2 of the peak nonzero-amplitude count observed while
          replaying the circuit densely over several seeds *)
  sound : bool;  (** [log2_measured <= log2_bound] *)
  engine : string;  (** what [Sim.Backend.select Auto] picks *)
  plan : string;
      (** per-segment engine plan ({!Sim.Backend.segment_plan}),
          summarized as ["all dense"], ["all sparse"] or ["k/n sparse"];
          ["-"] when Auto bypasses segment planning (stabilizer/exact) *)
}

(** E13 (extension): the relational analyzer's static sparsity bounds
    against measured dense sparsity, per benchmark x scheme
    (traditional / dynamic-1 / dynamic-2) plus the adaptive-parity
    per-segment-Clifford workload.  Every row must be sound — the
    differential gate ([bench analyze-gate]) enforces the same
    dominance over hundreds of random circuits. *)
val sparsity_rows : unit -> sparsity_row list

val sparsity_report : unit -> string

type optimize_row = {
  name : string;
  scheme : string;  (** dyn / traditional / dyn1 / dyn2 / reuse *)
  gates_before : int;
  gates_after : int;
  depth_before : int;  (** dynamic depth *)
  depth_after : int;
  folded : int;  (** constant measurements deleted *)
  resets_removed : int;  (** redundant or unobservable resets *)
  uncomputes : int;  (** dead conditioned uncomputations cancelled *)
  sweeps : int;
  proved : bool;  (** every accepted rewrite carried a [Proved] *)
}

(** E14 (extension): the certified optimizer ({!Dqc.Optimize}) over
    the Table I benchmarks (dynamic form), the Table II benchmarks
    (traditional / dynamic-1 / dynamic-2, after CV expansion — the
    same convention as Table II's metrics), and the reuse corpus
    compiled {e without} its reset-pruning stage so the optimizer's
    dce sweep is the one discharging the provably-redundant resets.
    Every accepted rewrite is certified by
    {!Verify.Certify.check_channel}; nothing is sampled. *)
val optimize_rows : unit -> optimize_row list

val optimize_report : unit -> string

(** One optimizer run packaged as a report row — what the corpus rows
    are built from, exposed for the CLI's single-benchmark mode.
    @raise Dqc.Optimize.Refuted as {!Dqc.Optimize.run} does. *)
val optimize_entry :
  name:string -> scheme:string -> Circuit.Circ.t -> optimize_row

(** All reports concatenated. *)
val full_report : ?shots:int -> ?seed:int -> unit -> string
