open Circuit

type table1_row = {
  name : string;
  qubits_trad : int;
  qubits_dyn : int;
  gates_trad : int;
  gates_dyn : int;
  depth_trad : int;
  depth_dyn : int;
  tv : float;
  certified : bool;
}

type table2_row = {
  name : string;
  qubits_trad : int;
  qubits_dyn : int;
  gates_trad : int;
  gates_dyn1 : int;
  gates_dyn2 : int;
  depth_trad : int;
  depth_dyn1 : int;
  depth_dyn2 : int;
  tv_dyn1 : float;
  tv_dyn2 : float;
  violations_dyn1 : int;
  violations_dyn2 : int;
  certified_dyn1 : bool;
  certified_dyn2 : bool;
}

type fig7_row = {
  name : string;
  accuracy_trad : float;
  accuracy_dyn1 : float;
  accuracy_dyn2 : float;
  exact_dyn1 : float;
  exact_dyn2 : float;
}

(* ------------------------------------------------------------------ *)
(* Table I: Toffoli-free circuits                                     *)

(* only a channel-scope proof counts here: a dynamics-scope verdict
   (Algorithm 1 with violations) coexists with a genuinely non-zero
   TV distance, which these tables print alongside *)
let channel_certified traditional (r : Dqc.Transform.result) =
  match Dqc.Certifier.certify traditional r with
  | Verify.Certify.Proved { scope = Verify.Certify.Channel; _ } -> true
  | Verify.Certify.Proved { scope = Verify.Certify.Dynamics; _ }
  | Verify.Certify.Refuted _ | Verify.Certify.Unknown _ ->
      false

let table1_entry name traditional =
  let r = Dqc.Transform.transform traditional in
  {
    name;
    qubits_trad = Circ.num_qubits traditional;
    qubits_dyn = Circ.num_qubits r.circuit;
    gates_trad = Metrics.gate_count traditional;
    gates_dyn = Metrics.gate_count r.circuit;
    depth_trad = Metrics.traditional_depth traditional;
    depth_dyn = Metrics.dynamic_depth r.circuit;
    tv = Dqc.Equivalence.tv_distance traditional r;
    certified = channel_certified traditional r;
  }

let table1_rows () =
  List.map
    (fun s -> table1_entry ("BV_" ^ s) (Algorithms.Bv.circuit s))
    Algorithms.Bv.paper_benchmarks
  @ List.map
      (fun (o : Algorithms.Oracle.t) ->
        table1_entry o.name (Algorithms.Dj.circuit o))
      Algorithms.Dj.toffoli_free_oracles

(* ------------------------------------------------------------------ *)
(* Table II: Toffoli-based DJ circuits                                *)

let dynamic_metrics r =
  let expanded = Decompose.Pass.expand_cv r.Dqc.Transform.circuit in
  (Metrics.gate_count expanded, Metrics.dynamic_depth expanded)

let table2_entry (o : Algorithms.Oracle.t) =
  let dj = Algorithms.Dj.circuit o in
  let traditional = Decompose.Pass.substitute_toffoli `Clifford_t dj in
  let r1 = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_1 dj in
  let r2 = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2 dj in
  let gates_dyn1, depth_dyn1 = dynamic_metrics r1 in
  let gates_dyn2, depth_dyn2 = dynamic_metrics r2 in
  {
    name = o.name;
    qubits_trad = Circ.num_qubits dj;
    qubits_dyn = Circ.num_qubits r1.circuit;
    gates_trad = Metrics.gate_count traditional;
    gates_dyn1;
    gates_dyn2;
    depth_trad = Metrics.traditional_depth traditional;
    depth_dyn1;
    depth_dyn2;
    tv_dyn1 = Dqc.Equivalence.tv_distance dj r1;
    tv_dyn2 = Dqc.Equivalence.tv_distance dj r2;
    violations_dyn1 = List.length r1.violations;
    violations_dyn2 = List.length r2.violations;
    certified_dyn1 = channel_certified dj r1;
    certified_dyn2 = channel_certified dj r2;
  }

let table2_rows () = List.map table2_entry Algorithms.Dj_toffoli.oracles

(* ------------------------------------------------------------------ *)
(* Fig 7: computational accuracy                                      *)

(* joint outcome = data bits (as assigned by the transformation) then
   answer bits; ideal reference is the exact traditional joint *)
let fig7_entry ~shots ~seed (o : Algorithms.Oracle.t) =
  let dj = Algorithms.Dj.circuit o in
  let r1 = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_1 dj in
  let r2 = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2 dj in
  let ideal = Dqc.Equivalence.traditional_distribution dj r1 in
  let num_data = List.length r1.data_bit in
  let trad_measures =
    r1.data_bit @ List.mapi (fun k (q, _) -> (q, num_data + k)) r1.answer_phys
  in
  let dyn_measures (r : Dqc.Transform.result) =
    List.mapi (fun k (_, phys) -> (phys, num_data + k)) r.answer_phys
  in
  let accuracy_of hist = 1. -. Sim.Dist.tv_distance (Sim.Runner.to_dist hist) ideal in
  let accuracy_trad =
    accuracy_of
      (Sim.Backend.run_measured ~seed ~shots ~measures:trad_measures dj)
  in
  let dyn_accuracy (r : Dqc.Transform.result) =
    accuracy_of
      (Sim.Backend.run_measured ~seed:(seed + 1) ~shots
         ~measures:(dyn_measures r) r.circuit)
  in
  {
    name = o.name;
    accuracy_trad;
    accuracy_dyn1 = dyn_accuracy r1;
    accuracy_dyn2 = dyn_accuracy r2;
    exact_dyn1 = 1. -. Dqc.Equivalence.tv_distance dj r1;
    exact_dyn2 = 1. -. Dqc.Equivalence.tv_distance dj r2;
  }

let fig7_rows ?(shots = 1024) ?(seed = 0xF1607) () =
  List.map (fig7_entry ~shots ~seed) Algorithms.Dj_toffoli.oracles

(* ------------------------------------------------------------------ *)
(* Future work: dynamic multiple-control Toffoli realizations         *)

type mct_row = {
  name : string;
  arity : int;
  gates_trad : int;
  direct_gates : int;
  direct_iters : int;
  direct_conditioned : int;
  direct_tv : float;
  dyn1_gates : int;
  dyn1_iters : int;
  dyn1_tv : float;
  dyn2_gates : int;
  dyn2_iters : int;
  dyn2_tv : float;
}

let mct_entry (o : Algorithms.Oracle.t) =
  let dj = Algorithms.Dj.circuit o in
  let traditional = Decompose.Pass.substitute_toffoli `Clifford_t dj in
  let direct = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Direct_mct dj in
  let r1 = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_1 dj in
  let r2 = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2 dj in
  let gates r = fst (dynamic_metrics r) in
  {
    name = o.name;
    arity = o.arity;
    gates_trad = Metrics.gate_count traditional;
    direct_gates = Metrics.gate_count direct.circuit;
    direct_iters = List.length direct.iteration_order;
    direct_conditioned = Dqc.Transform.conditioned_count direct;
    direct_tv = Dqc.Equivalence.tv_distance dj direct;
    dyn1_gates = gates r1;
    dyn1_iters = List.length r1.iteration_order;
    dyn1_tv = Dqc.Equivalence.tv_distance dj r1;
    dyn2_gates = gates r2;
    dyn2_iters = List.length r2.iteration_order;
    dyn2_tv = Dqc.Equivalence.tv_distance dj r2;
  }

let mct_rows () = List.map mct_entry Algorithms.Mct_bench.suite

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)

let sf f = Printf.sprintf "%.4f" f

let paper_pair mine paper = Printf.sprintf "%d/%d" mine paper

let table1_report () =
  let rows =
    List.map
      (fun (r : table1_row) ->
        let p =
          match Paper_data.table1_find r.name with
          | Some p -> p
          | None -> assert false
        in
        [
          r.name;
          paper_pair r.qubits_trad p.Paper_data.qubits_trad;
          paper_pair r.qubits_dyn p.Paper_data.qubits_dyn;
          paper_pair r.gates_trad p.Paper_data.gates_trad;
          paper_pair r.gates_dyn p.Paper_data.gates_dyn;
          paper_pair r.depth_trad p.Paper_data.depth_trad;
          paper_pair r.depth_dyn p.Paper_data.depth_dyn;
          sf r.tv;
          (if r.certified then "yes" else "no");
        ])
      (table1_rows ())
  in
  Table.render_titled
    ~title:
      "Table I: Toffoli-free quantum circuits (each cell: measured/paper)"
    ~headers:
      [
        "Benchmark"; "Qubit tradi"; "Qubit dyna"; "Gate tradi"; "Gate dyna";
        "Depth tradi"; "Depth dyna"; "TV dist"; "Certified";
      ]
    ~rows ()

let table2_report () =
  let rows =
    List.map
      (fun (r : table2_row) ->
        let p =
          match Paper_data.table2_find r.name with
          | Some p -> p
          | None -> assert false
        in
        [
          r.name;
          paper_pair r.qubits_trad p.Paper_data.qubits_trad;
          paper_pair r.qubits_dyn p.Paper_data.qubits_dyn;
          paper_pair r.gates_trad p.Paper_data.gates_trad;
          paper_pair r.gates_dyn1 p.Paper_data.gates_dyn1;
          paper_pair r.gates_dyn2 p.Paper_data.gates_dyn2;
          paper_pair r.depth_trad p.Paper_data.depth_trad;
          paper_pair r.depth_dyn1 p.Paper_data.depth_dyn1;
          paper_pair r.depth_dyn2 p.Paper_data.depth_dyn2;
          (if r.certified_dyn1 then "yes" else "no");
          (if r.certified_dyn2 then "yes" else "no");
        ])
      (table2_rows ())
  in
  Table.render_titled
    ~title:
      "Table II: Toffoli-based DJ quantum circuits (each cell: measured/paper)"
    ~headers:
      [
        "Benchmark"; "Qubit tradi"; "Qubit dyn"; "Gate tradi"; "Gate dyn1";
        "Gate dyn2"; "Depth tradi"; "Depth dyn1"; "Depth dyn2";
        "Cert dyn1"; "Cert dyn2";
      ]
    ~rows ()

let fig7_report ?shots ?seed () =
  let rows =
    List.map
      (fun (r : fig7_row) ->
        [
          r.name;
          sf r.accuracy_trad;
          sf r.accuracy_dyn1;
          sf r.accuracy_dyn2;
          sf r.exact_dyn1;
          sf r.exact_dyn2;
        ])
      (fig7_rows ?shots ?seed ())
  in
  Table.render_titled
    ~title:
      "Fig 7: computational accuracy (1 - TV to ideal; 1024 noiseless shots)"
    ~headers:
      [
        "Benchmark"; "tradi"; "dynamic-1"; "dynamic-2"; "exact dyn1";
        "exact dyn2";
      ]
    ~rows ()

let mct_report () =
  let rows =
    List.map
      (fun (r : mct_row) ->
        [
          r.name;
          string_of_int r.arity;
          string_of_int r.gates_trad;
          string_of_int r.direct_gates;
          string_of_int r.direct_iters;
          string_of_int r.direct_conditioned;
          sf r.direct_tv;
          string_of_int r.dyn1_gates;
          string_of_int r.dyn1_iters;
          sf r.dyn1_tv;
          string_of_int r.dyn2_gates;
          string_of_int r.dyn2_iters;
          sf r.dyn2_tv;
        ])
      (mct_rows ())
  in
  Table.render_titled
    ~title:
      "Future work: dynamic MCT realizations on 2 qubits (DJ with C^nX oracles)"
    ~headers:
      [
        "Benchmark"; "n"; "trad g"; "dir g"; "dir it"; "dir cc"; "dir TV";
        "dyn1 g"; "dyn1 it"; "dyn1 TV"; "dyn2 g"; "dyn2 it"; "dyn2 TV";
      ]
    ~rows ()

type routing_row = {
  hidden_bits : int;
  trad_qubits : int;
  trad_gates : int;
  trad_swaps : int;
  trad_swaps_placed : int;  (* with the greedy initial layout *)
  trad_routed_gates : int;
  dyn_qubits : int;
  dyn_gates : int;
  dyn_swaps : int;
}

let routing_entry n =
  let s = String.make n '1' in
  let traditional = Algorithms.Bv.circuit s in
  let coupling = Transpile.Coupling.line (n + 1) in
  let routed = Transpile.Route.run ~coupling traditional in
  let placed = Transpile.Placement.route_with_placement ~coupling traditional in
  let dynamic = Dqc.Transform.transform traditional in
  let dyn_routed =
    Transpile.Route.run ~coupling:(Transpile.Coupling.line 2) dynamic.circuit
  in
  {
    hidden_bits = n;
    trad_qubits = Circ.num_qubits traditional;
    trad_gates = Metrics.gate_count traditional;
    trad_swaps = routed.Transpile.Route.swaps_inserted;
    trad_swaps_placed = placed.Transpile.Route.swaps_inserted;
    trad_routed_gates = Metrics.gate_count routed.Transpile.Route.circuit;
    dyn_qubits = Circ.num_qubits dynamic.circuit;
    dyn_gates = Metrics.gate_count dynamic.circuit;
    dyn_swaps = dyn_routed.Transpile.Route.swaps_inserted;
  }

let routing_rows () = List.map routing_entry [ 2; 3; 4; 6; 8; 12; 16 ]

let routing_report () =
  let rows =
    List.map
      (fun (r : routing_row) ->
        [
          Printf.sprintf "BV-%d" r.hidden_bits;
          string_of_int r.trad_qubits;
          string_of_int r.trad_gates;
          string_of_int r.trad_swaps;
          string_of_int r.trad_swaps_placed;
          string_of_int r.trad_routed_gates;
          string_of_int r.dyn_qubits;
          string_of_int r.dyn_gates;
          string_of_int r.dyn_swaps;
        ])
      (routing_rows ())
  in
  Table.render_titled
    ~title:
      "Routing study: BV on a linear-topology device (traditional vs dynamic)"
    ~headers:
      [
        "Benchmark"; "trad qubits"; "trad gates"; "trad SWAPs";
        "placed SWAPs"; "trad routed gates"; "dyn qubits"; "dyn gates";
        "dyn SWAPs";
      ]
    ~rows ()

type duration_row = {
  benchmark : string;
  trad_us : float;
  dyn1_us : float option;
  dyn2_us : float option;
  dyn_us : float option;
}

let us c = Metrics.duration c /. 1000.

let duration_rows () =
  let bv n =
    let s = String.make n '1' in
    let c = Algorithms.Bv.circuit s in
    let r = Dqc.Transform.transform c in
    {
      benchmark = Printf.sprintf "BV-%d" n;
      trad_us = us c;
      dyn1_us = None;
      dyn2_us = None;
      dyn_us = Some (us r.circuit);
    }
  in
  let dj name =
    let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name name) in
    let c = Algorithms.Dj.circuit o in
    let traditional = Decompose.Pass.substitute_toffoli `Clifford_t c in
    let r1 = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_1 c in
    let r2 = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2 c in
    {
      benchmark = "DJ(" ^ name ^ ")";
      trad_us = us traditional;
      dyn1_us = Some (us (Decompose.Pass.expand_cv r1.circuit));
      dyn2_us = Some (us (Decompose.Pass.expand_cv r2.circuit));
      dyn_us = None;
    }
  in
  [ bv 4; bv 8; bv 16; dj "AND"; dj "OR"; dj "CARRY" ]

let duration_report () =
  let opt = function None -> "-" | Some v -> Printf.sprintf "%.2f" v in
  let rows =
    List.map
      (fun (r : duration_row) ->
        [
          r.benchmark;
          Printf.sprintf "%.2f" r.trad_us;
          opt r.dyn_us;
          opt r.dyn1_us;
          opt r.dyn2_us;
        ])
      (duration_rows ())
  in
  Table.render_titled
    ~title:
      "Wall-clock study: critical path in microseconds (35ns 1q / 300ns 2q /\n\
       700ns measure / 840ns reset / 660ns feed-forward)"
    ~headers:[ "Benchmark"; "traditional"; "dynamic"; "dynamic-1"; "dynamic-2" ]
    ~rows ()

type scale_row = {
  bits : int;
  trad_tableau_qubits : int;
  dyn_tableau_qubits : int;
  dyn_gate_total : int;
  recovered : bool;
  ms_per_shot : float;
}

let scale_entry n =
  let s = String.init n (fun k -> if k mod 3 = 0 then '1' else '0') in
  let c = Algorithms.Bv.circuit s in
  let r = Dqc.Transform.transform c in
  let expected = Algorithms.Bv.expected_outcome s in
  let rng = Random.State.make [| 0x5CA1E |] in
  let shots = 20 in
  let t0 = Sys.time () in
  let recovered = ref true in
  for _ = 1 to shots do
    let st = Sim.Stabilizer.run ~rng r.circuit in
    if Sim.Stabilizer.register st <> expected then recovered := false
  done;
  let t1 = Sys.time () in
  {
    bits = n;
    trad_tableau_qubits = Circ.num_qubits c;
    dyn_tableau_qubits = Circ.num_qubits r.circuit;
    dyn_gate_total = Metrics.gate_count r.circuit;
    recovered = !recovered;
    ms_per_shot = (t1 -. t0) *. 1000. /. float_of_int shots;
  }

let scale_rows () = List.map scale_entry [ 8; 16; 32; 48; 60 ]

let scale_report () =
  let rows =
    List.map
      (fun (r : scale_row) ->
        [
          Printf.sprintf "BV-%d" r.bits;
          string_of_int r.trad_tableau_qubits;
          string_of_int r.dyn_tableau_qubits;
          string_of_int r.dyn_gate_total;
          string_of_bool r.recovered;
          Printf.sprintf "%.3f" r.ms_per_shot;
        ])
      (scale_rows ())
  in
  Table.render_titled
    ~title:
      "Scalability study: dynamic BV on the stabilizer engine (statevector \
       caps at 24 qubits)"
    ~headers:
      [
        "Benchmark"; "trad qubits"; "dyn qubits"; "dyn gates"; "recovered";
        "ms/shot";
      ]
    ~rows ()

type slots_row = {
  benchmark : string;
  scheme : string;
  trad_qubits : int;
  tv_at_1 : float;
  min_slots : int option;
  certified_qubits : int option;
}

let slots_entry ~benchmark ~scheme ~trad_qubits prepared =
  let tv_at_1 =
    match Dqc.Transform.transform prepared with
    | r1 -> Dqc.Equivalence.tv_distance prepared r1
    | exception (Dqc.Transform.Not_transformable _ | Dqc.Interaction.Cyclic _)
      ->
        Float.nan
  in
  let min_slots = Dqc.Multi_transform.min_exact_slots prepared in
  let certified_qubits =
    Option.map
      (fun k ->
        let m = Dqc.Multi_transform.transform ~mode:`Sound ~slots:k prepared in
        Circ.num_qubits m.Dqc.Multi_transform.circuit)
      min_slots
  in
  { benchmark; scheme; trad_qubits; tv_at_1; min_slots; certified_qubits }

let slots_rows () =
  let bv =
    let c = Algorithms.Bv.circuit "1011" in
    [ slots_entry ~benchmark:"BV-4" ~scheme:"-" ~trad_qubits:(Circ.num_qubits c) c ]
  in
  let simon =
    let c = Algorithms.Simon.circuit "101" in
    [ slots_entry ~benchmark:"SIMON-3" ~scheme:"-" ~trad_qubits:(Circ.num_qubits c) c ]
  in
  let dj name =
    let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name name) in
    let c = Algorithms.Dj.circuit o in
    List.map
      (fun (label, scheme) ->
        slots_entry ~benchmark:("DJ(" ^ name ^ ")") ~scheme:label
          ~trad_qubits:(Circ.num_qubits c)
          (Dqc.Toffoli_scheme.prepare scheme c))
      [ ("dyn1", Dqc.Toffoli_scheme.Dynamic_1); ("dyn2", Dqc.Toffoli_scheme.Dynamic_2) ]
  in
  let mct n =
    let c = Algorithms.Dj.circuit (Algorithms.Mct_bench.and_n n) in
    [
      slots_entry
        ~benchmark:(Printf.sprintf "DJ(AND_%d)" n)
        ~scheme:"dyn1" ~trad_qubits:(Circ.num_qubits c)
        (Dqc.Toffoli_scheme.prepare Dqc.Toffoli_scheme.Dynamic_1 c);
    ]
  in
  let adder =
    let a, _ = Algorithms.Arithmetic.adder 2 in
    [
      slots_entry ~benchmark:"ADDER-2" ~scheme:"dyn1"
        ~trad_qubits:(Circ.num_qubits a)
        (Decompose.Pass.substitute_toffoli `Barenco a);
    ]
  in
  let grover =
    let g = Algorithms.Grover.circuit ~n:3 ~marked:5 in
    [
      slots_entry ~benchmark:"GROVER-3" ~scheme:"dyn1"
        ~trad_qubits:(Circ.num_qubits g)
        (Decompose.Pass.substitute_toffoli ~mct_reduction:`Dqc `Barenco g);
    ]
  in
  bv @ simon @ dj "AND" @ dj "CARRY" @ mct 4 @ adder @ grover

let slots_report () =
  let rows =
    List.map
      (fun (r : slots_row) ->
        [
          r.benchmark;
          r.scheme;
          string_of_int r.trad_qubits;
          (if Float.is_nan r.tv_at_1 then "-" else sf r.tv_at_1);
          (match r.min_slots with Some k -> string_of_int k | None -> "-");
          (match r.certified_qubits with
          | Some q -> string_of_int q
          | None -> "-");
        ])
      (slots_rows ())
  in
  Table.render_titled
    ~title:
      "Qubit-accuracy frontier: smallest slot count with a sound-certified\n\
       (provably exact) dynamic realization"
    ~headers:
      [
        "Benchmark"; "scheme"; "trad qubits"; "TV @ 1 slot"; "min slots";
        "qubits @ certified";
      ]
    ~rows ()

(* the three evidence levels, strongest first: a symbolic proof from
   the certifier, an exact TV enumeration, a sampled TV estimate *)
let evidence ~certified ~sampled =
  if certified then "symbolic proof"
  else if sampled then "sampled TV"
  else "exact TV"

let equivalence_report () =
  let t1 =
    List.map
      (fun (r : table1_row) ->
        [
          r.name; "dynamic"; sf r.tv;
          evidence ~certified:r.certified ~sampled:false;
          string_of_bool (r.certified || r.tv <= 1e-9);
        ])
      (table1_rows ())
  in
  let t2 =
    List.concat_map
      (fun (r : table2_row) ->
        [
          [
            r.name; "dynamic-1"; sf r.tv_dyn1;
            evidence ~certified:r.certified_dyn1 ~sampled:false;
            string_of_bool (r.certified_dyn1 || r.tv_dyn1 <= 1e-9);
          ];
          [
            r.name; "dynamic-2"; sf r.tv_dyn2;
            evidence ~certified:r.certified_dyn2 ~sampled:false;
            string_of_bool (r.certified_dyn2 || r.tv_dyn2 <= 1e-9);
          ];
        ])
      (table2_rows ())
  in
  Table.render_titled
    ~title:
      "Functional equivalence (exact TV distance, traditional vs dynamic)"
    ~headers:[ "Benchmark"; "Scheme"; "TV distance"; "Evidence"; "Equivalent" ]
    ~rows:(t1 @ t2) ()

(* ------------------------------------------------------------------ *)
(* E12: general causal-cone qubit reuse over the algorithm benchmarks  *)

type reuse_row = {
  name : string;
  prep : string;  (** Toffoli scheme applied before the reuse pass *)
  qubits_before : int;
  qubits_after : int;
  saved : int;
  resets : int;
  pruned : int;
  certified : bool;
  verdict : string;
  reuse_ms : float;  (** CPU time inside the reuse pass *)
  certify_ms : float;  (** CPU time inside the certification gate *)
}

let reuse_suite () =
  let fresh = Dqc.Toffoli_scheme.Dynamic_2_shared `Fresh in
  [
    ("GROVER-3", fresh, Algorithms.Grover.measured ~n:3 ~marked:5);
    ( "QPE-3",
      Dqc.Toffoli_scheme.Traditional,
      Algorithms.Qpe.kitaev ~bits:3 ~phase:(3. /. 8.) );
    ( "QPE-4",
      Dqc.Toffoli_scheme.Traditional,
      Algorithms.Qpe.kitaev ~bits:4 ~phase:(3. /. 8.) );
    ( "SIMON-110",
      Dqc.Toffoli_scheme.Traditional,
      Algorithms.Simon.measured_circuit "110" );
    ( "SIMON-1011",
      Dqc.Toffoli_scheme.Traditional,
      Algorithms.Simon.measured_circuit "1011" );
    ("ADDER-2", Dqc.Toffoli_scheme.Traditional, Algorithms.Arithmetic.measured 2);
  ]

let reuse_rows () =
  List.map
    (fun (name, scheme, circuit) ->
      let options =
        let s = scheme in
        Dqc.Pipeline.Options.(default |> with_scheme s |> with_reuse true)
      in
      let out = Dqc.Pipeline.compile ~options circuit in
      let report =
        match out.Dqc.Pipeline.reuse with
        | Some r -> r
        | None -> failwith "reuse flow produced no reuse report"
      in
      let pass_ms pass =
        List.fold_left
          (fun acc (e : Dqc.Pass_manager.event) ->
            if e.Dqc.Pass_manager.pass = pass then
              acc +. (e.Dqc.Pass_manager.elapsed_ns /. 1e6)
            else acc)
          0. out.Dqc.Pipeline.events
      in
      {
        name;
        prep = Dqc.Toffoli_scheme.to_string scheme;
        qubits_before = report.Dqc.Reuse.qubits_before;
        qubits_after = report.Dqc.Reuse.qubits_after;
        saved = Dqc.Reuse.saved report;
        resets = report.Dqc.Reuse.resets_inserted;
        pruned = report.Dqc.Reuse.resets_pruned;
        certified = out.Dqc.Pipeline.certified;
        verdict =
          (match List.assoc_opt "reuse.verdict" out.Dqc.Pipeline.notes with
          | Some v -> v
          | None -> "-");
        reuse_ms = pass_ms "reuse";
        certify_ms = pass_ms "reuse_certify";
      })
    (reuse_suite ())

let reuse_report () =
  let rows =
    List.map
      (fun (r : reuse_row) ->
        [
          r.name; r.prep;
          string_of_int r.qubits_before;
          string_of_int r.qubits_after;
          string_of_int r.saved;
          string_of_int r.resets;
          string_of_int r.pruned;
          string_of_bool r.certified;
          Printf.sprintf "%.2f" r.reuse_ms;
          Printf.sprintf "%.2f" r.certify_ms;
        ])
      (reuse_rows ())
  in
  Table.render_titled
    ~title:
      "General causal-cone qubit reuse (every rewiring proved by the\n\
       path-sum channel certifier; no sampling)"
    ~headers:
      [
        "Benchmark"; "prep"; "qubits"; "reused"; "saved"; "resets"; "pruned";
        "certified"; "reuse ms"; "certify ms";
      ]
    ~rows ()

(* ------------------------------------------------------------------ *)
(* E13: static sparsity bounds vs measured dense sparsity              *)

type sparsity_row = {
  name : string;
  scheme : string;
  qubits : int;
  segments : int;
  clifford : bool;
  log2_bound : int;
  log2_measured : int;
  sound : bool;
  engine : string;  (** what [Sim.Backend.select Auto] picks *)
  plan : string;  (** per-segment engine plan ("dense,sparse,...") *)
}

(* Replay the circuit on the dense engine instruction by instruction
   and record the peak nonzero-amplitude count — the ground truth the
   analyzer's static bound must dominate on every random branch. *)
let measured_log2_peak ?(seeds = 3) c =
  let nq = Circ.num_qubits c and nb = Circ.num_bits c in
  let peak = ref 1 in
  for s = 0 to seeds - 1 do
    let rng = Random.State.make [| 0xF1607 + s |] in
    let random () = Random.State.float rng 1.0 in
    let st = Sim.State.create nq ~num_bits:nb in
    List.iter
      (fun i ->
        let p =
          Sim.Program.compile_instructions ~fuse:false ~num_qubits:nq
            ~num_bits:nb [ i ]
        in
        Sim.Program.exec ~random st p;
        let v = Sim.State.amplitudes st in
        let nz = ref 0 in
        for k = 0 to Linalg.Cvec.dim v - 1 do
          if Complex.norm2 (Linalg.Cvec.get v k) > 1e-18 then incr nz
        done;
        if !nz > !peak then peak := !nz)
      (Circ.instructions c)
  done;
  let rec lg acc n = if n <= 1 then acc else lg (acc + 1) ((n + 1) / 2) in
  lg 0 !peak

let sparsity_entry ~name ~scheme c =
  let summary = Lint.Resource.analyze c in
  let log2_bound = summary.Lint.Resource.log2_bound_peak in
  let log2_measured = measured_log2_peak c in
  let engine =
    match Sim.Backend.select ~shots:1024 c with
    | `Stabilizer -> "stabilizer"
    | `Exact -> "exact"
    | `Dense -> "dense"
    | `Sparse -> "sparse"
    | `Hybrid -> "hybrid"
  in
  {
    name;
    scheme;
    qubits = Circ.num_qubits c;
    segments = List.length summary.Lint.Resource.segments;
    clifford = summary.Lint.Resource.clifford;
    log2_bound;
    log2_measured;
    sound = log2_measured <= log2_bound;
    engine;
    plan =
      (let plan = Sim.Backend.segment_plan c in
       let total = List.length plan in
       let sparse =
         List.length
           (List.filter
              (fun (p : Sim.Backend.segment_engine) -> p.seg_engine = `Sparse)
              plan)
       in
       if total = 0 then "-"
       else if sparse = 0 then "all dense"
       else if sparse = total then "all sparse"
       else Printf.sprintf "%d/%d sparse" sparse total);
  }

let sparsity_rows () =
  let dj_rows (o : Algorithms.Oracle.t) =
    let dj = Algorithms.Dj.circuit o in
    let dyn scheme =
      (Dqc.Toffoli_scheme.transform scheme dj).Dqc.Transform.circuit
    in
    [
      sparsity_entry ~name:o.Algorithms.Oracle.name ~scheme:"traditional" dj;
      sparsity_entry ~name:o.Algorithms.Oracle.name ~scheme:"dyn1"
        (dyn Dqc.Toffoli_scheme.Dynamic_1);
      sparsity_entry ~name:o.Algorithms.Oracle.name ~scheme:"dyn2"
        (dyn Dqc.Toffoli_scheme.Dynamic_2);
    ]
  in
  let adaptive =
    [
      sparsity_entry ~name:"XORA_8" ~scheme:"traditional"
        (Algorithms.Mct_bench.adaptive_parity 8);
    ]
  in
  List.concat_map dj_rows
    (List.filter
       (fun (o : Algorithms.Oracle.t) ->
         List.mem o.Algorithms.Oracle.name [ "AND"; "OR"; "CARRY" ])
       Algorithms.Dj_toffoli.oracles)
  @ adaptive

let sparsity_report () =
  let rows =
    List.map
      (fun (r : sparsity_row) ->
        [
          r.name; r.scheme;
          string_of_int r.qubits;
          string_of_int r.segments;
          string_of_bool r.clifford;
          string_of_int r.log2_bound;
          string_of_int r.log2_measured;
          string_of_bool r.sound;
          r.engine;
          r.plan;
        ])
      (sparsity_rows ())
  in
  Table.render_titled
    ~title:
      "Static sparsity bounds vs measured dense sparsity (log2 of peak\n\
       nonzero amplitudes; sound = measured <= bound on every seed)"
    ~headers:
      [
        "Benchmark"; "scheme"; "qubits"; "segments"; "clifford"; "bound";
        "measured"; "sound"; "auto engine"; "segment plan";
      ]
    ~rows ()

(* ------------------------------------------------------------------ *)
(* E14: certified optimizer over the benchmark corpus                  *)

type optimize_row = {
  name : string;
  scheme : string;
  gates_before : int;
  gates_after : int;
  depth_before : int;
  depth_after : int;
  folded : int;
  resets_removed : int;
  uncomputes : int;
  sweeps : int;
  proved : bool;
}

let optimize_entry ~name ~scheme c =
  let r = Dqc.Optimize.run c in
  let t = r.Dqc.Optimize.total in
  {
    name;
    scheme;
    gates_before = Metrics.gate_count r.Dqc.Optimize.before;
    gates_after = Metrics.gate_count r.Dqc.Optimize.after;
    depth_before = Metrics.dynamic_depth r.Dqc.Optimize.before;
    depth_after = Metrics.dynamic_depth r.Dqc.Optimize.after;
    folded = t.Dqc.Optimize.measures_removed;
    resets_removed = t.Dqc.Optimize.resets_removed;
    uncomputes = t.Dqc.Optimize.uncomputes_removed;
    sweeps = r.Dqc.Optimize.sweeps;
    proved = r.Dqc.Optimize.proved;
  }

(* the reuse corpus compiled with the diagnose-only schedule — the
   prune_resets stage is left out so the optimizer's dce sweep is the
   one removing the provably-redundant resets *)
let optimize_reuse_input scheme circuit =
  let options =
    let s = scheme in
    Dqc.Pipeline.Options.(
      default |> with_scheme s |> with_reuse true
      |> with_passes [ "prepare"; "reuse"; "analyze"; "reuse_certify" ])
  in
  (Dqc.Pipeline.compile ~options circuit).Dqc.Pipeline.circuit

let optimize_rows () =
  let table1 =
    List.concat_map
      (fun (name, traditional) ->
        let r = Dqc.Transform.transform traditional in
        [ optimize_entry ~name ~scheme:"dyn" r.Dqc.Transform.circuit ])
      (List.map
         (fun s -> ("BV_" ^ s, Algorithms.Bv.circuit s))
         Algorithms.Bv.paper_benchmarks
      @ List.map
          (fun (o : Algorithms.Oracle.t) -> (o.name, Algorithms.Dj.circuit o))
          Algorithms.Dj.toffoli_free_oracles)
  in
  let table2 =
    List.concat_map
      (fun (o : Algorithms.Oracle.t) ->
        let dj = Algorithms.Dj.circuit o in
        let traditional = Decompose.Pass.substitute_toffoli `Clifford_t dj in
        let dyn scheme =
          Decompose.Pass.expand_cv
            (Dqc.Toffoli_scheme.transform scheme dj).Dqc.Transform.circuit
        in
        [
          optimize_entry ~name:o.name ~scheme:"traditional" traditional;
          optimize_entry ~name:o.name ~scheme:"dyn1"
            (dyn Dqc.Toffoli_scheme.Dynamic_1);
          optimize_entry ~name:o.name ~scheme:"dyn2"
            (dyn Dqc.Toffoli_scheme.Dynamic_2);
        ])
      Algorithms.Dj_toffoli.oracles
  in
  let reuse =
    List.map
      (fun (name, scheme, circuit) ->
        optimize_entry ~name ~scheme:"reuse"
          (optimize_reuse_input scheme circuit))
      (reuse_suite ())
  in
  table1 @ table2 @ reuse

let optimize_report () =
  let rows =
    List.map
      (fun (r : optimize_row) ->
        [
          r.name; r.scheme;
          string_of_int r.gates_before;
          string_of_int r.gates_after;
          string_of_int r.depth_before;
          string_of_int r.depth_after;
          string_of_int r.folded;
          string_of_int r.resets_removed;
          string_of_int r.uncomputes;
          string_of_int r.sweeps;
          string_of_bool r.proved;
        ])
      (optimize_rows ())
  in
  Table.render_titled
    ~title:
      "Certified optimizer (every accepted rewrite proved\n\
       channel-equivalent by the path-sum certifier; no sampling)"
    ~headers:
      [
        "Benchmark"; "scheme"; "gates"; "opt"; "depth"; "opt"; "folded";
        "resets"; "uncomp"; "sweeps"; "proved";
      ]
    ~rows ()

let full_report ?shots ?seed () =
  String.concat "\n"
    [
      table1_report ();
      table2_report ();
      fig7_report ?shots ?seed ();
      equivalence_report ();
      mct_report ();
      routing_report ();
      duration_report ();
      scale_report ();
      slots_report ();
      reuse_report ();
      sparsity_report ();
      optimize_report ();
    ]

