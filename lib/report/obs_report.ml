(* Human-readable sink for the telemetry layer: render a collector as
   per-span timing and counter/gauge tables.  Lives here (not in
   lib/obs) because obs must stay dependency-free while report already
   owns table rendering. *)

let ms ns = Printf.sprintf "%.3f" (Obs.Clock.ns_to_ms ns)
let us ns = Printf.sprintf "%.1f" (Obs.Clock.ns_to_us ns)

let span_rows c =
  let wall = Obs.Collector.root_wall_ns c in
  let stats = Obs.Collector.span_stats c in
  let by_total =
    List.sort
      (fun (_, a) (_, b) ->
        Int64.compare b.Obs.Collector.total_ns a.Obs.Collector.total_ns)
      stats
  in
  List.map
    (fun (name, (st : Obs.Collector.span_stat)) ->
      let share =
        if wall = 0L then "-"
        else
          Printf.sprintf "%.1f%%"
            (100. *. Int64.to_float st.total_ns /. Int64.to_float wall)
      in
      [
        name;
        string_of_int st.count;
        ms st.total_ns;
        us (Int64.div st.total_ns (Int64.of_int (max 1 st.count)));
        us st.max_ns;
        share;
      ])
    by_total

let span_table c =
  match span_rows c with
  | [] -> "no spans recorded\n"
  | rows ->
      Table.render
        ~headers:[ "span"; "count"; "total ms"; "mean us"; "max us"; "share" ]
        ~rows ()

let counter_rows c =
  List.map
    (fun (name, v) -> [ name; string_of_int v ])
    (Obs.Collector.counters c)
  @ List.map
      (fun (name, v) -> [ name; Printf.sprintf "%.4g" v ])
      (Obs.Collector.gauges c)

let counter_table c =
  match counter_rows c with
  | [] -> "no counters recorded\n"
  | rows -> Table.render ~headers:[ "counter / gauge"; "value" ] ~rows ()

let summary c =
  Printf.sprintf "%s\n%s\n%s\n%s"
    (Table.render_titled ~title:"Spans"
       ~headers:[ "span"; "count"; "total ms"; "mean us"; "max us"; "share" ]
       ~rows:(span_rows c) ())
    ""
    (Table.render_titled ~title:"Counters and gauges"
       ~headers:[ "counter / gauge"; "value" ]
       ~rows:(counter_rows c) ())
    ""
