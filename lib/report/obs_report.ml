(* Human-readable sink for the telemetry layer: render a collector as
   per-span timing and counter/gauge tables.  Lives here (not in
   lib/obs) because obs must stay dependency-free while report already
   owns table rendering. *)

let ms ns = Printf.sprintf "%.3f" (Obs.Clock.ns_to_ms ns)
let us ns = Printf.sprintf "%.1f" (Obs.Clock.ns_to_us ns)
let usi ns = us (Int64.of_int ns)

(* p50/p99 come from the same-name histogram with_span feeds; "-" for
   a span name that somehow has none (it was absorbed empty). *)
let span_percentiles c name =
  match Obs.Collector.histogram c name with
  | Some h when not (Obs.Histogram.is_empty h) ->
      (usi (Obs.Histogram.p50 h), usi (Obs.Histogram.p99 h))
  | Some _ | None -> ("-", "-")

let span_headers =
  [ "span"; "count"; "total ms"; "mean us"; "p50 us"; "p99 us"; "max us"; "share" ]

let span_rows c =
  let wall = Obs.Collector.root_wall_ns c in
  let stats = Obs.Collector.span_stats c in
  let by_total =
    List.sort
      (fun (_, a) (_, b) ->
        Int64.compare b.Obs.Collector.total_ns a.Obs.Collector.total_ns)
      stats
  in
  List.map
    (fun (name, (st : Obs.Collector.span_stat)) ->
      let share =
        if wall = 0L then "-"
        else
          Printf.sprintf "%.1f%%"
            (100. *. Int64.to_float st.total_ns /. Int64.to_float wall)
      in
      let p50, p99 = span_percentiles c name in
      [
        name;
        string_of_int st.count;
        ms st.total_ns;
        us (Int64.div st.total_ns (Int64.of_int (max 1 st.count)));
        p50;
        p99;
        us st.max_ns;
        share;
      ])
    by_total

let span_table c =
  match span_rows c with
  | [] -> "no spans recorded\n"
  | rows -> Table.render ~headers:span_headers ~rows ()

let counter_rows c =
  List.map
    (fun (name, v) -> [ name; string_of_int v ])
    (Obs.Collector.counters c)
  @ List.map
      (fun (name, v) -> [ name; Printf.sprintf "%.4g" v ])
      (Obs.Collector.gauges c)

let counter_table c =
  match counter_rows c with
  | [] -> "no counters recorded\n"
  | rows -> Table.render ~headers:[ "counter / gauge"; "value" ] ~rows ()

let histogram_headers =
  [ "histogram"; "count"; "mean us"; "p50 us"; "p90 us"; "p99 us";
    "p99.9 us"; "max us" ]

let histogram_rows c =
  let named =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Obs.Collector.histograms c)
  in
  List.filter_map
    (fun (name, h) ->
      if Obs.Histogram.is_empty h then None
      else
        Some
          [
            name;
            string_of_int (Obs.Histogram.count h);
            Printf.sprintf "%.1f" (Obs.Histogram.mean h /. 1e3);
            usi (Obs.Histogram.p50 h);
            usi (Obs.Histogram.p90 h);
            usi (Obs.Histogram.p99 h);
            usi (Obs.Histogram.p999 h);
            usi (Obs.Histogram.max_value h);
          ])
    named

let histogram_table c =
  match histogram_rows c with
  | [] -> "no histograms recorded\n"
  | rows -> Table.render ~headers:histogram_headers ~rows ()

let rec take k = function
  | [] -> []
  | x :: rest -> if k <= 0 then [] else x :: take (k - 1) rest

let summary c =
  Printf.sprintf "%s\n%s\n%s\n%s"
    (Table.render_titled ~title:"Spans" ~headers:span_headers
       ~rows:(span_rows c) ())
    ""
    (Table.render_titled ~title:"Counters and gauges"
       ~headers:[ "counter / gauge"; "value" ]
       ~rows:(counter_rows c) ())
    ""

let profile_summary ?(top = 8) c =
  let hot = take top (span_rows c) in
  Printf.sprintf "%s\n%s\n%s\n%s"
    (Table.render_titled
       ~title:
         (Printf.sprintf "Latency histograms (quantile error <= %.3g%%)"
            (100. *. Obs.Histogram.error_bound))
       ~headers:histogram_headers ~rows:(histogram_rows c) ())
    ""
    (Table.render_titled
       ~title:(Printf.sprintf "Hottest spans (top %d by total time)" top)
       ~headers:span_headers ~rows:hot ())
    ""
