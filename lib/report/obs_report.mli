(** Human-readable sink for [Obs] collectors.

    [span_table] aggregates spans by name (sorted by total time, with
    the share of observed wall time), [counter_table] lists every
    counter and gauge, and [summary] stacks both with titles — the
    breakdown [dqc_cli stats] prints. *)

val span_table : Obs.Collector.t -> string
val counter_table : Obs.Collector.t -> string
val summary : Obs.Collector.t -> string
