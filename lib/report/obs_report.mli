(** Human-readable sink for [Obs] collectors.

    [span_table] aggregates spans by name (sorted by total time, with
    p50/p99 from the same-name latency histogram and the share of
    observed wall time), [counter_table] lists every counter and gauge,
    [histogram_table] renders every latency histogram with its
    percentile ladder, and [summary] stacks spans + counters — the
    breakdown [dqc_cli stats] prints.  [profile_summary] is the
    [dqc_cli profile] view: the full histogram ladder plus the top-k
    hottest spans. *)

val span_table : Obs.Collector.t -> string
val counter_table : Obs.Collector.t -> string
val histogram_table : Obs.Collector.t -> string
val summary : Obs.Collector.t -> string

(** [profile_summary ?top c] ([top] defaults to 8). *)
val profile_summary : ?top:int -> Obs.Collector.t -> string
