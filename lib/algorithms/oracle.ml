open Circuit

type t = {
  name : string;
  arity : int;
  instrs : Instruction.t list;
  truth : Boolean_fun.t;
}

let make ~name ~arity ~truth instrs =
  if Boolean_fun.arity truth <> arity then
    invalid_arg "Oracle.make: truth-table arity mismatch";
  let num_qubits = arity + 1 in
  List.iter
    (fun i ->
      if not (Instruction.well_formed ~num_qubits ~num_bits:0 i) then
        invalid_arg
          (Printf.sprintf "Oracle.make(%s): instruction %s out of range" name
             (Instruction.to_string i)))
    instrs;
  { name; arity; instrs; truth }

(* ANF coefficient of monomial S: XOR of f(x) over all x subseteq S
   (binary Moebius transform). *)
let anf_monomials truth =
  let n = Boolean_fun.arity truth in
  let size = 1 lsl n in
  (* in-place Moebius transform over a copy of the truth table *)
  let coeff = Array.init size (fun k -> Boolean_fun.eval truth k) in
  for v = 0 to n - 1 do
    let bit = 1 lsl v in
    for k = 0 to size - 1 do
      if k land bit <> 0 then coeff.(k) <- coeff.(k) <> coeff.(k lxor bit)
    done
  done;
  let monomial_of_mask mask =
    List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n (fun v -> v))
  in
  List.filter_map
    (fun mask -> if coeff.(mask) then Some (monomial_of_mask mask) else None)
    (List.init size (fun mask -> mask))

let synthesize ~name truth =
  let arity = Boolean_fun.arity truth in
  let answer = arity in
  let gate_of_monomial vars =
    match vars with
    | [] -> Instruction.Unitary (Instruction.app Gate.X answer)
    | controls -> Instruction.Unitary (Instruction.app ~controls Gate.X answer)
  in
  make ~name ~arity ~truth (List.map gate_of_monomial (anf_monomials truth))

let implements_truth o =
  let n = o.arity + 1 in
  let ok = ref true in
  for x = 0 to (1 lsl o.arity) - 1 do
    let st = Sim.Statevector.create n ~num_bits:0 in
    for q = 0 to o.arity - 1 do
      if Sim.Bits.get x q then Sim.Statevector.apply_gate st Gate.X q
    done;
    List.iter
      (fun (i : Instruction.t) ->
        match i with
        | Unitary a -> Sim.Statevector.apply_app st a
        | Conditioned _ | Measure _ | Reset _ | Barrier _ ->
            invalid_arg "Oracle.implements_truth: non-unitary oracle")
      o.instrs;
    let expected =
      x lor (if Boolean_fun.eval o.truth x then 1 lsl o.arity else 0)
    in
    let amps = Sim.Statevector.amplitudes st in
    let amp = Linalg.Cvec.get amps expected in
    if not (Linalg.Complex_ext.approx_equal amp Complex.one) then ok := false
  done;
  !ok

let toffoli_count o =
  List.length
    (List.filter
       (fun (i : Instruction.t) ->
         match[@warning "-4"] i with
         | Unitary { gate = Gate.X; controls = [ _; _ ]; _ } -> true
         | Unitary _ | Conditioned _ | Measure _ | Reset _ | Barrier _ ->
             false)
       o.instrs)
