open Circuit

(** Quantum phase estimation, traditional and iterative.

    The paper's §III contrasts BV (iterations freely reorderable) with
    QPE (iterations gate-dependent), citing the dynamic-circuit QPE
    demonstration of Córcoles et al. [3].  This module provides both
    forms for the diagonal unitary [U = P(2.pi.phase)], whose
    eigenstate |1> is trivial to prepare:

    - {!traditional}: [bits] counting qubits, controlled powers of
      [U], inverse QFT, final measurement — a static circuit;
    - {!iterative}: the 2-qubit dynamic realization — one work qubit
      re-used across [bits] iterations with measurement-conditioned
      phase corrections (each iteration depends on every earlier
      outcome, so unlike BV the iterations cannot be permuted).

    Both estimate [phase] as a [bits]-bit binary fraction; when
    [phase = m / 2^bits] exactly, both yield [m] with certainty. *)

(** [traditional ~bits ~phase] — counting qubits 0..bits-1 (role Data,
    qubit k weighting 2^k), eigenstate qubit [bits] (role Answer).
    @raise Invalid_argument unless 1 <= bits <= 10. *)
val traditional : bits:int -> phase:float -> Circ.t

(** [iterative ~bits ~phase] — qubit 0: work qubit (Data), qubit 1:
    eigenstate (Answer); classical bits k holds the k-th binary digit
    (same outcome encoding as {!traditional}). *)
val iterative : bits:int -> phase:float -> Circ.t

(** [kitaev ~bits ~phase] — Kitaev-style per-digit Hadamard tests
    without feed-forward: counting qubit k (Data) is Hadamard-
    sandwiched around [C-P(2.pi.phase.2^k)] on the eigenstate qubit
    [bits] (Answer) and measured into bit k.  The digits' causal cones
    are pairwise disjoint, which makes this the canonical qubit-reuse
    benchmark (see {!Dqc.Reuse}): reuse collapses it to 2 wires.
    @raise Invalid_argument unless 1 <= bits <= 10. *)
val kitaev : bits:int -> phase:float -> Circ.t

(** Exact outcome distribution over the counting register.
    [`Traditional] measures the counting qubits; [`Iterative] reads the
    mid-circuit measurement record. *)
val distribution :
  [ `Traditional | `Iterative ] -> bits:int -> phase:float -> Sim.Dist.t

(** Best [bits]-bit estimate of [phase] (the ideal peak outcome). *)
val best_estimate : bits:int -> phase:float -> int
