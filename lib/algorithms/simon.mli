open Circuit

(** Simon's algorithm, traditional and dynamic.

    A hidden-shift oracle f with f(x) = f(x XOR s) is queried in
    superposition; each run yields a random y with y.s = 0, and n-1
    independent ones determine s by GF(2) elimination ({!Gf2}).

    The standard oracle (y = x XOR (x_j . s) for some j with s_j = 1)
    uses only data->answer CX gates, so Algorithm 1 dynamizes it
    {e exactly}: n data + n answer qubits become 1 + n — and this is a
    case with {e multiple answer qubits}, unlike BV/DJ. *)

(** [oracle s] over data qubits 0..n-1 and answer qubits n..2n-1.
    @raise Invalid_argument when [s] is not a non-zero binary string. *)
val oracle : string -> Instruction.t list

(** [circuit s] — the full Simon circuit: H on data, oracle, H on data
    (data measured by the caller). *)
val circuit : string -> Circ.t

(** [circuit s] with each data qubit measured into its own classical
    bit — the form the qubit-reuse pipeline ({!Dqc.Reuse}) and the
    channel certifier consume.  The answer register stays unmeasured,
    which is what lets reuse chain it onto a single wire. *)
val measured_circuit : string -> Circ.t

(** [sample_constraints ?seed ~runs s ~dynamic] executes the circuit
    (2-qubit-data dynamic realization when [dynamic]) and returns the
    observed data outcomes, each of which satisfies y.s = 0. *)
val sample_constraints :
  ?seed:int -> runs:int -> dynamic:bool -> string -> int list

(** [recover_secret ?seed ?max_runs ~dynamic s] runs Simon end-to-end:
    sample until n-1 independent constraints, solve the nullspace, and
    return the recovered secret (which the caller can compare to [s]).
    Returns [None] when the nullspace is not 1-dimensional within
    [max_runs] (default 200). *)
val recover_secret :
  ?seed:int -> ?max_runs:int -> dynamic:bool -> string -> int option
