(** Multiple-control Toffoli benchmark oracles — workloads for the
    paper's stated future work ("dynamic realization of Multiple
    Control Toffoli gates and their networks").

    Each generator produces an [n]-input oracle whose body is one or a
    few [C^nX] gates, exercising both the direct dynamic MCT
    realization ([Dqc.Transform.transform ~mct:true] /
    [Toffoli_scheme.Direct_mct]) and the decomposition route
    (V-chain reduction followed by dynamic-1 / dynamic-2). *)

(** [and_n n] : f = x0 AND ... AND x_{n-1}, a single C^nX.
    @raise Invalid_argument unless 1 <= n <= 12. *)
val and_n : int -> Oracle.t

(** [or_n n] : f = x0 OR ... OR x_{n-1}, via the ANF synthesizer
    (2^n - 1 monomials — the worst case). *)
val or_n : int -> Oracle.t

(** [nand_n n] : NOT of {!and_n}. *)
val nand_n : int -> Oracle.t

(** [majority_n n] : 1 when more than half the inputs are 1 (odd [n]),
    via the ANF synthesizer. *)
val majority_n : int -> Oracle.t

(** [xor_n n] : parity of the inputs, a chain of [n] CXs — no MCT, so
    it scales to widths the exact checkers cannot reach (the symbolic
    certifier's wide workload).
    @raise Invalid_argument unless 1 <= n <= 20. *)
val xor_n : int -> Oracle.t

(** [adaptive_parity n] : a complete dynamic circuit (not an oracle) —
    [n] data qubits in uniform superposition, a CX parity chain onto an
    answer qubit, then a syndrome-ancilla readout guarding a
    (statically dead) conditioned T/X correction before the parity
    measurement.  Its only non-Clifford gate provably never fires, so
    the circuit is {e observationally} Clifford while failing the
    whole-circuit {!Sim.Stabilizer.supports} scan — the witness
    workload for per-segment backend selection.  [n + 2] qubits, 2
    classical bits (bit 0: syndrome, bit 1: parity).
    @raise Invalid_argument unless 1 <= n <= 20. *)
val adaptive_parity : int -> Circuit.Circ.t

(** The benchmark set used in the future-work experiment:
    AND_n for n = 2..5 plus MAJ_3 and MAJ_5. *)
val suite : Oracle.t list
