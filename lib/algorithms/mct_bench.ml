open Circuit

(* 12 keeps the truth-table synthesis and the exact checkers tractable
   while reaching the 10-qubit (arity-9) stats/bench workloads *)
let check_n n =
  if n < 1 || n > 12 then invalid_arg "Mct_bench: arity outside 1..12"

let popcount k =
  let rec go acc k = if k = 0 then acc else go (acc + (k land 1)) (k lsr 1) in
  go 0 k

let and_n n =
  check_n n;
  let truth =
    Boolean_fun.of_fun ~arity:n (fun k -> k = (1 lsl n) - 1)
  in
  let controls = List.init n (fun v -> v) in
  Oracle.make
    ~name:(Printf.sprintf "AND_%d" n)
    ~arity:n ~truth
    [ Instruction.Unitary (Instruction.app ~controls Gate.X n) ]

let nand_n n =
  check_n n;
  let truth = Boolean_fun.of_fun ~arity:n (fun k -> k <> (1 lsl n) - 1) in
  let controls = List.init n (fun v -> v) in
  Oracle.make
    ~name:(Printf.sprintf "NAND_%d" n)
    ~arity:n ~truth
    [
      Instruction.Unitary (Instruction.app ~controls Gate.X n);
      Instruction.Unitary (Instruction.app Gate.X n);
    ]

let or_n n =
  check_n n;
  Oracle.synthesize
    ~name:(Printf.sprintf "OR_%d" n)
    (Boolean_fun.of_fun ~arity:n (fun k -> k <> 0))

let majority_n n =
  check_n n;
  if n mod 2 = 0 then invalid_arg "Mct_bench.majority_n: even arity";
  Oracle.synthesize
    ~name:(Printf.sprintf "MAJ_%d" n)
    (Boolean_fun.of_fun ~arity:n (fun k -> 2 * popcount k > n))

(* Parity needs no MCT at all — a chain of CXs — so it scales far past
   the truth-table synthesis limit.  It is the wide-circuit workload
   for the symbolic certifier (XOR_16 is 17 qubits, well beyond the
   exact checkers). *)
let xor_n n =
  if n < 1 || n > 20 then invalid_arg "Mct_bench.xor_n: arity outside 1..20";
  let truth =
    Boolean_fun.of_fun ~arity:n (fun k -> popcount k land 1 = 1)
  in
  Oracle.make
    ~name:(Printf.sprintf "XOR_%d" n)
    ~arity:n ~truth
    (List.init n (fun i ->
         Instruction.Unitary (Instruction.app ~controls:[ i ] Gate.X n)))

let suite =
  [ and_n 2; and_n 3; and_n 4; and_n 5; majority_n 3; majority_n 5 ]
