open Circuit

(* 12 keeps the truth-table synthesis and the exact checkers tractable
   while reaching the 10-qubit (arity-9) stats/bench workloads *)
let check_n n =
  if n < 1 || n > 12 then invalid_arg "Mct_bench: arity outside 1..12"

let popcount k =
  let rec go acc k = if k = 0 then acc else go (acc + (k land 1)) (k lsr 1) in
  go 0 k

let and_n n =
  check_n n;
  let truth =
    Boolean_fun.of_fun ~arity:n (fun k -> k = (1 lsl n) - 1)
  in
  let controls = List.init n (fun v -> v) in
  Oracle.make
    ~name:(Printf.sprintf "AND_%d" n)
    ~arity:n ~truth
    [ Instruction.Unitary (Instruction.app ~controls Gate.X n) ]

let nand_n n =
  check_n n;
  let truth = Boolean_fun.of_fun ~arity:n (fun k -> k <> (1 lsl n) - 1) in
  let controls = List.init n (fun v -> v) in
  Oracle.make
    ~name:(Printf.sprintf "NAND_%d" n)
    ~arity:n ~truth
    [
      Instruction.Unitary (Instruction.app ~controls Gate.X n);
      Instruction.Unitary (Instruction.app Gate.X n);
    ]

let or_n n =
  check_n n;
  Oracle.synthesize
    ~name:(Printf.sprintf "OR_%d" n)
    (Boolean_fun.of_fun ~arity:n (fun k -> k <> 0))

let majority_n n =
  check_n n;
  if n mod 2 = 0 then invalid_arg "Mct_bench.majority_n: even arity";
  Oracle.synthesize
    ~name:(Printf.sprintf "MAJ_%d" n)
    (Boolean_fun.of_fun ~arity:n (fun k -> 2 * popcount k > n))

(* Parity needs no MCT at all — a chain of CXs — so it scales far past
   the truth-table synthesis limit.  It is the wide-circuit workload
   for the symbolic certifier (XOR_16 is 17 qubits, well beyond the
   exact checkers). *)
let xor_n n =
  if n < 1 || n > 20 then invalid_arg "Mct_bench.xor_n: arity outside 1..20";
  let truth =
    Boolean_fun.of_fun ~arity:n (fun k -> popcount k land 1 = 1)
  in
  Oracle.make
    ~name:(Printf.sprintf "XOR_%d" n)
    ~arity:n ~truth
    (List.init n (fun i ->
         Instruction.Unitary (Instruction.app ~controls:[ i ] Gate.X n)))

(* Adaptive parity: the per-segment-Clifford selection workload.  The
   only non-Clifford gate is a T correction conditioned on the syndrome
   readout, and the syndrome ancilla is provably |0>, so the condition
   statically fails: the circuit is observationally Clifford even
   though a whole-circuit gate scan rejects it.  At n = 15 it spans 17
   qubits — past the exact engine's auto cutoff — so a selector without
   the analyzer's witness can only land on the dense engine. *)
let adaptive_parity n =
  if n < 1 || n > 20 then
    invalid_arg "Mct_bench.adaptive_parity: arity outside 1..20";
  let parity = n and syndrome = n + 1 in
  let roles =
    Array.init (n + 2) (fun q ->
        if q < n then Circ.Data
        else if q = parity then Circ.Answer
        else Circ.Ancilla)
  in
  let b = Circ.Builder.make ~roles ~num_bits:2 () in
  for q = 0 to n - 1 do
    Circ.Builder.h b q
  done;
  for q = 0 to n - 1 do
    Circ.Builder.cx b q parity
  done;
  Circ.Builder.measure b ~qubit:syndrome ~bit:0;
  (* the syndrome reads 0 on every branch: both corrections are
     statically dead, and the T never fires *)
  Circ.Builder.conditioned b ~bit:0 Gate.T parity;
  Circ.Builder.conditioned b ~bit:0 Gate.X parity;
  Circ.Builder.measure b ~qubit:parity ~bit:1;
  Circ.Builder.build b

let suite =
  [ and_n 2; and_n 3; and_n 4; and_n 5; majority_n 3; majority_n 5 ]
