open Circuit

let parse_secret s =
  if s = "" then invalid_arg "Simon: empty secret";
  String.iter
    (fun c ->
      if c <> '0' && c <> '1' then invalid_arg "Simon: secret must be binary")
    s;
  if not (String.contains s '1') then
    invalid_arg "Simon: secret must be non-zero";
  String.length s

let cx c t = Instruction.Unitary (Instruction.app ~controls:[ c ] Gate.X t)

(* y_i = x_i XOR (x_j AND s_i) with j the lowest set bit of s:
   f(x) = x XOR (x_j . s) satisfies f(x) = f(x XOR s) and is 2-to-1 *)
let oracle s =
  let n = parse_secret s in
  let j = String.index s '1' in
  List.init n (fun i -> cx i (n + i))
  @ List.filter_map
      (fun i -> if s.[i] = '1' then Some (cx j (n + i)) else None)
      (List.init n (fun i -> i))

let circuit s =
  let n = parse_secret s in
  let roles =
    Array.init (2 * n) (fun q -> if q < n then Circ.Data else Circ.Answer)
  in
  let b = Circ.Builder.make ~roles ~num_bits:n () in
  for q = 0 to n - 1 do
    Circ.Builder.h b q
  done;
  Circ.Builder.add_list b (oracle s);
  for q = 0 to n - 1 do
    Circ.Builder.h b q
  done;
  Circ.Builder.build b

let measured_circuit s =
  let n = parse_secret s in
  let c = circuit s in
  Circ.create ~roles:(Circ.roles c) ~num_bits:n
    (Circ.instructions c
    @ List.init n (fun q -> Instruction.Measure { qubit = q; bit = q }))

let sample_constraints ?(seed = 0x51707) ~runs ~dynamic s =
  let n = parse_secret s in
  let c = circuit s in
  let rng = Random.State.make [| seed |] in
  if dynamic then begin
    let r = Dqc.Transform.transform c in
    List.init runs (fun _ ->
        let st = Sim.Statevector.run ~rng r.circuit in
        Sim.Statevector.register st land ((1 lsl n) - 1))
  end
  else begin
    let measured =
      Circ.create ~roles:(Circ.roles c) ~num_bits:n
        (Circ.instructions c
        @ List.init n (fun q -> Instruction.Measure { qubit = q; bit = q }))
    in
    List.init runs (fun _ ->
        let st = Sim.Statevector.run ~rng measured in
        Sim.Statevector.register st)
  end

let recover_secret ?(seed = 0x51707) ?(max_runs = 200) ~dynamic s =
  let n = parse_secret s in
  let constraints = sample_constraints ~seed ~runs:max_runs ~dynamic s in
  (* accumulate until the nullspace is 1-dimensional *)
  let rec go acc = function
    | [] -> None
    | y :: rest -> (
        let acc = y :: acc in
        match Gf2.nullspace ~width:n acc with
        | [ secret ] when secret <> 0 -> Some secret
        | _ -> go acc rest)
  in
  go [] constraints
