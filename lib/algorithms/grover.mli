open Circuit

(** Grover search (extension beyond the paper's evaluation): the
    paper's introduction motivates Toffoli networks with Grover; this
    generator exercises the multi-control machinery end-to-end.

    The oracle marks a single basis state with a phase flip; the
    diffuser inverts about the mean.  Multi-control Z gates are built
    as H-conjugated multi-control X, so circuits with [n >= 3] contain
    gates the {!Decompose.Mct} pass must reduce. *)

(** [circuit ~n ~marked] searches for [marked] among 2^n items with
    the optimal ⌊π/4·√(2^n)⌋ iterations.  All [n] qubits have role
    Data.  @raise Invalid_argument when [marked] is out of range or
    [n] outside 2..8. *)
val circuit : n:int -> marked:int -> Circ.t

(** [circuit] with a terminal measurement of every qubit into its own
    classical bit — the form the qubit-reuse pipeline ({!Dqc.Reuse})
    and the channel certifier consume. *)
val measured : n:int -> marked:int -> Circ.t

(** Exact success probability (probability of measuring [marked]). *)
val success_probability : n:int -> marked:int -> float

(** Optimal iteration count for [n] qubits. *)
val optimal_iterations : int -> int
