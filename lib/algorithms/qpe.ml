open Circuit

let two_pi = 2. *. Float.pi

let check_bits bits =
  if bits < 1 || bits > 10 then invalid_arg "Qpe: bits outside 1..10"

(* Counting qubit k accumulates the kickback phase 2.pi.phase.2^k; the
   inverse QFT below then leaves binary digit j on qubit (bits-1-j)
   (bit-reversed order, resolved by the measurement mapping in
   [distribution]). *)
let traditional ~bits ~phase =
  check_bits bits;
  let eigen = bits in
  let roles =
    Array.init (bits + 1) (fun q ->
        if q < bits then Circ.Data else Circ.Answer)
  in
  let b = Circ.Builder.make ~roles ~num_bits:bits () in
  Circ.Builder.x b eigen;
  for k = 0 to bits - 1 do
    Circ.Builder.h b k
  done;
  for k = 0 to bits - 1 do
    let angle = two_pi *. phase *. float_of_int (1 lsl k) in
    Circ.Builder.cgate b (Gate.Phase angle) k eigen
  done;
  (* inverse QFT: digit j lands on qubit (bits-1-j) *)
  for j = 0 to bits - 1 do
    let q = bits - 1 - j in
    for i = 0 to j - 1 do
      let control = bits - 1 - i in
      let angle = -.Float.pi /. float_of_int (1 lsl (j - i)) in
      Circ.Builder.cgate b (Gate.Phase angle) control q
    done;
    Circ.Builder.h b q
  done;
  Circ.Builder.build b

(* One work qubit re-used across [bits] iterations, LSB first; each
   iteration's phase corrections are conditioned on every earlier
   measured digit — the gate-dependent iteration structure of [3]. *)
let iterative ~bits ~phase =
  check_bits bits;
  let work = 0 and eigen = 1 in
  let roles = [| Circ.Data; Circ.Answer |] in
  let b = Circ.Builder.make ~roles ~num_bits:bits () in
  Circ.Builder.x b eigen;
  for j = 0 to bits - 1 do
    if j > 0 then Circ.Builder.reset b work;
    Circ.Builder.h b work;
    let angle = two_pi *. phase *. float_of_int (1 lsl (bits - 1 - j)) in
    Circ.Builder.cgate b (Gate.Phase angle) work eigen;
    for i = 0 to j - 1 do
      let correction = -.Float.pi /. float_of_int (1 lsl (j - i)) in
      Circ.Builder.conditioned b ~bit:i (Gate.Phase correction) work
    done;
    Circ.Builder.h b work;
    Circ.Builder.measure b ~qubit:work ~bit:j
  done;
  Circ.Builder.build b

(* Per-digit Hadamard tests with no classical feed-forward: counting
   qubit k runs H; C-P(2.pi.phase.2^k); H and is measured into bit k.
   Unlike [iterative] the digits carry no corrections, so the ancillas'
   causal cones are pairwise disjoint — the form qubit-reuse collapses
   to 2 wires. Digits are exact only when phase is an exact [bits]-bit
   fraction times a power of two per digit; we use it as a reuse
   benchmark, not an estimator. *)
let kitaev ~bits ~phase =
  check_bits bits;
  let eigen = bits in
  let roles =
    Array.init (bits + 1) (fun q ->
        if q < bits then Circ.Data else Circ.Answer)
  in
  let b = Circ.Builder.make ~roles ~num_bits:bits () in
  Circ.Builder.x b eigen;
  for k = 0 to bits - 1 do
    Circ.Builder.h b k;
    let angle = two_pi *. phase *. float_of_int (1 lsl k) in
    Circ.Builder.cgate b (Gate.Phase angle) k eigen;
    Circ.Builder.h b k;
    Circ.Builder.measure b ~qubit:k ~bit:k
  done;
  Circ.Builder.build b

let distribution kind ~bits ~phase =
  match kind with
  | `Traditional ->
      let c = traditional ~bits ~phase in
      (* undo the IQFT bit reversal: qubit q holds digit (bits-1-q) *)
      let measures = List.init bits (fun q -> (q, bits - 1 - q)) in
      Sim.Exact.measured_distribution ~measures c
  | `Iterative ->
      Sim.Exact.register_distribution (iterative ~bits ~phase)

let best_estimate ~bits ~phase =
  check_bits bits;
  let scaled = phase *. float_of_int (1 lsl bits) in
  int_of_float (Float.round scaled) land ((1 lsl bits) - 1)
