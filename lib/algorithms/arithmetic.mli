open Circuit

(** Reversible arithmetic: the Cuccaro ripple-carry adder — a dense
    Toffoli network whose data qubits interact in both directions,
    making it the natural stress test for the dynamic transformation's
    Case-2 analysis (unlike oracle circuits, adders are {e not}
    2-qubit dynamizable; see {!Dqc.Analysis}). *)

(** Qubit layout of {!adder}. *)
type layout = {
  ancilla : int;  (** carry-in scratch, starts and ends |0> *)
  a : int array;  (** addend, unchanged *)
  b : int array;  (** target register: receives a + b (mod 2^n) *)
  carry_out : int;
}

(** [adder n] is the n-bit Cuccaro ripple-carry adder (2n + 2 qubits).
    All qubits have role Data except [carry_out] (Answer).
    @raise Invalid_argument unless 1 <= n <= 10. *)
val adder : int -> Circ.t * layout

(** [adder n] with the sum register and carry measured into bits
    0..n.  The adder's qubits interlock (the carry threads through
    every wire in both directions), so this is the natural negative
    control for the qubit-reuse pass: nothing retires early. *)
val measured : int -> Circ.t

(** [add_values ~n a b] runs the adder on basis inputs and returns
    (sum mod 2^n, carry) read from the final state — exercised
    exhaustively in the tests. *)
val add_values : n:int -> int -> int -> int * bool
