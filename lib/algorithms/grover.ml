open Circuit

let optimal_iterations n =
  let num = float_of_int (1 lsl n) in
  max 1 (int_of_float (Float.round (Float.pi /. 4. *. sqrt num -. 0.5)))

(* multi-control Z on qubits 0..n-1: H on the last, multi-control X,
   H back *)
let mcz b n =
  let target = n - 1 in
  let controls = List.init (n - 1) (fun q -> q) in
  Circ.Builder.h b target;
  Circ.Builder.add b
    (Instruction.Unitary (Instruction.app ~controls Gate.X target));
  Circ.Builder.h b target

let phase_flip_on b n marked =
  (* X-conjugate the zero bits so the MCZ fires exactly on |marked> *)
  for q = 0 to n - 1 do
    if not (Sim.Bits.get marked q) then Circ.Builder.x b q
  done;
  mcz b n;
  for q = 0 to n - 1 do
    if not (Sim.Bits.get marked q) then Circ.Builder.x b q
  done

let circuit ~n ~marked =
  if n < 2 || n > 8 then invalid_arg "Grover.circuit: n outside 2..8";
  if marked < 0 || marked >= 1 lsl n then
    invalid_arg "Grover.circuit: marked state out of range";
  let roles = Array.make n Circ.Data in
  let b = Circ.Builder.make ~roles ~num_bits:n () in
  for q = 0 to n - 1 do
    Circ.Builder.h b q
  done;
  for _ = 1 to optimal_iterations n do
    phase_flip_on b n marked;
    (* diffuser: H X (MCZ) X H *)
    for q = 0 to n - 1 do
      Circ.Builder.h b q
    done;
    for q = 0 to n - 1 do
      Circ.Builder.x b q
    done;
    mcz b n;
    for q = 0 to n - 1 do
      Circ.Builder.x b q
    done;
    for q = 0 to n - 1 do
      Circ.Builder.h b q
    done
  done;
  Circ.Builder.build b

let measured ~n ~marked =
  let c = circuit ~n ~marked in
  Circ.create ~roles:(Circ.roles c) ~num_bits:n
    (Circ.instructions c
    @ List.init n (fun q -> Instruction.Measure { qubit = q; bit = q }))

let success_probability ~n ~marked =
  let c = circuit ~n ~marked in
  let dist = Sim.Exact.measure_all_distribution c in
  Sim.Dist.prob dist marked
