open Circuit

type layout = {
  ancilla : int;
  a : int array;
  b : int array;
  carry_out : int;
}

(* layout: [ancilla; b0; a0; b1; a1; ...; carry_out] — the Cuccaro
   chain threads the carry through the a wires *)
let adder n =
  if n < 1 || n > 10 then invalid_arg "Arithmetic.adder: n outside 1..10";
  let num_qubits = (2 * n) + 2 in
  let ancilla = 0 in
  let b = Array.init n (fun i -> 1 + (2 * i)) in
  let a = Array.init n (fun i -> 2 + (2 * i)) in
  let carry_out = num_qubits - 1 in
  let roles =
    Array.init num_qubits (fun q ->
        if q = carry_out then Circ.Answer else Circ.Data)
  in
  let carry i = if i = 0 then ancilla else a.(i - 1) in
  let instrs =
    List.concat
      (List.init n (fun i -> Reversible.maj ~c:(carry i) ~b:b.(i) ~a:a.(i)))
    @ [
        Instruction.Unitary
          (Instruction.app ~controls:[ a.(n - 1) ] Gate.X carry_out);
      ]
    @ List.concat
        (List.init n (fun k ->
             let i = n - 1 - k in
             Reversible.uma ~c:(carry i) ~b:b.(i) ~a:a.(i)))
  in
  (Circ.create ~roles ~num_bits:0 instrs, { ancilla; a; b; carry_out })

let measured n =
  let c, layout = adder n in
  let measures =
    List.mapi
      (fun i q -> Instruction.Measure { qubit = q; bit = i })
      (Array.to_list layout.b @ [ layout.carry_out ])
  in
  Circ.create ~roles:(Circ.roles c) ~num_bits:(n + 1)
    (Circ.instructions c @ measures)

let add_values ~n x y =
  let c, layout = adder n in
  let st = Sim.Statevector.create (Circ.num_qubits c) ~num_bits:0 in
  for i = 0 to n - 1 do
    if Sim.Bits.get x i then Sim.Statevector.apply_gate st Gate.X layout.a.(i);
    if Sim.Bits.get y i then Sim.Statevector.apply_gate st Gate.X layout.b.(i)
  done;
  List.iter
    (fun (i : Instruction.t) ->
      match i with
      | Unitary app -> Sim.Statevector.apply_app st app
      | Conditioned _ | Measure _ | Reset _ | Barrier _ -> assert false)
    (Circ.instructions c);
  (* the state is a basis state: find it *)
  let probs = Sim.Statevector.probabilities st in
  let idx = ref (-1) in
  Array.iteri (fun k p -> if p > 0.5 then idx := k) probs;
  if !idx < 0 then failwith "Arithmetic.add_values: non-classical output";
  let sum = ref 0 in
  for i = 0 to n - 1 do
    if Sim.Bits.get !idx layout.b.(i) then sum := Sim.Bits.set !sum i true
  done;
  (!sum, Sim.Bits.get !idx layout.carry_out)
