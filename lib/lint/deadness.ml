open Circuit

let qubit_value pre q =
  match State.qubit pre q with
  | Absdom.Qubit.Zero -> Some false
  | Absdom.Qubit.One -> Some true
  | Absdom.Qubit.Basis | Absdom.Qubit.Collapsed | Absdom.Qubit.Superposed
  | Absdom.Qubit.Top ->
      Reldom.implied_qubit (State.rel pre) q

let provably_zero pre q = qubit_value pre q = Some false

let bit_value pre b =
  match State.bit pre b with
  | Absdom.Bit.Known v -> Some v
  | Absdom.Bit.Unwritten -> Some false
  | Absdom.Bit.Written -> Reldom.implied_bit (State.rel pre) b

let dead_on_zero ~controlled (g : Gate.t) =
  match g with
  | Gate.Z | Gate.S | Gate.Sdg | Gate.T | Gate.Tdg | Gate.Phase _ -> true
  | Gate.Rz _ -> not controlled
  | Gate.H | Gate.X | Gate.Y | Gate.V | Gate.Vdg | Gate.Rx _ | Gate.Ry _ ->
      false

let simplify_app pre (a : Instruction.app) =
  if List.exists (fun c -> qubit_value pre c = Some false) a.controls then None
  else
    let controls =
      List.filter (fun c -> qubit_value pre c <> Some true) a.controls
    in
    if
      qubit_value pre a.target = Some false
      && dead_on_zero ~controlled:(controls <> []) a.gate
    then None
    else Some { a with controls }

let witness_instr pre (i : Instruction.t) =
  match i with
  | Instruction.Unitary a ->
      Option.map (fun a -> Instruction.Unitary a) (simplify_app pre a)
  | Instruction.Conditioned (cond, a) -> (
      match State.cond_status pre cond with
      | State.Fails -> None
      | State.Holds ->
          Option.map (fun a -> Instruction.Unitary a) (simplify_app pre a)
      | State.Unknown ->
          Option.map
            (fun a -> Instruction.Conditioned (cond, a))
            (simplify_app pre a))
  | Instruction.Measure _ | Instruction.Reset _ | Instruction.Barrier _ ->
      Some i

type t = { trace : Trace.t; last : int array; first_m : int array }

let last_reference_of trace =
  let last = Array.make (Circ.num_qubits (Trace.circuit trace)) (-1) in
  Trace.iteri
    (fun i ~pre:_ (instr : Instruction.t) ->
      match instr with
      | Barrier _ -> ()
      | Unitary _ | Conditioned _ | Measure _ | Reset _ ->
          List.iter (fun q -> last.(q) <- i) (Instruction.qubits instr))
    trace;
  last

let first_measure_of trace =
  let first = Array.make (Circ.num_qubits (Trace.circuit trace)) max_int in
  Trace.iteri
    (fun i ~pre:_ (instr : Instruction.t) ->
      match instr with
      | Measure { qubit; _ } ->
          if first.(qubit) = max_int then first.(qubit) <- i
      | Unitary _ | Conditioned _ | Reset _ | Barrier _ -> ())
    trace;
  first

let of_trace trace =
  { trace; last = last_reference_of trace; first_m = first_measure_of trace }

let trace t = t.trace
let last_reference t = Array.copy t.last
let first_measure t = Array.copy t.first_m

let dead_unitary t i =
  match Trace.instr t.trace i with
  | Instruction.Unitary _ as instr ->
      let qs = Instruction.qubits instr in
      qs <> []
      && List.for_all (fun q -> t.first_m.(q) < i && t.last.(q) = i) qs
  | Instruction.Conditioned _ | Instruction.Measure _ | Instruction.Reset _
  | Instruction.Barrier _ ->
      false

let redundant_reset t i =
  match Trace.instr t.trace i with
  | Instruction.Reset q -> provably_zero (Trace.pre t.trace i) q
  | Instruction.Unitary _ | Instruction.Conditioned _ | Instruction.Measure _
  | Instruction.Barrier _ ->
      false

let dead_set t =
  let trace = t.trace in
  let n = Trace.length trace in
  (* observable at end: exactly the never-measured wires *)
  let live = Array.map (fun fm -> fm = max_int) t.first_m in
  let dead = Array.make n false in
  for i = n - 1 downto 0 do
    match Trace.instr trace i with
    | Instruction.Barrier _ -> ()
    | Instruction.Measure { qubit; _ } -> live.(qubit) <- true
    | Instruction.Reset q ->
        if live.(q) then live.(q) <- false else dead.(i) <- true
    | Instruction.Unitary a | Instruction.Conditioned (_, a) ->
        let qs = a.Instruction.target :: a.Instruction.controls in
        if List.for_all (fun q -> not live.(q)) qs then dead.(i) <- true
        else List.iter (fun q -> live.(q) <- true) qs
  done;
  dead
