(** Abstract domains of the circuit linter's forward interpreter.

    The per-qubit lattice abstracts the qubit's {e reduced} state in
    the computational basis:

    - [Zero] / [One]: exactly that basis state, unentangled;
    - [Basis]: a classical (diagonal) mixture of basis states, possibly
      classically correlated with other qubits or bits;
    - [Collapsed]: [Basis], plus "freshly measured and not yet reset" —
      the marker the use-after-measure pass fires on;
    - [Superposed]: may carry coherence introduced by a superposing
      gate from a previously-known state;
    - [Top]: no information.

    The per-bit lattice tracks the classical register: [Unwritten]
    (no measurement has targeted the bit), [Known b] (the writing
    measurement collapsed a statically known basis state), [Written]
    (written, value unknown). *)

module Qubit : sig
  type t = Zero | One | Basis | Collapsed | Superposed | Top

  (** [Zero], [One], [Basis] and [Collapsed] all promise a diagonal
      reduced density matrix. *)
  val is_basis_like : t -> bool

  (** Least upper bound; the [Collapsed] flag only survives when both
      sides carry it. *)
  val join : t -> t -> t

  val to_string : t -> string
end

module Bit : sig
  type t = Unwritten | Known of bool | Written

  val join : t -> t -> t
  val to_string : t -> string
end

(** Transfer behaviour of the 1-qubit gate library: [Diagonal] gates
    fix every basis state (up to phase), [Permuting] gates (X, Y)
    exchange them, [Superposing] gates (H, V, V†, Rx, Ry) can create
    coherence. *)
type gate_class = Diagonal | Permuting | Superposing

val classify : Circuit.Gate.t -> gate_class

(** Abstract effect of definitely applying [gate] to a qubit in the
    given state (no controls). *)
val apply_gate : Circuit.Gate.t -> Qubit.t -> Qubit.t
