open Circuit

(** Result of running the forward abstract interpreter over a circuit:
    the pre-state of every instruction plus the final state.  Built
    once per {!Lint.run} and shared by all passes. *)

type t

(** Interpret the whole circuit (one [lint.interpret] span). *)
val run : Circ.t -> t

val circuit : t -> Circ.t

(** Number of instructions. *)
val length : t -> int

val instr : t -> int -> Instruction.t

(** [pre t i] is the abstract state immediately before instruction
    [i]; [pre t (length t)] equals {!final}. *)
val pre : t -> int -> State.t

(** State after the last instruction. *)
val final : t -> State.t

(** [iteri f t] calls [f i ~pre instr] for each instruction in order. *)
val iteri : (int -> pre:State.t -> Instruction.t -> unit) -> t -> unit
