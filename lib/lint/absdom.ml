(* Abstract domains for the circuit linter.  See docs/LINTING.md. *)

module Qubit = struct
  type t = Zero | One | Basis | Collapsed | Superposed | Top

  let is_basis_like = function
    | Zero | One | Basis | Collapsed -> true
    | Superposed | Top -> false

  (* Collapsed carries the same "diagonal mixture" claim as Basis plus
     the freshly-measured flag; the flag only survives a join when both
     sides carry it, so a conditionally-touched qubit stops being
     "freshly measured" (preferring a missed diagnostic over a false
     one). *)
  let join a b =
    if a = b then a
    else if is_basis_like a && is_basis_like b then Basis
    else Top

  let to_string = function
    | Zero -> "zero"
    | One -> "one"
    | Basis -> "basis"
    | Collapsed -> "collapsed"
    | Superposed -> "superposed"
    | Top -> "top"
end

module Bit = struct
  type t = Unwritten | Known of bool | Written

  let join a b =
    match (a, b) with
    | Unwritten, Unwritten -> Unwritten
    | Known x, Known y when x = y -> Known x
    | Known _, Known _ -> Written
    | Unwritten, (Known _ | Written)
    | (Known _ | Written), Unwritten
    | Written, (Known _ | Written)
    | Known _, Written ->
        Written

  let to_string = function
    | Unwritten -> "unwritten"
    | Known b -> if b then "known:1" else "known:0"
    | Written -> "written"
end

type gate_class = Diagonal | Permuting | Superposing

let classify (g : Circuit.Gate.t) =
  match g with
  | Z | S | Sdg | T | Tdg | Rz _ | Phase _ -> Diagonal
  | X | Y -> Permuting
  | H | V | Vdg | Rx _ | Ry _ -> Superposing

(* Certain single-qubit application: the qubit is definitely hit.
   Permuting covers exactly X and Y, both of which exchange the basis
   states (Y only adds phases), so Zero/One map precisely. *)
let apply_gate g (q : Qubit.t) : Qubit.t =
  match (classify g, q) with
  | Diagonal, Collapsed -> Basis
  | Diagonal, (Zero | One | Basis | Superposed | Top) -> q
  | Permuting, Zero -> One
  | Permuting, One -> Zero
  | Permuting, (Basis | Collapsed) -> Basis
  | Permuting, Superposed -> Superposed
  | Permuting, Top -> Top
  | Superposing, (Zero | One | Basis | Collapsed) -> Superposed
  | Superposing, (Superposed | Top) -> Top
