(** Relational abstract domain of the linter: an entanglement partition
    over qubits joined with GF(2) affine relations among basis values of
    qubits and classical bits.

    An element abstracts the set of reachable (basis state, classical
    record) pairs of a run: every computational-basis vector carrying
    nonzero amplitude, together with the branch's classical register.

    - The {e partition} groups qubits into blocks such that qubits in
      different blocks are provably unentangled.  Each block carries a
      {e superposition rank}: the number of superposing events (H, V,
      Rx, ...) whose branching dimension may still be live in the
      block, so the block populates at most [2^rank] basis values.
    - The {e affine rows} are linear equations over GF(2) in the
      variables [x_q] (basis value of qubit [q]), [x_b] (classical bit
      [b]) and the constant [1], valid on every reachable pair — facts
      like "q3 = q1 XOR q5" or "b0 = q2 XOR 1".  Rows are kept as a
      canonical reduced echelon basis ({!Gf2.reduced}), so structural
      equality decides semantic equality.

    Rows are packed into a single OCaml [int] (bit [q] = qubit [q],
    bit [num_qubits + b] = classical bit [b], top bit = constant); when
    [2 * (num_qubits + num_bits + 1) > Sys.int_size - 1] the row
    component degrades to "no information" (the partition and ranks
    remain sound) — see {!tracked}.

    The rank join is a sound upper-bound operator but {e not} a least
    upper bound (the rank order is not a lattice: incomparable minimal
    upper bounds exist), so [join] is commutative, idempotent and
    monotone, but only associative up to mutual bounding.  The property
    tests in [test/test_reldom.ml] pin down exactly which laws hold. *)

type t

(** Fresh program state: all qubits |0>, all classical bits 0 — every
    qubit a singleton rank-0 block, with rows [x_q = 0] and [x_b = 0]
    for every qubit and bit. *)
val init : num_qubits:int -> num_bits:int -> t

val num_qubits : t -> int
val num_bits : t -> int

(** Whether the affine-row component is live for these dimensions. *)
val tracked : t -> bool

(** Transfer function.  [hint] supplies per-qubit facts from the
    non-relational lattice (default: no information); [Zero]/[One]
    hints are saturated into the rows before the transfer, which is
    what makes the transfer monotone on the product domain. *)
val step : ?hint:(int -> Absdom.Qubit.t) -> t -> Circuit.Instruction.t -> t

(** Sound upper bound: commutative, idempotent, monotone; see the
    caveat on rank associativity above. *)
val join : t -> t -> t

(** Abstract-order test: partition refinement, capped rank dominance,
    and row-span inclusion. *)
val leq : t -> t -> bool

(** Structural equality of canonical forms (decides semantic equality
    of the partition and row components). *)
val equal : t -> t -> bool

(** [implied_qubit t q] is [Some v] when the rows prove qubit [q]'s
    basis value is [v] on every reachable branch. *)
val implied_qubit : t -> int -> bool option

(** [implied_bit t b] likewise for classical bit [b]. *)
val implied_bit : t -> int -> bool option

(** Sound upper bound on [log2] of the number of nonzero amplitudes of
    any reachable branch state: per entangled block, the minimum of the
    capped superposition rank, the block size, and the block's free
    dimensions under the affine rows (qubits of rank-0 blocks and
    classical bits act as per-branch constants). *)
val log2_support_bound : t -> int

(** Blocks as (members, capped rank) pairs, ascending by representative
    — for reports and debugging. *)
val blocks : t -> (int list * int) list

val pp : Format.formatter -> t -> unit
