open Circuit

type segment = {
  start : int;
  stop : int;
  clifford : bool;
  t_count : int;
  non_clifford : int;
  log2_bound_end : int;
  log2_bound_peak : int;
  nondet : int;
}

type live_range = { first : int; last : int }

type summary = {
  num_qubits : int;
  num_bits : int;
  instructions : int;
  segments : segment list;
  clifford : bool;
  witness : Circ.t;
  t_count : int;
  non_clifford : int;
  log2_bound_peak : int;
  nondet_branches : int;
  dynamic_depth : int;
  feedforward_depth : int;
  usage_counts : int array;
  live_ranges : live_range option array;
}

(* ------------------------------------------------------------------ *)
(* Witness simplification — the fact queries live in {!Deadness}, the
   API shared with the lint passes and the certified optimizer. *)

let qubit_value = Deadness.qubit_value
let witness_instr = Deadness.witness_instr

(* Mirrors the CHP gate set ({!Sim.Stabilizer.supports}); the backend
   re-checks the witness against the engine itself, so a drift here can
   cost precision but never soundness. *)
let classify_witness (i : Instruction.t) =
  match i with
  | Instruction.Unitary a | Instruction.Conditioned (_, a) -> (
      match[@warning "-4"] (a.gate, a.controls) with
      | (Gate.H | Gate.X | Gate.Y | Gate.Z | Gate.S | Gate.Sdg), [] ->
          `Clifford
      | (Gate.X | Gate.Z), [ _ ] -> `Clifford
      | (Gate.T | Gate.Tdg), [] -> `T
      | _ -> `Non_clifford)
  | Instruction.Measure _ | Instruction.Reset _ | Instruction.Barrier _ ->
      `Clifford

let is_collapse (i : Instruction.t) =
  match i with
  | Instruction.Measure _ | Instruction.Reset _ -> true
  | Instruction.Unitary _ | Instruction.Conditioned _ | Instruction.Barrier _
    ->
      false

(* ------------------------------------------------------------------ *)

let analyze_body trace =
  let c = Trace.circuit trace in
  let m = Trace.length trace in
  let nq = Circ.num_qubits c in
  let bound =
    (* each index is queried both as a segment boundary and as a peak
       candidate; memoize so the per-index bound is computed once *)
    let memo = Array.make (m + 1) (-1) in
    fun i ->
      if memo.(i) >= 0 then memo.(i)
      else begin
        let v = Reldom.log2_support_bound (State.rel (Trace.pre trace i)) in
        memo.(i) <- v;
        v
      end
  in
  (* witness instructions, per original index *)
  let witness_at =
    Array.init m (fun i -> witness_instr (Trace.pre trace i) (Trace.instr trace i))
  in
  (* nondeterministic branch points: measure/reset whose outcome the
     analysis cannot pin from the pre-state *)
  let nondet_at i =
    match Trace.instr trace i with
    | Instruction.Measure { qubit; _ } | Instruction.Reset qubit ->
        if qubit_value (Trace.pre trace i) qubit = None then 1 else 0
    | Instruction.Unitary _ | Instruction.Conditioned _
    | Instruction.Barrier _ ->
        0
  in
  (* segment boundaries: the split_prefix rule — a measure/reset opens
     a new segment unless it extends a measure/reset run *)
  let starts = ref [] in
  for i = m - 1 downto 1 do
    if is_collapse (Trace.instr trace i)
       && not (is_collapse (Trace.instr trace (i - 1)))
    then starts := i :: !starts
  done;
  let starts = if m = 0 then [] else 0 :: !starts in
  let rec segments = function
    | [] -> []
    | start :: rest ->
        let stop = match rest with s :: _ -> s | [] -> m in
        let clifford = ref true
        and t_count = ref 0
        and non_clifford = ref 0
        and nondet = ref 0
        and peak = ref (bound start) in
        for i = start to stop - 1 do
          (match witness_at.(i) with
          | None -> ()
          | Some w -> (
              match classify_witness w with
              | `Clifford -> ()
              | `T ->
                  incr t_count;
                  clifford := false
              | `Non_clifford ->
                  incr non_clifford;
                  clifford := false));
          nondet := !nondet + nondet_at i;
          peak := max !peak (bound (i + 1))
        done;
        {
          start;
          stop;
          clifford = !clifford;
          t_count = !t_count;
          non_clifford = !non_clifford;
          log2_bound_end = bound stop;
          log2_bound_peak = !peak;
          nondet = !nondet;
        }
        :: segments rest
  in
  let segments = segments starts in
  (* dynamic depth and feed-forward critical path: longest path in the
     dependency DAG; crossing a measurement->conditioned classical edge
     counts one feed-forward hop *)
  let nb = Circ.num_bits c in
  let qdepth = Array.make nq 0
  and qff = Array.make nq 0
  and bdepth = Array.make nb 0
  and bff = Array.make nb 0 in
  let usage = Array.make nq 0 in
  let ranges = Array.make nq None in
  for i = 0 to m - 1 do
    let instr = Trace.instr trace i in
    let qs = List.sort_uniq compare (Instruction.qubits instr) in
    List.iter
      (fun q ->
        usage.(q) <- usage.(q) + 1;
        ranges.(q) <-
          (match ranges.(q) with
          | None -> Some { first = i; last = i }
          | Some r -> Some { r with last = i }))
      qs;
    let qd = List.fold_left (fun acc q -> max acc qdepth.(q)) 0 qs in
    let qf = List.fold_left (fun acc q -> max acc qff.(q)) 0 qs in
    match instr with
    | Instruction.Barrier _ ->
        (* synchronization only: aligns depths without adding a layer *)
        List.iter
          (fun q ->
            qdepth.(q) <- qd;
            qff.(q) <- qf)
          qs
    | Instruction.Unitary _ ->
        List.iter
          (fun q ->
            qdepth.(q) <- qd + 1;
            qff.(q) <- qf)
          qs
    | Instruction.Conditioned (cond, _) ->
        let bs = List.sort_uniq compare (List.map fst cond.bits) in
        let d =
          List.fold_left (fun acc b -> max acc bdepth.(b)) (qd + 1) bs
        in
        (* reading a measured bit into a gate is the feed-forward hop *)
        let f = List.fold_left (fun acc b -> max acc (bff.(b) + 1)) qf bs in
        List.iter
          (fun q ->
            qdepth.(q) <- d;
            qff.(q) <- f)
          qs
    | Instruction.Measure { qubit; bit } ->
        qdepth.(qubit) <- qd + 1;
        bdepth.(bit) <- qd + 1;
        bff.(bit) <- qf
    | Instruction.Reset q ->
        qdepth.(q) <- qd + 1;
        qff.(q) <- qf
  done;
  let dynamic_depth =
    max
      (Array.fold_left max 0 qdepth)
      (if nb = 0 then 0 else Array.fold_left max 0 bdepth)
  in
  let feedforward_depth =
    max (Array.fold_left max 0 qff)
      (if nb = 0 then 0 else Array.fold_left max 0 bff)
  in
  let witness =
    Circ.create ~roles:(Circ.roles c) ~num_bits:nb
      (List.filter_map Fun.id (Array.to_list witness_at))
  in
  let sum f = List.fold_left (fun acc (s : segment) -> acc + f s) 0 segments in
  Obs.incr ~n:(List.length segments) "analyze.segment";
  {
    num_qubits = nq;
    num_bits = nb;
    instructions = m;
    segments;
    clifford = List.for_all (fun (s : segment) -> s.clifford) segments;
    witness;
    t_count = sum (fun s -> s.t_count);
    non_clifford = sum (fun s -> s.non_clifford);
    log2_bound_peak =
      List.fold_left
        (fun acc (s : segment) -> max acc s.log2_bound_peak)
        0 segments;
    nondet_branches = sum (fun s -> s.nondet);
    dynamic_depth;
    feedforward_depth;
    usage_counts = usage;
    live_ranges = ranges;
  }

let analyze ?trace c =
  Obs.with_span "analyze.resources"
    ~attrs:[ ("qubits", string_of_int (Circ.num_qubits c)) ]
    (fun () ->
      let trace =
        match trace with
        | Some t ->
            if not (Circ.equal (Trace.circuit t) c) then
              invalid_arg "Resource.analyze: trace belongs to a different \
                           circuit";
            t
        | None -> Trace.run c
      in
      analyze_body trace)

(* ------------------------------------------------------------------ *)

let segment_to_json s =
  Obs.Json.Obj
    [
      ("start", Obs.Json.Int s.start);
      ("stop", Obs.Json.Int s.stop);
      ("clifford", Obs.Json.Bool s.clifford);
      ("t_count", Obs.Json.Int s.t_count);
      ("non_clifford", Obs.Json.Int s.non_clifford);
      ("log2_bound_end", Obs.Json.Int s.log2_bound_end);
      ("log2_bound_peak", Obs.Json.Int s.log2_bound_peak);
      ("nondet", Obs.Json.Int s.nondet);
    ]

let to_json ?name s =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "dqc.analyze/1");
      ( "circuit",
        match name with Some n -> Obs.Json.String n | None -> Obs.Json.Null );
      ("num_qubits", Obs.Json.Int s.num_qubits);
      ("num_bits", Obs.Json.Int s.num_bits);
      ("instructions", Obs.Json.Int s.instructions);
      ("clifford", Obs.Json.Bool s.clifford);
      ("t_count", Obs.Json.Int s.t_count);
      ("non_clifford", Obs.Json.Int s.non_clifford);
      ("log2_bound_peak", Obs.Json.Int s.log2_bound_peak);
      ("nondet_branches", Obs.Json.Int s.nondet_branches);
      ("dynamic_depth", Obs.Json.Int s.dynamic_depth);
      ("feedforward_depth", Obs.Json.Int s.feedforward_depth);
      ("segments", Obs.Json.List (List.map segment_to_json s.segments));
      ( "live_ranges",
        Obs.Json.List
          (List.filter_map Fun.id
             (List.init (Array.length s.live_ranges) (fun q ->
                  match s.live_ranges.(q) with
                  | None -> None
                  | Some r ->
                      Some
                        (Obs.Json.Obj
                           [
                             ("qubit", Obs.Json.Int q);
                             ("first", Obs.Json.Int r.first);
                             ("last", Obs.Json.Int r.last);
                           ])))) );
    ]

let pp fmt s =
  Format.fprintf fmt
    "@[<v>%d instruction%s over %d qubit%s in %d segment%s:@,\
     clifford %b, T %d, non-Clifford %d, log2 amplitude bound <= %d,@,\
     nondet branches %d, dynamic depth %d, feed-forward depth %d"
    s.instructions
    (if s.instructions = 1 then "" else "s")
    s.num_qubits
    (if s.num_qubits = 1 then "" else "s")
    (List.length s.segments)
    (if List.length s.segments = 1 then "" else "s")
    s.clifford s.t_count s.non_clifford s.log2_bound_peak s.nondet_branches
    s.dynamic_depth s.feedforward_depth;
  List.iter
    (fun seg ->
      Format.fprintf fmt
        "@,  [%d,%d): %s, T %d, bound end %d peak %d, nondet %d" seg.start
        seg.stop
        (if seg.clifford then "clifford" else "non-clifford")
        seg.t_count seg.log2_bound_end seg.log2_bound_peak seg.nondet)
    s.segments;
  Format.fprintf fmt "@]"

let to_string s = Format.asprintf "%a" pp s
