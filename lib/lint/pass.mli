(** A lint pass: a named analysis over an interpreted circuit trace.
    Passes are pure — all shared work (the abstract interpretation)
    lives in the {!Trace} they receive. *)

type t = {
  name : string;  (** stable kebab-case identifier, e.g. ["use-after-measure"];
                      also the telemetry counter suffix [lint.pass.<name>] *)
  description : string;  (** one-line summary for registries and docs *)
  run : Trace.t -> Diagnostic.t list;
}

val make :
  name:string ->
  description:string ->
  (Trace.t -> Diagnostic.t list) ->
  t
