open Circuit

type t = {
  qubits : Absdom.Qubit.t array;
  bits : Absdom.Bit.t array;
  rel : Reldom.t;
}

let init ~num_qubits ~num_bits =
  {
    qubits = Array.make num_qubits Absdom.Qubit.Zero;
    bits = Array.make num_bits Absdom.Bit.Unwritten;
    rel = Reldom.init ~num_qubits ~num_bits;
  }

let copy s = { s with qubits = Array.copy s.qubits; bits = Array.copy s.bits }
let qubit s q = s.qubits.(q)
let bit s b = s.bits.(b)
let rel s = s.rel

(* Branch join of the per-wire components only — the callers below
   join two states sharing one [rel] and then step it relationally, so
   computing the (expensive) [Reldom.join] here would be wasted. *)
let join_wires a b =
  {
    qubits = Array.map2 Absdom.Qubit.join a.qubits b.qubits;
    bits = Array.map2 Absdom.Bit.join a.bits b.bits;
    rel = a.rel;
  }

let join a b = { (join_wires a b) with rel = Reldom.join a.rel b.rel }

type cond_status = Holds | Fails | Unknown

let cond_status s (c : Instruction.cond) =
  let contradictory =
    List.exists (fun (b, v) -> v && List.mem (b, false) c.bits) c.bits
  in
  if contradictory then Fails
  else
    let test (b, v) =
      match s.bits.(b) with
      | Absdom.Bit.Known x -> if x = v then `T else `F
      | Absdom.Bit.Written -> (
          (* the relational rows may pin a written bit the per-bit
             lattice lost track of *)
          match Reldom.implied_bit s.rel b with
          | Some x -> if x = v then `T else `F
          | None -> `U)
      | Absdom.Bit.Unwritten -> `U
    in
    let statuses = List.map test c.bits in
    if List.mem `F statuses then Fails
    else if List.for_all (fun x -> x = `T) statuses then Holds
    else Unknown

(* Every operand of a gate is physically driven even when the gate
   provably does not fire (controlled-phase kicks back on controls), so
   the freshly-measured flag is consumed on all of them. *)
let apply_app s (a : Instruction.app) =
  let s = copy s in
  let target_pre = s.qubits.(a.target) in
  let clear q =
    if s.qubits.(q) = Absdom.Qubit.Collapsed then
      s.qubits.(q) <- Absdom.Qubit.Basis
  in
  List.iter clear a.controls;
  clear a.target;
  let control q = s.qubits.(q) in
  let target_post =
    if a.controls = [] then Absdom.apply_gate a.gate target_pre
    else if List.exists (fun q -> control q = Absdom.Qubit.Zero) a.controls
    then (* the gate can never fire *)
      s.qubits.(a.target)
    else if List.for_all (fun q -> control q = Absdom.Qubit.One) a.controls
    then Absdom.apply_gate a.gate target_pre
    else
      (* control values statically unknown: the target may or may not
         be hit.  A permuting gate maps diagonal mixtures to diagonal
         mixtures whatever the control state; a superposing gate
         destroys all knowledge. *)
      match Absdom.classify a.gate with
      | Absdom.Diagonal -> s.qubits.(a.target)
      | Absdom.Permuting ->
          if Absdom.Qubit.is_basis_like target_pre then Absdom.Qubit.Basis
          else s.qubits.(a.target)
      | Absdom.Superposing -> Absdom.Qubit.Top
  in
  s.qubits.(a.target) <- target_post;
  s

let step s (i : Instruction.t) =
  (* the relational transfer reads the PRE-state per-qubit facts *)
  let hint q = s.qubits.(q) in
  match i with
  | Unitary a -> { (apply_app s a) with rel = Reldom.step ~hint s.rel i }
  | Conditioned (c, a) -> (
      match cond_status s c with
      | Fails -> s
      | Holds ->
          {
            (apply_app s a) with
            rel = Reldom.step ~hint s.rel (Instruction.Unitary a);
          }
      | Unknown ->
          {
            (join_wires (apply_app s a) s) with
            rel = Reldom.step ~hint s.rel i;
          })
  | Measure { qubit; bit } ->
      let rel = Reldom.step ~hint s.rel i in
      let s = copy s in
      (match s.qubits.(qubit) with
      | Absdom.Qubit.Zero -> s.bits.(bit) <- Absdom.Bit.Known false
      | Absdom.Qubit.One -> s.bits.(bit) <- Absdom.Bit.Known true
      | Absdom.Qubit.Basis | Absdom.Qubit.Collapsed | Absdom.Qubit.Superposed
      | Absdom.Qubit.Top -> (
          (* the rows may pin the outcome even when the per-qubit
             lattice lost it (e.g. across feed-forward corrections) *)
          match Reldom.implied_qubit rel qubit with
          | Some v ->
              s.bits.(bit) <- Absdom.Bit.Known v;
              s.qubits.(qubit) <-
                (if v then Absdom.Qubit.One else Absdom.Qubit.Zero)
          | None ->
              s.bits.(bit) <- Absdom.Bit.Written;
              s.qubits.(qubit) <- Absdom.Qubit.Collapsed));
      { s with rel }
  | Reset q ->
      let s = copy s in
      s.qubits.(q) <- Absdom.Qubit.Zero;
      { s with rel = Reldom.step ~hint s.rel i }
  | Barrier _ -> s
