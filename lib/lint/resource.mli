open Circuit

(** Static sparsity / resource analyzer.

    Walks a circuit segment-by-segment — segments are aligned with the
    {!Sim.Program.split_prefix} boundary rule: a new segment starts at
    every measure/reset instruction that follows a non-measure/reset
    instruction — and derives, from the relational abstract
    interpretation ({!Reldom} threaded through {!Trace}), a summary a
    backend can select an engine from without touching the simulator.

    Everything here is {e sound}: the amplitude bound over-approximates
    every reachable branch state, the Clifford witness is
    observationally equivalent to the original circuit (statically-dead
    conditioned gates and phase gates on provably-|0> qubits are
    dropped, provably-decided controls are resolved), and the
    nondeterministic branch count under-counts nothing. *)

type segment = {
  start : int;  (** first instruction index of the segment *)
  stop : int;  (** one past the last instruction index *)
  clifford : bool;
      (** every witness instruction of the segment is representable in
          the CHP stabilizer gate set *)
  t_count : int;  (** uncontrolled T/T† gates surviving in the witness *)
  non_clifford : int;
      (** witness instructions outside the stabilizer set, T count
          excluded (rotations, V, multi-controlled gates, ...) *)
  log2_bound_end : int;
      (** sound upper bound on log2(nonzero amplitudes) after the
          segment's last instruction *)
  log2_bound_peak : int;  (** the same bound, maximized over the segment *)
  nondet : int;
      (** measure/reset instructions whose outcome the analysis cannot
          pin — the segment's true branch points *)
}

type live_range = { first : int; last : int }
    (** instruction indices of the first and last reference *)

type summary = {
  num_qubits : int;
  num_bits : int;
  instructions : int;
  segments : segment list;  (** ascending by [start]; empty iff no instrs *)
  clifford : bool;  (** all segments Clifford *)
  witness : Circ.t;
      (** the simplified, observationally-equivalent circuit backing
          the [clifford] verdicts — a stabilizer backend may execute it
          in place of the original *)
  t_count : int;  (** sum over segments *)
  non_clifford : int;  (** sum over segments *)
  log2_bound_peak : int;  (** max over segments *)
  nondet_branches : int;  (** sum over segments *)
  dynamic_depth : int;
      (** critical path counting quantum and classical dependencies *)
  feedforward_depth : int;
      (** maximum number of measurement->conditioned-gate hops on any
          dependency path *)
  usage_counts : int array;
      (** per qubit, the number of instructions referencing it — the
          retirement counts {!Dqc.Reuse.rewire}'s scheduler consumes *)
  live_ranges : live_range option array;
      (** per qubit; [None] when the qubit is never referenced *)
}

(** Analyze a circuit (one [analyze.resources] span; one
    [analyze.segment] counter bump per segment).  Pass [trace] to reuse
    an existing interpreter run; it must belong to [c].
    @raise Invalid_argument on a foreign trace. *)
val analyze : ?trace:Trace.t -> Circ.t -> summary

(** [dqc.analyze/1] JSON document. *)
val to_json : ?name:string -> summary -> Obs.Json.t

val pp : Format.formatter -> summary -> unit
val to_string : summary -> string
