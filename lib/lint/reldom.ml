open Circuit

(* Invariants:
   - [block.(q)] is the canonical representative (minimum member) of
     [q]'s entangled block.
   - [rank.(r)] is meaningful only at representatives and is 0
     elsewhere; it is stored UNCAPPED (capping happens in [leq] and
     [log2_support_bound]) so that transfer stays monotone.
   - [rows] is always a canonical reduced echelon basis
     ([Gf2.reduced]), empty when [not tracked]. *)
type t = {
  num_qubits : int;
  num_bits : int;
  block : int array;
  rank : int array;
  rows : int list;
  tracked : bool;
}

let num_qubits t = t.num_qubits
let num_bits t = t.num_bits
let tracked t = t.tracked
let width t = t.num_qubits + t.num_bits + 1
let qbit q = 1 lsl q
let cbit t b = 1 lsl (t.num_qubits + b)
let const_bit t = 1 lsl (t.num_qubits + t.num_bits)

let init ~num_qubits ~num_bits =
  let w = num_qubits + num_bits + 1 in
  (* the Zassenhaus join needs rows at width 2w in one int *)
  let tracked = 2 * w <= Sys.int_size - 1 in
  let rows =
    if tracked then
      Gf2.reduced ~width:w
        (List.init num_qubits (fun q -> 1 lsl q)
        @ List.init num_bits (fun b -> 1 lsl (num_qubits + b)))
    else []
  in
  {
    num_qubits;
    num_bits;
    block = Array.init num_qubits (fun q -> q);
    rank = Array.make num_qubits 0;
    rows;
    tracked;
  }

(* ------------------------------------------------------------------ *)
(* Partition and rank                                                  *)

let block_sizes t =
  let sizes = Array.make t.num_qubits 0 in
  Array.iter (fun r -> sizes.(r) <- sizes.(r) + 1) t.block;
  sizes

let merge t qs =
  let reps = List.sort_uniq compare (List.map (fun q -> t.block.(q)) qs) in
  match reps with
  | [] | [ _ ] -> t
  | new_rep :: _ ->
      let total = List.fold_left (fun acc r -> acc + t.rank.(r)) 0 reps in
      let block =
        Array.map (fun r -> if List.mem r reps then new_rep else r) t.block
      in
      let rank = Array.copy t.rank in
      List.iter (fun r -> rank.(r) <- 0) reps;
      rank.(new_rep) <- total;
      { t with block; rank }

let bump t q =
  let rank = Array.copy t.rank in
  let r = t.block.(q) in
  rank.(r) <- rank.(r) + 1;
  { t with rank }

(* Detach [q] into a singleton rank-0 block; the remaining block keeps
   its (uncapped) rank, which stays a sound upper bound. *)
let split t q =
  let old = t.block.(q) in
  let block = Array.copy t.block and rank = Array.copy t.rank in
  (if q = old then begin
     let rest = ref (-1) in
     for i = t.num_qubits - 1 downto 0 do
       if i <> q && block.(i) = old then rest := i
     done;
     if !rest >= 0 then begin
       let r = rank.(old) in
       for i = 0 to t.num_qubits - 1 do
         if block.(i) = old then block.(i) <- !rest
       done;
       rank.(!rest) <- r
     end
   end);
  block.(q) <- q;
  rank.(q) <- 0;
  { t with block; rank }

(* ------------------------------------------------------------------ *)
(* Rows                                                                *)

let implied_mask t mask =
  if not t.tracked then None
  else
    let residue = Gf2.reduce_by ~width:(width t) t.rows mask in
    if residue = 0 then Some false
    else if residue = const_bit t then Some true
    else None

let implied_qubit t q = implied_mask t (qbit q)
let implied_bit t b = implied_mask t (cbit t b)

(* Substitution [x_t <- x_t (+) x] on every row mentioning [tmask].
   When no row mentions the target this is the identity and allocates
   nothing — the common case on fresh or already-eliminated wires.
   Otherwise the untouched rows are still a canonical basis, so the
   (few) rewritten rows are folded back in incrementally instead of
   re-reducing the whole basis. *)
let substitute t tmask x =
  if not t.tracked then t
  else
    let changed, unchanged =
      List.partition (fun r -> r land tmask <> 0) t.rows
    in
    match changed with
    | [] -> t
    | _ :: _ ->
        let w = width t in
        {
          t with
          rows =
            List.fold_left
              (fun acc r -> Gf2.insert ~width:w acc (r lxor x))
              unchanged changed;
        }

let add_rows t vs =
  if not t.tracked then t
  else
    let w = width t in
    let rows = List.fold_left (Gf2.insert ~width:w) t.rows vs in
    if rows == t.rows then t else { t with rows }

(* Existentially quantify variable [bit] out of the rows. *)
let eliminate t bit =
  if not t.tracked then t
  else
    let mask = 1 lsl bit in
    let with_b, without = List.partition (fun r -> r land mask <> 0) t.rows in
    match with_b with
    | [] -> t
    | [ _ ] ->
        (* dropping a row from a canonical basis keeps it canonical *)
        { t with rows = without }
    | r0 :: rest ->
        (* [without] is still canonical; fold the pair-eliminated rows
           back in incrementally *)
        let w = width t in
        {
          t with
          rows =
            List.fold_left
              (fun acc r -> Gf2.insert ~width:w acc (r lxor r0))
              without rest;
        }

(* Fold Zero/One facts from the non-relational lattice into the rows.
   Saturating BEFORE the transfer is what keeps the transfer monotone:
   a provably-zero control then satisfies x_c = 0 in the row span, so
   the generic control substitution coincides with the identity. *)
let saturate hint t qs =
  if not t.tracked then t
  else
    let facts =
      List.filter_map
        (fun q ->
          match hint q with
          | Absdom.Qubit.Zero -> Some (qbit q)
          | Absdom.Qubit.One -> Some (qbit q lor const_bit t)
          | Absdom.Qubit.Basis | Absdom.Qubit.Collapsed
          | Absdom.Qubit.Superposed | Absdom.Qubit.Top ->
              None)
        qs
    in
    match facts with [] -> t | _ :: _ -> add_rows t facts

let qubit_value hint t q =
  match implied_qubit t q with
  | Some v -> Some v
  | None -> (
      match hint q with
      | Absdom.Qubit.Zero -> Some false
      | Absdom.Qubit.One -> Some true
      | Absdom.Qubit.Basis | Absdom.Qubit.Collapsed | Absdom.Qubit.Superposed
      | Absdom.Qubit.Top ->
          None)

(* ------------------------------------------------------------------ *)
(* Join and order                                                      *)

let join a b =
  if a.num_qubits <> b.num_qubits || a.num_bits <> b.num_bits then
    invalid_arg "Reldom.join: dimension mismatch";
  let nq = a.num_qubits in
  (* partition join: transitive closure, min-rooted union-find *)
  let parent = Array.init nq (fun q -> q) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(max ri rj) <- min ri rj
  in
  for q = 0 to nq - 1 do
    union q a.block.(q);
    union q b.block.(q)
  done;
  let block = Array.init nq find in
  (* rank join: per merged block, max over sides of the sum of that
     side's block ranks (a sound upper bound; see the .mli caveat) *)
  let accum side =
    let acc = Array.make nq 0 in
    for q = 0 to nq - 1 do
      if side.block.(q) = q then
        acc.(block.(q)) <- acc.(block.(q)) + side.rank.(q)
    done;
    acc
  in
  let sa = accum a and sb = accum b in
  let rank =
    Array.init nq (fun q -> if block.(q) = q then max sa.(q) sb.(q) else 0)
  in
  (* row join: span intersection by the Zassenhaus trick at width 2w *)
  let rows =
    if not (a.tracked && b.tracked) then []
    else
      let w = width a in
      let stacked =
        List.map (fun r -> (r lsl w) lor r) a.rows
        @ List.map (fun r -> r lsl w) b.rows
      in
      let inter =
        List.filter
          (fun r -> r <> 0 && r lsr w = 0)
          (Gf2.independent ~width:(2 * w) stacked)
      in
      Gf2.reduced ~width:w inter
  in
  { a with block; rank; rows; tracked = a.tracked && b.tracked }

let leq a b =
  if a.num_qubits <> b.num_qubits || a.num_bits <> b.num_bits then
    invalid_arg "Reldom.leq: dimension mismatch";
  let nq = a.num_qubits in
  let part_ok = ref true in
  for q = 0 to nq - 1 do
    if b.block.(q) <> b.block.(a.block.(q)) then part_ok := false
  done;
  !part_ok
  && begin
       let sza = block_sizes a and szb = block_sizes b in
       let acc = Array.make nq 0 in
       for q = 0 to nq - 1 do
         if a.block.(q) = q then begin
           let m = b.block.(q) in
           acc.(m) <- acc.(m) + min a.rank.(q) sza.(q)
         end
       done;
       let ok = ref true in
       for m = 0 to nq - 1 do
         if b.block.(m) = m && acc.(m) > min b.rank.(m) szb.(m) then ok := false
       done;
       !ok
     end
  && ((not b.tracked)
     || List.for_all (fun r -> Gf2.in_span ~width:(width a) a.rows r) b.rows)

let equal a b =
  a.num_qubits = b.num_qubits
  && a.num_bits = b.num_bits
  && a.block = b.block && a.rank = b.rank && a.rows = b.rows

(* ------------------------------------------------------------------ *)
(* Transfer                                                            *)

let apply_app hint t ({ gate; controls; target } : Instruction.app) =
  let t = saturate hint t (target :: controls) in
  if List.exists (fun c -> qubit_value hint t c = Some false) controls then t
  else
    let unknown =
      List.filter (fun c -> qubit_value hint t c <> Some true) controls
    in
    let tmask = qbit target in
    match Absdom.classify gate with
    | Absdom.Diagonal -> (
        (* support is unchanged, but an unknown control entangles *)
        match unknown with [] -> t | _ :: _ -> merge t (target :: unknown))
    | Absdom.Permuting -> (
        match unknown with
        | [] ->
            (* unconditional basis flip: x_t <- x_t (+) 1 *)
            substitute t tmask (const_bit t)
        | [ c ] ->
            (* CX substitution: x_t <- x_t (+) x_c *)
            merge (substitute t tmask (qbit c)) [ target; c ]
        | _ :: _ :: _ ->
            (* Toffoli-like: the target update is nonlinear *)
            merge (eliminate t target) (target :: unknown))
    | Absdom.Superposing -> (
        let t = eliminate t target in
        match unknown with
        | [] -> bump t target
        | _ :: _ -> bump (merge t (target :: unknown)) target)

let cond_status t (cond : Instruction.cond) =
  let rec go all_known = function
    | [] -> if all_known then `Holds else `Unknown
    | (b, v) :: rest -> (
        match implied_bit t b with
        | Some v' when v' <> v -> `Fails
        | Some _ -> go all_known rest
        | None -> go false rest)
  in
  go true cond.bits

let step ?(hint = fun _ -> Absdom.Qubit.Top) t (instr : Instruction.t) =
  match instr with
  | Unitary app -> apply_app hint t app
  | Conditioned (cond, app) -> (
      let t = saturate hint t (app.target :: app.controls) in
      match cond_status t cond with
      | `Fails -> t
      | `Holds -> apply_app hint t app
      | `Unknown -> (
          if
            List.exists
              (fun c -> qubit_value hint t c = Some false)
              app.controls
          then t
          else
            let unknown =
              List.filter
                (fun c -> qubit_value hint t c <> Some true)
                app.controls
            in
            match (Absdom.classify app.gate, unknown, cond.bits) with
            | Absdom.Diagonal, [], _ -> t
            | Absdom.Diagonal, _ :: _, _ -> merge t (app.target :: unknown)
            | Absdom.Permuting, [], [ (b, v) ] ->
                (* feed-forward flip stays affine:
                   x_t <- x_t (+) x_b (+) v (+) 1 *)
                let x = cbit t b lor (if v then 0 else const_bit t) in
                substitute t (qbit app.target) x
            | Absdom.Superposing, _, _ ->
                (* a superposing transfer only erases rows, coarsens
                   the partition and bumps rank, so its result already
                   bounds the not-fired branch [t]: the generic join
                   would return it unchanged *)
                apply_app hint t app
            | Absdom.Permuting, _, _ -> join (apply_app hint t app) t))
  | Measure { qubit = q; bit = b } ->
      let t = saturate hint t [ q ] in
      (* the written bit is clobbered; the measured qubit keeps its
         affine relations (projection only shrinks the support) and
         collapses to a deterministic singleton *)
      let t = eliminate t (t.num_qubits + b) in
      let t = add_rows t [ qbit q lor cbit t b ] in
      split t q
  | Reset q ->
      let t = eliminate t q in
      let t = add_rows t [ qbit q ] in
      split t q
  | Barrier _ -> t

(* ------------------------------------------------------------------ *)
(* Support bound                                                       *)

let log2_support_bound t =
  let nq = t.num_qubits in
  if nq = 0 then 0
  else begin
    let sizes = block_sizes t in
    (* qubits of rank-0 blocks are in a definite basis state on every
       branch, so like classical bits they act as per-branch constants
       in the rows *)
    let det = ref 0 in
    for q = 0 to nq - 1 do
      if t.rank.(t.block.(q)) = 0 then det := !det lor (1 lsl q)
    done;
    let qmask = (1 lsl nq) - 1 in
    let bmask = Array.make nq 0 in
    for q = 0 to nq - 1 do
      bmask.(t.block.(q)) <- bmask.(t.block.(q)) lor (1 lsl q)
    done;
    (* a row whose live qubit support is nonempty and falls inside one
       block pins a dimension of that block *)
    let pins = Array.make nq [] in
    List.iter
      (fun r ->
        let e = r land qmask land lnot !det in
        if e <> 0 then begin
          let rec low k = if (e lsr k) land 1 = 1 then k else low (k + 1) in
          let rep = t.block.(low 0) in
          if e land lnot bmask.(rep) = 0 then pins.(rep) <- e :: pins.(rep)
        end)
      t.rows;
    let total = ref 0 in
    for m = 0 to nq - 1 do
      if t.block.(m) = m then begin
        let s = sizes.(m) in
        let d = s - Gf2.rank ~width:nq pins.(m) in
        total := !total + min (min t.rank.(m) s) d
      end
    done;
    min !total nq
  end

let blocks t =
  let out = ref [] in
  for m = t.num_qubits - 1 downto 0 do
    if t.block.(m) = m then begin
      let members = ref [] in
      for q = t.num_qubits - 1 downto 0 do
        if t.block.(q) = m then members := q :: !members
      done;
      out := (!members, min t.rank.(m) (List.length !members)) :: !out
    end
  done;
  !out

let pp fmt t =
  let pp_block fmt (members, r) =
    Format.fprintf fmt "{%s}:%d"
      (String.concat "," (List.map string_of_int members))
      r
  in
  let pp_row fmt r =
    let vars = ref [] in
    for b = t.num_bits - 1 downto 0 do
      if r land cbit t b <> 0 then vars := Printf.sprintf "b%d" b :: !vars
    done;
    for q = t.num_qubits - 1 downto 0 do
      if r land qbit q <> 0 then vars := Printf.sprintf "q%d" q :: !vars
    done;
    Format.fprintf fmt "%s=%d"
      (String.concat "+" !vars)
      (if r land const_bit t <> 0 then 1 else 0)
  in
  Format.fprintf fmt "@[<h>blocks %a;@ rows %a%s@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_block)
    (blocks t)
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_row)
    t.rows
    (if t.tracked then "" else " (untracked)")
