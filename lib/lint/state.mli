open Circuit

(** Abstract machine state of the forward interpreter: one
    {!Absdom.Qubit} element per qubit, one {!Absdom.Bit} element per
    classical bit.  Values are immutable from the outside: {!step}
    returns a fresh state. *)

type t = {
  qubits : Absdom.Qubit.t array;
  bits : Absdom.Bit.t array;
  rel : Reldom.t;  (** relational facts, threaded alongside *)
}

(** Every qubit [Zero], every bit [Unwritten]. *)
val init : num_qubits:int -> num_bits:int -> t

val copy : t -> t
val qubit : t -> int -> Absdom.Qubit.t
val bit : t -> int -> Absdom.Bit.t
val rel : t -> Reldom.t

(** Element-wise upper bound ({!Reldom.join} on the relational part). *)
val join : t -> t -> t

(** Static evaluation of a classical condition: [Fails] covers both a
    contradictory conjunction (which can never hold, whatever the
    register reads) and a test against a [Known] bit of the opposite
    value. *)
type cond_status = Holds | Fails | Unknown

val cond_status : t -> Instruction.cond -> cond_status

(** Transfer function of one instruction.  A [Conditioned] application
    whose condition is statically [Unknown] joins the applied and
    skipped outcomes. *)
val step : t -> Instruction.t -> t
