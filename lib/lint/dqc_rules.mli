(** DQC-specific invariant passes, applied to the outputs of the
    dynamic transformation (Algorithm 1 and its multi-slot
    generalization). *)

(** [Error] when more than [max_live] data-role qubits are live
    simultaneously — a data qubit turns live at the first gate that
    touches it and dies at its measurement or reset.  [max_live] is
    the physical slot count: 1 for the paper's design point. *)
val live_data : max_live:int -> Pass.t

(** [Error] on any reset of an answer-role qubit. *)
val answer_reset : Pass.t

(** Both passes; [max_live] defaults to 1. *)
val passes : ?max_live:int -> unit -> Pass.t list
