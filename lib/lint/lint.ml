module Absdom = Absdom
module Reldom = Reldom
module State = State
module Trace = Trace
module Deadness = Deadness
module Resource = Resource
module Diagnostic = Diagnostic
module Pass = Pass
module Passes = Passes
module Dqc_rules = Dqc_rules
module Sarif = Sarif

type report = {
  diagnostics : Diagnostic.t list;
  errors : int;
  warnings : int;
  hints : int;
  instructions : int;
  passes_run : int;
}

exception Rejected of report

let default_passes = Passes.general
let dqc_passes ?max_live () = default_passes @ Dqc_rules.passes ?max_live ()

let certifier_passes =
  [ Passes.cond_after_clobber; Passes.nonzero_global_phase_reset ]

let run ?(passes = default_passes) ?trace c =
  Obs.with_span "lint.run"
    ~attrs:[ ("passes", string_of_int (List.length passes)) ]
    (fun () ->
      let trace =
        match trace with
        | Some t ->
            if not (Circuit.Circ.equal (Trace.circuit t) c) then
              invalid_arg "Lint.run: trace belongs to a different circuit";
            t
        | None -> Trace.run c
      in
      let instructions = Trace.length trace in
      Obs.incr ~n:instructions "lint.instructions";
      let diagnostics =
        List.concat_map
          (fun (p : Pass.t) ->
            let ds = p.run trace in
            if ds <> [] && Obs.enabled () then
              Obs.incr ~n:(List.length ds) ("lint.pass." ^ p.name);
            ds)
          passes
        |> List.sort Diagnostic.compare
      in
      let count severity =
        List.length
          (List.filter
             (fun (d : Diagnostic.t) -> d.severity = severity)
             diagnostics)
      in
      {
        diagnostics;
        errors = count Diagnostic.Error;
        warnings = count Diagnostic.Warning;
        hints = count Diagnostic.Hint;
        instructions;
        passes_run = List.length passes;
      })

let clean r = r.errors = 0

let check ?passes ?trace c =
  let r = run ?passes ?trace c in
  if not (clean r) then raise (Rejected r);
  r

let summary r =
  Printf.sprintf "%d error%s, %d warning%s, %d hint%s over %d instruction%s \
                  (%d passes)"
    r.errors
    (if r.errors = 1 then "" else "s")
    r.warnings
    (if r.warnings = 1 then "" else "s")
    r.hints
    (if r.hints = 1 then "" else "s")
    r.instructions
    (if r.instructions = 1 then "" else "s")
    r.passes_run

let pp_report fmt r =
  List.iter (fun d -> Format.fprintf fmt "%a@." Diagnostic.pp d) r.diagnostics;
  Format.fprintf fmt "%s%s@."
    (if clean r then "lint: clean — " else "lint: FAILED — ")
    (summary r)

let report_to_string r = Format.asprintf "%a" pp_report r

let to_json ?name r =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "dqc.lint/1");
      ( "circuit",
        match name with Some n -> Obs.Json.String n | None -> Obs.Json.Null );
      ("instructions", Obs.Json.Int r.instructions);
      ("passes", Obs.Json.Int r.passes_run);
      ("errors", Obs.Json.Int r.errors);
      ("warnings", Obs.Json.Int r.warnings);
      ("hints", Obs.Json.Int r.hints);
      ("clean", Obs.Json.Bool (clean r));
      ( "diagnostics",
        Obs.Json.List (List.map Diagnostic.to_json r.diagnostics) );
    ]

(* every catalogued pass, deduplicated by name — the SARIF rule
   description table *)
let rule_catalogue () =
  List.fold_left
    (fun acc (p : Pass.t) ->
      if List.mem_assoc p.Pass.name acc then acc
      else (p.Pass.name, p.Pass.description) :: acc)
    []
    (dqc_passes () @ certifier_passes)
  |> List.rev

let to_sarif ?name r =
  Sarif.document ?uri:name ~rules:(rule_catalogue ()) r.diagnostics

let () =
  Printexc.register_printer (function
    | Rejected r ->
        Some
          (Printf.sprintf "Lint.Rejected: %s\n%s" (summary r)
             (String.concat "\n"
                (List.map Diagnostic.to_string
                   (List.filter
                      (fun (d : Diagnostic.t) ->
                        d.severity = Diagnostic.Error)
                      r.diagnostics))))
    | _ -> None)
