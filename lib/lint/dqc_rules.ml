(* DQC-discipline passes: invariants of the paper's dynamic
   transformation outputs that the general catalogue cannot know
   about — the single-physical-data-qubit discipline (generalized to
   [max_live] slots for Multi_transform outputs) and the rule that
   answer qubits stay live across iterations. *)

open Circuit

let q_name q = Printf.sprintf "q%d" q

let live_data ~max_live =
  Pass.make ~name:"dqc-live-data"
    ~description:
      "more data qubits live simultaneously than the DQC slot discipline \
       allows"
    (fun trace ->
      let c = Trace.circuit trace in
      let live = Array.make (Circ.num_qubits c) false in
      let count = ref 0 in
      let out = ref [] in
      let touch i q =
        if Circ.role c q = Circ.Data && not live.(q) then begin
          live.(q) <- true;
          incr count;
          if !count > max_live then begin
            let live_now =
              List.filter
                (fun p -> live.(p))
                (List.init (Circ.num_qubits c) (fun p -> p))
            in
            out :=
              Diagnostic.make ~pass:"dqc-live-data"
                ~severity:Diagnostic.Error ~instr_index:i ~qubits:live_now
                ~suggestion:
                  "measure and reset earlier data qubits first, or raise the \
                   slot count"
                (Printf.sprintf
                   "touching %s makes %d data qubits live simultaneously \
                    (%s); the DQC discipline allows %d"
                   (q_name q) !count
                   (String.concat ", " (List.map q_name live_now))
                   max_live)
              :: !out
          end
        end
      in
      let kill q =
        if Circ.role c q = Circ.Data && live.(q) then begin
          live.(q) <- false;
          decr count
        end
      in
      Trace.iteri
        (fun i ~pre:_ (instr : Instruction.t) ->
          match instr with
          | Unitary _ | Conditioned _ ->
              List.iter (touch i) (Instruction.qubits instr)
          | Measure { qubit; _ } -> kill qubit
          | Reset q -> kill q
          | Barrier _ -> ())
        trace;
      List.rev !out)

let answer_reset =
  Pass.make ~name:"dqc-answer-reset"
    ~description:"answer qubits stay live across DQC iterations: never reset"
    (fun trace ->
      let c = Trace.circuit trace in
      let out = ref [] in
      Trace.iteri
        (fun i ~pre:_ (instr : Instruction.t) ->
          match instr with
          | Reset q when Circ.role c q = Circ.Answer ->
              out :=
                Diagnostic.make ~pass:"dqc-answer-reset"
                  ~severity:Diagnostic.Error ~instr_index:i ~qubits:[ q ]
                  ~suggestion:
                    "answer qubits carry the oracle output across \
                     iterations; never reset them"
                  (Printf.sprintf "reset on answer qubit %s destroys the \
                                   oracle output"
                     (q_name q))
                :: !out
          | Reset _ | Unitary _ | Conditioned _ | Measure _ | Barrier _ -> ())
        trace;
      List.rev !out)

let passes ?(max_live = 1) () = [ live_data ~max_live; answer_reset ]
