type severity = Error | Warning | Hint

type t = {
  pass : string;
  severity : severity;
  instr_index : int;
  qubits : int list;
  bits : int list;
  message : string;
  suggestion : string option;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let severity_rank = function Error -> 0 | Warning -> 1 | Hint -> 2

let make ?(qubits = []) ?(bits = []) ?suggestion ~pass ~severity ~instr_index
    message =
  { pass; severity; instr_index; qubits; bits; message; suggestion }

let compare a b =
  let c = Stdlib.compare a.instr_index b.instr_index in
  if c <> 0 then c
  else
    let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
    if c <> 0 then c else Stdlib.compare (a.pass, a.message) (b.pass, b.message)

let pp fmt d =
  Format.fprintf fmt "#%d %s [%s] %s" d.instr_index
    (severity_to_string d.severity)
    d.pass d.message;
  match d.suggestion with
  | Some s -> Format.fprintf fmt " — %s" s
  | None -> ()

let to_string d = Format.asprintf "%a" pp d

let to_json d =
  Obs.Json.Obj
    [
      ("pass", Obs.Json.String d.pass);
      ("severity", Obs.Json.String (severity_to_string d.severity));
      ("instr_index", Obs.Json.Int d.instr_index);
      ("qubits", Obs.Json.List (List.map (fun q -> Obs.Json.Int q) d.qubits));
      ("bits", Obs.Json.List (List.map (fun b -> Obs.Json.Int b) d.bits));
      ("message", Obs.Json.String d.message);
      ( "suggestion",
        match d.suggestion with
        | Some s -> Obs.Json.String s
        | None -> Obs.Json.Null );
    ]
