(** SARIF 2.1.0 export of lint diagnostics.

    Produces a minimal, spec-conformant Static Analysis Results
    Interchange Format document (one [run] of the [dqc-lint] driver)
    so editors and CI annotate circuits from the same report the
    [dqc.lint/1] JSON carries:

    - each lint pass that fired becomes a [reportingDescriptor]
      (rule) of the driver, with its one-line description and default
      level;
    - each {!Diagnostic.t} becomes a [result]: [ruleId] is the pass
      name, [level] maps Error/Warning/Hint to [error]/[warning]/
      [note], and the location's [region.startLine] is the 1-based
      instruction index ([instr_index + 1] — the instruction stream
      is the "source file", one instruction per line, matching the
      line numbering of the circuit's QASM body);
    - the diagnostic's qubits, bits and suggestion ride in the
      result's property bag.

    The document is built on {!Obs.Json}, so it round-trips through
    {!Obs.Json.parse}. *)

(** [document ?uri ~rules diagnostics] is the complete SARIF
    document.  [uri] names the analyzed artifact (the circuit name;
    defaults to ["circuit"]); [rules] maps pass names to one-line
    descriptions — passes that fired but are not listed get an empty
    description. *)
val document :
  ?uri:string -> rules:(string * string) list -> Diagnostic.t list -> Obs.Json.t
