(** Static analysis over the circuit IR: a forward abstract
    interpreter ({!Trace}, {!State}, {!Absdom}) plus a registry of lint
    passes producing structured {!Diagnostic}s.  See docs/LINTING.md
    for the lattice, the pass catalogue and the [dqc.lint/1] JSON
    schema.

    Typical use:
    {[
      let report = Lint.run ~passes:(Lint.dqc_passes ()) circuit in
      if not (Lint.clean report) then
        print_string (Lint.report_to_string report)
    ]}

    Telemetry: one [lint.run] span wrapping a [lint.interpret] span,
    an [lint.instructions] counter, and one [lint.pass.<name>] counter
    per pass that produced diagnostics. *)

module Absdom = Absdom
module Reldom = Reldom
module State = State
module Trace = Trace
module Deadness = Deadness
module Resource = Resource
module Diagnostic = Diagnostic
module Pass = Pass
module Passes = Passes
module Dqc_rules = Dqc_rules
module Sarif = Sarif

type report = {
  diagnostics : Diagnostic.t list;  (** sorted by {!Diagnostic.compare} *)
  errors : int;
  warnings : int;
  hints : int;
  instructions : int;  (** instructions interpreted *)
  passes_run : int;
}

(** Raised by {!check} (and the pipeline's lint gate) when a circuit
    carries error-severity diagnostics.  A printer is registered, so
    uncaught exceptions list the errors. *)
exception Rejected of report

(** {!Passes.general} — the catalogue meaningful for any circuit. *)
val default_passes : Pass.t list

(** General catalogue plus the DQC-discipline passes
    ({!Dqc_rules.passes}); [max_live] defaults to 1. *)
val dqc_passes : ?max_live:int -> unit -> Pass.t list

(** Certifier-support passes ({!Passes.cond_after_clobber},
    {!Passes.nonzero_global_phase_reset}) — advisory warnings about
    patterns that weaken symbolic certification.  Opt-in: not part of
    {!default_passes} or {!dqc_passes}. *)
val certifier_passes : Pass.t list

(** Interpret the circuit once and run every pass over the trace
    ([passes] defaults to {!default_passes}).  A caller that already
    interpreted the circuit — e.g. the pipeline's analysis pass, whose
    facts are shared through the pass context — can pass its [trace]
    to skip the re-interpretation.
    @raise Invalid_argument when [trace] belongs to another circuit. *)
val run : ?passes:Pass.t list -> ?trace:Trace.t -> Circuit.Circ.t -> report

(** A report with no error-severity diagnostics.  Warnings and hints
    do not make a circuit unclean. *)
val clean : report -> bool

(** [run], then @raise Rejected when the report is not {!clean}. *)
val check : ?passes:Pass.t list -> ?trace:Trace.t -> Circuit.Circ.t -> report

(** One-line count summary, e.g. ["2 errors, 0 warnings, 1 hint over
    34 instructions (10 passes)"]. *)
val summary : report -> string

val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string

(** The [dqc.lint/1] document; [name] fills the [circuit] field. *)
val to_json : ?name:string -> report -> Obs.Json.t

(** The report as a SARIF 2.1.0 document ({!Sarif.document}); [name]
    fills the artifact URI.  The rule table carries the descriptions
    of the full pass catalogue. *)
val to_sarif : ?name:string -> report -> Obs.Json.t
