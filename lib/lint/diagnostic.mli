(** Structured linter diagnostics.

    [instr_index] is the 0-based position in the circuit's instruction
    stream; end-of-circuit diagnostics (e.g. an ancilla not returned
    to |0⟩) use the one-past-last index.  The JSON encoding is one
    element of the [diagnostics] array of the [dqc.lint/1] document
    (see docs/LINTING.md). *)

type severity = Error | Warning | Hint

type t = {
  pass : string;  (** name of the pass that produced the diagnostic *)
  severity : severity;
  instr_index : int;
  qubits : int list;  (** qubits the diagnostic is about *)
  bits : int list;  (** classical bits the diagnostic is about *)
  message : string;
  suggestion : string option;  (** how to fix it, when known *)
}

val severity_to_string : severity -> string

(** [Error] < [Warning] < [Hint]. *)
val severity_rank : severity -> int

val make :
  ?qubits:int list ->
  ?bits:int list ->
  ?suggestion:string ->
  pass:string ->
  severity:severity ->
  instr_index:int ->
  string ->
  t

(** Orders by instruction index, then severity, then pass/message. *)
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val to_json : t -> Obs.Json.t
