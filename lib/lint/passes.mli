(** The general pass catalogue — structural checks meaningful for any
    dynamic circuit.  DQC-discipline passes are in {!Dqc_rules}; the
    combined registry lives in {!Lint}. *)

(** [Error]: a gate touches a freshly measured, never-reset qubit. *)
val use_after_measure : Pass.t

(** [Error]: a classical condition reads an [Unwritten] bit. *)
val cond_unmeasured_bit : Pass.t

(** [Error] on an internally contradictory conjunction
    ([c3 == 1 && c3 == 0]); [Warning] on a test that contradicts a
    statically known bit value. *)
val contradictory_condition : Pass.t

(** [Warning]: a measurement overwrites a result nothing has read. *)
val measurement_clobbers_bit : Pass.t

(** [Hint]: reset of a provably-|0⟩ qubit. *)
val redundant_reset : Pass.t

(** [Warning]: a gate whose operands are all measured-and-never-
    referenced-again cannot affect any outcome. *)
val dead_gate : Pass.t

(** [Hint]: a mid-circuit measurement whose result is never read. *)
val dead_bit : Pass.t

(** [Error] when an ancilla provably ends in |1⟩; [Hint] when its
    return to |0⟩ cannot be verified statically. *)
val ancilla_not_zero : Pass.t

(** All of the above, in catalogue order. *)
val general : Pass.t list

(** [Warning]: a condition reads a bit whose latest write measured a
    qubit immediately after its reset with nothing in between — the
    recorded value is provably 0, so the test is constant.  Part of
    {!Lint.certifier_passes}, not {!general}. *)
val cond_after_clobber : Pass.t

(** [Warning]: a reset discards a qubit that may still carry coherence
    ([Superposed] or [Top]).  Legal, but the discarded state — down to
    a branch-dependent global phase — leaks into the environment, and
    the symbolic certifier must model it as a ghost observation, which
    weakens channel-scope proofs.  Part of {!Lint.certifier_passes},
    not {!general}. *)
val nonzero_global_phase_reset : Pass.t
