module J = Obs.Json

let level_of_severity (s : Diagnostic.severity) =
  match s with
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Hint -> "note"

(* rules that fired, in order of first appearance, each with the
   level of its first diagnostic as the default configuration *)
let fired_rules diagnostics =
  List.fold_left
    (fun acc (d : Diagnostic.t) ->
      if List.mem_assoc d.Diagnostic.pass acc then acc
      else acc @ [ (d.Diagnostic.pass, d.Diagnostic.severity) ])
    [] diagnostics

let rule_json rules (name, severity) =
  let description =
    match List.assoc_opt name rules with Some d -> d | None -> ""
  in
  J.Obj
    [
      ("id", J.String name);
      ("shortDescription", J.Obj [ ("text", J.String description) ]);
      ( "defaultConfiguration",
        J.Obj [ ("level", J.String (level_of_severity severity)) ] );
    ]

let result_json ~uri ~rule_index (d : Diagnostic.t) =
  let properties =
    [
      ("qubits", J.List (List.map (fun q -> J.Int q) d.Diagnostic.qubits));
      ("bits", J.List (List.map (fun b -> J.Int b) d.Diagnostic.bits));
    ]
    @
    match d.Diagnostic.suggestion with
    | Some s -> [ ("suggestion", J.String s) ]
    | None -> []
  in
  J.Obj
    [
      ("ruleId", J.String d.Diagnostic.pass);
      ("ruleIndex", J.Int rule_index);
      ("level", J.String (level_of_severity d.Diagnostic.severity));
      ("message", J.Obj [ ("text", J.String d.Diagnostic.message) ]);
      ( "locations",
        J.List
          [
            J.Obj
              [
                ( "physicalLocation",
                  J.Obj
                    [
                      ( "artifactLocation",
                        J.Obj [ ("uri", J.String uri) ] );
                      ( "region",
                        J.Obj
                          [
                            ( "startLine",
                              J.Int (d.Diagnostic.instr_index + 1) );
                          ] );
                    ] );
              ];
          ] );
      ("properties", J.Obj properties);
    ]

let document ?(uri = "circuit") ~rules diagnostics =
  let fired = fired_rules diagnostics in
  let index_of pass =
    let rec go i = function
      | [] -> 0
      | (name, _) :: rest -> if name = pass then i else go (i + 1) rest
    in
    go 0 fired
  in
  let driver =
    J.Obj
      [
        ("name", J.String "dqc-lint");
        ("informationUri", J.String "https://example.org/dqc/docs/LINTING.md");
        ("version", J.String "1.0.0");
        ("rules", J.List (List.map (rule_json rules) fired));
      ]
  in
  let run =
    J.Obj
      [
        ("tool", J.Obj [ ("driver", driver) ]);
        ( "artifacts",
          J.List [ J.Obj [ ("location", J.Obj [ ("uri", J.String uri) ]) ] ]
        );
        ( "results",
          J.List
            (List.map
               (fun (d : Diagnostic.t) ->
                 result_json ~uri ~rule_index:(index_of d.Diagnostic.pass) d)
               diagnostics) );
      ]
  in
  J.Obj
    [
      ( "$schema",
        J.String "https://json.schemastore.org/sarif-2.1.0.json" );
      ("version", J.String "2.1.0");
      ("runs", J.List [ run ]);
    ]
