(** The shared deadness / constant-fact query API.

    Three consumers need the same static facts about an interpreted
    circuit: the {!Resource} analyzer (to build its simplified witness
    circuit), the diagnose-only lint passes [dead-gate] /
    [redundant-reset] in {!Passes}, and the certified optimizer
    ([Dqc.Optimize]) that rewrites what those passes merely report.
    This module is the single source of truth for those facts, so a
    diagnostic and the rewrite that fixes it can never disagree.

    Per-state queries combine the per-wire lattice ({!Absdom}) with
    the relational GF(2) rows ({!Reldom}): a fact is returned only
    when it holds on {e every} execution branch. *)

open Circuit

(** Whole-trace tables, computed once per trace. *)
type t

val of_trace : Trace.t -> t
val trace : t -> Trace.t

(** {1 Per-state facts} *)

(** The basis value a qubit provably reads at this point, combining
    the per-wire lattice with the relational rows; [None] when the
    qubit may be in superposition or its value is branch-dependent. *)
val qubit_value : State.t -> int -> bool option

(** [qubit_value] pinned to [false]: the qubit provably reads |0⟩. *)
val provably_zero : State.t -> int -> bool

(** The value a classical bit holds at runtime here, when provable.
    An [Unwritten] bit reads its initial value [false]; a [Written]
    bit may still be pinned by the relational rows. *)
val bit_value : State.t -> int -> bool option

(** Gates that fix |0⟩ exactly — droppable on a provably-|0⟩ target.
    An uncontrolled Rz only contributes a global phase there, which is
    unobservable; the controlled version kicks a relative phase and
    must stay. *)
val dead_on_zero : controlled:bool -> Gate.t -> bool

(** Exact, observation-preserving gate simplification: a provably-|0⟩
    control kills the application ([None]), a provably-|1⟩ control is
    dropped from the control list, and a |0⟩-fixing gate on a
    provably-|0⟩ target is dead. *)
val simplify_app : State.t -> Instruction.app -> Instruction.app option

(** One instruction of the analyzer's witness circuit: [None] when
    the instruction provably has no observable effect, otherwise the
    simplified equivalent.  Conditions are resolved through
    {!State.cond_status}; measures, resets and barriers are kept. *)
val witness_instr : State.t -> Instruction.t -> Instruction.t option

(** {1 Whole-trace facts} *)

(** Last index at which each qubit is referenced by an effectful
    instruction (barriers read nothing and keep nothing alive);
    [-1] when never referenced. *)
val last_reference : t -> int array

(** First index at which each qubit is measured; [max_int] when
    never. *)
val first_measure : t -> int array

(** [dead_unitary t i]: instruction [i] is an (unconditioned) unitary
    acting after the final measurement of every operand, with no later
    reference to any of them — it cannot affect any outcome.  This is
    exactly the [dead-gate] lint criterion; conditioned gates are
    never dead here (the DQC uncomputation idiom returns a physical
    qubit to |0⟩ for reuse beyond the circuit's scope). *)
val dead_unitary : t -> int -> bool

(** [redundant_reset t i]: instruction [i] resets a qubit that
    provably already reads |0⟩ — exactly the [redundant-reset] lint
    criterion. *)
val redundant_reset : t -> int -> bool

(** Backward observability-liveness: [true] at index [i] when the
    instruction provably cannot influence any measured bit — the
    query behind the optimizer's dead-code elimination, strictly
    stronger than {!dead_unitary}.

    A wire is {e observable} at circuit end iff it is never measured
    anywhere (its final quantum state is then treated as an output;
    on measured wires the classical record is the output).  Scanning
    backward: a measurement keeps its wire observable; a reset makes
    the wire's {e prior} state unobservable (any purely-local
    operation before a reset leaves the reduced state of the rest of
    the system unchanged), and is itself dead when the wire is not
    observable after it; a gate whose operands are all unobservable
    is dead, and otherwise makes every operand observable.

    Conditioned gates are {e not} exempt here: under the classical
    outcome-channel contract the optimizer certifies against
    ({!Verify.Certify.check_channel}), a trailing classically
    controlled uncomputation on a dead wire is removable — the lint
    [dead-gate] pass deliberately does not diagnose the idiom, but
    the certified rewrite may cancel it. *)
val dead_set : t -> bool array
