type t = {
  name : string;
  description : string;
  run : Trace.t -> Diagnostic.t list;
}

let make ~name ~description run = { name; description; run }
