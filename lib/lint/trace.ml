open Circuit

type t = { circuit : Circ.t; instrs : Instruction.t array; pre : State.t array }

let run c =
  Obs.with_span "lint.interpret" (fun () ->
      let instrs = Array.of_list (Circ.instructions c) in
      let n = Array.length instrs in
      let s0 =
        State.init ~num_qubits:(Circ.num_qubits c) ~num_bits:(Circ.num_bits c)
      in
      let pre = Array.make (n + 1) s0 in
      for i = 0 to n - 1 do
        pre.(i + 1) <- State.step pre.(i) instrs.(i)
      done;
      { circuit = c; instrs; pre })

let circuit t = t.circuit
let length t = Array.length t.instrs
let instr t i = t.instrs.(i)
let pre t i = t.pre.(i)
let final t = t.pre.(Array.length t.instrs)

let iteri f t =
  Array.iteri (fun i instr -> f i ~pre:t.pre.(i) instr) t.instrs
