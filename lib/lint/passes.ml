(* The general pass catalogue.  Every pass is a pure function of the
   interpreted trace; DQC-discipline passes live in [Dqc_rules]. *)

open Circuit

let q_name q = Printf.sprintf "q%d" q
let b_name b = Printf.sprintf "c%d" b

(* Whole-trace liveness tables come from the shared {!Deadness} API. *)
let last_reference trace = Deadness.last_reference (Deadness.of_trace trace)

(* ------------------------------------------------------------------ *)

let use_after_measure =
  Pass.make ~name:"use-after-measure"
    ~description:
      "gate touches a qubit after its measurement with no intervening reset"
    (fun trace ->
      let out = ref [] in
      Trace.iteri
        (fun i ~pre (instr : Instruction.t) ->
          match instr with
          | Unitary _ | Conditioned _ ->
              List.iter
                (fun q ->
                  if State.qubit pre q = Absdom.Qubit.Collapsed then
                    out :=
                      Diagnostic.make ~pass:"use-after-measure"
                        ~severity:Diagnostic.Error ~instr_index:i ~qubits:[ q ]
                        ~suggestion:
                          (Printf.sprintf
                             "insert `reset %s` before reusing the qubit"
                             (q_name q))
                        (Printf.sprintf
                           "%s touches %s after its measurement with no \
                            intervening reset"
                           (Instruction.to_string instr) (q_name q))
                      :: !out)
                (Instruction.qubits instr)
          | Measure _ | Reset _ | Barrier _ -> ())
        trace;
      List.rev !out)

let cond_unmeasured_bit =
  Pass.make ~name:"cond-unmeasured-bit"
    ~description:"classical condition reads a bit no measurement has written"
    (fun trace ->
      let out = ref [] in
      Trace.iteri
        (fun i ~pre (instr : Instruction.t) ->
          match instr with
          | Conditioned (c, _) ->
              List.iter
                (fun (b, _) ->
                  if State.bit pre b = Absdom.Bit.Unwritten then
                    out :=
                      Diagnostic.make ~pass:"cond-unmeasured-bit"
                        ~severity:Diagnostic.Error ~instr_index:i ~bits:[ b ]
                        ~suggestion:
                          (Printf.sprintf
                             "measure into %s before this gate, or drop the \
                              test"
                             (b_name b))
                        (Printf.sprintf
                           "%s reads %s, which no measurement has written"
                           (Instruction.to_string instr) (b_name b))
                      :: !out)
                c.bits
          | Unitary _ | Measure _ | Reset _ | Barrier _ -> ())
        trace;
      List.rev !out)

let contradictory_condition =
  Pass.make ~name:"contradictory-condition"
    ~description:
      "condition is statically false: internal contradiction or a test \
       against a known bit value"
    (fun trace ->
      let out = ref [] in
      Trace.iteri
        (fun i ~pre (instr : Instruction.t) ->
          match instr with
          | Conditioned (c, _) ->
              let contradictions =
                List.filter_map
                  (fun (b, v) ->
                    if v && List.mem (b, false) c.bits then Some b else None)
                  c.bits
              in
              if contradictions <> [] then
                out :=
                  Diagnostic.make ~pass:"contradictory-condition"
                    ~severity:Diagnostic.Error ~instr_index:i
                    ~bits:contradictions
                    ~suggestion:
                      "delete the gate or fix the condition \
                       (Instruction.cond_tests rejects such conjunctions)"
                    (Printf.sprintf
                       "%s tests %s against both 1 and 0: the condition can \
                        never hold"
                       (Instruction.to_string instr)
                       (String.concat ", " (List.map b_name contradictions)))
                  :: !out
              else
                List.iter
                  (fun (b, v) ->
                    match State.bit pre b with
                    | Absdom.Bit.Known x when x <> v ->
                        out :=
                          Diagnostic.make ~pass:"contradictory-condition"
                            ~severity:Diagnostic.Warning ~instr_index:i
                            ~bits:[ b ]
                            ~suggestion:"the gate never fires; delete it"
                            (Printf.sprintf
                               "%s tests %s == %d, but the bit provably reads \
                                %d here"
                               (Instruction.to_string instr) (b_name b)
                               (if v then 1 else 0)
                               (if x then 1 else 0))
                          :: !out
                    | Absdom.Bit.Known _ | Absdom.Bit.Unwritten
                    | Absdom.Bit.Written ->
                        ())
                  c.bits
          | Unitary _ | Measure _ | Reset _ | Barrier _ -> ())
        trace;
      List.rev !out)

let measurement_clobbers_bit =
  Pass.make ~name:"measurement-clobbers-bit"
    ~description:"measurement overwrites an earlier result nothing has read"
    (fun trace ->
      let num_bits = Circ.num_bits (Trace.circuit trace) in
      let last_write = Array.make num_bits (-1) in
      let read_since = Array.make num_bits true in
      let out = ref [] in
      Trace.iteri
        (fun i ~pre:_ (instr : Instruction.t) ->
          match instr with
          | Conditioned (c, _) ->
              List.iter (fun (b, _) -> read_since.(b) <- true) c.bits
          | Measure { bit; _ } ->
              if last_write.(bit) >= 0 && not read_since.(bit) then
                out :=
                  Diagnostic.make ~pass:"measurement-clobbers-bit"
                    ~severity:Diagnostic.Warning ~instr_index:i ~bits:[ bit ]
                    ~suggestion:
                      (Printf.sprintf
                         "read %s before remeasuring, or measure into a \
                          fresh bit"
                         (b_name bit))
                    (Printf.sprintf
                       "measurement overwrites %s, whose value from \
                        instruction #%d nothing has read"
                       (b_name bit) last_write.(bit))
                  :: !out;
              last_write.(bit) <- i;
              read_since.(bit) <- false
          | Unitary _ | Reset _ | Barrier _ -> ())
        trace;
      List.rev !out)

let redundant_reset =
  Pass.make ~name:"redundant-reset"
    ~description:"reset of a qubit that provably already reads |0⟩"
    (fun trace ->
      let out = ref [] in
      Trace.iteri
        (fun i ~pre (instr : Instruction.t) ->
          match instr with
          | Reset q when Deadness.provably_zero pre q ->
              out :=
                Diagnostic.make ~pass:"redundant-reset"
                  ~severity:Diagnostic.Hint ~instr_index:i ~qubits:[ q ]
                  ~suggestion:"drop the reset"
                  (Printf.sprintf "%s is provably |0⟩ here: the reset is \
                                   redundant"
                     (q_name q))
                :: !out
          | Reset _ | Unitary _ | Conditioned _ | Measure _ | Barrier _ -> ())
        trace;
      List.rev !out)

let dead_gate =
  Pass.make ~name:"dead-gate"
    ~description:
      "gate after the final measurement of every operand cannot affect any \
       outcome"
    (fun trace ->
      let dead = Deadness.of_trace trace in
      let out = ref [] in
      Trace.iteri
        (fun i ~pre:_ (instr : Instruction.t) ->
          match instr with
          (* Conditioned gates are exempt (see [Deadness.dead_unitary]):
             a classically controlled correction after the final
             measurement is the DQC uncomputation idiom — it returns
             the physical qubit to |0> so it can be reused beyond this
             circuit's scope. *)
          | Conditioned _ -> ()
          | Unitary _ ->
              let qs = Instruction.qubits instr in
              if Deadness.dead_unitary dead i then
                out :=
                  Diagnostic.make ~pass:"dead-gate"
                    ~severity:Diagnostic.Warning ~instr_index:i ~qubits:qs
                    ~suggestion:"delete the gate"
                    (Printf.sprintf
                       "%s acts after the final measurement of %s and nothing \
                        references %s again: it cannot affect any outcome"
                       (Instruction.to_string instr)
                       (String.concat ", " (List.map q_name qs))
                       (if List.length qs = 1 then "the qubit" else "them"))
                  :: !out
          | Measure _ | Reset _ | Barrier _ -> ())
        trace;
      List.rev !out)

let dead_bit =
  Pass.make ~name:"dead-bit"
    ~description:"result of a mid-circuit measurement is never read"
    (fun trace ->
      let n = Trace.length trace in
      let num_bits = Circ.num_bits (Trace.circuit trace) in
      let last = last_reference trace in
      (* read/write indices per bit, ascending *)
      let reads = Array.make num_bits [] in
      let writes = Array.make num_bits [] in
      Trace.iteri
        (fun i ~pre:_ (instr : Instruction.t) ->
          match instr with
          | Conditioned (c, _) ->
              List.iter (fun (b, _) -> reads.(b) <- i :: reads.(b)) c.bits
          | Measure { bit; _ } -> writes.(bit) <- i :: writes.(bit)
          | Unitary _ | Reset _ | Barrier _ -> ())
        trace;
      Array.iteri (fun b l -> reads.(b) <- List.rev l) reads;
      Array.iteri (fun b l -> writes.(b) <- List.rev l) writes;
      let out = ref [] in
      Trace.iteri
        (fun i ~pre:_ (instr : Instruction.t) ->
          match instr with
          | Measure { qubit; bit } when last.(qubit) > i ->
              (* mid-circuit measurement: the qubit lives on *)
              let next_write =
                match List.find_opt (fun j -> j > i) writes.(bit) with
                | Some j -> j
                | None -> n
              in
              let read_later =
                List.exists (fun j -> j > i && j < next_write) reads.(bit)
              in
              if not read_later then
                out :=
                  Diagnostic.make ~pass:"dead-bit" ~severity:Diagnostic.Hint
                    ~instr_index:i ~qubits:[ qubit ] ~bits:[ bit ]
                    ~suggestion:
                      (Printf.sprintf
                         "if %s is not an output of the circuit, drop the \
                          measurement"
                         (b_name bit))
                    (Printf.sprintf
                       "the result of this mid-circuit measurement (%s) is \
                        never read"
                       (b_name bit))
                  :: !out
          | Measure _ | Unitary _ | Conditioned _ | Reset _ | Barrier _ -> ())
        trace;
      List.rev !out)

let ancilla_not_zero =
  Pass.make ~name:"ancilla-not-zero"
    ~description:"ancilla qubit is not returned to |0⟩ at circuit end (Eqn 3)"
    (fun trace ->
      let c = Trace.circuit trace in
      let final = Trace.final trace in
      let n = Trace.length trace in
      let out = ref [] in
      List.iter
        (fun q ->
          match State.qubit final q with
          | Absdom.Qubit.Zero -> ()
          | Absdom.Qubit.One ->
              out :=
                Diagnostic.make ~pass:"ancilla-not-zero"
                  ~severity:Diagnostic.Error ~instr_index:n ~qubits:[ q ]
                  ~suggestion:"uncompute the ancilla before circuit end"
                  (Printf.sprintf
                     "ancilla %s provably ends in |1⟩ — its uncomputation is \
                      broken"
                     (q_name q))
                :: !out
          | Absdom.Qubit.Basis | Absdom.Qubit.Collapsed
          | Absdom.Qubit.Superposed | Absdom.Qubit.Top ->
              out :=
                Diagnostic.make ~pass:"ancilla-not-zero"
                  ~severity:Diagnostic.Hint ~instr_index:n ~qubits:[ q ]
                  ~suggestion:
                    "uncompute the ancilla, or end with an explicit reset"
                  (Printf.sprintf
                     "cannot statically verify that ancilla %s is returned \
                      to |0⟩ (abstract state: %s)"
                     (q_name q)
                     (Absdom.Qubit.to_string (State.qubit final q)))
                :: !out)
        (Circ.qubits_with_role c Circ.Ancilla);
      List.rev !out)

(* ------------------------------------------------------------------ *)
(* Certifier-support passes: not part of [general] — they flag
   patterns that are legal but make symbolic certification weaker or
   expose a provably-degenerate classical control.  Registered through
   [Lint.certifier_passes]. *)

let cond_after_clobber =
  Pass.make ~name:"cond-after-clobber"
    ~description:
      "classical condition reads a bit whose value is the measurement of a \
       freshly reset qubit — provably constant"
    (fun trace ->
      let c = Trace.circuit trace in
      (* [fresh_reset.(q)]: q was reset and nothing has touched it since.
         [degenerate.(b)]: b's latest write measured such a qubit, so the
         recorded value is provably 0. *)
      let fresh_reset = Array.make (Circ.num_qubits c) false in
      let degenerate = Array.make (Circ.num_bits c) None in
      let out = ref [] in
      Trace.iteri
        (fun i ~pre:_ (instr : Instruction.t) ->
          match instr with
          | Unitary _ ->
              List.iter
                (fun q -> fresh_reset.(q) <- false)
                (Instruction.qubits instr)
          | Conditioned (cond, _) ->
              List.iter
                (fun (b, v) ->
                  match degenerate.(b) with
                  | Some (q, m) ->
                      out :=
                        Diagnostic.make ~pass:"cond-after-clobber"
                          ~severity:Diagnostic.Warning ~instr_index:i
                          ~qubits:[ q ] ~bits:[ b ]
                          ~suggestion:
                            (if v then "delete the gate: it can never fire"
                             else
                               "apply the gate unconditionally: the test \
                                always passes")
                          (Printf.sprintf
                             "%s tests %s, but %s was written (instruction \
                              %d) by measuring %s immediately after its \
                              reset — the value is provably 0"
                             (Instruction.to_string instr) (b_name b)
                             (b_name b) m (q_name q))
                        :: !out
                  | None -> ())
                cond.bits;
              List.iter
                (fun q -> fresh_reset.(q) <- false)
                (Instruction.qubits instr)
          | Measure { qubit; bit } ->
              degenerate.(bit) <-
                (if fresh_reset.(qubit) then Some (qubit, i) else None);
              fresh_reset.(qubit) <- false
          | Reset qubit -> fresh_reset.(qubit) <- true
          | Barrier _ -> ())
        trace;
      List.rev !out)

let nonzero_global_phase_reset =
  Pass.make ~name:"nonzero-global-phase-reset"
    ~description:
      "reset discards a possibly-coherent qubit: the certifier must treat \
       the discarded state as a ghost observation"
    (fun trace ->
      let out = ref [] in
      Trace.iteri
        (fun i ~pre (instr : Instruction.t) ->
          match instr with
          | Reset q -> (
              match State.qubit pre q with
              | Absdom.Qubit.Superposed | Absdom.Qubit.Top ->
                  out :=
                    Diagnostic.make ~pass:"nonzero-global-phase-reset"
                      ~severity:Diagnostic.Warning ~instr_index:i ~qubits:[ q ]
                      ~suggestion:
                        (Printf.sprintf
                           "measure %s first (the DQC discipline), or \
                            uncompute it to a basis state before the reset"
                           (q_name q))
                      (Printf.sprintf
                         "reset discards %s while it may carry coherence \
                          (abstract state: %s); relative phases — including \
                          a branch-dependent global phase — leak into the \
                          environment, so the certifier must ghost the \
                          discarded state"
                         (q_name q)
                         (Absdom.Qubit.to_string (State.qubit pre q)))
                    :: !out
              | Absdom.Qubit.Zero | Absdom.Qubit.One | Absdom.Qubit.Basis
              | Absdom.Qubit.Collapsed ->
                  ())
          | Unitary _ | Conditioned _ | Measure _ | Barrier _ -> ())
        trace;
      List.rev !out)

let general =
  [
    use_after_measure;
    cond_unmeasured_bit;
    contradictory_condition;
    measurement_clobbers_bit;
    redundant_reset;
    dead_gate;
    dead_bit;
    ancilla_not_zero;
  ]
