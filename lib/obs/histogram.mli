(** Log-linear (HDR-style) latency histograms with bounded-error
    percentiles.

    A histogram is a flat bucket array: [2^5 = 32] linear sub-buckets
    per power of two, so any quantile estimate is a {e lower bound}
    within relative error {!error_bound} (3.125%) of the true sample —
    small values (below 64 ns) are exact.  Recording is two shifts and
    an increment; merging is bucket-wise addition, which makes
    per-domain histograms combine at flush into totals independent of
    the domain count (the same determinism contract counters have).
    Min, max and sum are tracked exactly alongside the buckets.

    [Obs.with_span] records every span's duration into the histogram
    of the same name; [Obs.record_ns] records into a named histogram
    directly (the per-shot and per-kernel-op paths, where retaining a
    span per event would be too costly).  Exported per name in the
    [histograms] section of the [dqc.obs.metrics/2] document. *)

type t

val create : unit -> t

(** [record t v] adds one observation of [v] nanoseconds (negative
    values clamp to 0; values above 2^48 saturate the top bucket). *)
val record : t -> int -> unit

val count : t -> int
val is_empty : t -> bool

(** Exact tracked extremes ([min_value] is 0 when empty). *)
val min_value : t -> int

val max_value : t -> int
val sum : t -> float
val mean : t -> float

(** [quantile t q] estimates the [q]-quantile (rank [ceil (q * count)])
    as the lower bound of its bucket, clamped into the exact
    [min_value]/[max_value] envelope.  The true sample lies within
    [est * (1 + error_bound) + 1]. *)
val quantile : t -> float -> int

val p50 : t -> int
val p90 : t -> int
val p99 : t -> int
val p999 : t -> int

(** Maximum relative quantile error the bucket layout admits. *)
val error_bound : float

(** Reset to empty in place, keeping the bucket storage allocated. *)
val clear : t -> unit

(** [merge_into ~into src] adds [src]'s observations to [into]. *)
val merge_into : into:t -> t -> unit

(** Fresh histogram holding both inputs' observations. *)
val merge : t -> t -> t

val copy : t -> t

(** Summary object: [count], [sum_ns], [min_ns], [max_ns], [mean_ns],
    [p50_ns], [p90_ns], [p99_ns], [p999_ns]. *)
val to_json : t -> Json.t
