(* Zero-dependency telemetry substrate: hierarchical monotonic spans,
   named counters/gauges, per-domain buffering, and pluggable sinks
   (in-memory collector, Chrome trace JSON, flat metrics JSON; the
   human-readable table lives in Report.Obs_report).  See
   docs/OBSERVABILITY.md for the span model and counter registry. *)

module Clock = Clock
module Json = Json
module Histogram = Histogram
module Collector = Collector
module Flight = Flight
module Chrome_trace = Chrome_trace
module Metrics_json = Metrics_json
include Runtime
