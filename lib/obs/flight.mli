(** Flight recorder: fixed-size lock-free ring of structured events.

    Complements the metrics collector with {e forensics}: pass
    begin/end snapshots, lint diagnostics, certifier verdicts, RNG
    seeds and prefix-cache traffic are recorded as typed events in a
    wrapping ring, and dumped as JSON (schema [dqc.flight/1]) either on
    demand ([--flight-record out.json]) or automatically when the
    pipeline raises.  Writers claim slots with one atomic
    fetch-and-add — no locks, safe from any domain; when no recorder
    is armed, {!record} costs one Atomic load and a branch. *)

type event = {
  seq : int;  (** global sequence number, gap-free across domains *)
  t_ns : int64;  (** {!Clock.now_ns} at record time *)
  tid : int;  (** integer id of the recording domain *)
  kind : string;  (** event type, e.g. ["pass.begin"], ["certify.verdict"] *)
  data : (string * Json.t) list;
}

type t

(** ["dqc.flight/1"], stamped into every dump. *)
val schema : string

(** Arm a fresh recorder (default capacity 1024 events); [dump_path]
    is where {!dump_on_raise} writes.
    @raise Invalid_argument when [capacity < 1]. *)
val install : ?capacity:int -> ?dump_path:string -> unit -> t

val uninstall : unit -> unit

(** [with_recorder f]: {!install}, run [f], {!uninstall} (also on
    exception); returns the recorder alongside [f]'s result. *)
val with_recorder :
  ?capacity:int -> ?dump_path:string -> (unit -> 'a) -> t * 'a

(** Is a recorder armed?  Guard dynamic event construction on this. *)
val enabled : unit -> bool

(** The armed recorder, if any. *)
val current : unit -> t option

(** [record ~kind data] appends one event (no-op when unarmed).  The
    ring wraps: only the most recent [capacity] events survive. *)
val record : kind:string -> (string * Json.t) list -> unit

(** Total events ever recorded (including overwritten ones). *)
val recorded : t -> int

(** Events lost to wraparound: [max 0 (recorded - capacity)]. *)
val dropped : t -> int

(** Surviving events in sequence order. *)
val events : t -> event list

val to_json : t -> Json.t
val to_string : t -> string
val write : path:string -> t -> unit

(** Record a [pipeline.raised] event and dump to the armed
    [dump_path]; returns the path written, or [None] when the recorder
    is off or pathless.  Called by [Dqc.Pipeline.compile] when a gate
    exception escapes. *)
val dump_on_raise : exn_name:string -> detail:string -> string option
