type span = {
  name : string;
  start_ns : int64;
  dur_ns : int64;
  tid : int;
  depth : int;
  attrs : (string * string) list;
}

type span_stat = {
  count : int;
  total_ns : int64;
  min_ns : int64;
  max_ns : int64;
}

(* How per-domain values of the same gauge combine at flush.  The old
   behaviour (last batch to flush wins) was a race once two domains set
   the same gauge; [Max] is the default because every current gauge is
   a "how far did this run get" measure where the largest observation
   is the honest summary.  [Last] survives for gauges that are truly
   set-once-on-main. *)
type gauge_rule = Max | Min | Sum | Last

let gauge_rules : (string, gauge_rule) Hashtbl.t = Hashtbl.create 8
let set_gauge_rule name rule = Hashtbl.replace gauge_rules name rule

let gauge_rule name =
  Option.value ~default:Max (Hashtbl.find_opt gauge_rules name)

let combine_gauge rule prev v =
  match rule with
  | Max -> Float.max prev v
  | Min -> Float.min prev v
  | Sum -> prev +. v
  | Last -> v

type t = {
  mutex : Mutex.t;
  mutable recorded : span list; (* newest first, within a flush batch *)
  counters : (string, int) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  hists : (string, Histogram.t) Hashtbl.t;
  epoch_ns : int64;
  main_tid : int;
}

let create () =
  {
    mutex = Mutex.create ();
    recorded = [];
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 32;
    epoch_ns = Clock.now_ns ();
    main_tid = (Domain.self () :> int);
  }

let epoch_ns t = t.epoch_ns
let main_tid t = t.main_tid

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let absorb ?(hists = []) t ~spans ~counters ~gauges =
  locked t (fun () ->
      t.recorded <- List.rev_append spans t.recorded;
      List.iter
        (fun (name, n) ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt t.counters name) in
          Hashtbl.replace t.counters name (prev + n))
        counters;
      List.iter
        (fun (name, v) ->
          match Hashtbl.find_opt t.gauges name with
          | None -> Hashtbl.replace t.gauges name v
          | Some prev ->
              Hashtbl.replace t.gauges name (combine_gauge (gauge_rule name) prev v))
        gauges;
      List.iter
        (fun (name, h) ->
          match Hashtbl.find_opt t.hists name with
          | Some into -> Histogram.merge_into ~into h
          | None -> Hashtbl.replace t.hists name (Histogram.copy h))
        hists)

let spans t =
  locked t (fun () ->
      List.sort
        (fun a b ->
          match Int64.compare a.start_ns b.start_ns with
          | 0 -> compare a.depth b.depth
          | c -> c)
        t.recorded)

let counter t name =
  locked t (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt t.counters name))

let counters t =
  locked t (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let gauge t name = locked t (fun () -> Hashtbl.find_opt t.gauges name)

let gauges t =
  locked t (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.gauges []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let histogram t name = locked t (fun () -> Hashtbl.find_opt t.hists name)

let histograms t =
  locked t (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.hists []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let span_stats t =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let st =
        Option.value
          ~default:
            { count = 0; total_ns = 0L; min_ns = Int64.max_int; max_ns = 0L }
          (Hashtbl.find_opt tbl s.name)
      in
      Hashtbl.replace tbl s.name
        {
          count = st.count + 1;
          total_ns = Int64.add st.total_ns s.dur_ns;
          min_ns = Int64.min st.min_ns s.dur_ns;
          max_ns = Int64.max st.max_ns s.dur_ns;
        })
    (spans t);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Wall time actually observed: the total of top-level (depth-0) span
   durations — nested spans are already inside their parents. *)
let root_wall_ns t =
  List.fold_left
    (fun acc s -> if s.depth = 0 then Int64.add acc s.dur_ns else acc)
    0L (spans t)
