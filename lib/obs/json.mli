(** Minimal JSON emitter and reader for the telemetry exporters — no
    dependencies, strings escaped per RFC 8259 (non-finite floats are
    emitted as [null]).  The parser exists so the bench regression
    gate can read back a checked-in baseline document. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

(** Write the value to [path] followed by a newline. *)
val write : path:string -> t -> unit

exception Parse_error of string

(** Parse one JSON document.  @raise Parse_error on malformed input. *)
val parse : string -> t

(** Parse the file at [path].
    @raise Parse_error on malformed input, [Sys_error] on IO failure. *)
val read : path:string -> t

(** [member key j] is the field [key] of object [j], [None] when [j]
    is not an object or lacks the field. *)
val member : string -> t -> t option

(** Numeric coercion: [Int] and [Float] only. *)
val to_float_opt : t -> float option

val to_string_opt : t -> string option
