(** Minimal JSON emitter for the telemetry exporters — no parsing, no
    dependencies, strings escaped per RFC 8259 (non-finite floats are
    emitted as [null]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

(** Write the value to [path] followed by a newline. *)
val write : path:string -> t -> unit
