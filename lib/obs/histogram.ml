(* Log-linear (HDR-style) latency histogram.

   Values (nanoseconds, non-negative ints) land in buckets laid out as
   [sub = 2^sub_bits] linear sub-buckets per power of two: values below
   [2 * sub] are recorded exactly (bucket = value), and every larger
   bucket spans [2^(k - sub_bits)] consecutive values where [2^k] is
   the value's power-of-two range.  Quantile estimates therefore carry
   a bounded relative error of at most [2^-sub_bits] (3.125%), while
   the whole structure is a flat int array: recording is two shifts and
   an increment, and merging is bucket-wise addition — which is what
   makes per-domain histograms mergeable at flush with totals
   independent of the domain count, exactly like counters.

   Exact min/max/sum ride alongside the buckets so the extremes and the
   mean stay error-free. *)

let sub_bits = 5
let sub = 1 lsl sub_bits

(* Durations above ~3.2 days saturate into the top bucket rather than
   growing the array; telemetry values that large are a bug upstream. *)
let max_exp = 48

let num_buckets = ((max_exp - sub_bits + 1) * sub) + sub

type t = {
  counts : int array;
  mutable total : int;
  mutable vmin : int;
  mutable vmax : int;
  mutable sum : float;
}

let create () =
  {
    counts = Array.make num_buckets 0;
    total = 0;
    vmin = max_int;
    vmax = 0;
    sum = 0.;
  }

let count t = t.total
let is_empty t = t.total = 0
let min_value t = if t.total = 0 then 0 else t.vmin
let max_value t = t.vmax
let sum t = t.sum
let mean t = if t.total = 0 then 0. else t.sum /. float_of_int t.total

(* Power-of-two range of [v >= 1]: the [k] with [2^k <= v < 2^(k+1)],
   by constant-time binary descent. *)
let msb v =
  let k = ref 0 and v = ref v in
  if !v lsr 32 > 0 then begin k := !k + 32; v := !v lsr 32 end;
  if !v lsr 16 > 0 then begin k := !k + 16; v := !v lsr 16 end;
  if !v lsr 8 > 0 then begin k := !k + 8; v := !v lsr 8 end;
  if !v lsr 4 > 0 then begin k := !k + 4; v := !v lsr 4 end;
  if !v lsr 2 > 0 then begin k := !k + 2; v := !v lsr 2 end;
  if !v lsr 1 > 0 then incr k;
  !k

let bucket_of v =
  if v < 2 * sub then v
  else begin
    let k = msb v in
    let k = if k > max_exp then max_exp else k in
    let block = k - sub_bits + 1 in
    let off = (v lsr (k - sub_bits)) land (sub - 1) in
    min (num_buckets - 1) ((block * sub) + off)
  end

(* Inclusive lower bound of bucket [b] — the quantile estimate the
   error-bound contract is stated against. *)
let bucket_low b =
  if b < 2 * sub then b
  else begin
    let block = b / sub in
    let off = b mod sub in
    (sub + off) lsl (block - 1)
  end

let record t v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  t.sum <- t.sum +. float_of_int v

(* Reset to empty without dropping the bucket array — the per-domain
   telemetry buffers clear-in-place at flush so a long-lived process
   does not reallocate (and GC) ~12 KB per histogram per run. *)
let clear t =
  Array.fill t.counts 0 num_buckets 0;
  t.total <- 0;
  t.vmin <- max_int;
  t.vmax <- 0;
  t.sum <- 0.

let merge_into ~into src =
  for b = 0 to num_buckets - 1 do
    into.counts.(b) <- into.counts.(b) + src.counts.(b)
  done;
  into.total <- into.total + src.total;
  if src.total > 0 then begin
    if src.vmin < into.vmin then into.vmin <- src.vmin;
    if src.vmax > into.vmax then into.vmax <- src.vmax
  end;
  into.sum <- into.sum +. src.sum

let merge a b =
  let t = create () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

let copy t =
  let c = create () in
  merge_into ~into:c t;
  c

let quantile t q =
  if t.total = 0 then 0
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.total)) in
      if r < 1 then 1 else if r > t.total then t.total else r
    in
    let b = ref 0 and seen = ref 0 in
    while !seen < rank && !b < num_buckets do
      seen := !seen + t.counts.(!b);
      incr b
    done;
    let low = bucket_low (!b - 1) in
    (* the extremes are tracked exactly: never report below the true
       minimum or (for the last occupied bucket) above the true max *)
    if low < t.vmin then t.vmin else if low > t.vmax then t.vmax else low
  end

let p50 t = quantile t 0.50
let p90 t = quantile t 0.90
let p99 t = quantile t 0.99
let p999 t = quantile t 0.999

(* Relative quantile error bound the bucket layout guarantees: the true
   sample sits within [est, est * (1 + bound)] (plus 1 ns of integer
   truncation).  Tested in test/test_obs.ml. *)
let error_bound = 1. /. float_of_int sub

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.total);
      ("sum_ns", Json.Float t.sum);
      ("min_ns", Json.Int (min_value t));
      ("max_ns", Json.Int t.vmax);
      ("mean_ns", Json.Float (mean t));
      ("p50_ns", Json.Int (p50 t));
      ("p90_ns", Json.Int (p90 t));
      ("p99_ns", Json.Int (p99 t));
      ("p999_ns", Json.Int (p999 t));
    ]
