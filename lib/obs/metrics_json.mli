(** Flat metrics exporter: one JSON object holding every counter and
    gauge by name plus per-span-name aggregates
    ([count]/[total_ns]/[min_ns]/[max_ns]/[mean_ns]) — the format the
    bench harness writes as [BENCH_obs.json] so the perf trajectory is
    diffable across commits. *)

(** ["dqc.obs.metrics/1"], stamped into every document. *)
val schema : string

val to_json : Collector.t -> Json.t
val to_string : Collector.t -> string
val write : path:string -> Collector.t -> unit
