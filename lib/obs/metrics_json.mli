(** Flat metrics exporter: one JSON object holding every counter and
    gauge by name, per-span-name aggregates
    ([count]/[total_ns]/[min_ns]/[max_ns]/[mean_ns]) and — new in
    version 2 — per-name latency histograms with
    [p50_ns]/[p90_ns]/[p99_ns]/[p999_ns] percentiles.  This is the
    format the bench harness writes as [BENCH_obs.json] so the perf
    trajectory is diffable across commits.

    Version 2 is a strict superset of version 1: every v1 key survives
    with identical meaning, so v1 consumers ignore the [histograms]
    and [quantile_error_bound] additions. *)

(** ["dqc.obs.metrics/2"], stamped into every document. *)
val schema : string

val to_json : Collector.t -> Json.t
val to_string : Collector.t -> string
val write : path:string -> Collector.t -> unit
