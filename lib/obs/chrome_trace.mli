(** Chrome trace-event JSON exporter.

    Produces the Trace Event "JSON Object Format": a [traceEvents]
    array of complete ("X") events — one per span, timestamps in
    microseconds relative to the collector epoch, [tid] = domain id —
    plus per-domain track metadata ([thread_name] and
    [thread_sort_index], pinning "main" to the top row with workers
    beneath in domain-id order) and final counter and gauge values
    under [otherData].  Passing [?flight] also emits each flight
    recorder event as an instant ("i") mark on the recording domain's
    track, re-based onto the collector's epoch.  Load the file at
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}; nesting
    is reconstructed from timestamp containment per tid. *)

val to_json : ?flight:Flight.t -> Collector.t -> Json.t
val to_string : ?flight:Flight.t -> Collector.t -> string
val write : ?flight:Flight.t -> path:string -> Collector.t -> unit
