(** Chrome trace-event JSON exporter.

    Produces the Trace Event "JSON Object Format": a [traceEvents]
    array of complete ("X") events — one per span, timestamps in
    microseconds relative to the collector epoch, [tid] = domain id —
    plus thread-name metadata, with final counter and gauge values under
    [otherData].  Load the file at [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}; nesting is reconstructed from
    timestamp containment per tid. *)

val to_json : Collector.t -> Json.t
val to_string : Collector.t -> string
val write : path:string -> Collector.t -> unit
