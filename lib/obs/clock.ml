(* CLOCK_MONOTONIC in nanoseconds, through the dependency-free C stub
   already vendored by bechamel (no opam packages added).  Wall-clock
   adjustments (NTP, suspend) never move this clock backwards, which is
   what makes span durations trustworthy. *)
let now_ns () = Monotonic_clock.now ()

let ns_to_ms ns = Int64.to_float ns /. 1e6
let ns_to_us ns = Int64.to_float ns /. 1e3
