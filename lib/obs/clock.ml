(* CLOCK_MONOTONIC in nanoseconds, through the dependency-free C stub
   already vendored by bechamel (no opam packages added).  Wall-clock
   adjustments (NTP, suspend) never move this clock backwards, which is
   what makes span durations trustworthy. *)
let now_ns () = Monotonic_clock.now ()

(* CLOCK_PROCESS_CPUTIME_ID through our own stub (clock_stubs.c): time
   this process actually executed, immune to CPU steal on shared hosts.
   The overhead measure and the perf gate sample with this so an A/B
   comparison is not at the mercy of a noisy neighbour. *)
external process_cputime_ns : unit -> (int64[@unboxed])
  = "dqc_clock_process_cputime_ns_bytecode" "dqc_clock_process_cputime_ns_native"
[@@noalloc]

let now_cpu_ns () = process_cputime_ns ()

let ns_to_ms ns = Int64.to_float ns /. 1e6
let ns_to_us ns = Int64.to_float ns /. 1e3
