/* Process-CPU-time clock, nanosecond resolution.

   CLOCK_MONOTONIC (the span clock, via bechamel's stub) counts wall
   time, including time the host steals from the VM — which on a shared
   box swamps small effects like the telemetry overhead budget.
   CLOCK_PROCESS_CPUTIME_ID counts only cycles this process actually
   executed, so A/B cost comparisons survive noisy neighbours.  POSIX
   only; no library dependency. */

#include <time.h>
#include <stdint.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>

int64_t dqc_clock_process_cputime_ns_native(value unit)
{
  struct timespec ts;
  (void)unit;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0)
    return 0;
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

value dqc_clock_process_cputime_ns_bytecode(value unit)
{
  return caml_copy_int64(dqc_clock_process_cputime_ns_native(unit));
}
