let schema = "dqc.obs.metrics/2"

let span_stat_json (st : Collector.span_stat) =
  Json.Obj
    [
      ("count", Json.Int st.count);
      ("total_ns", Json.Float (Int64.to_float st.total_ns));
      ("min_ns", Json.Float (Int64.to_float st.min_ns));
      ("max_ns", Json.Float (Int64.to_float st.max_ns));
      ( "mean_ns",
        Json.Float (Int64.to_float st.total_ns /. float_of_int st.count) );
    ]

(* Version 2 keeps every v1 key with identical meaning (counters,
   gauges, spans, wall_ns — a v1 consumer can read a v2 document by
   ignoring the new section) and adds [histograms]: per-name latency
   distributions with p50/p90/p99/p99.9 and the relative quantile
   error bound.  Span names appear in both sections — [spans] carries
   the exact aggregates, [histograms] the percentiles. *)
let to_json c =
  Json.Obj
    [
      ("schema", Json.String schema);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Collector.counters c))
      );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (Collector.gauges c))
      );
      ( "spans",
        Json.Obj
          (List.map
             (fun (name, st) -> (name, span_stat_json st))
             (Collector.span_stats c)) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (name, h) -> (name, Histogram.to_json h))
             (Collector.histograms c)) );
      ("quantile_error_bound", Json.Float Histogram.error_bound);
      ("wall_ns", Json.Float (Int64.to_float (Collector.root_wall_ns c)));
    ]

let to_string c = Json.to_string (to_json c)
let write ~path c = Json.write ~path (to_json c)
