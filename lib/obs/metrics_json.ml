let schema = "dqc.obs.metrics/1"

let span_stat_json (st : Collector.span_stat) =
  Json.Obj
    [
      ("count", Json.Int st.count);
      ("total_ns", Json.Float (Int64.to_float st.total_ns));
      ("min_ns", Json.Float (Int64.to_float st.min_ns));
      ("max_ns", Json.Float (Int64.to_float st.max_ns));
      ( "mean_ns",
        Json.Float (Int64.to_float st.total_ns /. float_of_int st.count) );
    ]

let to_json c =
  Json.Obj
    [
      ("schema", Json.String schema);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Collector.counters c))
      );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (Collector.gauges c))
      );
      ( "spans",
        Json.Obj
          (List.map
             (fun (name, st) -> (name, span_stat_json st))
             (Collector.span_stats c)) );
      ("wall_ns", Json.Float (Int64.to_float (Collector.root_wall_ns c)));
    ]

let to_string c = Json.to_string (to_json c)
let write ~path c = Json.write ~path (to_json c)
