(** Global telemetry switch and the per-domain recording API.

    Installing a collector turns instrumentation on process-wide; with
    none installed, {!incr}/{!set_gauge}/{!with_span} cost one Atomic
    load and a branch.  Records accumulate in a per-domain buffer and
    reach the collector only on {!flush} — {!Sim.Parallel} flushes each
    worker at the end of its shot block, so per-domain buffers merge at
    join, preserving the engine's determinism story (counter totals are
    sums, independent of the domain count). *)

(** Create, install and return a fresh collector (replacing any other).
    The calling domain's buffer is cleared. *)
val install : unit -> Collector.t

(** Flush the calling domain, then deactivate telemetry. *)
val uninstall : unit -> unit

(** [with_collector f] = {!install}, run [f], {!uninstall} (also on
    exception); returns the collector alongside [f]'s result. *)
val with_collector : (unit -> 'a) -> Collector.t * 'a

(** Is a collector installed?  Call sites that must build a counter
    name or attribute list dynamically should guard on this to keep the
    disabled path allocation-free. *)
val enabled : unit -> bool

(** Merge the calling domain's buffer into the active collector.
    No-op when telemetry is off or the buffer is empty. *)
val flush : unit -> unit

(** [incr ?n name] adds [n] (default 1) to counter [name]. *)
val incr : ?n:int -> string -> unit

(** [set_gauge name v] records the latest value of gauge [name].
    Within a domain the last write wins; across domains the gauge's
    {!Collector.gauge_rule} decides (default [Max]). *)
val set_gauge : string -> float -> unit

(** [record_ns name v] adds one observation (nanoseconds) to the
    latency histogram [name] without retaining a span — the tool for
    high-frequency events (per-shot replay, per-kernel-op timing) where
    keeping every span would swamp memory.  Quantile error is bounded
    by {!Histogram.error_bound}. *)
val record_ns : string -> int -> unit

(** [local_histogram name] is the calling domain's buffered histogram
    [name], created empty if absent.  Hot loops hoist this lookup and
    call {!Histogram.record} on the handle directly, skipping the
    per-event enabled/domain-buffer/table probes that {!record_ns}
    pays.  The handle is only meaningful on the domain that obtained
    it, and only while the collector it was obtained under stays
    installed ({!install} drops the buffer; {!flush} merges and empties
    the handle in place, so it stays valid between batches).  Callers
    must check {!enabled} first, or the records go to a buffer nobody
    will ever drain. *)
val local_histogram : string -> Histogram.t

(** [with_span ?attrs name f] times [f] with the monotonic clock and
    records a span on completion (also on exception).  Spans nest: the
    recorded depth is the number of enclosing spans on this domain.
    The duration also feeds the histogram of the same name, so span
    sites get percentiles for free. *)
val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
