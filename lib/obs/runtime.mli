(** Global telemetry switch and the per-domain recording API.

    Installing a collector turns instrumentation on process-wide; with
    none installed, {!incr}/{!set_gauge}/{!with_span} cost one Atomic
    load and a branch.  Records accumulate in a per-domain buffer and
    reach the collector only on {!flush} — {!Sim.Parallel} flushes each
    worker at the end of its shot block, so per-domain buffers merge at
    join, preserving the engine's determinism story (counter totals are
    sums, independent of the domain count). *)

(** Create, install and return a fresh collector (replacing any other).
    The calling domain's buffer is cleared. *)
val install : unit -> Collector.t

(** Flush the calling domain, then deactivate telemetry. *)
val uninstall : unit -> unit

(** [with_collector f] = {!install}, run [f], {!uninstall} (also on
    exception); returns the collector alongside [f]'s result. *)
val with_collector : (unit -> 'a) -> Collector.t * 'a

(** Is a collector installed?  Call sites that must build a counter
    name or attribute list dynamically should guard on this to keep the
    disabled path allocation-free. *)
val enabled : unit -> bool

(** Merge the calling domain's buffer into the active collector.
    No-op when telemetry is off or the buffer is empty. *)
val flush : unit -> unit

(** [incr ?n name] adds [n] (default 1) to counter [name]. *)
val incr : ?n:int -> string -> unit

(** [set_gauge name v] records the latest value of gauge [name]
    (last write to reach the collector wins). *)
val set_gauge : string -> float -> unit

(** [with_span ?attrs name f] times [f] with the monotonic clock and
    records a span on completion (also on exception).  Spans nest: the
    recorded depth is the number of enclosing spans on this domain. *)
val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
