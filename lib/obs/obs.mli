(** Telemetry substrate for the whole pipeline and execution layer.

    Spans are timed with a monotonic clock and nest; counters and
    gauges are registered by name at the instrumentation site; records
    accumulate in per-domain buffers and merge into the installed
    {!Collector} in batches.  With no collector installed every
    instrumentation point is one Atomic load and a branch.

    Exporters: {!Chrome_trace} (load at [chrome://tracing]) and
    {!Metrics_json} (flat, diffable).  The human-readable summary table
    is [Report.Obs_report] (it depends on this library, not the other
    way round).  See docs/OBSERVABILITY.md. *)

module Clock = Clock
module Json = Json
module Histogram = Histogram
module Collector = Collector
module Flight = Flight
module Chrome_trace = Chrome_trace
module Metrics_json = Metrics_json

include module type of Runtime
