(* Chrome trace-event exporter (the JSON Object Format): load the file
   at chrome://tracing or https://ui.perfetto.dev.  Every span becomes a
   complete ("X") event; timestamps are microseconds relative to the
   collector's epoch; the domain id is the trace tid, so worker blocks
   from Sim.Parallel land on their own rows.  Each tid also carries
   thread_name and thread_sort_index metadata, pinning "main" to the
   top track with workers ordered by domain id beneath it. *)

let pid = 1

let span_event ~epoch_ns (s : Collector.span) =
  let args =
    ("depth", Json.Int s.depth)
    :: List.map (fun (k, v) -> (k, Json.String v)) s.attrs
  in
  Json.Obj
    [
      ("name", Json.String s.name);
      ("cat", Json.String "dqc");
      ("ph", Json.String "X");
      ("ts", Json.Float (Clock.ns_to_us (Int64.sub s.start_ns epoch_ns)));
      ("dur", Json.Float (Clock.ns_to_us s.dur_ns));
      ("pid", Json.Int pid);
      ("tid", Json.Int s.tid);
      ("args", Json.Obj args);
    ]

let thread_name_event ~main_tid tid =
  let name = if tid = main_tid then "main" else Printf.sprintf "domain-%d" tid in
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let thread_sort_event ~index tid =
  Json.Obj
    [
      ("name", Json.String "thread_sort_index");
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("sort_index", Json.Int index) ]);
    ]

(* Flight events ride along as instant ("i") marks on the recording
   domain's own track, so a dump's forensics line up against the span
   timeline.  Flight and span timestamps share one monotonic clock, so
   re-basing onto the collector's epoch is a subtraction. *)
let flight_event ~epoch_ns (e : Flight.event) =
  Json.Obj
    [
      ("name", Json.String e.Flight.kind);
      ("cat", Json.String "flight");
      ("ph", Json.String "i");
      ("ts", Json.Float (Clock.ns_to_us (Int64.sub e.Flight.t_ns epoch_ns)));
      ("pid", Json.Int pid);
      ("tid", Json.Int e.Flight.tid);
      ("s", Json.String "t");
      ("args", Json.Obj e.Flight.data);
    ]

let to_json ?flight c =
  let spans = Collector.spans c in
  let epoch_ns = Collector.epoch_ns c in
  let main_tid = Collector.main_tid c in
  let flight_events =
    match flight with None -> [] | Some f -> Flight.events f
  in
  let tids =
    List.sort_uniq compare
      (List.map (fun (s : Collector.span) -> s.tid) spans
      @ List.map (fun (e : Flight.event) -> e.Flight.tid) flight_events)
  in
  (* main first, then workers in domain-id order *)
  let sorted_tids =
    List.filter (fun tid -> tid = main_tid) tids
    @ List.filter (fun tid -> tid <> main_tid) tids
  in
  let events =
    List.map (thread_name_event ~main_tid) tids
    @ List.mapi (fun index tid -> thread_sort_event ~index tid) sorted_tids
    @ List.map (span_event ~epoch_ns) spans
    @ List.map (flight_event ~epoch_ns) flight_events
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ( "counters",
              Json.Obj
                (List.map (fun (k, v) -> (k, Json.Int v)) (Collector.counters c))
            );
            ( "gauges",
              Json.Obj
                (List.map (fun (k, v) -> (k, Json.Float v)) (Collector.gauges c))
            );
          ] );
    ]

let to_string ?flight c = Json.to_string (to_json ?flight c)
let write ?flight ~path c = Json.write ~path (to_json ?flight c)
