(* Chrome trace-event exporter (the JSON Object Format): load the file
   at chrome://tracing or https://ui.perfetto.dev.  Every span becomes a
   complete ("X") event; timestamps are microseconds relative to the
   collector's epoch; the domain id is the trace tid, so worker blocks
   from Sim.Parallel land on their own rows. *)

let pid = 1

let span_event ~epoch_ns (s : Collector.span) =
  let args =
    ("depth", Json.Int s.depth)
    :: List.map (fun (k, v) -> (k, Json.String v)) s.attrs
  in
  Json.Obj
    [
      ("name", Json.String s.name);
      ("cat", Json.String "dqc");
      ("ph", Json.String "X");
      ("ts", Json.Float (Clock.ns_to_us (Int64.sub s.start_ns epoch_ns)));
      ("dur", Json.Float (Clock.ns_to_us s.dur_ns));
      ("pid", Json.Int pid);
      ("tid", Json.Int s.tid);
      ("args", Json.Obj args);
    ]

let thread_name_event ~main_tid tid =
  let name = if tid = main_tid then "main" else Printf.sprintf "domain-%d" tid in
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let to_json c =
  let spans = Collector.spans c in
  let epoch_ns = Collector.epoch_ns c in
  let tids =
    List.sort_uniq compare (List.map (fun (s : Collector.span) -> s.tid) spans)
  in
  let events =
    List.map (thread_name_event ~main_tid:(Collector.main_tid c)) tids
    @ List.map (span_event ~epoch_ns) spans
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ( "counters",
              Json.Obj
                (List.map (fun (k, v) -> (k, Json.Int v)) (Collector.counters c))
            );
            ( "gauges",
              Json.Obj
                (List.map (fun (k, v) -> (k, Json.Float v)) (Collector.gauges c))
            );
          ] );
    ]

let to_string c = Json.to_string (to_json c)
let write ~path c = Json.write ~path (to_json c)
