(** Monotonic time source for the telemetry layer. *)

(** Nanoseconds on [CLOCK_MONOTONIC]; meaningful only as differences. *)
val now_ns : unit -> int64

(** Nanoseconds of CPU actually consumed by this process
    ([CLOCK_PROCESS_CPUTIME_ID]) — unlike {!now_ns} it excludes time
    stolen by the hypervisor or spent descheduled, which makes it the
    right clock for A/B cost comparisons (the telemetry-overhead
    measure, the perf-regression gate) on shared machines.  Counts all
    threads of the process; meaningful only as differences. *)
val now_cpu_ns : unit -> int64

val ns_to_ms : int64 -> float
val ns_to_us : int64 -> float
