(** Monotonic time source for the telemetry layer. *)

(** Nanoseconds on [CLOCK_MONOTONIC]; meaningful only as differences. *)
val now_ns : unit -> int64

val ns_to_ms : int64 -> float
val ns_to_us : int64 -> float
