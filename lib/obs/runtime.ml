(* The hot-path side of the telemetry layer.

   One global [active] collector (or none).  Every record first lands in
   a per-domain buffer (Domain.DLS), so instrumented code running inside
   Sim.Parallel workers never takes a lock per event; [flush] merges a
   domain's buffer into the collector in one batch.  When no collector
   is installed every entry point is a single Atomic load plus a branch
   — instrumentation stays in the build at effectively zero cost. *)

let active : Collector.t option Atomic.t = Atomic.make None

type buffer = {
  mutable bspans : Collector.span list;
  bcounters : (string, int ref) Hashtbl.t;
  bgauges : (string, float) Hashtbl.t;
  bhists : (string, Histogram.t) Hashtbl.t;
  mutable stack_depth : int;
}

let fresh_buffer () =
  {
    bspans = [];
    bcounters = Hashtbl.create 32;
    bgauges = Hashtbl.create 8;
    bhists = Hashtbl.create 16;
    stack_depth = 0;
  }

let key : buffer Domain.DLS.key = Domain.DLS.new_key fresh_buffer

let clear_local () =
  let buf = Domain.DLS.get key in
  buf.bspans <- [];
  Hashtbl.reset buf.bcounters;
  Hashtbl.reset buf.bgauges;
  (* histograms are zeroed in place, not dropped: reallocating every
     bucket array on each install shows up as per-run GC perturbation
     in the telemetry-overhead A/B measurement (bench backend), and a
     cleared histogram is indistinguishable from a fresh one *)
  Hashtbl.iter (fun _ h -> Histogram.clear h) buf.bhists;
  buf.stack_depth <- 0

let enabled () = Option.is_some (Atomic.get active)

let install () =
  let c = Collector.create () in
  clear_local ();
  Atomic.set active (Some c);
  c

let flush () =
  match Atomic.get active with
  | None -> ()
  | Some c ->
      let buf = Domain.DLS.get key in
      if
        buf.bspans <> []
        || Hashtbl.length buf.bcounters > 0
        || Hashtbl.length buf.bgauges > 0
        || Hashtbl.length buf.bhists > 0
      then begin
        Collector.absorb c ~spans:buf.bspans
          ~counters:
            (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) buf.bcounters [])
          ~gauges:(Hashtbl.fold (fun k v acc -> (k, v) :: acc) buf.bgauges [])
          ~hists:
            (Hashtbl.fold
               (fun k h acc ->
                 if Histogram.is_empty h then acc else (k, h) :: acc)
               buf.bhists []);
        buf.bspans <- [];
        Hashtbl.reset buf.bcounters;
        Hashtbl.reset buf.bgauges;
        (* cleared in place, not dropped: keeping the bucket arrays
           allocated means a flush per Backend.run costs no
           reallocation and leaves no garbage — the dominant share of
           the fixed per-run telemetry cost (bench/main.ml backend
           measures the budget) *)
        Hashtbl.iter (fun _ h -> Histogram.clear h) buf.bhists
      end

let uninstall () =
  flush ();
  Atomic.set active None

let with_collector f =
  let c = install () in
  let finally () =
    match Atomic.get active with
    | Some c' when c' == c -> uninstall ()
    | Some _ | None -> ()
  in
  let r = Fun.protect ~finally f in
  (c, r)

let incr ?(n = 1) name =
  if enabled () then begin
    let buf = Domain.DLS.get key in
    match Hashtbl.find_opt buf.bcounters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace buf.bcounters name (ref n)
  end

let set_gauge name v =
  if enabled () then Hashtbl.replace (Domain.DLS.get key).bgauges name v

let buffer_hist buf name =
  match Hashtbl.find_opt buf.bhists name with
  | Some h -> h
  | None ->
      let h = Histogram.create () in
      Hashtbl.replace buf.bhists name h;
      h

let buffer_record buf name v = Histogram.record (buffer_hist buf name) v

let record_ns name v =
  if enabled () then buffer_record (Domain.DLS.get key) name v

let local_histogram name = buffer_hist (Domain.DLS.get key) name

let with_span ?(attrs = []) name f =
  if not (enabled ()) then f ()
  else begin
    let buf = Domain.DLS.get key in
    let depth = buf.stack_depth in
    buf.stack_depth <- depth + 1;
    let start_ns = Clock.now_ns () in
    let finally () =
      let dur_ns = Int64.sub (Clock.now_ns ()) start_ns in
      buf.stack_depth <- depth;
      buf.bspans <-
        {
          Collector.name;
          start_ns;
          dur_ns;
          tid = (Domain.self () :> int);
          depth;
          attrs;
        }
        :: buf.bspans;
      (* every span feeds the latency distribution of its name, so the
         metrics export carries percentiles for pipeline passes and
         backend requests without a separate recording site *)
      buffer_record buf name (Int64.to_int dur_ns)
    in
    Fun.protect ~finally f
  end
