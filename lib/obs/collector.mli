(** In-memory telemetry store — the one sink every exporter reads.

    A collector accumulates completed {!span}s, monotonically increasing
    counters and last-write-wins gauges.  Instrumented code never talks
    to it directly: records go to a per-domain buffer (see {!Runtime})
    and are merged here in batches under a mutex, so worker domains
    never contend per event. *)

type span = {
  name : string;
  start_ns : int64;  (** {!Clock.now_ns} at entry *)
  dur_ns : int64;
  tid : int;  (** integer id of the domain that ran the span *)
  depth : int;  (** nesting depth within its domain at entry *)
  attrs : (string * string) list;
}

type span_stat = {
  count : int;
  total_ns : int64;
  min_ns : int64;
  max_ns : int64;
}

type t

val create : unit -> t

(** Monotonic timestamp taken at {!create} — exporters report span
    times relative to it. *)
val epoch_ns : t -> int64

(** The domain that created the collector (labelled "main" in traces). *)
val main_tid : t -> int

(** Merge one per-domain batch: spans are appended, counters added,
    gauges replaced.  Thread-safe. *)
val absorb :
  t ->
  spans:span list ->
  counters:(string * int) list ->
  gauges:(string * float) list ->
  unit

(** All spans, sorted by start time (parents before children). *)
val spans : t -> span list

(** [counter t name] is the accumulated count, [0] when never touched. *)
val counter : t -> string -> int

val counters : t -> (string * int) list
val gauge : t -> string -> float option
val gauges : t -> (string * float) list

(** Per-name aggregation of {!spans}, sorted by name. *)
val span_stats : t -> (string * span_stat) list

(** Total duration of depth-0 spans — the observed wall time. *)
val root_wall_ns : t -> int64
