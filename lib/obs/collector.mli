(** In-memory telemetry store — the one sink every exporter reads.

    A collector accumulates completed {!span}s, monotonically increasing
    counters, gauges (merged per {!gauge_rule}) and mergeable latency
    {!Histogram}s.  Instrumented code never talks to it directly:
    records go to a per-domain buffer (see {!Runtime}) and are merged
    here in batches under a mutex, so worker domains never contend per
    event. *)

type span = {
  name : string;
  start_ns : int64;  (** {!Clock.now_ns} at entry *)
  dur_ns : int64;
  tid : int;  (** integer id of the domain that ran the span *)
  depth : int;  (** nesting depth within its domain at entry *)
  attrs : (string * string) list;
}

type span_stat = {
  count : int;
  total_ns : int64;
  min_ns : int64;
  max_ns : int64;
}

(** How per-domain values of one gauge combine when batches merge.
    Within a domain the last write wins (a time-ordered sequence on one
    thread); across domains the registered rule decides — [Max] by
    default, which makes the result independent of flush order.
    [Last] reproduces the historical race and is only safe for gauges
    written by a single domain. *)
type gauge_rule = Max | Min | Sum | Last

(** Register the merge rule for a gauge name (default when never
    registered: [Max]).  Global — call at the instrumentation site. *)
val set_gauge_rule : string -> gauge_rule -> unit

val gauge_rule : string -> gauge_rule

type t

val create : unit -> t

(** Monotonic timestamp taken at {!create} — exporters report span
    times relative to it. *)
val epoch_ns : t -> int64

(** The domain that created the collector (labelled "main" in traces). *)
val main_tid : t -> int

(** Merge one per-domain batch: spans are appended, counters added,
    gauges combined by their {!gauge_rule}, histograms bucket-wise
    added.  Thread-safe. *)
val absorb :
  ?hists:(string * Histogram.t) list ->
  t ->
  spans:span list ->
  counters:(string * int) list ->
  gauges:(string * float) list ->
  unit

(** All spans, sorted by start time (parents before children). *)
val spans : t -> span list

(** [counter t name] is the accumulated count, [0] when never touched. *)
val counter : t -> string -> int

val counters : t -> (string * int) list
val gauge : t -> string -> float option
val gauges : t -> (string * float) list

(** [histogram t name] is the merged histogram, [None] when never
    recorded.  Every span name has one (recorded by [with_span]);
    [Obs.record_ns] creates them directly. *)
val histogram : t -> string -> Histogram.t option

val histograms : t -> (string * Histogram.t) list

(** Per-name aggregation of {!spans}, sorted by name. *)
val span_stats : t -> (string * span_stat) list

(** Total duration of depth-0 spans — the observed wall time. *)
val root_wall_ns : t -> int64
