type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no inf/nan; a telemetry value that degenerate is a bug
   upstream, so clamp to null rather than emit an unparsable file. *)
let float_to buf f =
  if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
  else Buffer.add_string buf "null"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int k -> Buffer.add_string buf (string_of_int k)
  | Float f -> float_to buf f
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun k x ->
          if k > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun k (key, v) ->
          if k > 0 then Buffer.add_char buf ',';
          escape_to buf key;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  to_buffer buf j;
  Buffer.contents buf

let write ~path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Parsing — enough of RFC 8259 to read back what this module (and the
   bench harness) writes: the regression gate diffs a current run
   against a checked-in baseline document. *)

exception Parse_error of string

let parse_fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> parse_fail "expected %c at offset %d, got %c" c !pos c'
    | None -> parse_fail "expected %c at offset %d, got end of input" c !pos
  in
  let literal word v =
    if
      !pos + String.length word <= n
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else parse_fail "invalid literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> parse_fail "unterminated string at offset %d" !pos
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> parse_fail "unterminated escape at offset %d" !pos
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  if !pos + 4 > n then
                    parse_fail "truncated \\u escape at offset %d" !pos;
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with Failure _ ->
                      parse_fail "invalid \\u escape at offset %d" !pos
                  in
                  (* emitter only escapes control chars, which are
                     single bytes; anything else round-trips as '?' *)
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else Buffer.add_char buf '?'
              | c -> parse_fail "invalid escape \\%c at offset %d" c !pos);
              go ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while match peek () with Some c when is_num_char c -> true | _ -> false do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some k -> Int k
    | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> parse_fail "invalid number %S at offset %d" lit start)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_fail "unexpected end of input at offset %d" !pos
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec member () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                member ()
            | Some '}' -> advance ()
            | _ -> parse_fail "expected , or } at offset %d" !pos
          in
          member ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec item () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                item ()
            | Some ']' -> advance ()
            | _ -> parse_fail "expected , or ] at offset %d" !pos
          in
          item ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_fail "trailing content at offset %d" !pos;
  v

let read ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* Lookup helpers for consumers of parsed documents *)
let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let to_float_opt = function
  | Int k -> Some (float_of_int k)
  | Float f -> Some f
  | Null | Bool _ | String _ | List _ | Obj _ -> None

let to_string_opt = function
  | String s -> Some s
  | Null | Bool _ | Int _ | Float _ | List _ | Obj _ -> None
