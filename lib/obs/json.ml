type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no inf/nan; a telemetry value that degenerate is a bug
   upstream, so clamp to null rather than emit an unparsable file. *)
let float_to buf f =
  if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
  else Buffer.add_string buf "null"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int k -> Buffer.add_string buf (string_of_int k)
  | Float f -> float_to buf f
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun k x ->
          if k > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun k (key, v) ->
          if k > 0 then Buffer.add_char buf ',';
          escape_to buf key;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  to_buffer buf j;
  Buffer.contents buf

let write ~path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')
