(* Flight recorder: a fixed-size lock-free ring of structured events
   for post-mortem forensics.

   Writers claim a slot with one [Atomic.fetch_and_add] on the cursor
   and store a boxed event record into it — a single pointer write, so
   worker domains never contend on a lock and a torn event is
   impossible under the OCaml memory model.  The ring wraps: the last
   [capacity] events survive, which is the point — when the pipeline
   raises ([Lint.Rejected], [Reuse_refuted], [Zero_probability_branch])
   the dump shows exactly what led up to the failure (pass snapshots,
   lint diagnostics, certifier verdicts, RNG seeds, prefix-cache
   traffic), context the Chrome trace cannot carry.

   Like the metrics runtime, the recorder is armed explicitly
   ([install]); when it is not, [record] is one Atomic load and a
   branch. *)

type event = {
  seq : int;
  t_ns : int64;
  tid : int;
  kind : string;
  data : (string * Json.t) list;
}

type t = {
  slots : event option array;
  cursor : int Atomic.t;
  capacity : int;
  dump_path : string option;
  epoch_ns : int64;
}

let default_capacity = 1024

let active : t option Atomic.t = Atomic.make None

let enabled () = Option.is_some (Atomic.get active)
let current () = Atomic.get active

let install ?(capacity = default_capacity) ?dump_path () =
  if capacity < 1 then invalid_arg "Flight.install: capacity < 1";
  let t =
    {
      slots = Array.make capacity None;
      cursor = Atomic.make 0;
      capacity;
      dump_path;
      epoch_ns = Clock.now_ns ();
    }
  in
  Atomic.set active (Some t);
  t

let uninstall () = Atomic.set active None

let with_recorder ?capacity ?dump_path f =
  let t = install ?capacity ?dump_path () in
  let finally () =
    match Atomic.get active with
    | Some t' when t' == t -> uninstall ()
    | Some _ | None -> ()
  in
  let r = Fun.protect ~finally f in
  (t, r)

let record ~kind data =
  match Atomic.get active with
  | None -> ()
  | Some t ->
      let seq = Atomic.fetch_and_add t.cursor 1 in
      let e =
        { seq; t_ns = Clock.now_ns (); tid = (Domain.self () :> int); kind; data }
      in
      t.slots.(seq mod t.capacity) <- Some e

let recorded t = Atomic.get t.cursor

let dropped t =
  let n = recorded t in
  if n > t.capacity then n - t.capacity else 0

(* Snapshot of the surviving events in sequence order.  Concurrent
   writers may overwrite a slot mid-snapshot; sorting by the [seq]
   stamped into each event keeps the result well-ordered regardless. *)
let events t =
  Array.to_list t.slots
  |> List.filter_map Fun.id
  |> List.sort (fun a b -> compare a.seq b.seq)

(* a data field shadowing a header field would produce a JSON object
   with duplicate keys (last-wins in most parsers) — drop it instead *)
let reserved_keys = [ "seq"; "t_us"; "tid"; "kind" ]

let event_json ~epoch_ns e =
  Json.Obj
    ([
       ("seq", Json.Int e.seq);
       ("t_us", Json.Float (Clock.ns_to_us (Int64.sub e.t_ns epoch_ns)));
       ("tid", Json.Int e.tid);
       ("kind", Json.String e.kind);
     ]
    @ List.filter (fun (k, _) -> not (List.mem k reserved_keys)) e.data)

let schema = "dqc.flight/1"

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("capacity", Json.Int t.capacity);
      ("recorded", Json.Int (recorded t));
      ("dropped", Json.Int (dropped t));
      ( "events",
        Json.List (List.map (event_json ~epoch_ns:t.epoch_ns) (events t)) );
    ]

let to_string t = Json.to_string (to_json t)
let write ~path t = Json.write ~path (to_json t)

(* Crash-dump hook for the pipeline: record the raise itself, then dump
   to the armed path.  Returns the path written (None when the recorder
   is off or has no destination) so the caller can tell the user. *)
let dump_on_raise ~exn_name ~detail =
  match Atomic.get active with
  | None -> None
  | Some t -> (
      record ~kind:"pipeline.raised"
        [ ("exn", Json.String exn_name); ("detail", Json.String detail) ];
      match t.dump_path with
      | None -> None
      | Some path ->
          write ~path t;
          Some path)
