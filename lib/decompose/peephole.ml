open Circuit

let inverse_apps (a : Instruction.app) (b : Instruction.app) =
  a.target = b.target
  && List.sort compare a.controls = List.sort compare b.controls
  && Gate.equal (Gate.adjoint a.gate) b.gate

(* i and j are mutually inverse on the same wires (and, when
   conditioned, share the same condition)? *)
let inverse_pair gi gj =
  match ((gi : Instruction.t), (gj : Instruction.t)) with
  | Unitary a, Unitary b -> inverse_apps a b
  | Conditioned (ca, a), Conditioned (cb, b) -> ca = cb && inverse_apps a b
  | (Unitary _ | Conditioned _ | Measure _ | Reset _ | Barrier _), _ -> false

(* One sweep: for every live instruction, look at the next live
   instruction sharing a wire; since an inverse partner has exactly the
   same wires, only that neighbour can cancel with it.  Intervening
   live instructions on disjoint wires may still write a conditioned
   pair's bit, which blocks the cancellation. *)
let cancel_pass instrs =
  let n = Array.length instrs in
  let dead = Array.make n false in
  let changed = ref false in
  let shares_wire wires k =
    List.exists (fun q -> List.mem q wires) (Instruction.qubits instrs.(k))
  in
  let writes_bit bits k =
    match instrs.(k) with
    | Instruction.Measure { bit; _ } -> List.mem bit bits
    | Instruction.Unitary _ | Instruction.Conditioned _ | Instruction.Reset _
    | Instruction.Barrier _ ->
        false
  in
  for i = 0 to n - 1 do
    if not dead.(i) then begin
      let wires = Instruction.qubits instrs.(i) in
      let bits = Instruction.bits instrs.(i) in
      let rec next j blocked =
        if j >= n then None
        else if dead.(j) then next (j + 1) blocked
        else if shares_wire wires j then Some (j, blocked)
        else next (j + 1) (blocked || writes_bit bits j)
      in
      match next (i + 1) false with
      | Some (j, false) when inverse_pair instrs.(i) instrs.(j) ->
          dead.(i) <- true;
          dead.(j) <- true;
          changed := true
      | Some _ | None -> ()
    end
  done;
  let kept = ref [] in
  for k = n - 1 downto 0 do
    if not dead.(k) then kept := instrs.(k) :: !kept
  done;
  (!changed, !kept)

let rec fixpoint instrs =
  let changed, kept = cancel_pass (Array.of_list instrs) in
  if changed then fixpoint kept else kept

let cancel_inverses c =
  Circ.create ~roles:(Circ.roles c) ~num_bits:(Circ.num_bits c)
    (fixpoint (Circ.instructions c))

let removed_count c =
  List.length (Circ.instructions c)
  - List.length (Circ.instructions (cancel_inverses c))

(* merge neighbouring Rz/Phase pairs on the same wire; a plain-unitary
   rotation only merges with the next live instruction sharing its
   wire when that is also a plain rotation of the same family *)
let rotation_family (i : Instruction.t) =
  match[@warning "-4"] i with
  | Unitary { gate = Gate.Rz a; controls = []; target } -> Some (`Rz, a, target)
  | Unitary { gate = Gate.Phase a; controls = []; target } ->
      Some (`Phase, a, target)
  | Unitary _ | Conditioned _ | Measure _ | Reset _ | Barrier _ -> None

let identity_angle a =
  let two_pi = 2. *. Float.pi in
  let r = Float.rem a two_pi in
  Float.abs r < 1e-12 || Float.abs (Float.abs r -. two_pi) < 1e-12

let merge_pass instrs =
  let n = Array.length instrs in
  let dead = Array.make n false in
  let changed = ref false in
  let replace = Hashtbl.create 4 in
  let shares_wire wires k =
    List.exists (fun q -> List.mem q wires) (Instruction.qubits instrs.(k))
  in
  for i = 0 to n - 1 do
    if not (dead.(i) || Hashtbl.mem replace i) then
      match rotation_family instrs.(i) with
      | None -> ()
      | Some (fam, a, target) -> (
          let rec next j =
            if j >= n then None
            else if dead.(j) then next (j + 1)
            else if shares_wire [ target ] j then Some j
            else next (j + 1)
          in
          match next (i + 1) with
          | Some j when not (Hashtbl.mem replace j) -> (
              match rotation_family instrs.(j) with
              | Some (fam2, b, t2) when fam = fam2 && t2 = target ->
                  dead.(i) <- true;
                  changed := true;
                  let merged = a +. b in
                  if identity_angle merged then dead.(j) <- true
                  else
                    Hashtbl.replace replace j
                      (Instruction.Unitary
                         (Instruction.app
                            (match fam with
                            | `Rz -> Gate.Rz merged
                            | `Phase -> Gate.Phase merged)
                            target))
              | Some _ | None -> ())
          | Some _ | None -> ())
  done;
  let kept = ref [] in
  for k = n - 1 downto 0 do
    if not dead.(k) then
      kept :=
        (match Hashtbl.find_opt replace k with
        | Some i -> i
        | None -> instrs.(k))
        :: !kept
  done;
  (!changed, !kept)

let rec merge_fixpoint instrs =
  let changed, kept = merge_pass (Array.of_list instrs) in
  if changed then merge_fixpoint kept else kept

let merge_rotations c =
  Circ.create ~roles:(Circ.roles c) ~num_bits:(Circ.num_bits c)
    (merge_fixpoint (Circ.instructions c))
