open Circuit

type sharing = [ `Fresh | `Per_target | `Global ]
type toffoli_scheme = [ `Clifford_t | `Barenco | `Ancilla of sharing ]

let is_mct (i : Instruction.t) =
  match[@warning "-4"] i with
  | Unitary { gate = Gate.X; controls; _ } -> List.length controls >= 3
  | Unitary _ | Conditioned _ | Measure _ | Reset _ | Barrier _ -> false

let reject_unsupported (i : Instruction.t) =
  match[@warning "-4"] i with
  | Unitary { gate; controls; _ } when List.length controls >= 2 ->
      if not (Gate.equal gate Gate.X) then
        invalid_arg
          (Printf.sprintf "Pass: unsupported multi-control gate %s"
             (Instruction.to_string i))
  | Conditioned (_, { controls; _ }) when controls <> [] ->
      invalid_arg "Pass: conditioned gate with quantum controls"
  | Unitary _ | Conditioned _ | Measure _ | Reset _ | Barrier _ -> ()

(* With uncomputation the V-chain scratch qubits return to |0>, so one
   pool sized for the widest gate serves every multi-control X; the
   DQC-shaped variant leaves the chains computed on fresh, measured
   (Data-role) qubits instead. *)
let reduce_mct ?(for_dqc = false) c =
  List.iter reject_unsupported (Circ.instructions c);
  let needed (i : Instruction.t) =
    match[@warning "-4"] i with
    | Unitary { gate = Gate.X; controls; _ } ->
        Mct.ancillas_needed (List.length controls)
    | Unitary _ | Conditioned _ | Measure _ | Reset _ | Barrier _ -> 0
  in
  let pool_size =
    List.fold_left (fun acc i -> max acc (needed i)) 0 (Circ.instructions c)
  in
  if pool_size = 0 then c
  else begin
    let base = Circ.num_qubits c in
    let next = ref base in
    let scratch take =
      if for_dqc then
        (* fresh, never-uncomputed chain qubits *)
        List.init take (fun k ->
            let q = !next + k in
            q)
        |> fun qs ->
        next := !next + take;
        qs
      else List.init take (fun k -> base + k)
    in
    if not for_dqc then next := base + pool_size;
    let rewrite (i : Instruction.t) =
      if not (is_mct i) then [ i ]
      else
        match i with
        | Unitary { controls; target; _ } ->
            let ancillas = scratch (needed i) in
            if for_dqc then
              Mct.v_chain_no_uncompute ~controls ~target ~ancillas
            else Mct.v_chain ~controls ~target ~ancillas
        | Conditioned _ | Measure _ | Reset _ | Barrier _ -> assert false
    in
    let instrs = List.concat_map rewrite (Circ.instructions c) in
    let extra = !next - base in
    let role = if for_dqc then Circ.Data else Circ.Ancilla in
    let roles = Array.append (Circ.roles c) (Array.make extra role) in
    Circ.create ~roles ~num_bits:(Circ.num_bits c) instrs
  end

let substitute_toffoli ?(mct_reduction = `Unitary) scheme c =
  let c = reduce_mct ~for_dqc:(mct_reduction = `Dqc) c in
  List.iter reject_unsupported (Circ.instructions c);
  match scheme with
  | `Clifford_t ->
      let rewrite (i : Instruction.t) =
        match[@warning "-4"] i with
        | Unitary { gate = Gate.X; controls = [ c1; c2 ]; target } ->
            Clifford_t.toffoli ~c1 ~c2 ~target
        | Unitary _ | Conditioned _ | Measure _ | Reset _ | Barrier _ -> [ i ]
      in
      Circ.map_instructions rewrite c
  | `Barenco ->
      let rewrite (i : Instruction.t) =
        match[@warning "-4"] i with
        | Unitary { gate = Gate.X; controls = [ c1; c2 ]; target } ->
            Barenco.toffoli ~c1 ~c2 ~target
        | Unitary _ | Conditioned _ | Measure _ | Reset _ | Barrier _ -> [ i ]
      in
      Circ.map_instructions rewrite c
  | `Ancilla sharing ->
      let base = Circ.num_qubits c in
      let next = ref base in
      (* an unroll ancilla whose CV† targets a work (data) qubit — the
         chain Toffolis of a DQC-shaped MCT reduction — must itself be
         measured so the conditioned V† can reference its value: such
         ancillas are promoted to role Data *)
      let promoted : (int, unit) Hashtbl.t = Hashtbl.create 4 in
      let is_work q =
        match Circ.role c q with
        | Circ.Data | Circ.Ancilla -> true
        | Circ.Answer -> false
      in
      (* allocation key: the Toffoli's target for `Per_target, a single
         shared key for `Global; `Fresh never reuses an entry *)
      let allocated : (int, int * int list ref) Hashtbl.t = Hashtbl.create 4 in
      let fresh () =
        let a = !next in
        incr next;
        (a, ref [])
      in
      let ancilla_for ~target =
        let entry =
          match sharing with
          | `Fresh -> fresh ()
          | `Per_target | `Global -> (
              let key = match sharing with `Global -> -1 | _ -> target in
              match Hashtbl.find_opt allocated key with
              | Some entry -> entry
              | None ->
                  let entry = fresh () in
                  Hashtbl.replace allocated key entry;
                  entry)
        in
        if is_work target then Hashtbl.replace promoted (fst entry) ();
        entry
      in
      (* Lemma-1 sharing keeps a live parity on each ancilla between
         Toffoli gates of the same group.  The parity is only valid
         while its control qubits are untouched, so any intervening
         instruction on a parity qubit forces the ancilla back to |0>
         (release) before that instruction runs; leftover parities are
         released at the end of the circuit. *)
      let release_all_touching qs =
        Hashtbl.fold
          (fun _ (ancilla, parity) acc ->
            if List.exists (fun q -> List.mem q !parity) qs then begin
              let instrs = Ancilla_unroll.release ~parity:!parity ~ancilla in
              parity := [];
              instrs @ acc
            end
            else acc)
          allocated []
      in
      let rewrite (i : Instruction.t) =
        match[@warning "-4"] (sharing, i) with
        | `Fresh, Unitary { gate = Gate.X; controls = [ c1; c2 ]; target } ->
            let ancilla, _ = ancilla_for ~target in
            Ancilla_unroll.toffoli ~c1 ~c2 ~target ~ancilla
        | ( (`Per_target | `Global),
            Unitary { gate = Gate.X; controls = [ c1; c2 ]; target } ) ->
            let ancilla, parity = ancilla_for ~target in
            let instrs, parity' =
              Ancilla_unroll.toffoli_shared ~parity:!parity ~c1 ~c2 ~target
                ~ancilla
            in
            parity := parity';
            instrs
        | _, (Unitary _ | Conditioned _ | Measure _ | Reset _ | Barrier _) ->
            release_all_touching (Instruction.qubits i) @ [ i ]
      in
      let instrs = List.concat_map rewrite (Circ.instructions c) in
      let final_releases =
        Hashtbl.fold
          (fun _ (ancilla, parity) acc ->
            Ancilla_unroll.release ~parity:!parity ~ancilla @ acc)
          allocated []
      in
      let new_roles =
        Array.init (!next - base) (fun k ->
            if Hashtbl.mem promoted (base + k) then Circ.Data
            else Circ.Ancilla)
      in
      let roles = Array.append (Circ.roles c) new_roles in
      Circ.create ~roles ~num_bits:(Circ.num_bits c) (instrs @ final_releases)

(* Only quantum-controlled V/V† have a Fig 6 expansion; a plain or
   classically conditioned V is already a primitive 1-qubit operation. *)
let expand_cv c =
  let rewrite (i : Instruction.t) =
    match[@warning "-4"] i with
    | Unitary { gate = Gate.V; controls = [ ctl ]; target } ->
        Clifford_t.cv ~control:ctl ~target
    | Unitary { gate = Gate.Vdg; controls = [ ctl ]; target } ->
        Clifford_t.cvdg ~control:ctl ~target
    | Unitary _ | Conditioned _ | Measure _ | Reset _ | Barrier _ -> [ i ]
  in
  Circ.map_instructions rewrite c
