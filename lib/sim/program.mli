open Circuit

(** Compiled execution plans: a circuit lowered once into an array of
    specialized ops, replayed with allocation-free float kernels over
    the SoA amplitude storage ({!State}, {!Linalg.Cvec}).

    Lowering specializes each gate to the cheapest kernel its matrix
    admits — bit-trick X, Hadamard butterfly, diagonal/phase rotation,
    generic fused 2x2 — and iterates only the control-satisfying
    subspace for controlled ops (no per-index mask test).  Adjacent
    single-qubit gates on the same target with the same control mask
    fuse into one 2x2 apply; products that reach the identity are
    dropped.  Measure, reset, conditioned gates and barriers are
    fusion barriers, so the op stream's branching structure matches
    the source instruction stream and both consume randomness in the
    same order — the property the randomized differential tests
    against the generic interpreter rely on.

    Telemetry: {!compile} runs under a [program.compile] span and
    bumps the [sim.program.ops] / [sim.program.fused] /
    [sim.program.fallback] counters (ops emitted, gate applications
    eliminated by fusion, ops on the generic-2x2 fallback kernel).
    With a collector installed, {!exec} times ops into the per-class
    [sim.program.op.<class>] latency histograms
    ([x]/[h]/[phase]/[diag]/[u2]/[cond]/[measure]/[reset]), sampling
    one replay in 256 per domain — timing every op of every shot would
    blow the <2% telemetry budget (docs/OBSERVABILITY.md); the
    histogram [count] says how many ops were actually observed.  With
    none installed the replay loop pays one Atomic load total.

    See docs/EXECUTION.md, "Compiled execution plans". *)

type t

(** One compiled op.  Opaque; see {!view} and {!apply}. *)
type op

(** [compile ?fuse c] lowers the circuit ([fuse] defaults to [true];
    [~fuse:false] keeps a 1:1 gate-to-op mapping — what the noisy
    trajectory engine needs to preserve per-gate error injection). *)
val compile : ?fuse:bool -> Circ.t -> t

(** {!compile} for a bare instruction list (e.g. a circuit suffix). *)
val compile_instructions :
  ?fuse:bool -> num_qubits:int -> num_bits:int -> Instruction.t list -> t

val num_qubits : t -> int
val num_bits : t -> int

(** Number of compiled ops. *)
val length : t -> int

val get : t -> int -> op

(** Unitary (incl. conditioned) gate instructions compiled. *)
val source_gates : t -> int

(** Gate applications eliminated by fusion (merges + identity drops). *)
val fused_count : t -> int

(** Ops that fell back to the generic 2x2 kernel. *)
val fallback_count : t -> int

(** Split at the first measure/reset op: [(prefix, suffix)].  The
    prefix is deterministic (no randomness), which is what the
    {!Backend.Prefix} shot cache executes once and shares. *)
val split_prefix : t -> t * t

(** [apply st op] applies a unitary or conditioned op in place (a
    conditioned op tests the classical register itself).
    @raise Invalid_argument on a measure/reset op. *)
val apply : State.t -> op -> unit

(** [exec ~random st t] replays the whole program; [random] is
    consulted by measure/reset ops only, in source order. *)
val exec : random:(unit -> float) -> State.t -> t -> unit

(** A fresh |0...0> state with the program's shape. *)
val fresh_state : t -> State.t

(** [run ~rng t] executes the program from scratch. *)
val run : rng:Random.State.t -> t -> State.t

(** [run_circuit ~rng c] is [run ~rng (compile c)]. *)
val run_circuit : rng:Random.State.t -> Circ.t -> State.t

(** {1 Introspection} — what the exact-branch enumerator and the noisy
    trajectory engine dispatch on. *)

(** The arithmetic content of one compiled op: kernel class, fixed-bit
    layout ([bit] is the target bit, [cmask] the required-1 control
    bits) and the exact matrix floats the dense kernels use.  This is
    what a non-dense {!Engine} implementation replays so its
    arithmetic can mirror the dense kernels expression-for-expression
    (the property the differential suite in test/test_sparse.ml leans
    on).  The [m] array of {!Ku2} is shared with the op — treat it as
    read-only. *)
type kernel =
  | Kx of { bit : int; cmask : int }
  | Kh of { bit : int; cmask : int }
  | Kphase of { bit : int; cmask : int; re1 : float; im1 : float }
  | Kdiag of {
      bit : int;
      cmask : int;
      re0 : float;
      im0 : float;
      re1 : float;
      im1 : float;
    }
  | Ku2 of { bit : int; cmask : int; m : float array }
  | Kmeasure of { qubit : int; bit : int }
  | Kreset of int
  | Kcond of { mask : int; value : int; body : kernel }

val kernel : op -> kernel

(** [kernels t] is every op's {!kernel}, in execution order — what a
    sparse engine lowers once per program (see {!Sparse}). *)
val kernels : t -> kernel array

type view =
  | Unitary of { target : int; controls : int list }
  | Conditional of { mask : int; value : int; target : int; controls : int list }
  | Measurement of { qubit : int; bit : int }
  | Reset of int

val view : n:int -> op -> view
