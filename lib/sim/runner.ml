open Circuit

type histogram = { w : int; total : int; counts : (int, int) Hashtbl.t }

let tally_n counts outcome n =
  let prev = Option.value ~default:0 (Hashtbl.find_opt counts outcome) in
  Hashtbl.replace counts outcome (prev + n)

let tally counts outcome = tally_n counts outcome 1

(* The one default-seed constant of the execution layer: Runner,
   Parallel and Backend all default to it, so the serial and parallel
   engines sample the same configuration when the caller does not pick
   a seed (asserted in test/test_program.ml). *)
let default_seed = 0xC0FFEE

let dense_engine = (module Statevector.Dense_engine : Engine.S)

let run_shots ?(seed = default_seed) ?(engine = dense_engine) ~shots c =
  let (module E : Engine.S) = engine in
  let rng = Random.State.make [| seed |] in
  let prog = Program.compile c in
  let counts = Hashtbl.create 16 in
  for _ = 1 to shots do
    let st = E.run ~rng prog in
    tally counts (E.register st)
  done;
  { w = Circ.num_bits c; total = shots; counts }

let run_plan ?seed ~shots ~plan c =
  run_shots ?seed ~shots (Measurement_plan.instrument plan c)

let run_shots_measured ?seed ~shots ~measures c =
  run_plan ?seed ~shots ~plan:(Measurement_plan.of_pairs measures) c

let of_counts ~width pairs =
  let counts = Hashtbl.create 16 in
  let total =
    List.fold_left
      (fun acc (outcome, n) ->
        if n < 0 then invalid_arg "Runner.of_counts: negative count";
        if n > 0 then tally_n counts outcome n;
        acc + n)
      0 pairs
  in
  { w = width; total; counts }

let merge a b =
  if a.w <> b.w then invalid_arg "Runner.merge: width mismatch";
  let counts = Hashtbl.copy a.counts in
  Hashtbl.iter (fun outcome n -> tally_n counts outcome n) b.counts;
  { w = a.w; total = a.total + b.total; counts }

let collect ~width ~shots f =
  let counts = Hashtbl.create 16 in
  for _ = 1 to shots do
    tally counts (f ())
  done;
  { w = width; total = shots; counts }

let sample_dist ?(seed = 0xA11A5) ~shots dist =
  let sm = Dist.sampler dist in
  let rng = Random.State.make [| seed |] in
  collect ~width:(Dist.width dist) ~shots (fun () -> Dist.sample sm rng)

let shots h = h.total
let width h = h.w
let count h o = Option.value ~default:0 (Hashtbl.find_opt h.counts o)
let frequency h o = float_of_int (count h o) /. float_of_int h.total

let to_list h =
  Hashtbl.fold (fun o n acc -> (o, n) :: acc) h.counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_dist h =
  Dist.create ~width:h.w
    (List.map
       (fun (o, n) -> (o, float_of_int n /. float_of_int h.total))
       (to_list h))

let pp fmt h =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (o, n) ->
      Format.fprintf fmt "%s : %d@," (Bits.to_string ~width:h.w o) n)
    (to_list h);
  Format.fprintf fmt "@]"
