open Circuit

(* The engine abstraction: one signature every statevector-like
   execution engine implements, so the shot engines (Runner, Parallel,
   Backend) and the noisy-trajectory engine (Noise) can be written
   once against [S] instead of hard-coding the dense SoA storage.

   Instances:
   - [Statevector.Dense_engine] — the dense SoA amplitudes ([State]),
     executing through the compiled kernels ([Program]);
   - [Sparse.Engine] — the hash-map basis-amplitude statevector, for
     workloads whose reachable state stays near the computational
     basis (the dyn2 dynamic circuits of the paper).

   The signature lives in its own module (no implementation here) so
   the instances can be defined next to their state types without a
   dependency cycle: Engine depends only on Program/State, while
   Statevector and Sparse depend on Engine. *)

module type S = sig
  type state

  val name : string
  val max_qubits : int
  val create : int -> num_bits:int -> state
  val copy : state -> state
  val num_qubits : state -> int
  val num_bits : state -> int
  val register : state -> int
  val set_register : state -> int -> unit
  val set_bit : state -> int -> bool -> unit
  val get_bit : state -> int -> bool
  val nonzero : state -> int
  val norm2 : state -> float
  val amplitude : state -> int -> Complex.t
  val prob_one : state -> int -> float
  val apply : state -> Program.op -> unit
  val apply_gate : state -> Gate.t -> int -> unit
  val apply_kraus1 : state -> Linalg.Cmat.t -> int -> unit
  val project : state -> int -> bool -> float
  val flip : state -> int -> unit
  val measure : random:float -> state -> qubit:int -> bit:int -> bool
  val reset : random:float -> state -> int -> unit
  val exec : random:(unit -> float) -> state -> Program.t -> unit
  val run : rng:Random.State.t -> Program.t -> state
  val probabilities : state -> float array
  val nonzero_probabilities : state -> (int * float) list
end

type packed = Packed : (module S with type state = 's) * 's -> packed

let pack (type s) (module E : S with type state = s) (st : s) =
  Packed ((module E), st)

let name (Packed ((module E), _)) = E.name
let register (Packed ((module E), st)) = E.register st
let copy (Packed ((module E), st)) = Packed ((module E), E.copy st)

let exec ~random (Packed ((module E), st)) program =
  E.exec ~random st program
