open Circuit

(** Shot-based execution (the 1024-shot experiments of §V) and
    histogram utilities. *)

type histogram

(** The default RNG seed (0xC0FFEE) shared by every shot engine:
    {!run_shots}, {!Parallel.run} and [Backend.run] all default to it,
    so serial and parallel execution sample the same configuration
    unless the caller picks a seed explicitly. *)
val default_seed : int

(** [run_shots ?seed ?engine ~shots c] executes [c] independently
    [shots] times and tallies final register values ([seed] defaults
    to {!default_seed}).  The circuit is compiled once ({!Program})
    and the program replayed per shot on one serial RNG stream, on
    [engine] (default {!Statevector.Dense_engine}; pass
    [(module Sparse.Sparse_engine)] for the sparse engine — for a
    fixed seed the shot stream is identical across engines);
    {!Backend.run} is the parallel, backend-dispatched entry point. *)
val run_shots :
  ?seed:int -> ?engine:(module Engine.S) -> shots:int -> Circ.t -> histogram

(** [run_plan ?seed ~shots ~plan c] instruments [c] with the plan's
    terminal measurements before running. *)
val run_plan :
  ?seed:int -> shots:int -> plan:Measurement_plan.t -> Circ.t -> histogram

(** [run_shots_measured ?seed ~shots ~measures c] is {!run_plan} with
    [Measurement_plan.of_pairs measures]. *)
val run_shots_measured :
  ?seed:int -> shots:int -> measures:(int * int) list -> Circ.t -> histogram

(** [of_counts ~width pairs] builds a histogram from (outcome, count)
    pairs (duplicates accumulate; total = sum of counts).
    @raise Invalid_argument on a negative count. *)
val of_counts : width:int -> (int * int) list -> histogram

(** [merge a b] sums two histograms of equal width — the reduction the
    parallel shot engine applies to per-domain tallies.
    @raise Invalid_argument on width mismatch. *)
val merge : histogram -> histogram -> histogram

(** [collect ~width ~shots f] tallies [shots] samples of [f ()] — the
    generic entry point other executors (e.g. {!Noise}) build on. *)
val collect : width:int -> shots:int -> (unit -> int) -> histogram

(** [sample_dist ?seed ~shots dist] draws shots from an exact
    distribution with the O(1) alias sampler — equivalent in law to
    {!run_shots} on the circuit that produced [dist], at a fraction of
    the cost. *)
val sample_dist : ?seed:int -> shots:int -> Dist.t -> histogram

val shots : histogram -> int
val width : histogram -> int

(** Observed count for an outcome. *)
val count : histogram -> int -> int

(** Observed frequency (count / shots). *)
val frequency : histogram -> int -> float

(** Empirical distribution. *)
val to_dist : histogram -> Dist.t

(** All (outcome, count) pairs, ascending by outcome. *)
val to_list : histogram -> (int * int) list

val pp : Format.formatter -> histogram -> unit
