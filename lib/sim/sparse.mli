open Circuit

(** Hash-map basis-amplitude statevector — the sparse execution
    engine.

    Stores only nonzero amplitudes (a compact slot table keyed by
    basis index), so memory and per-op work scale with the number of
    nonzeros instead of with [2^n].  That is exactly the resource the
    paper's dyn2 dynamic circuits keep small: ancillas live in
    computational basis states, so a per-shot state has a handful of
    entries at any width — which is what lets this engine run
    basis-sparse workloads past the dense 24-qubit cap
    ({!State.max_qubits}).

    Kernels mirror the dense {!Program} kernels
    expression-for-expression (absent partners read as 0.), so dense
    and sparse agree amplitude-for-amplitude within the pruning
    tolerance and replay identical seed-deterministic shot streams
    (the differential suite in test/test_sparse.ml and [make
    sparse-gate] enforce both).  After each mixing kernel (H / generic
    2x2), entries with [|amp|^2 <= 1e-24] are pruned — far below
    rounding noise on any normalized Born sum, so pruning never flips
    a measurement outcome.

    Telemetry: [sim.sparse.measure] / [sim.sparse.reset] counter bumps
    per collapse, and [sim.sparse.ops] per replayed op (collector
    installed only). *)

type t

(** Index-width cap ([Sys.int_size - 3], 60 on 64-bit): basis indices
    are OCaml ints, with headroom so bit-shifts never overflow.  The
    binding resource is the {e nonzero count}, not the width — a
    60-qubit state with 4 nonzeros costs a few hundred bytes. *)
val max_qubits : int

(** [create n ~num_bits] is |0...0> (one entry) with an all-zero
    classical register.
    @raise Invalid_argument outside [0..max_qubits]. *)
val create : int -> num_bits:int -> t

val copy : t -> t
val num_qubits : t -> int
val num_bits : t -> int
val register : t -> int
val set_register : t -> int -> unit
val set_bit : t -> int -> bool -> unit
val get_bit : t -> int -> bool

(** Number of stored (nonzero) amplitudes. *)
val nnz : t -> int

val norm2 : t -> float

(** Amplitude of one basis state ([Complex.zero] when not stored). *)
val amplitude : t -> int -> Complex.t

(** Probability that measuring [q] yields 1. *)
val prob_one : t -> int -> float

(** [project st q outcome] collapses and renormalizes; returns the
    branch probability.
    @raise State.Zero_probability_branch when that probability is 0. *)
val project : t -> int -> bool -> float

(** In-place Pauli-X: an exact key remap, never changes [nnz]. *)
val flip : t -> int -> unit

val measure : random:float -> t -> qubit:int -> bit:int -> bool
val reset : random:float -> t -> int -> unit

(** [apply st op] applies a unitary or conditioned compiled op.
    @raise Invalid_argument on a measure/reset op. *)
val apply : t -> Program.op -> unit

(** [apply_gate st g q] applies a plain 1-qubit gate. *)
val apply_gate : t -> Gate.t -> int -> unit

(** Arbitrary 2x2 operator + renormalize (trajectory unraveling).
    @raise Invalid_argument on shape mismatch or zero-norm result. *)
val apply_kraus1 : t -> Linalg.Cmat.t -> int -> unit

(** Replay a compiled program.  The program's op array is lowered to
    {!Program.kernel}s once and memoized on the program value, so
    per-shot replays pay only the table lookup. *)
val exec : random:(unit -> float) -> t -> Program.t -> unit

(** Execute a compiled program from a fresh |0...0> state. *)
val run : rng:Random.State.t -> Program.t -> t

(** {1 Conversions} — the hybrid handoff and the densify escape
    hatch. *)

(** Densify.
    @raise State.Dense_cap_exceeded past {!State.max_qubits}. *)
val to_state : t -> State.t

(** Sparsify a dense state (register preserved, exact zeros dropped). *)
val of_state : State.t -> t

(** Dense [2^n] probability array.
    @raise State.Dense_cap_exceeded past {!State.max_qubits}. *)
val probabilities : t -> float array

(** [(basis_index, probability)] per stored entry, ascending — the
    width-safe distribution extractor. *)
val nonzero_probabilities : t -> (int * float) list

(** The {!Engine.S} instance — what {!Backend} dispatches to on
    [`Sparse] selections and sparse hybrid segments. *)
module Sparse_engine : Engine.S with type state = t
