open Circuit

(** Mutable statevector over [n] qubits plus a classical register —
    the execution engine behind the samplers and the exact evaluator.

    Amplitude indexing is little-endian: bit [q] of an index is the
    computational-basis state of qubit [q].

    The state itself is {!State.t} (SoA float storage); {!run} executes
    through the compiled-kernel path ({!Program}), while the
    instruction-at-a-time entry points here ({!apply_app},
    {!run_instruction}, {!run_reference}) form the generic boxed-matrix
    interpreter kept as the differential-testing reference. *)

type t = State.t

(** Dense-vector qubit cap (24): {!create} rejects anything larger. *)
val max_qubits : int

(** [create n ~num_bits] is |0...0> with an all-zero classical
    register.  [n] is capped at {!max_qubits} (dense vector).
    @raise State.Dense_cap_exceeded beyond the cap (see {!State}'s
    memory rationale; {!Backend} catches it to fall back to the
    sparse engine). *)
val create : int -> num_bits:int -> t

val num_qubits : t -> int
val num_bits : t -> int
val copy : t -> t
val amplitudes : t -> Linalg.Cvec.t

(** Classical register value (see {!Bits} for the encoding). *)
val register : t -> int

val set_bit : t -> int -> bool -> unit
val get_bit : t -> int -> bool

(** [apply_app st app] applies the (possibly quantum-controlled)
    unitary. *)
val apply_app : t -> Instruction.app -> unit

(** [apply_gate st g q] applies the plain 1-qubit gate. *)
val apply_gate : t -> Gate.t -> int -> unit

(** [apply_kraus1 st m q] applies an arbitrary 2x2 operator to qubit
    [q] and renormalizes — the primitive behind quantum-trajectory
    unravelings of non-unital channels (amplitude damping).
    @raise Invalid_argument when the resulting state has zero norm. *)
val apply_kraus1 : t -> Linalg.Cmat.t -> int -> unit

(** Probability that measuring [q] yields 1. *)
val prob_one : t -> int -> float

(** Raised by {!project} when the requested branch has (numerically)
    zero Born probability — collapsing onto it would divide by zero. *)
exception Zero_probability_branch of { qubit : int; outcome : bool }

(** [project st q outcome] collapses qubit [q] to [outcome] and
    renormalizes; returns the probability the branch had.
    @raise Zero_probability_branch if that probability is
    (numerically) 0. *)
val project : t -> int -> bool -> float

(** [measure ~random st ~qubit ~bit] samples an outcome with [random]
    (a float in [0,1)), collapses, stores the result into the register
    and returns it. *)
val measure : random:float -> t -> qubit:int -> bit:int -> bool

(** [reset ~random st q] performs an active reset: measure (without
    recording) then flip to |0> if needed. *)
val reset : random:float -> t -> int -> unit

(** [run_instruction ~random st i] executes one instruction through the
    generic interpreter; [random] is consulted by measure/reset only. *)
val run_instruction : random:(unit -> float) -> t -> Instruction.t -> unit

(** Run a full circuit from scratch and return the final state.
    [rng] drives measurements and resets.  Compiles the circuit to a
    kernel program and executes it ({!Program.run_circuit}); for
    repeated execution compile once and reuse the program instead. *)
val run : rng:Random.State.t -> Circ.t -> t

(** [run] through the generic instruction-at-a-time interpreter — the
    reference the compiled path is differentially tested against.
    Consumes randomness in the same order as {!run}, and agrees with it
    amplitude-for-amplitude up to kernel-fusion rounding (~1e-15). *)
val run_reference : rng:Random.State.t -> Circ.t -> t

(** Probability of each computational basis state (for analyses). *)
val probabilities : t -> float array

(** The dense SoA storage as a pluggable execution engine — the
    {!Engine.S} instance behind {!Backend}'s dense dispatch and the
    default of every [?engine] parameter ({!Runner.run_shots},
    {!Noise.run_shots}).  [apply]/[exec] replay compiled {!Program}
    kernels; everything else delegates to {!State}, so running through
    the instance is bit-identical to the direct calls. *)
module Dense_engine : Engine.S with type state = t
