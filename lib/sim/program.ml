open Circuit

(* Compiled execution plans.

   [compile] lowers a circuit's instruction list once into an array of
   specialized ops; [exec] then replays the array against a [State.t]
   with allocation-free float kernels.  The wins over the generic
   interpreter ([Statevector.apply_app]):

   - {b no matrix load}: X / H / phase / diagonal gates dispatch to
     bit-trick kernels instead of a boxed 2x2 complex multiply;
   - {b no per-index control test}: a controlled op iterates only the
     control-satisfying subspace (2^(n-k-1) pairs for k controls) by
     expanding a compact counter through the fixed bit positions,
     instead of scanning all 2^n indices and masking;
   - {b fusion}: adjacent single-qubit gates on the same target (same
     control mask) collapse into one 2x2 apply at compile time, and
     products that reach the identity are dropped entirely.  Measure,
     reset, conditioned gates and barriers are fusion barriers.

   The generic interpreter stays as the differential-testing reference
   (see test/test_program.ml). *)

(* Iteration plan for one (possibly controlled) 1-qubit op: [bit] is
   the target bit, [cmask] the control bits (all required 1), [pos]
   the positions of every fixed bit (controls + target), ascending —
   the data the subspace enumeration below expands a counter through. *)
type plan = { target : int; bit : int; cmask : int; pos : int array }

type op =
  | Xk of plan
  | Hk of plan
  | Phasek of { p : plan; re1 : float; im1 : float }
      (* diag(1, re1 + i.im1): touches only the |1> half of each pair *)
  | Diagk of { p : plan; re0 : float; im0 : float; re1 : float; im1 : float }
  | U2k of { p : plan; m : float array }
      (* generic 2x2: [| m00re; m00im; m01re; m01im; m10re; ... |] *)
  | Mk of { qubit : int; bit : int }
  | Rk of int
  | Ck of { mask : int; value : int; body : op }

type t = {
  n : int;
  num_bits : int;
  ops : op array;
  source_gates : int;
  fused : int;
  fallback : int;
}

let num_qubits t = t.n
let num_bits t = t.num_bits
let length t = Array.length t.ops
let get t k = t.ops.(k)
let source_gates t = t.source_gates
let fused_count t = t.fused
let fallback_count t = t.fallback

(* ------------------------------------------------------------------ *)
(* Compilation                                                        *)

let eps = 1e-12
let sq2 = 1. /. sqrt 2.
let is0 x = abs_float x <= eps

let mask_of_controls controls =
  List.fold_left (fun acc c -> acc lor (1 lsl c)) 0 controls

let controls_of_mask ~n cmask =
  let acc = ref [] in
  for q = n - 1 downto 0 do
    if cmask land (1 lsl q) <> 0 then acc := q :: !acc
  done;
  !acc

let make_plan ~n ~target ~cmask =
  let bit = 1 lsl target in
  let fixed = cmask lor bit in
  let pos = ref [] in
  for q = n - 1 downto 0 do
    if fixed land (1 lsl q) <> 0 then pos := q :: !pos
  done;
  { target; bit; cmask; pos = Array.of_list !pos }

let mat_of_gate g =
  let m = Gate.matrix g in
  let z r c : Complex.t = Linalg.Cmat.get m r c in
  let m00 = z 0 0 and m01 = z 0 1 and m10 = z 1 0 and m11 = z 1 1 in
  [|
    m00.re; m00.im; m01.re; m01.im; m10.re; m10.im; m11.re; m11.im;
  |]

(* [matmul a b] is the 2x2 complex product a.b — i.e. "apply b first,
   then a" when both act on the same target. *)
let matmul a b =
  let e m r c = (m.(2 * ((2 * r) + c)), m.((2 * ((2 * r) + c)) + 1)) in
  let out = Array.make 8 0. in
  for r = 0 to 1 do
    for c = 0 to 1 do
      let acc_re = ref 0. and acc_im = ref 0. in
      for k = 0 to 1 do
        let are, aim = e a r k and bre, bim = e b k c in
        acc_re := !acc_re +. ((are *. bre) -. (aim *. bim));
        acc_im := !acc_im +. ((are *. bim) +. (aim *. bre))
      done;
      out.(2 * ((2 * r) + c)) <- !acc_re;
      out.((2 * ((2 * r) + c)) + 1) <- !acc_im
    done
  done;
  out

let is_identity m =
  is0 (m.(0) -. 1.) && is0 m.(1) && is0 m.(2) && is0 m.(3) && is0 m.(4)
  && is0 m.(5)
  && is0 (m.(6) -. 1.)
  && is0 m.(7)

(* Pick the cheapest kernel the matrix admits.  Single standard gates
   hit the specialized cases with their exact float entries, so the
   kernels reproduce the generic interpreter bit-for-bit; fused
   products classify within [eps]. *)
let specialize plan m =
  let offdiag0 = is0 m.(2) && is0 m.(3) && is0 m.(4) && is0 m.(5) in
  let diag0 = is0 m.(0) && is0 m.(1) && is0 m.(6) && is0 m.(7) in
  if offdiag0 then
    if is0 (m.(0) -. 1.) && is0 m.(1) then
      Phasek { p = plan; re1 = m.(6); im1 = m.(7) }
    else
      Diagk { p = plan; re0 = m.(0); im0 = m.(1); re1 = m.(6); im1 = m.(7) }
  else if
    diag0
    && is0 (m.(2) -. 1.)
    && is0 m.(3)
    && is0 (m.(4) -. 1.)
    && is0 m.(5)
  then Xk plan
  else if
    is0 m.(1) && is0 m.(3) && is0 m.(5) && is0 m.(7)
    && is0 (m.(0) -. sq2)
    && is0 (m.(2) -. sq2)
    && is0 (m.(4) -. sq2)
    && is0 (m.(6) +. sq2)
  then Hk plan
  else U2k { p = plan; m }

let compile_instructions ?(fuse = true) ~num_qubits:n ~num_bits instrs =
  let ops = ref [] in
  let count = ref 0 in
  let gates = ref 0 and fused = ref 0 and fallback = ref 0 in
  let emit op =
    (match op with
    | U2k _ | Ck { body = U2k _; _ } -> incr fallback
    | Xk _ | Hk _ | Phasek _ | Diagk _ | Mk _ | Rk _
    | Ck { body = Xk _ | Hk _ | Phasek _ | Diagk _ | Mk _ | Rk _ | Ck _; _ }
      ->
        ());
    ops := op :: !ops;
    incr count
  in
  (* pending fusion group: target, cmask, accumulated 2x2, gate count *)
  let pending = ref None in
  let flush () =
    match !pending with
    | None -> ()
    | Some (target, cmask, m, absorbed) ->
        let plan = make_plan ~n ~target ~cmask in
        if is_identity m then fused := !fused + absorbed
        else begin
          fused := !fused + (absorbed - 1);
          emit (specialize plan m)
        end;
        pending := None
  in
  let unitary_app (a : Instruction.app) =
    let cmask = mask_of_controls a.controls in
    let m = mat_of_gate a.gate in
    incr gates;
    if not fuse then emit (specialize (make_plan ~n ~target:a.target ~cmask) m)
    else
      match !pending with
      | Some (t, cm, pm, absorbed) when t = a.target && cm = cmask ->
          pending := Some (t, cm, matmul m pm, absorbed + 1)
      | Some _ | None ->
          flush ();
          pending := Some (a.target, cmask, m, 1)
  in
  List.iter
    (fun (i : Instruction.t) ->
      match i with
      | Unitary a -> unitary_app a
      | Conditioned (cond, a) ->
          flush ();
          incr gates;
          let mask = mask_of_controls (List.map fst cond.bits) in
          let value =
            List.fold_left
              (fun acc (b, v) -> if v then acc lor (1 lsl b) else acc)
              0 cond.bits
          in
          let cmask = mask_of_controls a.controls in
          let body =
            specialize (make_plan ~n ~target:a.target ~cmask) (mat_of_gate a.gate)
          in
          emit (Ck { mask; value; body })
      | Measure { qubit; bit } ->
          flush ();
          emit (Mk { qubit; bit })
      | Reset q ->
          flush ();
          emit (Rk q)
      | Barrier _ -> flush ())
    instrs;
  flush ();
  let t =
    {
      n;
      num_bits;
      ops = Array.of_list (List.rev !ops);
      source_gates = !gates;
      fused = !fused;
      fallback = !fallback;
    }
  in
  if Obs.enabled () then begin
    Obs.incr ~n:(Array.length t.ops) "sim.program.ops";
    Obs.incr ~n:t.fused "sim.program.fused";
    Obs.incr ~n:t.fallback "sim.program.fallback"
  end;
  t

let compile ?fuse c =
  Obs.with_span "program.compile"
    ~attrs:[ ("qubits", string_of_int (Circ.num_qubits c)) ]
    (fun () ->
      compile_instructions ?fuse ~num_qubits:(Circ.num_qubits c)
        ~num_bits:(Circ.num_bits c) (Circ.instructions c))

let split_prefix t =
  let is_branch = function
    | Mk _ | Rk _ -> true
    | Xk _ | Hk _ | Phasek _ | Diagk _ | U2k _ | Ck _ -> false
  in
  let len = Array.length t.ops in
  let k = ref 0 in
  while !k < len && not (is_branch t.ops.(!k)) do
    incr k
  done;
  ( { t with ops = Array.sub t.ops 0 !k },
    { t with ops = Array.sub t.ops !k (len - !k) } )

(* ------------------------------------------------------------------ *)
(* Kernels                                                            *)

(* Expand counter [k] to a full index by inserting a 0 bit at every
   fixed position (ascending): the enumeration of the subspace where
   all fixed bits are clear.  OR-ing [cmask] (and the target bit) back
   in lands on exactly the control-satisfying amplitudes. *)
let[@inline] expand pos k =
  let idx = ref k in
  for j = 0 to Array.length pos - 1 do
    let p = Array.unsafe_get pos j in
    let low = (1 lsl p) - 1 in
    idx := ((!idx land lnot low) lsl 1) lor (!idx land low)
  done;
  !idx

let kernel_x re im { bit; cmask; pos; _ } =
  let dim = Array.length re in
  if cmask = 0 then begin
    let base = ref 0 in
    while !base < dim do
      for i0 = !base to !base + bit - 1 do
        let i1 = i0 lor bit in
        let r = Array.unsafe_get re i0 in
        Array.unsafe_set re i0 (Array.unsafe_get re i1);
        Array.unsafe_set re i1 r;
        let i = Array.unsafe_get im i0 in
        Array.unsafe_set im i0 (Array.unsafe_get im i1);
        Array.unsafe_set im i1 i
      done;
      base := !base + bit + bit
    done
  end
  else
    for k = 0 to (dim lsr Array.length pos) - 1 do
      let i0 = expand pos k lor cmask in
      let i1 = i0 lor bit in
      let r = Array.unsafe_get re i0 in
      Array.unsafe_set re i0 (Array.unsafe_get re i1);
      Array.unsafe_set re i1 r;
      let i = Array.unsafe_get im i0 in
      Array.unsafe_set im i0 (Array.unsafe_get im i1);
      Array.unsafe_set im i1 i
    done

let[@inline] butterfly_h re im i0 i1 =
  let r0 = Array.unsafe_get re i0
  and r1 = Array.unsafe_get re i1
  and x0 = Array.unsafe_get im i0
  and x1 = Array.unsafe_get im i1 in
  Array.unsafe_set re i0 ((sq2 *. r0) +. (sq2 *. r1));
  Array.unsafe_set im i0 ((sq2 *. x0) +. (sq2 *. x1));
  Array.unsafe_set re i1 ((sq2 *. r0) -. (sq2 *. r1));
  Array.unsafe_set im i1 ((sq2 *. x0) -. (sq2 *. x1))

let kernel_h re im { bit; cmask; pos; _ } =
  let dim = Array.length re in
  if cmask = 0 then begin
    let base = ref 0 in
    while !base < dim do
      for i0 = !base to !base + bit - 1 do
        butterfly_h re im i0 (i0 lor bit)
      done;
      base := !base + bit + bit
    done
  end
  else
    for k = 0 to (dim lsr Array.length pos) - 1 do
      let i0 = expand pos k lor cmask in
      butterfly_h re im i0 (i0 lor bit)
    done

let[@inline] rotate re im i zre zim =
  let r = Array.unsafe_get re i and x = Array.unsafe_get im i in
  Array.unsafe_set re i ((zre *. r) -. (zim *. x));
  Array.unsafe_set im i ((zre *. x) +. (zim *. r))

let kernel_phase re im { bit; cmask; pos; _ } zre zim =
  let dim = Array.length re in
  if cmask = 0 then begin
    let base = ref bit in
    while !base < dim do
      for i1 = !base to !base + bit - 1 do
        rotate re im i1 zre zim
      done;
      base := !base + bit + bit
    done
  end
  else begin
    let set = cmask lor bit in
    for k = 0 to (dim lsr Array.length pos) - 1 do
      rotate re im (expand pos k lor set) zre zim
    done
  end

let kernel_diag re im { bit; cmask; pos; _ } d0re d0im d1re d1im =
  let dim = Array.length re in
  if cmask = 0 then begin
    let base = ref 0 in
    while !base < dim do
      for i0 = !base to !base + bit - 1 do
        rotate re im i0 d0re d0im;
        rotate re im (i0 lor bit) d1re d1im
      done;
      base := !base + bit + bit
    done
  end
  else
    for k = 0 to (dim lsr Array.length pos) - 1 do
      let i0 = expand pos k lor cmask in
      rotate re im i0 d0re d0im;
      rotate re im (i0 lor bit) d1re d1im
    done

(* Generic 2x2, with the same product/sum association as the boxed
   Complex arithmetic of the reference interpreter — unfused gates
   reproduce it bit-for-bit. *)
let[@inline] butterfly_u2 re im i0 i1 m =
  let m00re = Array.unsafe_get m 0
  and m00im = Array.unsafe_get m 1
  and m01re = Array.unsafe_get m 2
  and m01im = Array.unsafe_get m 3
  and m10re = Array.unsafe_get m 4
  and m10im = Array.unsafe_get m 5
  and m11re = Array.unsafe_get m 6
  and m11im = Array.unsafe_get m 7 in
  let r0 = Array.unsafe_get re i0
  and r1 = Array.unsafe_get re i1
  and x0 = Array.unsafe_get im i0
  and x1 = Array.unsafe_get im i1 in
  Array.unsafe_set re i0
    (((m00re *. r0) -. (m00im *. x0)) +. ((m01re *. r1) -. (m01im *. x1)));
  Array.unsafe_set im i0
    (((m00re *. x0) +. (m00im *. r0)) +. ((m01re *. x1) +. (m01im *. r1)));
  Array.unsafe_set re i1
    (((m10re *. r0) -. (m10im *. x0)) +. ((m11re *. r1) -. (m11im *. x1)));
  Array.unsafe_set im i1
    (((m10re *. x0) +. (m10im *. r0)) +. ((m11re *. x1) +. (m11im *. r1)))

let kernel_u2 re im { bit; cmask; pos; _ } m =
  let dim = Array.length re in
  if cmask = 0 then begin
    let base = ref 0 in
    while !base < dim do
      for i0 = !base to !base + bit - 1 do
        butterfly_u2 re im i0 (i0 lor bit) m
      done;
      base := !base + bit + bit
    done
  end
  else
    for k = 0 to (dim lsr Array.length pos) - 1 do
      let i0 = expand pos k lor cmask in
      butterfly_u2 re im i0 (i0 lor bit) m
    done

(* ------------------------------------------------------------------ *)
(* Execution                                                          *)

let rec apply st op =
  let v = State.raw st in
  let re = Linalg.Cvec.re v and im = Linalg.Cvec.im v in
  match op with
  | Xk p -> kernel_x re im p
  | Hk p -> kernel_h re im p
  | Phasek { p; re1; im1 } -> kernel_phase re im p re1 im1
  | Diagk { p; re0; im0; re1; im1 } -> kernel_diag re im p re0 im0 re1 im1
  | U2k { p; m } -> kernel_u2 re im p m
  | Ck { mask; value; body } ->
      if State.register st land mask = value then apply st body
  | Mk _ | Rk _ -> invalid_arg "Program.apply: branching op"

let[@inline] exec_op ~random st op =
  match op with
  | Mk { qubit; bit } ->
      ignore (State.measure ~random:(random ()) st ~qubit ~bit)
  | Rk q -> State.reset ~random:(random ()) st q
  | (Xk _ | Hk _ | Phasek _ | Diagk _ | U2k _ | Ck _) as op -> apply st op

(* Constant per-class histogram names: the timed loop must not build
   strings per op. *)
let op_hist_name = function
  | Xk _ -> "sim.program.op.x"
  | Hk _ -> "sim.program.op.h"
  | Phasek _ -> "sim.program.op.phase"
  | Diagk _ -> "sim.program.op.diag"
  | U2k _ -> "sim.program.op.u2"
  | Ck _ -> "sim.program.op.cond"
  | Mk _ -> "sim.program.op.measure"
  | Rk _ -> "sim.program.op.reset"

(* Per-op timing is sampled: one replay in [op_sample_every] runs the
   timed loop, the rest run the production loop even with a collector
   installed.  A fused op is tens of ns and a mid-replay clock read is
   several hundred (the replay just evicted the vDSO page), so timing
   every op of every shot costs ~10% of the prefix-cached reference
   run — far over the <2% telemetry budget in docs/OBSERVABILITY.md.
   Sampling keeps the per-class distributions (hundreds of
   observations on any real workload, the count says how many) at a
   small fraction of that cost.  The tick is per-domain, so parallel
   workers sample independently without contention. *)
let op_sample_every = 256

let op_sample_tick = Domain.DLS.new_key (fun () -> ref 0)

let exec_plain ~random st ops =
  for k = 0 to Array.length ops - 1 do
    exec_op ~random st (Array.unsafe_get ops k)
  done

(* Timestamps are chained — op [k]'s end read doubles as op [k+1]'s
   start read, halving the clock reads per timed replay.  A bracket
   therefore also covers the previous op's histogram record (tens of
   ns against the µs-scale op costs measured here).  Recording goes
   straight to the domain-local handle: exec_timed only runs with a
   collector installed, so the per-record enabled check and DLS fetch
   that [Obs.record_ns] would pay are redundant. *)
let exec_timed ~random st ops =
  let t = ref (Obs.Clock.now_ns ()) in
  for k = 0 to Array.length ops - 1 do
    let op = Array.unsafe_get ops k in
    exec_op ~random st op;
    let t1 = Obs.Clock.now_ns () in
    Obs.Histogram.record
      (Obs.local_histogram (op_hist_name op))
      (Int64.to_int (Int64.sub t1 !t));
    t := t1
  done

let exec ~random st t =
  if not (Obs.enabled ()) then
    (* the production path: one Atomic load for the whole replay *)
    exec_plain ~random st t.ops
  else begin
    let tick = Domain.DLS.get op_sample_tick in
    let k = !tick in
    tick := k + 1;
    if k land (op_sample_every - 1) = 0 then exec_timed ~random st t.ops
    else exec_plain ~random st t.ops
  end

let fresh_state t = State.create t.n ~num_bits:t.num_bits

let run ~rng t =
  let st = fresh_state t in
  exec ~random:(fun () -> Random.State.float rng 1.0) st t;
  st

let run_circuit ~rng c = run ~rng (compile c)

(* ------------------------------------------------------------------ *)
(* Introspection                                                      *)

type kernel =
  | Kx of { bit : int; cmask : int }
  | Kh of { bit : int; cmask : int }
  | Kphase of { bit : int; cmask : int; re1 : float; im1 : float }
  | Kdiag of {
      bit : int;
      cmask : int;
      re0 : float;
      im0 : float;
      re1 : float;
      im1 : float;
    }
  | Ku2 of { bit : int; cmask : int; m : float array }
  | Kmeasure of { qubit : int; bit : int }
  | Kreset of int
  | Kcond of { mask : int; value : int; body : kernel }

let rec kernel_of_op = function
  | Xk p -> Kx { bit = p.bit; cmask = p.cmask }
  | Hk p -> Kh { bit = p.bit; cmask = p.cmask }
  | Phasek { p; re1; im1 } -> Kphase { bit = p.bit; cmask = p.cmask; re1; im1 }
  | Diagk { p; re0; im0; re1; im1 } ->
      Kdiag { bit = p.bit; cmask = p.cmask; re0; im0; re1; im1 }
  | U2k { p; m } -> Ku2 { bit = p.bit; cmask = p.cmask; m }
  | Mk { qubit; bit } -> Kmeasure { qubit; bit }
  | Rk q -> Kreset q
  | Ck { mask; value; body } ->
      Kcond { mask; value; body = kernel_of_op body }

let kernel op = kernel_of_op op
let kernels t = Array.map kernel_of_op t.ops

type view =
  | Unitary of { target : int; controls : int list }
  | Conditional of { mask : int; value : int; target : int; controls : int list }
  | Measurement of { qubit : int; bit : int }
  | Reset of int

let rec view ~n op =
  match op with
  | Xk p | Hk p | Phasek { p; _ } | Diagk { p; _ } | U2k { p; _ } ->
      Unitary { target = p.target; controls = controls_of_mask ~n p.cmask }
  | Mk { qubit; bit } -> Measurement { qubit; bit }
  | Rk q -> Reset q
  | Ck { mask; value; body } -> (
      match view ~n body with
      | Unitary { target; controls } -> Conditional { mask; value; target; controls }
      | Conditional _ | Measurement _ | Reset _ ->
          invalid_arg "Program.view: malformed conditional body")
