open Circuit

type scope = [ `Target | `All_qubits ]

type model = {
  p_depol1 : float;
  p_depol2 : float;
  p_meas_flip : float;
  p_reset_flip : float;
  p_feedforward_z : float;
  p_amp_damp : float;
  feedforward_scope : scope;
}

let ideal =
  {
    p_depol1 = 0.;
    p_depol2 = 0.;
    p_meas_flip = 0.;
    p_reset_flip = 0.;
    p_feedforward_z = 0.;
    p_amp_damp = 0.;
    feedforward_scope = `Target;
  }

let default =
  {
    p_depol1 = 0.0005;
    p_depol2 = 0.01;
    p_meas_flip = 0.02;
    p_reset_flip = 0.01;
    p_feedforward_z = 0.04;
    p_amp_damp = 0.;
    feedforward_scope = `Target;
  }

let validate m =
  let check name p =
    if not (p >= 0. && p <= 1.) then
      invalid_arg (Printf.sprintf "Noise: %s = %g outside [0,1]" name p)
  in
  check "p_depol1" m.p_depol1;
  check "p_depol2" m.p_depol2;
  check "p_meas_flip" m.p_meas_flip;
  check "p_reset_flip" m.p_reset_flip;
  check "p_feedforward_z" m.p_feedforward_z;
  check "p_amp_damp" m.p_amp_damp

let random_pauli rng =
  match Random.State.int rng 3 with
  | 0 -> Gate.X
  | 1 -> Gate.Y
  | _ -> Gate.Z

let dense_engine = (module Statevector.Dense_engine : Engine.S)

(* Noisy trajectories run over a compiled program ([Program]) lowered
   with [~fuse:false]: fusion would merge the very gate boundaries the
   channels attach to, so the 1:1 gate-to-op lowering keeps noise
   injection points identical to the source circuit.  [Program.view]
   recovers the target/control structure each channel needs; the state
   primitives all go through the engine instance, so trajectories run
   unchanged on dense or sparse storage. *)
let run_ops (type s) (module E : Engine.S with type state = s) ~rng ~model
    ~num_qubits (st : s) program =
  let maybe_depolarize ~p q =
    if p > 0. && Random.State.float rng 1.0 < p then
      E.apply_gate st (random_pauli rng) q
  in
  (* quantum-trajectory unraveling of amplitude damping: jump with
     probability gamma.P(1) (relax to |0>), otherwise apply the no-jump
     operator diag(1, sqrt(1-gamma)) and renormalize *)
  let maybe_amp_damp ~gamma q =
    if gamma > 0. then begin
      let p_jump = gamma *. E.prob_one st q in
      if p_jump > 0. && Random.State.float rng 1.0 < p_jump then begin
        ignore (E.project st q true);
        E.apply_gate st Gate.X q
      end
      else
        E.apply_kraus1 st
          (Linalg.Cmat.of_reim_lists
             [ [ (1., 0.); (0., 0.) ]; [ (0., 0.); (sqrt (1. -. gamma), 0.) ] ])
          q
    end
  in
  let maybe_dephase ~p q =
    if p > 0. && Random.State.float rng 1.0 < p then E.apply_gate st Gate.Z q
  in
  let len = Program.length program in
  for k = 0 to len - 1 do
    let op = Program.get program k in
    match Program.view ~n:num_qubits op with
    | Program.Unitary { target; controls } ->
        E.apply st op;
        let p = if controls = [] then model.p_depol1 else model.p_depol2 in
        List.iter
          (fun q ->
            maybe_depolarize ~p q;
            maybe_amp_damp ~gamma:model.p_amp_damp q)
          (controls @ [ target ])
    | Program.Conditional { mask; value; target; controls } ->
        (* the feed-forward latency penalty applies whether or not the
           gate fires: the controller must wait for the classical value *)
        (match model.feedforward_scope with
        | `Target -> maybe_dephase ~p:model.p_feedforward_z target
        | `All_qubits ->
            for q = 0 to num_qubits - 1 do
              maybe_dephase ~p:model.p_feedforward_z q
            done);
        if E.register st land mask = value then begin
          E.apply st op;
          let p = if controls = [] then model.p_depol1 else model.p_depol2 in
          List.iter (fun q -> maybe_depolarize ~p q) (controls @ [ target ])
        end
    | Program.Measurement { qubit; bit } ->
        let outcome =
          E.measure ~random:(Random.State.float rng 1.0) st ~qubit ~bit
        in
        if
          model.p_meas_flip > 0.
          && Random.State.float rng 1.0 < model.p_meas_flip
        then E.set_bit st bit (not outcome)
    | Program.Reset q ->
        E.reset ~random:(Random.State.float rng 1.0) st q;
        if
          model.p_reset_flip > 0.
          && Random.State.float rng 1.0 < model.p_reset_flip
        then E.flip st q
  done;
  E.register st

let compile_noisy c = Program.compile ~fuse:false c

let run_shot ?(engine = dense_engine) ~rng ~model c =
  let (module E : Engine.S) = engine in
  validate model;
  let program = compile_noisy c in
  let st = E.create (Circ.num_qubits c) ~num_bits:(Circ.num_bits c) in
  run_ops (module E) ~rng ~model ~num_qubits:(Circ.num_qubits c) st program

(* The shared-prefix cache is sound under noise only when the model
   injects nothing into the prefix: no per-unitary channels, and no
   feed-forward dephasing if the prefix holds a conditioned op. *)
let prefix_noise_free ~num_qubits model prefix_program =
  model.p_depol1 = 0. && model.p_depol2 = 0. && model.p_amp_damp = 0.
  &&
  (model.p_feedforward_z = 0.
  ||
  let conditional = ref false in
  for k = 0 to Program.length prefix_program - 1 do
    match Program.view ~n:num_qubits (Program.get prefix_program k) with
    | Program.Conditional _ -> conditional := true
    | Program.Unitary _ | Program.Measurement _ | Program.Reset _ -> ()
  done;
  not !conditional)

(* the prefix segment consumes no randomness: no measure/reset ops *)
let no_random () = assert false

let run_shots ?(seed = 0xD1CE) ?domains ?plan ?(engine = dense_engine) ~model
    ~shots c =
  let (module E : Engine.S) = engine in
  validate model;
  let c =
    match plan with
    | None -> c
    | Some plan -> Measurement_plan.instrument plan c
  in
  let width = Circ.num_bits c in
  let num_qubits = Circ.num_qubits c in
  let program = compile_noisy c in
  let prefix_program, suffix_program = Program.split_prefix program in
  if prefix_noise_free ~num_qubits model prefix_program then begin
    let cached = E.create num_qubits ~num_bits:(Circ.num_bits c) in
    E.exec ~random:no_random cached prefix_program;
    Parallel.run ?domains ~seed ~width ~shots (fun ~rng ~index:_ ->
        run_ops (module E) ~rng ~model ~num_qubits (E.copy cached)
          suffix_program)
  end
  else
    Parallel.run ?domains ~seed ~width ~shots (fun ~rng ~index:_ ->
        let st = E.create num_qubits ~num_bits:(Circ.num_bits c) in
        run_ops (module E) ~rng ~model ~num_qubits st program)

let expected_outcome_probability ?seed ?domains ~model ~shots ~expected c =
  let h = run_shots ?seed ?domains ~model ~shots c in
  Runner.frequency h expected
