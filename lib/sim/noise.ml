open Circuit

type scope = [ `Target | `All_qubits ]

type model = {
  p_depol1 : float;
  p_depol2 : float;
  p_meas_flip : float;
  p_reset_flip : float;
  p_feedforward_z : float;
  p_amp_damp : float;
  feedforward_scope : scope;
}

let ideal =
  {
    p_depol1 = 0.;
    p_depol2 = 0.;
    p_meas_flip = 0.;
    p_reset_flip = 0.;
    p_feedforward_z = 0.;
    p_amp_damp = 0.;
    feedforward_scope = `Target;
  }

let default =
  {
    p_depol1 = 0.0005;
    p_depol2 = 0.01;
    p_meas_flip = 0.02;
    p_reset_flip = 0.01;
    p_feedforward_z = 0.04;
    p_amp_damp = 0.;
    feedforward_scope = `Target;
  }

let validate m =
  let check name p =
    if not (p >= 0. && p <= 1.) then
      invalid_arg (Printf.sprintf "Noise: %s = %g outside [0,1]" name p)
  in
  check "p_depol1" m.p_depol1;
  check "p_depol2" m.p_depol2;
  check "p_meas_flip" m.p_meas_flip;
  check "p_reset_flip" m.p_reset_flip;
  check "p_feedforward_z" m.p_feedforward_z;
  check "p_amp_damp" m.p_amp_damp

let random_pauli rng =
  match Random.State.int rng 3 with
  | 0 -> Gate.X
  | 1 -> Gate.Y
  | _ -> Gate.Z

let maybe_depolarize ~rng ~p st q =
  if p > 0. && Random.State.float rng 1.0 < p then
    Statevector.apply_gate st (random_pauli rng) q

(* quantum-trajectory unraveling of amplitude damping: jump with
   probability gamma.P(1) (relax to |0>), otherwise apply the no-jump
   operator diag(1, sqrt(1-gamma)) and renormalize *)
let maybe_amp_damp ~rng ~gamma st q =
  if gamma > 0. then begin
    let p_jump = gamma *. Statevector.prob_one st q in
    if p_jump > 0. && Random.State.float rng 1.0 < p_jump then begin
      ignore (Statevector.project st q true);
      Statevector.apply_gate st Gate.X q
    end
    else
      Statevector.apply_kraus1 st
        (Linalg.Cmat.of_reim_lists
           [ [ (1., 0.); (0., 0.) ]; [ (0., 0.); (sqrt (1. -. gamma), 0.) ] ])
        q
  end

let maybe_dephase ~rng ~p st q =
  if p > 0. && Random.State.float rng 1.0 < p then
    Statevector.apply_gate st Gate.Z q

(* Noisy trajectories run over a compiled program ([Program]) lowered
   with [~fuse:false]: fusion would merge the very gate boundaries the
   channels attach to, so the 1:1 gate-to-op lowering keeps noise
   injection points identical to the source circuit.  [Program.view]
   recovers the target/control structure each channel needs. *)
let run_ops ~rng ~model ~num_qubits st program =
  let len = Program.length program in
  for k = 0 to len - 1 do
    let op = Program.get program k in
    match Program.view ~n:num_qubits op with
    | Program.Unitary { target; controls } ->
        Program.apply st op;
        let p = if controls = [] then model.p_depol1 else model.p_depol2 in
        List.iter
          (fun q ->
            maybe_depolarize ~rng ~p st q;
            maybe_amp_damp ~rng ~gamma:model.p_amp_damp st q)
          (controls @ [ target ])
    | Program.Conditional { mask; value; target; controls } ->
        (* the feed-forward latency penalty applies whether or not the
           gate fires: the controller must wait for the classical value *)
        (match model.feedforward_scope with
        | `Target -> maybe_dephase ~rng ~p:model.p_feedforward_z st target
        | `All_qubits ->
            for q = 0 to num_qubits - 1 do
              maybe_dephase ~rng ~p:model.p_feedforward_z st q
            done);
        if Statevector.register st land mask = value then begin
          Program.apply st op;
          let p = if controls = [] then model.p_depol1 else model.p_depol2 in
          List.iter (maybe_depolarize ~rng ~p st) (controls @ [ target ])
        end
    | Program.Measurement { qubit; bit } ->
        let outcome =
          Statevector.measure ~random:(Random.State.float rng 1.0) st ~qubit
            ~bit
        in
        if
          model.p_meas_flip > 0.
          && Random.State.float rng 1.0 < model.p_meas_flip
        then Statevector.set_bit st bit (not outcome)
    | Program.Reset q ->
        Statevector.reset ~random:(Random.State.float rng 1.0) st q;
        if
          model.p_reset_flip > 0.
          && Random.State.float rng 1.0 < model.p_reset_flip
        then State.flip st q
  done;
  Statevector.register st

let compile_noisy c = Program.compile ~fuse:false c

let run_shot ~rng ~model c =
  validate model;
  let program = compile_noisy c in
  run_ops ~rng ~model ~num_qubits:(Circ.num_qubits c)
    (Program.fresh_state program)
    program

(* The shared-prefix cache is sound under noise only when the model
   injects nothing into the prefix: no per-unitary channels, and no
   feed-forward dephasing if the prefix holds a conditioned op. *)
let prefix_noise_free ~num_qubits model prefix_program =
  model.p_depol1 = 0. && model.p_depol2 = 0. && model.p_amp_damp = 0.
  &&
  (model.p_feedforward_z = 0.
  ||
  let conditional = ref false in
  for k = 0 to Program.length prefix_program - 1 do
    match Program.view ~n:num_qubits (Program.get prefix_program k) with
    | Program.Conditional _ -> conditional := true
    | Program.Unitary _ | Program.Measurement _ | Program.Reset _ -> ()
  done;
  not !conditional)

(* the prefix segment consumes no randomness: no measure/reset ops *)
let no_random () = assert false

let run_shots ?(seed = 0xD1CE) ?domains ?plan ~model ~shots c =
  validate model;
  let c =
    match plan with
    | None -> c
    | Some plan -> Measurement_plan.instrument plan c
  in
  let width = Circ.num_bits c in
  let num_qubits = Circ.num_qubits c in
  let program = compile_noisy c in
  let prefix_program, suffix_program = Program.split_prefix program in
  if prefix_noise_free ~num_qubits model prefix_program then begin
    let cached = Program.fresh_state program in
    Program.exec ~random:no_random cached prefix_program;
    Parallel.run ?domains ~seed ~width ~shots (fun ~rng ~index:_ ->
        run_ops ~rng ~model ~num_qubits (Statevector.copy cached)
          suffix_program)
  end
  else
    Parallel.run ?domains ~seed ~width ~shots (fun ~rng ~index:_ ->
        let st = Program.fresh_state program in
        run_ops ~rng ~model ~num_qubits st program)

let expected_outcome_probability ?seed ?domains ~model ~shots ~expected c =
  let h = run_shots ?seed ?domains ~model ~shots c in
  Runner.frequency h expected
