open Circuit

type scope = [ `Target | `All_qubits ]

type model = {
  p_depol1 : float;
  p_depol2 : float;
  p_meas_flip : float;
  p_reset_flip : float;
  p_feedforward_z : float;
  p_amp_damp : float;
  feedforward_scope : scope;
}

let ideal =
  {
    p_depol1 = 0.;
    p_depol2 = 0.;
    p_meas_flip = 0.;
    p_reset_flip = 0.;
    p_feedforward_z = 0.;
    p_amp_damp = 0.;
    feedforward_scope = `Target;
  }

let default =
  {
    p_depol1 = 0.0005;
    p_depol2 = 0.01;
    p_meas_flip = 0.02;
    p_reset_flip = 0.01;
    p_feedforward_z = 0.04;
    p_amp_damp = 0.;
    feedforward_scope = `Target;
  }

let validate m =
  let check name p =
    if not (p >= 0. && p <= 1.) then
      invalid_arg (Printf.sprintf "Noise: %s = %g outside [0,1]" name p)
  in
  check "p_depol1" m.p_depol1;
  check "p_depol2" m.p_depol2;
  check "p_meas_flip" m.p_meas_flip;
  check "p_reset_flip" m.p_reset_flip;
  check "p_feedforward_z" m.p_feedforward_z;
  check "p_amp_damp" m.p_amp_damp

let random_pauli rng =
  match Random.State.int rng 3 with
  | 0 -> Gate.X
  | 1 -> Gate.Y
  | _ -> Gate.Z

let maybe_depolarize ~rng ~p st q =
  if p > 0. && Random.State.float rng 1.0 < p then
    Statevector.apply_gate st (random_pauli rng) q

(* quantum-trajectory unraveling of amplitude damping: jump with
   probability gamma.P(1) (relax to |0>), otherwise apply the no-jump
   operator diag(1, sqrt(1-gamma)) and renormalize *)
let maybe_amp_damp ~rng ~gamma st q =
  if gamma > 0. then begin
    let p_jump = gamma *. Statevector.prob_one st q in
    if p_jump > 0. && Random.State.float rng 1.0 < p_jump then begin
      ignore (Statevector.project st q true);
      Statevector.apply_gate st Gate.X q
    end
    else
      Statevector.apply_kraus1 st
        (Linalg.Cmat.of_reim_lists
           [ [ (1., 0.); (0., 0.) ]; [ (0., 0.); (sqrt (1. -. gamma), 0.) ] ])
        q
  end

let maybe_dephase ~rng ~p st q =
  if p > 0. && Random.State.float rng 1.0 < p then
    Statevector.apply_gate st Gate.Z q

let run_instructions ~rng ~model ~num_qubits st instrs =
  let step (i : Instruction.t) =
    match i with
    | Unitary a ->
        Statevector.apply_app st a;
        let p = if a.controls = [] then model.p_depol1 else model.p_depol2 in
        List.iter
          (fun q ->
            maybe_depolarize ~rng ~p st q;
            maybe_amp_damp ~rng ~gamma:model.p_amp_damp st q)
          (a.controls @ [ a.target ])
    | Conditioned (cnd, a) ->
        (* the feed-forward latency penalty applies whether or not the
           gate fires: the controller must wait for the classical value *)
        (match model.feedforward_scope with
        | `Target -> maybe_dephase ~rng ~p:model.p_feedforward_z st a.target
        | `All_qubits ->
            for q = 0 to num_qubits - 1 do
              maybe_dephase ~rng ~p:model.p_feedforward_z st q
            done);
        if Instruction.cond_holds cnd (Statevector.register st) then begin
          Statevector.apply_app st a;
          let p =
            if a.controls = [] then model.p_depol1 else model.p_depol2
          in
          List.iter (maybe_depolarize ~rng ~p st) (a.controls @ [ a.target ])
        end
    | Measure { qubit; bit } ->
        let outcome =
          Statevector.measure ~random:(Random.State.float rng 1.0) st ~qubit
            ~bit
        in
        if
          model.p_meas_flip > 0.
          && Random.State.float rng 1.0 < model.p_meas_flip
        then Statevector.set_bit st bit (not outcome)
    | Reset q ->
        Statevector.reset ~random:(Random.State.float rng 1.0) st q;
        if
          model.p_reset_flip > 0.
          && Random.State.float rng 1.0 < model.p_reset_flip
        then Statevector.apply_gate st Gate.X q
    | Barrier _ -> ()
  in
  List.iter step instrs;
  Statevector.register st

let run_shot ~rng ~model c =
  validate model;
  let st =
    Statevector.create (Circ.num_qubits c) ~num_bits:(Circ.num_bits c)
  in
  run_instructions ~rng ~model ~num_qubits:(Circ.num_qubits c) st
    (Circ.instructions c)

(* The shared-prefix cache is sound under noise only when the model
   injects nothing into the prefix: no per-unitary channels, and no
   feed-forward dephasing if the prefix holds a conditioned gate. *)
let prefix_noise_free model prefix =
  model.p_depol1 = 0. && model.p_depol2 = 0. && model.p_amp_damp = 0.
  && (model.p_feedforward_z = 0.
     || List.for_all
          (function
            | Instruction.Conditioned _ -> false
            | Instruction.Unitary _ | Instruction.Measure _
            | Instruction.Reset _ | Instruction.Barrier _ -> true)
          prefix)

let run_shots ?(seed = 0xD1CE) ?domains ?plan ~model ~shots c =
  validate model;
  let c =
    match plan with
    | None -> c
    | Some plan -> Measurement_plan.instrument plan c
  in
  let width = Circ.num_bits c in
  let num_qubits = Circ.num_qubits c in
  let prefix, _suffix = Backend.Prefix.split c in
  if prefix_noise_free model prefix then begin
    let cached = Backend.Prefix.prepare c in
    let suffix = Backend.Prefix.suffix cached in
    Parallel.run ?domains ~seed ~width ~shots (fun ~rng ~index:_ ->
        let st = Statevector.copy (Backend.Prefix.state cached) in
        run_instructions ~rng ~model ~num_qubits st suffix)
  end
  else
    Parallel.run ?domains ~seed ~width ~shots (fun ~rng ~index:_ ->
        run_shot ~rng ~model c)

let expected_outcome_probability ?seed ?domains ~model ~shots ~expected c =
  let h = run_shots ?seed ?domains ~model ~shots c in
  Runner.frequency h expected
