open Circuit

type t = {
  n : int;
  num_bits : int;
  amps : Complex.t array;
  mutable reg : int;
}

let max_qubits = 24

let create n ~num_bits =
  if n < 0 || n > max_qubits then
    invalid_arg
      (Printf.sprintf "Statevector.create: %d qubits (max %d)" n max_qubits);
  let amps = Array.make (1 lsl n) Complex.zero in
  amps.(0) <- Complex.one;
  { n; num_bits; amps; reg = 0 }

let num_qubits st = st.n
let num_bits st = st.num_bits
let copy st = { st with amps = Array.copy st.amps }
let amplitudes st = Linalg.Cvec.of_array st.amps
let register st = st.reg
let set_bit st k b = st.reg <- Bits.set st.reg k b
let get_bit st k = Bits.get st.reg k

(* Apply the 2x2 matrix [m] to qubit [q] on amplitude pairs whose index
   has every bit of [cmask] set. *)
let apply_matrix1 st m ~q ~cmask =
  let bit = 1 lsl q in
  let m00 = Linalg.Cmat.get m 0 0
  and m01 = Linalg.Cmat.get m 0 1
  and m10 = Linalg.Cmat.get m 1 0
  and m11 = Linalg.Cmat.get m 1 1 in
  let amps = st.amps in
  let dim = Array.length amps in
  for idx = 0 to dim - 1 do
    if idx land bit = 0 && idx land cmask = cmask then begin
      let i0 = idx and i1 = idx lor bit in
      let a0 = amps.(i0) and a1 = amps.(i1) in
      amps.(i0) <- Complex.add (Complex.mul m00 a0) (Complex.mul m01 a1);
      amps.(i1) <- Complex.add (Complex.mul m10 a0) (Complex.mul m11 a1)
    end
  done

let apply_app st (a : Instruction.app) =
  if Obs.enabled () then Obs.incr ("sim.statevector.gate." ^ Gate.kind a.gate);
  let cmask =
    List.fold_left (fun acc c -> acc lor (1 lsl c)) 0 a.controls
  in
  (* a control bit inside cmask must be 1, and the target pair index has
     the target bit clear, so exclude the target from the mask *)
  apply_matrix1 st (Gate.matrix a.gate) ~q:a.target ~cmask

let apply_gate st g q = apply_app st (Instruction.app g q)

let apply_kraus1 st m q =
  if Linalg.Cmat.rows m <> 2 || Linalg.Cmat.cols m <> 2 then
    invalid_arg "Statevector.apply_kraus1: not a 1-qubit operator";
  apply_matrix1 st m ~q ~cmask:0;
  let norm2 = Array.fold_left (fun acc a -> acc +. Complex.norm2 a) 0. st.amps in
  if norm2 <= 1e-18 then
    invalid_arg "Statevector.apply_kraus1: zero-norm result";
  let scale = Linalg.Complex_ext.of_float (1. /. sqrt norm2) in
  Array.iteri (fun k a -> st.amps.(k) <- Complex.mul scale a) st.amps

let prob_one st q =
  let bit = 1 lsl q in
  let acc = ref 0. in
  Array.iteri
    (fun idx a -> if idx land bit <> 0 then acc := !acc +. Complex.norm2 a)
    st.amps;
  !acc

exception Zero_probability_branch of { qubit : int; outcome : bool }

let project st q outcome =
  let bit = 1 lsl q in
  let p1 = prob_one st q in
  let p = if outcome then p1 else 1. -. p1 in
  if p <= 1e-15 then raise (Zero_probability_branch { qubit = q; outcome });
  let keep idx = (idx land bit <> 0) = outcome in
  let scale = Linalg.Complex_ext.of_float (1. /. sqrt p) in
  Array.iteri
    (fun idx a ->
      st.amps.(idx) <-
        (if keep idx then Complex.mul scale a else Complex.zero))
    st.amps;
  p

let measure ~random st ~qubit ~bit =
  Obs.incr "sim.statevector.measure";
  let p1 = prob_one st qubit in
  let outcome = random < p1 in
  ignore (project st qubit outcome);
  set_bit st bit outcome;
  outcome

let reset ~random st q =
  Obs.incr "sim.statevector.reset";
  let p1 = prob_one st q in
  let outcome = random < p1 in
  ignore (project st q outcome);
  if outcome then apply_gate st Gate.X q

let run_instruction ~random st (i : Instruction.t) =
  match i with
  | Unitary a -> apply_app st a
  | Conditioned (c, a) ->
      if Instruction.cond_holds c st.reg then apply_app st a
  | Measure { qubit; bit } ->
      ignore (measure ~random:(random ()) st ~qubit ~bit)
  | Reset q -> reset ~random:(random ()) st q
  | Barrier _ -> ()

let run ~rng c =
  let st = create (Circ.num_qubits c) ~num_bits:(Circ.num_bits c) in
  let random () = Random.State.float rng 1.0 in
  List.iter (run_instruction ~random st) (Circ.instructions c);
  st

let probabilities st = Array.map Complex.norm2 st.amps
