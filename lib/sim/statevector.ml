open Circuit

(* Public face of the dense simulator.  The state itself lives in
   [State] (SoA amplitudes); the compiled execution path lives in
   [Program].  This module re-exports the state primitives, keeps the
   generic boxed-matrix interpreter as the differential-testing
   reference, and routes [run] through the compiled path. *)

type t = State.t

let max_qubits = State.max_qubits
let create = State.create
let num_qubits = State.num_qubits
let num_bits = State.num_bits
let copy = State.copy
let amplitudes = State.amplitudes
let register = State.register
let set_bit = State.set_bit
let get_bit = State.get_bit

(* Reference path: apply the 2x2 matrix [m] to qubit [q] on amplitude
   pairs whose index has every bit of [cmask] set — a full 2^n scan
   with a per-index mask test.  [Program]'s kernels are the optimized
   replacement; this stays as the semantics oracle. *)
let apply_matrix1 st m ~q ~cmask =
  let bit = 1 lsl q in
  let m00 : Complex.t = Linalg.Cmat.get m 0 0
  and m01 : Complex.t = Linalg.Cmat.get m 0 1
  and m10 : Complex.t = Linalg.Cmat.get m 1 0
  and m11 : Complex.t = Linalg.Cmat.get m 1 1 in
  let v = State.raw st in
  let re = Linalg.Cvec.re v and im = Linalg.Cvec.im v in
  let dim = Array.length re in
  for idx = 0 to dim - 1 do
    if idx land bit = 0 && idx land cmask = cmask then begin
      let i0 = idx and i1 = idx lor bit in
      let r0 = re.(i0) and x0 = im.(i0) in
      let r1 = re.(i1) and x1 = im.(i1) in
      re.(i0) <-
        ((m00.re *. r0) -. (m00.im *. x0)) +. ((m01.re *. r1) -. (m01.im *. x1));
      im.(i0) <-
        ((m00.re *. x0) +. (m00.im *. r0)) +. ((m01.re *. x1) +. (m01.im *. r1));
      re.(i1) <-
        ((m10.re *. r0) -. (m10.im *. x0)) +. ((m11.re *. r1) -. (m11.im *. x1));
      im.(i1) <-
        ((m10.re *. x0) +. (m10.im *. r0)) +. ((m11.re *. x1) +. (m11.im *. r1))
    end
  done

let apply_app st (a : Instruction.app) =
  if Obs.enabled () then Obs.incr ("sim.statevector.gate." ^ Gate.kind a.gate);
  let cmask =
    List.fold_left (fun acc c -> acc lor (1 lsl c)) 0 a.controls
  in
  (* a control bit inside cmask must be 1, and the target pair index has
     the target bit clear, so exclude the target from the mask *)
  apply_matrix1 st (Gate.matrix a.gate) ~q:a.target ~cmask

let apply_gate st g q = apply_app st (Instruction.app g q)

let apply_kraus1 st m q =
  if Linalg.Cmat.rows m <> 2 || Linalg.Cmat.cols m <> 2 then
    invalid_arg "Statevector.apply_kraus1: not a 1-qubit operator";
  apply_matrix1 st m ~q ~cmask:0;
  if State.norm2 st <= 1e-18 then
    invalid_arg "Statevector.apply_kraus1: zero-norm result";
  State.renormalize st

let prob_one = State.prob_one

exception Zero_probability_branch = State.Zero_probability_branch

let project = State.project
let measure = State.measure
let reset = State.reset

let run_instruction ~random st (i : Instruction.t) =
  match i with
  | Unitary a -> apply_app st a
  | Conditioned (c, a) ->
      if Instruction.cond_holds c (State.register st) then apply_app st a
  | Measure { qubit; bit } ->
      ignore (measure ~random:(random ()) st ~qubit ~bit)
  | Reset q -> reset ~random:(random ()) st q
  | Barrier _ -> ()

(* The generic interpreter, kept verbatim as the differential-testing
   reference for the compiled path (test/test_program.ml). *)
let run_reference ~rng c =
  let st = create (Circ.num_qubits c) ~num_bits:(Circ.num_bits c) in
  let random () = Random.State.float rng 1.0 in
  List.iter (run_instruction ~random st) (Circ.instructions c);
  st

let run ~rng c = Program.run_circuit ~rng c

let probabilities = State.probabilities

(* The dense SoA storage as an [Engine.S] instance: every primitive
   delegates to [State] / [Program], so engine-polymorphic callers
   (Runner, Noise, Backend's hybrid executor) behave bit-for-bit like
   the historical direct calls. *)
module Dense_engine : Engine.S with type state = State.t = struct
  type state = State.t

  let name = "dense"
  let max_qubits = State.max_qubits
  let create = State.create
  let copy = State.copy
  let num_qubits = State.num_qubits
  let num_bits = State.num_bits
  let register = State.register
  let set_register = State.set_register
  let set_bit = State.set_bit
  let get_bit = State.get_bit

  let nonzero st =
    let v = State.raw st in
    let re = Linalg.Cvec.re v and im = Linalg.Cvec.im v in
    let n = ref 0 in
    for k = 0 to Array.length re - 1 do
      if re.(k) <> 0. || im.(k) <> 0. then incr n
    done;
    !n

  let norm2 = State.norm2

  let amplitude st k =
    let v = State.raw st in
    { Complex.re = (Linalg.Cvec.re v).(k); im = (Linalg.Cvec.im v).(k) }

  let prob_one = State.prob_one
  let apply = Program.apply
  let apply_gate = apply_gate
  let apply_kraus1 = apply_kraus1
  let project = State.project
  let flip = State.flip
  let measure = State.measure
  let reset = State.reset
  let exec = Program.exec

  let run ~rng program = Program.run ~rng program
  let probabilities = State.probabilities

  let nonzero_probabilities st =
    let ps = State.probabilities st in
    let acc = ref [] in
    for k = Array.length ps - 1 downto 0 do
      if ps.(k) > 0. then acc := (k, ps.(k)) :: !acc
    done;
    !acc
end
