(** Mutable SoA simulator state: amplitudes as two unboxed float
    arrays ({!Linalg.Cvec}) plus the classical register.

    This is the storage layer shared by the compiled execution path
    ({!Program}) and the generic interpreter ({!Statevector}, the
    public face that re-exports everything here).  Amplitude indexing
    is little-endian: bit [q] of an index is the computational-basis
    state of qubit [q]. *)

type t

(** Dense-vector qubit cap (24): {!create} rejects anything larger. *)
val max_qubits : int

(** [create n ~num_bits] is |0...0> with an all-zero classical
    register.
    @raise Invalid_argument beyond {!max_qubits}. *)
val create : int -> num_bits:int -> t

val num_qubits : t -> int
val num_bits : t -> int
val copy : t -> t

(** A copy of the amplitude vector. *)
val amplitudes : t -> Linalg.Cvec.t

(** The live amplitude storage (no copy) — the kernel-facing escape
    hatch; mutate only from execution engines. *)
val raw : t -> Linalg.Cvec.t

val register : t -> int
val set_register : t -> int -> unit
val set_bit : t -> int -> bool -> unit
val get_bit : t -> int -> bool

val norm2 : t -> float

(** Rescale to unit norm.
    @raise Invalid_argument on a (numerically) zero state. *)
val renormalize : t -> unit

(** Probability that measuring [q] yields 1. *)
val prob_one : t -> int -> float

(** Raised by {!project} when the requested branch has (numerically)
    zero Born probability. *)
exception Zero_probability_branch of { qubit : int; outcome : bool }

(** [project st q outcome] collapses qubit [q] and renormalizes;
    returns the probability the branch had.
    @raise Zero_probability_branch when that probability is 0. *)
val project : t -> int -> bool -> float

(** In-place Pauli-X on a qubit (exact amplitude swap). *)
val flip : t -> int -> unit

(** [measure ~random st ~qubit ~bit] samples with [random] (a float in
    [0,1)), collapses, records into the register, returns the outcome. *)
val measure : random:float -> t -> qubit:int -> bit:int -> bool

(** [reset ~random st q] measures (without recording) then flips to
    |0> if needed. *)
val reset : random:float -> t -> int -> unit

(** Probability of each computational basis state. *)
val probabilities : t -> float array
