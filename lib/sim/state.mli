(** Mutable SoA simulator state: amplitudes as two unboxed float
    arrays ({!Linalg.Cvec}) plus the classical register.

    This is the storage layer shared by the compiled execution path
    ({!Program}) and the generic interpreter ({!Statevector}, the
    public face that re-exports everything here).  Amplitude indexing
    is little-endian: bit [q] of an index is the computational-basis
    state of qubit [q]. *)

type t

(** Dense-vector qubit cap (24): {!create} rejects anything larger.

    The cap is a memory budget, not an algorithmic limit.  The dense
    representation materializes all [2^n] amplitudes as two unboxed
    float arrays, so [n] qubits cost [2^n * 16] bytes per state — 256
    MiB at 24 qubits — and the shot engine copies one state per shot
    (prefix cache) or holds one per domain.  One step further (25
    qubits, 512 MiB per copy) makes multi-domain shot execution and
    the exact-branch enumerator's forked states exceed typical host
    memory, so the cap stays at 24 until the big-memory kernels of
    ROADMAP item 2 land.  Wider circuits are not rejected outright:
    {!Backend} catches {!Dense_cap_exceeded} and falls back to the
    hash-map sparse engine ({!Sparse}), which costs memory per
    {e nonzero} amplitude instead of per dimension. *)
val max_qubits : int

(** Raised by {!create} when the requested width exceeds
    {!max_qubits} — a typed signal (rather than a blanket
    [Invalid_argument]) so engine-selection layers can catch it and
    reroute to a representation that fits. *)
exception Dense_cap_exceeded of { qubits : int; max_qubits : int }

(** [create n ~num_bits] is |0...0> with an all-zero classical
    register.
    @raise Dense_cap_exceeded beyond {!max_qubits}.
    @raise Invalid_argument on negative [n]. *)
val create : int -> num_bits:int -> t

val num_qubits : t -> int
val num_bits : t -> int
val copy : t -> t

(** A copy of the amplitude vector. *)
val amplitudes : t -> Linalg.Cvec.t

(** The live amplitude storage (no copy) — the kernel-facing escape
    hatch; mutate only from execution engines. *)
val raw : t -> Linalg.Cvec.t

val register : t -> int
val set_register : t -> int -> unit
val set_bit : t -> int -> bool -> unit
val get_bit : t -> int -> bool

val norm2 : t -> float

(** Rescale to unit norm.
    @raise Invalid_argument on a (numerically) zero state. *)
val renormalize : t -> unit

(** Probability that measuring [q] yields 1. *)
val prob_one : t -> int -> float

(** Raised by {!project} when the requested branch has (numerically)
    zero Born probability. *)
exception Zero_probability_branch of { qubit : int; outcome : bool }

(** [project st q outcome] collapses qubit [q] and renormalizes;
    returns the probability the branch had.
    @raise Zero_probability_branch when that probability is 0. *)
val project : t -> int -> bool -> float

(** In-place Pauli-X on a qubit (exact amplitude swap). *)
val flip : t -> int -> unit

(** [measure ~random st ~qubit ~bit] samples with [random] (a float in
    [0,1)), collapses, records into the register, returns the outcome. *)
val measure : random:float -> t -> qubit:int -> bit:int -> bool

(** [reset ~random st q] measures (without recording) then flips to
    |0> if needed. *)
val reset : random:float -> t -> int -> unit

(** Probability of each computational basis state. *)
val probabilities : t -> float array
