open Circuit

(** Exact evaluation of circuits with mid-circuit measurement and
    active reset, by enumerating measurement branches with their Born
    probabilities.  This is the distribution a shot-based simulator
    (the paper uses AER with 1024 shots) converges to, computed without
    sampling noise — the basis of the functional-equivalence checks. *)

(** A leaf of the branching execution. *)
type leaf = {
  probability : float;
  register : int;  (** classical register at the end *)
  state : Statevector.t;  (** final (normalized) quantum state *)
}

(** All leaves with probability above [prune] (default 1e-12).
    @raise Invalid_argument when [prune] is negative or NaN. *)
val leaves : ?prune:float -> Circ.t -> leaf list

(** Exact distribution over the classical register. *)
val register_distribution : ?prune:float -> Circ.t -> Dist.t

(** [plan_distribution ~plan c] instruments [c] with the plan's
    terminal measurements ({!Measurement_plan.instrument}) and returns
    the exact register distribution. *)
val plan_distribution :
  ?prune:float -> plan:Measurement_plan.t -> Circ.t -> Dist.t

(** [measured_distribution ~measures c] is
    [plan_distribution ~plan:(Measurement_plan.of_pairs measures) c]. *)
val measured_distribution :
  ?prune:float -> measures:(int * int) list -> Circ.t -> Dist.t

(** [measure_all_distribution c] measures every qubit at the end,
    qubit [q] into bit [q]; requires [num_bits >= num_qubits] or widens
    the register. *)
val measure_all_distribution : ?prune:float -> Circ.t -> Dist.t
