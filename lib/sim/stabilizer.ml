open Circuit

exception Unsupported of string

(* Aaronson-Gottesman tableau: rows 0..n-1 destabilizers, n..2n-1
   stabilizers, row 2n scratch.  x.(i).(q)/z.(i).(q) are the Pauli
   X/Z components of generator i on qubit q; r.(i) the sign bit. *)
type t = {
  n : int;
  num_bits : int;
  x : bool array array;
  z : bool array array;
  r : bool array;
  mutable reg : int;
}

let create n ~num_bits =
  if n < 1 || n > 4096 then invalid_arg "Stabilizer.create: 1..4096 qubits";
  let rows = (2 * n) + 1 in
  let x = Array.make_matrix rows n false in
  let z = Array.make_matrix rows n false in
  let r = Array.make rows false in
  for q = 0 to n - 1 do
    x.(q).(q) <- true;
    (* destabilizer X_q *)
    z.(n + q).(q) <- true
    (* stabilizer Z_q *)
  done;
  { n; num_bits; x; z; r; reg = 0 }

let num_qubits st = st.n
let register st = st.reg

(* phase exponent contribution of multiplying Pauli (x1,z1) by (x2,z2) *)
let g x1 z1 x2 z2 =
  match (x1, z1) with
  | false, false -> 0
  | true, true -> (if z2 then 1 else 0) - if x2 then 1 else 0
  | true, false -> if z2 then (if x2 then 1 else -1) else 0
  | false, true -> if x2 then (if z2 then -1 else 1) else 0

(* row h <- row h * row i *)
let rowsum st h i =
  let acc = ref 0 in
  for q = 0 to st.n - 1 do
    acc := !acc + g st.x.(i).(q) st.z.(i).(q) st.x.(h).(q) st.z.(h).(q)
  done;
  let total =
    (2 * (if st.r.(h) then 1 else 0)) + (2 * if st.r.(i) then 1 else 0) + !acc
  in
  let m = ((total mod 4) + 4) mod 4 in
  (* m is always 0 or 2 for valid tableaux *)
  st.r.(h) <- m = 2;
  for q = 0 to st.n - 1 do
    st.x.(h).(q) <- st.x.(h).(q) <> st.x.(i).(q);
    st.z.(h).(q) <- st.z.(h).(q) <> st.z.(i).(q)
  done

let apply_h st a =
  for i = 0 to (2 * st.n) - 1 do
    if st.x.(i).(a) && st.z.(i).(a) then st.r.(i) <- not st.r.(i);
    let tmp = st.x.(i).(a) in
    st.x.(i).(a) <- st.z.(i).(a);
    st.z.(i).(a) <- tmp
  done

let apply_s st a =
  for i = 0 to (2 * st.n) - 1 do
    if st.x.(i).(a) && st.z.(i).(a) then st.r.(i) <- not st.r.(i);
    st.z.(i).(a) <- st.z.(i).(a) <> st.x.(i).(a)
  done

let apply_cx st a b =
  for i = 0 to (2 * st.n) - 1 do
    if st.x.(i).(a) && st.z.(i).(b) && st.x.(i).(b) = st.z.(i).(a) then
      st.r.(i) <- not st.r.(i);
    st.x.(i).(b) <- st.x.(i).(b) <> st.x.(i).(a);
    st.z.(i).(a) <- st.z.(i).(a) <> st.z.(i).(b)
  done

let apply_x st a =
  for i = 0 to (2 * st.n) - 1 do
    if st.z.(i).(a) then st.r.(i) <- not st.r.(i)
  done

let apply_z st a =
  for i = 0 to (2 * st.n) - 1 do
    if st.x.(i).(a) then st.r.(i) <- not st.r.(i)
  done

let apply_y st a =
  for i = 0 to (2 * st.n) - 1 do
    if st.x.(i).(a) <> st.z.(i).(a) then st.r.(i) <- not st.r.(i)
  done

let apply_gate st (gate : Gate.t) a =
  match gate with
  | Gate.H -> apply_h st a
  | Gate.X -> apply_x st a
  | Gate.Y -> apply_y st a
  | Gate.Z -> apply_z st a
  | Gate.S -> apply_s st a
  | Gate.Sdg ->
      apply_s st a;
      apply_s st a;
      apply_s st a
  | Gate.T | Gate.Tdg | Gate.V | Gate.Vdg | Gate.Rx _ | Gate.Ry _
  | Gate.Rz _ | Gate.Phase _ ->
      raise (Unsupported (Printf.sprintf "non-Clifford gate %s" (Gate.name gate)))

let apply_app st (app : Instruction.app) =
  if Obs.enabled () then Obs.incr ("sim.stabilizer.gate." ^ Gate.kind app.gate);
  match app.controls with
  | [] -> apply_gate st app.gate app.target
  | [ c ] -> (
      match[@warning "-4"] app.gate with
      | Gate.X -> apply_cx st c app.target
      | Gate.Z ->
          apply_h st app.target;
          apply_cx st c app.target;
          apply_h st app.target
      | g ->
          raise
            (Unsupported
               (Printf.sprintf "controlled-%s is not Clifford-simulable here"
                  (Gate.name g))))
  | _ :: _ :: _ -> raise (Unsupported "multi-control gate")

let scratch st = 2 * st.n

let measure ~rng st a =
  Obs.incr "sim.stabilizer.measure";
  (* random outcome iff some stabilizer anticommutes with Z_a *)
  let rec find_p i =
    if i >= 2 * st.n then None
    else if st.x.(i).(a) then Some i
    else find_p (i + 1)
  in
  match find_p st.n with
  | Some p ->
      for i = 0 to (2 * st.n) - 1 do
        if i <> p && st.x.(i).(a) then rowsum st i p
      done;
      (* destabilizer p-n <- old stabilizer p *)
      Array.blit st.x.(p) 0 st.x.(p - st.n) 0 st.n;
      Array.blit st.z.(p) 0 st.z.(p - st.n) 0 st.n;
      st.r.(p - st.n) <- st.r.(p);
      Array.fill st.x.(p) 0 st.n false;
      Array.fill st.z.(p) 0 st.n false;
      st.z.(p).(a) <- true;
      let outcome = Random.State.bool rng in
      st.r.(p) <- outcome;
      outcome
  | None ->
      let s = scratch st in
      Array.fill st.x.(s) 0 st.n false;
      Array.fill st.z.(s) 0 st.n false;
      st.r.(s) <- false;
      for q = 0 to st.n - 1 do
        if st.x.(q).(a) then rowsum st s (q + st.n)
      done;
      st.r.(s)

let reset ~rng st a =
  let outcome = measure ~rng st a in
  if outcome then apply_x st a

let supports c =
  List.for_all
    (fun (i : Instruction.t) ->
      match i with
      | Unitary a | Conditioned (_, a) -> (
          match[@warning "-4"] (a.gate, a.controls) with
          | (Gate.H | Gate.X | Gate.Y | Gate.Z | Gate.S | Gate.Sdg), [] ->
              true
          | (Gate.X | Gate.Z), [ _ ] -> true
          | _ -> false)
      | Measure _ | Reset _ | Barrier _ -> true)
    (Circ.instructions c)

let run ~rng c =
  let st = create (Circ.num_qubits c) ~num_bits:(Circ.num_bits c) in
  let step (i : Instruction.t) =
    match i with
    | Unitary a -> apply_app st a
    | Conditioned (cond, a) ->
        if Instruction.cond_holds cond st.reg then apply_app st a
    | Measure { qubit; bit } ->
        let outcome = measure ~rng st qubit in
        st.reg <- Bits.set st.reg bit outcome
    | Reset q -> reset ~rng st q
    | Barrier _ -> ()
  in
  List.iter step (Circ.instructions c);
  st

let run_shots ?(seed = 0x57AB) ~shots c =
  let rng = Random.State.make [| seed |] in
  Runner.collect ~width:(Circ.num_bits c) ~shots (fun () ->
      register (run ~rng c))
