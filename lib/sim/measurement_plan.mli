open Circuit

(** One shared description of terminal measurements.

    The [(qubit, bit)] association list convention used to be
    duplicated across {!Exact.measured_distribution},
    {!Runner.run_shots_measured} and the noise executor; a plan is the
    single type all executors (and {!Backend.run}) accept.  A plan is
    resolved against a concrete circuit: [measure_all] expands to one
    terminal measurement per qubit (qubit [q] into bit [q]). *)

type t

(** Measure every qubit at the end, qubit [q] into bit [q]. *)
val measure_all : t

(** The plan with no terminal measurement (the circuit's own
    mid-circuit record is the outcome). *)
val none : t

(** [measure ~qubit ~bit] measures one qubit into one register bit. *)
val measure : qubit:int -> bit:int -> t

(** [of_pairs pairs] adopts the legacy [(qubit, bit)] list verbatim. *)
val of_pairs : (int * int) list -> t

(** [combine a b] performs [a]'s measurements then [b]'s;
    [measure_all] absorbs the other operand. *)
val combine : t -> t -> t

(** Resolve to the concrete [(qubit, bit)] list for a circuit of
    [num_qubits] qubits. *)
val to_pairs : num_qubits:int -> t -> (int * int) list

(** Register width of the instrumented circuit: the original
    [num_bits] widened to cover every plan target bit. *)
val width : t -> Circ.t -> int

(** [instrument plan c] appends the plan's terminal measurements to
    [c], widening the classical register as needed.  [none] returns
    [c] unchanged. *)
val instrument : t -> Circ.t -> Circ.t

val pp : Format.formatter -> t -> unit
