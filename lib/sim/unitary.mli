open Circuit

(** Full unitary matrix of a measurement-free circuit — used to verify
    gate decompositions (Fig 2, Fig 6, Eqn 1, Eqn 3) and as the
    fallback of the commutation oracle. *)

(** The default width cap, 12 qubits.  An [n]-qubit unitary is a dense
    2^n × 2^n complex matrix: at 16 bytes per entry that is
    2^(2n+4) bytes — 256 MiB at n = 12, and 4 GiB already at n = 13 —
    and building it takes 2^n statevector runs on top.  12 keeps the
    worst case at "large but safe" on a development machine; callers
    that know what they are doing can raise the cap per call. *)
val default_max_qubits : int

(** [of_circuit ?max_qubits c] is the 2^n x 2^n matrix, little-endian
    qubit order.  [max_qubits] (default {!default_max_qubits})
    overrides the width cap — see its memory rationale before raising.
    @raise Invalid_argument if the circuit contains measure, reset or
    conditioned instructions, or exceeds the cap. *)
val of_circuit : ?max_qubits:int -> Circ.t -> Linalg.Cmat.t

(** Matrix of a single application embedded in [n] qubits. *)
val of_app : n:int -> Instruction.app -> Linalg.Cmat.t

(** [equivalent ?max_qubits ?up_to_phase a b] compares two
    measurement-free circuits' unitaries ([up_to_phase] defaults to
    [true]; [max_qubits] as in {!of_circuit}). *)
val equivalent :
  ?max_qubits:int -> ?up_to_phase:bool -> Circ.t -> Circ.t -> bool
