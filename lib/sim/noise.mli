open Circuit

(** Monte-Carlo (quantum-trajectory) noise model.

    The paper's Fig 7 compares the probability of the expected outcome
    on noisy executions of traditional, dynamic-1 and dynamic-2
    circuits.  Its separation is driven by the cost of *dynamic*
    primitives, which this model captures with four channels:

    - depolarizing error after every 1-qubit / multi-qubit unitary;
    - classical bit-flip on measurement records;
    - imperfect active reset (residual |1> population);
    - {b feed-forward dephasing}: executing a classically controlled
      gate requires a real-time classical round trip, during which live
      qubits dephase.  A Z error is injected with probability
      [p_feedforward_z] — by default on the conditioned gate's target
      qubit ([`Target]), optionally on every qubit ([`All_qubits]).

    Dephasing is harmless to computational-basis states, so conditional
    gates acting on a freshly reset ancilla iteration (dynamic-2) are
    cheap while conditional gates acting mid-Toffoli on a superposed
    data qubit (dynamic-1) are destructive — reproducing the Fig 7
    ordering. *)

type scope = [ `Target | `All_qubits ]

type model = {
  p_depol1 : float;  (** per 1-qubit unitary, on its qubit *)
  p_depol2 : float;  (** per multi-qubit unitary, on each involved qubit *)
  p_meas_flip : float;  (** measurement readout bit-flip *)
  p_reset_flip : float;  (** reset ends in |1> with this probability *)
  p_feedforward_z : float;  (** Z error per classically controlled gate *)
  p_amp_damp : float;
      (** amplitude-damping (T1 relaxation) strength applied per
          involved qubit after each unitary *)
  feedforward_scope : scope;
}

(** All probabilities zero. *)
val ideal : model

(** Defaults loosely modelled on 2022-era IBM heavy-hex devices:
    depol1 = 0.0005, depol2 = 0.01, meas flip = 0.02,
    reset flip = 0.01, feed-forward Z = 0.04 on the target. *)
val default : model

val validate : model -> unit
(** @raise Invalid_argument when a probability is outside [0, 1]. *)

(** [run_shot ?engine ~rng ~model c] executes one noisy trajectory on
    [engine] (default {!Statevector.Dense_engine}) and returns the
    final classical register. *)
val run_shot :
  ?engine:(module Engine.S) -> rng:Random.State.t -> model:model -> Circ.t -> int

(** [run_shots ?seed ?domains ?plan ~model ~shots c] tallies noisy
    trajectories, sharded across domains by the parallel shot engine
    ({!Parallel}): deterministic for a fixed [seed] regardless of
    [domains].  Trajectories execute a compiled program
    ({!Program.compile} with fusion disabled, so every gate keeps its
    own noise injection point).  When the model injects no noise into
    the deterministic prefix (before the first measurement/reset) the
    prefix segment is simulated once and shared across all
    trajectories.  [plan] appends terminal measurements.  [engine]
    picks the statevector engine trajectories run on (default
    {!Statevector.Dense_engine}). *)
val run_shots :
  ?seed:int ->
  ?domains:int ->
  ?plan:Measurement_plan.t ->
  ?engine:(module Engine.S) ->
  model:model ->
  shots:int ->
  Circ.t ->
  Runner.histogram

(** [expected_outcome_probability ?seed ~model ~shots ~expected c]
    is the fraction of noisy shots whose register equals [expected] —
    the quantity plotted in Fig 7. *)
val expected_outcome_probability :
  ?seed:int ->
  ?domains:int ->
  model:model ->
  shots:int ->
  expected:int ->
  Circ.t ->
  float
