open Circuit

type t = Measure_all | Measures of (int * int) list

let measure_all = Measure_all
let none = Measures []
let measure ~qubit ~bit = Measures [ (qubit, bit) ]
let of_pairs pairs = Measures pairs

let combine a b =
  match (a, b) with
  | Measure_all, _ | _, Measure_all -> Measure_all
  | Measures xs, Measures ys -> Measures (xs @ ys)

let to_pairs ~num_qubits = function
  | Measure_all -> List.init num_qubits (fun q -> (q, q))
  | Measures pairs -> pairs

let width plan c =
  let pairs = to_pairs ~num_qubits:(Circ.num_qubits c) plan in
  List.fold_left (fun acc (_, b) -> max acc (b + 1)) (Circ.num_bits c) pairs

let instrument plan c =
  match to_pairs ~num_qubits:(Circ.num_qubits c) plan with
  | [] -> c
  | pairs ->
      let extra =
        List.map (fun (qubit, bit) -> Instruction.Measure { qubit; bit }) pairs
      in
      Circ.create ~roles:(Circ.roles c) ~num_bits:(width plan c)
        (Circ.instructions c @ extra)

let pp fmt = function
  | Measure_all -> Format.pp_print_string fmt "measure-all"
  | Measures [] -> Format.pp_print_string fmt "none"
  | Measures pairs ->
      Format.fprintf fmt "@[<h>%a@]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           (fun fmt (q, b) -> Format.fprintf fmt "q%d->c%d" q b))
        pairs
