(** OCaml 5 [Domain]-based shot engine.

    Shots are sharded into contiguous blocks across worker domains;
    each shot [i] draws from its own RNG state, derived by splitting a
    root state seeded with [seed] ({!Random.State.split}, LXM).  The
    per-shot derivation is what makes the result {e deterministic
    regardless of the domain count}: outcome [i] depends only on
    [(seed, i)], and per-domain tallies merge additively, so
    [domains:1] and [domains:N] produce byte-identical histograms.

    The paper's evaluation replays every configuration at 1024 shots;
    this engine is the scaling seam — {!Backend.run} dispatches every
    simulation backend through it.

    Telemetry (when an [Obs] collector is installed): a [parallel.run]
    span wrapping the whole dispatch, one [parallel.block] span per
    contiguous shot block with [parallel.block.<k>.shots] /
    [parallel.block.<k>.wall_ns] tallies, a [parallel.shots] counter,
    and one shot in {!shot_sample_every} timed into the
    [parallel.shot] latency histogram.  Worker domains flush their
    telemetry buffers before finishing, so per-domain records merge at
    join and counter totals are independent of the domain count. *)

(** [Domain.recommended_domain_count ()] — the default worker count. *)
val recommended_domains : unit -> int

(** Per-shot timing sample stride: shots whose global index is a
    multiple of this are timed into [parallel.shot].  Keyed on the
    shot index — not a per-domain tick — so which shots are observed,
    and the histogram count, are independent of the domain count.
    Timing every shot would cost ~2-3% of a prefix-cached run, over
    the <2% telemetry budget (docs/OBSERVABILITY.md). *)
val shot_sample_every : int

(** [run ?domains ?seed ~width ~shots f] tallies
    [f ~rng ~index:i] for [i = 0 .. shots-1] into a histogram of the
    given bit [width].  [f] runs concurrently on [domains] workers
    (default {!recommended_domains}; clamped to [shots]) and must not
    share mutable state across calls beyond [rng], which is private to
    shot [index].  [seed] defaults to {!Runner.default_seed} — the
    same constant the serial engine uses, so the default-seed contract
    is engine-independent.
    @raise Invalid_argument when [shots < 0] or [domains < 1]. *)
val run :
  ?domains:int ->
  ?seed:int ->
  width:int ->
  shots:int ->
  (rng:Random.State.t -> index:int -> int) ->
  Runner.histogram
