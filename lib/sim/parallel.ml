let recommended_domains () = Domain.recommended_domain_count ()

(* One split per shot, in index order, so the stream of per-shot states
   is a pure function of [seed] — independent of how shots are later
   sharded across domains. *)
let shot_rngs ~seed shots =
  let root = Random.State.make [| seed |] in
  let states = Array.make shots root in
  for i = 0 to shots - 1 do
    states.(i) <- Random.State.split root
  done;
  states

let tally_block rngs f lo hi =
  let counts = Hashtbl.create 16 in
  for i = lo to hi - 1 do
    let outcome = f ~rng:rngs.(i) ~index:i in
    let prev = Option.value ~default:0 (Hashtbl.find_opt counts outcome) in
    Hashtbl.replace counts outcome (prev + 1)
  done;
  Hashtbl.fold (fun outcome n acc -> (outcome, n) :: acc) counts []

let run ?domains ~seed ~width ~shots f =
  if shots < 0 then invalid_arg "Parallel.run: negative shots";
  let domains =
    match domains with
    | Some d when d < 1 -> invalid_arg "Parallel.run: domains < 1"
    | Some d -> d
    | None -> recommended_domains ()
  in
  let domains = max 1 (min domains shots) in
  let rngs = shot_rngs ~seed shots in
  let bounds d = (d * shots / domains, (d + 1) * shots / domains) in
  if domains = 1 then Runner.of_counts ~width (tally_block rngs f 0 shots)
  else begin
    (* workers take blocks 1..domains-1; block 0 runs here *)
    let workers =
      Array.init (domains - 1) (fun k ->
          let lo, hi = bounds (k + 1) in
          Domain.spawn (fun () -> tally_block rngs f lo hi))
    in
    let own =
      let lo, hi = bounds 0 in
      tally_block rngs f lo hi
    in
    Array.fold_left
      (fun acc worker ->
        Runner.merge acc (Runner.of_counts ~width (Domain.join worker)))
      (Runner.of_counts ~width own)
      workers
  end
