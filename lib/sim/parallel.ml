let recommended_domains () = Domain.recommended_domain_count ()

(* One split per shot, in index order, so the stream of per-shot states
   is a pure function of [seed] — independent of how shots are later
   sharded across domains. *)
let shot_rngs ~seed shots =
  let root = Random.State.make [| seed |] in
  let states = Array.make shots root in
  for i = 0 to shots - 1 do
    states.(i) <- Random.State.split root
  done;
  states

let tally_block rngs f lo hi =
  let counts = Hashtbl.create 16 in
  for i = lo to hi - 1 do
    let outcome = f ~rng:rngs.(i) ~index:i in
    let prev = Option.value ~default:0 (Hashtbl.find_opt counts outcome) in
    Hashtbl.replace counts outcome (prev + 1)
  done;
  Hashtbl.fold (fun outcome n acc -> (outcome, n) :: acc) counts []

(* One shot in [shot_sample_every] is timed into the [parallel.shot]
   histogram.  A clock read costs ~30ns in a hot microbenchmark but
   several hundred ns mid-replay, where every shot has just evicted
   the vDSO data page with a statevector copy + scan — bracketing all
   shots costs ~2-3% of the prefix-cached reference run, over the <2%
   telemetry budget (docs/OBSERVABILITY.md).  Sampling keys on the
   *global* shot index, not a per-domain tick, so which shots are
   observed — and the histogram count — is independent of how shots
   are sharded across domains, same as every other telemetry total. *)
let shot_sample_every = 32

(* [tally_block] with sampled per-shot timing — the telemetry-path
   twin, kept separate so the production loop stays branch-free per
   shot.  The histogram handle is hoisted out of the loop (this block
   runs on one domain and nothing flushes mid-block), so a sampled
   shot pays two clock reads and a bucket increment, not a name
   lookup. *)
let tally_block_timed rngs f lo hi =
  let shot_hist = Obs.local_histogram "parallel.shot" in
  let counts = Hashtbl.create 16 in
  for i = lo to hi - 1 do
    let outcome =
      if i land (shot_sample_every - 1) = 0 then begin
        let t0 = Int64.to_int (Obs.Clock.now_ns ()) in
        let outcome = f ~rng:rngs.(i) ~index:i in
        Obs.Histogram.record shot_hist
          (Int64.to_int (Obs.Clock.now_ns ()) - t0);
        outcome
      end
      else f ~rng:rngs.(i) ~index:i
    in
    let prev = Option.value ~default:0 (Hashtbl.find_opt counts outcome) in
    Hashtbl.replace counts outcome (prev + 1)
  done;
  Hashtbl.fold (fun outcome n acc -> (outcome, n) :: acc) counts []

(* Telemetry around one contiguous shot block: a span on the worker's
   own timeline plus per-domain shot/wall-time tallies and the
   per-shot latency distribution.  The block index [k] (not the OS
   domain id) keys the counters so [domains:1] and [domains:N] runs
   stay comparable. *)
let observed_block ~k rngs f lo hi =
  if not (Obs.enabled ()) then tally_block rngs f lo hi
  else begin
    let t0 = Obs.Clock.now_ns () in
    let r =
      Obs.with_span "parallel.block"
        ~attrs:
          [ ("block", string_of_int k); ("shots", string_of_int (hi - lo)) ]
        (fun () -> tally_block_timed rngs f lo hi)
    in
    Obs.incr ~n:(hi - lo) (Printf.sprintf "parallel.block.%d.shots" k);
    Obs.set_gauge
      (Printf.sprintf "parallel.block.%d.wall_ns" k)
      (Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0));
    r
  end

let run ?domains ?(seed = Runner.default_seed) ~width ~shots f =
  if shots < 0 then invalid_arg "Parallel.run: negative shots";
  let domains =
    match domains with
    | Some d when d < 1 -> invalid_arg "Parallel.run: domains < 1"
    | Some d -> d
    | None -> recommended_domains ()
  in
  let domains = max 1 (min domains shots) in
  Obs.with_span "parallel.run"
    ~attrs:
      [ ("domains", string_of_int domains); ("shots", string_of_int shots) ]
    (fun () ->
      Obs.incr ~n:shots "parallel.shots";
      let rngs = shot_rngs ~seed shots in
      let bounds d = (d * shots / domains, (d + 1) * shots / domains) in
      let result =
        if domains = 1 then
          Runner.of_counts ~width (observed_block ~k:0 rngs f 0 shots)
        else begin
          (* workers take blocks 1..domains-1; block 0 runs here.  Each
             worker flushes its telemetry buffer before finishing, so
             per-domain records merge into the collector at join. *)
          let workers =
            Array.init (domains - 1) (fun k ->
                let lo, hi = bounds (k + 1) in
                Domain.spawn (fun () ->
                    let r = observed_block ~k:(k + 1) rngs f lo hi in
                    Obs.flush ();
                    r))
          in
          let own =
            let lo, hi = bounds 0 in
            observed_block ~k:0 rngs f lo hi
          in
          Array.fold_left
            (fun acc worker ->
              Runner.merge acc (Runner.of_counts ~width (Domain.join worker)))
            (Runner.of_counts ~width own)
            workers
        end
      in
      result)
