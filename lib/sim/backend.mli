open Circuit

(** First-class execution backends behind one entry point.

    [Backend.run] replaces ad-hoc calls to the individual engines: it
    picks an execution strategy for the circuit (or honours an explicit
    [policy]), shards the shots across domains through {!Parallel} and
    returns an ordinary {!Runner.histogram}.

    Backends:
    - {e dense statevector} — the general engine, one replay per shot,
      accelerated by the shared-prefix cache (see {!Prefix});
    - {e sparse statevector} — hash-map basis-amplitude storage
      ({!Sparse}): memory and per-op work scale with the nonzero
      count, which is what lets basis-sparse dynamic circuits (the
      paper's dyn2 scheme) run past the dense 24-qubit cap;
    - {e stabilizer} — CHP tableau when the circuit is Clifford
      ({!Stabilizer.supports}); scales to hundreds of qubits;
    - {e exact branch} — when the measurement/reset count is small the
      exact branching distribution ({!Exact}) is computed once and
      shots are drawn from it with the O(1) alias sampler.

    [Auto] additionally plans {e per segment} (see {!segment_plan}):
    when the analyzer proves only part of the circuit basis-sparse,
    the hybrid executor runs each segment on its best engine and
    converts the state representation at the handoffs.

    Determinism: for a fixed [seed] the histogram is byte-identical
    regardless of [domains] and of the prefix cache, because every
    shot owns a split RNG state (see {!Parallel}); and dense and
    sparse replays consume randomness identically, so engine choice
    does not perturb the shot stream. *)

type policy =
  | Auto
      (** inspect the circuit: stabilizer > exact branch > per-segment
          dense/sparse plan *)
  | Statevector_dense
  | Sparse_statevector
  | Stabilizer
  | Exact_branch

val policy_to_string : policy -> string

(** Parses ["auto" | "dense" | "sparse" | "stabilizer" | "exact"]
    (plus the ["statevector"], ["sparse-statevector"], ["chp"],
    ["exact-branch"] aliases), case-insensitively. *)
val policy_of_string : string -> policy option

val pp_policy : Format.formatter -> policy -> unit

(** {1 Shared-prefix cache}

    Every instruction before the first measurement/reset is
    deterministic (unitaries, barriers, and conditioned gates reading
    the still-all-zero register), so the prefix state is simulated once
    and only the suffix is replayed per shot.  On terminal-measurement
    workloads (the paper's Tables I–II benchmarks run through a
    {!Measurement_plan}) the whole circuit is prefix and a shot
    collapses to copy + measure. *)
module Prefix : sig
  type t

  (** Split at the first measurement/reset: [(prefix, suffix)]. *)
  val split : Circ.t -> Instruction.t list * Instruction.t list

  (** Share of the circuit's non-branching (unitary/barrier/conditioned)
      instructions that fall in the cached prefix — [1.0] exactly when
      every measurement is terminal.  Also published as the
      [backend.prefix.fraction] telemetry gauge by {!prepare}. *)
  val fraction : Circ.t -> float

  (** Compile the circuit and simulate the deterministic prefix
      segment once; the cache keys on the compiled program's
      prefix/suffix split ({!Program.split_prefix}).
      @raise State.Dense_cap_exceeded beyond {!Statevector.max_qubits}
      (under the [Auto] policy, {!run} catches it and falls back to
      the sparse engine). *)
  val prepare : Circ.t -> t

  (** The cached state — shared read-only across shots and domains. *)
  val state : t -> Statevector.t

  val suffix : t -> Instruction.t list

  (** [run_shot t ~rng] copies the cached state, replays the suffix
      and returns the final register. *)
  val run_shot : t -> rng:Random.State.t -> int
end

(** Measurement/reset instructions in the circuit — the {e syntactic}
    branch-point count ([Auto] now uses the analyzer's semantic count,
    {!Lint.Resource.summary}[.nondet_branches], instead). *)
val branch_points : Circ.t -> int

(** The circuit's static resource summary ({!Lint.Resource.analyze}),
    memoized per physical circuit value alongside the compiled program
    — repeated [select]/[run] calls on the same circuit analyze it
    once. *)
val resource_summary : Circ.t -> Lint.Resource.summary

(** {1 Per-segment engine planning}

    The analyzer's segments (see {!Lint.Resource}: a new segment
    starts at every measure/reset following a non-measure/reset, the
    same boundary {!Program.split_prefix} cuts at) each carry a
    certified [log2] bound on reachable nonzero amplitudes.  A segment
    is planned sparse when that bound leaves a comfortable margin
    under the dense dimension — or unconditionally past the dense
    qubit cap, where sparse is the only statevector that fits. *)

type segment_engine = {
  seg_start : int;  (** first instruction index of the segment *)
  seg_stop : int;  (** one past the last instruction index *)
  seg_engine : [ `Dense | `Sparse ];
  seg_log2_bound : int;
      (** the analyzer's certified peak [log2] nonzero-amplitude bound *)
  seg_clifford : bool;
}

(** The per-segment engine assignment [Auto] executes when it picks
    [`Sparse] (all segments sparse) or [`Hybrid] (mixed).  Reported by
    [dqc_cli analyze] and the sparsity experiment. *)
val segment_plan : Circ.t -> segment_engine list

(** ["dense,sparse,..."] — the plan's engines, comma-joined. *)
val segment_plan_string : segment_engine list -> string

(** The backend [run] would dispatch to.  [Auto] consults the
    per-segment resource summary: stabilizer when every segment is
    Clifford — by the whole-circuit scan or by the analyzer's
    observationally-equivalent witness circuit (so provably-dead
    non-Clifford gates don't force the dense engine); exact branching
    when the leaf bound [2^nondet_branches] is small relative to
    [shots] and either the circuit is narrow or the static amplitude
    bound is; otherwise the per-segment {!segment_plan} — all-dense
    plans run dense, all-sparse plans run {!Sparse}, mixed plans run
    the hybrid executor with representation conversions at segment
    handoffs.  Selection bumps the [backend.select.<engine>] counter
    ([dense]/[sparse]/[hybrid]/[stabilizer]/[exact]).
    @raise Stabilizer.Unsupported when the [Stabilizer] policy is
    forced on a non-Clifford circuit.
    @raise Invalid_argument when [Statevector_dense]/[Exact_branch] is
    forced beyond {!Statevector.max_qubits}, or [Sparse_statevector]
    beyond {!Sparse.max_qubits}. *)
val select :
  ?policy:policy ->
  shots:int ->
  Circ.t ->
  [ `Dense | `Stabilizer | `Exact | `Sparse | `Hybrid ]

(** [run ?policy ?seed ?domains ?plan ?prefix_cache ~shots c] executes
    [shots] shots of [c] (instrumented with [plan]'s terminal
    measurements when given) on the selected backend, sharded across
    [domains] workers (default [Domain.recommended_domain_count ()]).
    [prefix_cache] (default [true]) enables the shared-prefix cache on
    the dense backend; disabling it replays the full circuit per shot
    and yields the same histogram bit-for-bit.

    [seed] defaults to {!Runner.default_seed} — the constant shared
    with the serial engine.

    Under [Auto], a dense dispatch that raises
    {!State.Dense_cap_exceeded} is caught and rerun on the sparse
    engine ([backend.fallback.sparse] counter + flight event); forced
    policies propagate their failures.

    Telemetry (when an [Obs] collector is installed): a [backend.run]
    span (attrs: engine, shots, qubits) around the dispatch, counters
    [backend.run.<engine>], [backend.shots], per-shot
    [backend.prefix.hit] / [backend.prefix.miss], and the
    [backend.prefix.fraction] gauge.  Dense, sparse and hybrid
    dispatches execute compiled kernel programs ({!Program}) and
    additionally bump [backend.run.program].  Hybrid dispatches count
    per-shot representation conversions into
    [backend.handoff.dense_to_sparse] /
    [backend.handoff.sparse_to_dense] and record a
    [backend.hybrid.plan] flight event with the segment-engine string.
    The histogram itself is byte-identical whether or not telemetry is
    on. *)
val run :
  ?policy:policy ->
  ?seed:int ->
  ?domains:int ->
  ?plan:Measurement_plan.t ->
  ?prefix_cache:bool ->
  shots:int ->
  Circ.t ->
  Runner.histogram

(** [run_measured] is {!run} with [Measurement_plan.of_pairs measures]
    — the drop-in replacement for {!Runner.run_shots_measured}. *)
val run_measured :
  ?policy:policy ->
  ?seed:int ->
  ?domains:int ->
  ?prefix_cache:bool ->
  shots:int ->
  measures:(int * int) list ->
  Circ.t ->
  Runner.histogram
