open Circuit

let default_max_qubits = 12

let check_unitary_only c =
  List.iter
    (fun (i : Instruction.t) ->
      match i with
      | Unitary _ | Barrier _ -> ()
      | Conditioned _ | Measure _ | Reset _ ->
          invalid_arg "Unitary.of_circuit: non-unitary instruction")
    (Circ.instructions c)

(* Column k of the unitary is the circuit applied to basis state |k>. *)
let of_instrs ?(max_qubits = default_max_qubits) ~n instrs =
  if n > max_qubits then invalid_arg "Unitary: too many qubits";
  let dim = 1 lsl n in
  let m = Linalg.Cmat.make dim dim in
  for k = 0 to dim - 1 do
    let st = Statevector.create n ~num_bits:0 in
    (* start in |k>: apply X to the set bits *)
    for q = 0 to n - 1 do
      if Bits.get k q then Statevector.apply_gate st Gate.X q
    done;
    List.iter
      (fun (i : Instruction.t) ->
        match i with
        | Unitary a -> Statevector.apply_app st a
        | Barrier _ -> ()
        | Conditioned _ | Measure _ | Reset _ -> assert false)
      instrs;
    let v = Statevector.amplitudes st in
    for r = 0 to dim - 1 do
      Linalg.Cmat.set m r k (Linalg.Cvec.get v r)
    done
  done;
  m

let of_circuit ?max_qubits c =
  check_unitary_only c;
  of_instrs ?max_qubits ~n:(Circ.num_qubits c) (Circ.instructions c)

let of_app ~n app = of_instrs ~n [ Instruction.Unitary app ]

let equivalent ?max_qubits ?(up_to_phase = true) a b =
  Circ.num_qubits a = Circ.num_qubits b
  &&
  let ua = of_circuit ?max_qubits a and ub = of_circuit ?max_qubits b in
  if up_to_phase then Linalg.Cmat.approx_equal_up_to_phase ua ub
  else Linalg.Cmat.approx_equal ua ub
