open Circuit

let default_max_qubits = 12

let check_unitary_only c =
  List.iter
    (fun (i : Instruction.t) ->
      match i with
      | Unitary _ | Barrier _ -> ()
      | Conditioned _ | Measure _ | Reset _ ->
          invalid_arg "Unitary.of_circuit: non-unitary instruction")
    (Circ.instructions c)

(* Column k of the unitary is the circuit applied to basis state |k>.
   The instruction list is compiled once ([Program]) and the fused op
   array replayed per column, through the dense engine instance — the
   extractor needs all 2^n columns, so the dense representation is the
   right one regardless of what engine later executes the circuit. *)
module E = Statevector.Dense_engine

let of_instrs ?(max_qubits = default_max_qubits) ~n instrs =
  if n > max_qubits then invalid_arg "Unitary: too many qubits";
  let dim = 1 lsl n in
  let m = Linalg.Cmat.make dim dim in
  let program = Program.compile_instructions ~num_qubits:n ~num_bits:0 instrs in
  (* unitary-only input: the program never branches *)
  let no_random () = assert false in
  for k = 0 to dim - 1 do
    let st = E.create n ~num_bits:0 in
    (* start in |k>: flip the set bits *)
    for q = 0 to n - 1 do
      if Bits.get k q then E.flip st q
    done;
    E.exec ~random:no_random st program;
    let v = Statevector.amplitudes st in
    for r = 0 to dim - 1 do
      Linalg.Cmat.set m r k (Linalg.Cvec.get v r)
    done
  done;
  m

let of_circuit ?max_qubits c =
  check_unitary_only c;
  of_instrs ?max_qubits ~n:(Circ.num_qubits c) (Circ.instructions c)

let of_app ~n app = of_instrs ~n [ Instruction.Unitary app ]

let equivalent ?max_qubits ?(up_to_phase = true) a b =
  Circ.num_qubits a = Circ.num_qubits b
  &&
  let ua = of_circuit ?max_qubits a and ub = of_circuit ?max_qubits b in
  if up_to_phase then Linalg.Cmat.approx_equal_up_to_phase ua ub
  else Linalg.Cmat.approx_equal ua ub
