open Circuit

type policy = Auto | Statevector_dense | Sparse_statevector | Stabilizer | Exact_branch

let policy_to_string = function
  | Auto -> "auto"
  | Statevector_dense -> "dense"
  | Sparse_statevector -> "sparse"
  | Stabilizer -> "stabilizer"
  | Exact_branch -> "exact"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "auto" -> Some Auto
  | "dense" | "statevector" -> Some Statevector_dense
  | "sparse" | "sparse-statevector" -> Some Sparse_statevector
  | "stabilizer" | "chp" -> Some Stabilizer
  | "exact" | "exact-branch" -> Some Exact_branch
  | _ -> None

let pp_policy fmt p = Format.pp_print_string fmt (policy_to_string p)

(* Per-circuit memo of the compiled program and the static resource
   summary, keyed on the physical circuit value: repeated [run]s of the
   same circuit pay for compilation and analysis once.  Keys are weak
   (ephemerons), so the cache never outlives its circuits. *)
module Cache = Ephemeron.K1.Make (struct
  type t = Circ.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type cached = {
  mutable program : Program.t option;
  mutable summary : Lint.Resource.summary option;
}

let cache : cached Cache.t = Cache.create 32

let cache_entry c =
  match Cache.find_opt cache c with
  | Some e -> e
  | None ->
      let e = { program = None; summary = None } in
      Cache.add cache c e;
      e

let compiled c =
  let e = cache_entry c in
  match e.program with
  | Some p -> p
  | None ->
      let p = Program.compile c in
      e.program <- Some p;
      p

let resource_summary c =
  let e = cache_entry c in
  match e.summary with
  | Some s -> s
  | None ->
      let s = Lint.Resource.analyze c in
      e.summary <- Some s;
      s

module Prefix = struct
  type t = {
    state : Statevector.t;
    suffix : Instruction.t list;
    suffix_program : Program.t;
  }

  let split c =
    let rec go acc = function
      | (Instruction.Measure _ | Instruction.Reset _) :: _ as rest ->
          (List.rev acc, rest)
      | ((Instruction.Unitary _ | Instruction.Conditioned _
         | Instruction.Barrier _) as i)
        :: rest -> go (i :: acc) rest
      | [] -> (List.rev acc, [])
    in
    go [] (Circ.instructions c)

  (* Share of the circuit's non-branching instructions simulated once by
     the cache: 1.0 on terminal-measurement workloads (the whole unitary
     part is prefix), lower when mid-circuit measure/reset cuts it off.
     An all-branching circuit caches everything cacheable, hence 1.0. *)
  let fraction c =
    let prefix, suffix = split c in
    let unitary =
      List.length prefix
      + List.length
          (List.filter
             (function
               | Instruction.Measure _ | Instruction.Reset _ -> false
               | Instruction.Unitary _ | Instruction.Conditioned _
               | Instruction.Barrier _ -> true)
             suffix)
    in
    if unitary = 0 then 1.0
    else float_of_int (List.length prefix) /. float_of_int unitary

  (* the prefix consumes no randomness: measure/reset never appear in it *)
  let no_random () = assert false

  (* The cache keys on compiled program segments: the whole circuit is
     lowered once (through the per-circuit memo) and split at the first
     measure/reset op (the same boundary as the instruction-level
     [split] — fusion never crosses it), the prefix segment is executed
     once here, and [run_shot] replays only the compiled suffix. *)
  let prepare c =
    Obs.with_span "backend.prefix.prepare" (fun () ->
        let _, suffix = split c in
        let program = compiled c in
        let prefix_program, suffix_program = Program.split_prefix program in
        let st = Program.fresh_state program in
        Program.exec ~random:no_random st prefix_program;
        Obs.set_gauge "backend.prefix.fraction" (fraction c);
        if Obs.Flight.enabled () then
          Obs.Flight.record ~kind:"backend.prefix.prepared"
            [ ("fraction", Obs.Json.Float (fraction c)) ];
        { state = st; suffix; suffix_program })

  let state t = t.state
  let suffix t = t.suffix

  let run_shot t ~rng =
    let st = Statevector.copy t.state in
    let random () = Random.State.float rng 1.0 in
    Program.exec ~random st t.suffix_program;
    Statevector.register st
end

let branch_points c =
  List.fold_left
    (fun acc i ->
      match i with
      | Instruction.Measure _ | Instruction.Reset _ -> acc + 1
      | Instruction.Unitary _ | Instruction.Conditioned _
      | Instruction.Barrier _ -> acc)
    0 (Circ.instructions c)

(* The exact backend pays ~2^k statevector replays up front and then
   O(1) per shot, where k is the analyzer's count of measure/reset
   points with statically unknown outcomes (deterministic collapses
   don't fork the branch tree) rather than the syntactic count; worth
   it only when that bound is comfortably below the shot count.  The
   old hard qubit cutoff stays for wide circuits unless the analyzer
   proves the live amplitude set itself is small. *)
let exact_auto_max_qubits = 16

let exact_tractable ~shots ~extra_branches c =
  Circ.num_qubits c <= Statevector.max_qubits
  &&
  let s = resource_summary c in
  let k = s.Lint.Resource.nondet_branches + extra_branches in
  (Circ.num_qubits c <= exact_auto_max_qubits
  || s.Lint.Resource.log2_bound_peak <= exact_auto_max_qubits)
  && k < Sys.int_size - 2
  && 1 lsl k <= max 64 (shots / 4)

let check_dense_fits ~who c =
  if Circ.num_qubits c > Statevector.max_qubits then
    invalid_arg
      (Printf.sprintf "Backend.run: %s backend capped at %d qubits (got %d)"
         who Statevector.max_qubits (Circ.num_qubits c))

(* ------------------------------------------------------------------ *)
(* Per-segment engine planning                                        *)

(* A segment goes sparse when the analyzer's certified amplitude bound
   leaves a comfortable margin under the dense dimension: with at most
   2^b nonzeros against 2^n dense amplitudes, sparse replay wins once
   the hash-table constant factor (~2^margin) is covered.  Past the
   dense cap there is no choice — every segment is sparse, which is
   the planning-time face of the [State.Dense_cap_exceeded] fallback. *)
let sparse_margin = 6

(* Beyond this bound the hash-map state is dense-like (2^b entries)
   and the dense kernels' linear scans win on locality. *)
let sparse_log2_cap = 16

let sparse_worthwhile ~n (g : Lint.Resource.segment) =
  n > Statevector.max_qubits
  || (g.Lint.Resource.log2_bound_peak <= sparse_log2_cap
     && n - g.Lint.Resource.log2_bound_peak >= sparse_margin)

type segment_engine = {
  seg_start : int;
  seg_stop : int;
  seg_engine : [ `Dense | `Sparse ];
  seg_log2_bound : int;
  seg_clifford : bool;
}

let segment_plan c =
  let n = Circ.num_qubits c in
  let s = resource_summary c in
  List.map
    (fun (g : Lint.Resource.segment) ->
      {
        seg_start = g.Lint.Resource.start;
        seg_stop = g.Lint.Resource.stop;
        seg_engine = (if sparse_worthwhile ~n g then `Sparse else `Dense);
        seg_log2_bound = g.Lint.Resource.log2_bound_peak;
        seg_clifford = g.Lint.Resource.clifford;
      })
    s.Lint.Resource.segments

let segment_plan_string plan =
  String.concat ","
    (List.map
       (fun p ->
         match p.seg_engine with `Dense -> "dense" | `Sparse -> "sparse")
       plan)

(* Clifford routing under [Auto]: the whole-circuit scan is the cheap
   path; failing that, the analyzer's witness — the same circuit minus
   statically-dead gates — is consulted, so a per-segment-Clifford
   dynamic circuit whose only non-Clifford gates are provably dead
   still lands on the tableau engine. *)
let stabilizer_circuit c =
  if Stabilizer.supports c then Some c
  else
    let s = resource_summary c in
    if s.Lint.Resource.clifford && Stabilizer.supports s.Lint.Resource.witness
    then Some s.Lint.Resource.witness
    else None

let check_sparse_fits c =
  if Circ.num_qubits c > Sparse.max_qubits then
    invalid_arg
      (Printf.sprintf "Backend.run: sparse backend capped at %d qubits (got %d)"
         Sparse.max_qubits (Circ.num_qubits c))

(* [extra_branches] accounts for terminal measurements a measurement
   plan appends after selection (each at most one branch point). *)
let select_gen ?(policy = Auto) ~shots ~extra_branches c =
  let engine =
    match policy with
    | Statevector_dense ->
        check_dense_fits ~who:"dense" c;
        `Dense
    | Sparse_statevector ->
        check_sparse_fits c;
        `Sparse
    | Stabilizer ->
        if not (Stabilizer.supports c) then
          raise
            (Stabilizer.Unsupported
               "Backend.run: stabilizer policy on a non-Clifford circuit");
        `Stabilizer
    | Exact_branch ->
        check_dense_fits ~who:"exact-branch" c;
        `Exact
    | Auto ->
        if stabilizer_circuit c <> None then `Stabilizer
        else if exact_tractable ~shots ~extra_branches c then `Exact
        else begin
          (* per-segment planning: all-dense plans run the classic
             dense path, all-sparse plans the sparse engine, mixed
             plans the hybrid executor with representation handoffs *)
          let plan = segment_plan c in
          let sparse_segs =
            List.length (List.filter (fun p -> p.seg_engine = `Sparse) plan)
          in
          if plan <> [] && sparse_segs = List.length plan then begin
            check_sparse_fits c;
            `Sparse
          end
          else if sparse_segs > 0 then `Hybrid
          else begin
            check_dense_fits ~who:"dense" c;
            `Dense
          end
        end
  in
  (match engine with
  | `Stabilizer -> Obs.incr "backend.select.stabilizer"
  | `Exact -> Obs.incr "backend.select.exact"
  | `Dense -> Obs.incr "backend.select.dense"
  | `Sparse -> Obs.incr "backend.select.sparse"
  | `Hybrid -> Obs.incr "backend.select.hybrid");
  engine

let select ?policy ~shots c = select_gen ?policy ~shots ~extra_branches:0 c

let engine_name = function
  | `Stabilizer -> "stabilizer"
  | `Exact -> "exact"
  | `Dense -> "dense"
  | `Sparse -> "sparse"
  | `Hybrid -> "hybrid"

(* ------------------------------------------------------------------ *)
(* Sparse and hybrid dispatch                                         *)

(* the prefix segment consumes no randomness (same as Prefix above) *)
let no_random_sparse () = assert false

(* Sparse twin of the dense prefix-cached dispatch: execute the
   deterministic compiled prefix once on the sparse engine, replay
   only the suffix per shot. *)
let run_sparse ?domains ~seed ~width ~shots ~prefix_cache base =
  let program = compiled base in
  if prefix_cache then begin
    let prefix_program, suffix_program = Program.split_prefix program in
    let cached =
      Sparse.create (Circ.num_qubits base) ~num_bits:(Circ.num_bits base)
    in
    Sparse.exec ~random:no_random_sparse cached prefix_program;
    Obs.incr ~n:shots "backend.prefix.hit";
    Parallel.run ?domains ~seed ~width ~shots (fun ~rng ~index:_ ->
        let st = Sparse.copy cached in
        Sparse.exec ~random:(fun () -> Random.State.float rng 1.0) st
          suffix_program;
        Sparse.register st)
  end
  else begin
    Obs.incr ~n:shots "backend.prefix.miss";
    Parallel.run ?domains ~seed ~width ~shots (fun ~rng ~index:_ ->
        Sparse.register (Sparse.run ~rng program))
  end

(* Hybrid execution threads one state through the analyzer's segments,
   converting representation at engine boundaries.  Segments are
   compiled from the instruction ranges of [Lint.Resource.analyze] —
   the same boundary rule as [Program.split_prefix], so segment 0 is
   exactly the deterministic prefix whenever the circuit opens with a
   unitary run, and it is then executed once and shared across shots. *)
type hstate = Hdense of State.t | Hsparse of Sparse.t

let hcopy = function
  | Hdense d -> Hdense (State.copy d)
  | Hsparse s -> Hsparse (Sparse.copy s)

let hregister = function
  | Hdense d -> State.register d
  | Hsparse s -> Sparse.register s

let hconvert h tag =
  match (h, tag) with
  | Hdense _, `Dense | Hsparse _, `Sparse -> h
  | Hdense d, `Sparse -> Hsparse (Sparse.of_state d)
  | Hsparse s, `Dense -> Hdense (Sparse.to_state s)

let hexec ~random h prog =
  match h with
  | Hdense d -> Program.exec ~random d prog
  | Hsparse s -> Sparse.exec ~random s prog

let run_hybrid ?domains ~seed ~width ~shots base =
  let n = Circ.num_qubits base and nbits = Circ.num_bits base in
  let plan = segment_plan base in
  let instrs = Array.of_list (Circ.instructions base) in
  let segs =
    List.map
      (fun p ->
        ( p.seg_engine,
          Program.compile_instructions ~num_qubits:n ~num_bits:nbits
            (Array.to_list
               (Array.sub instrs p.seg_start (p.seg_stop - p.seg_start))) ))
      plan
  in
  let fresh () =
    match segs with
    | (`Sparse, _) :: _ -> Hsparse (Sparse.create n ~num_bits:nbits)
    | (`Dense, _) :: _ | [] -> Hdense (State.create n ~num_bits:nbits)
  in
  (* segment 0 is cacheable iff it contains no measure/reset op *)
  let cached, per_shot_segs =
    match segs with
    | (tag, prog0) :: rest
      when Program.length (snd (Program.split_prefix prog0))
           = 0 ->
        let h = hconvert (fresh ()) tag in
        hexec ~random:no_random_sparse h prog0;
        (h, rest)
    | (_, _) :: _ | [] -> (fresh (), segs)
  in
  (* handoff accounting is static per shot: conversions happen at the
     same boundaries every replay, so the counters are bumped once per
     dispatch (the per-shot path stays counter-free) *)
  let cached_tag =
    match cached with Hdense _ -> `Dense | Hsparse _ -> `Sparse
  in
  let d2s, s2d =
    List.fold_left
      (fun (cur, (d2s, s2d)) (tag, _) ->
        ( tag,
          match (cur, tag) with
          | `Dense, `Sparse -> (d2s + 1, s2d)
          | `Sparse, `Dense -> (d2s, s2d + 1)
          | `Dense, `Dense | `Sparse, `Sparse -> (d2s, s2d) ))
      (cached_tag, (0, 0))
      per_shot_segs
    |> snd
  in
  if d2s > 0 then Obs.incr ~n:(d2s * shots) "backend.handoff.dense_to_sparse";
  if s2d > 0 then Obs.incr ~n:(s2d * shots) "backend.handoff.sparse_to_dense";
  if Obs.Flight.enabled () then
    Obs.Flight.record ~kind:"backend.hybrid.plan"
      [
        ("segments", Obs.Json.String (segment_plan_string plan));
        ("handoffs_per_shot", Obs.Json.Int (d2s + s2d));
      ];
  Parallel.run ?domains ~seed ~width ~shots (fun ~rng ~index:_ ->
      let random () = Random.State.float rng 1.0 in
      let h =
        List.fold_left
          (fun h (tag, prog) ->
            let h = hconvert h tag in
            hexec ~random h prog;
            h)
          (hcopy cached) per_shot_segs
      in
      hregister h)

let run ?policy ?(seed = Runner.default_seed) ?domains ?plan
    ?(prefix_cache = true) ~shots c =
  (* selection happens on the un-instrumented circuit (the plan's
     terminal measurements change neither the gate set nor the qubit
     count; their branch points are accounted separately), so the
     per-circuit analysis memo keys on the caller's stable value *)
  let extra_branches =
    match plan with
    | None -> 0
    | Some plan ->
        List.length
          (Measurement_plan.to_pairs ~num_qubits:(Circ.num_qubits c) plan)
  in
  let engine = select_gen ?policy ~shots ~extra_branches c in
  let instrument circuit =
    match plan with
    | None -> circuit
    | Some plan -> Measurement_plan.instrument plan circuit
  in
  let base = instrument c in
  let width = Circ.num_bits base in
  if Obs.Flight.enabled () then
    Obs.Flight.record ~kind:"backend.run"
      [
        ("engine", Obs.Json.String (engine_name engine));
        ("seed", Obs.Json.Int seed);
        ("shots", Obs.Json.Int shots);
        ("qubits", Obs.Json.Int (Circ.num_qubits base));
        ("prefix_cache", Obs.Json.Bool prefix_cache);
      ];
  let dispatch_inner () =
    match engine with
    | `Stabilizer ->
        (* an Auto selection may be backed by the analyzer's witness —
           run that circuit: it is observationally equivalent and inside
           the tableau gate set *)
        let cs =
          match stabilizer_circuit c with
          | Some w -> instrument w
          | None -> base
        in
        Parallel.run ?domains ~seed ~width ~shots (fun ~rng ~index:_ ->
            Stabilizer.register (Stabilizer.run ~rng cs))
    | `Exact ->
        let sampler = Dist.sampler (Exact.register_distribution base) in
        Parallel.run ?domains ~seed ~width ~shots (fun ~rng ~index:_ ->
            Dist.sample sampler rng)
    | `Dense ->
        if prefix_cache then begin
          let cached = Prefix.prepare base in
          (* counted once per dispatch, not per shot: a counter bump is
             a name lookup in the domain buffer, too expensive for the
             per-shot path under the <2% telemetry budget *)
          Obs.incr ~n:shots "backend.prefix.hit";
          Parallel.run ?domains ~seed ~width ~shots (fun ~rng ~index:_ ->
              Prefix.run_shot cached ~rng)
        end
        else begin
          (* still compiled — one whole-circuit program replayed per
             shot, bit-identical to the prefix-cached execution *)
          if Obs.Flight.enabled () then
            Obs.Flight.record ~kind:"backend.prefix.bypassed" [];
          let program = compiled base in
          Obs.incr ~n:shots "backend.prefix.miss";
          Parallel.run ?domains ~seed ~width ~shots (fun ~rng ~index:_ ->
              Statevector.register (Program.run ~rng program))
        end
    | `Sparse -> run_sparse ?domains ~seed ~width ~shots ~prefix_cache base
    | `Hybrid -> run_hybrid ?domains ~seed ~width ~shots base
  in
  (* Under [Auto] the typed dense-cap signal is a routing event, not an
     error: a dense attempt that outgrows [State.max_qubits] falls back
     to the sparse engine.  (Selection already plans around the cap;
     this is the catch the escape hatch documents.)  A forced policy
     keeps its failure. *)
  let dispatch () =
    match policy with
    | None | Some Auto -> (
        try dispatch_inner ()
        with State.Dense_cap_exceeded _ ->
          Obs.incr "backend.fallback.sparse";
          if Obs.Flight.enabled () then
            Obs.Flight.record ~kind:"backend.fallback.sparse"
              [ ("qubits", Obs.Json.Int (Circ.num_qubits base)) ];
          run_sparse ?domains ~seed ~width ~shots ~prefix_cache base)
    | Some (Statevector_dense | Sparse_statevector | Stabilizer | Exact_branch)
      ->
        dispatch_inner ()
  in
  if not (Obs.enabled ()) then dispatch ()
  else begin
    let name = engine_name engine in
    Obs.incr ("backend.run." ^ name);
    (* dense dispatches execute compiled programs: count them under the
       program engine as well so the compiled/interpreted split is
       visible in the metrics JSON *)
    (match engine with
    | `Dense | `Sparse | `Hybrid -> Obs.incr "backend.run.program"
    | `Stabilizer | `Exact -> ());
    Obs.incr ~n:shots "backend.shots";
    let r =
      Obs.with_span "backend.run"
        ~attrs:
          [
            ("engine", name);
            ("shots", string_of_int shots);
            ("qubits", string_of_int (Circ.num_qubits base));
          ]
        dispatch
    in
    (* the main domain's buffer (workers flushed at join) *)
    Obs.flush ();
    r
  end

let run_measured ?policy ?seed ?domains ?prefix_cache ~shots ~measures c =
  run ?policy ?seed ?domains ~plan:(Measurement_plan.of_pairs measures)
    ?prefix_cache ~shots c
