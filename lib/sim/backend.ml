open Circuit

type policy = Auto | Statevector_dense | Stabilizer | Exact_branch

let policy_to_string = function
  | Auto -> "auto"
  | Statevector_dense -> "dense"
  | Stabilizer -> "stabilizer"
  | Exact_branch -> "exact"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "auto" -> Some Auto
  | "dense" | "statevector" -> Some Statevector_dense
  | "stabilizer" | "chp" -> Some Stabilizer
  | "exact" | "exact-branch" -> Some Exact_branch
  | _ -> None

let pp_policy fmt p = Format.pp_print_string fmt (policy_to_string p)

(* Per-circuit memo of the compiled program and the static resource
   summary, keyed on the physical circuit value: repeated [run]s of the
   same circuit pay for compilation and analysis once.  Keys are weak
   (ephemerons), so the cache never outlives its circuits. *)
module Cache = Ephemeron.K1.Make (struct
  type t = Circ.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type cached = {
  mutable program : Program.t option;
  mutable summary : Lint.Resource.summary option;
}

let cache : cached Cache.t = Cache.create 32

let cache_entry c =
  match Cache.find_opt cache c with
  | Some e -> e
  | None ->
      let e = { program = None; summary = None } in
      Cache.add cache c e;
      e

let compiled c =
  let e = cache_entry c in
  match e.program with
  | Some p -> p
  | None ->
      let p = Program.compile c in
      e.program <- Some p;
      p

let resource_summary c =
  let e = cache_entry c in
  match e.summary with
  | Some s -> s
  | None ->
      let s = Lint.Resource.analyze c in
      e.summary <- Some s;
      s

module Prefix = struct
  type t = {
    state : Statevector.t;
    suffix : Instruction.t list;
    suffix_program : Program.t;
  }

  let split c =
    let rec go acc = function
      | (Instruction.Measure _ | Instruction.Reset _) :: _ as rest ->
          (List.rev acc, rest)
      | ((Instruction.Unitary _ | Instruction.Conditioned _
         | Instruction.Barrier _) as i)
        :: rest -> go (i :: acc) rest
      | [] -> (List.rev acc, [])
    in
    go [] (Circ.instructions c)

  (* Share of the circuit's non-branching instructions simulated once by
     the cache: 1.0 on terminal-measurement workloads (the whole unitary
     part is prefix), lower when mid-circuit measure/reset cuts it off.
     An all-branching circuit caches everything cacheable, hence 1.0. *)
  let fraction c =
    let prefix, suffix = split c in
    let unitary =
      List.length prefix
      + List.length
          (List.filter
             (function
               | Instruction.Measure _ | Instruction.Reset _ -> false
               | Instruction.Unitary _ | Instruction.Conditioned _
               | Instruction.Barrier _ -> true)
             suffix)
    in
    if unitary = 0 then 1.0
    else float_of_int (List.length prefix) /. float_of_int unitary

  (* the prefix consumes no randomness: measure/reset never appear in it *)
  let no_random () = assert false

  (* The cache keys on compiled program segments: the whole circuit is
     lowered once (through the per-circuit memo) and split at the first
     measure/reset op (the same boundary as the instruction-level
     [split] — fusion never crosses it), the prefix segment is executed
     once here, and [run_shot] replays only the compiled suffix. *)
  let prepare c =
    Obs.with_span "backend.prefix.prepare" (fun () ->
        let _, suffix = split c in
        let program = compiled c in
        let prefix_program, suffix_program = Program.split_prefix program in
        let st = Program.fresh_state program in
        Program.exec ~random:no_random st prefix_program;
        Obs.set_gauge "backend.prefix.fraction" (fraction c);
        if Obs.Flight.enabled () then
          Obs.Flight.record ~kind:"backend.prefix.prepared"
            [ ("fraction", Obs.Json.Float (fraction c)) ];
        { state = st; suffix; suffix_program })

  let state t = t.state
  let suffix t = t.suffix

  let run_shot t ~rng =
    let st = Statevector.copy t.state in
    let random () = Random.State.float rng 1.0 in
    Program.exec ~random st t.suffix_program;
    Statevector.register st
end

let branch_points c =
  List.fold_left
    (fun acc i ->
      match i with
      | Instruction.Measure _ | Instruction.Reset _ -> acc + 1
      | Instruction.Unitary _ | Instruction.Conditioned _
      | Instruction.Barrier _ -> acc)
    0 (Circ.instructions c)

(* The exact backend pays ~2^k statevector replays up front and then
   O(1) per shot, where k is the analyzer's count of measure/reset
   points with statically unknown outcomes (deterministic collapses
   don't fork the branch tree) rather than the syntactic count; worth
   it only when that bound is comfortably below the shot count.  The
   old hard qubit cutoff stays for wide circuits unless the analyzer
   proves the live amplitude set itself is small. *)
let exact_auto_max_qubits = 16

let exact_tractable ~shots ~extra_branches c =
  Circ.num_qubits c <= Statevector.max_qubits
  &&
  let s = resource_summary c in
  let k = s.Lint.Resource.nondet_branches + extra_branches in
  (Circ.num_qubits c <= exact_auto_max_qubits
  || s.Lint.Resource.log2_bound_peak <= exact_auto_max_qubits)
  && k < Sys.int_size - 2
  && 1 lsl k <= max 64 (shots / 4)

let check_dense_fits ~who c =
  if Circ.num_qubits c > Statevector.max_qubits then
    invalid_arg
      (Printf.sprintf "Backend.run: %s backend capped at %d qubits (got %d)"
         who Statevector.max_qubits (Circ.num_qubits c))

(* Clifford routing under [Auto]: the whole-circuit scan is the cheap
   path; failing that, the analyzer's witness — the same circuit minus
   statically-dead gates — is consulted, so a per-segment-Clifford
   dynamic circuit whose only non-Clifford gates are provably dead
   still lands on the tableau engine. *)
let stabilizer_circuit c =
  if Stabilizer.supports c then Some c
  else
    let s = resource_summary c in
    if s.Lint.Resource.clifford && Stabilizer.supports s.Lint.Resource.witness
    then Some s.Lint.Resource.witness
    else None

(* [extra_branches] accounts for terminal measurements a measurement
   plan appends after selection (each at most one branch point). *)
let select_gen ?(policy = Auto) ~shots ~extra_branches c =
  let engine =
    match policy with
    | Statevector_dense ->
        check_dense_fits ~who:"dense" c;
        `Dense
    | Stabilizer ->
        if not (Stabilizer.supports c) then
          raise
            (Stabilizer.Unsupported
               "Backend.run: stabilizer policy on a non-Clifford circuit");
        `Stabilizer
    | Exact_branch ->
        check_dense_fits ~who:"exact-branch" c;
        `Exact
    | Auto ->
        if stabilizer_circuit c <> None then `Stabilizer
        else if exact_tractable ~shots ~extra_branches c then `Exact
        else begin
          check_dense_fits ~who:"dense" c;
          `Dense
        end
  in
  (match engine with
  | `Stabilizer -> Obs.incr "backend.select.stabilizer"
  | `Exact -> Obs.incr "backend.select.exact"
  | `Dense -> Obs.incr "backend.select.dense");
  engine

let select ?policy ~shots c = select_gen ?policy ~shots ~extra_branches:0 c

let engine_name = function
  | `Stabilizer -> "stabilizer"
  | `Exact -> "exact"
  | `Dense -> "dense"

let run ?policy ?(seed = Runner.default_seed) ?domains ?plan
    ?(prefix_cache = true) ~shots c =
  (* selection happens on the un-instrumented circuit (the plan's
     terminal measurements change neither the gate set nor the qubit
     count; their branch points are accounted separately), so the
     per-circuit analysis memo keys on the caller's stable value *)
  let extra_branches =
    match plan with
    | None -> 0
    | Some plan ->
        List.length
          (Measurement_plan.to_pairs ~num_qubits:(Circ.num_qubits c) plan)
  in
  let engine = select_gen ?policy ~shots ~extra_branches c in
  let instrument circuit =
    match plan with
    | None -> circuit
    | Some plan -> Measurement_plan.instrument plan circuit
  in
  let base = instrument c in
  let width = Circ.num_bits base in
  if Obs.Flight.enabled () then
    Obs.Flight.record ~kind:"backend.run"
      [
        ("engine", Obs.Json.String (engine_name engine));
        ("seed", Obs.Json.Int seed);
        ("shots", Obs.Json.Int shots);
        ("qubits", Obs.Json.Int (Circ.num_qubits base));
        ("prefix_cache", Obs.Json.Bool prefix_cache);
      ];
  let dispatch () =
    match engine with
    | `Stabilizer ->
        (* an Auto selection may be backed by the analyzer's witness —
           run that circuit: it is observationally equivalent and inside
           the tableau gate set *)
        let cs =
          match stabilizer_circuit c with
          | Some w -> instrument w
          | None -> base
        in
        Parallel.run ?domains ~seed ~width ~shots (fun ~rng ~index:_ ->
            Stabilizer.register (Stabilizer.run ~rng cs))
    | `Exact ->
        let sampler = Dist.sampler (Exact.register_distribution base) in
        Parallel.run ?domains ~seed ~width ~shots (fun ~rng ~index:_ ->
            Dist.sample sampler rng)
    | `Dense ->
        if prefix_cache then begin
          let cached = Prefix.prepare base in
          (* counted once per dispatch, not per shot: a counter bump is
             a name lookup in the domain buffer, too expensive for the
             per-shot path under the <2% telemetry budget *)
          Obs.incr ~n:shots "backend.prefix.hit";
          Parallel.run ?domains ~seed ~width ~shots (fun ~rng ~index:_ ->
              Prefix.run_shot cached ~rng)
        end
        else begin
          (* still compiled — one whole-circuit program replayed per
             shot, bit-identical to the prefix-cached execution *)
          if Obs.Flight.enabled () then
            Obs.Flight.record ~kind:"backend.prefix.bypassed" [];
          let program = compiled base in
          Obs.incr ~n:shots "backend.prefix.miss";
          Parallel.run ?domains ~seed ~width ~shots (fun ~rng ~index:_ ->
              Statevector.register (Program.run ~rng program))
        end
  in
  if not (Obs.enabled ()) then dispatch ()
  else begin
    let name = engine_name engine in
    Obs.incr ("backend.run." ^ name);
    (* dense dispatches execute compiled programs: count them under the
       program engine as well so the compiled/interpreted split is
       visible in the metrics JSON *)
    (match engine with
    | `Dense -> Obs.incr "backend.run.program"
    | `Stabilizer | `Exact -> ());
    Obs.incr ~n:shots "backend.shots";
    let r =
      Obs.with_span "backend.run"
        ~attrs:
          [
            ("engine", name);
            ("shots", string_of_int shots);
            ("qubits", string_of_int (Circ.num_qubits base));
          ]
        dispatch
    in
    (* the main domain's buffer (workers flushed at join) *)
    Obs.flush ();
    r
  end

let run_measured ?policy ?seed ?domains ?prefix_cache ~shots ~measures c =
  run ?policy ?seed ?domains ~plan:(Measurement_plan.of_pairs measures)
    ?prefix_cache ~shots c
