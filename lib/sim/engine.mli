open Circuit

(** The pluggable execution-engine abstraction.

    [S] is the one signature every statevector-like engine implements:
    state lifecycle (create/copy), the compiled-op replay
    ({!S.apply}/{!S.exec} over {!Program} ops), the collapse
    primitives ({!S.measure}/{!S.reset}/{!S.project}), the
    probability/amplitude observers the samplers and differential
    tests consume, and the boxed-matrix entry points the
    noisy-trajectory engine needs ({!S.apply_gate},
    {!S.apply_kraus1}).

    Instances: {!Statevector.Dense_engine} (dense SoA amplitudes,
    capped at {!State.max_qubits}) and {!Sparse.Sparse_engine} (hash-map
    basis-amplitude storage, memory per {e nonzero} amplitude).
    {!Backend} picks between them — per whole circuit or per
    analyzer segment (hybrid execution) — and {!Runner} / {!Noise}
    accept any instance through their [?engine] parameter.

    Contract every instance honours, so shot streams are
    seed-deterministic {e across} engines: randomness is consumed
    only by [measure]/[reset], in source order, one draw each; and
    [measure] decides the outcome as [random < prob_one], so two
    engines that agree on probabilities (within pruning tolerance)
    replay identical shot streams from the same split-RNG stream. *)

module type S = sig
  type state

  (** Engine tag used in telemetry and reports ("dense", "sparse"). *)
  val name : string

  (** Widest register {!create} accepts — a memory cap for dense
      storage, an index-width cap for sparse. *)
  val max_qubits : int

  (** [create n ~num_bits] is |0...0> with an all-zero classical
      register. *)
  val create : int -> num_bits:int -> state

  val copy : state -> state
  val num_qubits : state -> int
  val num_bits : state -> int
  val register : state -> int
  val set_register : state -> int -> unit
  val set_bit : state -> int -> bool -> unit
  val get_bit : state -> int -> bool

  (** Number of stored (structurally nonzero) amplitudes. *)
  val nonzero : state -> int

  val norm2 : state -> float

  (** Amplitude of one computational basis state. *)
  val amplitude : state -> int -> Complex.t

  (** Probability that measuring the qubit yields 1. *)
  val prob_one : state -> int -> float

  (** Apply a unitary or conditioned compiled op in place.
      @raise Invalid_argument on a measure/reset op. *)
  val apply : state -> Program.op -> unit

  (** Apply a plain 1-qubit gate (boxed-matrix path). *)
  val apply_gate : state -> Gate.t -> int -> unit

  (** Apply an arbitrary 2x2 operator and renormalize — the
      quantum-trajectory primitive (see {!Statevector.apply_kraus1}). *)
  val apply_kraus1 : state -> Linalg.Cmat.t -> int -> unit

  (** Collapse a qubit onto an outcome; returns the branch probability.
      @raise State.Zero_probability_branch when that probability is 0. *)
  val project : state -> int -> bool -> float

  (** In-place Pauli-X (exact amplitude swap / key remap). *)
  val flip : state -> int -> unit

  val measure : random:float -> state -> qubit:int -> bit:int -> bool
  val reset : random:float -> state -> int -> unit

  (** Replay a whole compiled program; [random] is consulted by
      measure/reset ops only, in source order. *)
  val exec : random:(unit -> float) -> state -> Program.t -> unit

  (** Execute the program from a fresh |0...0> state. *)
  val run : rng:Random.State.t -> Program.t -> state

  (** Probability of each basis state, as a dense [2^n] array.
      @raise State.Dense_cap_exceeded when [2^n] does not fit
      (sparse states past the dense cap); use
      {!nonzero_probabilities} there. *)
  val probabilities : state -> float array

  (** [(basis_index, probability)] for every stored amplitude with
      nonzero probability, ascending by index — the width-safe
      distribution extractor. *)
  val nonzero_probabilities : state -> (int * float) list
end

(** A state packed with its engine — what the hybrid executor threads
    through segment boundaries. *)
type packed = Packed : (module S with type state = 's) * 's -> packed

val pack : (module S with type state = 's) -> 's -> packed
val name : packed -> string
val register : packed -> int
val copy : packed -> packed
val exec : random:(unit -> float) -> packed -> Program.t -> unit
