(* Mutable simulator state: SoA amplitudes plus the classical register.
   This is the storage layer under both execution paths — the compiled
   kernels of [Program] and the generic interpreter of [Statevector] —
   split out so [Program] and [Statevector] can share it without a
   dependency cycle.  [Statevector] is the public face, which is why
   the error messages below say "Statevector". *)

type t = {
  n : int;
  num_bits : int;
  amps : Linalg.Cvec.t;
  mutable reg : int;
}

let max_qubits = 24

exception Dense_cap_exceeded of { qubits : int; max_qubits : int }

let () =
  Printexc.register_printer (function
    | Dense_cap_exceeded { qubits; max_qubits } ->
        Some
          (Printf.sprintf
             "Sim.State.Dense_cap_exceeded: %d qubits (dense cap %d)" qubits
             max_qubits)
    | _ -> None)

let create n ~num_bits =
  if n < 0 then invalid_arg (Printf.sprintf "Statevector.create: %d qubits" n);
  if n > max_qubits then raise (Dense_cap_exceeded { qubits = n; max_qubits });
  let amps = Linalg.Cvec.make (1 lsl n) in
  (Linalg.Cvec.re amps).(0) <- 1.;
  { n; num_bits; amps; reg = 0 }

let num_qubits st = st.n
let num_bits st = st.num_bits
let copy st = { st with amps = Linalg.Cvec.copy st.amps }
let amplitudes st = Linalg.Cvec.copy st.amps
let raw st = st.amps
let register st = st.reg
let set_register st reg = st.reg <- reg
let set_bit st k b = st.reg <- Bits.set st.reg k b
let get_bit st k = Bits.get st.reg k

let norm2 st = Linalg.Cvec.norm2 st.amps

let renormalize st =
  let n2 = norm2 st in
  if n2 <= 1e-18 then invalid_arg "Statevector: zero-norm state";
  let s = 1. /. sqrt n2 in
  let re = Linalg.Cvec.re st.amps and im = Linalg.Cvec.im st.amps in
  for k = 0 to Array.length re - 1 do
    re.(k) <- re.(k) *. s;
    im.(k) <- im.(k) *. s
  done

let prob_one st q =
  let bit = 1 lsl q in
  let re = Linalg.Cvec.re st.amps and im = Linalg.Cvec.im st.amps in
  let dim = Array.length re in
  let acc = ref 0. in
  let base = ref bit in
  while !base < dim do
    for i1 = !base to !base + bit - 1 do
      let r = Array.unsafe_get re i1 and i = Array.unsafe_get im i1 in
      acc := !acc +. ((r *. r) +. (i *. i))
    done;
    base := !base + bit + bit
  done;
  !acc

exception Zero_probability_branch of { qubit : int; outcome : bool }

let project st q outcome =
  let bit = 1 lsl q in
  let p1 = prob_one st q in
  let p = if outcome then p1 else 1. -. p1 in
  if p <= 1e-15 then raise (Zero_probability_branch { qubit = q; outcome });
  let s = 1. /. sqrt p in
  let re = Linalg.Cvec.re st.amps and im = Linalg.Cvec.im st.amps in
  for idx = 0 to Array.length re - 1 do
    if (idx land bit <> 0) = outcome then begin
      re.(idx) <- re.(idx) *. s;
      im.(idx) <- im.(idx) *. s
    end
    else begin
      re.(idx) <- 0.;
      im.(idx) <- 0.
    end
  done;
  p

(* In-place Pauli-X on qubit [q]: exact amplitude swap, used by reset
   (and as the [Program] X kernel's uncontrolled fast path). *)
let flip st q =
  let bit = 1 lsl q in
  let re = Linalg.Cvec.re st.amps and im = Linalg.Cvec.im st.amps in
  let dim = Array.length re in
  let base = ref 0 in
  while !base < dim do
    for i0 = !base to !base + bit - 1 do
      let i1 = i0 lor bit in
      let r = Array.unsafe_get re i0 in
      Array.unsafe_set re i0 (Array.unsafe_get re i1);
      Array.unsafe_set re i1 r;
      let i = Array.unsafe_get im i0 in
      Array.unsafe_set im i0 (Array.unsafe_get im i1);
      Array.unsafe_set im i1 i
    done;
    base := !base + bit + bit
  done

let measure ~random st ~qubit ~bit =
  Obs.incr "sim.statevector.measure";
  let p1 = prob_one st qubit in
  let outcome = random < p1 in
  ignore (project st qubit outcome);
  set_bit st bit outcome;
  outcome

let reset ~random st q =
  Obs.incr "sim.statevector.reset";
  let p1 = prob_one st q in
  let outcome = random < p1 in
  ignore (project st q outcome);
  if outcome then flip st q

let probabilities st =
  let re = Linalg.Cvec.re st.amps and im = Linalg.Cvec.im st.amps in
  Array.init (Array.length re) (fun k ->
      (re.(k) *. re.(k)) +. (im.(k) *. im.(k)))
