open Circuit

(* Hash-map basis-amplitude statevector.

   The state is a compact table of (basis index, amplitude) entries:
   parallel [idx]/[re]/[im] arrays hold the live entries in slots
   [0..size), and [tbl] maps a basis index to its slot.  Memory and
   per-op work scale with the number of nonzero amplitudes instead of
   with 2^n — exactly the resource the paper's dyn2 transform keeps
   small (ancillas stay in basis states, so a per-shot state has a
   handful of nonzeros regardless of width).

   Kernel fidelity: every kernel mirrors the dense [Program] kernels
   expression-for-expression (same products, same sum association,
   absent partners read as 0.), so on in-cap workloads the two engines
   agree amplitude-for-amplitude up to the pruning threshold and —
   because measurement outcomes are decided as [random < prob_one] in
   both — replay identical seed-deterministic shot streams.

   Pruning: mixing kernels (H / generic 2x2) are the only ops that can
   cancel amplitudes to (near-)zero; after each one, entries with
   |amp|^2 <= 1e-24 are dropped.  The threshold is far below double
   rounding noise on any normalized sum, so pruned residue cannot
   perturb a Born probability, but it is what keeps basis-dominated
   states from accreting dead entries (H then H leaves an exact-zero
   partner). *)

type t = {
  n : int;
  nbits : int;
  mutable reg : int;
  mutable size : int;
  mutable idx : int array;
  mutable re : float array;
  mutable im : float array;
  tbl : (int, int) Hashtbl.t;
}

(* Basis indices are OCaml ints; leave headroom below [Sys.int_size]
   so [1 lsl target] and index bit-ops never overflow. *)
let max_qubits = Sys.int_size - 3
let prune_eps2 = 1e-24
let sq2 = 1. /. sqrt 2.

let create n ~num_bits =
  if n < 0 || n > max_qubits then
    invalid_arg (Printf.sprintf "Sparse.create: %d qubits (max %d)" n max_qubits);
  let idx = Array.make 16 0 in
  let re = Array.make 16 0. in
  let im = Array.make 16 0. in
  re.(0) <- 1.;
  let tbl = Hashtbl.create 64 in
  Hashtbl.replace tbl 0 0;
  { n; nbits = num_bits; reg = 0; size = 1; idx; re; im; tbl }

let num_qubits st = st.n
let num_bits st = st.nbits
let register st = st.reg
let set_register st reg = st.reg <- reg
let set_bit st k b = st.reg <- Bits.set st.reg k b
let get_bit st k = Bits.get st.reg k
let nnz st = st.size

let copy st =
  {
    st with
    idx = Array.copy st.idx;
    re = Array.copy st.re;
    im = Array.copy st.im;
    tbl = Hashtbl.copy st.tbl;
  }

(* ------------------------------------------------------------------ *)
(* Entry management                                                   *)

let ensure_capacity st =
  if st.size = Array.length st.idx then begin
    let cap = 2 * st.size in
    let idx = Array.make cap 0 in
    let re = Array.make cap 0. in
    let im = Array.make cap 0. in
    Array.blit st.idx 0 idx 0 st.size;
    Array.blit st.re 0 re 0 st.size;
    Array.blit st.im 0 im 0 st.size;
    st.idx <- idx;
    st.re <- re;
    st.im <- im
  end

let add_entry st i r x =
  ensure_capacity st;
  let s = st.size in
  st.idx.(s) <- i;
  st.re.(s) <- r;
  st.im.(s) <- x;
  Hashtbl.replace st.tbl i s;
  st.size <- s + 1

(* Swap-remove: the last entry moves into the vacated slot.  Safe
   inside a downward [size-1 .. 0] sweep — the swapped-in entry came
   from a higher slot, already visited. *)
let remove_slot st s =
  let last = st.size - 1 in
  Hashtbl.remove st.tbl st.idx.(s);
  if s <> last then begin
    st.idx.(s) <- st.idx.(last);
    st.re.(s) <- st.re.(last);
    st.im.(s) <- st.im.(last);
    Hashtbl.replace st.tbl st.idx.(s) s
  end;
  st.size <- last

let prune st =
  let s = ref (st.size - 1) in
  while !s >= 0 do
    let r = st.re.(!s) and x = st.im.(!s) in
    if (r *. r) +. (x *. x) <= prune_eps2 then remove_slot st !s;
    decr s
  done

(* ------------------------------------------------------------------ *)
(* Kernels (mirroring lib/sim/program.ml's dense kernels)             *)

let kx st ~bit ~cmask =
  let changed = ref false in
  for s = 0 to st.size - 1 do
    let i = st.idx.(s) in
    if i land cmask = cmask then begin
      st.idx.(s) <- i lxor bit;
      changed := true
    end
  done;
  if !changed then begin
    Hashtbl.reset st.tbl;
    for s = 0 to st.size - 1 do
      Hashtbl.replace st.tbl st.idx.(s) s
    done
  end

let[@inline] rotate st s zre zim =
  let r = st.re.(s) and x = st.im.(s) in
  st.re.(s) <- (zre *. r) -. (zim *. x);
  st.im.(s) <- (zre *. x) +. (zim *. r)

let kphase st ~bit ~cmask zre zim =
  let set = cmask lor bit in
  for s = 0 to st.size - 1 do
    if st.idx.(s) land set = set then rotate st s zre zim
  done

let kdiag st ~bit ~cmask d0re d0im d1re d1im =
  for s = 0 to st.size - 1 do
    let i = st.idx.(s) in
    if i land cmask = cmask then
      if i land bit = 0 then rotate st s d0re d0im else rotate st s d1re d1im
  done

(* Pair-matched mixing kernel: each control-satisfying (i0, i1) pair
   is processed exactly once.  The |0>-side entry drives the pair when
   present; a lone |1>-side entry (partner structurally absent, i.e.
   amplitude 0) drives it itself.  Entries created mid-sweep land in
   slots >= the sweep bound, so they are never reprocessed. *)
let mix_pairs st ~bit ~cmask f =
  let n0 = st.size in
  for s = 0 to n0 - 1 do
    let i = st.idx.(s) in
    if i land cmask = cmask then
      if i land bit = 0 then begin
        let i1 = i lor bit in
        let r0 = st.re.(s) and x0 = st.im.(s) in
        match Hashtbl.find_opt st.tbl i1 with
        | Some s1 ->
            let r1 = st.re.(s1) and x1 = st.im.(s1) in
            let nr0, nx0, nr1, nx1 = f r0 x0 r1 x1 in
            st.re.(s) <- nr0;
            st.im.(s) <- nx0;
            st.re.(s1) <- nr1;
            st.im.(s1) <- nx1
        | None ->
            let nr0, nx0, nr1, nx1 = f r0 x0 0. 0. in
            st.re.(s) <- nr0;
            st.im.(s) <- nx0;
            if not (nr1 = 0. && nx1 = 0.) then add_entry st i1 nr1 nx1
      end
      else if not (Hashtbl.mem st.tbl (i lxor bit)) then begin
        let r1 = st.re.(s) and x1 = st.im.(s) in
        let nr0, nx0, nr1, nx1 = f 0. 0. r1 x1 in
        st.re.(s) <- nr1;
        st.im.(s) <- nx1;
        if not (nr0 = 0. && nx0 = 0.) then add_entry st (i lxor bit) nr0 nx0
      end
  done;
  prune st

let kh st ~bit ~cmask =
  mix_pairs st ~bit ~cmask (fun r0 x0 r1 x1 ->
      ( (sq2 *. r0) +. (sq2 *. r1),
        (sq2 *. x0) +. (sq2 *. x1),
        (sq2 *. r0) -. (sq2 *. r1),
        (sq2 *. x0) -. (sq2 *. x1) ))

let ku2 st ~bit ~cmask m =
  let m00re = m.(0) and m00im = m.(1) and m01re = m.(2) and m01im = m.(3) in
  let m10re = m.(4) and m10im = m.(5) and m11re = m.(6) and m11im = m.(7) in
  mix_pairs st ~bit ~cmask (fun r0 x0 r1 x1 ->
      ( ((m00re *. r0) -. (m00im *. x0)) +. ((m01re *. r1) -. (m01im *. x1)),
        ((m00re *. x0) +. (m00im *. r0)) +. ((m01re *. x1) +. (m01im *. r1)),
        ((m10re *. r0) -. (m10im *. x0)) +. ((m11re *. r1) -. (m11im *. x1)),
        ((m10re *. x0) +. (m10im *. r0)) +. ((m11re *. x1) +. (m11im *. r1)) ))

(* ------------------------------------------------------------------ *)
(* Observers and collapse                                             *)

let norm2 st =
  let acc = ref 0. in
  for s = 0 to st.size - 1 do
    let r = st.re.(s) and x = st.im.(s) in
    acc := !acc +. ((r *. r) +. (x *. x))
  done;
  !acc

let amplitude st k =
  match Hashtbl.find_opt st.tbl k with
  | Some s -> { Complex.re = st.re.(s); im = st.im.(s) }
  | None -> Complex.zero

let prob_one st q =
  let bit = 1 lsl q in
  let acc = ref 0. in
  for s = 0 to st.size - 1 do
    if st.idx.(s) land bit <> 0 then begin
      let r = st.re.(s) and x = st.im.(s) in
      acc := !acc +. ((r *. r) +. (x *. x))
    end
  done;
  !acc

let project st q outcome =
  let bit = 1 lsl q in
  let p1 = prob_one st q in
  let p = if outcome then p1 else 1. -. p1 in
  if p <= 1e-15 then
    raise (State.Zero_probability_branch { qubit = q; outcome });
  let sc = 1. /. sqrt p in
  let s = ref (st.size - 1) in
  while !s >= 0 do
    if (st.idx.(!s) land bit <> 0) = outcome then begin
      st.re.(!s) <- st.re.(!s) *. sc;
      st.im.(!s) <- st.im.(!s) *. sc
    end
    else remove_slot st !s;
    decr s
  done;
  p

let flip st q = kx st ~bit:(1 lsl q) ~cmask:0

let measure ~random st ~qubit ~bit =
  Obs.incr "sim.sparse.measure";
  let p1 = prob_one st qubit in
  let outcome = random < p1 in
  ignore (project st qubit outcome);
  set_bit st bit outcome;
  outcome

let reset ~random st q =
  Obs.incr "sim.sparse.reset";
  let p1 = prob_one st q in
  let outcome = random < p1 in
  ignore (project st q outcome);
  if outcome then flip st q

(* ------------------------------------------------------------------ *)
(* Boxed-matrix entry points (noise channels)                         *)

let mat8 m =
  let z r c : Complex.t = Linalg.Cmat.get m r c in
  let m00 = z 0 0 and m01 = z 0 1 and m10 = z 1 0 and m11 = z 1 1 in
  [| m00.re; m00.im; m01.re; m01.im; m10.re; m10.im; m11.re; m11.im |]

let apply_gate st g q = ku2 st ~bit:(1 lsl q) ~cmask:0 (mat8 (Gate.matrix g))

let apply_kraus1 st m q =
  if Linalg.Cmat.rows m <> 2 || Linalg.Cmat.cols m <> 2 then
    invalid_arg "Sparse.apply_kraus1: not a 1-qubit operator";
  ku2 st ~bit:(1 lsl q) ~cmask:0 (mat8 m);
  let n2 = norm2 st in
  if n2 <= 1e-18 then invalid_arg "Sparse.apply_kraus1: zero-norm result";
  let sc = 1. /. sqrt n2 in
  for s = 0 to st.size - 1 do
    st.re.(s) <- st.re.(s) *. sc;
    st.im.(s) <- st.im.(s) *. sc
  done

(* ------------------------------------------------------------------ *)
(* Program execution                                                  *)

(* Per-program kernel plans, memoized on the physical program value —
   sparse replay is per shot, lowering to [Program.kernel] is once.
   Parallel shot workers share programs, so the memo is lock-guarded
   (unlike Backend's cache, which only the main domain touches). *)
module Plans = Ephemeron.K1.Make (struct
  type t = Program.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let plans : Program.kernel array Plans.t = Plans.create 32
let plans_lock = Mutex.create ()

let plan_of_program p =
  Mutex.lock plans_lock;
  let k =
    match Plans.find_opt plans p with
    | Some k -> k
    | None ->
        let k = Program.kernels p in
        Plans.add plans p k;
        k
  in
  Mutex.unlock plans_lock;
  k

let rec exec_kernel ~random st k =
  match k with
  | Program.Kx { bit; cmask } -> kx st ~bit ~cmask
  | Program.Kh { bit; cmask } -> kh st ~bit ~cmask
  | Program.Kphase { bit; cmask; re1; im1 } -> kphase st ~bit ~cmask re1 im1
  | Program.Kdiag { bit; cmask; re0; im0; re1; im1 } ->
      kdiag st ~bit ~cmask re0 im0 re1 im1
  | Program.Ku2 { bit; cmask; m } -> ku2 st ~bit ~cmask m
  | Program.Kmeasure { qubit; bit } ->
      ignore (measure ~random:(random ()) st ~qubit ~bit)
  | Program.Kreset q -> reset ~random:(random ()) st q
  | Program.Kcond { mask; value; body } ->
      if st.reg land mask = value then exec_kernel ~random st body

let exec ~random st program =
  let plan = plan_of_program program in
  for k = 0 to Array.length plan - 1 do
    exec_kernel ~random st (Array.unsafe_get plan k)
  done;
  if Obs.enabled () then Obs.incr ~n:(Array.length plan) "sim.sparse.ops"

let no_random () = assert false

let apply st op =
  match Program.kernel op with
  | Program.Kmeasure _ | Program.Kreset _ ->
      invalid_arg "Sparse.apply: branching op"
  | ( Program.Kx _ | Program.Kh _ | Program.Kphase _ | Program.Kdiag _
    | Program.Ku2 _ | Program.Kcond _ ) as k ->
      exec_kernel ~random:no_random st k

let run ~rng program =
  let st =
    create (Program.num_qubits program) ~num_bits:(Program.num_bits program)
  in
  exec ~random:(fun () -> Random.State.float rng 1.0) st program;
  st

(* ------------------------------------------------------------------ *)
(* Conversions (the hybrid handoff and the densify escape hatch)      *)

let to_state st =
  let d = State.create st.n ~num_bits:st.nbits in
  let v = State.raw d in
  let re = Linalg.Cvec.re v and im = Linalg.Cvec.im v in
  re.(0) <- 0.;
  for s = 0 to st.size - 1 do
    re.(st.idx.(s)) <- st.re.(s);
    im.(st.idx.(s)) <- st.im.(s)
  done;
  State.set_register d st.reg;
  d

let of_state d =
  let st = create (State.num_qubits d) ~num_bits:(State.num_bits d) in
  st.size <- 0;
  Hashtbl.reset st.tbl;
  let v = State.raw d in
  let re = Linalg.Cvec.re v and im = Linalg.Cvec.im v in
  for k = 0 to Array.length re - 1 do
    if re.(k) <> 0. || im.(k) <> 0. then add_entry st k re.(k) im.(k)
  done;
  st.reg <- State.register d;
  st

let probabilities st =
  if st.n > State.max_qubits then
    raise
      (State.Dense_cap_exceeded
         { qubits = st.n; max_qubits = State.max_qubits });
  let ps = Array.make (1 lsl st.n) 0. in
  for s = 0 to st.size - 1 do
    let r = st.re.(s) and x = st.im.(s) in
    ps.(st.idx.(s)) <- (r *. r) +. (x *. x)
  done;
  ps

let nonzero_probabilities st =
  let acc = ref [] in
  for s = 0 to st.size - 1 do
    let r = st.re.(s) and x = st.im.(s) in
    let p = (r *. r) +. (x *. x) in
    if p > 0. then acc := (st.idx.(s), p) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> compare a b) !acc

(* ------------------------------------------------------------------ *)

module Sparse_engine : Engine.S with type state = t = struct
  type state = t

  let name = "sparse"
  let max_qubits = max_qubits
  let create = create
  let copy = copy
  let num_qubits = num_qubits
  let num_bits = num_bits
  let register = register
  let set_register = set_register
  let set_bit = set_bit
  let get_bit = get_bit
  let nonzero = nnz
  let norm2 = norm2
  let amplitude = amplitude
  let prob_one = prob_one
  let apply = apply
  let apply_gate = apply_gate
  let apply_kraus1 = apply_kraus1
  let project = project
  let flip = flip
  let measure = measure
  let reset = reset
  let exec = exec
  let run = run
  let probabilities = probabilities
  let nonzero_probabilities = nonzero_probabilities
end
