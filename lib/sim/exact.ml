open Circuit

type leaf = {
  probability : float;
  register : int;
  state : Statevector.t;
}

let default_prune = 1e-12

(* Depth-first enumeration over the compiled op array ([Program]):
   unitaries and conditioned gates act in place through the fused
   kernels; measure and reset ops fork into the outcomes with
   non-negligible Born probability. *)
let leaves ?(prune = default_prune) c =
  if not (prune >= 0.) then invalid_arg "Exact.leaves: negative prune threshold";
  let prune_threshold = prune in
  let program = Program.compile c in
  let len = Program.length program in
  let n = Circ.num_qubits c in
  let acc = ref [] in
  let rec go st prob k =
    if prob > prune_threshold then
      if k = len then begin
        Obs.incr "sim.exact.leaves";
        acc :=
          { probability = prob; register = Statevector.register st; state = st }
          :: !acc
      end
      else step st prob (Program.get program k) (k + 1)
  and step st prob op rest =
    match Program.view ~n op with
    | Program.Unitary _ | Program.Conditional _ ->
        Program.apply st op;
        go st prob rest
    | Program.Measurement { qubit; bit } ->
        fork st prob qubit rest ~on_branch:(fun st' outcome ->
            Statevector.set_bit st' bit outcome)
    | Program.Reset q ->
        fork st prob q rest ~on_branch:(fun st' outcome ->
            if outcome then State.flip st' q)
  and fork st prob qubit rest ~on_branch =
    let p1 = Statevector.prob_one st qubit in
    let branch outcome p st' =
      if p *. prob > prune_threshold then begin
        ignore (Statevector.project st' qubit outcome);
        on_branch st' outcome;
        go st' (prob *. p) rest
      end
    in
    (* reuse [st] for the second branch to halve copying *)
    if p1 *. prob > prune_threshold && (1. -. p1) *. prob > prune_threshold
    then begin
      branch false (1. -. p1) (Statevector.copy st);
      branch true p1 st
    end
    else if p1 *. prob > prune_threshold then branch true p1 st
    else branch false (1. -. p1) st
  in
  let st0 = Program.fresh_state program in
  Obs.with_span "exact.enumerate"
    ~attrs:[ ("qubits", string_of_int (Circ.num_qubits c)) ]
    (fun () -> go st0 1.0 0);
  List.rev !acc

let register_distribution ?prune c =
  Dist.create ~width:(Circ.num_bits c)
    (List.map (fun l -> (l.register, l.probability)) (leaves ?prune c))

let plan_distribution ?prune ~plan c =
  register_distribution ?prune (Measurement_plan.instrument plan c)

let measured_distribution ?prune ~measures c =
  plan_distribution ?prune ~plan:(Measurement_plan.of_pairs measures) c

let measure_all_distribution ?prune c =
  plan_distribution ?prune ~plan:Measurement_plan.measure_all c
