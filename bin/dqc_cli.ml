(* Command-line interface to the DQC transformation library:
   regenerate the paper's tables and figure, transform individual
   benchmarks, inspect circuits, and run simulations. *)

open Cmdliner

let scheme_conv =
  let parse = function
    | "dynamic-1" | "dyn1" -> Ok Dqc.Toffoli_scheme.Dynamic_1
    | "dynamic-2" | "dyn2" -> Ok Dqc.Toffoli_scheme.Dynamic_2
    | "dynamic-2-fresh" -> Ok (Dqc.Toffoli_scheme.Dynamic_2_shared `Fresh)
    | "dynamic-2-global" -> Ok (Dqc.Toffoli_scheme.Dynamic_2_shared `Global)
    | "direct-mct" | "mct" -> Ok Dqc.Toffoli_scheme.Direct_mct
    | s -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
  in
  let print fmt s =
    Format.pp_print_string fmt (Dqc.Toffoli_scheme.to_string s)
  in
  Arg.conv (parse, print)

let mode_conv =
  let parse = function
    | "algorithm1" -> Ok `Algorithm1
    | "sound" -> Ok `Sound
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S" s))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with `Algorithm1 -> "algorithm1" | `Sound -> "sound")
  in
  Arg.conv (parse, print)

(* Sized oracle families beyond the fixed suites: AND_9, NAND_6, OR_4,
   MAJ_7, ... generated on demand (arity capped by Mct_bench). *)
let generated_oracle name =
  let sized prefix =
    let pl = String.length prefix in
    if String.length name > pl && String.sub name 0 pl = prefix then
      int_of_string_opt (String.sub name pl (String.length name - pl))
    else None
  in
  let try_make make n = try Some (make n) with Invalid_argument _ -> None in
  List.find_map
    (fun (prefix, make) ->
      Option.bind (sized prefix) (try_make make))
    [
      ("AND_", Algorithms.Mct_bench.and_n);
      ("NAND_", Algorithms.Mct_bench.nand_n);
      ("OR_", Algorithms.Mct_bench.or_n);
      ("MAJ_", Algorithms.Mct_bench.majority_n);
      ("XOR_", Algorithms.Mct_bench.xor_n);
    ]

let find_oracle name =
  match Algorithms.Dj_toffoli.oracle_by_name name with
  | Some o -> Some o
  | None -> (
      match Algorithms.Dj.oracle_by_name name with
      | Some o -> Some o
      | None -> (
          match
            List.find_opt
              (fun (o : Algorithms.Oracle.t) -> o.name = name)
              Algorithms.Mct_bench.suite
          with
          | Some o -> Some o
          | None -> generated_oracle name))

(* GROVER_3, QPE_4, SIMON_110, ADDER_2, ... — measured algorithm
   circuits, the subjects of the qubit-reuse pass *)
let algorithm_circuit name =
  let suffix prefix =
    let pl = String.length prefix in
    if String.length name > pl && String.sub name 0 pl = prefix then
      Some (String.sub name pl (String.length name - pl))
    else None
  in
  let sized prefix = Option.bind (suffix prefix) int_of_string_opt in
  let try_make make = try Some (make ()) with Invalid_argument _ -> None in
  match sized "GROVER_" with
  | Some n ->
      try_make (fun () ->
          Algorithms.Grover.measured ~n ~marked:(min 5 ((1 lsl n) - 1)))
  | None -> (
      match sized "QPE_" with
      | Some bits ->
          try_make (fun () -> Algorithms.Qpe.kitaev ~bits ~phase:(3. /. 8.))
      | None -> (
          match sized "ADDER_" with
          | Some n -> try_make (fun () -> Algorithms.Arithmetic.measured n)
          | None -> (
              match sized "XORA_" with
              | Some n ->
                  try_make (fun () -> Algorithms.Mct_bench.adaptive_parity n)
              | None -> (
                  match suffix "SIMON_" with
                  | Some secret ->
                      try_make (fun () ->
                          Algorithms.Simon.measured_circuit secret)
                  | None -> None))))

let benchmark_circuit name =
  if String.length name > 3 && String.sub name 0 3 = "BV_" then
    Some (Algorithms.Bv.circuit (String.sub name 3 (String.length name - 3)))
  else
    match algorithm_circuit name with
    | Some c -> Some c
    | None -> Option.map Algorithms.Dj.circuit (find_oracle name)

(* ------------------------------------------------------------------ *)
(* tables / fig7 / equivalence                                        *)

let tables_cmd =
  let run () =
    print_string (Report.Experiments.table1_report ());
    print_newline ();
    print_string (Report.Experiments.table2_report ())
  in
  Cmd.v (Cmd.info "tables" ~doc:"Regenerate the paper's Table I and Table II")
    Term.(const run $ const ())

let fig7_cmd =
  let shots =
    Arg.(value & opt int 1024 & info [ "shots" ] ~doc:"Shots per benchmark")
  in
  let seed = Arg.(value & opt int 0xF1607 & info [ "seed" ] ~doc:"RNG seed") in
  let run shots seed =
    print_string (Report.Experiments.fig7_report ~shots ~seed ())
  in
  Cmd.v
    (Cmd.info "fig7"
       ~doc:"Regenerate Fig 7 (computational accuracy of the two schemes)")
    Term.(const run $ shots $ seed)

let mct_cmd =
  let run () = print_string (Report.Experiments.mct_report ()) in
  Cmd.v
    (Cmd.info "mct"
       ~doc:
         "Run the future-work experiment: dynamic multiple-control Toffoli \
          realizations")
    Term.(const run $ const ())

let sparsity_cmd =
  let run () = print_string (Report.Experiments.sparsity_report ()) in
  Cmd.v
    (Cmd.info "sparsity"
       ~doc:
         "Run the static-sparsity experiment: the relational analyzer's \
          amplitude bounds against measured dense sparsity, per benchmark \
          and scheme")
    Term.(const run $ const ())

let equivalence_cmd =
  let run () = print_string (Report.Experiments.equivalence_report ()) in
  Cmd.v
    (Cmd.info "equivalence"
       ~doc:"Check exact functional equivalence on every benchmark")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* transform                                                          *)

let benchmark_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BENCHMARK"
        ~doc:
          "Benchmark name: BV_<bits> (e.g. BV_101), a Toffoli-free DJ oracle \
           (DJ_XOR, ...) or a Toffoli-based one (AND, OR, ..., CARRY)")

let scheme_arg =
  Arg.(
    value
    & opt scheme_conv Dqc.Toffoli_scheme.Dynamic_2
    & info [ "scheme" ] ~doc:"Toffoli scheme: dynamic-1, dynamic-2, ...")

let mode_arg =
  Arg.(
    value
    & opt mode_conv `Algorithm1
    & info [ "mode" ] ~doc:"Scheduling mode: algorithm1 (paper) or sound")

let transform_cmd =
  let qasm = Arg.(value & flag & info [ "qasm" ] ~doc:"Emit OpenQASM 3") in
  let max_width =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-width" ] ~doc:"Wrap the drawing at this many columns")
  in
  let native =
    Arg.(value & flag & info [ "native" ] ~doc:"Lower to the {rz,sx,x,cx} basis")
  in
  let run name scheme mode qasm native max_width =
    match benchmark_circuit name with
    | None -> prerr_endline ("unknown benchmark: " ^ name); exit 1
    | Some c -> (
        try
          let r = Dqc.Toffoli_scheme.transform ~mode scheme c in
          let r =
            if native then
              { r with Dqc.Transform.circuit = Transpile.Basis.to_native r.circuit }
            else r
          in
          Printf.printf "traditional: %d qubits, %d gates, depth %d\n"
            (Circuit.Circ.num_qubits c)
            (Circuit.Metrics.gate_count c)
            (Circuit.Metrics.traditional_depth c);
          Printf.printf "dynamic (%s): %d qubits, %d gates, depth %d, %d conditioned, %d violations\n\n"
            (Dqc.Toffoli_scheme.to_string scheme)
            (Circuit.Circ.num_qubits r.circuit)
            (Circuit.Metrics.gate_count r.circuit)
            (Circuit.Metrics.dynamic_depth r.circuit)
            (Dqc.Transform.conditioned_count r)
            (List.length r.violations);
          if qasm then print_string (Circuit.Qasm.to_string r.circuit)
          else begin
            print_string (Circuit.Draw.to_string ?max_width r.circuit);
            print_newline ()
          end;
          Printf.printf "\nexact TV distance to traditional: %.6f\n"
            (Dqc.Equivalence.tv_distance c r)
        with
        | Dqc.Transform.Not_transformable msg ->
            Printf.printf "not transformable: %s\n" msg
        | Dqc.Interaction.Cyclic qs ->
            Printf.printf "not transformable: cyclic data-qubit interaction involving qubits %s\n"
              (String.concat ", " (List.map string_of_int qs)))
  in
  Cmd.v
    (Cmd.info "transform" ~doc:"Transform a benchmark into its DQC and draw it")
    Term.(
      const run $ benchmark_arg $ scheme_arg $ mode_arg $ qasm $ native
      $ max_width)

(* ------------------------------------------------------------------ *)
(* simulate                                                           *)

let backend_conv =
  let parse s =
    match Sim.Backend.policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown backend %S" s))
  in
  Arg.conv (parse, Sim.Backend.pp_policy)

(* Reject bad worker counts at parse time — a raw Invalid_argument from
   Sim.Parallel.run is not an acceptable CLI experience. *)
let domains_conv =
  let parse s =
    match int_of_string_opt s with
    | Some d when d >= 1 -> Ok d
    | Some d ->
        Error
          (`Msg
            (Printf.sprintf
               "--domains must be at least 1 (got %d): the shot engine needs \
                a worker to run on"
               d))
    | None -> Error (`Msg (Printf.sprintf "invalid domain count %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let domains_arg =
  Arg.(
    value
    & opt (some domains_conv) None
    & info [ "domains" ]
        ~doc:
          "Worker domains for the parallel shot engine (default: all \
           recommended cores; the histogram is seed-deterministic either \
           way)")

(* Output paths are validated at parse time: a typo'd directory should
   be one clean line before any work starts, not an uncaught Sys_error
   after a minute of simulation. *)
let out_path_conv =
  let parse path =
    if path = "" then Error (`Msg "output path is empty")
    else if Sys.file_exists path && Sys.is_directory path then
      Error (`Msg (Printf.sprintf "%s is a directory, not a writable file" path))
    else
      let dir = Filename.dirname path in
      if not (Sys.file_exists dir) then
        Error
          (`Msg
            (Printf.sprintf "cannot write %s: directory %s does not exist" path
               dir))
      else if not (Sys.is_directory dir) then
        Error
          (`Msg
            (Printf.sprintf "cannot write %s: %s is not a directory" path dir))
      else Ok path
  in
  Arg.conv (parse, Format.pp_print_string)

let trace_arg =
  Arg.(
    value
    & opt (some out_path_conv) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file of every pipeline/backend \
           span (open at chrome://tracing or ui.perfetto.dev)")

let metrics_arg =
  Arg.(
    value
    & opt (some out_path_conv) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the dqc.obs.metrics/2 JSON (counters, gauges, span stats, \
           percentile histograms)")

let flight_arg =
  Arg.(
    value
    & opt (some out_path_conv) None
    & info [ "flight-record" ] ~docv:"FILE"
        ~doc:
          "Arm the flight recorder and write its dqc.flight/1 event ring to \
           FILE (the pipeline also dumps there automatically if it raises)")

(* Arm the flight recorder for the duration of [f]; the same path is
   the armed dump target, so a pipeline abort mid-[f] writes the ring
   even though the on-success write below is never reached. *)
let with_flight flight f =
  match flight with
  | None -> (None, f ())
  | Some path ->
      let recorder, x =
        Fun.protect
          ~finally:(fun () -> Obs.Flight.uninstall ())
          (fun () ->
            let r = Obs.Flight.install ~dump_path:path () in
            (r, f ()))
      in
      (Some (path, recorder), x)

let export_telemetry ?trace ?metrics ?flight collector =
  Option.iter
    (fun path ->
      Obs.Chrome_trace.write ?flight:(Option.map snd flight) ~path collector;
      Printf.printf "chrome trace written to %s\n" path)
    trace;
  Option.iter
    (fun path ->
      Obs.Metrics_json.write ~path collector;
      Printf.printf "metrics written to %s\n" path)
    metrics;
  Option.iter
    (fun (path, recorder) ->
      Obs.Flight.write ~path recorder;
      Printf.printf "flight record written to %s\n" path)
    flight

let simulate_cmd =
  let shots = Arg.(value & opt int 1024 & info [ "shots" ] ~doc:"Shot count") in
  let dynamic =
    Arg.(value & flag & info [ "dynamic" ] ~doc:"Simulate the DQC instead")
  in
  let backend =
    Arg.(
      value
      & opt backend_conv Sim.Backend.Auto
      & info [ "backend" ]
          ~doc:"Execution backend: auto, dense, sparse, stabilizer or exact")
  in
  let run name scheme shots dynamic backend domains trace metrics flight =
    match benchmark_circuit name with
    | None -> prerr_endline ("unknown benchmark: " ^ name); exit 1
    | Some c -> (
        let circuit, measures =
          if dynamic then begin
            let r = Dqc.Toffoli_scheme.transform scheme c in
            let nd = List.length r.data_bit in
            ( r.circuit,
              List.mapi (fun k (_, phys) -> (phys, nd + k)) r.answer_phys )
          end
          else
            (c, List.init (Circuit.Circ.num_qubits c) (fun q -> (q, q)))
        in
        try
          let want_telemetry =
            trace <> None || metrics <> None || flight <> None
          in
          let run_once () =
            Sim.Backend.run_measured ~policy:backend ?domains ~shots ~measures
              circuit
          in
          let h =
            if want_telemetry then begin
              let recorder, (collector, h) =
                with_flight flight (fun () -> Obs.with_collector run_once)
              in
              export_telemetry ?trace ?metrics ?flight:recorder collector;
              h
            end
            else run_once ()
          in
          Format.printf "backend: %a@.%a@." Sim.Backend.pp_policy backend
            Sim.Runner.pp h
        with
        | Sim.Stabilizer.Unsupported msg ->
            prerr_endline msg;
            exit 1
        | Invalid_argument msg -> prerr_endline msg; exit 1)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run shots on a benchmark (traditional or DQC)")
    Term.(
      const run $ benchmark_arg $ scheme_arg $ shots $ dynamic $ backend
      $ domains_arg $ trace_arg $ metrics_arg $ flight_arg)

(* ------------------------------------------------------------------ *)
(* stats                                                              *)

let stats_cmd =
  let bench =
    Arg.(
      value
      & pos 0 string "AND_9"
      & info [] ~docv:"BENCHMARK"
          ~doc:
            "Benchmark to profile (default AND_9 — the 10-qubit DJ \
             acceptance workload; see transform for the name grammar)")
  in
  let shots = Arg.(value & opt int 1024 & info [ "shots" ] ~doc:"Shot count") in
  let seed =
    Arg.(
      value
      & opt int Sim.Runner.default_seed
      & info [ "seed" ] ~doc:"RNG seed")
  in
  let backend =
    Arg.(
      value
      & opt backend_conv Sim.Backend.Auto
      & info [ "backend" ]
          ~doc:"Execution backend: auto, dense, sparse, stabilizer or exact")
  in
  let no_check =
    Arg.(
      value & flag
      & info [ "no-check" ] ~doc:"Skip the equivalence-check pipeline stage")
  in
  let passes =
    Arg.(
      value
      & opt (some string) None
      & info [ "passes" ]
          ~doc:
            "Override the pass schedule with a comma-separated list of \
             registered pass names (see the passes subcommand)")
  in
  let run name scheme mode shots seed backend domains no_check passes trace
      metrics flight =
    match benchmark_circuit name with
    | None -> prerr_endline ("unknown benchmark: " ^ name); exit 1
    | Some c -> (
        try
          let module O = Dqc.Pipeline.Options in
          let options =
            O.default |> O.with_scheme scheme |> O.with_mode mode
            |> O.with_backend_policy backend
            |> O.with_check_equivalence (not no_check)
          in
          let options =
            match passes with
            | None -> options
            | Some names ->
                O.with_passes (String.split_on_char ',' names) options
          in
          let recorder, (collector, (out, h)) =
            with_flight flight (fun () ->
                Obs.with_collector (fun () ->
                    let out = Dqc.Pipeline.compile ~options c in
                    let nd = List.length out.data_bit in
                    let measures =
                      List.mapi
                        (fun k (_, phys) -> (phys, nd + k))
                        out.answer_phys
                    in
                    let h =
                      Sim.Backend.run_measured ~policy:backend ~seed ?domains
                        ~shots ~measures out.circuit
                    in
                    (out, h)))
          in
          Printf.printf
            "workload: %s (%s), %d shots — compiled to %d qubits, %d gates, \
             depth %d\n"
            name
            (Dqc.Toffoli_scheme.to_string scheme)
            shots out.qubits out.gates out.depth;
          (match out.tv with
          | Some tv ->
              Printf.printf "equivalence: %s TV distance %.6f\n"
                (if out.tv_sampled then "sampled" else "exact")
                tv
          | None -> print_string "equivalence: check skipped\n");
          Printf.printf "histogram: %d shots over %d distinct outcomes\n\n"
            (Sim.Runner.shots h)
            (List.length (Sim.Runner.to_list h));
          print_string (Report.Obs_report.summary collector);
          export_telemetry ?trace ?metrics ?flight:recorder collector
        with
        | Sim.Stabilizer.Unsupported msg -> prerr_endline msg; exit 1
        | Dqc.Transform.Not_transformable msg ->
            prerr_endline ("not transformable: " ^ msg);
            exit 1
        | Dqc.Pipeline.Invalid_options msg ->
            prerr_endline ("invalid options: " ^ msg);
            exit 1
        | Invalid_argument msg -> prerr_endline msg; exit 1)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Compile and run a benchmark with telemetry on: print the \
          per-stage/per-engine breakdown, optionally exporting the Chrome \
          trace and metrics JSON")
    Term.(
      const run $ bench $ scheme_arg $ mode_arg $ shots $ seed $ backend
      $ domains_arg $ no_check $ passes $ trace_arg $ metrics_arg $ flight_arg)

(* ------------------------------------------------------------------ *)
(* profile                                                            *)

let profile_cmd =
  let bench =
    Arg.(
      value
      & pos 0 string "AND_9"
      & info [] ~docv:"BENCHMARK"
          ~doc:"Benchmark to profile repeatedly (see transform)")
  in
  let shots =
    Arg.(value & opt int 256 & info [ "shots" ] ~doc:"Shots per repetition")
  in
  let repeat =
    Arg.(
      value & opt int 20
      & info [ "repeat" ] ~docv:"N"
          ~doc:"Compile-and-run repetitions to accumulate distributions over")
  in
  let top =
    Arg.(
      value & opt int 8
      & info [ "top" ] ~docv:"K" ~doc:"Hottest spans to list")
  in
  let seed =
    Arg.(
      value
      & opt int Sim.Runner.default_seed
      & info [ "seed" ] ~doc:"Base RNG seed (repetition k runs with seed+k)")
  in
  let backend =
    Arg.(
      value
      & opt backend_conv Sim.Backend.Auto
      & info [ "backend" ]
          ~doc:"Execution backend: auto, dense, sparse, stabilizer or exact")
  in
  let run name scheme mode shots repeat top seed backend domains trace metrics
      flight =
    if repeat < 1 then begin
      prerr_endline "--repeat must be at least 1";
      exit 1
    end;
    match benchmark_circuit name with
    | None -> prerr_endline ("unknown benchmark: " ^ name); exit 1
    | Some c -> (
        try
          let module O = Dqc.Pipeline.Options in
          let options =
            O.default |> O.with_scheme scheme |> O.with_mode mode
            |> O.with_backend_policy backend
            |> O.with_check_equivalence false
          in
          let recorder, (collector, ()) =
            with_flight flight (fun () ->
                Obs.with_collector (fun () ->
                    for k = 0 to repeat - 1 do
                      let out = Dqc.Pipeline.compile ~options c in
                      let nd = List.length out.data_bit in
                      let measures =
                        List.mapi
                          (fun i (_, phys) -> (phys, nd + i))
                          out.answer_phys
                      in
                      ignore
                        (Sim.Backend.run_measured ~policy:backend
                           ~seed:(seed + k) ?domains ~shots ~measures
                           out.circuit)
                    done))
          in
          Printf.printf
            "profile: %s (%s), %d repetitions x %d shots\n\n" name
            (Dqc.Toffoli_scheme.to_string scheme)
            repeat shots;
          print_string (Report.Obs_report.profile_summary ~top collector);
          export_telemetry ?trace ?metrics ?flight:recorder collector
        with
        | Sim.Stabilizer.Unsupported msg -> prerr_endline msg; exit 1
        | Dqc.Transform.Not_transformable msg ->
            prerr_endline ("not transformable: " ^ msg);
            exit 1
        | Invalid_argument msg -> prerr_endline msg; exit 1)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a benchmark N times with telemetry on and print the latency \
          distributions (p50/p90/p99/p99.9 per pass, backend, shot and \
          kernel-op class) plus the top-K hottest spans")
    Term.(
      const run $ bench $ scheme_arg $ mode_arg $ shots $ repeat $ top $ seed
      $ backend $ domains_arg $ trace_arg $ metrics_arg $ flight_arg)

(* ------------------------------------------------------------------ *)
(* analyze                                                            *)

let analyze_cmd =
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~doc:"Analyze an OpenQASM 3 file instead of a benchmark")
  in
  let bench =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name (see transform)")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the dqc.analyze/1 JSON resource summary instead of text")
  in
  let run bench file scheme json =
    let subject =
      match (bench, file) with
      | _, Some path ->
          let ic = open_in path in
          let len = in_channel_length ic in
          let src = really_input_string ic len in
          close_in ic;
          Some (Filename.basename path, Circuit.Qasm.parse src)
      | Some name, None ->
          Option.map
            (fun c -> (name, Dqc.Toffoli_scheme.prepare scheme c))
            (benchmark_circuit name)
      | None, None -> None
    in
    match subject with
    | None ->
        prerr_endline "give a benchmark name or --file <qasm>";
        exit 1
    | Some (name, c) ->
        let summary = Lint.Resource.analyze c in
        if json then
          print_endline
            (Obs.Json.to_string (Lint.Resource.to_json ~name summary))
        else begin
          let mct = scheme = Dqc.Toffoli_scheme.Direct_mct in
          print_endline (Dqc.Analysis.to_string (Dqc.Analysis.analyze ~mct c));
          print_newline ();
          print_endline (Lint.Resource.to_string summary);
          let selected =
            match Sim.Backend.select ~shots:1024 c with
            | `Stabilizer -> "stabilizer"
            | `Exact -> "exact"
            | `Dense -> "dense"
            | `Sparse -> "sparse"
            | `Hybrid -> "hybrid"
          in
          Printf.printf "auto backend (1024 shots): %s\n" selected;
          let plan = Sim.Backend.segment_plan c in
          Printf.printf "segment engine plan: %s\n"
            (Sim.Backend.segment_plan_string plan)
        end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Classify a circuit's 2-qubit dynamizability and print the \
          per-segment static sparsity/resource summary (--json for \
          dqc.analyze/1)")
    Term.(const run $ bench $ file $ scheme_arg $ json)

(* ------------------------------------------------------------------ *)
(* lint                                                               *)

let lint_cmd =
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~doc:"Lint an OpenQASM 3 file instead of a benchmark")
  in
  let bench =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name (see transform)")
  in
  let slots =
    Arg.(
      value & opt int 1
      & info [ "slots" ] ~doc:"Physical data qubits for the compiled output")
  in
  let traditional =
    Arg.(
      value & flag
      & info [ "traditional" ]
          ~doc:"Lint the traditional circuit instead of its compilation")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the dqc.lint/1 JSON report")
  in
  let sarif =
    Arg.(
      value & flag
      & info [ "sarif" ] ~doc:"Emit the report as a SARIF 2.1.0 document")
  in
  let dqc =
    Arg.(
      value & flag
      & info [ "dqc" ]
          ~doc:
            "Also run the DQC invariant passes on a --file or --traditional \
             subject (always on for compiled benchmarks)")
  in
  let run bench file scheme mode slots traditional json sarif dqc =
    let general_passes () =
      if dqc then Lint.dqc_passes ~max_live:slots () else Lint.default_passes
    in
    let subject =
      match (bench, file) with
      | _, Some path ->
          let ic = open_in path in
          let len = in_channel_length ic in
          let src = really_input_string ic len in
          close_in ic;
          Some (Filename.basename path, Circuit.Qasm.parse src, general_passes ())
      | Some name, None -> (
          match benchmark_circuit name with
          | None ->
              prerr_endline ("unknown benchmark: " ^ name);
              exit 1
          | Some c ->
              if traditional then Some (name, c, general_passes ())
              else
                let module O = Dqc.Pipeline.Options in
                let options =
                  try
                    O.default |> O.with_scheme scheme |> O.with_mode mode
                    |> O.with_slots slots |> O.with_check_equivalence false
                    |> O.with_lint false
                  with Dqc.Pipeline.Invalid_options msg ->
                    prerr_endline ("invalid options: " ^ msg);
                    exit 1
                in
                let out = Dqc.Pipeline.compile ~options c in
                Some
                  ( Printf.sprintf "%s[%s]" name
                      (Dqc.Toffoli_scheme.to_string scheme),
                    out.circuit,
                    Lint.dqc_passes ~max_live:slots () ))
      | None, None -> None
    in
    match subject with
    | None ->
        prerr_endline "give a benchmark name or --file <qasm>";
        exit 1
    | Some (name, circuit, passes) ->
        let report = Lint.run ~passes circuit in
        if sarif then
          print_endline (Obs.Json.to_string (Lint.to_sarif ~name report))
        else if json then
          print_endline (Obs.Json.to_string (Lint.to_json ~name report))
        else begin
          Printf.printf "%s: %s\n" name (Lint.summary report);
          if report.Lint.diagnostics <> [] then
            print_string (Lint.report_to_string report)
        end;
        exit (if Lint.clean report then 0 else 1)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static circuit linter (abstract-interpretation passes + \
          DQC invariants); non-zero exit on error diagnostics")
    Term.(
      const run $ bench $ file $ scheme_arg $ mode_arg $ slots $ traditional
      $ json $ sarif $ dqc)

(* ------------------------------------------------------------------ *)
(* verify                                                             *)

(* The verify path drives prepare/transform directly (no pipeline), so
   mirror the pass manager's pass.end snapshots in the flight ring —
   a --corrupt dump then shows the certifier verdict preceded by the
   circuit shapes it judged. *)
let verify_flight_snapshot pass c =
  if Obs.Flight.enabled () then
    Obs.Flight.record ~kind:"pass.end"
      [
        ("pass", Obs.Json.String pass);
        ("pass_kind", Obs.Json.String "transform");
        ("qubits", Obs.Json.Int (Circuit.Circ.num_qubits c));
        ("gates", Obs.Json.Int (Circuit.Metrics.gate_count c));
        ("depth", Obs.Json.Int (Circuit.Metrics.dynamic_depth c));
      ]

let verify_cmd =
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~doc:"Certify an OpenQASM 3 file instead of a benchmark")
  in
  let bench =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name (see transform)")
  in
  let json =
    Arg.(
      value & flag & info [ "json" ] ~doc:"Emit the dqc.verify/1 JSON verdict")
  in
  let corrupt =
    Arg.(
      value & flag
      & info [ "corrupt" ]
          ~doc:
            "Fault-inject the compiled circuit (flip the qubit under its \
             first measurement) before certifying — demonstrates Refuted")
  in
  let run bench file scheme mode json corrupt flight =
    let subject =
      match (bench, file) with
      | _, Some path ->
          let ic = open_in path in
          let len = in_channel_length ic in
          let src = really_input_string ic len in
          close_in ic;
          Some (Filename.basename path, Circuit.Qasm.parse src)
      | Some name, None -> (
          match benchmark_circuit name with
          | None ->
              prerr_endline ("unknown benchmark: " ^ name);
              exit 1
          | Some c -> Some (name, c))
      | None, None -> None
    in
    match subject with
    | None ->
        prerr_endline "give a benchmark name or --file <qasm>";
        exit 1
    | Some (name, traditional) -> (
        try
          let recorder, (r, verdict) =
            with_flight flight (fun () ->
                let prepared = Dqc.Toffoli_scheme.prepare scheme traditional in
                verify_flight_snapshot "prepare" prepared;
                let mct = scheme = Dqc.Toffoli_scheme.Direct_mct in
                let r = Dqc.Transform.transform ~mode ~mct prepared in
                verify_flight_snapshot "transform" r.Dqc.Transform.circuit;
                let r =
                  if corrupt then begin
                    let r =
                      {
                        r with
                        Dqc.Transform.circuit = Dqc.Certifier.corrupt r.circuit;
                      }
                    in
                    verify_flight_snapshot "corrupt" r.Dqc.Transform.circuit;
                    r
                  end
                  else r
                in
                (r, Dqc.Certifier.certify traditional r))
          in
          Option.iter
            (fun (path, rec_) ->
              Obs.Flight.write ~path rec_;
              (* stderr: --json owns stdout *)
              Printf.eprintf "flight record written to %s\n" path)
            recorder;
          let module C = Verify.Certify in
          let cex_json (cex : C.counterexample) =
            Obs.Json.Obj
              [
                ( "bits",
                  Obs.Json.List
                    (List.map
                       (fun (b, v) ->
                         Obs.Json.Obj
                           [ ("bit", Obs.Json.Int b); ("value", Obs.Json.Bool v) ])
                       cex.C.bits) );
                ("p_left", Obs.Json.Float cex.C.p_left);
                ("p_right", Obs.Json.Float cex.C.p_right);
                ("detail", Obs.Json.String cex.C.detail);
              ]
          in
          if json then
            print_endline
              (Obs.Json.to_string
                 (Obs.Json.Obj
                    ([
                       ("schema", Obs.Json.String "dqc.verify/1");
                       ("name", Obs.Json.String name);
                       ( "scheme",
                         Obs.Json.String (Dqc.Toffoli_scheme.to_string scheme)
                       );
                       ( "mode",
                         Obs.Json.String
                           (match mode with
                           | `Algorithm1 -> "algorithm1"
                           | `Sound -> "sound") );
                       ("corrupted", Obs.Json.Bool corrupt);
                       ( "violations",
                         Obs.Json.Int (List.length r.Dqc.Transform.violations)
                       );
                       ( "verdict",
                         Obs.Json.String
                           (match verdict with
                           | C.Proved _ -> "proved"
                           | C.Refuted _ -> "refuted"
                           | C.Unknown _ -> "unknown") );
                     ]
                    @ (match verdict with
                      | C.Proved p ->
                          [
                            ( "scope",
                              Obs.Json.String (C.scope_to_string p.C.scope) );
                            ("path_vars", Obs.Json.Int p.C.path_vars);
                            ("reductions", Obs.Json.Int p.C.reductions);
                          ]
                          @
                          (match p.C.schedule_cex with
                          | Some cex -> [ ("schedule_cex", cex_json cex) ]
                          | None -> [])
                      | C.Refuted cex -> [ ("counterexample", cex_json cex) ]
                      | C.Unknown why ->
                          [ ("reason", Obs.Json.String why) ]))))
          else
            Printf.printf "%s (%s%s): %s\n" name
              (Dqc.Toffoli_scheme.to_string scheme)
              (if corrupt then ", corrupted" else "")
              (C.verdict_to_string verdict);
          exit
            (match verdict with
            | C.Proved _ -> 0
            | C.Unknown _ -> 1
            | C.Refuted _ -> 2)
        with
        | Dqc.Transform.Not_transformable msg ->
            prerr_endline ("not transformable: " ^ msg);
            exit 1
        | Invalid_argument msg ->
            prerr_endline msg;
            exit 1)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Symbolically certify traditional = DQC equivalence (no \
          simulation); exit 0 proved, 1 unknown, 2 refuted")
    Term.(
      const run $ bench $ file $ scheme_arg $ mode_arg $ json $ corrupt
      $ flight_arg)

(* ------------------------------------------------------------------ *)
(* qpe                                                                *)

let qpe_cmd =
  let phase =
    Arg.(value & opt float 0.3 & info [ "phase" ] ~doc:"Phase to estimate")
  in
  let bits =
    Arg.(value & opt int 4 & info [ "bits" ] ~doc:"Precision bits")
  in
  let run phase bits =
    let dt = Algorithms.Qpe.distribution `Traditional ~bits ~phase in
    let di = Algorithms.Qpe.distribution `Iterative ~bits ~phase in
    let best = Algorithms.Qpe.best_estimate ~bits ~phase in
    Printf.printf
      "phase %.6f, %d bits: best estimate %d (%.6f)\n\
       P[best]: traditional %.4f, iterative (2 qubits) %.4f, TV %.2e\n"
      phase bits best
      (float_of_int best /. float_of_int (1 lsl bits))
      (Sim.Dist.prob dt best) (Sim.Dist.prob di best)
      (Sim.Dist.tv_distance dt di);
    Circuit.Draw.print (Algorithms.Qpe.iterative ~bits ~phase)
  in
  Cmd.v
    (Cmd.info "qpe" ~doc:"Run iterative (2-qubit) quantum phase estimation")
    Term.(const run $ phase $ bits)

(* ------------------------------------------------------------------ *)
(* slots                                                              *)

let slots_cmd =
  let run name scheme =
    match benchmark_circuit name with
    | None -> prerr_endline ("unknown benchmark: " ^ name); exit 1
    | Some c ->
        let prepared = Dqc.Toffoli_scheme.prepare scheme c in
        (match Dqc.Multi_transform.min_exact_slots prepared with
        | Some k ->
            let m =
              Dqc.Multi_transform.transform ~mode:`Sound ~slots:k prepared
            in
            Printf.printf
              "%s (%s): provably exact from %d data slot(s) — %d qubits total \
               (traditional: %d), %d gates\n"
              name
              (Dqc.Toffoli_scheme.to_string scheme)
              k
              (Circuit.Circ.num_qubits m.circuit)
              (Circuit.Circ.num_qubits c)
              (Circuit.Metrics.gate_count m.circuit)
        | None -> Printf.printf "%s: no certified width found\n" name)
  in
  Cmd.v
    (Cmd.info "slots"
       ~doc:"Find the smallest multi-slot width with a provably exact DQC")
    Term.(const run $ benchmark_arg $ scheme_arg)

(* ------------------------------------------------------------------ *)
(* passes                                                             *)

let passes_cmd =
  let run () =
    List.iter
      (fun (p : Dqc.Pass.t) ->
        Printf.printf "%-14s %-10s %s\n" p.Dqc.Pass.name
          (Dqc.Pass.kind_to_string p.Dqc.Pass.kind)
          p.Dqc.Pass.doc)
      (Dqc.Pipeline.registered_passes ())
  in
  Cmd.v
    (Cmd.info "passes"
       ~doc:"List the registered compilation passes (name, kind, summary)")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* reuse                                                              *)

let reuse_cmd =
  let bench =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"BENCHMARK"
          ~doc:
            "Measured benchmark to rewire (GROVER_<n>, QPE_<bits>, \
             SIMON_<secret>, ADDER_<n>, or any transform benchmark). \
             Without it, run the whole reuse suite")
  in
  let gate =
    Arg.(
      value & flag
      & info [ "gate" ]
          ~doc:
            "CI gate: run the suite and exit non-zero unless every \
             rewiring is certified and Grover/QPE/Simon all save qubits")
  in
  let run bench scheme gate =
    match bench with
    | Some name -> (
        match benchmark_circuit name with
        | None -> prerr_endline ("unknown benchmark: " ^ name); exit 1
        | Some c ->
            let s =
              match algorithm_circuit name with
              | Some _ -> scheme
              | None -> Dqc.Toffoli_scheme.Traditional
            in
            let options =
              Dqc.Pipeline.Options.(
                default |> with_reuse true |> with_scheme s)
            in
            let out = Dqc.Pipeline.compile ~options c in
            (match out.Dqc.Pipeline.reuse with
            | Some r -> print_endline (Dqc.Reuse.report_to_string r)
            | None -> ());
            List.iter
              (fun (k, v) -> Printf.printf "%s: %s\n" k v)
              out.Dqc.Pipeline.notes;
            exit (if out.Dqc.Pipeline.certified then 0 else 1))
    | None ->
        let rows = Report.Experiments.reuse_rows () in
        print_string (Report.Experiments.reuse_report ());
        if gate then begin
          let bad_certify =
            List.filter
              (fun (r : Report.Experiments.reuse_row) ->
                r.Report.Experiments.saved > 0
                && not r.Report.Experiments.certified)
              rows
          in
          let must_save prefix =
            List.filter
              (fun (r : Report.Experiments.reuse_row) ->
                let n = r.Report.Experiments.name in
                String.length n >= String.length prefix
                && String.sub n 0 (String.length prefix) = prefix
                && r.Report.Experiments.saved = 0)
              rows
              |> List.map (fun (r : Report.Experiments.reuse_row) ->
                     r.Report.Experiments.name)
          in
          let no_savings =
            must_save "GROVER" @ must_save "QPE" @ must_save "SIMON"
          in
          if bad_certify <> [] then begin
            Printf.eprintf "reuse gate: uncertified rewiring on %s\n"
              (String.concat ", "
                 (List.map
                    (fun (r : Report.Experiments.reuse_row) ->
                      r.Report.Experiments.name)
                    bad_certify));
            exit 1
          end;
          if no_savings <> [] then begin
            Printf.eprintf "reuse gate: no qubits saved on %s\n"
              (String.concat ", " no_savings);
            exit 1
          end;
          print_endline
            "reuse gate: all rewirings certified; Grover/QPE/Simon reduced"
        end
  in
  Cmd.v
    (Cmd.info "reuse"
       ~doc:
         "Run the causal-cone qubit-reuse pass; every rewiring is proved \
          by the path-sum channel certifier")
    Term.(const run $ bench $ scheme_arg $ gate)

(* ------------------------------------------------------------------ *)
(* optimize                                                           *)

let optimize_cmd =
  let bench =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"BENCHMARK"
          ~doc:
            "Optimize one benchmark (BV_<bits>, a DJ oracle, or a measured \
             algorithm circuit like GROVER_3).  Without it the whole corpus \
             is run.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the dqc.optimize/1 JSON report")
  in
  let row_json (r : Report.Experiments.optimize_row) =
    Obs.Json.Obj
      [
        ("benchmark", Obs.Json.String r.Report.Experiments.name);
        ("scheme", Obs.Json.String r.Report.Experiments.scheme);
        ("gates_before", Obs.Json.Int r.Report.Experiments.gates_before);
        ("gates_after", Obs.Json.Int r.Report.Experiments.gates_after);
        ("depth_before", Obs.Json.Int r.Report.Experiments.depth_before);
        ("depth_after", Obs.Json.Int r.Report.Experiments.depth_after);
        ("measures_folded", Obs.Json.Int r.Report.Experiments.folded);
        ("resets_removed", Obs.Json.Int r.Report.Experiments.resets_removed);
        ("uncomputes_removed", Obs.Json.Int r.Report.Experiments.uncomputes);
        ("sweeps", Obs.Json.Int r.Report.Experiments.sweeps);
        ("proved", Obs.Json.Bool r.Report.Experiments.proved);
      ]
  in
  let run bench scheme json =
    let rows =
      match bench with
      | Some name -> (
          match benchmark_circuit name with
          | None ->
              prerr_endline ("unknown benchmark: " ^ name);
              exit 1
          | Some c ->
              let scheme_label, circuit =
                match algorithm_circuit name with
                | Some _ -> ("measured", c)
                | None ->
                    let r = Dqc.Toffoli_scheme.transform scheme c in
                    ( Dqc.Toffoli_scheme.to_string scheme,
                      Decompose.Pass.expand_cv r.Dqc.Transform.circuit )
              in
              [
                Report.Experiments.optimize_entry ~name ~scheme:scheme_label
                  circuit;
              ])
      | None -> Report.Experiments.optimize_rows ()
    in
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ("schema", Obs.Json.String "dqc.optimize/1");
                ("rows", Obs.Json.List (List.map row_json rows));
              ]))
    else begin
      (match bench with
      | Some _ ->
          List.iter
            (fun (r : Report.Experiments.optimize_row) ->
              Printf.printf
                "%s (%s): gates %d -> %d, depth %d -> %d\n\
                 measures folded: %d, resets removed: %d, uncomputes \
                 cancelled: %d (%d sweep%s, %s)\n"
                r.Report.Experiments.name r.Report.Experiments.scheme
                r.Report.Experiments.gates_before
                r.Report.Experiments.gates_after
                r.Report.Experiments.depth_before
                r.Report.Experiments.depth_after r.Report.Experiments.folded
                r.Report.Experiments.resets_removed
                r.Report.Experiments.uncomputes r.Report.Experiments.sweeps
                (if r.Report.Experiments.sweeps = 1 then "" else "s")
                (if r.Report.Experiments.proved then "all rewrites proved"
                 else "some sweep reverted"))
            rows
      | None -> print_string (Report.Experiments.optimize_report ()));
      flush stdout
    end;
    exit
      (if
         List.for_all
           (fun (r : Report.Experiments.optimize_row) ->
             r.Report.Experiments.proved)
           rows
       then 0
       else 1)
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:
         "Run the certified optimizer (constant-measurement folding, \
          observability dead-code elimination, affine-fact rewrites); every \
          accepted rewrite is proved by the path-sum channel certifier")
    Term.(const run $ bench $ scheme_arg $ json)

(* ------------------------------------------------------------------ *)
(* simon                                                              *)

let simon_cmd =
  let secret =
    Arg.(value & opt string "1011" & info [ "secret" ] ~doc:"Hidden shift")
  in
  let run secret =
    let n = String.length secret in
    match Algorithms.Simon.recover_secret ~dynamic:true secret with
    | Some found ->
        Printf.printf
          "Simon on %d+1 qubits (traditionally %d): recovered %s (%s)\n"
          n (2 * n)
          (Sim.Bits.to_string ~width:n found)
          (if found = Sim.Bits.of_string secret then "correct" else "WRONG")
    | None -> print_endline "recovery did not converge"
  in
  Cmd.v
    (Cmd.info "simon" ~doc:"Run Simon's algorithm on the dynamic realization")
    Term.(const run $ secret)

(* ------------------------------------------------------------------ *)
(* grover                                                             *)

let grover_cmd =
  let n = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Number of qubits") in
  let marked =
    Arg.(value & opt int 5 & info [ "marked" ] ~doc:"Marked basis state")
  in
  let run n marked =
    Printf.printf "Grover n=%d marked=%d: success probability %.4f (%d iterations)\n"
      n marked
      (Algorithms.Grover.success_probability ~n ~marked)
      (Algorithms.Grover.optimal_iterations n)
  in
  Cmd.v (Cmd.info "grover" ~doc:"Run the Grover extension example")
    Term.(const run $ n $ marked)

let () =
  let info =
    Cmd.info "dqc_cli" ~version:"1.0.0"
      ~doc:"Dynamic quantum circuit transformation for Toffoli networks"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            tables_cmd;
            fig7_cmd;
            equivalence_cmd;
            mct_cmd;
            sparsity_cmd;
            transform_cmd;
            simulate_cmd;
            stats_cmd;
            profile_cmd;
            analyze_cmd;
            lint_cmd;
            verify_cmd;
            passes_cmd;
            optimize_cmd;
            reuse_cmd;
            qpe_cmd;
            simon_cmd;
            slots_cmd;
            grover_cmd;
          ]))
