.PHONY: all build test bench ci clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe -- all

# One-command gate: full build + tests + a smoke run of the
# execution-backend study (OCAMLRUNPARAM=b: backtraces on uncaught
# exceptions).
ci:
	OCAMLRUNPARAM=b dune build @runtest
	OCAMLRUNPARAM=b dune exec bench/main.exe -- backend

clean:
	dune clean
