.PHONY: all build test bench ci fmt-check trace-smoke kernel-smoke lint verify-gate reuse-gate analyze-gate opt-gate sparse-gate perf-gate perf-baseline clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe -- all

# Source hygiene: no tabs, no trailing whitespace in OCaml sources
# (ocamlformat is not available in the sealed environment, so this is
# the formatting floor CI can enforce).
fmt-check:
	@bad=$$(grep -rlnP '\t| +$$' --include='*.ml' --include='*.mli' \
	  lib bin test bench examples 2>/dev/null || true); \
	if [ -n "$$bad" ]; then \
	  echo "fmt-check: tabs or trailing whitespace in:"; echo "$$bad"; exit 1; \
	else echo "fmt-check: OK"; fi

# Telemetry smoke: run the stats subcommand with every exporter, then
# assert the trace parses as JSON and carries the pipeline + backend
# spans, the metrics document is v2 with percentile histograms, and
# the flight dump has the dqc.flight/1 shape with pass snapshots.
trace-smoke:
	OCAMLRUNPARAM=b dune exec bin/dqc_cli.exe -- stats AND --shots 256 \
	  --trace /tmp/dqc_trace.json --metrics /tmp/dqc_metrics.json \
	  --flight-record /tmp/dqc_flight.json
	python3 -c "import json; \
	t = json.load(open('/tmp/dqc_trace.json')); \
	names = {e['name'] for e in t['traceEvents'] if e.get('ph') == 'X'}; \
	assert 'pipeline.compile' in names and 'backend.run' in names, names; \
	assert any(e.get('name') == 'thread_sort_index' for e in t['traceEvents']); \
	m = json.load(open('/tmp/dqc_metrics.json')); \
	assert m['schema'] == 'dqc.obs.metrics/2', m['schema']; \
	assert m['counters']['backend.shots'] == 256, m['counters']; \
	assert m['counters']['sim.program.ops'] > 0, m['counters']; \
	h = m['histograms']; \
	assert 'backend.run' in h and 'parallel.shot' in h, sorted(h); \
	assert h['parallel.shot']['count'] == 8, h['parallel.shot']; \
	assert all(k in h['backend.run'] for k in ('p50_ns','p90_ns','p99_ns','p999_ns')); \
	f = json.load(open('/tmp/dqc_flight.json')); \
	assert f['schema'] == 'dqc.flight/1', f['schema']; \
	kinds = [e['kind'] for e in f['events']]; \
	assert 'pass.begin' in kinds and 'pass.end' in kinds and 'backend.run' in kinds, kinds; \
	print('trace-smoke: OK (%d trace events, %d flight events)' \
	  % (len(t['traceEvents']), len(f['events'])))"

# Kernel smoke: the compiled execution plans (fused specialized
# kernels, Sim.Program) must agree with the generic interpreter
# amplitude-for-amplitude on the paper's benchmark family.
kernel-smoke:
	OCAMLRUNPARAM=b dune exec bench/main.exe -- kernels

# Static lint gate: every Table II benchmark and a spread of generated
# AND_/OR_/NAND_/MAJ_<n> oracles must compile to a lint-clean dynamic
# circuit under both schemes, and the negative corpus in examples/
# must be rejected with a non-zero exit.
LINT_BENCHES = AND NAND OR NOR IMPLY_1 IMPLY_2 INHIB_1 INHIB_2 CARRY \
  AND_4 AND_6 AND_8 OR_4 OR_6 NAND_4 NAND_6 MAJ_5 MAJ_7
lint:
	@set -e; \
	dune build bin/dqc_cli.exe; \
	for b in $(LINT_BENCHES); do \
	  for s in dynamic-1 dynamic-2; do \
	    dune exec --no-build bin/dqc_cli.exe -- lint $$b --scheme $$s \
	      >/dev/null || { echo "lint: $$b [$$s] FAILED"; exit 1; }; \
	  done; \
	done; \
	echo "lint: $(words $(LINT_BENCHES)) benchmarks x 2 schemes clean"; \
	for f in examples/*.qasm; do \
	  if dune exec --no-build bin/dqc_cli.exe -- lint --file $$f \
	      >/dev/null 2>&1; then \
	    echo "lint: negative corpus $$f was NOT rejected"; exit 1; \
	  else echo "lint: negative corpus $$f rejected (non-zero exit)"; fi; \
	done

# Symbolic certification gate: every lint benchmark must be Proved
# under both dynamic schemes (exit 0), and fault injection must be
# Refuted with exit 2 — not merely "not proved".
verify-gate:
	@set -e; \
	dune build bin/dqc_cli.exe; \
	for b in $(LINT_BENCHES); do \
	  for s in dynamic-1 dynamic-2; do \
	    dune exec --no-build bin/dqc_cli.exe -- verify $$b --scheme $$s \
	      >/dev/null || { echo "verify: $$b [$$s] NOT PROVED"; exit 1; }; \
	  done; \
	done; \
	echo "verify: $(words $(LINT_BENCHES)) benchmarks x 2 schemes proved"; \
	dune exec --no-build bin/dqc_cli.exe -- verify XOR_16 --scheme dynamic-1 \
	  >/dev/null || { echo "verify: XOR_16 [dynamic-1] NOT PROVED"; exit 1; }; \
	echo "verify: XOR_16 (17 qubits) proved"; \
	code=0; dune exec --no-build bin/dqc_cli.exe -- verify DJ_XOR \
	  --scheme dynamic-1 --corrupt >/dev/null || code=$$?; \
	if [ $$code -ne 2 ]; then \
	  echo "verify: corrupted DJ_XOR exited $$code, want 2 (Refuted)"; exit 1; \
	else echo "verify: corrupted DJ_XOR refuted (exit 2)"; fi

# Qubit-reuse gate: the causal-cone reuse pass over the algorithm
# benchmark suite (Grover / Kitaev QPE / Simon / adder).  Every
# rewiring must be proved by the path-sum channel certifier — no
# sampled fallbacks — and Grover/QPE/Simon must all save qubits;
# non-zero exit otherwise.
reuse-gate:
	OCAMLRUNPARAM=b dune exec bin/dqc_cli.exe -- reuse --gate

# Static analyzer gate: differential soundness of the per-segment
# sparsity/resource summaries (random dynamic circuits replayed dense,
# nonzero counts vs the certified log2 bounds), the per-segment Auto
# backend-selection acceptance (XORA_15 -> stabilizer, counter
# witnessed in BENCH_analyze.json), and the <5% analysis overhead
# budget against pipeline compile on DJ(AND_9).
analyze-gate:
	OCAMLRUNPARAM=b dune exec bench/main.exe -- analyze-gate

# Certified-optimizer gate: the whole report corpus (Table I dynamic,
# Table II traditional/dyn1/dyn2, reuse suite) must optimize with
# every accepted rewrite Proved by the path-sum certifier, the dyn2
# family must shrink strictly, and fold/reset-removal must each fire
# somewhere.  A Refuted rewrite — the optimizer disagreeing with its
# own certificate — fails the gate immediately.
opt-gate:
	OCAMLRUNPARAM=b dune exec bench/main.exe -- opt-gate

# Sparse-engine gate: dense/sparse differential equivalence over
# random dynamic circuits, the per-segment Auto selection witness
# (sparse on the basis-sparse dyn2 AND ladder, hybrid with per-shot
# handoffs on the mixed-sparsity workload, counters in
# BENCH_sparse.json), a >= 28-qubit basis-sparse run the dense engine
# cannot allocate, and the auto-vs-forced-dense wall-clock win.
sparse-gate:
	OCAMLRUNPARAM=b dune exec bench/main.exe -- sparse-gate

# Perf regression gate: sample every shared bench workload into
# percentile histograms (interleaved rounds, see bench/main.ml) and
# compare p50/p99 against the checked-in dqc.bench/2 baseline.
# Non-zero exit on regression beyond the thresholds (10% p50, 25% p99
# with p90 corroboration).  Regenerate the baseline on a quiet machine
# with `make perf-baseline` when a slowdown is intentional.
perf-gate:
	OCAMLRUNPARAM=b dune exec bench/main.exe -- perf \
	  --against BENCH_baseline.json --out BENCH_perf.json

perf-baseline:
	OCAMLRUNPARAM=b dune exec bench/main.exe -- perf --out BENCH_baseline.json

# One-command gate: full build + tests + a smoke run of the
# execution-backend study + the telemetry smoke + source hygiene
# (OCAMLRUNPARAM=b: backtraces on uncaught exceptions).
ci:
	OCAMLRUNPARAM=b dune build @runtest
	OCAMLRUNPARAM=b dune exec bench/main.exe -- backend
	$(MAKE) kernel-smoke
	$(MAKE) trace-smoke
	$(MAKE) lint
	$(MAKE) verify-gate
	$(MAKE) reuse-gate
	$(MAKE) analyze-gate
	$(MAKE) opt-gate
	$(MAKE) sparse-gate
	$(MAKE) perf-gate
	$(MAKE) fmt-check

clean:
	dune clean
