open Linalg

let c re im = { Complex.re; im }
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Complex_ext                                                        *)

let test_constants () =
  check_bool "zero" true (Complex_ext.approx_equal Complex_ext.zero (c 0. 0.));
  check_bool "one" true (Complex_ext.approx_equal Complex_ext.one (c 1. 0.));
  check_bool "i" true (Complex_ext.approx_equal Complex_ext.i (c 0. 1.))

let test_exp_i () =
  check_bool "e^0 = 1" true
    (Complex_ext.approx_equal (Complex_ext.exp_i 0.) Complex_ext.one);
  check_bool "e^{i pi} = -1" true
    (Complex_ext.approx_equal (Complex_ext.exp_i Float.pi) (c (-1.) 0.) ~eps:1e-12);
  check_bool "e^{i pi/2} = i" true
    (Complex_ext.approx_equal (Complex_ext.exp_i (Float.pi /. 2.)) Complex_ext.i
       ~eps:1e-12)

let test_scale_norm () =
  check_float "norm2 of 3+4i" 25. (Complex_ext.norm2 (c 3. 4.));
  check_bool "scale" true
    (Complex_ext.approx_equal (Complex_ext.scale 2. (c 1. (-2.))) (c 2. (-4.)))

let test_is_zero () =
  check_bool "zero is zero" true (Complex_ext.is_zero Complex.zero);
  check_bool "tiny is zero" true (Complex_ext.is_zero ~eps:1e-6 (c 1e-9 0.));
  check_bool "one is not zero" false (Complex_ext.is_zero Complex.one)

let test_to_string () =
  Alcotest.(check string) "real" "2" (Complex_ext.to_string (c 2. 0.));
  Alcotest.(check string) "imag" "3i" (Complex_ext.to_string (c 0. 3.));
  Alcotest.(check string) "both" "1+2i" (Complex_ext.to_string (c 1. 2.));
  Alcotest.(check string) "neg imag" "1-2i" (Complex_ext.to_string (c 1. (-2.)))

(* ------------------------------------------------------------------ *)
(* Cvec                                                               *)

let test_basis () =
  let v = Cvec.basis 4 2 in
  check_float "norm2" 1. (Cvec.norm2 v);
  check_bool "component" true
    (Complex_ext.approx_equal (Cvec.get v 2) Complex.one);
  Alcotest.check_raises "out of range" (Invalid_argument "Cvec.basis")
    (fun () -> ignore (Cvec.basis 4 4))

let test_normalize () =
  let v = Cvec.of_array [| c 3. 0.; c 4. 0. |] in
  Cvec.normalize v;
  check_float "unit norm" 1. (Cvec.norm2 v);
  check_float "first" 0.6 (Cvec.get v 0).Complex.re;
  Alcotest.check_raises "zero vector"
    (Invalid_argument "Cvec.normalize: zero vector") (fun () ->
      Cvec.normalize (Cvec.make 3))

let test_dot () =
  let a = Cvec.of_array [| c 0. 1.; c 1. 0. |] in
  let b = Cvec.of_array [| c 0. 1.; c 0. 0. |] in
  (* <a|b> = conj(i)*i = 1 *)
  check_bool "conjugate linear" true
    (Complex_ext.approx_equal (Cvec.dot a b) Complex.one)

let test_phase_equal () =
  let a = Cvec.of_array [| c 1. 0.; c 0. 1. |] in
  let b = Cvec.copy a in
  Cvec.scale (Complex_ext.exp_i 0.7) b;
  check_bool "equal up to phase" true (Cvec.approx_equal_up_to_phase a b);
  check_bool "not literally equal" false (Cvec.approx_equal a b);
  let d = Cvec.of_array [| c 1. 0.; c 0. (-1.) |] in
  check_bool "different states" false (Cvec.approx_equal_up_to_phase a d)

(* ------------------------------------------------------------------ *)
(* Cmat                                                               *)

let h_matrix = Circuit.Gate.matrix Circuit.Gate.H
let x_matrix = Circuit.Gate.matrix Circuit.Gate.X
let z_matrix = Circuit.Gate.matrix Circuit.Gate.Z

let test_identity () =
  let i3 = Cmat.identity 3 in
  check_bool "I*I = I" true (Cmat.approx_equal (Cmat.mul i3 i3) i3);
  check_bool "unitary" true (Cmat.is_unitary i3)

let test_mul_apply () =
  let hh = Cmat.mul h_matrix h_matrix in
  check_bool "H^2 = I" true (Cmat.approx_equal hh (Cmat.identity 2));
  let v = Cmat.apply h_matrix (Cvec.basis 2 0) in
  check_float "H|0> first" (1. /. sqrt 2.) (Cvec.get v 0).Complex.re;
  check_float "H|0> second" (1. /. sqrt 2.) (Cvec.get v 1).Complex.re

let test_adjoint_transpose () =
  let m = Cmat.of_lists [ [ c 1. 2.; c 3. 4. ]; [ c 5. 6.; c 7. 8. ] ] in
  let a = Cmat.adjoint m in
  check_bool "adjoint entry" true
    (Complex_ext.approx_equal (Cmat.get a 0 1) (c 5. (-6.)));
  let t = Cmat.transpose m in
  check_bool "transpose entry" true
    (Complex_ext.approx_equal (Cmat.get t 0 1) (c 5. 6.))

let test_kron () =
  let k = Cmat.kron x_matrix (Cmat.identity 2) in
  Alcotest.(check int) "rows" 4 (Cmat.rows k);
  (* X (x) I maps |00> -> |10> in big-endian block convention *)
  check_bool "swap blocks" true
    (Complex_ext.approx_equal (Cmat.get k 2 0) Complex.one)

let test_unitarity () =
  check_bool "H unitary" true (Cmat.is_unitary h_matrix);
  let not_unitary = Cmat.of_lists [ [ c 1. 0.; c 1. 0. ]; [ c 0. 0.; c 1. 0. ] ] in
  check_bool "triangular not unitary" false (Cmat.is_unitary not_unitary)

let test_commutator () =
  check_float "[X,X] = 0" 0. (Cmat.commutator_norm x_matrix x_matrix);
  check_bool "[X,Z] /= 0" true (Cmat.commutator_norm x_matrix z_matrix > 1.)

let test_phase_equal_mat () =
  let m = Cmat.scale (Complex_ext.exp_i 1.1) h_matrix in
  check_bool "up to phase" true (Cmat.approx_equal_up_to_phase m h_matrix);
  check_bool "not equal" false (Cmat.approx_equal m h_matrix);
  check_bool "X vs Z" false (Cmat.approx_equal_up_to_phase x_matrix z_matrix)

let test_of_lists_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Cmat.of_lists: ragged")
    (fun () -> ignore (Cmat.of_lists [ [ c 1. 0. ]; [ c 1. 0.; c 2. 0. ] ]))

let test_apply_mismatch () =
  Alcotest.check_raises "shape" (Invalid_argument "Cmat.apply: shape mismatch")
    (fun () -> ignore (Cmat.apply h_matrix (Cvec.basis 4 0)))

let test_scale_matrix () =
  let m = Cmat.scale { Complex.re = 2.; im = 0. } (Cmat.identity 2) in
  check_bool "scaled" true
    (Complex_ext.approx_equal (Cmat.get m 0 0) (c 2. 0.));
  check_bool "no longer unitary" false (Cmat.is_unitary m)

let test_dot_mismatch () =
  Alcotest.check_raises "dim" (Invalid_argument "Cvec.dot: dimension mismatch")
    (fun () -> ignore (Cvec.dot (Cvec.make 2) (Cvec.make 3)))

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)

let gate_gen =
  QCheck2.Gen.oneofl
    Circuit.Gate.[ H; X; Y; Z; S; Sdg; T; Tdg; V; Vdg ]

let prop_product_adjoint =
  QCheck2.Test.make ~name:"(AB)^dag = B^dag A^dag" ~count:100
    QCheck2.Gen.(pair gate_gen gate_gen)
    (fun (g1, g2) ->
      let a = Circuit.Gate.matrix g1 and b = Circuit.Gate.matrix g2 in
      Cmat.approx_equal
        (Cmat.adjoint (Cmat.mul a b))
        (Cmat.mul (Cmat.adjoint b) (Cmat.adjoint a)))

let prop_product_unitary =
  QCheck2.Test.make ~name:"product of unitaries is unitary" ~count:100
    QCheck2.Gen.(list_size (int_range 1 6) gate_gen)
    (fun gs ->
      let m =
        List.fold_left
          (fun acc g -> Cmat.mul acc (Circuit.Gate.matrix g))
          (Cmat.identity 2) gs
      in
      Cmat.is_unitary m)

let prop_kron_mul =
  QCheck2.Test.make ~name:"(A kron B)(C kron D) = AC kron BD" ~count:100
    QCheck2.Gen.(pair (pair gate_gen gate_gen) (pair gate_gen gate_gen))
    (fun ((ga, gb), (gc, gd)) ->
      let m g = Circuit.Gate.matrix g in
      Cmat.approx_equal
        (Cmat.mul (Cmat.kron (m ga) (m gb)) (Cmat.kron (m gc) (m gd)))
        (Cmat.kron (Cmat.mul (m ga) (m gc)) (Cmat.mul (m gb) (m gd))))

let prop_dot_norm =
  QCheck2.Test.make ~name:"<v|v> = norm2 v" ~count:100
    QCheck2.Gen.(list_size (return 4) (pair (float_bound_inclusive 1.) (float_bound_inclusive 1.)))
    (fun pairs ->
      let v = Cvec.of_array (Array.of_list (List.map (fun (re, im) -> c re im) pairs)) in
      abs_float (Cvec.dot v v).Complex.re -. Cvec.norm2 v < 1e-9)

let () =
  Alcotest.run "linalg"
    [
      ( "complex_ext",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "exp_i" `Quick test_exp_i;
          Alcotest.test_case "scale/norm" `Quick test_scale_norm;
          Alcotest.test_case "is_zero" `Quick test_is_zero;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ( "cvec",
        [
          Alcotest.test_case "basis" `Quick test_basis;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "dot" `Quick test_dot;
          Alcotest.test_case "phase equality" `Quick test_phase_equal;
        ] );
      ( "cmat",
        [
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "mul/apply" `Quick test_mul_apply;
          Alcotest.test_case "adjoint/transpose" `Quick test_adjoint_transpose;
          Alcotest.test_case "kron" `Quick test_kron;
          Alcotest.test_case "unitarity" `Quick test_unitarity;
          Alcotest.test_case "commutator" `Quick test_commutator;
          Alcotest.test_case "phase equality" `Quick test_phase_equal_mat;
          Alcotest.test_case "ragged input" `Quick test_of_lists_ragged;
          Alcotest.test_case "apply mismatch" `Quick test_apply_mismatch;
          Alcotest.test_case "scale" `Quick test_scale_matrix;
          Alcotest.test_case "dot mismatch" `Quick test_dot_mismatch;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_product_adjoint; prop_product_unitary; prop_kron_mul; prop_dot_norm ] );
    ]
