open Circuit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let all_fixed_gates = Gate.[ H; X; Y; Z; S; Sdg; T; Tdg; V; Vdg ]
let all_gates = all_fixed_gates @ Gate.[ Rx 0.3; Ry 1.2; Rz (-0.7); Phase 0.9 ]

(* ------------------------------------------------------------------ *)
(* Gate                                                               *)

let test_all_unitary () =
  List.iter
    (fun g ->
      check_bool (Gate.name g ^ " unitary") true
        (Linalg.Cmat.is_unitary (Gate.matrix g)))
    all_gates

let test_adjoint_involution () =
  List.iter
    (fun g ->
      check_bool
        (Gate.name g ^ " adjoint involution")
        true
        (Gate.equal g (Gate.adjoint (Gate.adjoint g)));
      let prod =
        Linalg.Cmat.mul (Gate.matrix g) (Gate.matrix (Gate.adjoint g))
      in
      check_bool (Gate.name g ^ " g g^dag = I") true
        (Linalg.Cmat.approx_equal prod (Linalg.Cmat.identity 2)))
    all_gates

let test_gate_algebra () =
  let eq a b = Linalg.Cmat.approx_equal a b in
  let m = Gate.matrix in
  check_bool "V^2 = X" true (eq (Linalg.Cmat.mul (m Gate.V) (m Gate.V)) (m Gate.X));
  check_bool "S^2 = Z" true (eq (Linalg.Cmat.mul (m Gate.S) (m Gate.S)) (m Gate.Z));
  check_bool "T^2 = S" true (eq (Linalg.Cmat.mul (m Gate.T) (m Gate.T)) (m Gate.S));
  check_bool "HZH = X" true
    (eq
       (Linalg.Cmat.mul (m Gate.H) (Linalg.Cmat.mul (m Gate.Z) (m Gate.H)))
       (m Gate.X));
  check_bool "Phase(pi) = Z" true (eq (m (Gate.Phase Float.pi)) (m Gate.Z))

let test_is_diagonal_consistent () =
  List.iter
    (fun g ->
      let m = Gate.matrix g in
      let off_diag_zero =
        Linalg.Complex_ext.is_zero (Linalg.Cmat.get m 0 1)
        && Linalg.Complex_ext.is_zero (Linalg.Cmat.get m 1 0)
      in
      check_bool (Gate.name g ^ " diagonal flag") off_diag_zero
        (Gate.is_diagonal g))
    all_gates

let test_names () =
  check_string "h" "h" (Gate.name Gate.H);
  check_string "tdg" "tdg" (Gate.name Gate.Tdg);
  check_string "rz" "rz(0.5)" (Gate.name (Gate.Rz 0.5))

let test_clifford_t () =
  check_bool "T in" true (Gate.is_clifford_t Gate.T);
  check_bool "V out" false (Gate.is_clifford_t Gate.V);
  check_bool "Rx out" false (Gate.is_clifford_t (Gate.Rx 0.1))

(* ------------------------------------------------------------------ *)
(* Instruction                                                        *)

let test_instr_qubits_bits () =
  let i = Instruction.Unitary (Instruction.app ~controls:[ 2; 0 ] Gate.X 1) in
  Alcotest.(check (list int)) "qubits" [ 2; 0; 1 ] (Instruction.qubits i);
  Alcotest.(check (list int)) "bits" [] (Instruction.bits i);
  let m = Instruction.Measure { qubit = 3; bit = 1 } in
  Alcotest.(check (list int)) "measure qubits" [ 3 ] (Instruction.qubits m);
  Alcotest.(check (list int)) "measure bits" [ 1 ] (Instruction.bits m);
  let cnd =
    Instruction.Conditioned (Instruction.cond_bit 0 true, Instruction.app Gate.X 1)
  in
  Alcotest.(check (list int)) "conditioned bits" [ 0 ] (Instruction.bits cnd)

let test_instr_map_adjoint () =
  let i = Instruction.Unitary (Instruction.app ~controls:[ 0 ] Gate.V 1) in
  let j = Instruction.map_qubits (fun q -> q + 5) i in
  Alcotest.(check (list int)) "mapped" [ 5; 6 ] (Instruction.qubits j);
  (match Instruction.adjoint i with
  | Instruction.Unitary a -> check_bool "vdg" true (Gate.equal a.gate Gate.Vdg)
  | Instruction.Conditioned _ | Instruction.Measure _ | Instruction.Reset _
  | Instruction.Barrier _ ->
      Alcotest.fail "expected unitary");
  Alcotest.check_raises "adjoint of reset"
    (Invalid_argument "Instruction.adjoint: non-unitary instruction")
    (fun () -> ignore (Instruction.adjoint (Instruction.Reset 0)))

let test_well_formed () =
  let wf = Instruction.well_formed ~num_qubits:3 ~num_bits:1 in
  check_bool "ok" true
    (wf (Instruction.Unitary (Instruction.app ~controls:[ 0 ] Gate.X 1)));
  check_bool "dup control/target" false
    (wf (Instruction.Unitary (Instruction.app ~controls:[ 1 ] Gate.X 1)));
  check_bool "qubit range" false (wf (Instruction.Unitary (Instruction.app Gate.X 3)));
  check_bool "bit range" false (wf (Instruction.Measure { qubit = 0; bit = 1 }));
  check_bool "measure ok" true (wf (Instruction.Measure { qubit = 0; bit = 0 }))

let test_instr_to_string () =
  check_string "cx" "cx q0, q1"
    (Instruction.to_string
       (Instruction.Unitary (Instruction.app ~controls:[ 0 ] Gate.X 1)));
  check_string "ccx" "ccx q0, q1, q2"
    (Instruction.to_string
       (Instruction.Unitary (Instruction.app ~controls:[ 0; 1 ] Gate.X 2)));
  check_string "conditioned" "if (c0 == 1) x q1"
    (Instruction.to_string
       (Instruction.Conditioned
          (Instruction.cond_bit 0 true, Instruction.app Gate.X 1)));
  check_string "measure" "measure q2 -> c0"
    (Instruction.to_string (Instruction.Measure { qubit = 2; bit = 0 }))

let test_cond_helpers () =
  let c = Instruction.cond_all [ 0; 2 ] in
  check_bool "holds on 101" true (Instruction.cond_holds c 0b101);
  check_bool "fails on 001" false (Instruction.cond_holds c 0b001);
  let c2 = Instruction.cond_bit 1 false in
  check_bool "negative test holds" true (Instruction.cond_holds c2 0b101);
  check_bool "negative test fails" false (Instruction.cond_holds c2 0b010);
  check_bool "empty conjunction always true" true
    (Instruction.cond_holds { Instruction.bits = [] } 0b111)

let test_cond_to_string () =
  check_string "conjunction" "if (c0 == 1 && c2 == 0) x q1"
    (Instruction.to_string
       (Instruction.Conditioned
          ({ Instruction.bits = [ (0, true); (2, false) ] },
           Instruction.app Gate.X 1)))

(* ------------------------------------------------------------------ *)
(* Circ                                                               *)

let roles2 = [| Circ.Data; Circ.Answer |]

let test_create_validates () =
  Alcotest.check_raises "bad instruction"
    (Invalid_argument
       "Circ.create: ill-formed instruction x q5 (2 qubits, 0 bits)")
    (fun () ->
      ignore
        (Circ.create ~roles:roles2 ~num_bits:0
           [ Instruction.Unitary (Instruction.app Gate.X 5) ]))

let test_builder_roundtrip () =
  let b = Circ.Builder.make ~roles:roles2 ~num_bits:1 () in
  Circ.Builder.h b 0;
  Circ.Builder.cx b 0 1;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  Circ.Builder.reset b 0;
  Circ.Builder.conditioned b ~bit:0 Gate.X 1;
  let c = Circ.Builder.build b in
  check_int "num instrs" 5 (List.length (Circ.instructions c));
  check_int "num qubits" 2 (Circ.num_qubits c);
  check_int "num bits" 1 (Circ.num_bits c);
  check_bool "role" true (Circ.role c 1 = Circ.Answer)

let test_roles_query () =
  let roles = [| Circ.Data; Circ.Ancilla; Circ.Answer; Circ.Data |] in
  let c = Circ.create ~roles ~num_bits:0 [] in
  Alcotest.(check (list int)) "data" [ 0; 3 ] (Circ.qubits_with_role c Circ.Data);
  Alcotest.(check (list int)) "ancilla" [ 1 ] (Circ.qubits_with_role c Circ.Ancilla);
  Alcotest.(check (list int)) "answer" [ 2 ] (Circ.qubits_with_role c Circ.Answer)

let test_concat_append () =
  let mk instrs = Circ.create ~roles:roles2 ~num_bits:0 instrs in
  let a = mk [ Instruction.Unitary (Instruction.app Gate.H 0) ] in
  let b = mk [ Instruction.Unitary (Instruction.app Gate.X 1) ] in
  check_int "concat" 2 (List.length (Circ.instructions (Circ.concat a b)));
  let c = Circ.append a [ Instruction.Reset 0 ] in
  check_int "append" 2 (List.length (Circ.instructions c));
  let other = Circ.create ~roles:[| Circ.Data |] ~num_bits:0 [] in
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Circ.concat: shape mismatch") (fun () ->
      ignore (Circ.concat a other))

let test_map_instructions () =
  let c =
    Circ.create ~roles:roles2 ~num_bits:0
      [ Instruction.Unitary (Instruction.app Gate.H 0) ]
  in
  let doubled = Circ.map_instructions (fun i -> [ i; i ]) c in
  check_int "doubled" 2 (List.length (Circ.instructions doubled))

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)

let bell () =
  let b = Circ.Builder.make ~roles:roles2 ~num_bits:2 () in
  Circ.Builder.h b 0;
  Circ.Builder.cx b 0 1;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  Circ.Builder.measure b ~qubit:1 ~bit:1;
  Circ.Builder.build b

let test_gate_count_conventions () =
  let c = bell () in
  check_int "measures not counted" 2 (Metrics.gate_count c);
  let b = Circ.Builder.make ~roles:roles2 ~num_bits:1 () in
  Circ.Builder.reset b 0;
  Circ.Builder.conditioned b ~bit:0 Gate.X 1;
  Circ.Builder.barrier b [ 0; 1 ];
  let c2 = Circ.Builder.build b in
  check_int "reset and conditioned counted, barrier not" 2 (Metrics.gate_count c2)

let test_stats () =
  let s = Metrics.stats (bell ()) in
  check_int "unitary" 2 s.Metrics.unitary;
  check_int "two_qubit" 1 s.Metrics.two_qubit;
  check_int "measure" 2 s.Metrics.measure

let test_t_and_cx_counts () =
  let b = Circ.Builder.make ~roles:roles2 ~num_bits:1 () in
  Circ.Builder.gate b Gate.T 0;
  Circ.Builder.gate b Gate.Tdg 1;
  Circ.Builder.cx b 0 1;
  Circ.Builder.cv b 0 1;
  Circ.Builder.conditioned b ~bit:0 Gate.T 0;
  let c = Circ.Builder.build b in
  check_int "t count includes conditioned" 3 (Metrics.t_count c);
  check_int "cx count counts 2q apps" 2 (Metrics.cx_count c)

let test_depth_basics () =
  let c = bell () in
  check_int "bell depth with measures" 3 (Metrics.dynamic_depth c);
  check_int "bell depth without measures" 2 (Metrics.traditional_depth c)

let test_depth_classical_ordering () =
  let b = Circ.Builder.make ~roles:roles2 ~num_bits:1 () in
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  Circ.Builder.conditioned b ~bit:0 Gate.X 1;
  let c = Circ.Builder.build b in
  check_int "feedforward serializes" 2 (Metrics.depth c);
  check_int "without measure layer" 1 (Metrics.depth ~include_measure:false c)

let test_depth_parallel () =
  let b = Circ.Builder.make ~roles:[| Circ.Data; Circ.Data |] ~num_bits:0 () in
  Circ.Builder.h b 0;
  Circ.Builder.h b 1;
  Circ.Builder.h b 0;
  check_int "parallel wires" 2 (Metrics.depth (Circ.Builder.build b))

let test_duration_basics () =
  let t = Metrics.default_timing in
  let b = Circ.Builder.make ~roles:roles2 ~num_bits:1 () in
  Circ.Builder.h b 0;
  Circ.Builder.cx b 0 1;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  let c = Circ.Builder.build b in
  Alcotest.(check (float 1e-6)) "serial chain"
    (t.Metrics.t_1q +. t.Metrics.t_2q +. t.Metrics.t_measure)
    (Metrics.duration c)

let test_duration_parallel () =
  let t = Metrics.default_timing in
  let b = Circ.Builder.make ~roles:[| Circ.Data; Circ.Data |] ~num_bits:0 () in
  Circ.Builder.h b 0;
  Circ.Builder.h b 1;
  let c = Circ.Builder.build b in
  Alcotest.(check (float 1e-6)) "parallel 1q" t.Metrics.t_1q (Metrics.duration c)

let test_duration_feedforward () =
  let t = Metrics.default_timing in
  let b = Circ.Builder.make ~roles:roles2 ~num_bits:1 () in
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  Circ.Builder.conditioned b ~bit:0 Gate.X 1;
  let c = Circ.Builder.build b in
  (* the conditioned gate waits for measure + classical round trip,
     even though its qubit was free *)
  Alcotest.(check (float 1e-6)) "feedforward latency"
    (t.Metrics.t_measure +. t.Metrics.t_feedforward +. t.Metrics.t_1q)
    (Metrics.duration c)

(* ------------------------------------------------------------------ *)
(* Draw / Qasm                                                        *)

let dynamic_sample () =
  let b = Circ.Builder.make ~roles:roles2 ~num_bits:1 () in
  Circ.Builder.h b 0;
  Circ.Builder.cv b 0 1;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  Circ.Builder.reset b 0;
  Circ.Builder.conditioned b ~bit:0 Gate.X 0;
  Circ.Builder.build b

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_draw () =
  let s = Draw.to_string (dynamic_sample ()) in
  check_bool "has control dot" true (contains s "*");
  check_bool "has v box" true (contains s "[v]");
  check_bool "has measure" true (contains s "[M0]");
  check_bool "has reset" true (contains s "[R]");
  check_bool "has conditioned" true (contains s "[x?c0]")

let test_draw_wrapping () =
  let b = Circ.Builder.make ~roles:roles2 ~num_bits:1 () in
  for _ = 1 to 12 do
    Circ.Builder.h b 0
  done;
  let c = Circ.Builder.build b in
  let unwrapped = Draw.to_string c in
  let wrapped = Draw.to_string ~max_width:30 c in
  check_bool "single panel unwrapped" false (contains unwrapped "...");
  check_bool "panels split" true (contains wrapped "...");
  (* every line fits the budget *)
  String.split_on_char '\n' wrapped
  |> List.iter (fun line ->
         check_bool "line width" true (String.length line <= 32))

let test_qasm () =
  let s = Qasm.to_string (dynamic_sample ()) in
  check_bool "header" true (contains s "OPENQASM 3.0;");
  let multi =
    Circ.create ~roles:roles2 ~num_bits:3
      [
        Instruction.Conditioned
          (Instruction.cond_all [ 0; 2 ], Instruction.app Gate.X 1);
      ]
  in
  check_bool "conjunctive if" true
    (contains (Qasm.to_string multi) "if (c[0] == 1 && c[2] == 1) { x q[1]; }");
  check_bool "csx for CV" true (contains s "csx q[0], q[1];");
  check_bool "measure" true (contains s "c[0] = measure q[0];");
  check_bool "reset" true (contains s "reset q[0];");
  check_bool "if" true (contains s "if (c[0] == 1) { x q[0]; }")

(* ------------------------------------------------------------------ *)
(* Qasm parser                                                        *)

let test_qasm_roundtrip_dynamic () =
  let c = dynamic_sample () in
  let parsed = Qasm.parse ~roles:(Circ.roles c) (Qasm.to_string c) in
  check_bool "roundtrip" true (Circ.equal parsed c)

let test_qasm_parse_basics () =
  let src =
    "OPENQASM 3.0;\ninclude \"stdgates.inc\";\nqubit[3] q;\nbit[2] c;\n\
     // a comment\nh q[0];\nccx q[0], q[1], q[2];\nrz(0.5) q[1];\n\
     c[0] = measure q[0];\nreset q[0];\nif (c[0] == 1 && c[1] == 0) { sx q[2]; }\n\
     barrier q[0], q[1];"
  in
  let c = Qasm.parse src in
  check_int "qubits" 3 (Circ.num_qubits c);
  check_int "bits" 2 (Circ.num_bits c);
  check_int "instructions" 7 (List.length (Circ.instructions c));
  match Circ.instructions c with
  | [ _; Instruction.Unitary ccx; _; _; _; Instruction.Conditioned (cond, sx); _ ] ->
      Alcotest.(check (list int)) "ccx controls" [ 0; 1 ] ccx.Instruction.controls;
      check_bool "conjunction" true
        (cond.Instruction.bits = [ (0, true); (1, false) ]);
      check_bool "sx is V" true (Gate.equal sx.Instruction.gate Gate.V)
  | _ -> Alcotest.fail "unexpected instruction shapes"

let test_qasm_parse_errors () =
  let bad src =
    try
      ignore (Qasm.parse src);
      false
    with Qasm.Parse_error _ -> true
  in
  check_bool "unknown gate" true (bad "qubit[1] q;\nfoo q[0];");
  check_bool "missing qubits" true
    (try
       ignore (Qasm.parse "bit[1] c;");
       false
     with Qasm.Parse_error _ -> true);
  check_bool "operand count" true (bad "qubit[2] q;\ncx q[0];");
  check_bool "bad number" true (bad "qubit[1] q;\nrz(zz) q[0];");
  check_bool "parameter on h" true (bad "qubit[1] q;\nh(0.5) q[0];")

let gate_pool =
  Gate.[ H; X; Y; Z; S; Sdg; T; Tdg; V; Vdg; Rx 0.25; Rz (-1.5); Phase 0.75 ]

let random_dynamic_instr_gen =
  QCheck2.Gen.(
    oneof
      [
        map2
          (fun g q -> Instruction.Unitary (Instruction.app g q))
          (oneofl gate_pool) (int_range 0 2);
        map3
          (fun g c t ->
            if c = t then Instruction.Unitary (Instruction.app g t)
            else Instruction.Unitary (Instruction.app ~controls:[ c ] g t))
          (oneofl gate_pool) (int_range 0 2) (int_range 0 2);
        map2
          (fun q b -> Instruction.Measure { qubit = q; bit = b })
          (int_range 0 2) (int_range 0 1);
        map (fun q -> Instruction.Reset q) (int_range 0 2);
        map3
          (fun g q b ->
            Instruction.Conditioned
              (Instruction.cond_bit b true, Instruction.app g q))
          (oneofl gate_pool) (int_range 0 2) (int_range 0 1);
      ])

let prop_qasm_roundtrip =
  QCheck2.Test.make ~name:"qasm roundtrip on random dynamic circuits"
    ~count:100
    QCheck2.Gen.(list_size (int_range 0 25) random_dynamic_instr_gen)
    (fun instrs ->
      let roles = [| Circ.Data; Circ.Data; Circ.Answer |] in
      let c = Circ.create ~roles ~num_bits:2 instrs in
      let parsed = Qasm.parse ~roles (Qasm.to_string c) in
      Circ.equal parsed c)

(* ------------------------------------------------------------------ *)
(* Serial                                                             *)

let test_serial_roundtrip () =
  let roles = [| Circ.Data; Circ.Ancilla; Circ.Answer |] in
  let b = Circ.Builder.make ~roles ~num_bits:2 () in
  Circ.Builder.h b 0;
  Circ.Builder.gate b (Gate.Rz 0.12345) 1;
  Circ.Builder.ccx b 0 1 2;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  Circ.Builder.reset b 0;
  Circ.Builder.conditioned_on b (Instruction.cond_all [ 0; 1 ]) Gate.X 2;
  Circ.Builder.barrier b [ 0; 2 ];
  let c = Circ.Builder.build b in
  let parsed = Serial.of_string (Serial.to_string c) in
  check_bool "roundtrip" true (Circ.equal parsed c);
  (* roles survive, unlike the QASM path *)
  check_bool "roles survive" true (Circ.role parsed 1 = Circ.Ancilla)

let test_serial_errors () =
  let bad src =
    try
      ignore (Serial.of_string src);
      false
    with Serial.Parse_error _ -> true
  in
  check_bool "not a circuit" true (bad "(nope)");
  check_bool "unterminated" true (bad "(circuit (roles data)");
  check_bool "unknown role" true
    (bad "(circuit (roles wizard) (bits 0) (instrs))");
  check_bool "unknown instr" true
    (bad "(circuit (roles data) (bits 0) (instrs (frobnicate 1)))")

let serial_instr_gen =
  QCheck2.Gen.(
    oneof
      [
        map2
          (fun g q -> Instruction.Unitary (Instruction.app g q))
          (oneofl (all_fixed_gates @ [ Gate.Rz 0.25; Gate.Phase (-1.5) ]))
          (int_range 0 2);
        map3
          (fun g c t ->
            if c = t then Instruction.Unitary (Instruction.app g t)
            else Instruction.Unitary (Instruction.app ~controls:[ c ] g t))
          (oneofl all_fixed_gates) (int_range 0 2) (int_range 0 2);
        map2
          (fun q b -> Instruction.Measure { qubit = q; bit = b })
          (int_range 0 2) (int_range 0 1);
        map (fun q -> Instruction.Reset q) (int_range 0 2);
        map3
          (fun g q b ->
            Instruction.Conditioned
              (Instruction.cond_bit b (q mod 2 = 0), Instruction.app g q))
          (oneofl all_fixed_gates) (int_range 0 2) (int_range 0 1);
      ])

let prop_serial_roundtrip =
  QCheck2.Test.make ~name:"sexp roundtrip on random circuits" ~count:100
    QCheck2.Gen.(list_size (int_range 0 20) serial_instr_gen)
    (fun instrs ->
      let roles = [| Circ.Data; Circ.Ancilla; Circ.Answer |] in
      let c = Circ.create ~roles ~num_bits:2 instrs in
      Circ.equal (Serial.of_string (Serial.to_string c)) c)

let prop_qasm_parser_total =
  (* the parser never escapes with an unexpected exception *)
  QCheck2.Test.make ~name:"qasm parser is total" ~count:200
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 60))
    (fun src ->
      match Qasm.parse src with
      | (_ : Circ.t) -> true
      | exception Qasm.Parse_error _ -> true
      | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)

let gate_gen = QCheck2.Gen.oneofl all_fixed_gates

let prop_diagonal_pairs_commute =
  QCheck2.Test.make ~name:"diagonal gates commute" ~count:100
    QCheck2.Gen.(pair gate_gen gate_gen)
    (fun (a, b) ->
      QCheck2.assume (Gate.is_diagonal a && Gate.is_diagonal b);
      Linalg.Cmat.commutator_norm (Gate.matrix a) (Gate.matrix b) < 1e-9)

let prop_adjoint_keeps_family =
  QCheck2.Test.make ~name:"adjoint keeps gate family" ~count:100 gate_gen
    (fun g ->
      Gate.is_clifford_t g = Gate.is_clifford_t (Gate.adjoint g)
      && Gate.is_diagonal g = Gate.is_diagonal (Gate.adjoint g))

let () =
  Alcotest.run "circuit"
    [
      ( "gate",
        [
          Alcotest.test_case "all unitary" `Quick test_all_unitary;
          Alcotest.test_case "adjoint involution" `Quick test_adjoint_involution;
          Alcotest.test_case "algebra" `Quick test_gate_algebra;
          Alcotest.test_case "diagonal flag" `Quick test_is_diagonal_consistent;
          Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "clifford+t" `Quick test_clifford_t;
        ] );
      ( "instruction",
        [
          Alcotest.test_case "qubits/bits" `Quick test_instr_qubits_bits;
          Alcotest.test_case "map/adjoint" `Quick test_instr_map_adjoint;
          Alcotest.test_case "well_formed" `Quick test_well_formed;
          Alcotest.test_case "to_string" `Quick test_instr_to_string;
          Alcotest.test_case "cond helpers" `Quick test_cond_helpers;
          Alcotest.test_case "cond to_string" `Quick test_cond_to_string;
        ] );
      ( "circ",
        [
          Alcotest.test_case "create validates" `Quick test_create_validates;
          Alcotest.test_case "builder roundtrip" `Quick test_builder_roundtrip;
          Alcotest.test_case "roles query" `Quick test_roles_query;
          Alcotest.test_case "concat/append" `Quick test_concat_append;
          Alcotest.test_case "map_instructions" `Quick test_map_instructions;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "gate count conventions" `Quick
            test_gate_count_conventions;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "t/cx counts" `Quick test_t_and_cx_counts;
          Alcotest.test_case "depth basics" `Quick test_depth_basics;
          Alcotest.test_case "classical ordering" `Quick
            test_depth_classical_ordering;
          Alcotest.test_case "parallel wires" `Quick test_depth_parallel;
          Alcotest.test_case "duration basics" `Quick test_duration_basics;
          Alcotest.test_case "duration parallel" `Quick test_duration_parallel;
          Alcotest.test_case "duration feedforward" `Quick
            test_duration_feedforward;
        ] );
      ( "draw/qasm",
        [
          Alcotest.test_case "draw" `Quick test_draw;
          Alcotest.test_case "draw wrapping" `Quick test_draw_wrapping;
          Alcotest.test_case "qasm" `Quick test_qasm;
        ] );
      ( "serial",
        [
          Alcotest.test_case "roundtrip" `Quick test_serial_roundtrip;
          Alcotest.test_case "errors" `Quick test_serial_errors;
          QCheck_alcotest.to_alcotest prop_serial_roundtrip;
        ] );
      ( "qasm_parser",
        [
          Alcotest.test_case "roundtrip dynamic" `Quick
            test_qasm_roundtrip_dynamic;
          Alcotest.test_case "parse basics" `Quick test_qasm_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_qasm_parse_errors;
          QCheck_alcotest.to_alcotest prop_qasm_roundtrip;
          QCheck_alcotest.to_alcotest prop_qasm_parser_total;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_diagonal_pairs_commute; prop_adjoint_keeps_family ] );
    ]
