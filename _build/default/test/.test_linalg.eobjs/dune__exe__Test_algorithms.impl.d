test/test_algorithms.ml: Alcotest Algorithms Array Circ Circuit Decompose Dqc Fun Gate Instruction List Metrics Option Printf QCheck2 QCheck_alcotest Sim String
