test/test_dqc.mli:
