test/test_circuit.ml: Alcotest Circ Circuit Draw Float Gate Instruction Linalg List Metrics QCheck2 QCheck_alcotest Qasm Serial String
