test/test_transpile.ml: Alcotest Algorithms Array Circ Circuit Dqc Gate Instruction Linalg List Metrics Option QCheck2 QCheck_alcotest Sim Transpile
