test/test_transpile.mli:
