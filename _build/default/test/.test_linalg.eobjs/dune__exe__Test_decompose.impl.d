test/test_decompose.ml: Alcotest Array Circ Circuit Complex Decompose Float Gate Instruction Linalg List Metrics QCheck2 QCheck_alcotest Sim
