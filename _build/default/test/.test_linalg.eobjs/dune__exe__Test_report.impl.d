test/test_report.ml: Alcotest Lazy List Option Report String
