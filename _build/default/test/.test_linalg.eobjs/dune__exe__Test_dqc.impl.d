test/test_dqc.ml: Alcotest Algorithms Array Circ Circuit Decompose Dqc Gate Instruction List Metrics Option Printf QCheck2 QCheck_alcotest Sim String Transpile
