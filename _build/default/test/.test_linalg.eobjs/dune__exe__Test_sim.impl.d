test/test_sim.ml: Alcotest Algorithms Array Circ Circuit Complex Dqc Gate Instruction Linalg List Option QCheck2 QCheck_alcotest Random Sim String
