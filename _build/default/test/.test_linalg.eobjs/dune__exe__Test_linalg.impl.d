test/test_linalg.ml: Alcotest Array Circuit Cmat Complex Complex_ext Cvec Float Linalg List QCheck2 QCheck_alcotest
