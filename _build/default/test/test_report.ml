let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Table                                                              *)

let test_table_render () =
  let s =
    Report.Table.render ~headers:[ "name"; "count" ]
      ~rows:[ [ "alpha"; "3" ]; [ "b"; "100" ] ]
      ()
  in
  check_bool "header" true (contains s "name");
  check_bool "separator" true (contains s "----");
  (* numeric column right-aligned: "  3" under "count" *)
  check_bool "right aligned" true (contains s "    3")

let test_table_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Table.render: ragged row")
    (fun () ->
      ignore (Report.Table.render ~headers:[ "a"; "b" ] ~rows:[ [ "x" ] ] ()))

let test_table_titled () =
  let s =
    Report.Table.render_titled ~title:"T" ~headers:[ "a" ] ~rows:[ [ "1" ] ] ()
  in
  check_bool "title" true (contains s "T\n=")

(* ------------------------------------------------------------------ *)
(* Paper_data                                                         *)

let test_paper_data_complete () =
  check_int "table 1 rows" 28 (List.length Report.Paper_data.table1);
  check_int "table 2 rows" 9 (List.length Report.Paper_data.table2);
  check_bool "find BV_111" true (Report.Paper_data.table1_find "BV_111" <> None);
  check_bool "find CARRY" true (Report.Paper_data.table2_find "CARRY" <> None);
  check_bool "missing" true (Report.Paper_data.table1_find "X" = None)

let test_paper_data_values () =
  let r = Option.get (Report.Paper_data.table1_find "BV_111") in
  check_int "gates dyn" 13 r.Report.Paper_data.gates_dyn;
  let t = Option.get (Report.Paper_data.table2_find "AND") in
  check_int "gates dyn2" 33 t.Report.Paper_data.gates_dyn2

(* ------------------------------------------------------------------ *)
(* Experiments — the reproduction claims themselves                   *)

let table1 = lazy (Report.Experiments.table1_rows ())
let table2 = lazy (Report.Experiments.table2_rows ())
let fig7 = lazy (Report.Experiments.fig7_rows ~shots:512 ())

let test_table1_exact_equivalence () =
  List.iter
    (fun (r : Report.Experiments.table1_row) ->
      check_bool (r.name ^ " tv = 0") true (r.tv < 1e-9))
    (Lazy.force table1)

let test_table1_two_qubits () =
  List.iter
    (fun (r : Report.Experiments.table1_row) ->
      check_int (r.name ^ " dyn qubits") 2 r.qubits_dyn)
    (Lazy.force table1)

let test_table1_matches_paper_gates () =
  (* gate counts match the paper exactly, except BV_1000 where the
     paper's own table is internally inconsistent (all other weight-1
     strings cost 8) *)
  List.iter
    (fun (r : Report.Experiments.table1_row) ->
      if r.name <> "BV_1000" then begin
        let p = Option.get (Report.Paper_data.table1_find r.name) in
        check_int (r.name ^ " trad gates") p.Report.Paper_data.gates_trad
          r.gates_trad;
        check_int (r.name ^ " dyn gates") p.Report.Paper_data.gates_dyn
          r.gates_dyn
      end)
    (Lazy.force table1)

let test_table1_depth_close () =
  List.iter
    (fun (r : Report.Experiments.table1_row) ->
      let p = Option.get (Report.Paper_data.table1_find r.name) in
      check_bool (r.name ^ " trad depth within 2") true
        (abs (r.depth_trad - p.Report.Paper_data.depth_trad) <= 2);
      check_bool (r.name ^ " dyn depth within 2") true
        (abs (r.depth_dyn - p.Report.Paper_data.depth_dyn) <= 2))
    (Lazy.force table1)

let test_table2_matches_paper () =
  List.iter
    (fun (r : Report.Experiments.table2_row) ->
      let p = Option.get (Report.Paper_data.table2_find r.name) in
      check_int (r.name ^ " trad gates exact") p.Report.Paper_data.gates_trad
        r.gates_trad;
      check_int (r.name ^ " dyn2 gates exact") p.Report.Paper_data.gates_dyn2
        r.gates_dyn2;
      check_bool (r.name ^ " dyn1 gates within 6") true
        (abs (r.gates_dyn1 - p.Report.Paper_data.gates_dyn1) <= 6);
      check_int (r.name ^ " qubits") 2 r.qubits_dyn)
    (Lazy.force table2)

let test_table2_ordering () =
  (* the paper's qualitative claim: dyn2 > dyn1 > traditional in gates *)
  List.iter
    (fun (r : Report.Experiments.table2_row) ->
      check_bool (r.name ^ " dyn1 > trad") true (r.gates_dyn1 > r.gates_trad);
      check_bool (r.name ^ " dyn2 > dyn1") true (r.gates_dyn2 > r.gates_dyn1);
      check_bool (r.name ^ " depth grows") true (r.depth_dyn1 > r.depth_trad))
    (Lazy.force table2)

let test_table2_dyn2_equivalent_2input () =
  List.iter
    (fun (r : Report.Experiments.table2_row) ->
      if r.name <> "CARRY" then
        check_bool (r.name ^ " dyn2 exact") true (r.tv_dyn2 < 1e-9);
      check_bool (r.name ^ " dyn1 deviates") true (r.tv_dyn1 > 0.1))
    (Lazy.force table2)

let test_fig7_shape () =
  (* the paper's Fig 7 claim: dynamic-1 significantly reduces accuracy,
     dynamic-2 stays close to traditional *)
  List.iter
    (fun (r : Report.Experiments.fig7_row) ->
      check_bool (r.name ^ " trad high") true (r.accuracy_trad > 0.9);
      check_bool (r.name ^ " dyn1 low") true
        (r.accuracy_dyn1 < r.accuracy_trad -. 0.2);
      if r.name <> "CARRY" then
        check_bool (r.name ^ " dyn2 close to trad") true
          (abs_float (r.accuracy_dyn2 -. r.accuracy_trad) < 0.1))
    (Lazy.force fig7)

let test_mct_rows () =
  let rows = Report.Experiments.mct_rows () in
  check_int "six benchmarks" 6 (List.length rows);
  List.iter
    (fun (r : Report.Experiments.mct_row) ->
      check_bool (r.name ^ " direct cheapest") true
        (r.direct_gates < r.dyn1_gates && r.dyn1_gates <= r.dyn2_gates);
      check_bool (r.name ^ " direct single conditioned per monomial") true
        (r.direct_conditioned >= 1))
    rows

let test_routing_rows () =
  let rows = Report.Experiments.routing_rows () in
  List.iter
    (fun (r : Report.Experiments.routing_row) ->
      check_int "dynamic qubits" 2 r.dyn_qubits;
      check_int "dynamic swaps" 0 r.dyn_swaps;
      check_bool "traditional needs swaps" true (r.trad_swaps > 0))
    rows;
  (* SWAP overhead grows superlinearly with n *)
  let swaps n =
    let r =
      List.find
        (fun (r : Report.Experiments.routing_row) -> r.hidden_bits = n)
        rows
    in
    r.trad_swaps
  in
  check_bool "superlinear growth" true (swaps 16 > 4 * swaps 4)

let test_duration_rows () =
  List.iter
    (fun (r : Report.Experiments.duration_row) ->
      let dyn =
        match (r.dyn_us, r.dyn1_us, r.dyn2_us) with
        | Some d, _, _ -> d
        | _, Some d, _ -> d
        | _, _, Some d -> d
        | None, None, None -> 0.
      in
      check_bool (r.benchmark ^ " dynamic slower") true (dyn > r.trad_us))
    (Report.Experiments.duration_rows ())

let test_scale_rows () =
  List.iter
    (fun (r : Report.Experiments.scale_row) ->
      check_int "two tableau qubits" 2 r.dyn_tableau_qubits;
      check_bool "recovered" true r.recovered)
    (Report.Experiments.scale_rows ())

let test_slots_rows () =
  let rows = Report.Experiments.slots_rows () in
  let find b s =
    List.find
      (fun (r : Report.Experiments.slots_row) ->
        r.benchmark = b && r.scheme = s)
      rows
  in
  check_bool "BV certified at 1" true ((find "BV-4" "-").min_slots = Some 1);
  check_bool "dyn1 certified at 2" true
    ((find "DJ(AND)" "dyn1").min_slots = Some 2);
  check_bool "adder needs width" true
    (match (find "ADDER-2" "dyn1").min_slots with
    | Some k -> k >= 4
    | None -> false)

let test_reports_render () =
  check_bool "table1 report" true
    (contains (Report.Experiments.table1_report ()) "BV_111");
  check_bool "table2 report" true
    (contains (Report.Experiments.table2_report ()) "CARRY");
  check_bool "fig7 report" true
    (contains (Report.Experiments.fig7_report ~shots:128 ()) "dynamic-2");
  check_bool "equivalence report" true
    (contains (Report.Experiments.equivalence_report ()) "Equivalent")

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "ragged" `Quick test_table_ragged;
          Alcotest.test_case "titled" `Quick test_table_titled;
        ] );
      ( "paper_data",
        [
          Alcotest.test_case "complete" `Quick test_paper_data_complete;
          Alcotest.test_case "values" `Quick test_paper_data_values;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table1 equivalence" `Slow
            test_table1_exact_equivalence;
          Alcotest.test_case "table1 two qubits" `Slow test_table1_two_qubits;
          Alcotest.test_case "table1 gates match paper" `Slow
            test_table1_matches_paper_gates;
          Alcotest.test_case "table1 depth close" `Slow test_table1_depth_close;
          Alcotest.test_case "table2 matches paper" `Slow
            test_table2_matches_paper;
          Alcotest.test_case "table2 ordering" `Slow test_table2_ordering;
          Alcotest.test_case "table2 dyn2 equivalence" `Slow
            test_table2_dyn2_equivalent_2input;
          Alcotest.test_case "fig7 shape" `Slow test_fig7_shape;
          Alcotest.test_case "mct rows" `Slow test_mct_rows;
          Alcotest.test_case "routing rows" `Slow test_routing_rows;
          Alcotest.test_case "duration rows" `Slow test_duration_rows;
          Alcotest.test_case "scale rows" `Slow test_scale_rows;
          Alcotest.test_case "slots rows" `Slow test_slots_rows;
          Alcotest.test_case "reports render" `Slow test_reports_render;
        ] );
    ]
