open Circuit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let u ?controls g t = Instruction.Unitary (Instruction.app ?controls g t)

(* ------------------------------------------------------------------ *)
(* Coupling                                                           *)

let test_line () =
  let l = Transpile.Coupling.line 4 in
  check_int "qubits" 4 (Transpile.Coupling.num_qubits l);
  check_bool "0-1" true (Transpile.Coupling.adjacent l 0 1);
  check_bool "0-2" false (Transpile.Coupling.adjacent l 0 2);
  check_int "distance ends" 3 (Transpile.Coupling.distance l 0 3);
  Alcotest.(check (list int)) "path" [ 0; 1; 2; 3 ]
    (Transpile.Coupling.shortest_path l 0 3)

let test_ring () =
  let r = Transpile.Coupling.ring 5 in
  check_bool "wraparound" true (Transpile.Coupling.adjacent r 0 4);
  check_int "short way round" 2 (Transpile.Coupling.distance r 0 3);
  check_bool "ring too small" true
    (try
       ignore (Transpile.Coupling.ring 2);
       false
     with Invalid_argument _ -> true)

let test_grid () =
  let g = Transpile.Coupling.grid ~rows:2 ~cols:3 in
  check_int "qubits" 6 (Transpile.Coupling.num_qubits g);
  check_bool "horizontal" true (Transpile.Coupling.adjacent g 0 1);
  check_bool "vertical" true (Transpile.Coupling.adjacent g 0 3);
  check_bool "diagonal" false (Transpile.Coupling.adjacent g 0 4);
  check_int "corner to corner" 3 (Transpile.Coupling.distance g 0 5)

let test_complete () =
  let c = Transpile.Coupling.complete 4 in
  check_bool "all pairs" true
    (List.for_all
       (fun (a, b) -> Transpile.Coupling.adjacent c a b)
       [ (0, 1); (0, 3); (1, 2); (2, 3) ])

let test_coupling_errors () =
  check_bool "out of range" true
    (try
       ignore (Transpile.Coupling.of_edges ~num_qubits:2 [ (0, 5) ]);
       false
     with Invalid_argument _ -> true);
  check_bool "self loop" true
    (try
       ignore (Transpile.Coupling.of_edges ~num_qubits:2 [ (1, 1) ]);
       false
     with Invalid_argument _ -> true);
  let disconnected = Transpile.Coupling.of_edges ~num_qubits:3 [ (0, 1) ] in
  check_bool "disconnected distance" true
    (try
       ignore (Transpile.Coupling.distance disconnected 0 2);
       false
     with Not_found -> true)

let test_neighbours () =
  let l = Transpile.Coupling.line 4 in
  Alcotest.(check (list int)) "middle" [ 0; 2 ] (Transpile.Coupling.neighbours l 1);
  Alcotest.(check (list int)) "end" [ 1 ] (Transpile.Coupling.neighbours l 0)

(* ------------------------------------------------------------------ *)
(* Route                                                              *)

let circuit_of ~roles instrs = Circ.create ~roles ~num_bits:0 instrs
let data n = Array.make n Circ.Data

let test_route_adjacent_untouched () =
  let c = circuit_of ~roles:(data 3) [ u ~controls:[ 0 ] Gate.X 1 ] in
  let r = Transpile.Route.run ~coupling:(Transpile.Coupling.line 3) c in
  check_int "no swaps" 0 r.swaps_inserted;
  check_int "same gate count" 1 (Metrics.gate_count r.circuit)

let test_route_distant_cx () =
  let c = circuit_of ~roles:(data 4) [ u ~controls:[ 0 ] Gate.X 3 ] in
  let r = Transpile.Route.run ~coupling:(Transpile.Coupling.line 4) c in
  check_int "two swaps" 2 r.swaps_inserted;
  check_int "cx overhead" 6 r.cx_overhead;
  (* the layout moved logical 0 next to logical 3 *)
  check_int "logical 0 at phys 2" 2 r.phys_of_logical.(0)

let test_route_preserves_distribution () =
  (* GHZ preparation with long-range gates on a line *)
  let roles = data 4 in
  let c =
    circuit_of ~roles
      [
        u Gate.H 0;
        u ~controls:[ 0 ] Gate.X 2;
        u ~controls:[ 0 ] Gate.X 3;
        u ~controls:[ 2 ] Gate.X 1;
      ]
  in
  let r = Transpile.Route.run ~coupling:(Transpile.Coupling.line 4) c in
  let logical = List.init 4 (fun q -> (q, q)) in
  let d0 = Sim.Exact.measured_distribution ~measures:logical c in
  let d1 =
    Sim.Exact.measured_distribution
      ~measures:(Transpile.Route.measures_for r ~logical)
      r.circuit
  in
  check_bool "distribution preserved" true (Sim.Dist.approx_equal d0 d1)

let test_route_dynamic_circuit () =
  (* a DQC (2 qubits, measure/reset/conditioned) routes with no swaps
     on the smallest device *)
  let rt = Dqc.Transform.transform (Algorithms.Bv.circuit "1011") in
  let r =
    Transpile.Route.run ~coupling:(Transpile.Coupling.line 2) rt.circuit
  in
  check_int "no swaps" 0 r.swaps_inserted;
  check_bool "instructions preserved" true
    (Circ.equal r.circuit rt.circuit)

let test_route_errors () =
  let too_small () =
    let c = circuit_of ~roles:(data 3) [] in
    Transpile.Route.run ~coupling:(Transpile.Coupling.line 2) c
  in
  check_bool "device too small" true
    (try
       ignore (too_small ());
       false
     with Transpile.Route.Unroutable _ -> true);
  let toffoli =
    circuit_of ~roles:(data 3) [ u ~controls:[ 0; 1 ] Gate.X 2 ]
  in
  check_bool "multi-control rejected" true
    (try
       ignore
         (Transpile.Route.run ~coupling:(Transpile.Coupling.line 3) toffoli);
       false
     with Transpile.Route.Unroutable _ -> true);
  let disconnected = Transpile.Coupling.of_edges ~num_qubits:3 [ (0, 1) ] in
  let long = circuit_of ~roles:(data 3) [ u ~controls:[ 0 ] Gate.X 2 ] in
  check_bool "disconnected rejected" true
    (try
       ignore (Transpile.Route.run ~coupling:disconnected long);
       false
     with Transpile.Route.Unroutable _ -> true)

let test_route_spare_qubits () =
  let c = circuit_of ~roles:[| Circ.Data; Circ.Answer |] [ u ~controls:[ 0 ] Gate.X 1 ] in
  let r = Transpile.Route.run ~coupling:(Transpile.Coupling.line 4) c in
  check_int "device size" 4 (Circ.num_qubits r.circuit);
  check_bool "spare qubits are ancillas" true
    (Circ.role r.circuit 3 = Circ.Ancilla)

let gate_pool = Gate.[ H; X; Z; S; T; V ]

let random_instr_gen =
  QCheck2.Gen.(
    oneof
      [
        map2
          (fun g q -> u g q)
          (oneofl gate_pool) (int_range 0 4);
        map3
          (fun g c t ->
            if c = t then u g t else u ~controls:[ c ] g t)
          (oneofl gate_pool) (int_range 0 4) (int_range 0 4);
      ])

let prop_routing_preserves_distribution =
  QCheck2.Test.make
    ~name:"routing onto a line preserves the measured distribution" ~count:40
    QCheck2.Gen.(list_size (int_range 1 12) random_instr_gen)
    (fun instrs ->
      let c = circuit_of ~roles:(data 5) instrs in
      let r = Transpile.Route.run ~coupling:(Transpile.Coupling.line 5) c in
      let logical = List.init 5 (fun q -> (q, q)) in
      let d0 = Sim.Exact.measured_distribution ~measures:logical c in
      let d1 =
        Sim.Exact.measured_distribution
          ~measures:(Transpile.Route.measures_for r ~logical)
          r.circuit
      in
      Sim.Dist.approx_equal ~eps:1e-7 d0 d1)

let test_route_conditioned_with_control () =
  (* a conditioned CX (direct-MCT output shape) routes like a CX *)
  let roles = data 4 in
  let c =
    Circ.create ~roles ~num_bits:1
      [
        Instruction.Measure { qubit = 1; bit = 0 };
        Instruction.Conditioned
          (Instruction.cond_bit 0 true, Instruction.app ~controls:[ 0 ] Gate.X 3);
      ]
  in
  let r = Transpile.Route.run ~coupling:(Transpile.Coupling.line 4) c in
  check_int "swaps" 2 r.swaps_inserted

(* ------------------------------------------------------------------ *)
(* Placement                                                          *)

let test_interaction_weights () =
  let c =
    circuit_of ~roles:(data 3)
      [ u ~controls:[ 0 ] Gate.X 2; u ~controls:[ 0 ] Gate.X 2; u ~controls:[ 1 ] Gate.X 2 ]
  in
  Alcotest.(check (list (pair (pair int int) int)))
    "weights" [ ((0, 2), 2); ((1, 2), 1) ]
    (Transpile.Placement.interaction_weights c)

let test_greedy_placement_cuts_swaps () =
  let c = Algorithms.Bv.circuit "11111111" in
  let coupling = Transpile.Coupling.line 9 in
  let identity = Transpile.Route.run ~coupling c in
  let placed = Transpile.Placement.route_with_placement ~coupling c in
  check_bool "at least 3x fewer swaps" true
    (placed.swaps_inserted * 3 <= identity.swaps_inserted)

let test_greedy_placement_preserves () =
  let c = Algorithms.Bv.circuit "1011" in
  let coupling = Transpile.Coupling.line 5 in
  let placed = Transpile.Placement.route_with_placement ~coupling c in
  let logical = List.init 4 (fun q -> (q, q)) in
  let d0 = Sim.Exact.measured_distribution ~measures:logical c in
  let d1 =
    Sim.Exact.measured_distribution
      ~measures:(Transpile.Route.measures_for placed ~logical)
      placed.circuit
  in
  check_bool "preserved" true (Sim.Dist.approx_equal ~eps:1e-7 d0 d1)

let test_initial_layout_validation () =
  let c = circuit_of ~roles:(data 2) [ u ~controls:[ 0 ] Gate.X 1 ] in
  let coupling = Transpile.Coupling.line 3 in
  let rejected layout =
    try
      ignore (Transpile.Route.run ~initial_layout:layout ~coupling c);
      false
    with Transpile.Route.Unroutable _ -> true
  in
  check_bool "repeat" true (rejected [| 1; 1 |]);
  check_bool "off device" true (rejected [| 0; 7 |]);
  check_bool "wrong length" true (rejected [| 0 |]);
  (* a valid non-identity layout works *)
  let r = Transpile.Route.run ~initial_layout:[| 2; 1 |] ~coupling c in
  check_int "no swaps needed" 0 r.swaps_inserted

(* ------------------------------------------------------------------ *)
(* Basis                                                              *)

let gate_pool_full =
  Gate.[ H; X; Y; Z; S; Sdg; T; Tdg; V; Vdg; Rx 0.7; Ry (-1.1); Rz 2.3; Phase 0.4 ]

let test_native_1q_all_gates () =
  List.iter
    (fun g ->
      let direct = circuit_of ~roles:(data 1) [ u g 0 ] in
      let native =
        circuit_of ~roles:(data 1)
          (List.map (fun g' -> u g' 0) (Transpile.Basis.native_1q g))
      in
      check_bool (Gate.name g) true (Sim.Unitary.equivalent direct native))
    gate_pool_full

let test_native_controlled_all_gates () =
  List.iter
    (fun g ->
      let direct = circuit_of ~roles:(data 2) [ u ~controls:[ 0 ] g 1 ] in
      let native = Transpile.Basis.to_native direct in
      check_bool ("c-" ^ Gate.name g) true
        (Sim.Unitary.equivalent direct native);
      check_bool ("c-" ^ Gate.name g ^ " is native") true
        (Transpile.Basis.is_native native))
    gate_pool_full

let test_native_preserves_dynamic_distribution () =
  let o = Option.get (Algorithms.Dj_toffoli.oracle_by_name "OR") in
  let dj = Algorithms.Dj.circuit o in
  let r = Dqc.Toffoli_scheme.transform Dqc.Toffoli_scheme.Dynamic_2 dj in
  let native = Transpile.Basis.to_native r.circuit in
  check_bool "fully native" true (Transpile.Basis.is_native native);
  let nd = List.length r.data_bit in
  let measures = List.mapi (fun k (_, p) -> (p, nd + k)) r.answer_phys in
  let d0 = Sim.Exact.measured_distribution ~measures r.circuit in
  let d1 = Sim.Exact.measured_distribution ~measures native in
  check_bool "distribution preserved" true (Sim.Dist.approx_equal ~eps:1e-7 d0 d1)

let test_native_rejects_multi_control () =
  let toffoli = circuit_of ~roles:(data 3) [ u ~controls:[ 0; 1 ] Gate.X 2 ] in
  check_bool "rejects" true
    (try
       ignore (Transpile.Basis.to_native toffoli);
       false
     with Invalid_argument _ -> true)

let test_zyz_reconstruction () =
  List.iter
    (fun g ->
      let m = Gate.matrix g in
      let alpha, beta, gamma, delta = Transpile.Basis.zyz_angles m in
      let rebuilt =
        circuit_of ~roles:(data 1)
          [ u (Gate.Rz delta) 0; u (Gate.Ry gamma) 0; u (Gate.Rz beta) 0 ]
      in
      let target = circuit_of ~roles:(data 1) [ u g 0 ] in
      (* exact including alpha *)
      let mu = Sim.Unitary.of_circuit rebuilt in
      let scaled =
        Linalg.Cmat.scale (Linalg.Complex_ext.exp_i alpha) mu
      in
      check_bool (Gate.name g ^ " zyz exact") true
        (Linalg.Cmat.approx_equal scaled (Sim.Unitary.of_circuit target)))
    gate_pool_full

let prop_basis_random_sequences =
  QCheck2.Test.make ~name:"native lowering of random 1q sequences" ~count:60
    QCheck2.Gen.(list_size (int_range 1 8) (oneofl gate_pool_full))
    (fun gs ->
      let direct =
        circuit_of ~roles:(data 1) (List.map (fun g -> u g 0) gs)
      in
      let native = Transpile.Basis.to_native direct in
      Transpile.Basis.is_native native
      && Sim.Unitary.equivalent direct native)

let () =
  Alcotest.run "transpile"
    [
      ( "coupling",
        [
          Alcotest.test_case "line" `Quick test_line;
          Alcotest.test_case "ring" `Quick test_ring;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "errors" `Quick test_coupling_errors;
          Alcotest.test_case "neighbours" `Quick test_neighbours;
        ] );
      ( "route",
        [
          Alcotest.test_case "adjacent untouched" `Quick
            test_route_adjacent_untouched;
          Alcotest.test_case "distant cx" `Quick test_route_distant_cx;
          Alcotest.test_case "preserves distribution" `Quick
            test_route_preserves_distribution;
          Alcotest.test_case "dynamic circuit" `Quick test_route_dynamic_circuit;
          Alcotest.test_case "errors" `Quick test_route_errors;
          Alcotest.test_case "spare qubits" `Quick test_route_spare_qubits;
          Alcotest.test_case "conditioned with control" `Quick
            test_route_conditioned_with_control;
          QCheck_alcotest.to_alcotest prop_routing_preserves_distribution;
        ] );
      ( "placement",
        [
          Alcotest.test_case "interaction weights" `Quick
            test_interaction_weights;
          Alcotest.test_case "cuts swaps" `Quick test_greedy_placement_cuts_swaps;
          Alcotest.test_case "preserves distribution" `Quick
            test_greedy_placement_preserves;
          Alcotest.test_case "layout validation" `Quick
            test_initial_layout_validation;
        ] );
      ( "basis",
        [
          Alcotest.test_case "1q gates" `Quick test_native_1q_all_gates;
          Alcotest.test_case "controlled gates" `Quick
            test_native_controlled_all_gates;
          Alcotest.test_case "dynamic distribution" `Quick
            test_native_preserves_dynamic_distribution;
          Alcotest.test_case "rejects multi-control" `Quick
            test_native_rejects_multi_control;
          Alcotest.test_case "zyz exact" `Quick test_zyz_reconstruction;
          QCheck_alcotest.to_alcotest prop_basis_random_sequences;
        ] );
    ]
