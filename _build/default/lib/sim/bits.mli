(** Classical bit-string outcomes.

    An outcome over [n] bits is stored as an [int] where bit [k] of the
    integer is classical bit [k].  The string rendering puts bit 0
    leftmost (reading order), e.g. value [0b01] over 2 bits renders as
    ["10"]. *)

(** [get v k] is bit [k] of [v]. *)
val get : int -> int -> bool

(** [set v k b] is [v] with bit [k] forced to [b]. *)
val set : int -> int -> bool -> int

(** [to_string ~width v] renders bit 0 first. *)
val to_string : width:int -> int -> string

(** [of_string s] parses the {!to_string} format.
    @raise Invalid_argument on non-binary characters. *)
val of_string : string -> int
