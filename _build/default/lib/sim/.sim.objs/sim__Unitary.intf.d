lib/sim/unitary.mli: Circ Circuit Instruction Linalg
