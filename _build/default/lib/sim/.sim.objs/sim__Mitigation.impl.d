lib/sim/mitigation.ml: Array Bits Circ Circuit Dist Float List Noise Runner
