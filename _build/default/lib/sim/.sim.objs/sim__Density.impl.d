lib/sim/density.ml: Bits Circ Circuit Complex Dist Gate Hashtbl Instruction Linalg List Noise Option Printf Unitary
