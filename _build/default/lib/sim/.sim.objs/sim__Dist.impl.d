lib/sim/dist.ml: Array Bits Format Hashtbl List Option Queue Random
