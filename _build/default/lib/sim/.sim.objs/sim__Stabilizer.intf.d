lib/sim/stabilizer.mli: Circ Circuit Random Runner
