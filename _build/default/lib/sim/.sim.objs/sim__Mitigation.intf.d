lib/sim/mitigation.mli: Dist Noise
