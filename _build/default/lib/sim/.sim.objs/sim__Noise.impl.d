lib/sim/noise.ml: Circ Circuit Gate Instruction Linalg List Printf Random Runner Statevector
