lib/sim/runner.mli: Circ Circuit Dist Format
