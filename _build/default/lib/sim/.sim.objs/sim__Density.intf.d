lib/sim/density.mli: Circ Circuit Dist Noise
