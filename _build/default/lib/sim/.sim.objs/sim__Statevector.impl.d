lib/sim/statevector.ml: Array Bits Circ Circuit Complex Gate Instruction Linalg List Printf Random
