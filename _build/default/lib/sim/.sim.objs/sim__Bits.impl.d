lib/sim/bits.ml: String
