lib/sim/runner.ml: Bits Circ Circuit Dist Format Hashtbl Instruction List Option Random Statevector
