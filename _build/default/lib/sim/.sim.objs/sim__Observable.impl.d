lib/sim/observable.ml: Circuit Complex Exact Gate Linalg List Statevector
