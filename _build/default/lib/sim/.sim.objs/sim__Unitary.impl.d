lib/sim/unitary.ml: Bits Circ Circuit Gate Instruction Linalg List Statevector
