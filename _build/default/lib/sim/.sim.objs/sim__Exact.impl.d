lib/sim/exact.ml: Circ Circuit Dist Gate Instruction List Statevector
