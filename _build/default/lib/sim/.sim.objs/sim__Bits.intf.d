lib/sim/bits.mli:
