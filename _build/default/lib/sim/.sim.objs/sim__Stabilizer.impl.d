lib/sim/stabilizer.ml: Array Bits Circ Circuit Gate Instruction List Printf Random Runner
