lib/sim/exact.mli: Circ Circuit Dist Statevector
