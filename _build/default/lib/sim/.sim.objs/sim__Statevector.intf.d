lib/sim/statevector.mli: Circ Circuit Gate Instruction Linalg Random
