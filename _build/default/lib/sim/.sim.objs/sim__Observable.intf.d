lib/sim/observable.mli: Exact Statevector
