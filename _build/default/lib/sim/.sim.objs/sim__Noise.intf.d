lib/sim/noise.mli: Circ Circuit Random Runner
