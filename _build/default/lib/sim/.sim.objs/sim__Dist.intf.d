lib/sim/dist.mli: Format Random
