open Circuit

(** Full unitary matrix of a measurement-free circuit — used to verify
    gate decompositions (Fig 2, Fig 6, Eqn 1, Eqn 3) and as the
    fallback of the commutation oracle. *)

(** [of_circuit c] is the 2^n x 2^n matrix, little-endian qubit order.
    @raise Invalid_argument if the circuit contains measure, reset or
    conditioned instructions, or has more than 12 qubits. *)
val of_circuit : Circ.t -> Linalg.Cmat.t

(** Matrix of a single application embedded in [n] qubits. *)
val of_app : n:int -> Instruction.app -> Linalg.Cmat.t

(** [equivalent ?up_to_phase a b] compares two measurement-free
    circuits' unitaries ([up_to_phase] defaults to [true]). *)
val equivalent : ?up_to_phase:bool -> Circ.t -> Circ.t -> bool
