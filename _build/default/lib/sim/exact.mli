open Circuit

(** Exact evaluation of circuits with mid-circuit measurement and
    active reset, by enumerating measurement branches with their Born
    probabilities.  This is the distribution a shot-based simulator
    (the paper uses AER with 1024 shots) converges to, computed without
    sampling noise — the basis of the functional-equivalence checks. *)

(** A leaf of the branching execution. *)
type leaf = {
  probability : float;
  register : int;  (** classical register at the end *)
  state : Statevector.t;  (** final (normalized) quantum state *)
}

(** All leaves with probability above the pruning threshold 1e-12. *)
val leaves : Circ.t -> leaf list

(** Exact distribution over the classical register. *)
val register_distribution : Circ.t -> Dist.t

(** [measured_distribution ~measures c] appends terminal measurements
    [(qubit, bit)] to the circuit and returns the exact register
    distribution. *)
val measured_distribution : measures:(int * int) list -> Circ.t -> Dist.t

(** [measure_all_distribution c] measures every qubit at the end,
    qubit [q] into bit [q]; requires [num_bits >= num_qubits] or widens
    the register. *)
val measure_all_distribution : Circ.t -> Dist.t
