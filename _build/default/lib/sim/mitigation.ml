open Circuit

(* a.(observed).(prepared) = P(observe | prepared) *)
type t = { k : int; a : float array array }

let bits t = t.k
let confusion t ~observed ~prepared = t.a.(observed).(prepared)

let ideal_confusion ~p_flip ~bits:k =
  if k < 1 || k > 10 then invalid_arg "Mitigation: 1..10 bits";
  let dim = 1 lsl k in
  let a = Array.make_matrix dim dim 0. in
  for prepared = 0 to dim - 1 do
    for observed = 0 to dim - 1 do
      let flips =
        let rec popcount acc v =
          if v = 0 then acc else popcount (acc + (v land 1)) (v lsr 1)
        in
        popcount 0 (prepared lxor observed)
      in
      a.(observed).(prepared) <-
        (p_flip ** float_of_int flips)
        *. ((1. -. p_flip) ** float_of_int (k - flips))
    done
  done;
  { k; a }

let calibrate ?(seed = 0xCA11B) ?(shots = 2048) ~model ~qubits ~num_qubits () =
  let k = List.length qubits in
  if k < 1 || k > 10 then invalid_arg "Mitigation.calibrate: 1..10 qubits";
  let dim = 1 lsl k in
  let a = Array.make_matrix dim dim 0. in
  for prepared = 0 to dim - 1 do
    let roles = Array.make num_qubits Circ.Data in
    let b = Circ.Builder.make ~roles ~num_bits:k () in
    List.iteri
      (fun pos q -> if Bits.get prepared pos then Circ.Builder.x b q)
      qubits;
    List.iteri (fun pos q -> Circ.Builder.measure b ~qubit:q ~bit:pos) qubits;
    let h =
      Noise.run_shots ~seed:(seed + prepared) ~model ~shots (Circ.Builder.build b)
    in
    for observed = 0 to dim - 1 do
      a.(observed).(prepared) <- Runner.frequency h observed
    done
  done;
  { k; a }

(* dense Gaussian elimination with partial pivoting *)
let solve a_in y_in =
  let n = Array.length y_in in
  let a = Array.map Array.copy a_in in
  let y = Array.copy y_in in
  for col = 0 to n - 1 do
    (* pivot *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs a.(row).(col) > Float.abs a.(!pivot).(col) then pivot := row
    done;
    if Float.abs a.(!pivot).(col) < 1e-12 then
      invalid_arg "Mitigation.apply: singular confusion matrix";
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let ty = y.(col) in
      y.(col) <- y.(!pivot);
      y.(!pivot) <- ty
    end;
    for row = col + 1 to n - 1 do
      let f = a.(row).(col) /. a.(col).(col) in
      if f <> 0. then begin
        for c2 = col to n - 1 do
          a.(row).(c2) <- a.(row).(c2) -. (f *. a.(col).(c2))
        done;
        y.(row) <- y.(row) -. (f *. y.(col))
      end
    done
  done;
  let x = Array.make n 0. in
  for row = n - 1 downto 0 do
    let acc = ref y.(row) in
    for c2 = row + 1 to n - 1 do
      acc := !acc -. (a.(row).(c2) *. x.(c2))
    done;
    x.(row) <- !acc /. a.(row).(row)
  done;
  x

let apply t dist =
  if Dist.width dist <> t.k then
    invalid_arg "Mitigation.apply: distribution width mismatch";
  let dim = 1 lsl t.k in
  let y = Array.init dim (fun o -> Dist.prob dist o) in
  let x = solve t.a y in
  (* clip negatives and renormalize back onto the simplex *)
  let clipped = Array.map (fun v -> Float.max 0. v) x in
  let total = Array.fold_left ( +. ) 0. clipped in
  if total <= 0. then invalid_arg "Mitigation.apply: empty mitigated mass";
  Dist.create ~width:t.k
    (List.init dim (fun o -> (o, clipped.(o) /. total)))
