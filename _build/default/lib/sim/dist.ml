type t = { w : int; probs : (int, float) Hashtbl.t }

let add_mass tbl outcome p =
  let prev = Option.value ~default:0. (Hashtbl.find_opt tbl outcome) in
  Hashtbl.replace tbl outcome (prev +. p)

let create ~width pairs =
  let probs = Hashtbl.create 16 in
  List.iter (fun (o, p) -> if p > 0. then add_mass probs o p) pairs;
  { w = width; probs }

let width d = d.w
let prob d o = Option.value ~default:0. (Hashtbl.find_opt d.probs o)

let to_list d =
  Hashtbl.fold (fun o p acc -> (o, p) :: acc) d.probs []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let support d =
  List.filter_map (fun (o, p) -> if p > 1e-12 then Some o else None)
    (to_list d)

let total d = Hashtbl.fold (fun _ p acc -> acc +. p) d.probs 0.

let normalize d =
  let t = total d in
  if t <= 0. then invalid_arg "Dist.normalize: zero mass";
  create ~width:d.w (List.map (fun (o, p) -> (o, p /. t)) (to_list d))

let outcomes_union a b =
  let seen = Hashtbl.create 16 in
  let add (o, _) = Hashtbl.replace seen o () in
  List.iter add (to_list a);
  List.iter add (to_list b);
  Hashtbl.fold (fun o () acc -> o :: acc) seen []

let tv_distance a b =
  let acc =
    List.fold_left
      (fun acc o -> acc +. abs_float (prob a o -. prob b o))
      0. (outcomes_union a b)
  in
  acc /. 2.

let approx_equal ?(eps = 1e-9) a b =
  List.for_all
    (fun o -> abs_float (prob a o -. prob b o) <= eps)
    (outcomes_union a b)

let map_outcome ~width' f d =
  create ~width:width' (List.map (fun (o, p) -> (f o, p)) (to_list d))

let marginal ~bits d =
  let project o =
    List.fold_left
      (fun (acc, k) src -> (Bits.set acc k (Bits.get o src), k + 1))
      (0, 0) bits
    |> fst
  in
  map_outcome ~width':(List.length bits) project d

let mode d =
  match to_list d with
  | [] -> invalid_arg "Dist.mode: empty distribution"
  | first :: rest ->
      List.fold_left
        (fun (bo, bp) (o, p) -> if p > bp then (o, p) else (bo, bp))
        first rest

let pp fmt d =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (o, p) ->
      Format.fprintf fmt "%s : %.6f@," (Bits.to_string ~width:d.w o) p)
    (to_list d);
  Format.fprintf fmt "@]"

type sampler = {
  outcomes : int array;
  (* alias table: with prob cut.(k) pick outcomes.(k), else alias.(k) *)
  cut : float array;
  alias : int array;
}

let sampler d =
  if to_list d = [] then invalid_arg "Dist.sampler: empty distribution";
  let entries = to_list (normalize d) in
  let n = List.length entries in
  let outcomes = Array.of_list (List.map fst entries) in
  let scaled = Array.of_list (List.map (fun (_, p) -> p *. float_of_int n) entries) in
  let cut = Array.make n 1. in
  let alias = Array.init n (fun k -> k) in
  let small = Queue.create () and large = Queue.create () in
  Array.iteri
    (fun k w -> Queue.add k (if w < 1. then small else large))
    scaled;
  while not (Queue.is_empty small || Queue.is_empty large) do
    let s = Queue.pop small and l = Queue.pop large in
    cut.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) -. (1. -. scaled.(s));
    Queue.add l (if scaled.(l) < 1. then small else large)
  done;
  (* leftovers are numerically ~1 *)
  Queue.iter (fun k -> cut.(k) <- 1.) small;
  Queue.iter (fun k -> cut.(k) <- 1.) large;
  { outcomes; cut; alias }

let sample sm rng =
  let n = Array.length sm.outcomes in
  let k = Random.State.int rng n in
  if Random.State.float rng 1.0 < sm.cut.(k) then sm.outcomes.(k)
  else sm.outcomes.(sm.alias.(k))
