open Circuit

type leaf = {
  probability : float;
  register : int;
  state : Statevector.t;
}

let prune_threshold = 1e-12

(* Depth-first enumeration: unitaries and conditioned gates act in
   place; measure and reset fork into the outcomes with non-negligible
   Born probability. *)
let leaves c =
  let acc = ref [] in
  let rec go st prob instrs =
    if prob > prune_threshold then
      match instrs with
      | [] ->
          acc :=
            { probability = prob; register = Statevector.register st; state = st }
            :: !acc
      | i :: rest -> step st prob i rest
  and step st prob (i : Instruction.t) rest =
    match i with
    | Unitary a ->
        Statevector.apply_app st a;
        go st prob rest
    | Conditioned (cnd, a) ->
        if Instruction.cond_holds cnd (Statevector.register st) then
          Statevector.apply_app st a;
        go st prob rest
    | Barrier _ -> go st prob rest
    | Measure { qubit; bit } ->
        fork st prob qubit rest ~on_branch:(fun st' outcome ->
            Statevector.set_bit st' bit outcome)
    | Reset q ->
        fork st prob q rest ~on_branch:(fun st' outcome ->
            if outcome then Statevector.apply_gate st' Gate.X q)
  and fork st prob qubit rest ~on_branch =
    let p1 = Statevector.prob_one st qubit in
    let branch outcome p st' =
      if p *. prob > prune_threshold then begin
        ignore (Statevector.project st' qubit outcome);
        on_branch st' outcome;
        go st' (prob *. p) rest
      end
    in
    (* reuse [st] for the second branch to halve copying *)
    if p1 *. prob > prune_threshold && (1. -. p1) *. prob > prune_threshold
    then begin
      branch false (1. -. p1) (Statevector.copy st);
      branch true p1 st
    end
    else if p1 *. prob > prune_threshold then branch true p1 st
    else branch false (1. -. p1) st
  in
  let st0 =
    Statevector.create (Circ.num_qubits c) ~num_bits:(Circ.num_bits c)
  in
  go st0 1.0 (Circ.instructions c);
  List.rev !acc

let register_distribution c =
  Dist.create ~width:(Circ.num_bits c)
    (List.map (fun l -> (l.register, l.probability)) (leaves c))

let measured_distribution ~measures c =
  let extra =
    List.map
      (fun (qubit, bit) -> Instruction.Measure { qubit; bit })
      measures
  in
  let max_bit =
    List.fold_left (fun acc (_, b) -> max acc (b + 1)) (Circ.num_bits c)
      measures
  in
  let widened =
    Circ.create ~roles:(Circ.roles c) ~num_bits:max_bit
      (Circ.instructions c @ extra)
  in
  register_distribution widened

let measure_all_distribution c =
  let n = Circ.num_qubits c in
  measured_distribution ~measures:(List.init n (fun q -> (q, q))) c
