open Circuit

let max_qubits = 8

type t = {
  n : int;
  num_bits : int;
  (* register value -> unnormalized conditional density matrix *)
  branches : (int, Linalg.Cmat.t) Hashtbl.t;
}

let create n ~num_bits =
  if n < 0 || n > max_qubits then
    invalid_arg
      (Printf.sprintf "Density.create: %d qubits (max %d)" n max_qubits);
  let branches = Hashtbl.create 4 in
  let dim = 1 lsl n in
  let rho = Linalg.Cmat.make dim dim in
  Linalg.Cmat.set rho 0 0 Complex.one;
  Hashtbl.replace branches 0 rho;
  { n; num_bits; branches }

let add_branch branches reg rho =
  match Hashtbl.find_opt branches reg with
  | Some prev -> Hashtbl.replace branches reg (Linalg.Cmat.add prev rho)
  | None -> Hashtbl.replace branches reg rho

(* rho -> U rho U^dag *)
let conjugate u rho =
  Linalg.Cmat.mul u (Linalg.Cmat.mul rho (Linalg.Cmat.adjoint u))

(* embed a 1-qubit gate (or Pauli) on qubit q *)
let embedded st g q = Unitary.of_app ~n:st.n (Instruction.app g q)

let embedded_app st app = Unitary.of_app ~n:st.n app

(* projector onto qubit q = outcome, as a (non-unitary) matrix *)
let projector st q outcome =
  let dim = 1 lsl st.n in
  let p = Linalg.Cmat.make dim dim in
  let bit = 1 lsl q in
  for k = 0 to dim - 1 do
    if (k land bit <> 0) = outcome then Linalg.Cmat.set p k k Complex.one
  done;
  p

let map_branches st f =
  let updated = Hashtbl.create (Hashtbl.length st.branches) in
  Hashtbl.iter
    (fun reg rho -> List.iter (fun (reg', rho') -> add_branch updated reg' rho') (f reg rho))
    st.branches;
  Hashtbl.reset st.branches;
  Hashtbl.iter (Hashtbl.replace st.branches) updated

(* Kraus channel sum_k K rho K^dag applied in place on every branch *)
let apply_channel st kraus =
  map_branches st (fun reg rho ->
      [ (reg, List.fold_left
             (fun acc k -> Linalg.Cmat.add acc (conjugate k rho))
             (Linalg.Cmat.make (1 lsl st.n) (1 lsl st.n))
             kraus) ])

let scale_mat a m = Linalg.Cmat.scale (Linalg.Complex_ext.of_float a) m

let depol_kraus st ~p q =
  let id = Linalg.Cmat.identity (1 lsl st.n) in
  scale_mat (sqrt (1. -. p)) id
  :: List.map
       (fun g -> scale_mat (sqrt (p /. 3.)) (embedded st g q))
       Gate.[ X; Y; Z ]

let channel_on_rho st kraus rho =
  List.fold_left
    (fun acc k -> Linalg.Cmat.add acc (conjugate k rho))
    (Linalg.Cmat.make (1 lsl st.n) (1 lsl st.n))
    kraus

let depolarize st ~p q =
  if p > 0. then apply_channel st (depol_kraus st ~p q)

(* embed the 2x2 amplitude-damping Kraus pair on qubit q *)
let amp_damp_kraus st ~gamma q =
  let dim = 1 lsl st.n in
  let bit = 1 lsl q in
  let k0 = Linalg.Cmat.make dim dim and k1 = Linalg.Cmat.make dim dim in
  for idx = 0 to dim - 1 do
    if idx land bit = 0 then begin
      Linalg.Cmat.set k0 idx idx Complex.one;
      (* |0><1| on qubit q *)
      Linalg.Cmat.set k1 idx (idx lor bit)
        (Linalg.Complex_ext.of_float (sqrt gamma))
    end
    else
      Linalg.Cmat.set k0 idx idx
        (Linalg.Complex_ext.of_float (sqrt (1. -. gamma)))
  done;
  [ k0; k1 ]

let amp_damp st ~gamma q =
  if gamma > 0. then apply_channel st (amp_damp_kraus st ~gamma q)

let dephase st ~p q =
  if p > 0. then begin
    let id = Linalg.Cmat.identity (1 lsl st.n) in
    let kraus =
      [
        scale_mat (sqrt (1. -. p)) id;
        scale_mat (sqrt p) (embedded st Gate.Z q);
      ]
    in
    apply_channel st kraus
  end

let apply_unitary st (model : Noise.model) (app : Instruction.app) =
  let u = embedded_app st app in
  map_branches st (fun reg rho -> [ (reg, conjugate u rho) ]);
  let p = if app.controls = [] then model.p_depol1 else model.p_depol2 in
  List.iter
    (fun q ->
      depolarize st ~p q;
      amp_damp st ~gamma:model.p_amp_damp q)
    (app.controls @ [ app.target ])

let apply_conditioned st (model : Noise.model) cond (app : Instruction.app) =
  (* feed-forward latency penalty, charged whether or not the gate fires *)
  (match model.feedforward_scope with
  | `Target -> dephase st ~p:model.p_feedforward_z app.target
  | `All_qubits ->
      for q = 0 to st.n - 1 do
        dephase st ~p:model.p_feedforward_z q
      done);
  let u = embedded_app st app in
  (* gate noise applies only on the branches where the gate fired *)
  let p = if app.controls = [] then model.p_depol1 else model.p_depol2 in
  let fired_noise rho =
    if p > 0. then
      List.fold_left
        (fun acc q -> channel_on_rho st (depol_kraus st ~p q) acc)
        rho
        (app.controls @ [ app.target ])
    else rho
  in
  map_branches st (fun reg rho ->
      if Instruction.cond_holds cond reg then
        [ (reg, fired_noise (conjugate u rho)) ]
      else [ (reg, rho) ])

let measure st (model : Noise.model) ~qubit ~bit =
  let p0 = projector st qubit false and p1 = projector st qubit true in
  let pflip = model.p_meas_flip in
  map_branches st (fun reg rho ->
      let rho0 = conjugate p0 rho and rho1 = conjugate p1 rho in
      let record outcome rho =
        let correct = Bits.set reg bit outcome in
        let flipped = Bits.set reg bit (not outcome) in
        if pflip > 0. then
          [ (correct, scale_mat (1. -. pflip) rho); (flipped, scale_mat pflip rho) ]
        else [ (correct, rho) ]
      in
      record false rho0 @ record true rho1)

let reset st (model : Noise.model) q =
  let p0 = projector st q false and p1 = projector st q true in
  let x = embedded st Gate.X q in
  map_branches st (fun reg rho ->
      let settled =
        Linalg.Cmat.add (conjugate p0 rho) (conjugate x (conjugate p1 rho))
      in
      [ (reg, settled) ]);
  if model.p_reset_flip > 0. then begin
    let id = Linalg.Cmat.identity (1 lsl st.n) in
    apply_channel st
      [
        scale_mat (sqrt (1. -. model.p_reset_flip)) id;
        scale_mat (sqrt model.p_reset_flip) x;
      ]
  end

let run_instruction st model (i : Instruction.t) =
  match i with
  | Unitary app -> apply_unitary st model app
  | Conditioned (cond, app) -> apply_conditioned st model cond app
  | Measure { qubit; bit } -> measure st model ~qubit ~bit
  | Reset q -> reset st model q
  | Barrier _ -> ()

let run ?(model = Noise.ideal) c =
  Noise.validate model;
  let st = create (Circ.num_qubits c) ~num_bits:(Circ.num_bits c) in
  List.iter (run_instruction st model) (Circ.instructions c);
  st

let branch_trace rho =
  let acc = ref 0. in
  for k = 0 to Linalg.Cmat.rows rho - 1 do
    acc := !acc +. (Linalg.Cmat.get rho k k).Complex.re
  done;
  !acc

let register_distribution st =
  let pairs =
    Hashtbl.fold (fun reg rho acc -> (reg, branch_trace rho) :: acc) st.branches []
  in
  Dist.create ~width:st.num_bits pairs

let measured_distribution ?model ~measures c =
  let extra =
    List.map (fun (qubit, bit) -> Instruction.Measure { qubit; bit }) measures
  in
  let max_bit =
    List.fold_left (fun acc (_, b) -> max acc (b + 1)) (Circ.num_bits c)
      measures
  in
  (* terminal readout is taken ideal: suppress the flip error on the
     appended measurements by running them on the ideal model after the
     noisy body *)
  let model = Option.value ~default:Noise.ideal model in
  let body =
    Circ.create ~roles:(Circ.roles c) ~num_bits:max_bit (Circ.instructions c)
  in
  let st = run ~model body in
  List.iter (run_instruction st Noise.ideal) extra;
  register_distribution st

let total_rho st =
  let dim = 1 lsl st.n in
  Hashtbl.fold
    (fun _ rho acc -> Linalg.Cmat.add acc rho)
    st.branches (Linalg.Cmat.make dim dim)

let trace st = branch_trace (total_rho st)

let purity st =
  let rho = total_rho st in
  branch_trace (Linalg.Cmat.mul rho rho)
