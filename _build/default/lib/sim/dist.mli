(** Probability distributions over classical bit-string outcomes
    (register values encoded as in {!Bits}). *)

type t

(** [create ~width pairs] builds a distribution; probabilities are
    clipped at 0 and the result is NOT renormalized. *)
val create : width:int -> (int * float) list -> t

val width : t -> int

(** Probability of an outcome (0 when absent). *)
val prob : t -> int -> float

(** Outcomes with probability above 1e-12, ascending. *)
val support : t -> int list

(** All (outcome, probability) pairs, ascending by outcome. *)
val to_list : t -> (int * float) list

val total : t -> float

(** Rescale to total mass 1.  @raise Invalid_argument on zero mass. *)
val normalize : t -> t

(** Total-variation distance (1/2 L1). *)
val tv_distance : t -> t -> float

(** [approx_equal ?eps a b] holds when every outcome's probabilities
    differ by at most [eps] (default 1e-9). *)
val approx_equal : ?eps:float -> t -> t -> bool

(** [map_outcome f d] pushes the distribution through [f] (merging
    collisions); the result has width [width']. *)
val map_outcome : width':int -> (int -> int) -> t -> t

(** [marginal ~bits d] keeps only the given register bits (in the given
    order: output bit [k] is input bit [List.nth bits k]). *)
val marginal : bits:int list -> t -> t

(** Most probable outcome. @raise Invalid_argument on empty support. *)
val mode : t -> int * float

(** {1 Sampling}

    Walker's alias method: O(support) preprocessing, O(1) per draw —
    turning an exact distribution (from {!Exact} or {!Density}) into a
    shot source far cheaper than re-simulating per shot. *)

type sampler

(** @raise Invalid_argument on zero total mass (normalizes internally). *)
val sampler : t -> sampler

(** Draw one outcome. *)
val sample : sampler -> Random.State.t -> int

val pp : Format.formatter -> t -> unit
