(** Measurement-error mitigation by confusion-matrix inversion — the
    standard readout-calibration procedure on IBM devices, built here
    on the noise stack: calibrate by preparing every basis state of
    the measured qubits under the noise model, estimate the confusion
    matrix A (A[observed][prepared]), then un-mix observed histograms
    by solving A x = y and projecting back onto the simplex. *)

type t

(** Number of classical bits the calibration covers. *)
val bits : t -> int

(** Confusion-matrix entry P(observe | prepared). *)
val confusion : t -> observed:int -> prepared:int -> float

(** Analytic calibration for independent symmetric readout flips. *)
val ideal_confusion : p_flip:float -> bits:int -> t

(** [calibrate ?seed ?shots ~model ~qubits ~num_qubits ()] estimates
    the confusion matrix empirically: for each basis state of
    [qubits] (within a [num_qubits] device), prepare it with X gates,
    measure under [model], and tally.  [shots] defaults to 2048 per
    basis state.  At most 10 qubits. *)
val calibrate :
  ?seed:int ->
  ?shots:int ->
  model:Noise.model ->
  qubits:int list ->
  num_qubits:int ->
  unit ->
  t

(** [apply t dist] solves the linear system and clips/renormalizes;
    [dist] must be over exactly [bits t] bits.
    @raise Invalid_argument on width mismatch or a singular matrix. *)
val apply : t -> Dist.t -> Dist.t
