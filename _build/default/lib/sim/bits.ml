let get v k = (v lsr k) land 1 = 1
let set v k b = if b then v lor (1 lsl k) else v land lnot (1 lsl k)

let to_string ~width v =
  String.init width (fun k -> if get v k then '1' else '0')

let of_string s =
  let v = ref 0 in
  String.iteri
    (fun k c ->
      match c with
      | '0' -> ()
      | '1' -> v := set !v k true
      | _ -> invalid_arg "Bits.of_string: non-binary character")
    s;
  !v
