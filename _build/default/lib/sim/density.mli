open Circuit

(** Exact density-matrix simulation with noise channels.

    Where {!Noise} samples noisy trajectories (Monte-Carlo), this
    module evolves the density matrix through the same channels and
    yields the {e exact} noisy outcome distribution — no sampling
    error, at the cost of 4^n state (capped at 8 qubits, ample for
    2-qubit dynamic circuits).

    Classical correlations from mid-circuit measurement are tracked by
    branching: the state is a map from register values to unnormalized
    conditional density matrices, so classically controlled gates and
    readout errors compose exactly.

    Channel placement mirrors {!Noise.run_shot}: depolarizing after
    each unitary (per involved qubit), feed-forward dephasing per
    conditioned gate, readout bit-flip on measurement records, reset
    residual excitation. *)

type t

(** [run ?model c] evolves |0..0><0..0| through the circuit;
    [model] defaults to {!Noise.ideal}.
    @raise Invalid_argument beyond 8 qubits. *)
val run : ?model:Noise.model -> Circ.t -> t

(** Exact distribution over the classical register. *)
val register_distribution : t -> Dist.t

(** [measured_distribution ?model ~measures c] appends terminal
    measurements (ideal readout on them unless [model] says otherwise)
    and returns the exact register distribution. *)
val measured_distribution :
  ?model:Noise.model -> measures:(int * int) list -> Circ.t -> Dist.t

(** Tr(rho^2) of the total (register-averaged) state: 1 on pure
    states, 1/2^n at the maximally mixed state. *)
val purity : t -> float

(** Total trace (should be 1 up to numerics) — a sanity check that
    every channel is trace-preserving. *)
val trace : t -> float
