open Circuit

type histogram = { w : int; total : int; counts : (int, int) Hashtbl.t }

let tally counts outcome =
  let prev = Option.value ~default:0 (Hashtbl.find_opt counts outcome) in
  Hashtbl.replace counts outcome (prev + 1)

let run_shots ?(seed = 0xC0FFEE) ~shots c =
  let rng = Random.State.make [| seed |] in
  let counts = Hashtbl.create 16 in
  for _ = 1 to shots do
    let st = Statevector.run ~rng c in
    tally counts (Statevector.register st)
  done;
  { w = Circ.num_bits c; total = shots; counts }

let with_measures ~measures c =
  let extra =
    List.map (fun (qubit, bit) -> Instruction.Measure { qubit; bit }) measures
  in
  let max_bit =
    List.fold_left (fun acc (_, b) -> max acc (b + 1)) (Circ.num_bits c)
      measures
  in
  Circ.create ~roles:(Circ.roles c) ~num_bits:max_bit
    (Circ.instructions c @ extra)

let run_shots_measured ?seed ~shots ~measures c =
  run_shots ?seed ~shots (with_measures ~measures c)

let collect ~width ~shots f =
  let counts = Hashtbl.create 16 in
  for _ = 1 to shots do
    tally counts (f ())
  done;
  { w = width; total = shots; counts }

let sample_dist ?(seed = 0xA11A5) ~shots dist =
  let sm = Dist.sampler dist in
  let rng = Random.State.make [| seed |] in
  collect ~width:(Dist.width dist) ~shots (fun () -> Dist.sample sm rng)

let shots h = h.total
let width h = h.w
let count h o = Option.value ~default:0 (Hashtbl.find_opt h.counts o)
let frequency h o = float_of_int (count h o) /. float_of_int h.total

let to_list h =
  Hashtbl.fold (fun o n acc -> (o, n) :: acc) h.counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_dist h =
  Dist.create ~width:h.w
    (List.map
       (fun (o, n) -> (o, float_of_int n /. float_of_int h.total))
       (to_list h))

let pp fmt h =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (o, n) ->
      Format.fprintf fmt "%s : %d@," (Bits.to_string ~width:h.w o) n)
    (to_list h);
  Format.fprintf fmt "@]"
