open Circuit

type pauli = I | X | Y | Z

type term = { coeff : float; paulis : (int * pauli) list }

type t = term list

let single p q = [ { coeff = 1.; paulis = [ (q, p) ] } ]
let z q = single Z q
let x q = single X q
let y q = single Y q
let zz a b = [ { coeff = 1.; paulis = [ (a, Z); (b, Z) ] } ]
let scale a t = List.map (fun term -> { term with coeff = a *. term.coeff }) t
let add a b = a @ b

let gate_of_pauli = function
  | I -> None
  | X -> Some Gate.X
  | Y -> Some Gate.Y
  | Z -> Some Gate.Z

let term_expectation st term =
  let n = Statevector.num_qubits st in
  let rec distinct = function
    | [] -> true
    | (q, _) :: rest -> (not (List.mem_assoc q rest)) && distinct rest
  in
  if not (distinct term.paulis) then
    invalid_arg "Observable.expectation: repeated qubit in a term";
  List.iter
    (fun (q, _) ->
      if q < 0 || q >= n then
        invalid_arg "Observable.expectation: qubit out of range")
    term.paulis;
  (* <psi|P|psi> = <psi | (P psi)> *)
  let transformed = Statevector.copy st in
  List.iter
    (fun (q, p) ->
      match gate_of_pauli p with
      | Some g -> Statevector.apply_gate transformed g q
      | None -> ())
    term.paulis;
  let bra = Statevector.amplitudes st in
  let ket = Statevector.amplitudes transformed in
  term.coeff *. (Linalg.Cvec.dot bra ket).Complex.re

let expectation st t =
  List.fold_left (fun acc term -> acc +. term_expectation st term) 0. t

let expectation_leaves leaves t =
  List.fold_left
    (fun acc (leaf : Exact.leaf) ->
      acc +. (leaf.probability *. expectation leaf.state t))
    0. leaves
