(** Pauli observables and expectation values.

    An observable is a real-weighted sum of Pauli strings; expectation
    values are taken against statevectors or against the classical
    mixture an {!Exact} run produces.  The test suite uses this to
    verify the phase-kickback invariant behind the whole paper: the
    answer qubit of a DJ/BV oracle stays in the <X> = -1 eigenstate. *)

type pauli = I | X | Y | Z

(** A term: coefficient and one Pauli per listed qubit (identity
    elsewhere). *)
type term = { coeff : float; paulis : (int * pauli) list }

type t = term list

(** Single-qubit shorthands. *)
val z : int -> t

val x : int -> t
val y : int -> t

(** [zz a b] is the two-point correlator Z_a Z_b. *)
val zz : int -> int -> t

val scale : float -> t -> t
val add : t -> t -> t

(** <psi| O |psi>.
    @raise Invalid_argument when a qubit index is out of range or a
    term repeats a qubit. *)
val expectation : Statevector.t -> t -> float

(** Expectation over the classical mixture of branch states, weighted
    by branch probability. *)
val expectation_leaves : Exact.leaf list -> t -> float
