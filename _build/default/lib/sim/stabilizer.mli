open Circuit

(** CHP stabilizer-tableau simulation (Aaronson–Gottesman).

    BV circuits — and their dynamic realizations, whose only
    non-unitary primitives are measurement, reset and classically
    controlled X — are pure Clifford circuits, so they simulate in
    O(n^2) per measurement instead of O(2^n): this engine demonstrates
    the paper's scalability story at hundreds of qubits, far beyond
    the statevector limit.

    Supported gates: H, X, Y, Z, S, S†, CX, CZ (plain or classically
    conditioned); measurement and reset.  {!supports} checks a circuit
    up front. *)

type t

(** Fresh |0..0> tableau.  [n] up to 4096. *)
val create : int -> num_bits:int -> t

val num_qubits : t -> int
val register : t -> int

(** True when every instruction is Clifford (see above). *)
val supports : Circ.t -> bool

exception Unsupported of string

(** [run ~rng c] executes one shot.
    @raise Unsupported on non-Clifford instructions. *)
val run : rng:Random.State.t -> Circ.t -> t

(** [run_shots ?seed ~shots c] tallies register outcomes. *)
val run_shots : ?seed:int -> shots:int -> Circ.t -> Runner.histogram

(** Measure qubit [q] mid-simulation (used by {!run}; exposed for
    custom drivers).  Returns the outcome. *)
val measure : rng:Random.State.t -> t -> int -> bool
