lib/decompose/barenco.mli: Circuit Instruction
