lib/decompose/mct.ml: Array Circuit Gate Instruction List
