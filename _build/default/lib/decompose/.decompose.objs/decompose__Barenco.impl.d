lib/decompose/barenco.ml: Circuit Gate Instruction
