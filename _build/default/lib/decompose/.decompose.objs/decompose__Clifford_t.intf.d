lib/decompose/clifford_t.mli: Circuit Instruction
