lib/decompose/clifford_t.ml: Circuit Float Gate Instruction
