lib/decompose/ancilla_unroll.ml: Circuit Gate Instruction List
