lib/decompose/peephole.mli: Circ Circuit
