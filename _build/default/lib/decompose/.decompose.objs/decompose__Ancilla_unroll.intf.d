lib/decompose/ancilla_unroll.mli: Circuit Instruction
