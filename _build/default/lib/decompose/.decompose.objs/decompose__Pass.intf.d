lib/decompose/pass.mli: Circ Circuit
