lib/decompose/mct.mli: Circuit Instruction
