lib/decompose/peephole.ml: Array Circ Circuit Float Gate Hashtbl Instruction List
