lib/decompose/pass.ml: Ancilla_unroll Array Barenco Circ Circuit Clifford_t Gate Hashtbl Instruction List Mct Printf
