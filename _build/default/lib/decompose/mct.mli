open Circuit

(** Multiple-control Toffoli decomposition — the paper's stated future
    work ("dynamic realization of Multiple Control Toffoli gates"),
    included here as an extension.

    The V-chain construction computes the AND of the controls into
    clean ancilla qubits pairwise, applies one CX, and uncomputes.
    [n] controls need [n - 2] clean ancillas (none for n <= 2). *)

(** Number of clean ancillas {!v_chain} needs for [n] controls. *)
val ancillas_needed : int -> int

(** [v_chain ~controls ~target ~ancillas] realizes
    [C^nX(controls, target)] with 2-control Toffoli gates, uncomputing
    the AND chain afterwards.
    @raise Invalid_argument when too few ancillas are supplied or a
    qubit is repeated. *)
val v_chain :
  controls:int list -> target:int -> ancillas:int list -> Instruction.t list

(** {!v_chain} without the uncomputation: the AND chain is left on the
    ancillas (their values are classical functions of the controls) —
    the form the DQC transformation needs, where ancillas are measured
    instead of uncomputed. *)
val v_chain_no_uncompute :
  controls:int list -> target:int -> ancillas:int list -> Instruction.t list

(** [dirty_staircase ~controls ~target ~borrowed] realizes
    [C^nX(controls, target)] with [n - 2] {e borrowed} qubits whose
    state is arbitrary and is restored afterwards (Barenco et al.
    Lemma 7.2) — usable when the circuit has idle qubits, at roughly
    twice the Toffoli count of the clean {!v_chain}.
    @raise Invalid_argument on too few borrowed qubits or repeats. *)
val dirty_staircase :
  controls:int list -> target:int -> borrowed:int list -> Instruction.t list
