open Circuit

let cg g c t = Instruction.Unitary (Instruction.app ~controls:[ c ] g t)

let morph ~parity ~controls ~ancilla =
  let symdiff =
    List.filter (fun q -> not (List.mem q controls)) parity
    @ List.filter (fun q -> not (List.mem q parity)) controls
  in
  List.map (fun q -> cg Gate.X q ancilla) (List.sort compare symdiff)

let release ~parity ~ancilla = morph ~parity ~controls:[] ~ancilla

let toffoli_shared ~parity ~c1 ~c2 ~target ~ancilla =
  let instrs =
    (cg Gate.V c2 target :: morph ~parity ~controls:[ c1; c2 ] ~ancilla)
    @ [ cg Gate.Vdg ancilla target; cg Gate.V c1 target ]
  in
  (instrs, [ c1; c2 ])

let toffoli ~c1 ~c2 ~target ~ancilla =
  let computed, parity = toffoli_shared ~parity:[] ~c1 ~c2 ~target ~ancilla in
  (* uncompute before the trailing CV so the netlist reads as Eqn (3) *)
  match List.rev computed with
  | last_cv :: rev_prefix ->
      List.rev rev_prefix @ release ~parity ~ancilla @ [ last_cv ]
  | [] -> assert false
