open Circuit

(** Whole-circuit substitution passes over Toffoli and CV gates.

    The two dynamic Toffoli schemes of the paper correspond to running
    {!substitute_toffoli} with [`Barenco] (dynamic-1) or
    [`Ancilla ...] (dynamic-2) before the DQC transformation. *)

(** Ancilla allocation policy for the unrolled scheme:
    - [`Fresh]: one new ancilla per Toffoli (Eqn 3/4 literally);
    - [`Per_target]: one ancilla per distinct target — Lemma 1;
    - [`Global]: a single ancilla for the whole circuit (extension of
      Lemma 1: the parity morph works across targets too). *)
type sharing = [ `Fresh | `Per_target | `Global ]

type toffoli_scheme =
  [ `Clifford_t  (** Fig 2 network *)
  | `Barenco  (** Eqn 1 CV/CV†/CX network *)
  | `Ancilla of sharing  (** Eqn 3 network, ancillas appended *) ]

(** [substitute_toffoli ?mct_reduction scheme c] rewrites every
    2-control Toffoli.  With [`Ancilla _] the result gains ancilla
    qubits (role {!Circ.Ancilla}) appended after the existing qubits.
    Gates with three or more controls are first reduced with
    {!reduce_mct}; [mct_reduction] selects the reduction shape
    ([`Unitary], the default, or [`Dqc] — see {!reduce_mct}).
    @raise Invalid_argument on multi-control gates other than X. *)
val substitute_toffoli :
  ?mct_reduction:[ `Unitary | `Dqc ] -> toffoli_scheme -> Circ.t -> Circ.t

(** Expand CV/CV† instructions (including classically controlled ones)
    into the Clifford+T networks of Fig 6. *)
val expand_cv : Circ.t -> Circ.t

(** [reduce_mct ?for_dqc c] rewrites gates with >= 3 controls into
    2-control Toffolis with the V-chain, appending the needed clean
    scratch qubits.

    With the default [~for_dqc:false] the chain is uncomputed and the
    scratch qubits (role {!Circ.Ancilla}) are shared across gates —
    the standard unitary-preserving reduction.

    With [~for_dqc:true] the reduction is shaped for the dynamic
    transformation: no uncomputation, fresh scratch qubits per gate,
    and the scratch qubits get role {!Circ.Data} so the transformation
    measures them and their values can serve as classical controls.
    (Uncomputed chains would require quantum gates between scratch
    qubits living in different iterations, which no 2-qubit schedule
    can realize.) *)
val reduce_mct : ?for_dqc:bool -> Circ.t -> Circ.t
