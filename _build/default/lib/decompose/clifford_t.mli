open Circuit

(** Clifford+T realizations (paper Fig 2 and Fig 6).

    All decompositions are exact (not merely up to global phase), so
    they remain correct under quantum controls. *)

(** The 15-gate Toffoli network of Fig 2. *)
val toffoli : c1:int -> c2:int -> target:int -> Instruction.t list

(** Controlled-sqrt(X), Fig 6a: [H . T(c) . T(t) . CX . T†(t) . CX . H]. *)
val cv : control:int -> target:int -> Instruction.t list

(** Controlled-inverse-sqrt(X), Fig 6b. *)
val cvdg : control:int -> target:int -> Instruction.t list

(** Controlled-phase(theta) as [P(t/2) P(t/2) CX P(-t/2) CX] — the
    building block behind {!cv}. *)
val cphase : theta:float -> control:int -> target:int -> Instruction.t list
