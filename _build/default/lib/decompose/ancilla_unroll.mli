open Circuit

(** Ancilla-unrolled Toffoli realization — the paper's Eqn (3), the
    netlist behind the {e dynamic-2} scheme.

    A clean ancilla [a] receives the parity [c1 XOR c2], the CV†'s
    control moves from a data qubit to the ancilla, and the parity is
    uncomputed afterwards.  This removes the CX sandwich between data
    qubits: after DQC transformation every classically controlled gate
    lands in the ancilla's own iteration, at the price of one extra
    iteration, one active reset and two extra conditioned X gates per
    Toffoli (the overhead the paper quotes against dynamic-1).

    Lemma 1: consecutive Toffoli gates can share one ancilla; chaining
    {!toffoli_shared} emits only the {!morph} CXs (the symmetric
    difference of the parities) instead of a full
    uncompute-then-recompute, and {!release} restores |0> at the end. *)

(** [CV(c2,t) . CX(c1,a) . CX(c2,a) . CV†(a,t) . CX(c1,a) . CX(c2,a)
    . CV(c1,t)] — self-contained, ancilla returned to |0>. *)
val toffoli :
  c1:int -> c2:int -> target:int -> ancilla:int -> Instruction.t list

(** [morph ~parity ~controls ~ancilla] emits the CX gates turning an
    ancilla holding the XOR of [parity] into one holding the XOR of
    [controls] (their symmetric difference). *)
val morph :
  parity:int list -> controls:int list -> ancilla:int -> Instruction.t list

(** [toffoli_shared ~parity ~c1 ~c2 ~target ~ancilla] is the Eqn (5)
    form: morph the ancilla's current parity instead of recomputing,
    and leave the new parity in place.  Returns the instructions and
    the new parity [c1; c2]. *)
val toffoli_shared :
  parity:int list ->
  c1:int ->
  c2:int ->
  target:int ->
  ancilla:int ->
  Instruction.t list * int list

(** Uncompute a leftover parity, restoring the ancilla to |0>. *)
val release : parity:int list -> ancilla:int -> Instruction.t list
