open Circuit

let ancillas_needed n = max 0 (n - 2)

let ccx c1 c2 t = Instruction.Unitary (Instruction.app ~controls:[ c1; c2 ] Gate.X t)
let cx c t = Instruction.Unitary (Instruction.app ~controls:[ c ] Gate.X t)
let x t = Instruction.Unitary (Instruction.app Gate.X t)

let rec distinct = function
  | [] -> true
  | q :: rest -> (not (List.mem q rest)) && distinct rest

(* a.(0) = c0 & c1; a.(k) = a.(k-1) & c.(k+1); target ^= last;
   then uncompute the chain in reverse. *)
let v_chain_general ~uncompute ~controls ~target ~ancillas =
  let n = List.length controls in
  if List.length ancillas < ancillas_needed n then
    invalid_arg "Mct.v_chain: not enough ancillas";
  if not (distinct (controls @ ancillas @ [ target ])) then
    invalid_arg "Mct.v_chain: repeated qubit";
  match controls with
  | [] -> [ x target ]
  | [ c ] -> [ cx c target ]
  | [ c1; c2 ] -> [ ccx c1 c2 target ]
  | c1 :: c2 :: rest ->
      (* a0 = c1 AND c2; a_{k+1} = a_k AND c_{k+3}; the final control
         feeds the Toffoli onto the target directly *)
      let rec split_last acc = function
        | [] -> assert false
        | [ last ] -> (List.rev acc, last)
        | c :: more -> split_last (c :: acc) more
      in
      let chain_controls, final_control = split_last [] rest in
      let ancillas = Array.of_list ancillas in
      let compute = ref [ ccx c1 c2 ancillas.(0) ] in
      List.iteri
        (fun k c -> compute := ccx c ancillas.(k) ancillas.(k + 1) :: !compute)
        chain_controls;
      let compute = List.rev !compute in
      (* the chain is made of self-inverse gates, so uncomputation is
         the computation reversed *)
      compute
      @ [ ccx final_control ancillas.(n - 3) target ]
      @ (if uncompute then List.rev compute else [])

let v_chain ~controls ~target ~ancillas =
  v_chain_general ~uncompute:true ~controls ~target ~ancillas

let v_chain_no_uncompute ~controls ~target ~ancillas =
  v_chain_general ~uncompute:false ~controls ~target ~ancillas

(* Barenco et al. Lemma 7.2: the staircase block applied twice flips
   the target on all-ones controls and restores the borrowed qubits.
   Block: T(cn, b_m, t); down the stairs; T(c1, c2, b_1); up the
   stairs — where stair i couples c_{i+2} and b_i into b_{i+1}. *)
let dirty_staircase ~controls ~target ~borrowed =
  let n = List.length controls in
  if n < 3 then
    invalid_arg "Mct.dirty_staircase: needs at least 3 controls";
  if List.length borrowed < n - 2 then
    invalid_arg "Mct.dirty_staircase: not enough borrowed qubits";
  let borrowed = List.filteri (fun k _ -> k < n - 2) borrowed in
  if not (distinct (controls @ borrowed @ [ target ])) then
    invalid_arg "Mct.dirty_staircase: repeated qubit";
  let c = Array.of_list controls in
  let b = Array.of_list borrowed in
  let m = n - 2 in
  let top = ccx c.(n - 1) b.(m - 1) target in
  let down =
    List.init (m - 1) (fun k ->
        let i = m - 1 - k in
        (* couple c_{i+1} (0-based) and b_{i-1} into b_i *)
        ccx c.(i + 1) b.(i - 1) b.(i))
  in
  let bottom = ccx c.(0) c.(1) b.(0) in
  let up = List.rev down in
  let block = (top :: down) @ (bottom :: up) in
  block @ block
