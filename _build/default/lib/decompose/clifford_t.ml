open Circuit

let u ?controls g t = Instruction.Unitary (Instruction.app ?controls g t)
let cx c t = u ~controls:[ c ] Gate.X t

(* Nielsen & Chuang Fig 4.9 — the network the paper's Fig 2 shows. *)
let toffoli ~c1 ~c2 ~target =
  [
    u Gate.H target;
    cx c2 target;
    u Gate.Tdg target;
    cx c1 target;
    u Gate.T target;
    cx c2 target;
    u Gate.Tdg target;
    cx c1 target;
    u Gate.T c2;
    u Gate.T target;
    u Gate.H target;
    cx c1 c2;
    u Gate.T c1;
    u Gate.Tdg c2;
    cx c1 c2;
  ]

let cphase ~theta ~control ~target =
  let half = theta /. 2. in
  [
    u (Gate.Phase half) control;
    u (Gate.Phase half) target;
    cx control target;
    u (Gate.Phase (-.half)) target;
    cx control target;
  ]

(* CV = (I ⊗ H) . CP(pi/2) . (I ⊗ H); with P(pi/4) = T this is the
   7-gate network of Fig 6a. *)
let cv ~control ~target =
  (u Gate.H target :: cphase ~theta:(Float.pi /. 2.) ~control ~target)
  @ [ u Gate.H target ]

let cvdg ~control ~target =
  (u Gate.H target :: cphase ~theta:(-.Float.pi /. 2.) ~control ~target)
  @ [ u Gate.H target ]
