open Circuit

let cg g c t = Instruction.Unitary (Instruction.app ~controls:[ c ] g t)

let toffoli ~c1 ~c2 ~target =
  [
    cg Gate.V c2 target;
    cg Gate.X c1 c2;
    cg Gate.Vdg c2 target;
    cg Gate.X c1 c2;
    cg Gate.V c1 target;
  ]
