open Circuit

(** Peephole simplification: cancel adjacent inverse gate pairs.

    Two unitary applications cancel when they act on the same wires
    (same target, same control set), their gates are mutual adjoints,
    and no instruction between them touches any of those wires.
    Classically controlled pairs additionally require identical
    conditions and no intervening write to the condition bit.

    Running this after a dynamic transformation removes the H·H pairs
    the CV/CV† expansions leave on the answer wire — the cleanup the
    paper's dynamic-1 gate counts imply. *)

(** Cancel inverse pairs until a fixpoint is reached. *)
val cancel_inverses : Circ.t -> Circ.t

(** Number of gates removed by {!cancel_inverses}. *)
val removed_count : Circ.t -> int

(** Merge adjacent Rz/Phase rotations on the same wire (same rules as
    {!cancel_inverses} for adjacency), dropping rotations that reduce
    to the identity modulo 2.pi.  Useful after a
    {!Transpile.Basis.to_native} translation, which produces long Rz
    runs. *)
val merge_rotations : Circ.t -> Circ.t
