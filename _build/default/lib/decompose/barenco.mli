open Circuit

(** Barenco et al. CV/CV†/CX realization of the Toffoli gate — the
    paper's Eqn (1), the netlist behind the {e dynamic-1} scheme. *)

(** [CV(c2,t) . CX(c1,c2) . CV†(c2,t) . CX(c1,c2) . CV(c1,t)]. *)
val toffoli : c1:int -> c2:int -> target:int -> Instruction.t list
