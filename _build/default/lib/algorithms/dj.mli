open Circuit

(** Deutsch–Jozsa circuits around a bit-flip oracle.

    Layout: data qubits 0..n-1, answer qubit n prepared in |-> by X.H;
    Hadamards surround the oracle on every data qubit. *)

(** [circuit oracle] is the traditional DJ circuit (Toffoli gates, if
    any, are kept as 2-control X instructions — substitute them with a
    {!Decompose.Pass} scheme for hardware-level counting). *)
val circuit : Oracle.t -> Circ.t

(** DJ decides constant-vs-balanced from the all-zero data outcome.
    [zero_outcome_probability oracle] is the exact probability that
    every data qubit measures 0 on the traditional circuit:
    1 for constant oracles, 0 for balanced ones. *)
val zero_outcome_probability : Oracle.t -> float

(** The most probable data outcome of the ideal traditional circuit —
    the "expected outcome" whose shot frequency Fig 7 plots. *)
val expected_outcome : Oracle.t -> int

(** The eight Toffoli-free oracles of Table I, in table order:
    CONST_0, CONST_1, PASS_1, PASS_2, INVERT_1, INVERT_2, XOR, XNOR. *)
val toffoli_free_oracles : Oracle.t list

(** Look an oracle up by its table name (e.g. ["DJ_XOR"]). *)
val oracle_by_name : string -> Oracle.t option

(** [classify ?seed ?dynamic oracle] runs one shot of the DJ circuit
    ([dynamic], default true, uses the 2-qubit realization) and decides
    from the data outcome: all-zero means constant.  Deterministically
    correct on promise-satisfying (constant or balanced) oracles. *)
val classify :
  ?seed:int -> ?dynamic:bool -> Oracle.t -> [ `Constant | `Balanced ]
