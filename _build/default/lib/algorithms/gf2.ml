let dot a b =
  let rec popcount acc v =
    if v = 0 then acc else popcount (acc + (v land 1)) (v lsr 1)
  in
  popcount 0 (a land b) land 1 = 1

(* Gaussian elimination: returns (pivot column, row) list in echelon
   form, highest pivot first *)
let echelon ~width vectors =
  let rows = ref [] in
  (* rows: (pivot, value) sorted by pivot descending *)
  let reduce v =
    List.fold_left
      (fun v (pivot, row) ->
        if (v lsr pivot) land 1 = 1 then v lxor row else v)
      v !rows
  in
  List.iter
    (fun v ->
      let v = reduce (v land ((1 lsl width) - 1)) in
      if v <> 0 then begin
        let rec top k = if (v lsr k) land 1 = 1 then k else top (k - 1) in
        let pivot = top (width - 1) in
        rows :=
          List.sort (fun (a, _) (b, _) -> compare b a) ((pivot, v) :: !rows)
      end)
    vectors;
  !rows

let rank ~width vectors = List.length (echelon ~width vectors)
let independent ~width vectors = List.map snd (echelon ~width vectors)

let nullspace ~width vectors =
  let rows = echelon ~width vectors in
  let pivots = List.map fst rows in
  let free = List.filter (fun k -> not (List.mem k pivots)) (List.init width (fun k -> k)) in
  (* for each free column f, build the solution with s_f = 1 and pivot
     coordinates chosen to cancel *)
  List.map
    (fun f ->
      let s = ref (1 lsl f) in
      (* process rows bottom-up (lowest pivot first) so each pivot is
         fixed after all coordinates it depends on *)
      List.iter
        (fun (pivot, row) ->
          if dot row !s then s := !s lxor (1 lsl pivot))
        (List.sort (fun (a, _) (b, _) -> compare a b) rows);
      !s)
    free
