(** Linear algebra over GF(2) — the classical post-processing substrate
    Simon's algorithm needs (and a useful tool besides: the ANF
    transform, parity arguments, nullspace searches).

    Vectors are ints (bit [k] = coordinate [k], as in [Sim.Bits]). *)

(** [rank ~width vectors]. *)
val rank : width:int -> int list -> int

(** Row-reduce and drop dependent rows; the result is a basis of the
    span, in echelon order. *)
val independent : width:int -> int list -> int list

(** [nullspace ~width vectors] is a basis of {s | v.s = 0 for all v}
    (dot product = parity of AND). *)
val nullspace : width:int -> int list -> int list

(** Parity dot product over GF(2). *)
val dot : int -> int -> bool
