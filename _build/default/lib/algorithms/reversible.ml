open Circuit

let cx c t = Instruction.Unitary (Instruction.app ~controls:[ c ] Gate.X t)

let ccx c1 c2 t =
  Instruction.Unitary (Instruction.app ~controls:[ c1; c2 ] Gate.X t)

let swap a b = [ cx a b; cx b a; cx a b ]
let fredkin ~control ~t1 ~t2 = [ cx t2 t1; ccx control t1 t2; cx t2 t1 ]
let peres ~a ~b ~c = [ ccx a b c; cx a b ]
let half_adder ~a ~b ~carry = [ ccx a b carry; cx a b ]

(* sum = a XOR b XOR cin (left in cin), carry-out = majority *)
let full_adder ~a ~b ~cin ~carry =
  [ ccx a b carry; cx a b; ccx b cin carry; cx b cin; cx a b ]

let maj ~c ~b ~a = [ cx a b; cx a c; ccx c b a ]
let uma ~c ~b ~a = [ ccx c b a; cx a c; cx c b ]
