open Circuit

let circuit prep =
  let roles = [| Circ.Data; Circ.Data; Circ.Answer |] in
  let b = Circ.Builder.make ~roles ~num_bits:2 () in
  Circ.Builder.gate b prep 0;
  Circ.Builder.h b 1;
  Circ.Builder.cx b 1 2;
  Circ.Builder.cx b 0 1;
  Circ.Builder.h b 0;
  Circ.Builder.measure b ~qubit:0 ~bit:0;
  Circ.Builder.measure b ~qubit:1 ~bit:1;
  Circ.Builder.conditioned b ~bit:1 Gate.X 2;
  Circ.Builder.conditioned b ~bit:0 Gate.Z 2;
  Circ.Builder.build b

(* project the target expectation values against the prepared state:
   fidelity of a pure qubit state = (1 + <psi|sigma|psi>.<sigma>) / 2 *)
let fidelity prep =
  let leaves = Sim.Exact.leaves (circuit prep) in
  (* reference Bloch vector of prep|0> *)
  let reference = Sim.Statevector.create 1 ~num_bits:0 in
  Sim.Statevector.apply_gate reference prep 0;
  let bloch obs st q =
    Sim.Observable.expectation st
      (match obs with
      | `X -> Sim.Observable.x q
      | `Y -> Sim.Observable.y q
      | `Z -> Sim.Observable.z q)
  in
  let rx = bloch `X reference 0
  and ry = bloch `Y reference 0
  and rz = bloch `Z reference 0 in
  let tx =
    List.fold_left
      (fun acc (l : Sim.Exact.leaf) ->
        acc +. (l.probability *. bloch `X l.state 2))
      0. leaves
  and ty =
    List.fold_left
      (fun acc (l : Sim.Exact.leaf) ->
        acc +. (l.probability *. bloch `Y l.state 2))
      0. leaves
  and tz =
    List.fold_left
      (fun acc (l : Sim.Exact.leaf) ->
        acc +. (l.probability *. bloch `Z l.state 2))
      0. leaves
  in
  (1. +. (rx *. tx) +. (ry *. ty) +. (rz *. tz)) /. 2.
