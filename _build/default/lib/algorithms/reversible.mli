open Circuit

(** Classic reversible-logic gadgets — the building blocks of the
    "Toffoli based networks" in the paper's title.  Each gadget is an
    instruction list over caller-chosen qubits; semantics are verified
    in the test suite against truth tables. *)

(** SWAP as three CX. *)
val swap : int -> int -> Instruction.t list

(** Fredkin (controlled-SWAP): swaps [t1] and [t2] when [control] is 1,
    via CX·Toffoli·CX. *)
val fredkin : control:int -> t1:int -> t2:int -> Instruction.t list

(** Peres gate on (a, b, c): a' = a, b' = a XOR b, c' = c XOR ab —
    a Toffoli followed by a CX, the cheapest universal reversible
    gate. *)
val peres : a:int -> b:int -> c:int -> Instruction.t list

(** Half adder: (a, b, carry) with [carry] a clean ancilla becomes
    (a, a XOR b, ab) — sum in [b], carry out in [carry]. *)
val half_adder : a:int -> b:int -> carry:int -> Instruction.t list

(** Full adder: (a, b, cin, carry) with [carry] clean becomes
    (a, b, a XOR b XOR cin, carry-out) — sum in [cin]. *)
val full_adder : a:int -> b:int -> cin:int -> carry:int -> Instruction.t list

(** MAJ gadget of the Cuccaro adder. *)
val maj : c:int -> b:int -> a:int -> Instruction.t list

(** UMA (unmajority-and-add) gadget of the Cuccaro adder. *)
val uma : c:int -> b:int -> a:int -> Instruction.t list
