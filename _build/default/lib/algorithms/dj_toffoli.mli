(** The nine Toffoli-based DJ benchmarks of Table II / Fig 7:
    AND, NAND, OR, NOR, IMPLY_1, IMPLY_2, INHIB_1, INHIB_2 over two
    inputs, and the 3-input full-adder CARRY (majority), built from
    2-control Toffoli instructions plus CX/X. *)

(** All nine oracles in table order. *)
val oracles : Oracle.t list

val oracle_by_name : string -> Oracle.t option

(** Oracle names in table order. *)
val names : string list
