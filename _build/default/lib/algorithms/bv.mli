open Circuit

(** Bernstein–Vazirani circuits (Table I benchmarks).

    The hidden string [s] is given as a binary string whose character
    [i] belongs to data qubit [i].  The paper's generator only touches
    data qubits inside the support of [s] ([`Sparse], the Table I
    counting); [`Textbook] applies the Hadamard sandwich to every data
    qubit. *)

type variant = [ `Sparse | `Textbook ]

(** [circuit ?variant s] builds the traditional BV circuit:
    |s| data qubits plus one answer qubit prepared in |-> by X.H.
    @raise Invalid_argument on non-binary [s] or empty [s]. *)
val circuit : ?variant:variant -> string -> Circ.t

(** The register value BV's data measurements should produce, i.e. [s]
    itself in the {!Sim.Bits} encoding. *)
val expected_outcome : string -> int

(** The hidden-string benchmarks of Table I, in table order
    (all 3-bit, then all 4-bit non-zero strings the paper lists). *)
val paper_benchmarks : string list

(** [recover ?seed ?dynamic s] runs one shot of the BV circuit for the
    hidden string [s] ([dynamic], default true, uses the 2-qubit
    realization) and returns the recovered string — always equal to
    [s], since BV is deterministic. *)
val recover : ?seed:int -> ?dynamic:bool -> string -> string
