open Circuit

(** Bit-flip oracles U_f : |x>|y> -> |x>|y XOR f(x)> over [arity] data
    qubits (0..arity-1) and one answer qubit ([arity]). *)

type t = {
  name : string;
  arity : int;
  instrs : Instruction.t list;
      (** over qubits 0..arity (answer = [arity]) *)
  truth : Boolean_fun.t;
}

(** [make ~name ~arity ~truth instrs]; shapes must agree.
    @raise Invalid_argument on arity mismatch. *)
val make :
  name:string -> arity:int -> truth:Boolean_fun.t -> Instruction.t list -> t

(** [synthesize ~name truth] builds an oracle for an arbitrary boolean
    function from its algebraic normal form (positive-polarity
    Reed-Muller): one multi-control Toffoli per ANF monomial, an [X]
    for the constant term.  The result may contain gates with more
    than two controls; reduce them with {!Decompose.Pass.reduce_mct}
    or transform directly with [Dqc.Transform.transform ~mct:true]. *)
val synthesize : name:string -> Boolean_fun.t -> t

(** The ANF monomials of a boolean function: each entry is the list of
    variable indices of one monomial (empty list = constant 1 term). *)
val anf_monomials : Boolean_fun.t -> int list list

(** Check by exact simulation that [instrs] maps every basis input
    |x>|0> to |x>|f(x)> (no residual phases, data unchanged). *)
val implements_truth : t -> bool

(** Number of 2-control Toffoli gates in the oracle body. *)
val toffoli_count : t -> int
