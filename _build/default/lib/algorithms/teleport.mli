open Circuit

(** Quantum teleportation — the primordial dynamic quantum circuit
    (mid-circuit measurement + classically controlled corrections),
    packaged as a library algorithm and verified by state fidelity. *)

(** [circuit prep] teleports the state [prep]|0> from qubit 0 to
    qubit 2: Bell pair on (1,2), Bell measurement of (0,1) into bits
    (0,1), conditioned X/Z corrections on qubit 2. *)
val circuit : Gate.t -> Circ.t

(** Fidelity |<psi|phi>|^2 between the teleported qubit-2 state and
    [prep]|0>, averaged over measurement branches (1 for a correct
    implementation). *)
val fidelity : Gate.t -> float
