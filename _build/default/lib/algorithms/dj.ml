open Circuit

let circuit (o : Oracle.t) =
  let n = o.arity in
  let roles =
    Array.init (n + 1) (fun q -> if q < n then Circ.Data else Circ.Answer)
  in
  let b = Circ.Builder.make ~roles ~num_bits:n () in
  let answer = n in
  Circ.Builder.x b answer;
  Circ.Builder.h b answer;
  for q = 0 to n - 1 do
    Circ.Builder.h b q
  done;
  Circ.Builder.add_list b o.instrs;
  for q = 0 to n - 1 do
    Circ.Builder.h b q
  done;
  Circ.Builder.build b

let data_distribution o =
  let c = circuit o in
  let measures = List.init o.Oracle.arity (fun q -> (q, q)) in
  Sim.Exact.measured_distribution ~measures c

let zero_outcome_probability o = Sim.Dist.prob (data_distribution o) 0
let expected_outcome o = fst (Sim.Dist.mode (data_distribution o))

let u ?controls g t = Instruction.Unitary (Instruction.app ?controls g t)
let cx c t = u ~controls:[ c ] Gate.X t

let oracle2 name table instrs =
  Oracle.make ~name ~arity:2
    ~truth:(Boolean_fun.create ~arity:2 ~table)
    instrs

(* truth tables are little-endian in the input index: bit k of the
   table is f(k) with k = a + 2b for inputs (a, b) *)
let toffoli_free_oracles =
  [
    oracle2 "DJ_CONST_0" 0b0000 [];
    oracle2 "DJ_CONST_1" 0b1111 [ u Gate.X 2 ];
    oracle2 "DJ_PASS_1" 0b1010 [ cx 0 2 ];
    oracle2 "DJ_PASS_2" 0b1100 [ cx 1 2 ];
    oracle2 "DJ_INVERT_1" 0b0101 [ cx 0 2; u Gate.X 2 ];
    oracle2 "DJ_INVERT_2" 0b0011 [ cx 1 2; u Gate.X 2 ];
    oracle2 "DJ_XOR" 0b0110 [ cx 0 2; cx 1 2 ];
    oracle2 "DJ_XNOR" 0b1001 [ cx 0 2; cx 1 2; u Gate.X 2 ];
  ]

let oracle_by_name name =
  List.find_opt (fun (o : Oracle.t) -> o.name = name) toffoli_free_oracles

let classify ?(seed = 0xD1) ?(dynamic = true) o =
  let rng = Random.State.make [| seed |] in
  let outcome =
    if dynamic then begin
      let r = Dqc.Transform.transform (circuit o) in
      let st = Sim.Statevector.run ~rng r.circuit in
      Sim.Statevector.register st land ((1 lsl o.Oracle.arity) - 1)
    end
    else begin
      let c = circuit o in
      let measured =
        Circ.create ~roles:(Circ.roles c) ~num_bits:o.Oracle.arity
          (Circ.instructions c
          @ List.init o.Oracle.arity (fun q ->
                Instruction.Measure { qubit = q; bit = q }))
      in
      let st = Sim.Statevector.run ~rng measured in
      Sim.Statevector.register st
    end
  in
  if outcome = 0 then `Constant else `Balanced
