type t = { arity : int; table : int }

let create ~arity ~table =
  if arity < 0 || arity > 20 then invalid_arg "Boolean_fun.create: arity";
  { arity; table = table land ((1 lsl (1 lsl arity)) - 1) }

let of_fun ~arity f =
  let table = ref 0 in
  for k = 0 to (1 lsl arity) - 1 do
    if f k then table := !table lor (1 lsl k)
  done;
  create ~arity ~table:!table

let arity f = f.arity
let eval f k = (f.table lsr k) land 1 = 1

let ones f =
  let acc = ref 0 in
  for k = 0 to (1 lsl f.arity) - 1 do
    if eval f k then incr acc
  done;
  !acc

let is_constant f = f.table = 0 || f.table = (1 lsl (1 lsl f.arity)) - 1
let is_balanced f = 2 * ones f = 1 lsl f.arity
let equal a b = a.arity = b.arity && a.table = b.table

let pp fmt f =
  Format.fprintf fmt "f/%d:" f.arity;
  for k = 0 to (1 lsl f.arity) - 1 do
    Format.pp_print_char fmt (if eval f k then '1' else '0')
  done
