(** Boolean functions as truth tables — ground truth for oracle
    validation and for classifying DJ benchmarks. *)

type t

(** [create ~arity ~table] with [table] bit [k] = f(k); inputs are
    encoded little-endian (input bit [i] is variable [i]).
    @raise Invalid_argument when arity is outside 0..20. *)
val create : arity:int -> table:int -> t

(** [of_fun ~arity f] tabulates [f]. *)
val of_fun : arity:int -> (int -> bool) -> t

val arity : t -> int
val eval : t -> int -> bool
val is_constant : t -> bool

(** Exactly half the inputs map to 1. *)
val is_balanced : t -> bool

(** Number of inputs mapping to 1. *)
val ones : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
