lib/algorithms/simon.ml: Array Circ Circuit Dqc Gate Gf2 Instruction List Random Sim String
