lib/algorithms/arithmetic.ml: Array Circ Circuit Gate Instruction List Reversible Sim
