lib/algorithms/teleport.ml: Circ Circuit Gate List Sim
