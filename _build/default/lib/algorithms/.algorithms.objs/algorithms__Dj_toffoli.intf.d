lib/algorithms/dj_toffoli.mli: Oracle
