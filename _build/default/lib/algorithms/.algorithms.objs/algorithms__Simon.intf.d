lib/algorithms/simon.mli: Circ Circuit Instruction
