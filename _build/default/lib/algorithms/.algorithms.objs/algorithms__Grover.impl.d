lib/algorithms/grover.ml: Array Circ Circuit Float Gate Instruction List Sim
