lib/algorithms/mct_bench.ml: Boolean_fun Circuit Gate Instruction List Oracle Printf
