lib/algorithms/boolean_fun.ml: Format
