lib/algorithms/bv.mli: Circ Circuit
