lib/algorithms/bv.ml: Array Circ Circuit Dqc Instruction List Random Sim String
