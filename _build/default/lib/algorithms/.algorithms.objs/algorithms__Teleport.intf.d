lib/algorithms/teleport.mli: Circ Circuit Gate
