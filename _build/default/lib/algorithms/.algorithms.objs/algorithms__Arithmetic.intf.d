lib/algorithms/arithmetic.mli: Circ Circuit
