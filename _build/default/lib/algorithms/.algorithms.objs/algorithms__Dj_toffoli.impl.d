lib/algorithms/dj_toffoli.ml: Boolean_fun Circuit Gate Instruction List Oracle
