lib/algorithms/oracle.ml: Array Boolean_fun Circuit Complex Gate Instruction Linalg List Printf Sim
