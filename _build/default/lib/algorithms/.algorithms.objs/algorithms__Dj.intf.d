lib/algorithms/dj.mli: Circ Circuit Oracle
