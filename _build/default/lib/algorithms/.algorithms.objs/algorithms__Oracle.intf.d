lib/algorithms/oracle.mli: Boolean_fun Circuit Instruction
