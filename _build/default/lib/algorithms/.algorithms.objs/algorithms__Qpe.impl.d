lib/algorithms/qpe.ml: Array Circ Circuit Float Gate List Sim
