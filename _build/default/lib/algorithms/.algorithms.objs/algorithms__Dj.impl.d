lib/algorithms/dj.ml: Array Boolean_fun Circ Circuit Dqc Gate Instruction List Oracle Random Sim
