lib/algorithms/mct_bench.mli: Oracle
