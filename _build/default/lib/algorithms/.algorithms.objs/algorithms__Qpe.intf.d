lib/algorithms/qpe.mli: Circ Circuit Sim
