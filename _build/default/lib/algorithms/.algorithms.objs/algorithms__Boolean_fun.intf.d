lib/algorithms/boolean_fun.mli: Format
