lib/algorithms/reversible.ml: Circuit Gate Instruction
