lib/algorithms/reversible.mli: Circuit Instruction
