lib/algorithms/grover.mli: Circ Circuit
