open Circuit

let u ?controls g t = Instruction.Unitary (Instruction.app ?controls g t)
let cx c t = u ~controls:[ c ] Gate.X t
let ccx c1 c2 t = u ~controls:[ c1; c2 ] Gate.X t

let oracle2 name table instrs =
  Oracle.make ~name ~arity:2
    ~truth:(Boolean_fun.create ~arity:2 ~table)
    instrs

(* input index k = a + 2b; answer qubit is 2 *)
let oracles =
  [
    oracle2 "AND" 0b1000 [ ccx 0 1 2 ];
    oracle2 "NAND" 0b0111 [ ccx 0 1 2; u Gate.X 2 ];
    oracle2 "OR" 0b1110 [ cx 0 2; cx 1 2; ccx 0 1 2 ];
    oracle2 "NOR" 0b0001 [ cx 0 2; cx 1 2; ccx 0 1 2; u Gate.X 2 ];
    (* a -> b  =  1 + a + ab *)
    oracle2 "IMPLY_1" 0b1101 [ cx 0 2; ccx 0 1 2; u Gate.X 2 ];
    (* b -> a  =  1 + b + ab *)
    oracle2 "IMPLY_2" 0b1011 [ cx 1 2; ccx 0 1 2; u Gate.X 2 ];
    (* a AND NOT b  =  a + ab *)
    oracle2 "INHIB_1" 0b0010 [ cx 0 2; ccx 0 1 2 ];
    (* b AND NOT a  =  b + ab *)
    oracle2 "INHIB_2" 0b0100 [ cx 1 2; ccx 0 1 2 ];
    (* majority(a, b, c) = ab + ac + bc; k = a + 2b + 4c; answer = 3 *)
    Oracle.make ~name:"CARRY" ~arity:3
      ~truth:(Boolean_fun.of_fun ~arity:3 (fun k ->
          let a = k land 1 and b = (k lsr 1) land 1 and c = (k lsr 2) land 1 in
          a + b + c >= 2))
      [ ccx 0 1 3; ccx 0 2 3; ccx 1 2 3 ];
  ]

let names = List.map (fun (o : Oracle.t) -> o.name) oracles

let oracle_by_name name =
  List.find_opt (fun (o : Oracle.t) -> o.name = name) oracles
