open Circuit

type variant = [ `Sparse | `Textbook ]

let check s =
  if s = "" then invalid_arg "Bv.circuit: empty hidden string";
  String.iter
    (fun c ->
      if c <> '0' && c <> '1' then
        invalid_arg "Bv.circuit: hidden string must be binary")
    s

let circuit ?(variant = `Sparse) s =
  check s;
  let n = String.length s in
  let roles = Array.init (n + 1) (fun q -> if q < n then Circ.Data else Circ.Answer) in
  let b = Circ.Builder.make ~roles ~num_bits:n () in
  let answer = n in
  Circ.Builder.x b answer;
  Circ.Builder.h b answer;
  let active q = s.[q] = '1' in
  let touched q = match variant with `Sparse -> active q | `Textbook -> true in
  for q = 0 to n - 1 do
    if touched q then begin
      Circ.Builder.h b q;
      if active q then Circ.Builder.cx b q answer;
      Circ.Builder.h b q
    end
  done;
  Circ.Builder.build b

let expected_outcome s =
  check s;
  Sim.Bits.of_string s

let paper_benchmarks =
  [
    "111"; "110"; "101"; "011"; "100"; "010"; "001";
    "1111"; "1110"; "1101"; "1011"; "0111"; "1010"; "1001"; "0110"; "0101";
    "1000"; "0100"; "0010"; "0001";
  ]

let recover ?(seed = 0xB5) ?(dynamic = true) s =
  check s;
  let n = String.length s in
  let rng = Random.State.make [| seed |] in
  let outcome =
    if dynamic then begin
      let r = Dqc.Transform.transform (circuit s) in
      let st = Sim.Statevector.run ~rng r.circuit in
      Sim.Statevector.register st
    end
    else begin
      let c = circuit s in
      let measured =
        Circ.create ~roles:(Circ.roles c) ~num_bits:n
          (Circ.instructions c
          @ List.init n (fun q -> Instruction.Measure { qubit = q; bit = q }))
      in
      let st = Sim.Statevector.run ~rng measured in
      Sim.Statevector.register st
    end
  in
  Sim.Bits.to_string ~width:n outcome
