type role = Data | Ancilla | Answer

type t = {
  roles : role array;
  num_bits : int;
  instrs : Instruction.t list;
}

let check_instr ~num_qubits ~num_bits i =
  if not (Instruction.well_formed ~num_qubits ~num_bits i) then
    invalid_arg
      (Printf.sprintf "Circ.create: ill-formed instruction %s (%d qubits, %d bits)"
         (Instruction.to_string i) num_qubits num_bits)

let max_bits = 62

let create ~roles ~num_bits instrs =
  if num_bits < 0 || num_bits > max_bits then
    invalid_arg
      (Printf.sprintf "Circ.create: %d classical bits (register is an int, max %d)"
         num_bits max_bits);
  let num_qubits = Array.length roles in
  List.iter (check_instr ~num_qubits ~num_bits) instrs;
  { roles = Array.copy roles; num_bits; instrs }

let num_qubits c = Array.length c.roles
let num_bits c = c.num_bits
let role c q = c.roles.(q)
let roles c = Array.copy c.roles
let instructions c = c.instrs

let qubits_with_role c r =
  let acc = ref [] in
  for q = Array.length c.roles - 1 downto 0 do
    if c.roles.(q) = r then acc := q :: !acc
  done;
  !acc

let append c instrs =
  let num_qubits = num_qubits c in
  List.iter (check_instr ~num_qubits ~num_bits:c.num_bits) instrs;
  { c with instrs = c.instrs @ instrs }

let concat a b =
  if a.roles <> b.roles || a.num_bits <> b.num_bits then
    invalid_arg "Circ.concat: shape mismatch";
  { a with instrs = a.instrs @ b.instrs }

let map_instructions f c =
  { c with instrs = List.concat_map f c.instrs }

let equal a b =
  a.roles = b.roles && a.num_bits = b.num_bits
  && List.length a.instrs = List.length b.instrs
  && List.for_all2 Instruction.equal a.instrs b.instrs

let role_to_string = function
  | Data -> "data"
  | Ancilla -> "ancilla"
  | Answer -> "answer"

let pp_role fmt r = Format.pp_print_string fmt (role_to_string r)

let pp fmt c =
  Format.fprintf fmt "@[<v>circuit: %d qubits, %d bits@," (num_qubits c)
    c.num_bits;
  Array.iteri
    (fun q r -> Format.fprintf fmt "  q%d : %s@," q (role_to_string r))
    c.roles;
  List.iter (fun i -> Format.fprintf fmt "  %a@," Instruction.pp i) c.instrs;
  Format.fprintf fmt "@]"

module Builder = struct
  type circuit = t

  type t = {
    b_roles : role array;
    b_num_bits : int;
    mutable rev_instrs : Instruction.t list;
  }

  let make ~roles ~num_bits () =
    if num_bits < 0 || num_bits > max_bits then
      invalid_arg
        (Printf.sprintf
           "Circ.Builder.make: %d classical bits (register is an int, max %d)"
           num_bits max_bits);
    { b_roles = Array.copy roles; b_num_bits = num_bits; rev_instrs = [] }

  let add b i =
    check_instr ~num_qubits:(Array.length b.b_roles) ~num_bits:b.b_num_bits i;
    b.rev_instrs <- i :: b.rev_instrs

  let add_list b is = List.iter (add b) is
  let gate b g q = add b (Instruction.Unitary (Instruction.app g q))
  let h b q = gate b Gate.H q
  let x b q = gate b Gate.X q
  let z b q = gate b Gate.Z q

  let cgate b g c t =
    add b (Instruction.Unitary (Instruction.app ~controls:[ c ] g t))

  let cx b c t = cgate b Gate.X c t
  let cv b c t = cgate b Gate.V c t
  let cvdg b c t = cgate b Gate.Vdg c t

  let ccx b c1 c2 t =
    add b (Instruction.Unitary (Instruction.app ~controls:[ c1; c2 ] Gate.X t))

  let measure b ~qubit ~bit = add b (Instruction.Measure { qubit; bit })
  let reset b q = add b (Instruction.Reset q)

  let conditioned b ~bit ?(value = true) g q =
    add b (Instruction.Conditioned (Instruction.cond_bit bit value, Instruction.app g q))

  let conditioned_on b cond ?(controls = []) g q =
    add b (Instruction.Conditioned (cond, Instruction.app ~controls g q))

  let barrier b qs = add b (Instruction.Barrier qs)

  let build b : circuit =
    {
      roles = Array.copy b.b_roles;
      num_bits = b.b_num_bits;
      instrs = List.rev b.rev_instrs;
    }
end
