(** OpenQASM 3 export.

    Dynamic-circuit primitives map directly: [Measure] to
    [c[i] = measure q[j]], [Reset] to [reset], [Conditioned] to an
    [if (c[i] == v)] statement — the subset IBM's dynamic-circuit
    backends accept. [V]/[Vdg] are emitted as [sx]/[sxdg]. *)

(** [to_string ?name c] renders a complete OpenQASM 3 program. *)
val to_string : ?name:string -> Circ.t -> string

exception Parse_error of string

(** [parse ?roles source] reads the OpenQASM 3 subset {!to_string}
    emits: one qubit register, one bit register, the standard-gate
    applications with any number of [c] prefixes, [rx/ry/rz/p] with a
    literal angle, measurement, reset, barrier, and [if] statements
    guarding a single application with a conjunction of bit tests.

    QASM carries no qubit-role information; [roles] overrides the
    default of every qubit being {!Circ.Data}.

    @raise Parse_error on malformed input.
    @raise Invalid_argument when [roles] disagrees with the declared
    qubit count. *)
val parse : ?roles:Circ.role array -> string -> Circ.t
