(** Circuit complexity metrics with the paper's counting conventions
    (reverse-engineered from Table I; see DESIGN.md):

    - gate count = unitary gates + classically controlled gates +
      active resets; measurements and barriers do not count;
    - depth = layered (ASAP) schedule length; whether measurements and
      resets occupy a layer is configurable, since the paper includes
      them for dynamic circuits and ignores final measurements for
      traditional ones. *)

type stats = {
  unitary : int;  (** plain unitary applications *)
  conditioned : int;  (** classically controlled applications *)
  measure : int;
  reset : int;
  barrier : int;
  two_qubit : int;  (** unitaries with exactly one quantum control *)
  multi_control : int;  (** unitaries with two or more quantum controls *)
}

val stats : Circ.t -> stats

(** Paper convention gate count (see above). *)
val gate_count : Circ.t -> int

(** Number of T/T† gates (plain or conditioned) — the fault-tolerance
    cost driver of Clifford+T circuits. *)
val t_count : Circ.t -> int

(** Number of 2-qubit applications (one quantum control), plain or
    conditioned. *)
val cx_count : Circ.t -> int

(** [depth ?include_measure ?include_reset c] is the layered depth.
    Both flags default to [true]. A classically controlled gate is
    additionally sequenced after the measurement that writes its
    condition bit. Barriers force a layer boundary on their qubits but
    occupy no layer. *)
val depth : ?include_measure:bool -> ?include_reset:bool -> Circ.t -> int

(** Depth for a traditional circuit as tabulated in the paper:
    measurements excluded. *)
val traditional_depth : Circ.t -> int

(** Depth for a dynamic circuit as tabulated in the paper: measurement
    and reset included. *)
val dynamic_depth : Circ.t -> int

(** {1 Wall-clock duration}

    Dynamic circuits trade qubits for time: mid-circuit measurement,
    active reset and the classical feed-forward round trip are orders
    of magnitude slower than gates.  [duration] schedules the circuit
    ASAP under a device timing model and reports the critical-path
    length in nanoseconds. *)

type timing = {
  t_1q : float;  (** 1-qubit gate, ns *)
  t_2q : float;  (** 2-qubit gate, ns *)
  t_measure : float;
  t_reset : float;
  t_feedforward : float;
      (** classical latency before a conditioned gate may start *)
}

(** 2022-era IBM-like figures: 35 / 300 / 700 / 840 / 660 ns. *)
val default_timing : timing

(** Critical-path duration in ns.  A conditioned gate starts no
    earlier than [t_feedforward] after its condition bits are written;
    barriers synchronize their qubits at zero cost. *)
val duration : ?timing:timing -> Circ.t -> float
