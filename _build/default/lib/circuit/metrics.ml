type stats = {
  unitary : int;
  conditioned : int;
  measure : int;
  reset : int;
  barrier : int;
  two_qubit : int;
  multi_control : int;
}

let stats c =
  let z =
    {
      unitary = 0;
      conditioned = 0;
      measure = 0;
      reset = 0;
      barrier = 0;
      two_qubit = 0;
      multi_control = 0;
    }
  in
  let count acc (i : Instruction.t) =
    match i with
    | Unitary a ->
        let acc = { acc with unitary = acc.unitary + 1 } in
        (match List.length a.controls with
        | 0 -> acc
        | 1 -> { acc with two_qubit = acc.two_qubit + 1 }
        | _ -> { acc with multi_control = acc.multi_control + 1 })
    | Conditioned _ -> { acc with conditioned = acc.conditioned + 1 }
    | Measure _ -> { acc with measure = acc.measure + 1 }
    | Reset _ -> { acc with reset = acc.reset + 1 }
    | Barrier _ -> { acc with barrier = acc.barrier + 1 }
  in
  List.fold_left count z (Circ.instructions c)

let gate_count c =
  List.length
    (List.filter Instruction.counts_as_gate (Circ.instructions c))

let count_apps c pred =
  List.length
    (List.filter
       (fun (i : Instruction.t) ->
         match i with
         | Unitary a | Conditioned (_, a) -> pred a
         | Measure _ | Reset _ | Barrier _ -> false)
       (Circ.instructions c))

let t_count c =
  count_apps c (fun (a : Instruction.app) ->
      match a.gate with
      | Gate.T | Gate.Tdg -> true
      | Gate.H | Gate.X | Gate.Y | Gate.Z | Gate.S | Gate.Sdg | Gate.V
      | Gate.Vdg | Gate.Rx _ | Gate.Ry _ | Gate.Rz _ | Gate.Phase _ ->
          false)

let cx_count c =
  count_apps c (fun (a : Instruction.app) -> List.length a.controls = 1)

(* ASAP layering: an instruction lands on layer
   1 + max(level of its qubits, level of the bits it reads/writes).
   Instructions excluded from depth still advance their qubit levels'
   *ordering* constraints?  No: the paper simply does not count final
   measurements, so excluded instructions are transparent (they take no
   layer).  Excluded measure still publishes its bit at the current
   qubit level so a later conditioned gate stays ordered. *)
let depth ?(include_measure = true) ?(include_reset = true) c =
  let qlevel = Array.make (max 1 (Circ.num_qubits c)) 0 in
  let blevel = Array.make (max 1 (Circ.num_bits c)) 0 in
  let level_of (i : Instruction.t) =
    let qs = Instruction.qubits i and bs = Instruction.bits i in
    let m = List.fold_left (fun acc q -> max acc qlevel.(q)) 0 qs in
    List.fold_left (fun acc b -> max acc blevel.(b)) m bs
  in
  let place i =
    let included =
      match (i : Instruction.t) with
      | Unitary _ | Conditioned _ -> true
      | Measure _ -> include_measure
      | Reset _ -> include_reset
      | Barrier _ -> false
    in
    let base = level_of i in
    let lvl = if included then base + 1 else base in
    List.iter (fun q -> qlevel.(q) <- lvl) (Instruction.qubits i);
    (* measurement publishes its output bit; conditioned reads only *)
    match (i : Instruction.t) with
    | Measure { bit; _ } -> blevel.(bit) <- lvl
    | Unitary _ | Conditioned _ | Reset _ | Barrier _ -> ()
  in
  List.iter place (Circ.instructions c);
  let m = Array.fold_left max 0 qlevel in
  Array.fold_left max m blevel

let traditional_depth c = depth ~include_measure:false c
let dynamic_depth c = depth c

type timing = {
  t_1q : float;
  t_2q : float;
  t_measure : float;
  t_reset : float;
  t_feedforward : float;
}

let default_timing =
  { t_1q = 35.; t_2q = 300.; t_measure = 700.; t_reset = 840.; t_feedforward = 660. }

(* ASAP scheduling with real durations: every instruction starts when
   its qubits are free (and, for conditioned gates, its bits have been
   written plus the feed-forward latency) and occupies its qubits for
   its duration; measurements publish their bit at their finish time. *)
let duration ?(timing = default_timing) c =
  let qfree = Array.make (max 1 (Circ.num_qubits c)) 0. in
  let bready = Array.make (max 1 (Circ.num_bits c)) 0. in
  let place (i : Instruction.t) =
    let qs = Instruction.qubits i in
    let qubit_ready = List.fold_left (fun acc q -> Float.max acc qfree.(q)) 0. qs in
    let start, dur =
      match i with
      | Unitary { controls = []; _ } -> (qubit_ready, timing.t_1q)
      | Unitary _ -> (qubit_ready, timing.t_2q)
      | Conditioned (cond, app) ->
          let bits_ready =
            List.fold_left
              (fun acc (b, _) -> Float.max acc bready.(b))
              0. cond.Instruction.bits
          in
          let start =
            Float.max qubit_ready (bits_ready +. timing.t_feedforward)
          in
          (start, if app.Instruction.controls = [] then timing.t_1q else timing.t_2q)
      | Measure _ -> (qubit_ready, timing.t_measure)
      | Reset _ -> (qubit_ready, timing.t_reset)
      | Barrier _ -> (qubit_ready, 0.)
    in
    let finish = start +. dur in
    List.iter (fun q -> qfree.(q) <- finish) qs;
    match i with
    | Measure { bit; _ } -> bready.(bit) <- finish
    | Unitary _ | Conditioned _ | Reset _ | Barrier _ -> ()
  in
  List.iter place (Circ.instructions c);
  let m = Array.fold_left Float.max 0. qfree in
  Array.fold_left Float.max m bready
