lib/circuit/circ.ml: Array Format Gate Instruction List Printf
