lib/circuit/gate.mli: Format Linalg
