lib/circuit/gate.ml: Format Linalg Printf
