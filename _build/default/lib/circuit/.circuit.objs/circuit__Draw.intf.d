lib/circuit/draw.mli: Circ Format
