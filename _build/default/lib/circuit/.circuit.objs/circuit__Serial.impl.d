lib/circuit/serial.ml: Array Buffer Circ Gate Instruction List Printf String
