lib/circuit/draw.ml: Array Buffer Circ Format Gate Hashtbl Instruction List Printf String
