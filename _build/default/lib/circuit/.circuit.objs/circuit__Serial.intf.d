lib/circuit/serial.mli: Circ
