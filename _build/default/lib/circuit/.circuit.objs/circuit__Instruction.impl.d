lib/circuit/instruction.ml: Format Gate List Printf String
