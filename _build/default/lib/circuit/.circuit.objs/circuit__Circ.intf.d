lib/circuit/circ.mli: Format Gate Instruction
