lib/circuit/qasm.ml: Array Buffer Circ Float Gate Instruction List Printf String
