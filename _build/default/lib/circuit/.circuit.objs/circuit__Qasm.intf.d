lib/circuit/qasm.mli: Circ
