lib/circuit/metrics.ml: Array Circ Float Gate Instruction List
