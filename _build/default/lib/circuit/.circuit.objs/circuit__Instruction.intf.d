lib/circuit/instruction.mli: Format Gate
