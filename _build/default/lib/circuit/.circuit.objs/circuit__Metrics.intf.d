lib/circuit/metrics.mli: Circ
