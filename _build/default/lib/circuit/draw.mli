(** Plain-ASCII circuit rendering for terminals and docs.

    Qubits are horizontal wires, instructions are packed into layers
    (same ASAP layering as {!Metrics.depth}).  Symbols: [*] quantum
    control, [[x]] gate box, [[M0]] measurement into bit 0, [[R]]
    active reset, [[x?c0]] gate classically controlled on bit c0, [|]
    vertical connector. *)

(** Render the circuit as a multi-line string.  [max_width] (default
    unlimited) wraps the drawing into stacked panels of at most that
    many characters, for long dynamic circuits. *)
val to_string : ?max_width:int -> Circ.t -> string

val pp : Format.formatter -> Circ.t -> unit

(** Print to stdout with a trailing newline. *)
val print : Circ.t -> unit
