(** S-expression serialization of circuits.

    Unlike {!Qasm}, this format round-trips the full circuit record:
    qubit roles (which the DQC transformation depends on), register
    width, and every instruction form, including conjunctive classical
    conditions.  Grammar (informal):

    {v
    (circuit
      (roles data data answer)
      (bits 2)
      (instrs
        (u h () 0)
        (u (rz 0.5) (0) 1)
        (cond ((0 1) (2 0)) x () 1)
        (measure 0 0)
        (reset 0)
        (barrier (0 1))))
    v} *)

exception Parse_error of string

val to_string : Circ.t -> string

(** @raise Parse_error on malformed input. *)
val of_string : string -> Circ.t
