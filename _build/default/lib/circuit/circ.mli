(** Quantum circuits: an ordered instruction stream over [num_qubits]
    qubits (each tagged with a role) and [num_bits] classical bits.

    Roles follow the paper's nomenclature: {e data} qubits carry the
    algorithm input, {e answer} qubits carry the oracle output and stay
    live across DQC iterations, {e ancilla} qubits are scratch space
    introduced by decompositions (Eqn 3). *)

type role = Data | Ancilla | Answer

type t

(** [create ~roles ~num_bits instrs] builds a circuit; every instruction
    is checked with {!Instruction.well_formed}.  Classical registers
    are machine integers, so [num_bits] is capped at 62.
    @raise Invalid_argument on an ill-formed instruction or an
    oversized register. *)
val create : roles:role array -> num_bits:int -> Instruction.t list -> t

val num_qubits : t -> int
val num_bits : t -> int
val role : t -> int -> role
val roles : t -> role array
val instructions : t -> Instruction.t list

(** Qubit indices holding the given role, ascending. *)
val qubits_with_role : t -> role -> int list

(** [append c instrs] is [c] with [instrs] appended. *)
val append : t -> Instruction.t list -> t

(** [concat a b] concatenates instruction streams; qubit/bit shapes and
    roles must agree.
    @raise Invalid_argument otherwise. *)
val concat : t -> t -> t

(** [map_instructions f c] rewrites each instruction into a list
    (substitution pass), keeping shape and roles. *)
val map_instructions : (Instruction.t -> Instruction.t list) -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val pp_role : Format.formatter -> role -> unit
val role_to_string : role -> string

(** {1 Builder}

    Imperative construction buffer for generators. *)
module Builder : sig
  type circuit := t
  type t

  (** [make ~roles ~num_bits ()] starts an empty buffer. *)
  val make : roles:role array -> num_bits:int -> unit -> t

  val add : t -> Instruction.t -> unit
  val add_list : t -> Instruction.t list -> unit
  val gate : t -> Gate.t -> int -> unit
  val h : t -> int -> unit
  val x : t -> int -> unit
  val z : t -> int -> unit
  val cx : t -> int -> int -> unit

  (** [cgate b g c t] adds controlled-[g] with control [c], target [t]. *)
  val cgate : t -> Gate.t -> int -> int -> unit

  val cv : t -> int -> int -> unit
  val cvdg : t -> int -> int -> unit

  (** [ccx b c1 c2 t] adds a Toffoli. *)
  val ccx : t -> int -> int -> int -> unit

  val measure : t -> qubit:int -> bit:int -> unit
  val reset : t -> int -> unit

  (** [conditioned b ~bit ?value g t] adds [if (bit == value) g t]
      ([value] defaults to [true]). *)
  val conditioned : t -> bit:int -> ?value:bool -> Gate.t -> int -> unit

  (** [conditioned_on b cond ?controls g t] adds a gate guarded by an
      arbitrary conjunction, optionally with quantum controls. *)
  val conditioned_on :
    t -> Instruction.cond -> ?controls:int list -> Gate.t -> int -> unit

  val barrier : t -> int list -> unit
  val build : t -> circuit
end
