open Circuit

exception Unroutable of string

type result = {
  circuit : Circ.t;
  phys_of_logical : int array;
  swaps_inserted : int;
  cx_overhead : int;
}

let fail fmt = Printf.ksprintf (fun s -> raise (Unroutable s)) fmt

let run ?initial_layout ~coupling c =
  let n_logical = Circ.num_qubits c in
  let n_phys = Coupling.num_qubits coupling in
  if n_phys < n_logical then
    fail "device has %d qubits, circuit needs %d" n_phys n_logical;
  let phys_of_logical =
    match initial_layout with
    | None -> Array.init n_logical (fun q -> q)
    | Some layout ->
        if Array.length layout <> n_logical then
          fail "initial layout covers %d qubits, circuit has %d"
            (Array.length layout) n_logical;
        let seen = Hashtbl.create 8 in
        Array.iter
          (fun p ->
            if p < 0 || p >= n_phys then fail "layout qubit %d off-device" p;
            if Hashtbl.mem seen p then fail "layout repeats physical qubit %d" p;
            Hashtbl.replace seen p ())
          layout;
        Array.copy layout
  in
  let logical_of_phys = Array.make n_phys (-1) in
  Array.iteri (fun l p -> logical_of_phys.(p) <- l) phys_of_logical;
  let out = ref [] in
  let swaps = ref 0 in
  let emit i = out := i :: !out in
  let cx a b = Instruction.Unitary (Instruction.app ~controls:[ a ] Gate.X b) in
  let swap p q =
    emit (cx p q);
    emit (cx q p);
    emit (cx p q);
    incr swaps;
    let lp = logical_of_phys.(p) and lq = logical_of_phys.(q) in
    logical_of_phys.(p) <- lq;
    logical_of_phys.(q) <- lp;
    if lq >= 0 then phys_of_logical.(lq) <- p;
    if lp >= 0 then phys_of_logical.(lp) <- q
  in
  (* bring the physical homes of logical a and b adjacent by walking a
     along a shortest path towards b *)
  let make_adjacent la lb =
    let rec step () =
      let pa = phys_of_logical.(la) and pb = phys_of_logical.(lb) in
      if not (Coupling.adjacent coupling pa pb) then begin
        match Coupling.shortest_path coupling pa pb with
        | _ :: next :: _ ->
            swap pa next;
            step ()
        | _ -> fail "qubits %d and %d are disconnected on the device" pa pb
      end
    in
    (try step ()
     with Not_found ->
       fail "qubits %d and %d are disconnected on the device"
         phys_of_logical.(la) phys_of_logical.(lb))
  in
  let route_instr (i : Instruction.t) =
    match i with
    | Unitary { controls = []; gate; target } ->
        emit (Instruction.Unitary (Instruction.app gate phys_of_logical.(target)))
    | Unitary { controls = [ ctl ]; gate; target } ->
        make_adjacent ctl target;
        emit
          (Instruction.Unitary
             (Instruction.app
                ~controls:[ phys_of_logical.(ctl) ]
                gate
                phys_of_logical.(target)))
    | Unitary _ ->
        fail "multi-control gate %s: decompose before routing"
          (Instruction.to_string i)
    | Conditioned (cond, { controls = []; gate; target }) ->
        emit
          (Instruction.Conditioned
             (cond, Instruction.app gate phys_of_logical.(target)))
    | Conditioned (cond, { controls = [ ctl ]; gate; target }) ->
        make_adjacent ctl target;
        emit
          (Instruction.Conditioned
             ( cond,
               Instruction.app
                 ~controls:[ phys_of_logical.(ctl) ]
                 gate
                 phys_of_logical.(target) ))
    | Conditioned _ ->
        fail "multi-control conditioned gate %s: decompose before routing"
          (Instruction.to_string i)
    | Measure { qubit; bit } ->
        emit (Instruction.Measure { qubit = phys_of_logical.(qubit); bit })
    | Reset q -> emit (Instruction.Reset phys_of_logical.(q))
    | Barrier qs ->
        emit (Instruction.Barrier (List.map (fun q -> phys_of_logical.(q)) qs))
  in
  List.iter route_instr (Circ.instructions c);
  (* physical qubits inherit the role of the logical qubit that ends
     there; spare device qubits become ancillas *)
  let roles =
    Array.init n_phys (fun p ->
        let l = logical_of_phys.(p) in
        if l >= 0 then Circ.role c l else Circ.Ancilla)
  in
  {
    circuit = Circ.create ~roles ~num_bits:(Circ.num_bits c) (List.rev !out);
    phys_of_logical = Array.copy phys_of_logical;
    swaps_inserted = !swaps;
    cx_overhead = 3 * !swaps;
  }

let measures_for r ~logical =
  List.map (fun (q, bit) -> (r.phys_of_logical.(q), bit)) logical
