open Circuit

(** Initial-layout selection for {!Route}.

    The router defaults to the identity layout; a placement that puts
    strongly interacting logical qubits on adjacent physical qubits
    cuts the SWAP bill — e.g. BV's answer qubit, which talks to every
    data qubit, belongs at the centre of a line, not its end. *)

(** [interaction_weights c] counts 2-qubit interactions per logical
    pair (symmetric, deduplicated). *)
val interaction_weights : Circ.t -> ((int * int) * int) list

(** [greedy ~coupling c] builds a layout: logical qubits in decreasing
    interaction-degree order, each placed on the free physical qubit
    minimizing the weighted distance to already-placed partners.
    Returns [phys_of_logical].
    @raise Invalid_argument when the device is too small. *)
val greedy : coupling:Coupling.t -> Circ.t -> int array

(** Convenience: route with the greedy placement. *)
val route_with_placement : coupling:Coupling.t -> Circ.t -> Route.result
