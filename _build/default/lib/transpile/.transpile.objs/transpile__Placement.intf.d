lib/transpile/placement.mli: Circ Circuit Coupling Route
