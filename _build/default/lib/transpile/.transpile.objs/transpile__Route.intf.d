lib/transpile/route.mli: Circ Circuit Coupling
