lib/transpile/basis.ml: Circ Circuit Complex Float Gate Instruction Linalg List Printf
