lib/transpile/basis.mli: Circ Circuit Gate Linalg
