lib/transpile/coupling.ml: Array List Queue
