lib/transpile/placement.ml: Array Circ Circuit Coupling Hashtbl Instruction List Option Route
