lib/transpile/coupling.mli:
