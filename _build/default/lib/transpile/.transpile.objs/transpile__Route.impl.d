lib/transpile/route.ml: Array Circ Circuit Coupling Gate Hashtbl Instruction List Printf
