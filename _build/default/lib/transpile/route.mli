open Circuit

(** SWAP-insertion routing onto a coupling map.

    A greedy router: logical qubits start at the identity layout; when
    a 2-qubit gate spans non-adjacent physical qubits, the control is
    swapped along a shortest path until adjacent (each SWAP emitted as
    3 CX), permanently updating the layout.

    Input circuits must already be decomposed to gates with at most
    one quantum control ({!Decompose.Pass}); measurement, reset,
    conditioned 1-qubit gates and barriers route trivially. *)

exception Unroutable of string

type result = {
  circuit : Circ.t;  (** over physical qubits *)
  phys_of_logical : int array;  (** final layout *)
  swaps_inserted : int;
  cx_overhead : int;  (** extra CX gates (= 3 x swaps) *)
}

(** [run ?initial_layout ~coupling c].  [initial_layout] maps logical
    qubits to distinct physical qubits (default: identity); see
    {!Placement} for a heuristic chooser.
    @raise Unroutable on multi-control gates, on a device smaller than
    the circuit, on disconnected targets, or on an invalid layout. *)
val run : ?initial_layout:int array -> coupling:Coupling.t -> Circ.t -> result

(** [measures_for result ~logical] maps per-logical-qubit measurement
    assignments through the final layout. *)
val measures_for : result -> logical:(int * int) list -> (int * int) list
