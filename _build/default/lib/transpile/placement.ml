open Circuit

let interaction_weights c =
  let weights = Hashtbl.create 16 in
  let bump a b =
    let key = (min a b, max a b) in
    let prev = Option.value ~default:0 (Hashtbl.find_opt weights key) in
    Hashtbl.replace weights key (prev + 1)
  in
  List.iter
    (fun (i : Instruction.t) ->
      match i with
      | Unitary { controls; target; _ } | Conditioned (_, { controls; target; _ })
        ->
          List.iter (fun ctl -> bump ctl target) controls
      | Measure _ | Reset _ | Barrier _ -> ())
    (Circ.instructions c);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) weights []
  |> List.sort compare

let greedy ~coupling c =
  let n_logical = Circ.num_qubits c in
  let n_phys = Coupling.num_qubits coupling in
  if n_phys < n_logical then
    invalid_arg "Placement.greedy: device too small";
  let weights = interaction_weights c in
  let weight a b =
    Option.value ~default:0
      (List.assoc_opt (min a b, max a b) weights)
  in
  let degree q =
    List.fold_left
      (fun acc ((a, b), w) -> if a = q || b = q then acc + w else acc)
      0 weights
  in
  let order =
    List.sort
      (fun a b -> compare (degree b, a) (degree a, b))
      (List.init n_logical (fun q -> q))
  in
  let phys_of_logical = Array.make n_logical (-1) in
  let taken = Array.make n_phys false in
  (* closeness of a physical qubit: total distance to the others
     (lower = more central); disconnected pairs count as n_phys hops *)
  let closeness p =
    List.fold_left
      (fun acc q ->
        if q = p then acc
        else
          acc + (try Coupling.distance coupling p q with Not_found -> n_phys))
      0
      (List.init n_phys (fun q -> q))
  in
  let place logical phys =
    phys_of_logical.(logical) <- phys;
    taken.(phys) <- true
  in
  List.iter
    (fun logical ->
      let partners =
        List.filter_map
          (fun other ->
            let w = weight logical other in
            if w > 0 && phys_of_logical.(other) >= 0 then
              Some (phys_of_logical.(other), w)
            else None)
          (List.init n_logical (fun q -> q))
      in
      let cost p =
        if partners = [] then closeness p
        else
          List.fold_left
            (fun acc (pp, w) ->
              acc
              + w * (try Coupling.distance coupling p pp with Not_found -> n_phys))
            0 partners
      in
      let best = ref (-1) in
      for p = 0 to n_phys - 1 do
        if not taken.(p) then
          if !best < 0 || cost p < cost !best then best := p
      done;
      place logical !best)
    order;
  phys_of_logical

let route_with_placement ~coupling c =
  Route.run ~initial_layout:(greedy ~coupling c) ~coupling c
