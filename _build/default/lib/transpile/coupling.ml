type t = { n : int; adj : bool array array }

let of_edges ~num_qubits edges =
  if num_qubits < 1 then invalid_arg "Coupling.of_edges: empty device";
  let adj = Array.make_matrix num_qubits num_qubits false in
  List.iter
    (fun (a, b) ->
      if a < 0 || b < 0 || a >= num_qubits || b >= num_qubits then
        invalid_arg "Coupling.of_edges: edge out of range";
      if a = b then invalid_arg "Coupling.of_edges: self-loop";
      adj.(a).(b) <- true;
      adj.(b).(a) <- true)
    edges;
  { n = num_qubits; adj }

let line n = of_edges ~num_qubits:n (List.init (n - 1) (fun k -> (k, k + 1)))

let ring n =
  if n < 3 then invalid_arg "Coupling.ring: need at least 3 qubits";
  of_edges ~num_qubits:n
    ((n - 1, 0) :: List.init (n - 1) (fun k -> (k, k + 1)))

let grid ~rows ~cols =
  let n = rows * cols in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let k = (r * cols) + c in
      if c + 1 < cols then edges := (k, k + 1) :: !edges;
      if r + 1 < rows then edges := (k, k + cols) :: !edges
    done
  done;
  of_edges ~num_qubits:n !edges

let complete n =
  let edges = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      edges := (a, b) :: !edges
    done
  done;
  of_edges ~num_qubits:n !edges

let num_qubits t = t.n
let adjacent t a b = t.adj.(a).(b)

let neighbours t q =
  List.filter (fun p -> t.adj.(q).(p)) (List.init t.n (fun p -> p))

(* BFS returning predecessor tree from [a] *)
let bfs t a =
  let pred = Array.make t.n (-1) in
  let seen = Array.make t.n false in
  seen.(a) <- true;
  let queue = Queue.create () in
  Queue.add a queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          pred.(v) <- u;
          Queue.add v queue
        end)
      (neighbours t u)
  done;
  (seen, pred)

let shortest_path t a b =
  if a = b then [ a ]
  else begin
    let seen, pred = bfs t a in
    if not seen.(b) then raise Not_found;
    let rec walk acc v = if v = a then a :: acc else walk (v :: acc) pred.(v) in
    walk [] b
  end

let distance t a b = List.length (shortest_path t a b) - 1
