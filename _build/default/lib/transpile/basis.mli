open Circuit

(** Translation to the IBM native basis {rz, sx, x, cx} — the gate set
    the paper's target devices execute.

    Every 1-qubit unitary is rewritten with the ZXZXZ identity
    [U ~ Rz(a) . sqrtX . Rz(b) . sqrtX . Rz(c)] (up to global phase,
    which is harmless for plain and classically conditioned gates);
    controlled-U gates use the ABC decomposition
    [CU = P(alpha)_c . A . CX . B . CX . C]; the control-phase factor
    is itself lowered to Rz, so the overall result is exact up to a
    single global phase (harmless, including inside classically
    conditioned blocks: classical branches never interfere).
    Multi-control gates must be decomposed first ({!Decompose.Pass}). *)

(** ZYZ Euler angles (alpha, beta, gamma, delta) with
    [U = e^{i.alpha} Rz(beta) Ry(gamma) Rz(delta)] exactly. *)
val zyz_angles : Linalg.Cmat.t -> float * float * float * float

(** Native replacement (application order) for a plain 1-qubit gate,
    correct up to global phase; already-native gates pass through. *)
val native_1q : Gate.t -> Gate.t list

(** [to_native c] rewrites the whole circuit into the native basis.
    @raise Invalid_argument on gates with two or more controls. *)
val to_native : Circ.t -> Circ.t

(** True when every instruction only uses rz, sx, x and cx. *)
val is_native : Circ.t -> bool
