(** Device coupling maps: which physical qubit pairs support 2-qubit
    gates.  Traditional n-qubit circuits must be routed onto such a
    topology (see {!Route}); a 2-qubit dynamic circuit only ever needs
    one coupled pair — the scalability argument behind DQC. *)

type t

(** [of_edges ~num_qubits edges] builds an undirected coupling map.
    @raise Invalid_argument on out-of-range or self-loop edges. *)
val of_edges : num_qubits:int -> (int * int) list -> t

(** Linear chain 0-1-2-...-(n-1). *)
val line : int -> t

(** Cycle of [n] qubits (n >= 3). *)
val ring : int -> t

(** Rectangular grid, row-major indexing. *)
val grid : rows:int -> cols:int -> t

(** All-to-all connectivity. *)
val complete : int -> t

val num_qubits : t -> int
val adjacent : t -> int -> int -> bool
val neighbours : t -> int -> int list

(** Hop distance (BFS).  @raise Not_found when disconnected. *)
val distance : t -> int -> int -> int

(** Vertices of a shortest path from [a] to [b], inclusive.
    @raise Not_found when disconnected. *)
val shortest_path : t -> int -> int -> int list
