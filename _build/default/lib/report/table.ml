type align = Left | Right

let looks_numeric s =
  s <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+')
       s

let render ?aligns ~headers ~rows () =
  let ncols = List.length headers in
  List.iter
    (fun r ->
      if List.length r <> ncols then invalid_arg "Table.render: ragged row")
    rows;
  let width k =
    List.fold_left
      (fun acc row -> max acc (String.length (List.nth row k)))
      (String.length (List.nth headers k))
      rows
  in
  let widths = List.init ncols width in
  let align_of k cell =
    match aligns with
    | Some l when List.length l > k -> List.nth l k
    | _ -> if looks_numeric cell then Right else Left
  in
  let pad k cell =
    let w = List.nth widths k in
    let fill = String.make (w - String.length cell) ' ' in
    match align_of k cell with Left -> cell ^ fill | Right -> fill ^ cell
  in
  let line row = String.concat "  " (List.mapi pad row) in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line headers :: sep :: List.map line rows) ^ "\n"

let render_titled ?aligns ~title ~headers ~rows () =
  Printf.sprintf "%s\n%s\n%s" title
    (String.make (String.length title) '=')
    (render ?aligns ~headers ~rows ())
