type table1_row = {
  name : string;
  qubits_trad : int;
  qubits_dyn : int;
  gates_trad : int;
  gates_dyn : int;
  depth_trad : int;
  depth_dyn : int;
}

type table2_row = {
  name : string;
  qubits_trad : int;
  qubits_dyn : int;
  gates_trad : int;
  gates_dyn1 : int;
  gates_dyn2 : int;
  depth_trad : int;
  depth_dyn1 : int;
  depth_dyn2 : int;
}

let t1 name qubits_trad qubits_dyn gates_trad gates_dyn depth_trad depth_dyn =
  { name; qubits_trad; qubits_dyn; gates_trad; gates_dyn; depth_trad; depth_dyn }

let table1 =
  [
    t1 "BV_111" 4 2 11 13 6 15;
    t1 "BV_110" 4 2 8 10 5 13;
    t1 "BV_101" 4 2 8 10 5 12;
    t1 "BV_011" 4 2 8 10 5 12;
    t1 "BV_100" 4 2 5 7 4 10;
    t1 "BV_010" 4 2 5 7 4 10;
    t1 "BV_001" 4 2 5 7 4 9;
    t1 "BV_1111" 5 2 14 17 7 20;
    t1 "BV_1110" 5 2 11 14 6 18;
    t1 "BV_1101" 5 2 11 14 6 17;
    t1 "BV_1011" 5 2 11 14 6 17;
    t1 "BV_0111" 5 2 11 14 6 17;
    t1 "BV_1010" 5 2 8 11 5 15;
    t1 "BV_1001" 5 2 8 11 5 14;
    t1 "BV_0110" 5 2 8 11 5 15;
    t1 "BV_0101" 5 2 8 11 5 14;
    t1 "BV_1000" 5 2 5 9 4 12;
    t1 "BV_0100" 5 2 5 8 4 12;
    t1 "BV_0010" 5 2 5 8 4 12;
    t1 "BV_0001" 5 2 5 8 4 11;
    t1 "DJ_CONST_0" 3 2 6 7 3 7;
    t1 "DJ_CONST_1" 3 2 7 8 3 7;
    t1 "DJ_PASS_1" 3 2 7 8 5 9;
    t1 "DJ_PASS_2" 3 2 7 8 5 8;
    t1 "DJ_INVERT_1" 3 2 8 9 6 10;
    t1 "DJ_INVERT_2" 3 2 8 9 6 8;
    t1 "DJ_XOR" 3 2 8 9 6 10;
    t1 "DJ_XNOR" 3 2 9 10 7 11;
  ]

let t2 name qubits_trad qubits_dyn gates_trad gates_dyn1 gates_dyn2 depth_trad
    depth_dyn1 depth_dyn2 =
  {
    name;
    qubits_trad;
    qubits_dyn;
    gates_trad;
    gates_dyn1;
    gates_dyn2;
    depth_trad;
    depth_dyn1;
    depth_dyn2;
  }

let table2 =
  [
    t2 "AND" 3 2 21 28 33 16 23 26;
    t2 "NAND" 3 2 22 29 34 17 24 27;
    t2 "OR" 3 2 23 30 35 18 26 29;
    t2 "NOR" 3 2 24 31 36 19 27 30;
    t2 "IMPLY_1" 3 2 23 30 35 18 26 29;
    t2 "IMPLY_2" 3 2 23 30 35 18 25 28;
    t2 "INHIB_1" 3 2 22 29 34 17 24 27;
    t2 "INHIB_2" 3 2 22 29 34 17 25 28;
    t2 "CARRY" 4 2 53 73 82 36 60 68;
  ]

let table1_find name =
  List.find_opt (fun (r : table1_row) -> r.name = name) table1
let table2_find name =
  List.find_opt (fun (r : table2_row) -> r.name = name) table2
