(** Reference values transcribed from the paper's Table I and Table II,
    used to print side-by-side comparisons. *)

type table1_row = {
  name : string;
  qubits_trad : int;
  qubits_dyn : int;
  gates_trad : int;
  gates_dyn : int;
  depth_trad : int;
  depth_dyn : int;
}

type table2_row = {
  name : string;
  qubits_trad : int;
  qubits_dyn : int;
  gates_trad : int;
  gates_dyn1 : int;
  gates_dyn2 : int;
  depth_trad : int;
  depth_dyn1 : int;
  depth_dyn2 : int;
}

val table1 : table1_row list
val table2 : table2_row list
val table1_find : string -> table1_row option
val table2_find : string -> table2_row option
