lib/report/table.mli:
