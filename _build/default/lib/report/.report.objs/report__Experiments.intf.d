lib/report/experiments.mli:
