lib/report/experiments.ml: Algorithms Circ Circuit Decompose Dqc Float List Metrics Option Paper_data Printf Random Sim String Sys Table Transpile
