(** Minimal text-table rendering for experiment reports. *)

type align = Left | Right

(** [render ~headers ~rows] pads columns to fit; numeric-looking cells
    default to right alignment unless [aligns] overrides. *)
val render :
  ?aligns:align list -> headers:string list -> rows:string list list ->
  unit -> string

(** Render with a title line above the table. *)
val render_titled :
  ?aligns:align list -> title:string -> headers:string list ->
  rows:string list list -> unit -> string
