type t = { nr : int; nc : int; data : Complex.t array }

let make nr nc =
  if nr < 0 || nc < 0 then invalid_arg "Cmat.make";
  { nr; nc; data = Array.make (nr * nc) Complex.zero }

let identity n =
  let m = make n n in
  for k = 0 to n - 1 do
    m.data.((k * n) + k) <- Complex.one
  done;
  m

let rows m = m.nr
let cols m = m.nc
let get m r c = m.data.((r * m.nc) + c)
let set m r c z = m.data.((r * m.nc) + c) <- z
let copy m = { m with data = Array.copy m.data }

let of_lists rows_l =
  match rows_l with
  | [] -> make 0 0
  | first :: _ ->
      let nr = List.length rows_l and nc = List.length first in
      let m = make nr nc in
      List.iteri
        (fun r row ->
          if List.length row <> nc then invalid_arg "Cmat.of_lists: ragged";
          List.iteri (fun c z -> set m r c z) row)
        rows_l;
      m

let of_reim_lists rows_l =
  of_lists
    (List.map (List.map (fun (re, im) -> { Complex.re; im })) rows_l)

let map2 f a b =
  if a.nr <> b.nr || a.nc <> b.nc then invalid_arg "Cmat: shape mismatch";
  { a with data = Array.map2 f a.data b.data }

let add a b = map2 Complex.add a b
let sub a b = map2 Complex.sub a b

let mul a b =
  if a.nc <> b.nr then invalid_arg "Cmat.mul: shape mismatch";
  let m = make a.nr b.nc in
  for r = 0 to a.nr - 1 do
    for k = 0 to a.nc - 1 do
      let ark = get a r k in
      if not (Complex_ext.is_zero ~eps:0. ark) then
        for c = 0 to b.nc - 1 do
          set m r c (Complex.add (get m r c) (Complex.mul ark (get b k c)))
        done
    done
  done;
  m

let scale a m = { m with data = Array.map (Complex.mul a) m.data }

let adjoint m =
  let r = make m.nc m.nr in
  for i = 0 to m.nr - 1 do
    for j = 0 to m.nc - 1 do
      set r j i (Complex.conj (get m i j))
    done
  done;
  r

let transpose m =
  let r = make m.nc m.nr in
  for i = 0 to m.nr - 1 do
    for j = 0 to m.nc - 1 do
      set r j i (get m i j)
    done
  done;
  r

let kron a b =
  let m = make (a.nr * b.nr) (a.nc * b.nc) in
  for i = 0 to a.nr - 1 do
    for j = 0 to a.nc - 1 do
      let aij = get a i j in
      for k = 0 to b.nr - 1 do
        for l = 0 to b.nc - 1 do
          set m ((i * b.nr) + k) ((j * b.nc) + l) (Complex.mul aij (get b k l))
        done
      done
    done
  done;
  m

let apply m v =
  if m.nc <> Cvec.dim v then invalid_arg "Cmat.apply: shape mismatch";
  let out = Cvec.make m.nr in
  for r = 0 to m.nr - 1 do
    let acc = ref Complex.zero in
    for c = 0 to m.nc - 1 do
      acc := Complex.add !acc (Complex.mul (get m r c) (Cvec.get v c))
    done;
    Cvec.set out r !acc
  done;
  out

let max_abs m =
  Array.fold_left (fun acc z -> max acc (Complex.norm z)) 0. m.data

let approx_equal ?(eps = 1e-9) a b =
  a.nr = b.nr && a.nc = b.nc && max_abs (sub a b) <= eps

(* Find the first entry of b with significant modulus, derive the phase
   ratio from the matching entry of a, then compare a against phase.b. *)
let approx_equal_up_to_phase ?(eps = 1e-9) a b =
  a.nr = b.nr && a.nc = b.nc
  &&
  let n = Array.length b.data in
  let rec find k =
    if k >= n then None
    else if Complex.norm b.data.(k) > eps then Some k
    else find (k + 1)
  in
  match find 0 with
  | None -> max_abs a <= eps
  | Some k ->
      let ratio = Complex.div a.data.(k) b.data.(k) in
      abs_float (Complex.norm ratio -. 1.) <= eps
      && approx_equal ~eps a (scale ratio b)

let is_unitary ?(eps = 1e-9) m =
  m.nr = m.nc && approx_equal ~eps (mul m (adjoint m)) (identity m.nr)

let frobenius m = sqrt (Array.fold_left (fun acc z -> acc +. Complex.norm2 z) 0. m.data)

let commutator_norm a b = frobenius (sub (mul a b) (mul b a))

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for r = 0 to m.nr - 1 do
    Format.fprintf fmt "[@[";
    for c = 0 to m.nc - 1 do
      if c > 0 then Format.fprintf fmt ";@ ";
      Complex_ext.pp fmt (get m r c)
    done;
    Format.fprintf fmt "@]]";
    if r < m.nr - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
