(** Helpers over [Complex.t] used throughout the simulator and the
    linear-algebra substrate. *)

val zero : Complex.t
val one : Complex.t
val i : Complex.t

(** [of_float x] is the complex number [x + 0i]. *)
val of_float : float -> Complex.t

(** [scale a z] multiplies [z] by the real scalar [a]. *)
val scale : float -> Complex.t -> Complex.t

(** [exp_i theta] is [e^{i.theta}]. *)
val exp_i : float -> Complex.t

(** Squared modulus |z|^2. *)
val norm2 : Complex.t -> float

(** [approx_equal ?eps a b] holds when both components differ by at most
    [eps] (default [1e-9]). *)
val approx_equal : ?eps:float -> Complex.t -> Complex.t -> bool

(** [is_zero ?eps z] holds when |z| <= eps. *)
val is_zero : ?eps:float -> Complex.t -> bool

(** Render as ["a+bi"] with a compact float format. *)
val to_string : Complex.t -> string

val pp : Format.formatter -> Complex.t -> unit
