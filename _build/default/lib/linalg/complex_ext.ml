let zero = Complex.zero
let one = Complex.one
let i = Complex.i
let of_float x = { Complex.re = x; im = 0. }
let scale a z = { Complex.re = a *. z.Complex.re; im = a *. z.Complex.im }
let exp_i theta = { Complex.re = cos theta; im = sin theta }
let norm2 z = Complex.norm2 z

let approx_equal ?(eps = 1e-9) a b =
  abs_float (a.Complex.re -. b.Complex.re) <= eps
  && abs_float (a.Complex.im -. b.Complex.im) <= eps

let is_zero ?(eps = 1e-9) z = Complex.norm z <= eps

let to_string z =
  if abs_float z.Complex.im < 1e-12 then Printf.sprintf "%g" z.Complex.re
  else if abs_float z.Complex.re < 1e-12 then Printf.sprintf "%gi" z.Complex.im
  else if z.Complex.im < 0. then
    Printf.sprintf "%g-%gi" z.Complex.re (-.z.Complex.im)
  else Printf.sprintf "%g+%gi" z.Complex.re z.Complex.im

let pp fmt z = Format.pp_print_string fmt (to_string z)
