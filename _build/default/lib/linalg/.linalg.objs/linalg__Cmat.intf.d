lib/linalg/cmat.mli: Complex Cvec Format
