lib/linalg/complex_ext.ml: Complex Format Printf
