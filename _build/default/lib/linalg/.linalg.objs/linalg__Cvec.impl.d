lib/linalg/cvec.ml: Array Complex Complex_ext Format
