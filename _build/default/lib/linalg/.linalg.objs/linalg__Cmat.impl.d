lib/linalg/cmat.ml: Array Complex Complex_ext Cvec Format List
