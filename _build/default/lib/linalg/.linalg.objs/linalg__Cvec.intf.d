lib/linalg/cvec.mli: Complex Format
