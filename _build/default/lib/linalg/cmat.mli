(** Dense complex matrices, row-major. Sized for the small unitaries a
    gate library needs (up to a few hundred rows), not for HPC. *)

type t

val make : int -> int -> t
val identity : int -> t

(** [of_lists rows] builds a matrix from row lists.
    @raise Invalid_argument on ragged input. *)
val of_lists : Complex.t list list -> t

(** Rows given as (re, im) pairs — convenient for gate definitions. *)
val of_reim_lists : (float * float) list list -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit
val copy : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [scale a m] is a fresh matrix with every entry multiplied by [a]. *)
val scale : Complex.t -> t -> t

(** Conjugate transpose. *)
val adjoint : t -> t

val transpose : t -> t

(** Kronecker product [a ⊗ b]. *)
val kron : t -> t -> t

(** [apply m v] is the matrix-vector product. *)
val apply : t -> Cvec.t -> Cvec.t

(** Max-modulus over all entries. *)
val max_abs : t -> float

val approx_equal : ?eps:float -> t -> t -> bool

(** [approx_equal_up_to_phase a b] holds when [a] = e^{i.phi} [b]. *)
val approx_equal_up_to_phase : ?eps:float -> t -> t -> bool

(** [is_unitary m] checks [m . m† = I]. *)
val is_unitary : ?eps:float -> t -> bool

(** Frobenius norm of the commutator [ab - ba]. *)
val commutator_norm : t -> t -> float

val pp : Format.formatter -> t -> unit
