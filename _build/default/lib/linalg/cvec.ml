type t = Complex.t array

let make n = Array.make n Complex.zero

let basis n k =
  if k < 0 || k >= n then invalid_arg "Cvec.basis";
  let v = make n in
  v.(k) <- Complex.one;
  v

let of_array a = Array.copy a
let to_array v = Array.copy v
let copy = Array.copy
let dim = Array.length
let get v k = v.(k)
let set v k z = v.(k) <- z

let norm2 v =
  let acc = ref 0. in
  for k = 0 to Array.length v - 1 do
    acc := !acc +. Complex.norm2 v.(k)
  done;
  !acc

let scale a v =
  for k = 0 to Array.length v - 1 do
    v.(k) <- Complex.mul a v.(k)
  done

let normalize v =
  let n = sqrt (norm2 v) in
  if n <= 0. then invalid_arg "Cvec.normalize: zero vector";
  scale (Complex_ext.of_float (1. /. n)) v

let dot a b =
  if dim a <> dim b then invalid_arg "Cvec.dot: dimension mismatch";
  let acc = ref Complex.zero in
  for k = 0 to Array.length a - 1 do
    acc := Complex.add !acc (Complex.mul (Complex.conj a.(k)) b.(k))
  done;
  !acc

let approx_equal ?(eps = 1e-9) a b =
  dim a = dim b
  && Array.for_all2 (fun x y -> Complex_ext.approx_equal ~eps x y) a b

(* |<a|b>| = |a||b| iff the vectors are parallel; compare against the
   product of norms so zero vectors are handled too. *)
let approx_equal_up_to_phase ?(eps = 1e-9) a b =
  dim a = dim b
  &&
  let na = sqrt (norm2 a) and nb = sqrt (norm2 b) in
  if na <= eps && nb <= eps then true
  else abs_float (Complex.norm (dot a b) -. (na *. nb)) <= eps
      && abs_float (na -. nb) <= eps

let pp fmt v =
  Format.fprintf fmt "[@[";
  Array.iteri
    (fun k z ->
      if k > 0 then Format.fprintf fmt ";@ ";
      Complex_ext.pp fmt z)
    v;
  Format.fprintf fmt "@]]"
