open Circuit

type options = {
  scheme : Toffoli_scheme.t;
  mode : [ `Algorithm1 | `Sound ];
  slots : int;
  expand_cv : bool;
  peephole : bool;
  native : bool;
  check_equivalence : bool;
}

let default =
  {
    scheme = Toffoli_scheme.Dynamic_2;
    mode = `Algorithm1;
    slots = 1;
    expand_cv = true;
    peephole = false;
    native = false;
    check_equivalence = true;
  }

type output = {
  circuit : Circ.t;
  data_bit : (int * int) list;
  answer_phys : (int * int) list;
  iterations : int;
  violations : int;
  qubits : int;
  gates : int;
  depth : int;
  duration_ns : float;
  tv : float option;
}

let compile ?(options = default) traditional =
  let prepared =
    match options.scheme with
    | Toffoli_scheme.Direct_mct -> traditional
    | s -> Toffoli_scheme.prepare s traditional
  in
  let mct = options.scheme = Toffoli_scheme.Direct_mct in
  let transformed, data_bit, answer_phys, iterations, violations, tv =
    if options.slots = 1 then begin
      let r = Transform.transform ~mode:options.mode ~mct prepared in
      let tv =
        if options.check_equivalence && Circ.num_qubits prepared <= 12 then
          Some (Equivalence.tv_distance prepared r)
        else None
      in
      ( r.circuit,
        r.data_bit,
        r.answer_phys,
        List.length r.iteration_order,
        List.length r.violations,
        tv )
    end
    else begin
      let m =
        Multi_transform.transform ~mode:options.mode ~mct
          ~slots:options.slots prepared
      in
      let tv =
        if options.check_equivalence && Circ.num_qubits prepared <= 12 then
          Some (Multi_transform.tv_distance prepared m)
        else None
      in
      ( m.circuit,
        m.data_bit,
        m.answer_phys,
        List.length m.iteration_order,
        List.length m.violations,
        tv )
    end
  in
  let lowered =
    let c = transformed in
    let c = if options.expand_cv then Decompose.Pass.expand_cv c else c in
    let c =
      if options.peephole then
        Decompose.Peephole.merge_rotations (Decompose.Peephole.cancel_inverses c)
      else c
    in
    if options.native then Transpile.Basis.to_native c else c
  in
  {
    circuit = lowered;
    data_bit;
    answer_phys;
    iterations;
    violations;
    qubits = Circ.num_qubits lowered;
    gates = Metrics.gate_count lowered;
    depth = Metrics.dynamic_depth lowered;
    duration_ns = Metrics.duration lowered;
    tv;
  }

let pp fmt o =
  Format.fprintf fmt
    "@[<v>qubits: %d, gates: %d, depth: %d, duration: %.2f us@,\
     iterations: %d, unsound reorderings: %d@,%s@]"
    o.qubits o.gates o.depth
    (o.duration_ns /. 1000.)
    o.iterations o.violations
    (match o.tv with
    | Some tv -> Printf.sprintf "exact TV distance: %.6f" tv
    | None -> "equivalence check skipped")

let to_string o = Format.asprintf "%a" pp o
