open Circuit

type candidate = {
  order : int list;
  violations : int;
  conditioned : int;
  tv : float;
}

(* enumerate topological orders of the work-qubit digraph by repeated
   choice of any zero-indegree vertex *)
let all_orders ~limit c =
  let work =
    List.filter
      (fun q -> Circ.role c q <> Circ.Answer)
      (List.init (Circ.num_qubits c) (fun q -> q))
  in
  let edges = Interaction.edges c in
  let acc = ref [] in
  let count = ref 0 in
  let rec go remaining prefix =
    if !count < limit then
      if remaining = [] then begin
        acc := List.rev prefix :: !acc;
        incr count
      end
      else begin
        let available =
          List.filter
            (fun q ->
              not
                (List.exists
                   (fun (ctl, target) ->
                     target = q && List.mem ctl remaining)
                   edges))
            remaining
        in
        List.iter
          (fun q -> go (List.filter (( <> ) q) remaining) (q :: prefix))
          available
      end
  in
  go work [];
  if !acc = [] then raise (Interaction.Cyclic work);
  List.rev !acc

let search ?(mct = false) ?(limit = 720) c =
  let candidates =
    List.filter_map
      (fun order ->
        match Transform.transform ~mct ~order c with
        | r ->
            Some
              {
                order;
                violations = List.length r.violations;
                conditioned = Transform.conditioned_count r;
                tv = Equivalence.tv_distance c r;
              }
        | exception Transform.Not_transformable _ -> None)
      (all_orders ~limit c)
  in
  List.sort
    (fun a b ->
      match compare a.tv b.tv with
      | 0 -> compare a.violations b.violations
      | k -> k)
    candidates

let best ?mct ?limit c =
  match search ?mct ?limit c with
  | [] -> invalid_arg "Order_search.best: no transformable order"
  | first :: _ -> first
