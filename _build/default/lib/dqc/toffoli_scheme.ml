type t =
  | Traditional
  | Dynamic_1
  | Dynamic_2
  | Dynamic_2_shared of Decompose.Pass.sharing
  | Direct_mct

let to_string = function
  | Traditional -> "traditional"
  | Dynamic_1 -> "dynamic-1"
  | Dynamic_2 -> "dynamic-2"
  | Dynamic_2_shared `Fresh -> "dynamic-2(fresh)"
  | Dynamic_2_shared `Per_target -> "dynamic-2(per-target)"
  | Dynamic_2_shared `Global -> "dynamic-2(global)"
  | Direct_mct -> "direct-mct"

let prepare scheme c =
  match scheme with
  | Traditional -> c
  | Dynamic_1 -> Decompose.Pass.substitute_toffoli ~mct_reduction:`Dqc `Barenco c
  | Dynamic_2 ->
      Decompose.Pass.substitute_toffoli ~mct_reduction:`Dqc
        (`Ancilla `Per_target) c
  | Dynamic_2_shared sharing ->
      Decompose.Pass.substitute_toffoli ~mct_reduction:`Dqc (`Ancilla sharing) c
  | Direct_mct -> c

let transform ?mode scheme c =
  match scheme with
  | Traditional -> invalid_arg "Toffoli_scheme.transform: Traditional"
  | Dynamic_1 | Dynamic_2 | Dynamic_2_shared _ ->
      Transform.transform ?mode (prepare scheme c)
  | Direct_mct -> Transform.transform ?mode ~mct:true c
