open Circuit

(** Static/dynamic analysis of 2-qubit dynamizability: given any
    traditional circuit, classify how Algorithm 1 fares on it and
    report the structural facts behind the verdict — the library's
    answer to "can I run this on two qubits, and should I trust the
    result?". *)

type verdict =
  | Exact_certified
      (** the sound scheduler succeeds: the DQC is provably equivalent *)
  | Exact_observed
      (** Algorithm 1 reorders unsoundly, but the exact distributions
          still coincide (e.g. dynamic-2 on single-Toffoli oracles) *)
  | Approximate of float
      (** transformable, but deviates: TV distance attached *)
  | Untransformable of string  (** with the scheduler's reason *)

type report = {
  num_qubits : int;
  data_qubits : int;
  answer_qubits : int;
  ancilla_qubits : int;
  interaction_edges : (int * int) list;
  cyclic : bool;
  iterations : int option;  (** when transformable *)
  conditioned : int option;
  violations : int option;
  qubit_savings : int option;  (** original minus dynamic qubit count *)
  min_exact_slots : int option;
      (** smallest multi-slot width with a sound-certified realization
          (computed when the circuit is small enough) *)
  verdict : verdict;
}

(** [analyze ?mct ?check_equivalence c] runs both scheduling modes and
    (when [check_equivalence], default true, and the circuit is small
    enough for exact evaluation — at most 12 qubits) compares exact
    distributions.  [mct] is forwarded to {!Transform.transform}.
    Input gates must satisfy {!Transform.transform}'s preconditions;
    run a {!Decompose.Pass} first for Toffoli networks. *)
val analyze : ?mct:bool -> ?check_equivalence:bool -> Circ.t -> report

val verdict_to_string : verdict -> string
val pp : Format.formatter -> report -> unit
val to_string : report -> string
