open Circuit

(** Generalized dynamic transformation with [slots] physical data
    qubits — an extension interpolating between the paper's design
    point and the traditional circuit.

    Algorithm 1 re-uses {e one} physical data qubit, so every
    data-data interaction must cross a measurement boundary — the root
    of the dynamic-1 accuracy loss.  With [slots] = k, the k most
    recent work qubits stay live simultaneously: gates between co-live
    qubits remain quantum, and only longer-range interactions become
    classically controlled.  [slots = 1] coincides with
    {!Transform.transform} (asserted in the tests); [slots >= number
    of work qubits] reproduces the traditional circuit up to layout.

    The headline consequence, measured in the E11 experiment: with
    just {e one extra} physical qubit the dynamic-1 scheme becomes
    sound-certified exact on the Table II benchmarks. *)

type result = {
  circuit : Circ.t;
      (** physical slots 0..slots-1 (role Data), then the answers *)
  data_bit : (int * int) list;
  answer_phys : (int * int) list;
  iteration_order : int list;
  violations : Transform.violation list;
  slots : int;
}

(** [transform ?mode ?mct ~slots c].  When the Case-2 digraph is
    cyclic and [slots >= 2], iteration order falls back to qubit-index
    order and the greedy scheduler decides feasibility.
    @raise Transform.Not_transformable / {!Interaction.Cyclic} as in
    {!Transform.transform}.
    @raise Invalid_argument when [slots < 1]. *)
val transform :
  ?mode:[ `Algorithm1 | `Sound ] ->
  ?mct:bool ->
  slots:int ->
  Circ.t ->
  result

(** Exact joint distribution of the multi-slot DQC over (data bits,
    answer bits), comparable with
    {!Equivalence.traditional_distribution}. *)
val dynamic_distribution : ?relative_to:Circ.t -> result -> Sim.Dist.t

(** TV distance to the original circuit (as {!Equivalence}). *)
val tv_distance : Circ.t -> result -> float

(** Smallest [slots] for which [`Sound] scheduling succeeds, searched
    in 1..max_slots (default: the number of work qubits).  [None] when
    even the traditional width fails. *)
val min_exact_slots : ?max_slots:int -> ?mct:bool -> Circ.t -> int option
