open Circuit

let disjoint xs ys = not (List.exists (fun x -> List.mem x ys) xs)

let app_qubits (a : Instruction.app) = a.controls @ [ a.target ]

(* Remap the two applications onto the union of their supports and
   compare the commutator there; unions stay tiny (<= 6 qubits). *)
let matrix_commute (a : Instruction.app) (b : Instruction.app) =
  let union =
    List.sort_uniq compare (app_qubits a @ app_qubits b)
  in
  let index q =
    let rec find k = function
      | [] -> assert false
      | x :: rest -> if x = q then k else find (k + 1) rest
    in
    find 0 union
  in
  let remap (x : Instruction.app) =
    {
      x with
      controls = List.map index x.controls;
      target = index x.target;
    }
  in
  let n = List.length union in
  let ma = Sim.Unitary.of_app ~n (remap a)
  and mb = Sim.Unitary.of_app ~n (remap b) in
  Linalg.Cmat.commutator_norm ma mb <= 1e-9

let unitary_apps (a : Instruction.app) (b : Instruction.app) =
  if disjoint (app_qubits a) (app_qubits b) then true
  else if
    (* both act diagonally on every shared qubit: diagonal gates and
       control wires preserve the computational basis *)
    Gate.is_diagonal a.gate && Gate.is_diagonal b.gate
  then true
  else matrix_commute a b

let instrs (x : Instruction.t) (y : Instruction.t) =
  let qubits_disjoint =
    disjoint (Instruction.qubits x) (Instruction.qubits y)
  in
  let bits_disjoint = disjoint (Instruction.bits x) (Instruction.bits y) in
  match (x, y) with
  | Unitary a, Unitary b -> unitary_apps a b
  | Conditioned (_, a), Conditioned (_, b) ->
      (* conditions are read-only, so ordering only matters on the
         register values where both fire: the applications must
         commute *)
      unitary_apps a b
  | Conditioned (_, a), Unitary b | Unitary a, Conditioned (_, b) ->
      (* the plain unitary touches no classical bit *)
      unitary_apps a b
  | (Measure _ | Reset _ | Barrier _), _ | _, (Measure _ | Reset _ | Barrier _)
    ->
      qubits_disjoint && bits_disjoint
