open Circuit

(** End-to-end compilation pipeline: the convenience layer a
    downstream user drives.

    [compile] chains: Toffoli-scheme substitution -> dynamic
    transformation (single- or multi-slot) -> optional CV expansion ->
    optional peephole cleanup -> optional native-basis lowering, and
    returns the circuit together with the metrics and equivalence
    evidence accumulated along the way. *)

type options = {
  scheme : Toffoli_scheme.t;  (** defaults to [Dynamic_2] in {!default} *)
  mode : [ `Algorithm1 | `Sound ];
  slots : int;  (** physical data qubits; 1 = the paper's design *)
  expand_cv : bool;  (** lower CV/CV† to Clifford+T (Fig 6) *)
  peephole : bool;  (** cancel inverse pairs and merge rotations *)
  native : bool;  (** lower to the IBM basis {rz, sx, x, cx} *)
  check_equivalence : bool;  (** exact TV distance (<= 12 qubits) *)
}

val default : options

type output = {
  circuit : Circ.t;
  data_bit : (int * int) list;
  answer_phys : (int * int) list;
  iterations : int;
  violations : int;
  qubits : int;
  gates : int;
  depth : int;
  duration_ns : float;
  tv : float option;  (** None when the check was skipped *)
}

(** [compile ?options traditional].
    @raise Transform.Not_transformable / Interaction.Cyclic as the
    underlying stages do. *)
val compile : ?options:options -> Circ.t -> output

val pp : Format.formatter -> output -> unit
val to_string : output -> string
